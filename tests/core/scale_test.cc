// The streaming substrate's correctness contract: at small N, a streaming
// World and its materialized twin (the same per-user seeded streams run
// out to full trajectories up front) are bit-exact — alerts, CommStats,
// rebuild counts and the deterministic obs digest — for every paper
// method, across thread counts in-process and shard counts under the
// transported runner; the heavy-churn scenario additionally pins the
// streaming oracle against the dynamic-graph update machinery. Plus the
// memoized Workload::GroundTruth() regression: concurrent first calls
// (the SweepRunner fan-out shape) must produce one scan and one answer —
// this suite carries the `scale` label so scripts/check.sh runs it under
// -DPROXDET_SANITIZE=thread.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/simulation.h"
#include "core/world.h"
#include "exec/thread_pool.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "traj/scenario.h"

namespace proxdet {
namespace {

ScenarioSpec SmallSpec(ScenarioKind kind) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.num_users = 32;
  spec.epochs = 20;
  spec.avg_friends = 3.0;
  spec.alert_radius_m = 400.0;
  spec.seed = 1234;
  return spec;
}

Workload BuildSmall(ScenarioKind kind, bool stream) {
  ScenarioWorkloadConfig config;
  config.scenario = SmallSpec(kind);
  config.stream = stream;
  config.compute_ground_truth = true;
  config.training_users = 12;
  config.training_epochs = 40;
  return BuildScenarioWorkload(config);
}

std::string RunWithDigest(Method method, const Workload& workload,
                          RunResult* result) {
  obs::Metrics().Reset();
  *result = RunMethod(method, workload);
  return obs::Metrics().Snapshot().DeterministicDigest();
}

void ExpectSameRun(const RunResult& stream, const RunResult& mat,
                   const std::string& what) {
  EXPECT_TRUE(stream.alerts_exact) << what << ": streaming run != oracle";
  EXPECT_TRUE(mat.alerts_exact) << what << ": materialized run != oracle";
  EXPECT_EQ(stream.alert_count, mat.alert_count) << what;
  EXPECT_TRUE(stream.stats == mat.stats) << what << ": CommStats differ";
  EXPECT_EQ(stream.rebuild_count, mat.rebuild_count) << what;
}

class StreamingParityTest : public ::testing::TestWithParam<ScenarioKind> {};

TEST_P(StreamingParityTest, OraclesAgree) {
  const Workload stream = BuildSmall(GetParam(), /*stream=*/true);
  const Workload mat = BuildSmall(GetParam(), /*stream=*/false);
  // The streaming oracle replays the ring via a cloned generator; the
  // materialized one sweeps stored trajectories. Same alert stream, or
  // everything downstream is meaningless.
  EXPECT_EQ(stream.GroundTruth(), mat.GroundTruth());
  EXPECT_FALSE(stream.GroundTruth().empty())
      << "vacuous parity: no alerts at all in " << ScenarioName(GetParam());
}

TEST_P(StreamingParityTest, AllMethodsAcrossThreads) {
  const Workload stream = BuildSmall(GetParam(), /*stream=*/true);
  const Workload mat = BuildSmall(GetParam(), /*stream=*/false);
  for (const Method method : PaperMethodSet()) {
    for (const unsigned threads : {1u, 4u}) {
      ThreadPool::SetGlobalThreads(threads);
      RunResult rs;
      RunResult rm;
      const std::string ds = RunWithDigest(method, stream, &rs);
      const std::string dm = RunWithDigest(method, mat, &rm);
      const std::string what = MethodName(method) + " @" +
                               std::to_string(threads) + " threads on " +
                               ScenarioName(GetParam());
      ExpectSameRun(rs, rm, what);
      EXPECT_EQ(ds, dm) << what << ": obs digests differ";
    }
  }
  ThreadPool::SetGlobalThreads(4);
}

TEST_P(StreamingParityTest, AllMethodsAcrossShards) {
  const Workload stream = BuildSmall(GetParam(), /*stream=*/true);
  const Workload mat = BuildSmall(GetParam(), /*stream=*/false);
  for (const Method method : PaperMethodSet()) {
    for (const int shards : {1, 2}) {
      net::NetConfig config;
      config.shards = shards;
      config.batch_downlink = true;
      config.compress_installs = true;
      const net::TransportedRunResult ts =
          net::RunTransportedMethod(method, stream, config);
      const net::TransportedRunResult tm =
          net::RunTransportedMethod(method, mat, config);
      const std::string what = MethodName(method) + " @" +
                               std::to_string(shards) + " shards on " +
                               ScenarioName(GetParam());
      ExpectSameRun(ts.run, tm.run, what);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, StreamingParityTest,
    ::testing::Values(ScenarioKind::kCommuterRush, ScenarioKind::kHeavyChurn,
                      ScenarioKind::kMixedFleet),
    [](const ::testing::TestParamInfo<ScenarioKind>& info) {
      std::string name = ScenarioName(info.param);
      for (char& c : name) {
        if (c == '_') c = 'X';
      }
      return name;
    });

// The churn scenario's streaming oracle must agree with the core layer's
// dynamic-graph machinery end to end: run the naive detector (which
// applies GraphUpdates epoch by epoch) on the streaming World and compare
// against the memoized oracle.
TEST(StreamingChurnTest, StreamingOracleMatchesDynamicGraphDetector) {
  const Workload stream = BuildSmall(ScenarioKind::kHeavyChurn, true);
  ASSERT_FALSE(stream.world.scheduled_updates().empty())
      << "heavy churn scheduled no updates; the scenario lost its point";
  const RunResult naive = RunMethod(Method::kNaive, stream);
  EXPECT_TRUE(naive.alerts_exact);
}

// Regression for the memoized GroundTruth(): SweepRunner fans method cells
// across the pool and every cell hits the first GroundTruth() call at the
// same time on dynamic-graph workloads. All callers must observe the same
// fully-built vector (call_once), not a torn or repeated scan. Runs under
// TSan via the `scale` label.
TEST(GroundTruthMemoTest, ConcurrentFirstCallIsSafeAndStable) {
  const Workload workload = BuildSmall(ScenarioKind::kHeavyChurn, true);
  ASSERT_FALSE(workload.world.scheduled_updates().empty());
  const int kCallers = 8;
  std::vector<const std::vector<AlertEvent>*> seen(kCallers, nullptr);
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int i = 0; i < kCallers; ++i) {
      callers.emplace_back(
          [&workload, &seen, i] { seen[i] = &workload.GroundTruth(); });
    }
    for (std::thread& t : callers) t.join();
  }
  for (int i = 1; i < kCallers; ++i) {
    EXPECT_EQ(seen[i], seen[0]) << "caller " << i << " saw a different cache";
  }
  // And the memo equals a fresh full scan.
  EXPECT_EQ(*seen[0], workload.world.GroundTruthAlerts());
}

// Repeated Run() over the same streaming World must rewind the stream and
// reproduce the run exactly (detectors are documented as re-runnable).
TEST(StreamingWorldTest, RepeatedRunsAreBitExact) {
  const Workload stream = BuildSmall(ScenarioKind::kCommuterRush, true);
  const RunResult first = RunMethod(Method::kCmd, stream);
  const RunResult second = RunMethod(Method::kCmd, stream);
  EXPECT_TRUE(first.alerts_exact);
  EXPECT_TRUE(second.alerts_exact);
  EXPECT_EQ(first.alert_count, second.alert_count);
  EXPECT_TRUE(first.stats == second.stats);
  EXPECT_EQ(first.rebuild_count, second.rebuild_count);
}

}  // namespace
}  // namespace proxdet
