// The spatial-index subsystem's contracts, labelled `index` in ctest (and
// run in the TSan and OBS-OFF trees by scripts/check.sh):
//  - maintenance: any upsert/remove/churn sequence leaves a grid equal to a
//    from-scratch build of the surviving entries;
//  - enumeration soundness: a radius query never drops a candidate the
//    brute-force scan finds — including points exactly on cell edges and at
//    exactly the query radius;
//  - classifier: cell verdicts provably agree with Circle::ContainsStrict;
//  - detectors: grid and exhaustive-scan paths are bit-exact (alerts,
//    CommStats, rebuild counts) under random motion, churn and the dynamic
//    interest-graph workload, across thread counts.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simulation.h"
#include "core/spatial_index.h"
#include "exec/thread_pool.h"
#include "geom/vec2.h"

namespace proxdet {
namespace {

// ---------------------------------------------------------------------------
// UniformGridIndex maintenance: churn == from-scratch.

TEST(UniformGridIndexTest, ChurnEqualsFromScratchBuild) {
  Rng rng(2024);
  for (const double cell : {0.5, 3.0, 1000.0}) {
    UniformGridIndex incremental(cell);
    std::vector<std::pair<int32_t, Vec2>> live(64, {-1, Vec2{}});
    std::vector<bool> present(64, false);
    for (int step = 0; step < 4000; ++step) {
      const int32_t id = static_cast<int32_t>(rng.NextIndex(64));
      const double op = rng.Uniform(0.0, 1.0);
      if (op < 0.7) {
        // Mostly moves: some within the same cell, some across cells.
        const Vec2 p{rng.Uniform(-5000.0, 5000.0),
                     rng.Uniform(-5000.0, 5000.0)};
        incremental.Upsert(id, p);
        live[id] = {id, p};
        present[id] = true;
      } else {
        incremental.Remove(id);
        present[id] = false;
      }
    }
    UniformGridIndex scratch(cell);
    size_t expected = 0;
    for (int32_t id = 0; id < 64; ++id) {
      if (!present[id]) continue;
      scratch.Upsert(id, live[id].second);
      ++expected;
    }
    EXPECT_EQ(incremental.size(), expected) << "cell=" << cell;
    EXPECT_EQ(incremental.SortedEntries(), scratch.SortedEntries())
        << "cell=" << cell;
  }
}

TEST(UniformGridIndexTest, SetCellSizeRebucketsWithoutLosingAnyone) {
  Rng rng(7);
  UniformGridIndex grid(10.0);
  for (int32_t id = 0; id < 200; ++id) {
    grid.Upsert(id, {rng.Uniform(-300.0, 300.0), rng.Uniform(-300.0, 300.0)});
  }
  const auto before = grid.SortedEntries();
  grid.SetCellSize(3.7);
  EXPECT_EQ(grid.SortedEntries(), before);
  EXPECT_EQ(grid.stats().rebuilds, 1u);
  // Queries still find everyone after the rebucket.
  std::vector<int32_t> cand;
  grid.Query({0.0, 0.0}, 1000.0, &cand);
  EXPECT_EQ(cand.size(), before.size());
}

// ---------------------------------------------------------------------------
// Enumeration soundness at the boundary: points exactly on cell edges and
// at exactly the query radius must always be returned (superset of the
// closed brute-force disk).

TEST(UniformGridIndexTest, BoundaryPointsAreNeverDropped) {
  const double cell = 2.0;
  UniformGridIndex grid(cell);
  // Points exactly on cell corners/edges around the origin, including
  // negative coordinates (floor semantics, not truncation).
  std::vector<Vec2> pts;
  for (int i = -4; i <= 4; ++i) {
    for (int j = -4; j <= 4; ++j) {
      pts.push_back({i * cell, j * cell});            // Corner.
      pts.push_back({i * cell, j * cell + cell / 2}); // Vertical edge.
      pts.push_back({i * cell + cell / 2, j * cell}); // Horizontal edge.
    }
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    grid.Upsert(static_cast<int32_t>(i), pts[i]);
  }
  Rng rng(99);
  std::vector<int32_t> cand;
  for (int trial = 0; trial < 300; ++trial) {
    // Mix arbitrary centers with centers exactly on grid lines, and radii
    // that land candidates exactly on the circle.
    Vec2 c{rng.Uniform(-8.0, 8.0), rng.Uniform(-8.0, 8.0)};
    if (trial % 3 == 0) {
      c = {std::floor(c.x / cell) * cell, std::floor(c.y / cell) * cell};
    }
    const size_t target = rng.NextIndex(pts.size());
    const double r = Distance(c, pts[target]);  // Exactly-on-radius case.
    cand.clear();
    grid.Query(c, r, &cand);
    std::sort(cand.begin(), cand.end());
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Distance(c, pts[i]) <= r) {  // Closed brute-force disk.
        EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(),
                                       static_cast<int32_t>(i)))
            << "dropped point " << i << " at exactly d<=r, trial " << trial;
      }
    }
  }
}

TEST(UniformGridIndexTest, RandomQueriesAreSupersetsOfBruteForce) {
  Rng rng(4242);
  for (const double cell : {0.8, 5.0, 40.0}) {
    UniformGridIndex grid(cell);
    std::vector<Vec2> pts;
    for (int32_t id = 0; id < 400; ++id) {
      pts.push_back({rng.Uniform(-100.0, 100.0), rng.Uniform(-100.0, 100.0)});
      grid.Upsert(id, pts.back());
    }
    std::vector<int32_t> cand;
    for (int trial = 0; trial < 200; ++trial) {
      const Vec2 c{rng.Uniform(-120.0, 120.0), rng.Uniform(-120.0, 120.0)};
      const double r = rng.Uniform(0.0, 60.0);
      cand.clear();
      grid.Query(c, r, &cand);
      std::sort(cand.begin(), cand.end());
      for (size_t i = 0; i < pts.size(); ++i) {
        if (Distance(c, pts[i]) <= r) {
          EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(),
                                         static_cast<int32_t>(i)))
              << "cell=" << cell << " trial=" << trial << " id=" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RegionGridIndex: churn == from-scratch, and box queries are supersets.

TEST(RegionGridIndexTest, ChurnEqualsFromScratchBuild) {
  Rng rng(31337);
  RegionGridIndex incremental(5.0);
  std::vector<BBox> live(48);
  std::vector<bool> present(48, false);
  for (int step = 0; step < 3000; ++step) {
    const int32_t h = static_cast<int32_t>(rng.NextIndex(48));
    if (rng.Uniform(0.0, 1.0) < 0.75) {
      const Vec2 lo{rng.Uniform(-200.0, 200.0), rng.Uniform(-200.0, 200.0)};
      const Vec2 hi{lo.x + rng.Uniform(0.0, 30.0),
                    lo.y + rng.Uniform(0.0, 30.0)};
      const BBox box{lo, hi};
      incremental.Upsert(h, box);
      live[h] = box;
      present[h] = true;
    } else {
      incremental.Remove(h);
      present[h] = false;
    }
  }
  RegionGridIndex scratch(5.0);
  size_t expected = 0;
  for (int32_t h = 0; h < 48; ++h) {
    if (!present[h]) continue;
    scratch.Upsert(h, live[h]);
    ++expected;
  }
  EXPECT_EQ(incremental.size(), expected);
  EXPECT_EQ(incremental.SortedEntries(), scratch.SortedEntries());
  // And the surviving boxes answer queries identically.
  std::vector<int32_t> a;
  std::vector<int32_t> b;
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 lo{rng.Uniform(-220.0, 220.0), rng.Uniform(-220.0, 220.0)};
    const BBox q{lo, {lo.x + 15.0, lo.y + 15.0}};
    const double slack = rng.Uniform(0.0, 25.0);
    a.clear();
    b.clear();
    incremental.Query(q, slack, &a);
    scratch.Query(q, slack, &b);
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    EXPECT_EQ(a, b) << "trial " << trial;
  }
}

TEST(RegionGridIndexTest, QueriesAreSupersetsOfBruteForceBoxDistance) {
  Rng rng(555);
  RegionGridIndex grid(4.0);
  std::vector<BBox> boxes;
  for (int32_t h = 0; h < 120; ++h) {
    const Vec2 lo{rng.Uniform(-80.0, 80.0), rng.Uniform(-80.0, 80.0)};
    boxes.push_back({lo, {lo.x + rng.Uniform(0.0, 12.0),
                          lo.y + rng.Uniform(0.0, 12.0)}});
    grid.Upsert(h, boxes.back());
  }
  std::vector<int32_t> cand;
  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 lo{rng.Uniform(-90.0, 90.0), rng.Uniform(-90.0, 90.0)};
    const BBox q{lo, {lo.x + rng.Uniform(0.0, 10.0),
                      lo.y + rng.Uniform(0.0, 10.0)}};
    const double slack = rng.Uniform(0.0, 20.0);
    cand.clear();
    grid.Query(q, slack, &cand);
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    for (size_t h = 0; h < boxes.size(); ++h) {
      if (q.DistanceToBox(boxes[h]) <= slack) {
        EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(),
                                       static_cast<int32_t>(h)))
            << "dropped box " << h << " trial " << trial;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MatchCellClassifier: fast verdicts provably agree with the exact strict
// predicate; boundary is allowed (and falls through to exact math).

TEST(MatchCellClassifierTest, VerdictsAgreeWithContainsStrict) {
  Rng rng(808);
  for (int c = 0; c < 50; ++c) {
    const Circle circle{{rng.Uniform(-1000.0, 1000.0),
                         rng.Uniform(-1000.0, 1000.0)},
                        rng.Uniform(0.1, 500.0)};
    const MatchCellClassifier cls(circle, circle.radius / 4.0);
    int inside_hits = 0;
    int outside_hits = 0;
    for (int t = 0; t < 400; ++t) {
      // Concentrate samples around the circle, including exact-boundary
      // points.
      Vec2 p;
      const double pick = rng.Uniform(0.0, 1.0);
      if (pick < 0.8) {
        const double ang = rng.Uniform(0.0, 6.283185307179586);
        const double rad = circle.radius * rng.Uniform(0.0, 2.0);
        p = {circle.center.x + rad * std::cos(ang),
             circle.center.y + rad * std::sin(ang)};
      } else {
        p = {rng.Uniform(-1500.0, 1500.0), rng.Uniform(-1500.0, 1500.0)};
      }
      const bool exact = circle.ContainsStrict(p);
      switch (cls.Classify(p)) {
        case MatchCellClassifier::kInside:
          EXPECT_TRUE(exact) << "circle " << c << " trial " << t;
          ++inside_hits;
          break;
        case MatchCellClassifier::kOutside:
          EXPECT_FALSE(exact) << "circle " << c << " trial " << t;
          ++outside_hits;
          break;
        case MatchCellClassifier::kBoundary:
          break;  // Exact predicate decides; nothing to check.
      }
    }
    // The classifier must actually settle most samples (it would be
    // vacuously correct if everything were kBoundary).
    EXPECT_GT(inside_hits, 0) << "circle " << c;
    EXPECT_GT(outside_hits, 0) << "circle " << c;
  }
}

// ---------------------------------------------------------------------------
// Detector-level bit-exactness: grid vs exhaustive oracle under random
// motion, across thread counts, including the dynamic-graph workload
// (edge churn while users move).

WorkloadConfig PropertyConfig(DatasetKind kind, uint64_t seed) {
  WorkloadConfig config;
  config.dataset = kind;
  config.num_users = 60;
  config.epochs = 50;
  config.speed_steps = 8;
  config.avg_friends = 7.0;
  config.alert_radius_m = 6000.0;
  config.seed = seed;
  config.training_users = 12;
  config.training_epochs = 60;
  return config;
}

void ExpectGridMatchesScan(const Workload& workload, Method method) {
  RegionDetector::Options grid;
  grid.use_spatial_index = true;
  RegionDetector::Options scan;
  scan.use_spatial_index = false;
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool::SetGlobalThreads(threads);
    const RunResult g = RunMethod(method, workload, grid);
    const RunResult s = RunMethod(method, workload, scan);
    EXPECT_TRUE(g.alerts_exact) << MethodName(method) << " t=" << threads;
    EXPECT_TRUE(s.alerts_exact) << MethodName(method) << " t=" << threads;
    EXPECT_EQ(g.alert_count, s.alert_count)
        << MethodName(method) << " t=" << threads;
    EXPECT_EQ(g.rebuild_count, s.rebuild_count)
        << MethodName(method) << " t=" << threads;
    EXPECT_TRUE(g.stats == s.stats)
        << MethodName(method) << " t=" << threads << "\ngrid: " << g.stats
        << "\nscan: " << s.stats;
  }
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
}

TEST(GridVsScanPropertyTest, RandomMotionBitExact) {
  const Workload workload =
      BuildWorkload(PropertyConfig(DatasetKind::kGeoLife, 91));
  for (const Method m :
       {Method::kNaive, Method::kFmd, Method::kCmd, Method::kStripeKf}) {
    ExpectGridMatchesScan(workload, m);
  }
}

TEST(GridVsScanPropertyTest, DynamicGraphChurnBitExact) {
  // Fig. 13's dynamic workload shape: edges inserted and deleted while the
  // run is in flight, exercising the incremental index maintenance (edge
  // radius map, per-user maxima, cell-size anchor) on both paths.
  Workload workload =
      BuildWorkload(PropertyConfig(DatasetKind::kSingaporeTaxi, 17));
  Rng rng(5);
  const auto initial = workload.world.graph().Edges();
  for (int epoch = 4; epoch < 48; epoch += 4) {
    for (int k = 0; k < 3; ++k) {
      const UserId u = static_cast<UserId>(rng.NextIndex(60));
      const UserId w = static_cast<UserId>(rng.NextIndex(60));
      if (u == w) continue;
      workload.world.ScheduleUpdate(
          {epoch, true, u, w, workload.config.alert_radius_m});
    }
    if (!initial.empty()) {
      const auto& e = initial[rng.NextIndex(initial.size())];
      workload.world.ScheduleUpdate({epoch, false, e.u, e.w, 0.0});
    }
  }
  for (const Method m : {Method::kNaive, Method::kFmd, Method::kCmd,
                         Method::kStripeKf}) {
    ExpectGridMatchesScan(workload, m);
  }
}

TEST(GridVsScanPropertyTest, MatchHeavyWorkloadBitExact) {
  // A tighter radius regime with more matches stresses the classifier fast
  // path and match dissolution/re-centering on both paths.
  WorkloadConfig config = PropertyConfig(DatasetKind::kBeijingTaxi, 23);
  config.alert_radius_m = 12000.0;
  config.avg_friends = 10.0;
  const Workload workload = BuildWorkload(config);
  for (const Method m : {Method::kCmd, Method::kStripeHmm}) {
    ExpectGridMatchesScan(workload, m);
  }
}

}  // namespace
}  // namespace proxdet
