#include "core/policies.h"

#include <gtest/gtest.h>

#include "predict/linear_predictor.h"

namespace proxdet {
namespace {

std::vector<Vec2> WindowEastward(const Vec2& end, double step, size_t n) {
  std::vector<Vec2> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({end.x - step * (n - 1 - i), end.y});
  }
  return out;
}

FriendView CircleFriend(const Vec2& center, double radius, double r,
                        double speed) {
  FriendView f;
  f.id = 1;
  f.owned_region = Circle{center, radius};
  f.alert_radius = r;
  f.speed = speed;
  return f;
}

TEST(StaticPolygonPolicyTest, IsolatedUserGetsCappedSquare) {
  StaticPolygonPolicy policy;
  const SafeRegionShape shape =
      policy.BuildRegion(0, {0, 0}, WindowEastward({0, 0}, 10, 5), 10.0, {},
                         0);
  const auto* poly = std::get_if<ConvexPolygon>(&shape);
  ASSERT_NE(poly, nullptr);
  EXPECT_TRUE(poly->Contains({0, 0}));
  EXPECT_NEAR(poly->Area(), 6000.0 * 6000.0, 1.0);  // Full extent cap.
}

TEST(StaticPolygonPolicyTest, FriendClipsPolygon) {
  StaticPolygonPolicy policy;
  std::vector<FriendView> friends{CircleFriend({1000, 0}, 50.0, 200.0, 5.0)};
  const SafeRegionShape shape = policy.BuildRegion(
      0, {0, 0}, WindowEastward({0, 0}, 10, 5), 10.0, friends, 0);
  EXPECT_TRUE(ShapeContains(shape, {0, 0}, 0));
  // Safety: the region keeps alert-radius clearance from the friend.
  EXPECT_GE(ShapeMinDistance(shape, friends[0].region(), 0), 200.0 - 1e-6);
}

TEST(StaticPolygonPolicyTest, SqueezedFallsBackToPoint) {
  StaticPolygonPolicy policy;
  // Friend region ends 1 m beyond the alert radius: nearly no room.
  std::vector<FriendView> friends{CircleFriend({301, 0}, 100.0, 200.0, 5.0)};
  const SafeRegionShape shape = policy.BuildRegion(
      0, {0, 0}, WindowEastward({0, 0}, 10, 5), 10.0, friends, 0);
  EXPECT_TRUE(ShapeContains(shape, {0, 0}, 0));
  EXPECT_GE(ShapeMinDistance(shape, friends[0].region(), 0), 200.0 - 1e-6);
}

TEST(StaticPolygonPolicyTest, SafeAgainstPolygonFriends) {
  StaticPolygonPolicy policy;
  FriendView f;
  f.id = 2;
  // An elongated friend region to exercise the verify-and-shrink loop.
  f.owned_region = ConvexPolygon(
      {{500, -4000}, {700, -4000}, {700, 4000}, {500, 4000}});
  f.alert_radius = 150.0;
  f.speed = 3.0;
  const SafeRegionShape shape = policy.BuildRegion(
      0, {0, 0}, WindowEastward({0, 0}, 10, 5), 10.0, {f}, 0);
  EXPECT_TRUE(ShapeContains(shape, {0, 0}, 0));
  EXPECT_GE(ShapeMinDistance(shape, f.region(), 0), 150.0 - 1e-6);
}

TEST(MobileCirclePolicyTest, VelocityFromWindow) {
  MobileCirclePolicy policy;
  const SafeRegionShape shape = policy.BuildRegion(
      0, {100, 0}, WindowEastward({100, 0}, 20, 5), 20.0, {}, 7);
  const auto* mc = std::get_if<MovingCircle>(&shape);
  ASSERT_NE(mc, nullptr);
  EXPECT_NEAR(mc->velocity_per_epoch.x, 20.0, 1e-9);
  EXPECT_EQ(mc->built_epoch, 7);
  EXPECT_TRUE(mc->Contains({100, 0}, 7));
  // FMD uses the fixed system-wide base radius [19].
  EXPECT_NEAR(mc->radius, 500.0, 1e-9);
}

TEST(MobileCirclePolicyTest, FriendCapsRadius) {
  MobileCirclePolicy policy;
  std::vector<FriendView> friends{CircleFriend({130, 0}, 10.0, 100.0, 5.0)};
  const SafeRegionShape shape = policy.BuildRegion(
      0, {0, 0}, WindowEastward({0, 0}, 20, 5), 20.0, friends, 0);
  const auto* mc = std::get_if<MovingCircle>(&shape);
  ASSERT_NE(mc, nullptr);
  // Slack = 130 - 10 - 100 = 20.
  EXPECT_NEAR(mc->radius, 20.0, 1e-9);
}

TEST(MobileCirclePolicyTest, CmdSelfTuning) {
  MobileCirclePolicy::Options opts;
  opts.self_tuning = true;
  MobileCirclePolicy policy(opts);
  const auto window = WindowEastward({0, 0}, 20, 5);
  const auto base = std::get<MovingCircle>(
      policy.BuildRegion(0, {0, 0}, window, 20.0, {}, 0));
  policy.OnExit(0);  // Region was too small.
  const auto grown = std::get<MovingCircle>(
      policy.BuildRegion(0, {0, 0}, window, 20.0, {}, 0));
  EXPECT_GT(grown.radius, base.radius);
  policy.OnProbe(0);
  policy.OnProbe(0);
  const auto shrunk = std::get<MovingCircle>(
      policy.BuildRegion(0, {0, 0}, window, 20.0, {}, 0));
  EXPECT_LT(shrunk.radius, grown.radius);
}

TEST(MobileCirclePolicyTest, FmdIgnoresTuningHooks) {
  MobileCirclePolicy policy;  // self_tuning = false.
  const auto window = WindowEastward({0, 0}, 20, 5);
  const auto base = std::get<MovingCircle>(
      policy.BuildRegion(0, {0, 0}, window, 20.0, {}, 0));
  policy.OnExit(0);
  policy.OnExit(0);
  const auto after = std::get<MovingCircle>(
      policy.BuildRegion(0, {0, 0}, window, 20.0, {}, 0));
  EXPECT_DOUBLE_EQ(base.radius, after.radius);
}

TEST(StripePolicyTest, BuildsStripeAlongPrediction) {
  StripePolicy policy(std::make_unique<LinearPredictor>());
  const SafeRegionShape shape = policy.BuildRegion(
      0, {0, 0}, WindowEastward({0, 0}, 50, 6), 50.0, {}, 0);
  const auto* stripe = std::get_if<Stripe>(&shape);
  ASSERT_NE(stripe, nullptr);
  EXPECT_TRUE(stripe->Contains({0, 0}));
  // Linear predictor extends east; the far anchor should be east of start.
  EXPECT_GT(stripe->path().points().back().x, 100.0);
}

TEST(StripePolicyTest, SafetyAgainstFriends) {
  StripePolicy policy(std::make_unique<LinearPredictor>());
  std::vector<FriendView> friends{CircleFriend({0, 500}, 20.0, 100.0, 5.0)};
  const SafeRegionShape shape = policy.BuildRegion(
      0, {0, 0}, WindowEastward({0, 0}, 50, 6), 50.0, friends, 0);
  EXPECT_GE(ShapeMinDistance(shape, friends[0].region(), 0), 100.0 - 1e-6);
}

TEST(StripePolicyTest, NameIncludesPredictor) {
  StripePolicy policy(std::make_unique<LinearPredictor>());
  EXPECT_EQ(policy.name(), "Stripe+Linear");
}

}  // namespace
}  // namespace proxdet
