#include "region/match_region.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

TEST(MatchRegionTest, CenterAtMidpointRadiusHalfR) {
  const MatchRegion m = MatchRegion::Make({0, 0}, {10, 0}, 12.0);
  EXPECT_EQ(m.circle().center, (Vec2{5, 0}));
  EXPECT_DOUBLE_EQ(m.circle().radius, 6.0);
}

TEST(MatchRegionTest, ContainsBothEndpointsWhenMatched) {
  // If d(u, w) < r, both users start inside their match region.
  const Vec2 u{0, 0};
  const Vec2 w{8, 0};
  const MatchRegion m = MatchRegion::Make(u, w, 10.0);
  EXPECT_TRUE(m.Contains(u));
  EXPECT_TRUE(m.Contains(w));
}

TEST(MatchRegionTest, StrictContainment) {
  const MatchRegion m = MatchRegion::Make({0, 0}, {10, 0}, 10.0);
  // Radius 5 centered at (5,0): the endpoints are ON the boundary — with
  // d(u,w) == r they are not strictly inside (they are not matched).
  EXPECT_FALSE(m.Contains({0, 0}));
  EXPECT_TRUE(m.Contains({1, 0}));
}

// Lemma (Def. 3 soundness): two points strictly inside the match region are
// strictly within alert radius of each other.
TEST(MatchRegionTest, PropertyMembersAlwaysWithinRadius) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 u{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const Vec2 w = u + Vec2{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const double r = Distance(u, w) + rng.Uniform(0.1, 20.0);
    const MatchRegion m = MatchRegion::Make(u, w, r);
    for (int i = 0; i < 100; ++i) {
      const Vec2 a = m.circle().center +
                     Vec2{rng.Uniform(-r, r), rng.Uniform(-r, r)};
      const Vec2 b = m.circle().center +
                     Vec2{rng.Uniform(-r, r), rng.Uniform(-r, r)};
      if (m.Contains(a) && m.Contains(b)) {
        EXPECT_LT(Distance(a, b), r);
      }
    }
  }
}

}  // namespace
}  // namespace proxdet
