// End-to-end correctness: every detector must emit exactly the ground-truth
// alert stream on every dataset (DESIGN.md invariant 1), with region-build
// validation enabled (invariant 2).

#include <gtest/gtest.h>

#include "core/simulation.h"

namespace proxdet {
namespace {

WorkloadConfig SmallConfig(DatasetKind dataset, uint64_t seed) {
  WorkloadConfig config;
  config.dataset = dataset;
  config.num_users = 50;
  config.epochs = 60;
  config.speed_steps = 8;
  config.avg_friends = 6.0;
  config.alert_radius_m = 6000.0;
  config.seed = seed;
  config.training_users = 20;
  config.training_epochs = 120;
  return config;
}

class DetectorDatasetTest
    : public ::testing::TestWithParam<std::tuple<DatasetKind, Method>> {};

TEST_P(DetectorDatasetTest, AlertStreamMatchesGroundTruthExactly) {
  const auto [dataset, method] = GetParam();
  const Workload workload = BuildWorkload(SmallConfig(dataset, 404));
  RegionDetector::Options options;
  options.validate_builds = true;  // Assert the soundness contract too.
  const RunResult result = RunMethod(method, workload, options);
  EXPECT_TRUE(result.alerts_exact)
      << MethodName(method) << " missed or invented alerts on "
      << DatasetName(dataset) << " (got " << result.alert_count << ", want "
      << workload.ground_truth.size() << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DetectorDatasetTest,
    ::testing::Combine(::testing::ValuesIn(AllDatasetKinds()),
                       ::testing::Values(Method::kNaive, Method::kStatic,
                                         Method::kFmd, Method::kCmd,
                                         Method::kStripeKf,
                                         Method::kStripeRmf,
                                         Method::kStripeHmm,
                                         Method::kStripeR2d2,
                                         Method::kStripeLinear)),
    [](const auto& info) {
      std::string name = DatasetName(std::get<0>(info.param)) + "_" +
                         MethodName(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DetectorIntegrationTest, RegionMethodsReportLessThanNaive) {
  const Workload workload =
      BuildWorkload(SmallConfig(DatasetKind::kTruck, 505));
  const RunResult naive = RunMethod(Method::kNaive, workload);
  for (const Method m :
       {Method::kStatic, Method::kCmd, Method::kStripeKf}) {
    const RunResult r = RunMethod(m, workload);
    EXPECT_LT(r.stats.reports, naive.stats.reports)
        << MethodName(m) << " should save uplink reports";
  }
}

TEST(DetectorIntegrationTest, DynamicInsertionsStayExact) {
  Workload workload = BuildWorkload(SmallConfig(DatasetKind::kGeoLife, 606));
  Rng rng(7);
  // Insert random edges over time (Sec. VI-E's workload).
  for (int epoch = 5; epoch < 55; epoch += 5) {
    for (int k = 0; k < 4; ++k) {
      const UserId u = static_cast<UserId>(rng.NextIndex(50));
      const UserId w = static_cast<UserId>(rng.NextIndex(50));
      if (u == w) continue;
      workload.world.ScheduleUpdate(
          {epoch, true, u, w, workload.config.alert_radius_m});
    }
  }
  // validate_builds also asserts the incremental edge snapshot equals a
  // from-scratch graph.Edges() after every update batch.
  RegionDetector::Options options;
  options.validate_builds = true;
  for (const Method m : {Method::kNaive, Method::kCmd, Method::kStripeKf}) {
    const RunResult r = RunMethod(m, workload, options);
    EXPECT_TRUE(r.alerts_exact) << MethodName(m);
  }
}

TEST(DetectorIntegrationTest, DynamicDeletionsStayExact) {
  Workload workload =
      BuildWorkload(SmallConfig(DatasetKind::kSingaporeTaxi, 707));
  // Delete a third of the initial edges mid-run.
  const auto edges = workload.world.graph().Edges();
  for (size_t i = 0; i < edges.size(); i += 3) {
    workload.world.ScheduleUpdate(
        {30, false, edges[i].u, edges[i].w, 0.0});
  }
  // validate_builds also asserts the incremental edge snapshot equals a
  // from-scratch graph.Edges() after every update batch.
  RegionDetector::Options options;
  options.validate_builds = true;
  for (const Method m : {Method::kNaive, Method::kFmd, Method::kStripeKf}) {
    const RunResult r = RunMethod(m, workload, options);
    EXPECT_TRUE(r.alerts_exact) << MethodName(m);
  }
}

TEST(DetectorIntegrationTest, StatsAreInternallyConsistent) {
  const Workload workload =
      BuildWorkload(SmallConfig(DatasetKind::kBeijingTaxi, 808));
  const RunResult r = RunMethod(Method::kStripeKf, workload);
  const CommStats& s = r.stats;
  EXPECT_EQ(s.TotalMessages(), s.reports + s.probes + s.alerts +
                                   s.region_installs + s.match_installs)
      << s;
  // Every alert notifies both endpoints.
  EXPECT_EQ(s.alerts % 2, 0u);
  EXPECT_EQ(s.alerts / 2, r.alert_count);
  // A probe always produces a report.
  EXPECT_LE(s.probes, s.reports);
}

TEST(DetectorIntegrationTest, DeterministicAcrossRuns) {
  const Workload workload =
      BuildWorkload(SmallConfig(DatasetKind::kTruck, 909));
  const RunResult a = RunMethod(Method::kCmd, workload);
  const RunResult b = RunMethod(Method::kCmd, workload);
  EXPECT_EQ(a.stats.TotalMessages(), b.stats.TotalMessages());
  EXPECT_EQ(a.alert_count, b.alert_count);
}

}  // namespace
}  // namespace proxdet
