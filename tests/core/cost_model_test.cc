#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/gaussian.h"

namespace proxdet {
namespace {

TEST(CostModelTest, StayProbabilityMatchesFoldedNormal) {
  EXPECT_DOUBLE_EQ(StayProbability(2.0, 1.0), FoldedNormalCdf(2.0, 1.0));
  EXPECT_EQ(StayProbability(0.0, 1.0), 0.0);
}

TEST(CostModelTest, ExitTimeClosedFormMatchesSeries) {
  // E_m = s/v + sum_{i=1..m-1} i p^i (1-p) + m p^m (Sec. V-D telescoped).
  const double s = 10.0, v = 2.0, p = 0.7;
  for (int m = 0; m <= 12; ++m) {
    double series = s / v;
    for (int i = 1; i < m; ++i) {
      series += i * std::pow(p, i) * (1 - p);
    }
    if (m >= 1) series += m * std::pow(p, m);
    EXPECT_NEAR(ExpectedExitTime(s, v, p, m), series, 1e-9) << "m=" << m;
  }
}

TEST(CostModelTest, ExitTimeEdgeCases) {
  EXPECT_DOUBLE_EQ(ExpectedExitTime(10.0, 2.0, 0.0, 5), 5.0);   // p=0: s/v.
  EXPECT_DOUBLE_EQ(ExpectedExitTime(10.0, 2.0, 1.0, 5), 10.0);  // p=1: s/v+m.
  EXPECT_DOUBLE_EQ(ExpectedExitTime(0.0, 2.0, 0.5, 0), 0.0);
}

TEST(CostModelTest, ExitTimeMonotoneInRadiusAndHorizon) {
  const double sigma = 5.0;
  double prev = -1.0;
  for (double s = 0.0; s <= 30.0; s += 2.0) {
    const double em = ExpectedExitTime(s, 2.0, StayProbability(s, sigma), 8);
    EXPECT_GT(em, prev);
    prev = em;
  }
  for (int m = 1; m < 10; ++m) {
    EXPECT_LE(ExpectedExitTime(10.0, 2.0, 0.8, m),
              ExpectedExitTime(10.0, 2.0, 0.8, m + 1));
  }
}

TEST(CostModelTest, ProbeTimeMinOverFriends) {
  const std::vector<FriendGap> gaps{{100.0, 20.0, 4.0}, {90.0, 10.0, 8.0}};
  // friend 1: (100-5-20)/4 = 18.75; friend 2: (90-5-10)/8 = 9.375.
  EXPECT_DOUBLE_EQ(ExpectedProbeTime(gaps, 5.0), 9.375);
}

TEST(CostModelTest, ProbeTimeInfiniteWithNoFriends) {
  EXPECT_TRUE(std::isinf(ExpectedProbeTime({}, 5.0)));
}

TEST(CostModelTest, ProbeTimeDecreasesWithRadius) {
  const std::vector<FriendGap> gaps{{100.0, 20.0, 4.0}};
  double prev = 1e18;
  for (double s = 0.0; s < 80.0; s += 5.0) {
    const double ep = ExpectedProbeTime(gaps, s);
    EXPECT_LT(ep, prev);
    prev = ep;
  }
}

TEST(CostModelTest, RadiusUpperBound) {
  const std::vector<FriendGap> gaps{{100.0, 20.0, 4.0}, {50.0, 10.0, 8.0}};
  EXPECT_DOUBLE_EQ(RadiusUpperBound(gaps), 40.0);
  EXPECT_TRUE(std::isinf(RadiusUpperBound({})));
}

TEST(InitializationRadiusTest, Equation5) {
  // s^u = v_u (tau - r) / (v_u + v_w).
  EXPECT_DOUBLE_EQ(InitializationRadius(2.0, 3.0, 100.0, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(InitializationRadius(3.0, 2.0, 100.0, 50.0), 30.0);
}

TEST(InitializationRadiusTest, Lemma2PairwiseConstraint) {
  // s^u + s^w + r <= tau for every speed/distance combination (Lemma 2).
  for (double vu = 0.5; vu <= 8.0; vu += 1.5) {
    for (double vw = 0.5; vw <= 8.0; vw += 1.5) {
      for (double tau = 10.0; tau <= 200.0; tau += 37.0) {
        for (double r = 0.0; r < tau; r += 19.0) {
          const double su = InitializationRadius(vu, vw, tau, r);
          const double sw = InitializationRadius(vw, vu, tau, r);
          EXPECT_LE(su + sw + r, tau + 1e-9);
          EXPECT_GE(su, 0.0);
        }
      }
    }
  }
}

TEST(InitializationRadiusTest, NoSlackMeansZeroRadius) {
  EXPECT_EQ(InitializationRadius(2.0, 3.0, 50.0, 50.0), 0.0);
  EXPECT_EQ(InitializationRadius(2.0, 3.0, 40.0, 50.0), 0.0);
}

TEST(SolveStripeRadiusTest, NoFriendsTakesCap) {
  const RadiusSolution sol = SolveStripeRadius({}, 5, 10.0, 2.0, 77.0, 1e-6);
  EXPECT_DOUBLE_EQ(sol.radius, 77.0);
  EXPECT_TRUE(std::isinf(sol.e_p));
}

TEST(SolveStripeRadiusTest, BalancesWhenCrossingExists) {
  const std::vector<FriendGap> gaps{{200.0, 50.0, 3.0}};
  const RadiusSolution sol =
      SolveStripeRadius(gaps, 6, 20.0, 2.0, 1e9, 1e-9);
  EXPECT_GT(sol.radius, 0.0);
  EXPECT_LT(sol.radius, 150.0);  // Below the upper bound y0 - r.
  EXPECT_NEAR(sol.e_m, sol.e_p, 1e-6);
}

TEST(SolveStripeRadiusTest, EarlyExitWhenEmBelowEpAtUpperBound) {
  // The cap (42) binds below the slack bound (150); at the cap the fast
  // user's E_m is still below the slow friend's E_p, so Algorithm 2's
  // early exit returns the cap without bisection.
  const std::vector<FriendGap> gaps{{200.0, 50.0, 1.0}};
  const RadiusSolution sol = SolveStripeRadius(gaps, 2, 1.0, 10.0, 42.0, 1e-9);
  EXPECT_NEAR(sol.radius, 42.0, 1e-6);
  EXPECT_LE(sol.e_m, sol.e_p);
}

TEST(SolveStripeRadiusTest, CapAppliesWithFriends) {
  const std::vector<FriendGap> gaps{{10000.0, 50.0, 0.001}};
  const RadiusSolution sol = SolveStripeRadius(gaps, 2, 1.0, 0.001, 42.0, 1e-9);
  EXPECT_LE(sol.radius, 42.0 + 1e-9);
}

TEST(SolveStripeRadiusTest, ZeroUpperBoundDegenerates) {
  const std::vector<FriendGap> gaps{{50.0, 50.0, 1.0}};  // y0 == r.
  const RadiusSolution sol = SolveStripeRadius(gaps, 3, 5.0, 1.0, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(sol.radius, 0.0);
}

// Property: the solution's objective min(E_m, E_p) is within tolerance of
// the best over a dense radius sweep — Algorithm 2's inner loop is optimal.
TEST(SolveStripeRadiusTest, PropertySolutionNearSweepOptimum) {
  const std::vector<FriendGap> gaps{{300.0, 60.0, 2.5}, {500.0, 40.0, 5.0}};
  for (const double sigma : {2.0, 10.0, 40.0}) {
    for (const int m : {1, 4, 10}) {
      const RadiusSolution sol =
          SolveStripeRadius(gaps, m, sigma, 3.0, 1e9, 1e-9);
      double best = 0.0;
      const double ub = RadiusUpperBound(gaps);
      for (double s = 0.0; s <= ub; s += ub / 2000.0) {
        const double em =
            ExpectedExitTime(s, 3.0, StayProbability(s, sigma), m);
        const double ep = ExpectedProbeTime(gaps, s);
        best = std::max(best, std::min(em, ep));
      }
      EXPECT_NEAR(sol.Objective(), best, best * 0.02 + 1e-6)
          << "sigma=" << sigma << " m=" << m;
    }
  }
}

}  // namespace
}  // namespace proxdet
