// Direct tests of the RegionDetector engine mechanics on hand-built
// two/three-user worlds where every message can be predicted by hand.

#include "core/region_detector.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "predict/linear_predictor.h"

namespace proxdet {
namespace {

Trajectory LineFrom(double x0, double y0, double step_x, size_t n) {
  std::vector<Vec2> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({x0 + step_x * i, y0});
  }
  return Trajectory(std::move(pts), 5.0);
}

std::unique_ptr<RegionDetector> MakeStripeDetector(
    RegionDetector::Options options = {}) {
  StripePolicy::Options sopts;
  sopts.build.sigma = 50.0;
  return std::make_unique<RegionDetector>(
      std::make_unique<StripePolicy>(std::make_unique<LinearPredictor>(),
                                     sopts),
      options);
}

TEST(RegionDetectorTest, TwoDistantStationaryUsersTalkOnce) {
  // Both users stand still, 100 km apart, r = 1 km: after initialization
  // nobody ever needs to communicate again.
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 0, 41));
  trajs.push_back(LineFrom(100000, 0, 0, 41));
  InterestGraph g(2);
  g.AddEdge(0, 1, 1000.0);
  const World world(std::move(trajs), std::move(g), 1, 40);
  auto detector = MakeStripeDetector();
  detector->Run(world);
  EXPECT_TRUE(detector->SortedAlerts().empty());
  // Initialization: 2 reports + 2 region installs; then silence.
  EXPECT_EQ(detector->stats().reports, 2u);
  EXPECT_EQ(detector->stats().region_installs, 2u);
  EXPECT_EQ(detector->stats().probes, 0u);
  EXPECT_EQ(detector->rebuild_count(), 2u);
}

TEST(RegionDetectorTest, StraightMoverStaysInsideItsStripe) {
  // One user moves at a perfectly constant velocity; the linear predictor
  // nails the path, so rebuilds happen only when the stripe runs out.
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 10, 201));       // 10 m per tick east.
  trajs.push_back(LineFrom(0, 90000, 0, 201));    // Far away, static.
  InterestGraph g(2);
  g.AddEdge(0, 1, 1000.0);
  const World world(std::move(trajs), std::move(g), 1, 200);
  auto detector = MakeStripeDetector();
  detector->Run(world);
  EXPECT_TRUE(detector->SortedAlerts().empty());
  // The mover's region must last many epochs: far fewer rebuilds than
  // epochs. (Horizon 20 stripes -> about one rebuild per 20 epochs.)
  EXPECT_LT(detector->rebuild_count(), 30u);
}

TEST(RegionDetectorTest, HeadOnPairAlertsExactly) {
  // Two users approach head-on at 10 m/tick each; r = 500 m. Initial gap
  // 3000 m closes at 20 m/epoch (V=1): distance < 500 first at epoch 126.
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 10, 161));
  trajs.push_back(LineFrom(3000, 0, -10, 161));
  InterestGraph g(2);
  g.AddEdge(0, 1, 500.0);
  World world(std::move(trajs), std::move(g), 1, 160);
  const auto truth = world.GroundTruthAlerts();
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0].epoch, 126);
  auto detector = MakeStripeDetector();
  detector->Run(world);
  EXPECT_EQ(detector->SortedAlerts(), truth);
  EXPECT_GT(detector->stats().probes + detector->stats().reports, 2u);
}

TEST(RegionDetectorTest, MatchedPairMovingTogetherIsFree) {
  // Two users glued together (constant 100 m gap) moving in lockstep:
  // after the initial alert, the pair re-centers its match region only
  // when it crosses the circle of radius r/2 = 2000 m, i.e. every ~200
  // ticks of 10 m — once over this run.
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 10, 201));
  trajs.push_back(LineFrom(100, 0, 10, 201));
  InterestGraph g(2);
  g.AddEdge(0, 1, 4000.0);
  const World world(std::move(trajs), std::move(g), 1, 200);
  auto detector = MakeStripeDetector();
  detector->Run(world);
  ASSERT_EQ(detector->SortedAlerts().size(), 1u);
  EXPECT_EQ(detector->SortedAlerts()[0].epoch, 0);
  // One alert (2 msgs), initial match install (2), roughly one re-center
  // (2 reports + 2 installs) — plus the periodic safe-region refreshes the
  // pair still maintains per Algorithm 1 (a stripe per ~20 epochs each).
  // Naive would spend 2 * 200 reports; demand near-silence.
  EXPECT_LT(detector->stats().TotalMessages(), 40u);
  EXPECT_EQ(detector->stats().match_installs, 4u);  // Create + 1 re-center.
}

TEST(RegionDetectorTest, WithoutMatchRegionsLockstepPairPaysEveryEpoch) {
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 10, 201));
  trajs.push_back(LineFrom(100, 0, 10, 201));
  InterestGraph g(2);
  g.AddEdge(0, 1, 4000.0);
  const World world(std::move(trajs), std::move(g), 1, 200);
  RegionDetector::Options options;
  options.use_match_regions = false;
  auto detector = MakeStripeDetector(options);
  detector->Run(world);
  ASSERT_EQ(detector->SortedAlerts().size(), 1u);
  // Both users report at every epoch while matched.
  EXPECT_GE(detector->stats().reports, 2u * 199u);
}

TEST(RegionDetectorTest, ProbeFreesSpaceHoggedByStaleRegion) {
  // User 1 sits still with a (large) region; user 0 wanders near the
  // radius boundary. Rebuilds of user 0 must at minimum stay sound; with a
  // kinetic probe horizon, user 1 gets probed instead of user 0 churning.
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 10, 201));
  trajs.push_back(LineFrom(2500, 0, 0, 201));
  InterestGraph g(2);
  // r = 400: user 0 tops out at x=2000 (d=500), so the pair never matches,
  // but it does cross the kinetic probe threshold on the way.
  g.AddEdge(0, 1, 400.0);
  const World world(std::move(trajs), std::move(g), 1, 200);
  RegionDetector::Options options;
  options.probe_horizon_epochs = 2.0;
  auto detector = MakeStripeDetector(options);
  detector->Run(world);
  EXPECT_EQ(detector->SortedAlerts(), world.GroundTruthAlerts());
  EXPECT_GT(detector->stats().probes, 0u);
}

TEST(RegionDetectorTest, NameComesFromPolicy) {
  auto detector = MakeStripeDetector();
  EXPECT_EQ(detector->name(), "Stripe+Linear");
  RegionDetector cmd(std::make_unique<MobileCirclePolicy>([] {
    MobileCirclePolicy::Options o;
    o.self_tuning = true;
    return o;
  }()));
  EXPECT_EQ(cmd.name(), "CMD");
}

}  // namespace
}  // namespace proxdet
