#include <gtest/gtest.h>

#include "core/detector.h"

namespace proxdet {
namespace {

Trajectory LineFrom(double x0, double step, size_t n) {
  std::vector<Vec2> pts;
  for (size_t i = 0; i < n; ++i) pts.push_back({x0 + step * i, 0.0});
  return Trajectory(std::move(pts), 5.0);
}

TEST(NaiveDetectorTest, ReportsEveryUserEveryEpoch) {
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 11));
  trajs.push_back(LineFrom(10000, 0, 11));
  trajs.push_back(LineFrom(20000, 0, 11));
  InterestGraph g(3);
  g.AddEdge(0, 1, 100.0);
  const World world(std::move(trajs), std::move(g), 1, 10);
  NaiveDetector naive;
  naive.Run(world);
  EXPECT_EQ(naive.stats().reports, 30u);
  EXPECT_EQ(naive.stats().probes, 0u);
  EXPECT_EQ(naive.stats().region_installs, 0u);
  EXPECT_TRUE(naive.SortedAlerts().empty());
}

TEST(NaiveDetectorTest, AlertsMatchGroundTruth) {
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 41));
  trajs.push_back(LineFrom(500, -8, 41));  // Approaches at 8 m/tick.
  InterestGraph g(2);
  g.AddEdge(0, 1, 300.0);  // d < 300 first at epoch 13 (500 - 16e).
  const World world(std::move(trajs), std::move(g), 2, 20);
  NaiveDetector naive;
  naive.Run(world);
  EXPECT_EQ(naive.SortedAlerts(), world.GroundTruthAlerts());
  EXPECT_EQ(naive.SortedAlerts().size(), 1u);
  // Two alert notifications (one per endpoint).
  EXPECT_EQ(naive.stats().alerts, 2u);
}

TEST(NaiveDetectorTest, HonorsDynamicInsertion) {
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 21));
  trajs.push_back(LineFrom(50, 0, 21));
  World world(std::move(trajs), InterestGraph(2), 1, 20);
  world.ScheduleUpdate({.epoch = 7, .insert = true, .u = 0, .w = 1,
                        .alert_radius = 100.0});
  NaiveDetector naive;
  naive.Run(world);
  const auto alerts = naive.SortedAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].epoch, 7);
  EXPECT_EQ(naive.SortedAlerts(), world.GroundTruthAlerts());
}

TEST(NaiveDetectorTest, RunIsRepeatable) {
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0, 0, 21));
  trajs.push_back(LineFrom(500, -5, 21));
  InterestGraph g(2);
  g.AddEdge(0, 1, 300.0);
  const World world(std::move(trajs), std::move(g), 1, 20);
  NaiveDetector naive;
  naive.Run(world);
  const auto first = naive.SortedAlerts();
  const auto reports = naive.stats().reports;
  naive.Run(world);
  EXPECT_EQ(naive.SortedAlerts(), first);
  EXPECT_EQ(naive.stats().reports, reports);  // Stats reset per run.
}

}  // namespace
}  // namespace proxdet
