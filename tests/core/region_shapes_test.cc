#include "region/region.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

SafeRegionShape MovingAt(const Vec2& c, const Vec2& v, double r, int t0) {
  MovingCircle mc;
  mc.center_at_build = c;
  mc.velocity_per_epoch = v;
  mc.radius = r;
  mc.built_epoch = t0;
  return mc;
}

TEST(RegionShapesTest, MovingCircleTranslates) {
  const MovingCircle mc{{0, 0}, {10, 0}, 5.0, 100};
  EXPECT_EQ(mc.CenterAt(100), (Vec2{0, 0}));
  EXPECT_EQ(mc.CenterAt(103), (Vec2{30, 0}));
  EXPECT_TRUE(mc.Contains({30, 4}, 103));
  EXPECT_FALSE(mc.Contains({30, 4}, 100));
}

TEST(RegionShapesTest, ContainsDispatch) {
  const SafeRegionShape circle = Circle{{0, 0}, 5.0};
  EXPECT_TRUE(ShapeContains(circle, {3, 4}, 0));
  EXPECT_FALSE(ShapeContains(circle, {6, 0}, 0));

  const SafeRegionShape moving = MovingAt({0, 0}, {1, 0}, 2.0, 0);
  EXPECT_TRUE(ShapeContains(moving, {5, 0}, 5));
  EXPECT_FALSE(ShapeContains(moving, {5, 0}, 0));

  const SafeRegionShape poly = ConvexPolygon::Square({0, 0}, 2.0);
  EXPECT_TRUE(ShapeContains(poly, {1, 1}, 0));

  const SafeRegionShape stripe = Stripe(Polyline({{0, 0}, {10, 0}}), 1.0);
  EXPECT_TRUE(ShapeContains(stripe, {5, 1}, 0));
  EXPECT_FALSE(ShapeContains(stripe, {5, 2}, 0));
}

TEST(RegionShapesTest, PointDistanceDispatch) {
  EXPECT_DOUBLE_EQ(
      ShapeDistanceToPoint(SafeRegionShape(Circle{{0, 0}, 2.0}), {5, 0}, 0),
      3.0);
  EXPECT_DOUBLE_EQ(ShapeDistanceToPoint(MovingAt({0, 0}, {1, 0}, 2.0, 0),
                                        {10, 0}, 5),
                   3.0);
  EXPECT_DOUBLE_EQ(ShapeDistanceToPoint(
                       SafeRegionShape(ConvexPolygon::Square({0, 0}, 1.0)),
                       {4, 0}, 0),
                   3.0);
  EXPECT_DOUBLE_EQ(
      ShapeDistanceToPoint(
          SafeRegionShape(Stripe(Polyline({{0, 0}, {10, 0}}), 1.0)), {5, 4},
          0),
      3.0);
}

TEST(RegionShapesTest, PairwiseDistancesSymmetric) {
  std::vector<SafeRegionShape> shapes;
  shapes.push_back(Circle{{0, 0}, 2.0});
  shapes.push_back(MovingAt({20, 0}, {1, 1}, 3.0, 0));
  shapes.push_back(ConvexPolygon::Square({0, 30}, 4.0));
  shapes.push_back(Stripe(Polyline({{-30, 0}, {-30, 20}}), 1.5));
  for (const int epoch : {0, 3}) {
    for (size_t i = 0; i < shapes.size(); ++i) {
      for (size_t j = 0; j < shapes.size(); ++j) {
        EXPECT_NEAR(ShapeMinDistance(shapes[i], shapes[j], epoch),
                    ShapeMinDistance(shapes[j], shapes[i], epoch), 1e-9)
            << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(RegionShapesTest, SelfDistanceZero) {
  std::vector<SafeRegionShape> shapes;
  shapes.push_back(Circle{{0, 0}, 2.0});
  shapes.push_back(ConvexPolygon::Square({0, 0}, 4.0));
  shapes.push_back(Stripe(Polyline({{0, 0}, {10, 0}}), 1.5));
  for (const auto& s : shapes) {
    EXPECT_DOUBLE_EQ(ShapeMinDistance(s, s, 0), 0.0);
  }
}

TEST(RegionShapesTest, KnownCrossTypeDistances) {
  const SafeRegionShape circle = Circle{{0, 0}, 2.0};
  const SafeRegionShape poly = ConvexPolygon::Square({10, 0}, 3.0);
  EXPECT_DOUBLE_EQ(ShapeMinDistance(circle, poly, 0), 5.0);  // 10 - 3 - 2.

  const SafeRegionShape stripe = Stripe(Polyline({{0, 10}, {20, 10}}), 1.0);
  EXPECT_DOUBLE_EQ(ShapeMinDistance(circle, stripe, 0), 7.0);  // 10 - 1 - 2.
  EXPECT_DOUBLE_EQ(ShapeMinDistance(poly, stripe, 0), 6.0);    // 10 - 3 - 1.
}

TEST(RegionShapesTest, MovingPairApproachOverTime) {
  const SafeRegionShape a = MovingAt({0, 0}, {5, 0}, 1.0, 0);
  const SafeRegionShape b = MovingAt({100, 0}, {-5, 0}, 1.0, 0);
  EXPECT_DOUBLE_EQ(ShapeMinDistance(a, b, 0), 98.0);
  EXPECT_DOUBLE_EQ(ShapeMinDistance(a, b, 5), 48.0);
  EXPECT_DOUBLE_EQ(ShapeMinDistance(a, b, 10), 0.0);  // Overlapping.
}

// Property: ShapeMinDistance lower-bounds the distance between any two
// contained points (the safety argument of Definition 2 rests on this).
TEST(RegionShapesTest, PropertyMinDistanceLowerBoundsMemberDistance) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const SafeRegionShape a =
        Stripe(Polyline({{rng.Uniform(-50, 0), rng.Uniform(-20, 20)},
                         {rng.Uniform(0, 50), rng.Uniform(-20, 20)}}),
               rng.Uniform(0.5, 5));
    const SafeRegionShape b = Circle{
        {rng.Uniform(-50, 50), rng.Uniform(30, 80)}, rng.Uniform(1, 10)};
    const double min_d = ShapeMinDistance(a, b, 0);
    for (int i = 0; i < 200; ++i) {
      const Vec2 pa{rng.Uniform(-60, 60), rng.Uniform(-30, 30)};
      const Vec2 pb{rng.Uniform(-60, 60), rng.Uniform(20, 95)};
      if (ShapeContains(a, pa, 0) && ShapeContains(b, pb, 0)) {
        EXPECT_GE(Distance(pa, pb) + 1e-9, min_d);
      }
    }
  }
}

SafeRegionShape RandomShape(Rng* rng) {
  const Vec2 c{rng->Uniform(-20000, 20000), rng->Uniform(-20000, 20000)};
  switch (rng->NextIndex(4)) {
    case 0:
      return Circle{c, rng->Uniform(1, 4000)};
    case 1:
      return MovingAt(c, {rng->Uniform(-300, 300), rng->Uniform(-300, 300)},
                      rng->Uniform(1, 4000),
                      static_cast<int>(rng->NextIndex(5)));
    case 2:
      return ConvexPolygon::Square(c, rng->Uniform(1, 4000));
    default: {
      std::vector<Vec2> pts;
      const size_t n = 2 + rng->NextIndex(5);
      Vec2 p = c;
      for (size_t i = 0; i < n; ++i) {
        pts.push_back(p);
        p.x += rng->Uniform(-2000, 2000);
        p.y += rng->Uniform(-2000, 2000);
      }
      return Stripe(Polyline(std::move(pts)), rng->Uniform(1, 500));
    }
  }
}

// Property: the AABB-pruned comparison predicates decide exactly like the
// unpruned exact distances. Pruning may only skip work, never flip a
// branch — the serial engine's decisions are the determinism contract.
TEST(RegionShapesTest, PropertyPrunedPredicatesMatchExactDecisions) {
  Rng rng(2024);
  for (int trial = 0; trial < 400; ++trial) {
    const SafeRegionShape a = RandomShape(&rng);
    const SafeRegionShape b = RandomShape(&rng);
    const int epoch = static_cast<int>(rng.NextIndex(12));
    // Thresholds straddling both branches: small draws usually prune, the
    // mid-scale draw sits near shape spacing, the huge one never prunes.
    for (const double threshold :
         {rng.Uniform(0, 2000), rng.Uniform(0, 60000), 150000.0}) {
      const double exact = ShapeMinDistance(a, b, epoch);
      EXPECT_EQ(ShapeMinDistanceBelow(a, b, epoch, threshold),
                exact < threshold)
          << "trial " << trial;
      EXPECT_EQ(ShapeMinDistanceBelow(a, b, epoch, threshold, true),
                exact <= threshold)
          << "trial " << trial;
      const Vec2 p{rng.Uniform(-40000, 40000), rng.Uniform(-40000, 40000)};
      const double exact_p = ShapeDistanceToPoint(a, p, epoch);
      EXPECT_EQ(ShapeDistanceToPointBelow(a, p, epoch, threshold),
                exact_p < threshold)
          << "trial " << trial;
      EXPECT_EQ(ShapeDistanceToPointBelow(a, p, epoch, threshold, true),
                exact_p <= threshold)
          << "trial " << trial;
    }
  }
}

// The soundness of the prune itself: a cached box's distance never exceeds
// the exact distance (the box contains the shape), so `box > threshold`
// proves `exact > threshold`.
TEST(RegionShapesTest, PropertyBoxDistanceLowerBoundsExact) {
  Rng rng(31337);
  for (int trial = 0; trial < 400; ++trial) {
    const SafeRegionShape a = RandomShape(&rng);
    const SafeRegionShape b = RandomShape(&rng);
    const int epoch = static_cast<int>(rng.NextIndex(12));
    BBox box_a, box_b;
    if (!ShapeBoundsAt(a, epoch, &box_a) || !ShapeBoundsAt(b, epoch, &box_b)) {
      continue;  // Only degenerate shapes decline to report bounds.
    }
    EXPECT_LE(box_a.DistanceToBox(box_b),
              ShapeMinDistance(a, b, epoch) + 1e-9)
        << "trial " << trial;
    const Vec2 p{rng.Uniform(-40000, 40000), rng.Uniform(-40000, 40000)};
    EXPECT_LE(box_a.DistanceToPoint(p),
              ShapeDistanceToPoint(a, p, epoch) + 1e-9)
        << "trial " << trial;
  }
}

// A vertex-free polygon reports distance 0 to everything (the library's
// degenerate-shape convention), so no sound box exists: ShapeBoundsAt must
// decline and the pruned predicate must still agree with the exact path.
TEST(RegionShapesTest, EmptyPolygonDeclinesBoundsButDecidesExactly) {
  const SafeRegionShape empty = ConvexPolygon(std::vector<Vec2>{});
  BBox box;
  EXPECT_FALSE(ShapeBoundsAt(empty, 0, &box));
  const SafeRegionShape far_circle = Circle{{1e6, 1e6}, 1.0};
  EXPECT_TRUE(ShapeMinDistanceBelow(empty, far_circle, 0, 1.0));
  EXPECT_TRUE(ShapeDistanceToPointBelow(empty, {1e6, 1e6}, 0, 1.0));
}

}  // namespace
}  // namespace proxdet
