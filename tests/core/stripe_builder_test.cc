#include "core/stripe_builder.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

std::vector<Vec2> StraightPrediction(const Vec2& from, const Vec2& step,
                                     int count) {
  std::vector<Vec2> out;
  Vec2 p = from;
  for (int i = 0; i < count; ++i) {
    p += step;
    out.push_back(p);
  }
  return out;
}

TEST(StripeBuilderTest, NoFriendsFullHorizon) {
  StripeBuildConfig config;
  config.sigma = 10.0;
  config.max_horizon = 8;
  const Vec2 current{0, 0};
  const auto predicted = StraightPrediction(current, {100, 0}, 8);
  const StripeBuildResult res =
      BuildPredictiveStripe(current, predicted, {}, 100.0, config, 0);
  EXPECT_EQ(res.m, 8);
  EXPECT_EQ(res.stripe.path().points().size(), 9u);  // Anchored at current.
  EXPECT_DOUBLE_EQ(res.stripe.radius(), config.sigma_cap_mult * config.sigma);
  EXPECT_TRUE(res.stripe.Contains(current));
}

TEST(StripeBuilderTest, ContainsCurrentLocationAlways) {
  StripeBuildConfig config;
  config.sigma = 5.0;
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec2 current{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    std::vector<Vec2> predicted;
    Vec2 p = current;
    for (int i = 0; i < 6; ++i) {
      p += Vec2{rng.Uniform(-30, 30), rng.Uniform(-30, 30)};
      predicted.push_back(p);
    }
    const SafeRegionShape friend_region =
        Circle{{rng.Uniform(100, 400), 0}, 10.0};
    std::vector<StripeFriendConstraint> friends;
    friends.push_back({&friend_region, 50.0, 3.0});
    const StripeBuildResult res = BuildPredictiveStripe(
        current, predicted, friends, 10.0, config, 0);
    EXPECT_TRUE(res.stripe.Contains(current));
  }
}

TEST(StripeBuilderTest, RespectsFriendSafetyInvariant) {
  // Whatever (m, s) the builder picks, the stripe keeps alert-radius
  // clearance from every constraint region.
  StripeBuildConfig config;
  config.sigma = 20.0;
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const Vec2 current{0, 0};
    std::vector<Vec2> predicted;
    Vec2 p = current;
    for (int i = 0; i < 10; ++i) {
      p += Vec2{rng.Uniform(0, 40), rng.Uniform(-20, 20)};
      predicted.push_back(p);
    }
    std::vector<SafeRegionShape> shapes;
    std::vector<StripeFriendConstraint> friends;
    const int nf = 1 + static_cast<int>(rng.NextIndex(3));
    shapes.reserve(nf);
    for (int f = 0; f < nf; ++f) {
      shapes.push_back(Circle{{rng.Uniform(150, 600), rng.Uniform(-300, 300)},
                              rng.Uniform(5, 40)});
      friends.push_back(
          {&shapes.back(), rng.Uniform(20, 80), rng.Uniform(1, 10)});
    }
    // Ensure positive initial slack, else the engine would have probed.
    bool feasible = true;
    for (const auto& f : friends) {
      if (ShapeDistanceToPoint(*f.region, current, 0) <= f.alert_radius) {
        feasible = false;
      }
    }
    if (!feasible) continue;
    const StripeBuildResult res = BuildPredictiveStripe(
        current, predicted, friends, 20.0, config, 0);
    for (const auto& f : friends) {
      const double d =
          ShapeMinDistance(SafeRegionShape(res.stripe), *f.region, 0);
      EXPECT_GE(d, f.alert_radius - 1e-6);
    }
  }
}

TEST(StripeBuilderTest, TruncatesAtFriendViolatingAnchor) {
  // Predictions head straight into a friend's alert zone; anchors past the
  // violation must not be enclosed (Algorithm 2 lines 2-6).
  StripeBuildConfig config;
  config.sigma = 5.0;
  const Vec2 current{0, 0};
  const auto predicted = StraightPrediction(current, {100, 0}, 10);
  const SafeRegionShape friend_region = Circle{{520, 0}, 10.0};
  std::vector<StripeFriendConstraint> friends;
  friends.push_back({&friend_region, 60.0, 2.0});
  // Anchor 5 is at x=500, within 60+10 of the friend: m <= 4.
  const StripeBuildResult res =
      BuildPredictiveStripe(current, predicted, friends, 100.0, config, 0);
  EXPECT_LE(res.m, 4);
}

TEST(StripeBuilderTest, EmptyPredictionDegeneratesToDisk) {
  StripeBuildConfig config;
  config.sigma = 8.0;
  const StripeBuildResult res =
      BuildPredictiveStripe({5, 5}, {}, {}, 2.0, config, 0);
  EXPECT_EQ(res.m, 0);
  EXPECT_EQ(res.stripe.path().points().size(), 1u);
  EXPECT_DOUBLE_EQ(res.stripe.radius(), config.sigma_cap_mult * config.sigma);
  EXPECT_TRUE(res.stripe.Contains({5, 5}));
}

TEST(StripeBuilderTest, SqueezedUserGetsPointRegion) {
  // Friend region almost touching: no feasible radius, stripe collapses.
  StripeBuildConfig config;
  config.sigma = 5.0;
  const Vec2 current{0, 0};
  const SafeRegionShape friend_region = Circle{{61.0, 0}, 10.0};
  std::vector<StripeFriendConstraint> friends;
  friends.push_back({&friend_region, 50.0, 2.0});  // Slack = 1.
  const StripeBuildResult res = BuildPredictiveStripe(
      current, StraightPrediction(current, {50, 0}, 5), friends, 50.0,
      config, 0);
  EXPECT_LE(res.stripe.radius(), 1.0);
  EXPECT_TRUE(res.stripe.Contains(current));
}

TEST(StripeBuilderTest, BetterPredictorLongerObjectiveAtEqualCap) {
  // At the same radius cap, a smaller sigma (better model) yields a stay
  // probability and hence an objective at least as large. (With unequal
  // caps the comparison is not monotone: the cap scales with sigma, so a
  // sloppy model is allowed a bigger — longer-lived — region when no
  // friend pressure punishes it.)
  const Vec2 current{0, 0};
  const auto predicted = StraightPrediction(current, {50, 0}, 10);
  const SafeRegionShape friend_region = Circle{{0, 800}, 10.0};
  std::vector<StripeFriendConstraint> friends;
  friends.push_back({&friend_region, 50.0, 4.0});
  StripeBuildConfig good;
  good.sigma = 5.0;
  good.sigma_cap_mult = 64.0;  // Cap 320.
  StripeBuildConfig bad;
  bad.sigma = 80.0;
  bad.sigma_cap_mult = 4.0;  // Cap 320.
  const auto res_good =
      BuildPredictiveStripe(current, predicted, friends, 50.0, good, 0);
  const auto res_bad =
      BuildPredictiveStripe(current, predicted, friends, 50.0, bad, 0);
  EXPECT_GE(res_good.solution.Objective() + 1e-9,
            res_bad.solution.Objective());
}

TEST(StripeBuilderTest, HorizonCapRespected) {
  StripeBuildConfig config;
  config.sigma = 10.0;
  config.max_horizon = 3;
  const Vec2 current{0, 0};
  const auto predicted = StraightPrediction(current, {50, 0}, 10);
  const StripeBuildResult res =
      BuildPredictiveStripe(current, predicted, {}, 50.0, config, 0);
  EXPECT_LE(res.m, 3);
}

}  // namespace
}  // namespace proxdet
