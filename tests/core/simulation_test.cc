#include "core/simulation.h"

#include <gtest/gtest.h>

#include "bench_support/experiment.h"

namespace proxdet {
namespace {

WorkloadConfig TinyConfig(DatasetKind dataset) {
  WorkloadConfig config;
  config.dataset = dataset;
  config.num_users = 40;
  config.epochs = 50;
  config.speed_steps = 8;
  config.avg_friends = 5.0;
  config.alert_radius_m = 5000.0;
  config.seed = 1234;
  config.training_users = 12;
  config.training_epochs = 80;
  return config;
}

TEST(SimulationTest, MethodNamesMatchPaper) {
  EXPECT_EQ(MethodName(Method::kNaive), "Naive");
  EXPECT_EQ(MethodName(Method::kCmd), "CMD");
  EXPECT_EQ(MethodName(Method::kStripeKf), "Stripe+KF");
  EXPECT_EQ(MethodName(Method::kStripeR2d2), "Stripe+R2-D2");
  EXPECT_EQ(PaperMethodSet().size(), 8u);
}

TEST(SimulationTest, BuildWorkloadShape) {
  const WorkloadConfig config = TinyConfig(DatasetKind::kGeoLife);
  const Workload workload = BuildWorkload(config);
  EXPECT_EQ(workload.world.user_count(), config.num_users);
  EXPECT_EQ(workload.world.epochs(), config.epochs);
  EXPECT_EQ(workload.training.size(), config.training_users);
  // Training data is epoch-spaced (dt = tick * V).
  EXPECT_NEAR(workload.training.front().dt(),
              5.0 * config.speed_steps, 1e-9);
  // Ground truth precomputed and sorted.
  for (size_t i = 1; i < workload.ground_truth.size(); ++i) {
    EXPECT_TRUE(workload.ground_truth[i - 1] < workload.ground_truth[i] ||
                workload.ground_truth[i - 1] == workload.ground_truth[i]);
  }
}

TEST(SimulationTest, BuildWorkloadDeterministic) {
  const WorkloadConfig config = TinyConfig(DatasetKind::kTruck);
  const Workload a = BuildWorkload(config);
  const Workload b = BuildWorkload(config);
  EXPECT_EQ(a.ground_truth.size(), b.ground_truth.size());
  EXPECT_EQ(a.world.graph().edge_count(), b.world.graph().edge_count());
  EXPECT_EQ(a.world.Position(3, 17), b.world.Position(3, 17));
}

TEST(SimulationTest, CalibratedSigmaIsMonotonePerStep) {
  const Workload workload = BuildWorkload(TinyConfig(DatasetKind::kTruck));
  const auto predictor =
      MakeTrainedPredictor(PredictorKind::kKalman, workload);
  const StripePolicy::Options opts =
      CalibratedStripeOptions(predictor.get(), workload);
  ASSERT_FALSE(opts.build.sigma_per_step.empty());
  for (size_t j = 1; j < opts.build.sigma_per_step.size(); ++j) {
    EXPECT_GE(opts.build.sigma_per_step[j],
              opts.build.sigma_per_step[j - 1]);
  }
  EXPECT_GE(opts.build.sigma_per_step.front(), 1.0);
}

TEST(SimulationTest, MatchRegionAblationStaysExactAndCostsMore) {
  const Workload workload =
      BuildWorkload(TinyConfig(DatasetKind::kSingaporeTaxi));
  RegionDetector::Options with;
  RegionDetector::Options without;
  without.use_match_regions = false;
  const RunResult a = RunMethod(Method::kStripeKf, workload, with);
  const RunResult b = RunMethod(Method::kStripeKf, workload, without);
  EXPECT_TRUE(a.alerts_exact);
  EXPECT_TRUE(b.alerts_exact);
  if (!workload.ground_truth.empty()) {
    // Without Def. 3, matched pairs stream reports every epoch.
    EXPECT_GE(b.stats.reports, a.stats.reports);
  }
}

TEST(SimulationTest, Eq8AblationStaysExact) {
  const Workload workload = BuildWorkload(TinyConfig(DatasetKind::kTruck));
  auto predictor = MakeTrainedPredictor(PredictorKind::kKalman, workload);
  StripePolicy::Options sopts =
      CalibratedStripeOptions(predictor.get(), workload);
  sopts.build.use_eq8_distance = true;
  RegionDetector::Options options;
  options.validate_builds = true;  // Eq. 8 must never break soundness.
  RegionDetector detector(
      std::make_unique<StripePolicy>(std::move(predictor), sopts), options);
  detector.Run(workload.world);
  EXPECT_EQ(detector.SortedAlerts(), workload.ground_truth);
}

TEST(SimulationTest, DefaultExperimentConfigMatchesTable2Defaults) {
  const WorkloadConfig config =
      DefaultExperimentConfig(DatasetKind::kBeijingTaxi);
  EXPECT_EQ(config.speed_steps, 8);          // V default.
  EXPECT_DOUBLE_EQ(config.avg_friends, 30);  // F default.
  EXPECT_DOUBLE_EQ(config.alert_radius_m, 6000.0);  // r default.
  EXPECT_EQ(config.dataset, DatasetKind::kBeijingTaxi);
}

TEST(SimulationTest, RunSuiteReturnsResultsInMethodOrder) {
  const Workload workload = BuildWorkload(TinyConfig(DatasetKind::kGeoLife));
  const std::vector<Method> methods{Method::kNaive, Method::kCmd};
  const std::vector<RunResult> results = RunSuite(methods, workload);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].method, Method::kNaive);
  EXPECT_EQ(results[1].method, Method::kCmd);
  EXPECT_TRUE(results[0].alerts_exact);
  EXPECT_TRUE(results[1].alerts_exact);
}

TEST(SimulationTest, FigureTableRendersSeries) {
  const Workload workload = BuildWorkload(TinyConfig(DatasetKind::kGeoLife));
  const std::vector<Method> methods{Method::kNaive};
  std::vector<std::vector<RunResult>> results{RunSuite(methods, workload)};
  const Table table =
      MakeFigureTable("demo", "x", {"10"}, methods, results);
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Naive"), std::string::npos);
  EXPECT_NE(rendered.find("10"), std::string::npos);
}

TEST(SimulationTest, StripeLinearUsesLinearPredictor) {
  const Workload workload = BuildWorkload(TinyConfig(DatasetKind::kTruck));
  const auto detector = MakeDetector(Method::kStripeLinear, workload);
  EXPECT_EQ(detector->name(), "Stripe+Linear");
}

}  // namespace
}  // namespace proxdet
