#include "core/world.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

Trajectory LineFrom(double x0, double step, size_t n) {
  std::vector<Vec2> pts;
  for (size_t i = 0; i < n; ++i) pts.push_back({x0 + step * i, 0.0});
  return Trajectory(std::move(pts), 5.0);
}

World TwoUserWorld(double gap, double closing_per_tick, int speed_steps,
                   int epochs, double r) {
  // User 0 fixed at origin; user 1 approaches from +x.
  std::vector<Trajectory> trajs;
  const size_t ticks = static_cast<size_t>(epochs) * speed_steps + 1;
  trajs.push_back(LineFrom(0.0, 0.0, ticks));
  trajs.push_back(LineFrom(gap, -closing_per_tick, ticks));
  InterestGraph g(2);
  g.AddEdge(0, 1, r);
  return World(std::move(trajs), std::move(g), speed_steps, epochs);
}

TEST(WorldTest, PositionUsesSpeedSteps) {
  const World w = TwoUserWorld(1000.0, 1.0, 4, 10, 100.0);
  EXPECT_EQ(w.Position(1, 0), (Vec2{1000, 0}));
  EXPECT_EQ(w.Position(1, 1), (Vec2{996, 0}));  // 4 ticks of 1 m.
  EXPECT_DOUBLE_EQ(w.epoch_seconds(), 20.0);    // 4 ticks x 5 s.
}

TEST(WorldTest, PositionClampsBeyondTrajectory) {
  const World w = TwoUserWorld(1000.0, 1.0, 4, 10, 100.0);
  EXPECT_EQ(w.Position(0, 999), (Vec2{0, 0}));
}

TEST(WorldTest, RecentWindowEpochSpaced) {
  const World w = TwoUserWorld(1000.0, 1.0, 4, 10, 100.0);
  const std::vector<Vec2> win = w.RecentWindow(1, 3, 3);
  ASSERT_EQ(win.size(), 3u);
  EXPECT_EQ(win[0], (Vec2{996, 0}));
  EXPECT_EQ(win[2], (Vec2{988, 0}));
}

TEST(WorldTest, RecentWindowTruncatedAtStart) {
  const World w = TwoUserWorld(1000.0, 1.0, 4, 10, 100.0);
  EXPECT_EQ(w.RecentWindow(0, 1, 5).size(), 2u);
  EXPECT_EQ(w.RecentWindow(0, 0, 5).size(), 1u);
}

TEST(WorldTest, GroundTruthSingleCrossing) {
  // Gap 1000, closing 2 m/tick, V=4 -> 8 m/epoch; r=900: crossing when
  // distance < 900, i.e., after 12.5 epochs -> epoch 13.
  const World w = TwoUserWorld(1000.0, 2.0, 4, 30, 900.0);
  const std::vector<AlertEvent> alerts = w.GroundTruthAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].u, 0);
  EXPECT_EQ(alerts[0].w, 1);
  EXPECT_EQ(alerts[0].epoch, 13);
}

TEST(WorldTest, GroundTruthNoAlertWhenNeverClose) {
  const World w = TwoUserWorld(1000.0, 0.0, 4, 30, 900.0);
  EXPECT_TRUE(w.GroundTruthAlerts().empty());
}

TEST(WorldTest, GroundTruthRealertAfterSeparation) {
  // Approach, pass through, separate beyond r, approach again? Use a
  // trajectory that oscillates: build manually.
  std::vector<Vec2> a;
  std::vector<Vec2> b;
  const int epochs = 9;
  for (int t = 0; t <= epochs; ++t) {
    a.push_back({0, 0});
    // Distance pattern per epoch: 10, 2, 2, 10, 10, 2, 10, ...
    const double d = (t % 4 == 1 || t % 4 == 2) ? 2.0 : 10.0;
    b.push_back({d, 0});
  }
  InterestGraph g(2);
  g.AddEdge(0, 1, 5.0);
  const World w(
      {Trajectory(std::move(a), 5.0), Trajectory(std::move(b), 5.0)},
      std::move(g), 1, epochs);
  const std::vector<AlertEvent> alerts = w.GroundTruthAlerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].epoch, 1);
  EXPECT_EQ(alerts[1].epoch, 5);
}

TEST(WorldTest, DynamicInsertionAlertsImmediately) {
  World w = TwoUserWorld(100.0, 0.0, 1, 10, 900.0);
  // No edge initially... the base world has an edge; build a fresh one.
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0.0, 0.0, 11));
  trajs.push_back(LineFrom(100.0, 0.0, 11));
  World w2(std::move(trajs), InterestGraph(2), 1, 10);
  w2.ScheduleUpdate({.epoch = 4, .insert = true, .u = 0, .w = 1,
                     .alert_radius = 900.0});
  const std::vector<AlertEvent> alerts = w2.GroundTruthAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].epoch, 4);  // Already within radius at insertion.
}

TEST(WorldTest, DynamicDeletionStopsTracking) {
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0.0, 0.0, 21));
  trajs.push_back(LineFrom(1000.0, -10.0, 21));  // Crosses r=900 at epoch 11.
  InterestGraph g(2);
  g.AddEdge(0, 1, 900.0);
  World w(std::move(trajs), std::move(g), 1, 20);
  w.ScheduleUpdate({.epoch = 5, .insert = false, .u = 0, .w = 1,
                    .alert_radius = 0.0});
  EXPECT_TRUE(w.GroundTruthAlerts().empty());
}

// ScheduleUpdate used to re-sort the whole schedule on every call
// (O(n^2 log n) across a burst); it now just marks the list dirty and
// scheduled_updates() stable-sorts lazily on first read. Out-of-order
// scheduling must still yield an epoch-sorted schedule, ties must keep
// scheduling order, and scheduling after a read must re-sort.
TEST(WorldTest, OutOfOrderSchedulingSortsLazilyAndStably) {
  std::vector<Trajectory> trajs;
  trajs.push_back(LineFrom(0.0, 0.0, 21));
  trajs.push_back(LineFrom(100.0, 0.0, 21));
  trajs.push_back(LineFrom(200.0, 0.0, 21));
  World w(std::move(trajs), InterestGraph(3), 1, 20);
  w.ScheduleUpdate({.epoch = 7, .insert = true, .u = 0, .w = 1,
                    .alert_radius = 500.0});
  w.ScheduleUpdate({.epoch = 2, .insert = true, .u = 1, .w = 2,
                    .alert_radius = 500.0});
  w.ScheduleUpdate({.epoch = 7, .insert = false, .u = 0, .w = 1,
                    .alert_radius = 0.0});

  const std::vector<GraphUpdate>& sorted = w.scheduled_updates();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].epoch, 2);
  EXPECT_EQ(sorted[1].epoch, 7);
  EXPECT_EQ(sorted[2].epoch, 7);
  EXPECT_TRUE(sorted[1].insert);   // Stable: insert scheduled first...
  EXPECT_FALSE(sorted[2].insert);  // ...delete keeps its later position.

  // Scheduling after a read marks the list dirty again.
  w.ScheduleUpdate({.epoch = 1, .insert = true, .u = 0, .w = 2,
                    .alert_radius = 500.0});
  const std::vector<GraphUpdate>& resorted = w.scheduled_updates();
  ASSERT_EQ(resorted.size(), 4u);
  EXPECT_EQ(resorted[0].epoch, 1);
  EXPECT_EQ(resorted[3].epoch, 7);

  // GroundTruthAlerts consumes the sorted view: the epoch-7 insert is
  // cancelled by its same-epoch delete, so only edges (0,2) and (1,2)
  // (within radius at insertion) alert.
  const std::vector<AlertEvent> alerts = w.GroundTruthAlerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0], (AlertEvent{1, 0, 2}));
  EXPECT_EQ(alerts[1], (AlertEvent{2, 1, 2}));
}

// The allocation-free RecentWindow overload must agree with the returning
// one and fully overwrite whatever the reused buffer held.
TEST(WorldTest, RecentWindowIntoBufferMatchesReturningOverload) {
  const World w = TwoUserWorld(1000.0, 1.0, 4, 10, 100.0);
  std::vector<Vec2> buf(7, Vec2{-1.0, -1.0});  // Stale content to clobber.
  for (const int epoch : {0, 1, 3, 9}) {
    w.RecentWindow(1, epoch, 3, &buf);
    EXPECT_EQ(buf, w.RecentWindow(1, epoch, 3)) << "epoch " << epoch;
  }
}

TEST(WorldTest, SortAlertsCanonicalOrder) {
  std::vector<AlertEvent> alerts{{5, 2, 3}, {1, 7, 9}, {5, 0, 1}};
  SortAlerts(&alerts);
  EXPECT_EQ(alerts[0].epoch, 1);
  EXPECT_EQ(alerts[1], (AlertEvent{5, 0, 1}));
  EXPECT_EQ(alerts[2], (AlertEvent{5, 2, 3}));
}

}  // namespace
}  // namespace proxdet
