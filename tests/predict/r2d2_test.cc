#include "predict/r2d2.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

std::vector<Trajectory> MakeCorpus() {
  // Historical users all drive the same east-west road at 10 m/tick and
  // turn north at x = 500.
  std::vector<Trajectory> corpus;
  for (int k = 0; k < 8; ++k) {
    std::vector<Vec2> pts;
    const double y0 = k * 2.0;  // Small lane offsets.
    for (double x = 0; x <= 500; x += 10) pts.push_back({x, y0});
    for (double y = y0; y <= 400; y += 10) pts.push_back({500, y});
    corpus.emplace_back(std::move(pts), 1.0);
  }
  return corpus;
}

TEST(R2d2Test, UntrainedFallsBack) {
  R2d2Predictor p(R2d2Predictor::Options{}, 3);
  EXPECT_FALSE(p.trained());
  const std::vector<Vec2> recent{{0, 0}, {10, 0}, {20, 0}};
  const std::vector<Vec2> out = p.Predict(recent, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0].x, 30.0, 3.0);  // Kalman fallback ~ linear.
}

TEST(R2d2Test, TrainingIndexesCorpus) {
  R2d2Predictor p(R2d2Predictor::Options{}, 3);
  p.Train(MakeCorpus());
  EXPECT_TRUE(p.trained());
  EXPECT_EQ(p.reference_count(), 8u);
}

TEST(R2d2Test, PredictsTheLearnedTurn) {
  // A linear model would continue east past x=500; R2-D2's references all
  // turn north there.
  R2d2Predictor::Options opts;
  opts.step_noise_m = 0.5;
  R2d2Predictor p(opts, 3);
  p.Train(MakeCorpus());
  std::vector<Vec2> recent;
  for (double x = 400; x <= 490; x += 10) recent.push_back({x, 1.0});
  const std::vector<Vec2> out = p.Predict(recent, 12);
  ASSERT_EQ(out.size(), 12u);
  // After ~1 step the references turn; by step 12 they are well north.
  EXPECT_LT(out.back().x, 520.0);
  EXPECT_GT(out.back().y, 60.0);
}

TEST(R2d2Test, FallsBackWhenQueryFarFromCorpus) {
  R2d2Predictor p(R2d2Predictor::Options{}, 3);
  p.Train(MakeCorpus());
  // Query in a region the corpus never visits.
  std::vector<Vec2> recent;
  for (double x = 0; x < 50; x += 10) recent.push_back({x + 5000, 5000});
  const std::vector<Vec2> out = p.Predict(recent, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0].x, 5050.0, 5.0);  // Kalman fallback continues east.
}

TEST(R2d2Test, StraightSectionPredictedAccurately) {
  R2d2Predictor::Options opts;
  opts.step_noise_m = 0.5;
  R2d2Predictor p(opts, 7);
  p.Train(MakeCorpus());
  std::vector<Vec2> recent;
  for (double x = 100; x <= 190; x += 10) recent.push_back({x, 1.0});
  const std::vector<Vec2> out = p.Predict(recent, 5);
  for (size_t j = 0; j < out.size(); ++j) {
    EXPECT_NEAR(out[j].x, 190.0 + 10.0 * (j + 1), 8.0);
    EXPECT_NEAR(out[j].y, 1.0, 8.0);
  }
}

TEST(R2d2Test, DeterministicForSeed) {
  R2d2Predictor a(R2d2Predictor::Options{}, 99);
  R2d2Predictor b(R2d2Predictor::Options{}, 99);
  a.Train(MakeCorpus());
  b.Train(MakeCorpus());
  std::vector<Vec2> recent;
  for (double x = 100; x <= 190; x += 10) recent.push_back({x, 1.0});
  const std::vector<Vec2> oa = a.Predict(recent, 4);
  const std::vector<Vec2> ob = b.Predict(recent, 4);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(oa[i], ob[i]);
}

}  // namespace
}  // namespace proxdet
