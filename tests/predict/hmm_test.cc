#include "predict/hmm.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

TEST(GridQuantizerTest, RoundTripCellCenter) {
  const GridQuantizer q(BBox{{0, 0}, {100, 100}}, 10, 10);
  EXPECT_EQ(q.cell_count(), 100);
  const int cell = q.CellOf({25, 75});
  EXPECT_EQ(cell, q.CellOf(q.CenterOf(cell)));
  EXPECT_EQ(q.CenterOf(cell), (Vec2{25, 75}));
}

TEST(GridQuantizerTest, ClampsOutOfExtent) {
  const GridQuantizer q(BBox{{0, 0}, {100, 100}}, 10, 10);
  EXPECT_EQ(q.CellOf({-50, -50}), 0);
  EXPECT_EQ(q.CellOf({500, 500}), 99);
}

TEST(GridQuantizerTest, RowMajorLayout) {
  const GridQuantizer q(BBox{{0, 0}, {100, 100}}, 10, 10);
  EXPECT_EQ(q.CellOf({5, 5}), 0);
  EXPECT_EQ(q.CellOf({95, 5}), 9);
  EXPECT_EQ(q.CellOf({5, 95}), 90);
}

TEST(DiscreteHmmTest, RowsAreStochasticAfterTraining) {
  DiscreteHmm hmm(3, 4, 7);
  const std::vector<std::vector<int>> seqs{{0, 1, 2, 3, 0, 1, 2, 3},
                                           {0, 1, 2, 3, 0, 1, 2, 3}};
  hmm.Train(seqs, 5);
  for (int i = 0; i < 3; ++i) {
    double row_a = 0.0;
    double row_b = 0.0;
    for (int j = 0; j < 3; ++j) row_a += hmm.transition(i, j);
    for (int o = 0; o < 4; ++o) row_b += hmm.emission(i, o);
    EXPECT_NEAR(row_a, 1.0, 1e-6);
    EXPECT_NEAR(row_b, 1.0, 1e-6);
  }
}

TEST(DiscreteHmmTest, TrainingIncreasesLikelihood) {
  DiscreteHmm hmm(3, 5, 11);
  std::vector<std::vector<int>> seqs;
  for (int s = 0; s < 4; ++s) {
    std::vector<int> seq;
    for (int i = 0; i < 30; ++i) seq.push_back((i + s) % 5);
    seqs.push_back(std::move(seq));
  }
  const double before = hmm.LogLikelihood(seqs[0]);
  hmm.Train(seqs, 15);
  const double after = hmm.LogLikelihood(seqs[0]);
  EXPECT_GT(after, before);
}

TEST(DiscreteHmmTest, PosteriorIsDistribution) {
  DiscreteHmm hmm(4, 3, 13);
  hmm.Train({{0, 1, 2, 0, 1, 2}}, 5);
  const std::vector<double> post = hmm.Posterior({0, 1, 2});
  double total = 0.0;
  for (const double p : post) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DiscreteHmmTest, PredictObservationCyclic) {
  // Deterministic cycle 0 -> 1 -> 2 -> 0: the HMM should put most predicted
  // mass on the correct next symbol.
  DiscreteHmm hmm(3, 3, 17);
  std::vector<int> cyc;
  for (int i = 0; i < 60; ++i) cyc.push_back(i % 3);
  hmm.Train({cyc}, 40);
  const std::vector<double> post = hmm.Posterior({0, 1, 2, 0, 1});
  const std::vector<double> obs = hmm.PredictObservation(post, 1);
  EXPECT_GT(obs[2], obs[0]);
  EXPECT_GT(obs[2], obs[1]);
}

Trajectory MakeLoopTrajectory(int laps) {
  // A rectangular circuit on a 1000m extent; second-order transitions make
  // the direction around the loop predictable.
  std::vector<Vec2> pts;
  for (int lap = 0; lap < laps; ++lap) {
    for (double x = 0; x < 1000; x += 50) pts.push_back({x, 0});
    for (double y = 0; y < 1000; y += 50) pts.push_back({1000, y});
    for (double x = 1000; x > 0; x -= 50) pts.push_back({x, 1000});
    for (double y = 1000; y > 0; y -= 50) pts.push_back({0, y});
  }
  return Trajectory(std::move(pts), 1.0);
}

TEST(HmmPredictorTest, UntrainedFallsBackToLinear) {
  HmmPredictor p(10, 10);
  EXPECT_FALSE(p.trained());
  const std::vector<Vec2> recent{{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Vec2> out = p.Predict(recent, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[1].x, 4.0, 1e-9);
}

TEST(HmmPredictorTest, LearnsLoopDirection) {
  HmmPredictor p(20, 20);
  p.Train({MakeLoopTrajectory(6)});
  ASSERT_TRUE(p.trained());
  // Query: moving right along the bottom edge, far from the corner.
  std::vector<Vec2> recent;
  for (double x = 200; x <= 400; x += 50) recent.push_back({x, 0});
  const std::vector<Vec2> out = p.Predict(recent, 4);
  ASSERT_EQ(out.size(), 4u);
  // Predictions continue rightward (x grows), staying near the bottom edge.
  EXPECT_GT(out.back().x, 400.0);
  EXPECT_LT(out.back().y, 200.0);
}

TEST(HmmPredictorTest, PredictionsMatchUserSpeed) {
  HmmPredictor p(20, 20);
  p.Train({MakeLoopTrajectory(6)});
  std::vector<Vec2> recent;
  for (double x = 200; x <= 400; x += 50) recent.push_back({x, 0});
  const std::vector<Vec2> out = p.Predict(recent, 3);
  // Per-step displacement tracks the recent 50 m/tick speed.
  EXPECT_NEAR(Distance(recent.back(), out[0]), 50.0, 25.0);
}

TEST(HmmPredictorTest, ReturnsRequestedCount) {
  HmmPredictor p(10, 10);
  p.Train({MakeLoopTrajectory(2)});
  const std::vector<Vec2> recent{{100, 0}, {150, 0}};
  EXPECT_EQ(p.Predict(recent, 7).size(), 7u);
}

}  // namespace
}  // namespace proxdet
