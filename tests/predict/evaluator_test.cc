#include "predict/evaluator.h"

#include <gtest/gtest.h>

#include "predict/linear_predictor.h"

namespace proxdet {
namespace {

/// A test double with a known, constant miss distance: predicts the true
/// future shifted sideways by `offset`.
class OraclePlusOffset : public Predictor {
 public:
  OraclePlusOffset(const Trajectory* truth, Vec2 offset)
      : truth_(truth), offset_(offset) {}

  std::vector<Vec2> Predict(const std::vector<Vec2>& recent,
                            size_t steps) override {
    // Locate "now" on the truth trajectory by matching the last point.
    size_t now = 0;
    double best = 1e18;
    for (size_t i = 0; i < truth_->size(); ++i) {
      const double d = Distance(truth_->at(i), recent.back());
      if (d < best) {
        best = d;
        now = i;
      }
    }
    std::vector<Vec2> out;
    for (size_t j = 1; j <= steps; ++j) {
      const size_t idx = std::min(now + j, truth_->size() - 1);
      out.push_back(truth_->at(idx) + offset_);
    }
    return out;
  }

  std::string name() const override { return "Oracle+offset"; }

 private:
  const Trajectory* truth_;
  Vec2 offset_;
};

Trajectory MakeLine() {
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i) pts.push_back({10.0 * i, 0.0});
  return Trajectory(std::move(pts), 1.0);
}

TEST(EvaluatorTest, PerfectPredictorZeroError) {
  const Trajectory line = MakeLine();
  OraclePlusOffset oracle(&line, {0, 0});
  Rng rng(1);
  const PredictionEvaluation eval =
      EvaluatePredictor(&oracle, {line}, 5, 8, 50, &rng);
  EXPECT_GT(eval.query_count, 0u);
  EXPECT_NEAR(eval.mean_error_m, 0.0, 1e-9);
}

TEST(EvaluatorTest, ConstantOffsetMeasuredExactly) {
  const Trajectory line = MakeLine();
  OraclePlusOffset oracle(&line, {0, 7});
  Rng rng(2);
  const PredictionEvaluation eval =
      EvaluatePredictor(&oracle, {line}, 5, 8, 50, &rng);
  EXPECT_NEAR(eval.mean_error_m, 7.0, 1e-9);
  ASSERT_EQ(eval.per_step_error_m.size(), 8u);
  for (const double e : eval.per_step_error_m) EXPECT_NEAR(e, 7.0, 1e-9);
}

TEST(EvaluatorTest, LinearPredictorPerfectOnLinearData) {
  const Trajectory line = MakeLine();
  LinearPredictor p;
  Rng rng(3);
  const PredictionEvaluation eval =
      EvaluatePredictor(&p, {line}, 5, 10, 40, &rng);
  EXPECT_NEAR(eval.mean_error_m, 0.0, 1e-6);
}

TEST(EvaluatorTest, SkipsTooShortTrajectories) {
  const Trajectory tiny(std::vector<Vec2>{{0, 0}, {1, 0}}, 1.0);
  LinearPredictor p;
  Rng rng(4);
  const PredictionEvaluation eval =
      EvaluatePredictor(&p, {tiny}, 5, 10, 20, &rng);
  EXPECT_EQ(eval.query_count, 0u);
  EXPECT_EQ(eval.mean_error_m, 0.0);
}

TEST(EvaluatorTest, SigmaCalibrationMatchesFoldedMean) {
  // Constant miss of 7 m: sigma = 7 * sqrt(pi/2).
  const Trajectory line = MakeLine();
  OraclePlusOffset oracle(&line, {0, 7});
  Rng rng(5);
  const double sigma = CalibrateSigma(&oracle, {line}, 5, 8, 50, &rng);
  EXPECT_NEAR(sigma, 7.0 * 1.2533141373, 1e-6);
}

TEST(EvaluatorTest, CrossTrackIgnoresAlongTrackError) {
  // Predict the truth shifted FORWARD along the path: point error is large
  // but the predicted path overlaps the true one, so cross-track ~ 0.
  const Trajectory line = MakeLine();
  OraclePlusOffset ahead(&line, {50, 0});  // 5 steps ahead along +x.
  Rng rng(6);
  const double point_sigma = CalibrateSigma(&ahead, {line}, 5, 8, 50, &rng);
  const double cross_sigma =
      CalibrateCrossTrackSigma(&ahead, {line}, 5, 8, 50, &rng);
  EXPECT_GT(point_sigma, 40.0);
  EXPECT_NEAR(cross_sigma, 0.0, 1e-6);
}

TEST(EvaluatorTest, CrossTrackSeesLateralError) {
  const Trajectory line = MakeLine();
  OraclePlusOffset side(&line, {0, 9});
  Rng rng(7);
  const double cross_sigma =
      CalibrateCrossTrackSigma(&side, {line}, 5, 8, 50, &rng);
  // The path is anchored at the (true) current point, so the first ramp
  // segment passes closer than 9 m to early truth points; the estimate
  // lands between that ramp effect and the full lateral offset.
  EXPECT_GT(cross_sigma, 7.0);
  EXPECT_LT(cross_sigma, 9.0 * 1.2533141373 + 0.2);
}

}  // namespace
}  // namespace proxdet
