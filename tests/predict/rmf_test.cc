#include "predict/rmf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace proxdet {
namespace {

TEST(RmfTest, LinearMotionRecovered) {
  RmfPredictor p;
  std::vector<Vec2> recent;
  for (int i = 0; i < 12; ++i) recent.push_back({2.0 * i, 3.0 * i});
  const std::vector<Vec2> out = p.Predict(recent, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0].x, 24.0, 0.5);
  EXPECT_NEAR(out[0].y, 36.0, 0.5);
  EXPECT_NEAR(out[2].x, 28.0, 1.5);
}

TEST(RmfTest, QuadraticMotionTracked) {
  // x(t) = t^2 obeys a degree-2 recurrence; RMF with retrospect 3 fits it.
  RmfPredictor p(3, 1e-8);
  std::vector<Vec2> recent;
  for (int i = 0; i < 12; ++i) {
    recent.push_back({static_cast<double>(i * i), 0.0});
  }
  const std::vector<Vec2> out = p.Predict(recent, 2);
  EXPECT_NEAR(out[0].x, 144.0, 30.0);  // Step cap may bound the jump.
  EXPECT_GT(out[1].x, out[0].x);
}

TEST(RmfTest, ShortWindowFallsBackToLinear) {
  RmfPredictor p(3);
  const std::vector<Vec2> recent{{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Vec2> out = p.Predict(recent, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].x, 3.0, 1e-9);
  EXPECT_NEAR(out[1].x, 4.0, 1e-9);
}

TEST(RmfTest, StationaryStaysPut) {
  RmfPredictor p;
  const std::vector<Vec2> recent(12, Vec2{4, 4});
  const std::vector<Vec2> out = p.Predict(recent, 5);
  for (const Vec2& v : out) EXPECT_NEAR(Distance(v, {4, 4}), 0.0, 1e-6);
}

TEST(RmfTest, StepCapPreventsExplosion) {
  // A noisy window can produce an unstable recurrence; the per-step cap
  // keeps predictions within 2x the fastest observed displacement.
  RmfPredictor p;
  std::vector<Vec2> recent;
  double sign = 1.0;
  for (int i = 0; i < 12; ++i) {
    recent.push_back({i * 1.0 + sign * 0.6, 0.0});
    sign = -sign;
  }
  double max_step = 0.0;
  for (size_t i = 1; i < recent.size(); ++i) {
    max_step = std::max(max_step, Distance(recent[i - 1], recent[i]));
  }
  const std::vector<Vec2> out = p.Predict(recent, 10);
  Vec2 prev = recent.back();
  for (const Vec2& v : out) {
    EXPECT_LE(Distance(prev, v), max_step * 2.0 + 1e-6);
    prev = v;
  }
}

TEST(RmfTest, ReturnsRequestedCount) {
  RmfPredictor p;
  std::vector<Vec2> recent;
  for (int i = 0; i < 12; ++i) recent.push_back({1.0 * i, 0.5 * i});
  EXPECT_EQ(p.Predict(recent, 30).size(), 30u);
  EXPECT_TRUE(p.Predict(recent, 0).empty());
}

}  // namespace
}  // namespace proxdet
