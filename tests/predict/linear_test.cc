#include "predict/linear_predictor.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

TEST(LinearPredictorTest, ExtrapolatesConstantVelocity) {
  LinearPredictor p;
  const std::vector<Vec2> recent{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const std::vector<Vec2> out = p.Predict(recent, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0].x, 4.0, 1e-9);
  EXPECT_NEAR(out[1].x, 5.0, 1e-9);
  EXPECT_NEAR(out[2].x, 6.0, 1e-9);
  EXPECT_NEAR(out[2].y, 0.0, 1e-9);
}

TEST(LinearPredictorTest, SinglePointPredictsDwell) {
  LinearPredictor p;
  const std::vector<Vec2> out = p.Predict({{5, 5}}, 4);
  ASSERT_EQ(out.size(), 4u);
  for (const Vec2& v : out) EXPECT_EQ(v, (Vec2{5, 5}));
}

TEST(LinearPredictorTest, AveragesVelocityOverWindow) {
  // Last 3 displacements: (2,0), (0,0), (4,0) -> mean (2,0).
  LinearPredictor p(3);
  const std::vector<Vec2> recent{{0, 0}, {2, 0}, {2, 0}, {6, 0}};
  const std::vector<Vec2> out = p.Predict(recent, 1);
  EXPECT_NEAR(out[0].x, 8.0, 1e-9);
}

TEST(LinearPredictorTest, DiagonalMotion) {
  LinearPredictor p(1);
  const std::vector<Vec2> recent{{0, 0}, {1, 1}};
  const std::vector<Vec2> out = p.Predict(recent, 2);
  EXPECT_EQ(out[0], (Vec2{2, 2}));
  EXPECT_EQ(out[1], (Vec2{3, 3}));
}

TEST(LinearPredictorTest, ZeroStepsEmpty) {
  LinearPredictor p;
  EXPECT_TRUE(p.Predict({{0, 0}, {1, 0}}, 0).empty());
}

}  // namespace
}  // namespace proxdet
