#include "predict/kalman.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

TEST(KalmanFilterTest, ResetInitializesPosition) {
  KalmanFilter2D f(1.0, 0.5, 2.0);
  EXPECT_FALSE(f.initialized());
  f.Reset({3, 4});
  EXPECT_TRUE(f.initialized());
  EXPECT_EQ(f.position(), (Vec2{3, 4}));
  EXPECT_EQ(f.velocity(), (Vec2{0, 0}));
}

TEST(KalmanFilterTest, LearnsConstantVelocity) {
  KalmanFilter2D f(1.0, 0.5, 1.0);
  f.Reset({0, 0});
  for (int i = 1; i <= 20; ++i) {
    f.PredictStep();
    f.UpdateStep({2.0 * i, -1.0 * i});
  }
  EXPECT_NEAR(f.velocity().x, 2.0, 0.1);
  EXPECT_NEAR(f.velocity().y, -1.0, 0.1);
  EXPECT_NEAR(f.position().x, 40.0, 0.5);
}

TEST(KalmanFilterTest, ForecastExtrapolatesState) {
  KalmanFilter2D f(1.0, 0.5, 1.0);
  f.Reset({0, 0});
  for (int i = 1; i <= 20; ++i) {
    f.PredictStep();
    f.UpdateStep({1.0 * i, 0.0});
  }
  const std::vector<Vec2> fc = f.Forecast(5);
  ASSERT_EQ(fc.size(), 5u);
  EXPECT_NEAR(fc[0].x, 21.0, 0.3);
  EXPECT_NEAR(fc[4].x, 25.0, 0.5);
  // Forecast must not mutate the filter.
  EXPECT_NEAR(f.position().x, 20.0, 0.3);
}

TEST(KalmanFilterTest, SmoothsNoisyMeasurements) {
  Rng rng(5);
  KalmanFilter2D f(1.0, 0.1, 5.0);
  f.Reset({0, 0});
  double raw_err = 0.0;
  double filt_err = 0.0;
  for (int i = 1; i <= 200; ++i) {
    const Vec2 truth{3.0 * i, 0.0};
    const Vec2 meas = truth + Vec2{rng.Gaussian(0, 5), rng.Gaussian(0, 5)};
    f.PredictStep();
    f.UpdateStep(meas);
    if (i > 20) {
      raw_err += Distance(meas, truth);
      filt_err += Distance(f.position(), truth);
    }
  }
  EXPECT_LT(filt_err, raw_err * 0.8);  // The filter beats raw measurements.
}

TEST(KalmanFilterTest, UpdateWithoutResetInitializes) {
  KalmanFilter2D f(1.0, 0.5, 2.0);
  f.UpdateStep({7, 8});
  EXPECT_TRUE(f.initialized());
  EXPECT_EQ(f.position(), (Vec2{7, 8}));
}

TEST(KalmanPredictorTest, PredictsStraightLine) {
  KalmanPredictor p(1.0, 0.5, 1.0);
  std::vector<Vec2> recent;
  for (int i = 0; i < 10; ++i) recent.push_back({5.0 * i, 2.0 * i});
  const std::vector<Vec2> out = p.Predict(recent, 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[0].x, 50.0, 1.5);
  EXPECT_NEAR(out[3].x, 65.0, 2.5);
  EXPECT_NEAR(out[3].y, 26.0, 2.5);
}

TEST(KalmanPredictorTest, SinglePointDwells) {
  KalmanPredictor p(1.0, 0.5, 1.0);
  const std::vector<Vec2> out = p.Predict({{3, 3}}, 3);
  ASSERT_EQ(out.size(), 3u);
  for (const Vec2& v : out) EXPECT_NEAR(Distance(v, {3, 3}), 0.0, 1e-6);
}

TEST(KalmanPredictorTest, StatelessAcrossCalls) {
  KalmanPredictor p(1.0, 0.5, 1.0);
  std::vector<Vec2> recent{{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Vec2> a = p.Predict(recent, 2);
  p.Predict({{100, 100}, {90, 90}}, 2);  // Unrelated query in between.
  const std::vector<Vec2> b = p.Predict(recent, 2);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
}

}  // namespace
}  // namespace proxdet
