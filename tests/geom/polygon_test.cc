#include "geom/polygon.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

TEST(PolygonTest, SquareConstruction) {
  const ConvexPolygon sq = ConvexPolygon::Square({0, 0}, 2.0);
  EXPECT_EQ(sq.vertices().size(), 4u);
  EXPECT_DOUBLE_EQ(sq.Area(), 16.0);
  EXPECT_TRUE(sq.Contains({0, 0}));
  EXPECT_TRUE(sq.Contains({2, 2}));  // Corner (closed containment).
  EXPECT_FALSE(sq.Contains({2.01, 0}));
}

TEST(PolygonTest, HalfPlaneKeeps) {
  const HalfPlane hp{{0, 0}, {1, 0}};  // Keep x <= 0.
  EXPECT_TRUE(hp.Keeps({-1, 5}));
  EXPECT_TRUE(hp.Keeps({0, 0}));
  EXPECT_FALSE(hp.Keeps({1, 0}));
}

TEST(PolygonTest, ClipCutsSquareInHalf) {
  const ConvexPolygon sq = ConvexPolygon::Square({0, 0}, 1.0);
  const ConvexPolygon half = sq.ClippedBy({{0, 0}, {1, 0}});
  EXPECT_DOUBLE_EQ(half.Area(), 2.0);
  EXPECT_TRUE(half.Contains({-0.5, 0}));
  EXPECT_FALSE(half.Contains({0.5, 0}));
}

TEST(PolygonTest, ClipToEmpty) {
  const ConvexPolygon sq = ConvexPolygon::Square({0, 0}, 1.0);
  const ConvexPolygon none = sq.ClippedBy({{5, 0}, {-1, 0}});  // Keep x >= 5.
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(none.Contains({0, 0}));
}

TEST(PolygonTest, RepeatedClipsShrinkArea) {
  ConvexPolygon poly = ConvexPolygon::Square({0, 0}, 10.0);
  Rng rng(3);
  double prev_area = poly.Area();
  for (int i = 0; i < 8 && !poly.empty(); ++i) {
    const Vec2 n =
        Vec2{rng.Uniform(-1, 1), rng.Uniform(-1, 1)}.Normalized();
    poly = poly.ClippedBy({{rng.Uniform(0, 4) * n.x, rng.Uniform(0, 4) * n.y},
                           n});
    EXPECT_LE(poly.Area(), prev_area + 1e-9);
    prev_area = poly.Area();
  }
}

TEST(PolygonTest, DistanceToPointInsideIsZero) {
  const ConvexPolygon sq = ConvexPolygon::Square({0, 0}, 1.0);
  EXPECT_DOUBLE_EQ(sq.DistanceToPoint({0.5, 0.5}), 0.0);
}

TEST(PolygonTest, DistanceToPointOutside) {
  const ConvexPolygon sq = ConvexPolygon::Square({0, 0}, 1.0);
  EXPECT_DOUBLE_EQ(sq.DistanceToPoint({3, 0}), 2.0);
  EXPECT_DOUBLE_EQ(sq.DistanceToPoint({4, 5}), 5.0);  // Corner diagonal 3-4-5.
}

TEST(PolygonTest, PolygonPolygonDistance) {
  const ConvexPolygon a = ConvexPolygon::Square({0, 0}, 1.0);
  const ConvexPolygon b = ConvexPolygon::Square({5, 0}, 1.0);
  EXPECT_DOUBLE_EQ(a.DistanceToPolygon(b), 3.0);
  const ConvexPolygon c = ConvexPolygon::Square({1.5, 0}, 1.0);
  EXPECT_DOUBLE_EQ(a.DistanceToPolygon(c), 0.0);  // Overlap.
}

TEST(PolygonTest, ContainedPolygonDistanceZero) {
  const ConvexPolygon outer = ConvexPolygon::Square({0, 0}, 5.0);
  const ConvexPolygon inner = ConvexPolygon::Square({1, 1}, 0.5);
  EXPECT_DOUBLE_EQ(outer.DistanceToPolygon(inner), 0.0);
  EXPECT_DOUBLE_EQ(inner.DistanceToPolygon(outer), 0.0);
}

// Property: clipping preserves containment semantics — points kept by every
// half-plane stay inside, discarded points leave.
TEST(PolygonTest, PropertyClipConsistentWithHalfPlane) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    ConvexPolygon poly = ConvexPolygon::Square({0, 0}, 8.0);
    std::vector<HalfPlane> planes;
    for (int i = 0; i < 4; ++i) {
      const Vec2 n =
          Vec2{rng.Uniform(-1, 1), rng.Uniform(-1, 1)}.Normalized();
      if (n.Norm() < 0.5) continue;
      const HalfPlane hp{{rng.Uniform(-3, 3), rng.Uniform(-3, 3)}, n};
      planes.push_back(hp);
      poly = poly.ClippedBy(hp);
    }
    for (int i = 0; i < 50; ++i) {
      const Vec2 p{rng.Uniform(-8, 8), rng.Uniform(-8, 8)};
      bool kept = std::abs(p.x) <= 8.0 && std::abs(p.y) <= 8.0;
      for (const HalfPlane& hp : planes) kept = kept && hp.Keeps(p);
      if (poly.empty()) continue;
      if (kept) {
        EXPECT_TRUE(poly.Contains(p))
            << "point (" << p.x << "," << p.y << ") should be inside";
      } else if (!poly.Contains(p)) {
        SUCCEED();
      }
    }
  }
}

}  // namespace
}  // namespace proxdet
