#include "geom/vec2.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(Vec2Test, CompoundAssignment) {
  Vec2 a{1.0, 1.0};
  a += Vec2{2.0, 3.0};
  EXPECT_EQ(a, (Vec2{3.0, 4.0}));
  a -= Vec2{1.0, 1.0};
  EXPECT_EQ(a, (Vec2{2.0, 3.0}));
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), 1.0);   // b is CCW from a.
  EXPECT_DOUBLE_EQ(b.Cross(a), -1.0);  // a is CW from b.
  EXPECT_DOUBLE_EQ(a.Dot(a), 1.0);
}

TEST(Vec2Test, NormAndDistance) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, a), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, a), 25.0);
}

TEST(Vec2Test, NormalizedUnitLength) {
  const Vec2 a{3.0, 4.0};
  const Vec2 n = a.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
}

TEST(Vec2Test, NormalizedZeroVectorIsZero) {
  const Vec2 z{0.0, 0.0};
  EXPECT_EQ(z.Normalized(), z);
}

TEST(Vec2Test, PerpIsCcwRotation) {
  const Vec2 a{1.0, 0.0};
  EXPECT_EQ(a.Perp(), (Vec2{0.0, 1.0}));
  EXPECT_DOUBLE_EQ(a.Dot(a.Perp()), 0.0);
}

}  // namespace
}  // namespace proxdet
