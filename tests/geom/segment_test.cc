#include "geom/segment.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

TEST(SegmentTest, ClosestPointProjectsOntoInterior) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_EQ(ClosestPointOnSegment(s, {5, 3}), (Vec2{5, 0}));
}

TEST(SegmentTest, ClosestPointClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_EQ(ClosestPointOnSegment(s, {-4, 2}), (Vec2{0, 0}));
  EXPECT_EQ(ClosestPointOnSegment(s, {14, -2}), (Vec2{10, 0}));
}

TEST(SegmentTest, DegenerateSegmentIsAPoint) {
  const Segment s{{3, 3}, {3, 3}};
  EXPECT_EQ(ClosestPointOnSegment(s, {0, 0}), (Vec2{3, 3}));
  EXPECT_DOUBLE_EQ(DistancePointToSegment({0, 3}, s), 3.0);
}

TEST(SegmentTest, PointDistanceKnownValues) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(DistancePointToSegment({5, 4}, s), 4.0);
  EXPECT_DOUBLE_EQ(DistancePointToSegment({13, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(DistancePointToSegment({5, 0}, s), 0.0);
}

TEST(SegmentTest, IntersectionCrossing) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}));
}

TEST(SegmentTest, IntersectionTouchingEndpoint) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {5, 5}}, {{5, 5}, {9, 1}}));
}

TEST(SegmentTest, IntersectionCollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {10, 0}}, {{5, 0}, {15, 0}}));
}

TEST(SegmentTest, NoIntersectionCollinearDisjoint) {
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {4, 0}}, {{5, 0}, {9, 0}}));
}

TEST(SegmentTest, NoIntersectionParallel) {
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {10, 0}}, {{0, 1}, {10, 1}}));
}

TEST(SegmentTest, SegmentDistanceZeroWhenCrossing) {
  EXPECT_DOUBLE_EQ(
      DistanceSegmentToSegment({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}), 0.0);
}

TEST(SegmentTest, SegmentDistanceParallel) {
  EXPECT_DOUBLE_EQ(
      DistanceSegmentToSegment({{0, 0}, {10, 0}}, {{0, 3}, {10, 3}}), 3.0);
}

TEST(SegmentTest, SegmentDistanceEndpointToInterior) {
  EXPECT_DOUBLE_EQ(
      DistanceSegmentToSegment({{0, 0}, {10, 0}}, {{5, 2}, {5, 9}}), 2.0);
}

// Property: the segment-segment distance equals the minimum over many
// sampled point-to-other-segment distances (within sampling error).
TEST(SegmentTest, PropertyDistanceMatchesDenseSampling) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const Segment s1{{rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
                     {rng.Uniform(-10, 10), rng.Uniform(-10, 10)}};
    const Segment s2{{rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
                     {rng.Uniform(-10, 10), rng.Uniform(-10, 10)}};
    const double exact = DistanceSegmentToSegment(s1, s2);
    double sampled = 1e18;
    const int kSamples = 200;
    for (int i = 0; i <= kSamples; ++i) {
      const double t = static_cast<double>(i) / kSamples;
      sampled = std::min(sampled, DistancePointToSegment(s1.Lerp(t), s2));
    }
    // Sampling can only overestimate the true minimum.
    EXPECT_LE(exact, sampled + 1e-9);
    EXPECT_NEAR(exact, sampled, 0.15);  // Fine grid: small gap.
  }
}

// Property: distance is symmetric.
TEST(SegmentTest, PropertyDistanceSymmetry) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const Segment s1{{rng.Uniform(-5, 5), rng.Uniform(-5, 5)},
                     {rng.Uniform(-5, 5), rng.Uniform(-5, 5)}};
    const Segment s2{{rng.Uniform(-5, 5), rng.Uniform(-5, 5)},
                     {rng.Uniform(-5, 5), rng.Uniform(-5, 5)}};
    EXPECT_DOUBLE_EQ(DistanceSegmentToSegment(s1, s2),
                     DistanceSegmentToSegment(s2, s1));
  }
}

}  // namespace
}  // namespace proxdet
