#include "geom/polyline.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace proxdet {
namespace {

TEST(PolylineTest, LengthOfLShape) {
  const Polyline line({{0, 0}, {10, 0}, {10, 5}});
  EXPECT_DOUBLE_EQ(line.Length(), 15.0);
  EXPECT_EQ(line.segment_count(), 2u);
}

TEST(PolylineTest, EmptyAndSinglePoint) {
  const Polyline empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.segment_count(), 0u);
  EXPECT_TRUE(std::isinf(empty.DistanceToPoint({0, 0})));

  const Polyline point({{2, 3}});
  EXPECT_EQ(point.segment_count(), 0u);
  EXPECT_DOUBLE_EQ(point.DistanceToPoint({2, 7}), 4.0);
}

TEST(PolylineTest, DistanceToPointPicksNearestSegment) {
  const Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(line.DistanceToPoint({5, 2}), 2.0);
  EXPECT_DOUBLE_EQ(line.DistanceToPoint({12, 5}), 2.0);
  EXPECT_DOUBLE_EQ(line.DistanceToPoint({10, 5}), 0.0);
}

TEST(PolylineTest, PolylinePolylineDistance) {
  const Polyline a({{0, 0}, {10, 0}});
  const Polyline b({{0, 4}, {10, 4}});
  EXPECT_DOUBLE_EQ(a.DistanceToPolyline(b), 4.0);
  const Polyline crossing({{5, -1}, {5, 1}});
  EXPECT_DOUBLE_EQ(a.DistanceToPolyline(crossing), 0.0);
}

TEST(PolylineTest, DistanceToSinglePointPolyline) {
  const Polyline a({{0, 0}, {10, 0}});
  const Polyline point({{5, 3}});
  EXPECT_DOUBLE_EQ(a.DistanceToPolyline(point), 3.0);
  EXPECT_DOUBLE_EQ(point.DistanceToPolyline(a), 3.0);
}

TEST(PolylineTest, PointAtArcLength) {
  const Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_EQ(line.PointAtArcLength(0.0), (Vec2{0, 0}));
  EXPECT_EQ(line.PointAtArcLength(5.0), (Vec2{5, 0}));
  EXPECT_EQ(line.PointAtArcLength(12.0), (Vec2{10, 2}));
  EXPECT_EQ(line.PointAtArcLength(100.0), (Vec2{10, 10}));  // Clamped.
  EXPECT_EQ(line.PointAtArcLength(-3.0), (Vec2{0, 0}));     // Clamped.
}

// Property: every point returned by PointAtArcLength lies on the polyline.
TEST(PolylineTest, PropertyArcLengthPointsOnLine) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 6; ++i) {
      pts.push_back({rng.Uniform(-20, 20), rng.Uniform(-20, 20)});
    }
    const Polyline line(pts);
    for (double s = 0.0; s <= line.Length(); s += line.Length() / 17.0) {
      EXPECT_NEAR(line.DistanceToPoint(line.PointAtArcLength(s)), 0.0, 1e-9);
    }
  }
}

// Property: polyline-polyline distance is symmetric and matches dense
// sampling from above.
TEST(PolylineTest, PropertyDistanceSymmetricAndTight) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    auto random_line = [&rng]() {
      std::vector<Vec2> pts;
      for (int i = 0; i < 4; ++i) {
        pts.push_back({rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
      }
      return Polyline(pts);
    };
    const Polyline a = random_line();
    const Polyline b = random_line();
    const double dab = a.DistanceToPolyline(b);
    EXPECT_DOUBLE_EQ(dab, b.DistanceToPolyline(a));
    double sampled = std::numeric_limits<double>::infinity();
    for (double s = 0.0; s <= a.Length(); s += a.Length() / 100.0) {
      sampled = std::min(sampled, b.DistanceToPoint(a.PointAtArcLength(s)));
    }
    EXPECT_LE(dab, sampled + 1e-9);
    EXPECT_NEAR(dab, sampled, 0.5);
  }
}

}  // namespace
}  // namespace proxdet
