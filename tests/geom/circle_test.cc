#include "geom/circle.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

TEST(CircleTest, ClosedContainment) {
  const Circle c{{0, 0}, 5.0};
  EXPECT_TRUE(c.Contains({3, 4}));    // On the boundary.
  EXPECT_TRUE(c.Contains({0, 0}));    // Center.
  EXPECT_FALSE(c.Contains({3.1, 4.1}));
}

TEST(CircleTest, StrictContainmentExcludesBoundary) {
  const Circle c{{0, 0}, 5.0};
  EXPECT_FALSE(c.ContainsStrict({3, 4}));
  EXPECT_TRUE(c.ContainsStrict({2.9, 3.9}));
}

TEST(CircleTest, PointDistance) {
  const Circle c{{0, 0}, 2.0};
  EXPECT_DOUBLE_EQ(DistancePointToCircle({5, 0}, c), 3.0);
  EXPECT_DOUBLE_EQ(DistancePointToCircle({1, 0}, c), 0.0);  // Inside.
  EXPECT_DOUBLE_EQ(DistancePointToCircle({2, 0}, c), 0.0);  // Boundary.
}

TEST(CircleTest, CircleCircleDistance) {
  const Circle a{{0, 0}, 1.0};
  const Circle b{{10, 0}, 2.0};
  EXPECT_DOUBLE_EQ(DistanceCircleToCircle(a, b), 7.0);
  const Circle overlap{{2, 0}, 2.0};
  EXPECT_DOUBLE_EQ(DistanceCircleToCircle(a, overlap), 0.0);
}

TEST(CircleTest, SegmentCircleDistance) {
  const Circle c{{0, 5}, 2.0};
  EXPECT_DOUBLE_EQ(DistanceSegmentToCircle({{-10, 0}, {10, 0}}, c), 3.0);
  // Segment grazing the disk.
  EXPECT_DOUBLE_EQ(DistanceSegmentToCircle({{-10, 4}, {10, 4}}, c), 0.0);
}

TEST(CircleTest, ZeroRadiusIsAPoint) {
  const Circle c{{1, 1}, 0.0};
  EXPECT_TRUE(c.Contains({1, 1}));
  EXPECT_FALSE(c.ContainsStrict({1, 1}));  // Strict: even the center is out.
  EXPECT_DOUBLE_EQ(DistancePointToCircle({4, 5}, c), 5.0);
}

}  // namespace
}  // namespace proxdet
