// Property tests for the batched geometry kernels (src/geom/simd): every
// dispatched kernel must be *bitwise* identical to the scalar reference
// (simd::scalar::*) on randomized batches, for every backend compiled in
// and supported by this CPU — including the degenerate inputs the scalar
// library special-cases (zero-length segments, empty polylines) and batch
// sizes straddling the vector widths (0, 1, W-1, W, W+1).
//
// ctest label: simd. scripts/check.sh runs this suite in the regular tree,
// the -DPROXDET_SIMD=OFF tree (where only the scalar backend exists and
// the whole suite collapses to scalar-vs-scalar identity) and the UBSan
// tree (the branchless lane arithmetic must not hide UB behind masks).

#include "geom/simd/simd.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/polyline.h"
#include "geom/stripe.h"
#include "geom/vec2.h"

namespace proxdet {
namespace {

// The batch sizes the contract calls out: empty, single lane, and W-1 / W /
// W+1 for both vector widths, plus a size that is a multiple of neither.
const size_t kBatchSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 37};

uint64_t Bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

#define EXPECT_BITEQ(a, b) EXPECT_EQ(Bits(a), Bits(b))

/// Backends usable on this build + CPU. Scalar always; a vector backend
/// only when compiled in and accepted by the dispatcher.
std::vector<simd::Backend> TestableBackends() {
  std::vector<simd::Backend> out = {simd::Backend::kScalar};
  for (const simd::Backend b : {simd::Backend::kW4, simd::Backend::kW8}) {
    if (simd::SetActiveBackendForTest(b)) out.push_back(b);
  }
  simd::SetActiveBackendForTest(simd::Backend::kScalar);
  return out;
}

/// Runs `fn` once per testable backend with that backend active.
template <typename Fn>
void ForEachBackend(Fn fn) {
  for (const simd::Backend b : TestableBackends()) {
    ASSERT_TRUE(simd::SetActiveBackendForTest(b));
    SCOPED_TRACE(std::string("backend=") + simd::BackendName(b));
    fn();
  }
  simd::SetActiveBackendForTest(simd::Backend::kScalar);
}

/// Owning SoA segment batch; every 4th segment degenerate (a == b) so the
/// zero-length guard is exercised mid-batch in every chunk.
struct SegBatch {
  std::vector<double> ax, ay, bx, by, dx, dy, len2;

  explicit SegBatch(Rng* rng, size_t n, bool with_degenerate = true) {
    for (size_t i = 0; i < n; ++i) {
      const double x0 = rng->Uniform(-500, 500);
      const double y0 = rng->Uniform(-500, 500);
      double x1 = rng->Uniform(-500, 500);
      double y1 = rng->Uniform(-500, 500);
      if (with_degenerate && i % 4 == 3) {
        x1 = x0;
        y1 = y0;
      }
      ax.push_back(x0);
      ay.push_back(y0);
      bx.push_back(x1);
      by.push_back(y1);
      dx.push_back(x1 - x0);
      dy.push_back(y1 - y0);
      len2.push_back(dx.back() * dx.back() + dy.back() * dy.back());
    }
  }

  simd::SegmentSoA View() const {
    return simd::SegmentSoA{ax.data(), ay.data(), bx.data(), by.data(),
                            dx.data(), dy.data(), len2.data(), ax.size()};
  }
};

struct PointBatch {
  std::vector<double> x, y;

  explicit PointBatch(Rng* rng, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      x.push_back(rng->Uniform(-500, 500));
      y.push_back(rng->Uniform(-500, 500));
    }
  }
};

TEST(SimdDispatchTest, ActiveBackendConsistent) {
  const simd::Backend b = simd::ActiveBackend();
  if (b != simd::Backend::kScalar) {
    EXPECT_TRUE(simd::CompiledWithSimd());
  }
  // A rejected self-check forces scalar; with the check green, a compiled
  // vector backend on a supporting CPU must not silently run scalar.
  EXPECT_TRUE(simd::SelfCheckPassed());
  EXPECT_STREQ(simd::BackendName(simd::Backend::kScalar), "scalar");
}

TEST(SimdKernelTest, PointsInBoxesBitwise) {
  Rng rng(101);
  ForEachBackend([&] {
    for (const size_t n : kBatchSizes) {
      PointBatch p(&rng, n);
      std::vector<double> lox(n), loy(n), hix(n), hiy(n);
      for (size_t i = 0; i < n; ++i) {
        lox[i] = rng.Uniform(-500, 500);
        loy[i] = rng.Uniform(-500, 500);
        hix[i] = lox[i] + rng.Uniform(-1, 300);  // Sometimes inverted.
        hiy[i] = loy[i] + rng.Uniform(-1, 300);
      }
      if (n > 2) {
        // Exact-boundary lanes: point on the box edge.
        p.x[1] = lox[1];
        p.y[2] = hiy[2];
      }
      std::vector<uint8_t> got(n, 2), want(n, 3);
      simd::PointsInBoxes(p.x.data(), p.y.data(), lox.data(), loy.data(),
                          hix.data(), hiy.data(), n, got.data());
      simd::scalar::PointsInBoxes(p.x.data(), p.y.data(), lox.data(),
                                  loy.data(), hix.data(), hiy.data(), n,
                                  want.data());
      EXPECT_EQ(got, want) << "n=" << n;
    }
  });
}

TEST(SimdKernelTest, SegmentSquaredDistanceToPointsBitwise) {
  Rng rng(102);
  ForEachBackend([&] {
    for (const size_t n : kBatchSizes) {
      // One regular and one degenerate segment against every batch.
      SegBatch segs(&rng, 2);
      segs.dx[1] = segs.dy[1] = segs.len2[1] = 0.0;
      for (size_t s = 0; s < 2; ++s) {
        PointBatch p(&rng, n);
        std::vector<double> got(n, -1), want(n, -2);
        simd::SegmentSquaredDistanceToPoints(
            segs.ax[s], segs.ay[s], segs.dx[s], segs.dy[s], segs.len2[s],
            p.x.data(), p.y.data(), n, got.data());
        simd::scalar::SegmentSquaredDistanceToPoints(
            segs.ax[s], segs.ay[s], segs.dx[s], segs.dy[s], segs.len2[s],
            p.x.data(), p.y.data(), n, want.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_BITEQ(got[i], want[i]) << "n=" << n << " seg=" << s
                                        << " lane=" << i;
        }
      }
    }
  });
}

TEST(SimdKernelTest, PolylineSquaredDistanceBitwise) {
  Rng rng(103);
  ForEachBackend([&] {
    for (const size_t segs_n : {size_t{0}, size_t{1}, size_t{6}}) {
      const SegBatch segs(&rng, segs_n);
      for (const size_t n : kBatchSizes) {
        const PointBatch p(&rng, n);
        std::vector<double> got(n, -1), want(n, -2);
        simd::PolylineSquaredDistanceToPoints(segs.View(), p.x.data(),
                                              p.y.data(), n, got.data());
        simd::scalar::PolylineSquaredDistanceToPoints(
            segs.View(), p.x.data(), p.y.data(), n, want.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_BITEQ(got[i], want[i])
              << "segs=" << segs_n << " n=" << n << " lane=" << i;
        }
        // The transposed (lane = segment) kernel agrees too.
        for (size_t i = 0; i < n; ++i) {
          EXPECT_BITEQ(simd::PolylineSquaredDistanceToPoint(segs.View(),
                                                            p.x[i], p.y[i]),
                       want[i]);
        }
      }
    }
  });
}

TEST(SimdKernelTest, SegmentToPolylineSquaredDistanceBitwise) {
  Rng rng(104);
  ForEachBackend([&] {
    for (const size_t segs_n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                                size_t{5}, size_t{8}, size_t{9}, size_t{37}}) {
      const SegBatch segs(&rng, segs_n);
      for (int q = 0; q < 12; ++q) {
        double qax = rng.Uniform(-500, 500);
        double qay = rng.Uniform(-500, 500);
        double qbx = rng.Uniform(-500, 500);
        double qby = rng.Uniform(-500, 500);
        if (q % 3 == 2) {  // Degenerate query segment.
          qbx = qax;
          qby = qay;
        }
        if (q == 5 && segs_n > 0) {  // Shared endpoint: collinear touching.
          qax = segs.ax[0];
          qay = segs.ay[0];
        }
        EXPECT_BITEQ(
            simd::SegmentToPolylineSquaredDistance(qax, qay, qbx, qby,
                                                   segs.View()),
            simd::scalar::SegmentToPolylineSquaredDistance(qax, qay, qbx, qby,
                                                           segs.View()))
            << "segs=" << segs_n << " q=" << q;
      }
    }
  });
}

TEST(SimdKernelTest, SegmentsSquaredDistanceToPointBitwise) {
  Rng rng(110);
  ForEachBackend([&] {
    for (const size_t n : kBatchSizes) {
      const SegBatch segs(&rng, n);
      const double px = rng.Uniform(-500, 500);
      const double py = rng.Uniform(-500, 500);
      std::vector<double> got(n, -1), want(n, -2);
      simd::SegmentsSquaredDistanceToPoint(segs.View(), px, py, got.data());
      simd::scalar::SegmentsSquaredDistanceToPoint(segs.View(), px, py,
                                                   want.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_BITEQ(got[i], want[i]) << "n=" << n << " lane=" << i;
      }
      // Each lane is the single-segment kernel's value...
      for (size_t i = 0; i < n; ++i) {
        double lane;
        simd::scalar::SegmentSquaredDistanceToPoints(
            segs.ax[i], segs.ay[i], segs.dx[i], segs.dy[i], segs.len2[i],
            &px, &py, 1, &lane);
        EXPECT_BITEQ(got[i], lane) << "lane=" << i;
      }
      // ...and the full-batch min is the reduced call, bit for bit.
      double best = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        best = got[i] < best ? got[i] : best;
      }
      EXPECT_BITEQ(best,
                   simd::PolylineSquaredDistanceToPoint(segs.View(), px, py));
    }
  });
}

TEST(SimdKernelTest, SegmentToSegmentsSquaredDistancesBitwise) {
  Rng rng(111);
  ForEachBackend([&] {
    for (const size_t n : kBatchSizes) {
      const SegBatch segs(&rng, n);
      for (int q = 0; q < 4; ++q) {
        double qax = rng.Uniform(-500, 500);
        double qay = rng.Uniform(-500, 500);
        double qbx = rng.Uniform(-500, 500);
        double qby = rng.Uniform(-500, 500);
        if (q == 1) {  // Degenerate query segment.
          qbx = qax;
          qby = qay;
        }
        if (q == 2 && n > 0) {  // Crossing guaranteed: lane must be 0.
          qax = segs.ax[0];
          qay = segs.ay[0];
          qbx = segs.bx[0];
          qby = segs.by[0];
        }
        std::vector<double> got(n, -1), want(n, -2);
        simd::SegmentToSegmentsSquaredDistances(qax, qay, qbx, qby,
                                                segs.View(), got.data());
        simd::scalar::SegmentToSegmentsSquaredDistances(
            qax, qay, qbx, qby, segs.View(), want.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_BITEQ(got[i], want[i]) << "n=" << n << " q=" << q
                                        << " lane=" << i;
        }
        // Batch min == the reduced kernel, bit for bit.
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < n; ++i) {
          best = got[i] < best ? got[i] : best;
        }
        EXPECT_BITEQ(best, simd::SegmentToPolylineSquaredDistance(
                               qax, qay, qbx, qby, segs.View()));
      }
    }
  });
}

TEST(SimdKernelTest, StoreVariantRangedMinMatchesSubBatchReduction) {
  // The concatenated-SoA contract the stripe builder relies on: minima over
  // lane ranges of one big store-kernel call equal the reduced kernels run
  // on each sub-batch alone.
  Rng rng(112);
  ForEachBackend([&] {
    const SegBatch all(&rng, 37);
    const size_t cuts[] = {0, 5, 8, 9, 24, 37};  // Sub-batches of the concat.
    const double px = rng.Uniform(-500, 500);
    const double py = rng.Uniform(-500, 500);
    const double qx = rng.Uniform(-500, 500);
    const double qy = rng.Uniform(-500, 500);
    std::vector<double> pt(all.ax.size()), ss(all.ax.size());
    simd::SegmentsSquaredDistanceToPoint(all.View(), px, py, pt.data());
    simd::SegmentToSegmentsSquaredDistances(px, py, qx, qy, all.View(),
                                            ss.data());
    for (size_t c = 0; c + 1 < std::size(cuts); ++c) {
      const size_t begin = cuts[c], end = cuts[c + 1];
      const simd::SegmentSoA sub{
          all.ax.data() + begin,   all.ay.data() + begin,
          all.bx.data() + begin,   all.by.data() + begin,
          all.dx.data() + begin,   all.dy.data() + begin,
          all.len2.data() + begin, end - begin};
      double best_pt = std::numeric_limits<double>::infinity();
      double best_ss = std::numeric_limits<double>::infinity();
      for (size_t j = begin; j < end; ++j) {
        best_pt = pt[j] < best_pt ? pt[j] : best_pt;
        best_ss = ss[j] < best_ss ? ss[j] : best_ss;
      }
      EXPECT_BITEQ(best_pt, simd::PolylineSquaredDistanceToPoint(sub, px, py))
          << "range [" << begin << "," << end << ")";
      EXPECT_BITEQ(best_ss, simd::SegmentToPolylineSquaredDistance(px, py, qx,
                                                                   qy, sub))
          << "range [" << begin << "," << end << ")";
    }
  });
}

TEST(SimdKernelTest, PairPredicatesBitwise) {
  Rng rng(105);
  ForEachBackend([&] {
    for (const size_t n : kBatchSizes) {
      PointBatch a(&rng, n), b(&rng, n);
      std::vector<double> r(n), thr(n), ra(n), rb(n);
      for (size_t i = 0; i < n; ++i) {
        r[i] = rng.Uniform(0, 400);
        ra[i] = rng.Uniform(0, 50);
        rb[i] = rng.Uniform(0, 50);
        thr[i] = rng.Uniform(0, 400);
      }
      if (n > 1) {
        // Exact-threshold lane: r == distance, so < must say false.
        b.x[1] = a.x[1] + 3.0;
        b.y[1] = a.y[1];
        r[1] = 3.0;
      }
      std::vector<uint8_t> got(n, 2), want(n, 3);
      simd::PairsWithinRadii(a.x.data(), a.y.data(), b.x.data(), b.y.data(),
                             r.data(), n, got.data());
      simd::scalar::PairsWithinRadii(a.x.data(), a.y.data(), b.x.data(),
                                     b.y.data(), r.data(), n, want.data());
      EXPECT_EQ(got, want) << "PairsWithinRadii n=" << n;

      if (n > 0) {
        simd::PointWithinRadiusOfPoints(a.x[0], a.y[0], b.x.data(),
                                        b.y.data(), r.data(), n, got.data());
        simd::scalar::PointWithinRadiusOfPoints(a.x[0], a.y[0], b.x.data(),
                                                b.y.data(), r.data(), n,
                                                want.data());
        EXPECT_EQ(got, want) << "PointWithinRadiusOfPoints n=" << n;
      }

      simd::CirclePairsGapBelow(a.x.data(), a.y.data(), ra.data(), b.x.data(),
                                b.y.data(), rb.data(), thr.data(), n,
                                got.data());
      simd::scalar::CirclePairsGapBelow(a.x.data(), a.y.data(), ra.data(),
                                        b.x.data(), b.y.data(), rb.data(),
                                        thr.data(), n, want.data());
      EXPECT_EQ(got, want) << "CirclePairsGapBelow n=" << n;
    }
  });
}

TEST(SimdKernelTest, CircleKernelsBitwise) {
  Rng rng(106);
  ForEachBackend([&] {
    for (const size_t n : kBatchSizes) {
      PointBatch c(&rng, n), p(&rng, n);
      std::vector<double> cr(n);
      for (size_t i = 0; i < n; ++i) cr[i] = rng.Uniform(0, 100);
      if (n > 1) {
        // Boundary lane: p exactly on the circle — strict vs closed differ.
        p.x[1] = c.x[1] + 5.0;
        p.y[1] = c.y[1];
        cr[1] = 5.0;
      }
      for (const bool strict : {false, true}) {
        std::vector<uint8_t> got(n, 2), want(n, 3);
        simd::CirclesContainPoints(c.x.data(), c.y.data(), cr.data(),
                                   p.x.data(), p.y.data(), n, strict,
                                   got.data());
        simd::scalar::CirclesContainPoints(c.x.data(), c.y.data(), cr.data(),
                                           p.x.data(), p.y.data(), n, strict,
                                           want.data());
        EXPECT_EQ(got, want) << "strict=" << strict << " n=" << n;
      }
      if (n > 0) {
        std::vector<double> got(n, -1), want(n, -2);
        simd::CircleDistanceToPoints(c.x[0], c.y[0], cr[0], p.x.data(),
                                     p.y.data(), n, got.data());
        simd::scalar::CircleDistanceToPoints(c.x[0], c.y[0], cr[0],
                                             p.x.data(), p.y.data(), n,
                                             want.data());
        for (size_t i = 0; i < n; ++i) EXPECT_BITEQ(got[i], want[i]);
      }
    }
  });
}

TEST(SimdKernelTest, KalmanPredict4Bitwise) {
  Rng rng(107);
  ForEachBackend([&] {
    for (int trial = 0; trial < 8; ++trial) {
      double f[16], q[16], state_a[4], state_b[4], cov_a[16], cov_b[16];
      for (int i = 0; i < 16; ++i) {
        // Sparse like the real transition matrix: zeros exercise the
        // operator* accumulation skip the kernel must replicate.
        f[i] = rng.NextIndex(3) == 0 ? 0.0 : rng.Uniform(-2, 2);
        q[i] = rng.Uniform(0, 1);
        cov_a[i] = cov_b[i] = rng.Uniform(-5, 5);
      }
      for (int i = 0; i < 4; ++i) {
        state_a[i] = state_b[i] = rng.Uniform(-100, 100);
      }
      for (int step = 0; step < 3; ++step) {  // Iterated: errors compound.
        simd::KalmanPredict4(f, q, state_a, cov_a);
        simd::scalar::KalmanPredict4(f, q, state_b, cov_b);
        for (int i = 0; i < 4; ++i) EXPECT_BITEQ(state_a[i], state_b[i]);
        for (int i = 0; i < 16; ++i) EXPECT_BITEQ(cov_a[i], cov_b[i]);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Stripe-level properties: the geometry entry points the detectors call must
// give identical answers whichever backend serves them.
// ---------------------------------------------------------------------------

Polyline RandomPath(Rng* rng, size_t points) {
  std::vector<Vec2> pts;
  Vec2 p{rng->Uniform(-200, 200), rng->Uniform(-200, 200)};
  for (size_t i = 0; i < points; ++i) {
    pts.push_back(p);
    p += Vec2{rng->Uniform(-40, 40), rng->Uniform(-40, 40)};
  }
  return Polyline(pts);
}

TEST(SimdStripeTest, StripeQueriesBackendInvariant) {
  Rng rng(108);
  const auto backends = TestableBackends();
  for (int trial = 0; trial < 20; ++trial) {
    const size_t pts_a = 1 + rng.NextIndex(9);
    const size_t pts_b = 1 + rng.NextIndex(9);
    // Zero-width stripes every few trials: radius 0 must behave as the
    // bare polyline.
    const double ra = trial % 5 == 0 ? 0.0 : rng.Uniform(1, 30);
    const double rb = trial % 7 == 0 ? 0.0 : rng.Uniform(1, 30);
    const Stripe a(RandomPath(&rng, pts_a), ra);
    const Stripe b(RandomPath(&rng, pts_b), rb);
    const Vec2 probe{rng.Uniform(-250, 250), rng.Uniform(-250, 250)};

    ASSERT_TRUE(simd::SetActiveBackendForTest(simd::Backend::kScalar));
    const bool want_contains = a.Contains(probe);
    const double want_dp = a.DistanceToPoint(probe);
    const double want_ds = a.DistanceToStripe(b);
    const double want_eq8 = a.ApproxDistanceToStripeEq8(b);
    for (const simd::Backend backend : backends) {
      ASSERT_TRUE(simd::SetActiveBackendForTest(backend));
      SCOPED_TRACE(std::string("backend=") + simd::BackendName(backend));
      EXPECT_EQ(a.Contains(probe), want_contains);
      EXPECT_BITEQ(a.DistanceToPoint(probe), want_dp);
      EXPECT_BITEQ(a.DistanceToStripe(b), want_ds);
      EXPECT_BITEQ(a.ApproxDistanceToStripeEq8(b), want_eq8);
    }
  }
  simd::SetActiveBackendForTest(simd::Backend::kScalar);
}

TEST(SimdStripeTest, StripeContainsTolerancePoints) {
  // Containment is sqrt(d^2) <= radius + 1e-9: points at the exact radius
  // and just inside the tolerance band are in; beyond the band they are
  // out — on every backend.
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 10.0);
  ForEachBackend([&] {
    EXPECT_TRUE(s.Contains({5.0, 10.0}));          // Exactly on the boundary.
    EXPECT_TRUE(s.Contains({5.0, 10.0 + 5e-10}));  // Inside the band.
    EXPECT_FALSE(s.Contains({5.0, 10.0 + 1e-8}));  // Beyond the band.
    EXPECT_FALSE(s.Contains({5.0, 10.1}));
    EXPECT_TRUE(s.Contains({0.0, 0.0}));   // Anchor.
    EXPECT_TRUE(s.Contains({-10.0, 0.0}));  // End-cap boundary.
  });
}

TEST(SimdStripeTest, SinglePointAndEmptyPaths) {
  Rng rng(109);
  const Stripe point_stripe(Polyline({{3.0, 4.0}}), 2.0);
  const Stripe empty_stripe{};
  const Stripe regular(RandomPath(&rng, 5), 3.0);
  ForEachBackend([&] {
    // Single-point path: one degenerate cached segment, distances match
    // the point convention.
    EXPECT_BITEQ(point_stripe.DistanceToPoint({3.0, 10.0}), 4.0);
    EXPECT_TRUE(point_stripe.Contains({3.0, 6.0}));
    EXPECT_FALSE(point_stripe.Contains({3.0, 6.1}));
    // Empty path: contains nothing, infinite distance conventions.
    EXPECT_FALSE(empty_stripe.Contains({0, 0}));
    EXPECT_EQ(empty_stripe.DistanceToStripe(regular),
              std::numeric_limits<double>::infinity());
    // Point-vs-regular takes the point-distance branch.
    const double d = point_stripe.DistanceToStripe(regular);
    EXPECT_GE(d, 0.0);
    EXPECT_TRUE(std::isfinite(d));
  });
}

}  // namespace
}  // namespace proxdet
