#include "geom/stripe.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

Stripe MakeLStripe(double radius) {
  return Stripe(Polyline({{0, 0}, {10, 0}, {10, 10}}), radius);
}

TEST(StripeTest, ContainsWithinRadiusOfAnySegment) {
  const Stripe s = MakeLStripe(2.0);
  EXPECT_TRUE(s.Contains({5, 1.5}));
  EXPECT_TRUE(s.Contains({11.5, 5}));
  EXPECT_TRUE(s.Contains({5, 2}));   // Exactly on the boundary.
  EXPECT_FALSE(s.Contains({5, 2.1}));
  EXPECT_FALSE(s.Contains({-3, 0}));
}

TEST(StripeTest, DefinitionEquivalence) {
  // Def. 4: contained iff min segment distance <= radius.
  const Stripe s = MakeLStripe(1.5);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.Uniform(-5, 15), rng.Uniform(-5, 15)};
    const bool by_def = s.path().DistanceToPoint(p) <= s.radius() + 1e-9;
    EXPECT_EQ(s.Contains(p), by_def);
  }
}

TEST(StripeTest, DistanceToPoint) {
  const Stripe s = MakeLStripe(2.0);
  // Nearest segment is the vertical one (distance 5), minus radius 2.
  EXPECT_DOUBLE_EQ(s.DistanceToPoint({5, 6}), 3.0);
  EXPECT_DOUBLE_EQ(s.DistanceToPoint({5, 1}), 0.0);  // Inside.
}

TEST(StripeTest, StripeStripeDistance) {
  const Stripe a(Polyline({{0, 0}, {10, 0}}), 1.0);
  const Stripe b(Polyline({{0, 10}, {10, 10}}), 2.0);
  EXPECT_DOUBLE_EQ(a.DistanceToStripe(b), 7.0);
  const Stripe overlapping(Polyline({{0, 2}, {10, 2}}), 1.5);
  EXPECT_DOUBLE_EQ(a.DistanceToStripe(overlapping), 0.0);
}

TEST(StripeTest, Eq8IsUpperBoundOnExact) {
  // Eq. (8) anchors only at predicted points, so it can only overestimate
  // the true clearance (never report "safe" when the exact test says not).
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    auto random_stripe = [&rng]() {
      std::vector<Vec2> pts;
      Vec2 p{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
      for (int i = 0; i < 5; ++i) {
        pts.push_back(p);
        p += Vec2{rng.Uniform(-4, 4), rng.Uniform(-4, 4)};
      }
      return Stripe(Polyline(pts), rng.Uniform(0.5, 3.0));
    };
    const Stripe a = random_stripe();
    const Stripe b = random_stripe();
    EXPECT_GE(a.ApproxDistanceToStripeEq8(b) + 1e-9, a.DistanceToStripe(b));
  }
}

TEST(StripeTest, DistanceToCircle) {
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 1.0);
  const Circle c{{5, 6}, 2.0};
  EXPECT_DOUBLE_EQ(s.DistanceToCircle(c), 3.0);
  const Circle touching{{5, 2.5}, 1.5};
  EXPECT_DOUBLE_EQ(s.DistanceToCircle(touching), 0.0);
}

TEST(StripeTest, SinglePointStripeActsAsDisk) {
  const Stripe s(Polyline({{3, 3}}), 2.0);
  EXPECT_TRUE(s.Contains({4, 3}));
  EXPECT_FALSE(s.Contains({6, 3}));
  EXPECT_DOUBLE_EQ(s.DistanceToPoint({3, 8}), 3.0);
}

TEST(StripeTest, ZeroRadiusStripeContainsOnlyPath) {
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 0.0);
  EXPECT_TRUE(s.Contains({5, 0}));
  EXPECT_FALSE(s.Contains({5, 0.1}));
}

TEST(StripeTest, CapsuleAreaUpperBound) {
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 1.0);
  // pi * r^2 + 2 r L = pi + 20.
  EXPECT_NEAR(s.CapsuleAreaUpperBound(), 3.14159265 + 20.0, 1e-6);
}

// Property: symmetry and the triangle-ish consistency of stripe distance
// with containment (distance 0 iff some sampled path point of one is inside
// the other's buffer expanded by its radius).
TEST(StripeTest, PropertyStripeDistanceSymmetric) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    auto random_stripe = [&rng]() {
      std::vector<Vec2> pts;
      Vec2 p{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
      for (int i = 0; i < 4; ++i) {
        pts.push_back(p);
        p += Vec2{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
      }
      return Stripe(Polyline(pts), rng.Uniform(0.1, 2.0));
    };
    const Stripe a = random_stripe();
    const Stripe b = random_stripe();
    EXPECT_DOUBLE_EQ(a.DistanceToStripe(b), b.DistanceToStripe(a));
    EXPECT_GE(a.DistanceToStripe(b), 0.0);
  }
}

}  // namespace
}  // namespace proxdet
