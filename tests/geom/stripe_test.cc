#include "geom/stripe.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace proxdet {
namespace {

Stripe MakeLStripe(double radius) {
  return Stripe(Polyline({{0, 0}, {10, 0}, {10, 10}}), radius);
}

TEST(StripeTest, ContainsWithinRadiusOfAnySegment) {
  const Stripe s = MakeLStripe(2.0);
  EXPECT_TRUE(s.Contains({5, 1.5}));
  EXPECT_TRUE(s.Contains({11.5, 5}));
  EXPECT_TRUE(s.Contains({5, 2}));   // Exactly on the boundary.
  EXPECT_FALSE(s.Contains({5, 2.1}));
  EXPECT_FALSE(s.Contains({-3, 0}));
}

TEST(StripeTest, DefinitionEquivalence) {
  // Def. 4: contained iff min segment distance <= radius.
  const Stripe s = MakeLStripe(1.5);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.Uniform(-5, 15), rng.Uniform(-5, 15)};
    const bool by_def = s.path().DistanceToPoint(p) <= s.radius() + 1e-9;
    EXPECT_EQ(s.Contains(p), by_def);
  }
}

TEST(StripeTest, DistanceToPoint) {
  const Stripe s = MakeLStripe(2.0);
  // Nearest segment is the vertical one (distance 5), minus radius 2.
  EXPECT_DOUBLE_EQ(s.DistanceToPoint({5, 6}), 3.0);
  EXPECT_DOUBLE_EQ(s.DistanceToPoint({5, 1}), 0.0);  // Inside.
}

TEST(StripeTest, StripeStripeDistance) {
  const Stripe a(Polyline({{0, 0}, {10, 0}}), 1.0);
  const Stripe b(Polyline({{0, 10}, {10, 10}}), 2.0);
  EXPECT_DOUBLE_EQ(a.DistanceToStripe(b), 7.0);
  const Stripe overlapping(Polyline({{0, 2}, {10, 2}}), 1.5);
  EXPECT_DOUBLE_EQ(a.DistanceToStripe(overlapping), 0.0);
}

TEST(StripeTest, Eq8IsUpperBoundOnExact) {
  // Eq. (8) anchors only at predicted points, so it can only overestimate
  // the true clearance (never report "safe" when the exact test says not).
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    auto random_stripe = [&rng]() {
      std::vector<Vec2> pts;
      Vec2 p{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
      for (int i = 0; i < 5; ++i) {
        pts.push_back(p);
        p += Vec2{rng.Uniform(-4, 4), rng.Uniform(-4, 4)};
      }
      return Stripe(Polyline(pts), rng.Uniform(0.5, 3.0));
    };
    const Stripe a = random_stripe();
    const Stripe b = random_stripe();
    EXPECT_GE(a.ApproxDistanceToStripeEq8(b) + 1e-9, a.DistanceToStripe(b));
  }
}

TEST(StripeTest, DistanceToCircle) {
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 1.0);
  const Circle c{{5, 6}, 2.0};
  EXPECT_DOUBLE_EQ(s.DistanceToCircle(c), 3.0);
  const Circle touching{{5, 2.5}, 1.5};
  EXPECT_DOUBLE_EQ(s.DistanceToCircle(touching), 0.0);
}

TEST(StripeTest, SinglePointStripeActsAsDisk) {
  const Stripe s(Polyline({{3, 3}}), 2.0);
  EXPECT_TRUE(s.Contains({4, 3}));
  EXPECT_FALSE(s.Contains({6, 3}));
  EXPECT_DOUBLE_EQ(s.DistanceToPoint({3, 8}), 3.0);
}

TEST(StripeTest, ZeroRadiusStripeContainsOnlyPath) {
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 0.0);
  EXPECT_TRUE(s.Contains({5, 0}));
  EXPECT_FALSE(s.Contains({5, 0.1}));
}

TEST(StripeTest, CapsuleAreaUpperBound) {
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 1.0);
  // pi * r^2 + 2 r L = pi + 20.
  EXPECT_NEAR(s.CapsuleAreaUpperBound(), 3.14159265 + 20.0, 1e-6);
}

// Property: the AABB early-reject in Contains never changes the answer.
// Points are drawn from a range much wider than the stripe so most fall
// outside the reject box, and every verdict must still match Def. 4.
TEST(StripeTest, PropertyContainsMatchesDefinitionFarField) {
  Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> pts;
    Vec2 p{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    for (int i = 0; i < 5; ++i) {
      pts.push_back(p);
      p += Vec2{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    }
    const Stripe s(Polyline(pts), rng.Uniform(0.5, 5.0));
    for (int i = 0; i < 100; ++i) {
      const Vec2 q{rng.Uniform(-2000, 2000), rng.Uniform(-2000, 2000)};
      const bool by_def = s.path().DistanceToPoint(q) <= s.radius() + 1e-9;
      EXPECT_EQ(s.Contains(q), by_def);
    }
  }
}

// Boundary points sit exactly at the containment threshold; the inflated
// reject box must never clip them.
TEST(StripeTest, BoundaryPointsSurviveEarlyReject) {
  const Stripe s(Polyline({{0, 0}, {10, 0}}), 2.0);
  EXPECT_TRUE(s.Contains({5, 2}));     // On the boundary.
  EXPECT_TRUE(s.Contains({-2, 0}));    // End-cap extreme, outside the
  EXPECT_TRUE(s.Contains({12, 0}));    // path's own bbox.
  EXPECT_TRUE(s.Contains({0, -2}));
  EXPECT_FALSE(s.Contains({5, 2.001}));
  EXPECT_FALSE(s.Contains({1e6, 1e6}));  // Far-field reject.
}

// Property: the squared-distance segment scan with one final sqrt is
// bit-identical to the historical per-segment sqrt minimization (IEEE sqrt
// is monotone), so detector output cannot shift.
TEST(StripeTest, PropertySquaredScanMatchesPerSegmentSqrt) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Vec2> pts;
    Vec2 p{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const int n = 2 + static_cast<int>(rng.NextIndex(6));
    for (int i = 0; i < n; ++i) {
      pts.push_back(p);
      p += Vec2{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
    }
    const Polyline poly(pts);
    const Vec2 q{rng.Uniform(-500, 500), rng.Uniform(-500, 500)};
    double per_segment = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < poly.segment_count(); ++i) {
      per_segment =
          std::min(per_segment, DistancePointToSegment(q, poly.segment(i)));
    }
    EXPECT_EQ(poly.DistanceToPoint(q), per_segment);  // Bit-exact.
    EXPECT_EQ(std::sqrt(poly.SquaredDistanceToPoint(q)), per_segment);
  }
}

// Property: symmetry and the triangle-ish consistency of stripe distance
// with containment (distance 0 iff some sampled path point of one is inside
// the other's buffer expanded by its radius).
TEST(StripeTest, PropertyStripeDistanceSymmetric) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    auto random_stripe = [&rng]() {
      std::vector<Vec2> pts;
      Vec2 p{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
      for (int i = 0; i < 4; ++i) {
        pts.push_back(p);
        p += Vec2{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
      }
      return Stripe(Polyline(pts), rng.Uniform(0.1, 2.0));
    };
    const Stripe a = random_stripe();
    const Stripe b = random_stripe();
    EXPECT_DOUBLE_EQ(a.DistanceToStripe(b), b.DistanceToStripe(a));
    EXPECT_GE(a.DistanceToStripe(b), 0.0);
  }
}

}  // namespace
}  // namespace proxdet
