// Compiled with PROXDET_OBS_DISABLED (see tests/CMakeLists.txt): the
// no-op observability surface must accept every call site unchanged and
// observe nothing. This translation unit picks up the obs::noop inline
// namespace while linking against libraries built with the layer enabled —
// the distinct mangled names keep the two from colliding; the plain-data
// types (MetricsSnapshot, RunReport) are shared.

#ifndef PROXDET_OBS_DISABLED
#error "this test must be compiled with PROXDET_OBS_DISABLED"
#endif

#include <string>

#include <gtest/gtest.h>

#include "bench_support/obs_artifacts.h"
#include "core/comm_stats.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace proxdet {
namespace {

TEST(ObsNoopTest, RegistryAcceptsCallsAndObservesNothing) {
  obs::MetricsRegistry& registry = obs::Metrics();
  registry.GetCounter("c", obs::Kind::kDeterministic).Inc(42);
  registry.GetGauge("g").Set(3.0);
  registry.GetHistogram("h", {1.0, 2.0}).Record(0.5);
  registry.GetQuantile("q").Record(1.0);
  EXPECT_EQ(registry.GetCounter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 0.0);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.quantiles.empty());
  EXPECT_EQ(snap.DeterministicDigest(), "");
  EXPECT_EQ(registry.PrometheusDump(), "");
  registry.Reset();  // Still callable.
}

TEST(ObsNoopTest, TracerIsInert) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable();  // Ignored.
  EXPECT_FALSE(tracer.enabled());
  { obs::TraceScope scope("span", "test"); }
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
  // The export is still a well-formed (empty) trace document.
  EXPECT_EQ(tracer.ToChromeTraceJson(), "{\"traceEvents\": []}\n");
  EXPECT_FALSE(tracer.WriteChromeTrace("/tmp/never_written.json"));
}

TEST(ObsNoopTest, ReportsStillWorkWithEmptyMetrics) {
  // RunReport is plain data, compiled unconditionally: the report pipeline
  // keeps functioning, just with an empty metrics subtree.
  CommStats stats;
  stats.reports = 10;
  stats.bytes_up = 100;
  obs::RunReport report = MakeRunReport("noop_run", stats);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"run\": \"noop_run\""), std::string::npos);
  EXPECT_NE(json.find("\"reports\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\""), std::string::npos);

  // Reconciliation is trivially satisfied: no counters to contradict.
  std::string error;
  EXPECT_TRUE(ReconcileWithCommStats(report.metrics(), stats, &error));
  EXPECT_TRUE(error.empty());
}

}  // namespace
}  // namespace proxdet
