// End-to-end observability: a transported run with the tracer armed must
// produce (a) epoch-phase, wire-codec and SimNet-delivery spans, (b) a
// metrics snapshot whose engine/net counters reconcile with the run's
// CommStats and NetRunStats to the unit, and (c) a RunReport that carries
// the reconciliation verdict — all without perturbing the engine's
// deterministic outputs.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bench_support/obs_artifacts.h"
#include "core/simulation.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {
namespace {

WorkloadConfig TinyConfig() {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 30;
  config.epochs = 40;
  config.speed_steps = 8;
  config.avg_friends = 5.0;
  config.alert_radius_m = 6000.0;
  config.seed = 4242;
  config.training_users = 10;
  config.training_epochs = 60;
  return config;
}

const Workload& SharedWorkload() {
  static const Workload workload = BuildWorkload(TinyConfig());
  return workload;
}

std::set<std::string> SpanNames(const obs::Tracer& tracer) {
  std::set<std::string> names;
  for (const obs::TraceEvent& e : tracer.snapshot()) names.insert(e.name);
  return names;
}

TEST(ObsIntegrationTest, TransportedRunEmitsAllSpanFamilies) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  obs::Metrics().Reset();
  const net::TransportedRunResult result =
      net::RunTransportedMethod(Method::kStripeKf, SharedWorkload(), {});
  tracer.Disable();
  ASSERT_TRUE(result.run.alerts_exact);
  ASSERT_GT(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::set<std::string> names = SpanNames(tracer);
  // Epoch phases of the region engine (pair_check is FMD/CMD-only: static
  // stripe shapes need no per-epoch region-pair re-check).
  for (const char* phase :
       {"graph_updates", "match_region", "exit_scan", "resolve"}) {
    EXPECT_TRUE(names.count(phase)) << "missing engine span: " << phase;
  }
  // Cost-model / stripe construction spans (Stripe+KF builds regions).
  EXPECT_TRUE(names.count("predict"));
  EXPECT_TRUE(names.count("stripe_build"));
  // Wire codec and simulated-network delivery spans.
  for (const char* wire : {"wire_encode", "wire_decode", "simnet_delivery"}) {
    EXPECT_TRUE(names.count(wire)) << "missing net span: " << wire;
  }
  // The export is consumable Chrome trace JSON.
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"exit_scan\""), std::string::npos);

  // A moving-region method covers the remaining phase.
  tracer.Clear();
  tracer.Enable();
  net::RunTransportedMethod(Method::kCmd, SharedWorkload(), {});
  tracer.Disable();
  EXPECT_TRUE(SpanNames(tracer).count("pair_check"));
  tracer.Clear();
}

TEST(ObsIntegrationTest, CountersReconcileWithCommStats) {
  obs::Metrics().Reset();
  const net::TransportedRunResult result =
      net::RunTransportedMethod(Method::kStripeKf, SharedWorkload(), {});
  const obs::MetricsSnapshot snap = obs::Metrics().Snapshot();

  std::string error;
  EXPECT_TRUE(ReconcileWithCommStats(snap, result.run.stats, &error)) << error;

  // Spot-check the exact identities behind the reconciliation: the engine
  // counters are incremented at the same serial-commit sites that mutate
  // CommStats, and the net byte counters attribute by direction exactly
  // like TransportLink::Stats().
  const CommStats& s = result.run.stats;
  EXPECT_EQ(snap.counters.at("engine.reports").second, s.reports);
  EXPECT_EQ(snap.counters.at("engine.probes").second, s.probes);
  EXPECT_EQ(snap.counters.at("engine.alerts").second, s.alerts);
  EXPECT_EQ(snap.counters.at("engine.region_installs").second,
            s.region_installs);
  EXPECT_EQ(snap.counters.at("engine.match_installs").second,
            s.match_installs);
  EXPECT_EQ(snap.counters.at("net.bytes_up").second, s.bytes_up);
  EXPECT_EQ(snap.counters.at("net.bytes_down").second, s.bytes_down);
  EXPECT_GT(s.bytes_up, 0u);

  // A report built from this run records the verdict.
  obs::RunReport report = MakeRunReport("obs_integration", s);
  std::string mismatch;
  const bool ok = ReconcileWithCommStats(report.metrics(), s, &mismatch);
  EXPECT_TRUE(ok) << mismatch;
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"engine.reports\": " + std::to_string(s.reports)),
            std::string::npos);
}

TEST(ObsIntegrationTest, IndexCountersReconcileWithDetectorStats) {
  obs::Metrics().Reset();
  // CMD exercises every index surface: region grid (per-epoch pair check),
  // match classifiers, and the incremental maintenance counters.
  RegionDetector::Options options;  // use_spatial_index defaults to true.
  std::unique_ptr<Detector> detector =
      MakeDetector(Method::kCmd, SharedWorkload(), options);
  detector->Run(SharedWorkload().world);
  const auto* rd = dynamic_cast<const RegionDetector*>(detector.get());
  ASSERT_NE(rd, nullptr);
  const SpatialIndexStats& stats = rd->index_stats();
  EXPECT_GT(stats.upserts, 0u);
  EXPECT_GT(stats.queries, 0u);

  const obs::MetricsSnapshot snap = obs::Metrics().Snapshot();
  std::string error;
  EXPECT_TRUE(ReconcileIndexStats(snap, stats, &error)) << error;
  EXPECT_EQ(snap.counters.at("engine.index.upserts").second, stats.upserts);
  EXPECT_EQ(snap.counters.at("engine.index.queries").second, stats.queries);

  // Tampering is detected field-by-field.
  SpatialIndexStats tampered = stats;
  tampered.cells_probed += 1;
  error.clear();
  EXPECT_FALSE(ReconcileIndexStats(snap, tampered, &error));
  EXPECT_NE(error.find("engine.index.cells_probed"), std::string::npos);

  // The report section carries every index counter.
  obs::RunReport report = MakeRunReport("obs_index", detector->stats());
  AddIndexSection(&report, stats);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"cells_probed\": " +
                      std::to_string(stats.cells_probed)),
            std::string::npos);
}

TEST(ObsIntegrationTest, ReconciliationDetectsTampering) {
  obs::Metrics().Reset();
  const net::TransportedRunResult result =
      net::RunTransportedMethod(Method::kCmd, SharedWorkload(), {});
  CommStats tampered = result.run.stats;
  tampered.reports += 1;
  std::string error;
  EXPECT_FALSE(
      ReconcileWithCommStats(obs::Metrics().Snapshot(), tampered, &error));
  EXPECT_NE(error.find("engine.reports"), std::string::npos);
}

net::NetConfig NetConfigLossy() {
  net::NetConfig config;
  config.up.latency_s = 0.01;
  config.up.drop_rate = 0.10;
  config.up.dup_rate = 0.05;
  config.down.latency_s = 0.01;
  config.down.drop_rate = 0.10;
  config.down.dup_rate = 0.05;
  config.seed = 99;
  return config;
}

TEST(ObsIntegrationTest, NetCountersTrackDropsDupsAndRetransmits) {
  obs::Metrics().Reset();
  const net::TransportedRunResult result =
      net::RunTransportedMethod(Method::kCmd, SharedWorkload(),
                                NetConfigLossy());
  ASSERT_TRUE(result.run.alerts_exact);
  ASSERT_FALSE(result.net.failed);
  const obs::MetricsSnapshot snap = obs::Metrics().Snapshot();
  EXPECT_EQ(snap.counters.at("net.retransmits").second,
            result.net.retransmits);
  EXPECT_EQ(snap.counters.at("net.drops").second, result.net.drops);
  EXPECT_EQ(snap.counters.at("net.dups").second, result.net.duplicates);
  EXPECT_EQ(snap.counters.at("net.dedup_discards").second,
            result.net.dedup_discards);
  EXPECT_GT(result.net.retransmits, 0u);
  // Per-kind wire accounting sums to the direction totals.
  uint64_t kind_bytes = 0;
  for (const auto& [name, entry] : snap.counters) {
    if (name.rfind("net.bytes.", 0) == 0) kind_bytes += entry.second;
  }
  EXPECT_EQ(kind_bytes, result.net.bytes_up + result.net.bytes_down);
}

}  // namespace
}  // namespace proxdet
