// The metrics registry contract: stable handles (cached references survive
// Reset), first-registration-wins kinds, thread-safe accumulation, the
// deterministic/wall-clock segregation in snapshots and digests, and the
// Prometheus text exposition.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace proxdet {
namespace obs {
namespace {

TEST(MetricsRegistryTest, HandlesAreStableAcrossReset) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("x.count");
  c.Inc(3);
  EXPECT_EQ(c.value(), 3u);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);  // Zeroed, but the handle stays live.
  c.Inc();
  EXPECT_EQ(registry.GetCounter("x.count").value(), 1u);
  // Re-registering the same name returns the same object.
  EXPECT_EQ(&registry.GetCounter("x.count"), &c);
}

TEST(MetricsRegistryTest, FirstRegistrationKindWins) {
  MetricsRegistry registry;
  registry.GetCounter("det", Kind::kDeterministic).Inc();
  registry.GetCounter("det", Kind::kWallClock);  // Ignored.
  registry.GetCounter("wall", Kind::kWallClock).Inc();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("det").first, Kind::kDeterministic);
  EXPECT_EQ(snap.counters.at("wall").first, Kind::kWallClock);
  // The digest covers deterministic entries only.
  const std::string digest = snap.DeterministicDigest();
  EXPECT_NE(digest.find("counter det = 1"), std::string::npos);
  EXPECT_EQ(digest.find("wall"), std::string::npos);
  // So do the deterministic counters.
  EXPECT_EQ(snap.DeterministicCounters().count("det"), 1u);
  EXPECT_EQ(snap.DeterministicCounters().count("wall"), 0u);
}

TEST(MetricsRegistryTest, HistogramBoundsFirstRegistrationWins) {
  MetricsRegistry registry;
  HistogramMetric& h =
      registry.GetHistogram("h", {1.0, 2.0}, Kind::kDeterministic);
  h.Record(1.5);
  // A second registration with different bounds must not clobber the data.
  registry.GetHistogram("h", {10.0});
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(snap.count(), 1u);
}

TEST(MetricsRegistryTest, GaugeAccumulation) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("g");
  g.Set(2.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.MaxOf(1.0);  // Below current: no-op.
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.MaxOf(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("hot");
  QuantileMetric& q = registry.GetQuantile("samples");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &q] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
        q.Record(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(q.snapshot().count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotCoversAllMetricTypes) {
  MetricsRegistry registry;
  registry.GetCounter("c").Inc(5);
  registry.GetGauge("g").Set(1.25);
  registry.GetHistogram("h", {1.0}).Record(0.5);
  registry.GetQuantile("q").Record(2.0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c").second, 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g").second, 1.25);
  EXPECT_EQ(snap.histograms.at("h").value.count(), 1u);
  EXPECT_EQ(snap.quantiles.at("q").value.count(), 1u);
}

TEST(MetricsRegistryTest, DigestIsValueSensitive) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("d", Kind::kDeterministic);
  c.Inc();
  const std::string one = registry.Snapshot().DeterministicDigest();
  c.Inc();
  const std::string two = registry.Snapshot().DeterministicDigest();
  EXPECT_NE(one, two);
  registry.Reset();
  c.Inc();
  EXPECT_EQ(registry.Snapshot().DeterministicDigest(), one);
}

TEST(MetricsRegistryTest, PrometheusDumpFormat) {
  MetricsRegistry registry;
  registry.GetCounter("engine.reports").Inc(7);
  registry.GetGauge("pool.busy").Set(0.5);
  HistogramMetric& h = registry.GetHistogram("stripe.m", {1.0, 2.0});
  h.Record(0.5);
  h.Record(1.5);
  h.Record(9.0);
  registry.GetQuantile("wait").Record(4.0);
  const std::string dump = registry.PrometheusDump();
  // Names are sanitized to [a-zA-Z0-9_] and prefixed.
  EXPECT_NE(dump.find("# TYPE proxdet_engine_reports counter"),
            std::string::npos);
  EXPECT_NE(dump.find("proxdet_engine_reports 7"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE proxdet_pool_busy gauge"), std::string::npos);
  // Histogram buckets are cumulative with an explicit +Inf bucket.
  EXPECT_NE(dump.find("proxdet_stripe_m_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(dump.find("proxdet_stripe_m_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(dump.find("proxdet_stripe_m_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(dump.find("proxdet_stripe_m_count 3"), std::string::npos);
  // Quantile sketches export as summaries.
  EXPECT_NE(dump.find("# TYPE proxdet_wait summary"), std::string::npos);
  EXPECT_NE(dump.find("proxdet_wait{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(dump.find("proxdet_wait_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsASingleRegistry) {
  EXPECT_EQ(&MetricsRegistry::Global(), &Metrics());
  // Use a test-scoped name so the global registry's state from other tests
  // (the engine instrumentation) is irrelevant.
  Counter& c = Metrics().GetCounter("metrics_test.global_probe");
  const uint64_t before = c.value();
  c.Inc();
  EXPECT_EQ(Metrics().GetCounter("metrics_test.global_probe").value(),
            before + 1);
}

}  // namespace
}  // namespace obs
}  // namespace proxdet
