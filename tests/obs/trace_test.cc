// Tracer contract: disarmed scopes record nothing, armed scopes append
// complete spans with dense thread ids, the capacity bound converts
// overflow into a dropped-count, and the export is loadable Chrome
// trace_event JSON.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace proxdet {
namespace obs {
namespace {

TEST(TracerTest, DisabledScopeRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  tracer.Clear();
  { TraceScope scope("noop", "test"); }
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(TracerTest, EnabledScopeRecordsACompleteSpan) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  { TraceScope scope("unit_span", "test"); }
  tracer.Disable();
  ASSERT_EQ(tracer.span_count(), 1u);
  const TraceEvent event = tracer.snapshot()[0];
  EXPECT_STREQ(event.name, "unit_span");
  EXPECT_STREQ(event.category, "test");
  EXPECT_EQ(event.tid, 0u);  // First (and only) thread seen.
  tracer.Clear();
}

TEST(TracerTest, CapacityBoundsTheBufferAndCountsDrops) {
  Tracer tracer;
  tracer.set_capacity(2);
  tracer.Enable();
  tracer.Record("a", "test", 0, 1);
  tracer.Record("b", "test", 1, 2);
  tracer.Record("c", "test", 2, 3);
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, NegativeDurationClampsToZero) {
  Tracer tracer;
  tracer.Record("backwards", "test", 10, 5);
  EXPECT_EQ(tracer.snapshot()[0].dur_us, 0u);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  tracer.Record("phase_a", "engine", 0, 100);
  tracer.Record("phase_b", "net", 100, 250);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase_a\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"net\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 100, \"dur\": 150"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  // Empty tracer still produces a well-formed document.
  Tracer empty;
  EXPECT_NE(empty.ToChromeTraceJson().find("\"traceEvents\": ["),
            std::string::npos);
}

TEST(TracerTest, WriteChromeTraceRoundTrips) {
  Tracer tracer;
  tracer.Record("disk_span", "test", 0, 42);
  const std::string path = ::testing::TempDir() + "tracer_roundtrip.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), tracer.ToChromeTraceJson());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace proxdet
