// The observability determinism contract: every metric registered as
// Kind::kDeterministic is a pure function of (workload seed, transport
// seed) — the deterministic digest is byte-identical across repeated
// same-seed runs and across PROXDET_THREADS values, with instrumentation
// fully enabled.

#include <string>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "exec/thread_pool.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace proxdet {
namespace {

WorkloadConfig TinyConfig(uint64_t seed) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 30;
  config.epochs = 40;
  config.speed_steps = 8;
  config.avg_friends = 5.0;
  config.alert_radius_m = 6000.0;
  config.seed = seed;
  config.training_users = 10;
  config.training_epochs = 60;
  return config;
}

std::string DigestOfRun(Method method, const Workload& workload) {
  obs::Metrics().Reset();
  const RunResult result = RunMethod(method, workload);
  EXPECT_TRUE(result.alerts_exact);
  return obs::Metrics().Snapshot().DeterministicDigest();
}

TEST(ObsDeterminismTest, DigestIsIdenticalAcrossThreadCounts) {
  const Workload workload = BuildWorkload(TinyConfig(321));
  for (const Method method : {Method::kNaive, Method::kCmd,
                              Method::kStripeKf}) {
    ThreadPool::SetGlobalThreads(1);
    const std::string serial = DigestOfRun(method, workload);
    ASSERT_FALSE(serial.empty());
    ThreadPool::SetGlobalThreads(4);
    const std::string parallel = DigestOfRun(method, workload);
    EXPECT_EQ(serial, parallel)
        << MethodName(method) << ": deterministic metrics diverged between "
        << "1 and 4 threads";
  }
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
}

TEST(ObsDeterminismTest, DigestIsIdenticalAcrossRepeatedSameSeedRuns) {
  const Workload workload = BuildWorkload(TinyConfig(654));
  const std::string first = DigestOfRun(Method::kStripeKf, workload);
  const std::string second = DigestOfRun(Method::kStripeKf, workload);
  EXPECT_EQ(first, second);
  // The digest actually covers the engine counters (not vacuously equal).
  EXPECT_NE(first.find("counter engine.reports = "), std::string::npos);
  EXPECT_NE(first.find("quantile stripe.radius"), std::string::npos);
}

TEST(ObsDeterminismTest, TransportedDigestIsIdenticalPerTransportSeed) {
  const Workload workload = BuildWorkload(TinyConfig(987));
  net::NetConfig lossy;
  lossy.up.latency_s = 0.01;
  lossy.up.drop_rate = 0.10;
  lossy.down.latency_s = 0.01;
  lossy.down.drop_rate = 0.10;
  lossy.seed = 1337;

  auto transported_digest = [&] {
    obs::Metrics().Reset();
    const net::TransportedRunResult result =
        net::RunTransportedMethod(Method::kCmd, workload, lossy);
    EXPECT_TRUE(result.run.alerts_exact);
    EXPECT_FALSE(result.net.failed);
    return obs::Metrics().Snapshot().DeterministicDigest();
  };
  const std::string first = transported_digest();
  const std::string second = transported_digest();
  EXPECT_EQ(first, second);
  // The transported digest includes the wire counters, so the equality
  // above covers drops, retransmissions and per-kind byte accounting.
  EXPECT_NE(first.find("counter net.drops = "), std::string::npos);
  EXPECT_NE(first.find("counter net.retransmits = "), std::string::npos);
}

TEST(ObsDeterminismTest, DifferentSeedsProduceDifferentDigests) {
  const Workload a = BuildWorkload(TinyConfig(111));
  const Workload b = BuildWorkload(TinyConfig(222));
  EXPECT_NE(DigestOfRun(Method::kStripeKf, a),
            DigestOfRun(Method::kStripeKf, b));
}

}  // namespace
}  // namespace proxdet
