// Golden and property tests for the fixed-bucket Histogram and the
// HDR-style StreamingQuantile sketch: exact bucket placement (Prometheus
// "le" semantics), quantile accuracy bounds, the sentinel buckets for
// non-positive / non-finite samples, and the merge discipline — merging
// two instances must equal the instance built from the concatenated
// sample streams.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/histogram.h"

namespace proxdet {
namespace obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(HistogramTest, LeBucketPlacementGolden) {
  Histogram h(std::vector<double>{1.0, 2.0, 5.0});
  // A sample lands in the first bucket whose upper bound is >= the value.
  h.Record(0.5);   // bucket 0 (le 1)
  h.Record(1.0);   // bucket 0 (le semantics: boundary is inclusive)
  h.Record(1.5);   // bucket 1 (le 2)
  h.Record(5.0);   // bucket 2 (le 5)
  h.Record(100.0); // overflow (+inf)
  const std::vector<uint64_t> expected{2, 1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 100.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
}

TEST(HistogramTest, EmptyAndDegenerate) {
  Histogram empty(std::vector<double>{1.0});
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  // No bounds: one overflow bucket catches everything.
  Histogram degenerate;
  degenerate.Record(3.0);
  ASSERT_EQ(degenerate.bucket_counts().size(), 1u);
  EXPECT_EQ(degenerate.bucket_counts()[0], 1u);
  EXPECT_DOUBLE_EQ(degenerate.Quantile(0.5), 3.0);  // Overflow yields max.
}

TEST(HistogramTest, LinearFactoryGolden) {
  const Histogram h = Histogram::Linear(0.0, 10.0, 5);
  const std::vector<double> expected{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_EQ(h.bounds(), expected);
  EXPECT_EQ(h.bucket_counts().size(), 6u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  // 100 samples uniform on (0, 10]: the interpolated median of a linear
  // histogram must sit near the true median.
  Histogram h = Histogram::Linear(0.0, 10.0, 10);
  for (int i = 1; i <= 100; ++i) h.Record(i * 0.1);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.Quantile(0.9), 9.0, 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
}

TEST(HistogramTest, MergeEqualsConcatenatedStream) {
  const std::vector<double> bounds{0.25, 0.5, 0.75};
  Rng rng(7);
  Histogram a(bounds), b(bounds), concat(bounds);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    a.Record(x);
    concat.Record(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    b.Record(x);
    concat.Record(x);
  }
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.bucket_counts(), concat.bucket_counts());
  EXPECT_EQ(a.count(), concat.count());
  // Counts and extremes are exact; the sum regroups the additions
  // ((sum_a) + (sum_b) vs one sequential pass), so only near-equality.
  EXPECT_NEAR(a.sum(), concat.sum(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), concat.min());
  EXPECT_DOUBLE_EQ(a.max(), concat.max());
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a(std::vector<double>{1.0, 2.0});
  Histogram b(std::vector<double>{1.0, 3.0});
  a.Record(0.5);
  b.Record(0.5);
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.count(), 1u);  // Left untouched.
}

TEST(HistogramTest, ResetKeepsBoundsClearsCounts) {
  Histogram h(std::vector<double>{1.0});
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bounds(), std::vector<double>{1.0});
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{0, 0}));
}

// ---------------------------------------------------------------------------
// StreamingQuantile

TEST(StreamingQuantileTest, SentinelBucketsGolden) {
  constexpr int32_t kFloor = std::numeric_limits<int32_t>::min();
  constexpr int32_t kCeil = std::numeric_limits<int32_t>::max();
  EXPECT_EQ(StreamingQuantile::BucketIndex(0.0), kFloor);
  EXPECT_EQ(StreamingQuantile::BucketIndex(-3.5), kFloor);
  EXPECT_EQ(StreamingQuantile::BucketIndex(
                std::numeric_limits<double>::quiet_NaN()),
            kFloor);
  EXPECT_EQ(StreamingQuantile::BucketIndex(kInf), kCeil);
  EXPECT_DOUBLE_EQ(StreamingQuantile::BucketLower(kFloor), 0.0);
  EXPECT_DOUBLE_EQ(StreamingQuantile::BucketLower(kCeil), kInf);
}

TEST(StreamingQuantileTest, BucketBracketsItsSample) {
  for (const double x : {1e-6, 0.37, 1.0, 3.7, 1024.5, 9.9e12}) {
    const int32_t index = StreamingQuantile::BucketIndex(x);
    EXPECT_LE(StreamingQuantile::BucketLower(index), x) << x;
    EXPECT_GT(StreamingQuantile::BucketUpper(index), x) << x;
  }
}

TEST(StreamingQuantileTest, RelativeErrorBoundOnUniformStream) {
  StreamingQuantile q;
  for (int i = 1; i <= 1000; ++i) q.Record(static_cast<double>(i));
  EXPECT_EQ(q.count(), 1000u);
  // Bucket midpoints are within 1/(2*kSubbuckets) ~ 1.6% relative error;
  // allow 2x slack for the rank landing at a bucket edge.
  for (const double p : {0.25, 0.5, 0.9, 0.99}) {
    const double truth = p * 1000.0;
    EXPECT_NEAR(q.Quantile(p) / truth, 1.0, 2.0 / StreamingQuantile::kSubbuckets)
        << "p=" << p;
  }
  // Extremes are tracked exactly.
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 1000.0);
}

TEST(StreamingQuantileTest, OrderIndependentSketch) {
  std::vector<double> samples;
  Rng rng(13);
  for (int i = 0; i < 400; ++i) samples.push_back(rng.Uniform(0.001, 50.0));

  StreamingQuantile forward, backward;
  for (const double x : samples) forward.Record(x);
  std::reverse(samples.begin(), samples.end());
  for (const double x : samples) backward.Record(x);

  // The sketch is a pure function of the sample multiset.
  EXPECT_EQ(forward.buckets(), backward.buckets());
  EXPECT_DOUBLE_EQ(forward.min(), backward.min());
  EXPECT_DOUBLE_EQ(forward.max(), backward.max());
  EXPECT_DOUBLE_EQ(forward.Quantile(0.5), backward.Quantile(0.5));
}

TEST(StreamingQuantileTest, MergeEqualsConcatenatedStream) {
  Rng rng(21);
  StreamingQuantile a, b, concat;
  for (int i = 0; i < 250; ++i) {
    const double x = rng.Uniform(0.0, 100.0);
    a.Record(x);
    concat.Record(x);
  }
  // Include the sentinel buckets in the property.
  for (const double x : {0.0, -1.0, kInf}) {
    b.Record(x);
    concat.Record(x);
  }
  for (int i = 0; i < 150; ++i) {
    const double x = rng.Uniform(0.0, 0.01);
    b.Record(x);
    concat.Record(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.buckets(), concat.buckets());
  EXPECT_EQ(a.count(), concat.count());
  EXPECT_DOUBLE_EQ(a.min(), concat.min());
  EXPECT_DOUBLE_EQ(a.max(), concat.max());
}

TEST(StreamingQuantileTest, ResetClearsEverything) {
  StreamingQuantile q;
  q.Record(2.0);
  q.Reset();
  EXPECT_EQ(q.count(), 0u);
  EXPECT_TRUE(q.buckets().empty());
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace proxdet
