// RunReport serialization: info/section ordering, JSON escaping, the
// deterministic vs wall-clock metric segregation, non-finite scalars, and
// the file round trip.

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/report.h"

namespace proxdet {
namespace obs {
namespace {

TEST(RunReportTest, JsonStructureGolden) {
  RunReport report("unit_run");
  report.AddInfo("method", "Stripe+KF");
  report.AddCount("comm_stats", "reports", 42);
  report.AddScalar("timing", "wall_seconds", 1.5);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"run\": \"unit_run\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"Stripe+KF\""), std::string::npos);
  EXPECT_NE(json.find("\"comm_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"reports\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 1.5"), std::string::npos);
  // The metrics subtree is present even without a captured snapshot.
  EXPECT_NE(json.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_clock\""), std::string::npos);
}

TEST(RunReportTest, EscapesQuotesAndBackslashes) {
  RunReport report("quoted \"run\"");
  report.AddInfo("path", "C:\\tmp");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"quoted \\\"run\\\"\""), std::string::npos);
  EXPECT_NE(json.find("C:\\\\tmp"), std::string::npos);
}

TEST(RunReportTest, NonFiniteScalarsSerializeAsStrings) {
  RunReport report("inf_run");
  report.AddScalar("edge", "pos_inf", std::numeric_limits<double>::infinity());
  report.AddScalar("edge", "not_a_number",
                   std::numeric_limits<double>::quiet_NaN());
  const std::string json = report.ToJson();
  // Bare inf/nan are not valid JSON numbers; they must become strings.
  EXPECT_NE(json.find("\"pos_inf\": \"inf\""), std::string::npos);
  EXPECT_NE(json.find("\"not_a_number\": \"nan\""), std::string::npos);
}

TEST(RunReportTest, CapturedMetricsAreSegregatedByKind) {
  MetricsRegistry registry;
  registry.GetCounter("det.count", Kind::kDeterministic).Inc(3);
  registry.GetCounter("wall.count", Kind::kWallClock).Inc(9);
  registry.GetQuantile("det.dist", Kind::kDeterministic).Record(2.0);

  RunReport report("segregated");
  report.CaptureMetrics(registry.Snapshot());
  const std::string json = report.ToJson();

  const size_t det = json.find("\"deterministic\"");
  const size_t wall = json.find("\"wall_clock\"");
  ASSERT_NE(det, std::string::npos);
  ASSERT_NE(wall, std::string::npos);
  ASSERT_LT(det, wall);
  // det.count and det.dist live in the deterministic subtree (before the
  // wall_clock key); wall.count lives after it.
  EXPECT_LT(json.find("\"det.count\": 3"), wall);
  EXPECT_LT(json.find("\"det.dist\""), wall);
  EXPECT_GT(json.find("\"wall.count\": 9"), wall);
}

TEST(RunReportTest, EmptyWallClockSubtreeStaysValidJson) {
  // Regression guard: a SimNet-only run captures no wall-clock metrics at
  // all — every group of the wall_clock subtree is empty — and the report
  // must still serialize as structurally valid JSON (balanced braces, no
  // dangling commas), with both kind subtrees present.
  obs::Metrics().Reset();
  obs::Metrics().GetCounter("det.only", Kind::kDeterministic).Inc(1);
  RunReport report("virtual_only");
  report.CaptureMetrics(obs::Metrics().Snapshot());
  const std::string json = report.ToJson();

  ASSERT_NE(json.find("\"wall_clock\""), std::string::npos);
  EXPECT_NE(json.find("\"det.only\": 1"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos) << "dangling comma";
  EXPECT_EQ(json.find(",\n}"), std::string::npos) << "dangling comma";
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0) << "unbalanced braces at offset " << i;
  }
  EXPECT_EQ(depth, 0);
  obs::Metrics().Reset();
}

TEST(RunReportTest, QuantileJsonCarriesTailPercentiles) {
  obs::Metrics().Reset();
  obs::QuantileMetric& q =
      obs::Metrics().GetQuantile("lat.q", Kind::kDeterministic);
  for (int i = 1; i <= 1000; ++i) q.Record(static_cast<double>(i));
  RunReport report("tails");
  report.CaptureMetrics(obs::Metrics().Snapshot());
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  obs::Metrics().Reset();
}

TEST(RunReportTest, WriteFileRoundTrips) {
  RunReport report("disk_run");
  report.AddInfo("k", "v");
  const std::string path = ::testing::TempDir() + "report_roundtrip.json";
  ASSERT_TRUE(report.WriteFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.ToJson());
  std::remove(path.c_str());
  EXPECT_FALSE(report.WriteFile("/nonexistent_dir/x/y.json"));
}

}  // namespace
}  // namespace obs
}  // namespace proxdet
