// Deterministic network simulator contract: same seed means byte-identical
// delivery schedules; the reliability layer turns arbitrary loss and
// duplication into exactly-once delivery (or an explicit failure flag).

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/sim_net.h"
#include "net/wire.h"

namespace proxdet {
namespace net {
namespace {

// Records (src, payload-first-byte) for every raw delivery.
struct Sink {
  std::vector<std::pair<int, uint8_t>> seen;
  SimNet::Handler handler() {
    return [this](int src, const std::vector<uint8_t>& frame) {
      seen.push_back({src, frame.empty() ? 0 : frame[0]});
    };
  }
};

TEST(SimNetTest, PerfectLinkDeliversInOrderAtLatency) {
  SimNet net(1);
  Sink sink;
  const int a = net.AddEndpoint([](int, const std::vector<uint8_t>&) {});
  const int b = net.AddEndpoint(sink.handler());
  net.SetLinkModelFn([](int, int) {
    LinkModel m;
    m.latency_s = 0.25;
    return m;
  });
  net.Send(a, b, {1});
  net.Send(a, b, {2});
  net.Send(a, b, {3});
  net.RunUntilIdle();
  ASSERT_EQ(sink.seen.size(), 3u);
  // Equal timestamps: insertion order is the deterministic tie-break.
  EXPECT_EQ(sink.seen[0].second, 1);
  EXPECT_EQ(sink.seen[1].second, 2);
  EXPECT_EQ(sink.seen[2].second, 3);
  EXPECT_DOUBLE_EQ(net.now(), 0.25);
  EXPECT_EQ(net.frames_offered(), 3u);
  EXPECT_EQ(net.frames_dropped(), 0u);
}

TEST(SimNetTest, TotalLossDeliversNothing) {
  SimNet net(2);
  Sink sink;
  const int a = net.AddEndpoint([](int, const std::vector<uint8_t>&) {});
  const int b = net.AddEndpoint(sink.handler());
  net.SetLinkModelFn([](int, int) {
    LinkModel m;
    m.drop_rate = 1.0;
    return m;
  });
  for (int i = 0; i < 20; ++i) net.Send(a, b, {static_cast<uint8_t>(i)});
  net.RunUntilIdle();
  EXPECT_TRUE(sink.seen.empty());
  EXPECT_EQ(net.frames_dropped(), net.frames_offered());
}

TEST(SimNetTest, SameSeedSameScheduleDifferentSeedDifferent) {
  const auto run = [](uint64_t seed) {
    SimNet net(seed);
    net.set_record_log(true);
    Sink sink;
    const int a = net.AddEndpoint([](int, const std::vector<uint8_t>&) {});
    const int b = net.AddEndpoint(sink.handler());
    net.SetLinkModelFn([](int, int) {
      LinkModel m;
      m.latency_s = 0.01;
      m.jitter_s = 0.05;
      m.drop_rate = 0.3;
      m.dup_rate = 0.2;
      return m;
    });
    for (int i = 0; i < 200; ++i) net.Send(a, b, {static_cast<uint8_t>(i)});
    net.RunUntilIdle();
    return std::make_pair(net.schedule_hash(), net.log().size());
  };
  const auto first = run(99);
  const auto second = run(99);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  const auto other = run(100);
  EXPECT_NE(first.first, other.first);
}

// ---------------------------------------------------------------------------
// Reliability layer.

struct ReliablePair {
  SimNet net;
  std::vector<uint64_t> delivered_seqs;  // At endpoint b.
  ReliableEndpoint a;
  ReliableEndpoint b;

  ReliablePair(uint64_t seed, const LinkModel& model, int max_retries = 64)
      : net(seed),
        a(&net, 0.05, max_retries, [](int, Frame&&) {}),
        b(&net, 0.05, max_retries, [this](int, Frame&& frame) {
          delivered_seqs.push_back(frame.seq);
        }) {
    net.SetLinkModelFn([model](int, int) { return model; });
  }
};

TEST(SimNetTest, ReliableDeliversExactlyOnceUnderLoss) {
  LinkModel lossy;
  lossy.latency_s = 0.01;
  lossy.jitter_s = 0.02;
  lossy.drop_rate = 0.3;
  lossy.dup_rate = 0.1;
  ReliablePair pair(5, lossy);
  const int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    pair.a.Send(pair.b.id(), MsgKind::kProbe, Encode(ProbeMsg{1, i}));
  }
  pair.net.RunUntilIdle();
  // Exactly once, despite drops and duplicates on the wire.
  ASSERT_EQ(pair.delivered_seqs.size(), static_cast<size_t>(kMessages));
  std::vector<uint64_t> sorted = pair.delivered_seqs;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(sorted[i], static_cast<uint64_t>(i + 1));
  }
  EXPECT_TRUE(pair.a.all_acked());
  EXPECT_FALSE(pair.a.delivery_failed());
  EXPECT_GT(pair.a.retransmits(), 0u);          // Loss forced retries...
  EXPECT_GT(pair.b.dedup_discards(), 0u);       // ...which the window ate.
  EXPECT_GT(pair.net.frames_dropped(), 0u);
  EXPECT_GT(pair.net.frames_duplicated(), 0u);
}

TEST(SimNetTest, ReliableGivesUpAtTotalLoss) {
  LinkModel dead;
  dead.drop_rate = 1.0;
  ReliablePair pair(6, dead, /*max_retries=*/3);
  pair.a.Send(pair.b.id(), MsgKind::kProbe, Encode(ProbeMsg{1, 0}));
  pair.net.RunUntilIdle();
  EXPECT_TRUE(pair.delivered_seqs.empty());
  EXPECT_TRUE(pair.a.delivery_failed());
  EXPECT_TRUE(pair.a.all_acked());  // Abandoned, nothing pending.
  // 1 original + 3 retries, all offered to the wire and all dropped.
  EXPECT_EQ(pair.net.frames_offered(), 4u);
}

TEST(SimNetTest, GarbageOnTheWireIsCountedAndIgnored) {
  LinkModel perfect;
  ReliablePair pair(7, perfect);
  pair.net.Send(pair.a.id(), pair.b.id(), {0xde, 0xad, 0xbe, 0xef});
  pair.net.RunUntilIdle();
  EXPECT_TRUE(pair.delivered_seqs.empty());
  EXPECT_EQ(pair.b.corrupt_frames(), 1u);
  // The real stream is unaffected.
  pair.a.Send(pair.b.id(), MsgKind::kProbe, Encode(ProbeMsg{1, 0}));
  pair.net.RunUntilIdle();
  EXPECT_EQ(pair.delivered_seqs.size(), 1u);
}

}  // namespace
}  // namespace net
}  // namespace proxdet
