// The trace extension of the versioned frame codec: every frame kind
// round-trips its TraceCtx entries exactly, untraced encodings stay
// byte-identical to version 1, old-version frames still decode (with no
// trace), every single-byte corruption of a traced frame is rejected, the
// malformed-extension space (empty, non-increasing, truncated, trailing
// garbage, out-of-range epochs) is rejected even under a valid checksum,
// and a golden-bytes pin keeps the wire layout compatible across builds.
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "net/latency.h"
#include "net/wire.h"

namespace proxdet {
namespace net {
namespace {

TraceCtx MakeCtx(int32_t epoch, uint64_t event_id, uint8_t hops) {
  TraceCtx ctx;
  ctx.origin_epoch = epoch;
  ctx.event_id = event_id;
  ctx.hops = hops;
  return ctx;
}

/// Frame bytes with an arbitrary hand-built trace extension and a *valid*
/// checksum — the tool for probing the decoder's extension validation
/// in isolation from checksum failures.
std::vector<uint8_t> RawTracedFrame(uint8_t version, uint8_t kind,
                                    const std::vector<uint8_t>& payload,
                                    const std::vector<uint8_t>& ext) {
  WireWriter w;
  w.PutU16(kWireMagic);
  w.PutU8(version);
  w.PutU8(kind);
  w.PutVarint(1);  // seq
  w.PutVarint(payload.size());
  std::vector<uint8_t> bytes = w.Take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  bytes.insert(bytes.end(), ext.begin(), ext.end());
  const uint32_t checksum = Fnv1a32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
  }
  return bytes;
}

TEST(WireTraceTest, TracedFrameRoundTripEveryKind) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<TraceEntry> trace = {
      TraceEntry{0, MakeCtx(12, 0xabcdef0123456789ULL, 1)},
      TraceEntry{3, MakeCtx(-4, 7, 0)},
      TraceEntry{9, MakeCtx(2147483647, ~0ULL, 255)},
  };
  for (uint8_t kind = 1; kind <= kMaxMsgKind; ++kind) {
    for (const uint64_t seq : {0ULL, 127ULL, 128ULL, 1ULL << 40}) {
      const std::vector<uint8_t> bytes =
          EncodeFrameTraced(static_cast<MsgKind>(kind), seq, payload, trace);
      Frame frame;
      ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &frame))
          << "kind " << int(kind) << " seq " << seq;
      EXPECT_EQ(frame.version, kWireVersionTraced);
      EXPECT_EQ(static_cast<uint8_t>(frame.kind), kind);
      EXPECT_EQ(frame.seq, seq);
      EXPECT_EQ(frame.payload, payload);
      EXPECT_EQ(frame.trace, trace);
      // TraceFor resolves present indices and rejects absent ones.
      ASSERT_NE(frame.TraceFor(0), nullptr);
      EXPECT_EQ(*frame.TraceFor(0), trace[0].ctx);
      ASSERT_NE(frame.TraceFor(9), nullptr);
      EXPECT_EQ(*frame.TraceFor(9), trace[2].ctx);
      EXPECT_EQ(frame.TraceFor(1), nullptr);
      EXPECT_EQ(frame.TraceFor(10), nullptr);
    }
  }
}

TEST(WireTraceTest, EmptyTraceDegeneratesToVersionOneBytes) {
  // The opt-in guarantee: untraced traffic must stay byte-identical to the
  // historical encoding — wire accounting, goldens, schedule hashes all
  // depend on it.
  const std::vector<uint8_t> payload = {9, 8, 7};
  for (uint8_t kind = 1; kind <= kMaxMsgKind; ++kind) {
    EXPECT_EQ(EncodeFrameTraced(static_cast<MsgKind>(kind), 11, payload, {}),
              EncodeFrame(static_cast<MsgKind>(kind), 11, payload));
  }
}

TEST(WireTraceTest, OldVersionFramesStillDecodeWithEmptyTrace) {
  const std::vector<uint8_t> bytes =
      EncodeFrame(MsgKind::kAlert, 42, {0xAA, 0xBB});
  Frame frame;
  ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  EXPECT_EQ(frame.version, kWireVersion);
  EXPECT_TRUE(frame.trace.empty());
  EXPECT_EQ(frame.TraceFor(0), nullptr);
}

TEST(WireTraceTest, EverySingleByteCorruptionRejected) {
  // Same guarantee the untraced frame has: flipping any bit anywhere in a
  // traced frame — header, payload, extension or checksum — is caught.
  const std::vector<TraceEntry> trace = {
      TraceEntry{0, MakeCtx(3, 0x1234, 2)},
      TraceEntry{2, MakeCtx(-9, 0xfeedULL << 32, 7)},
  };
  const std::vector<uint8_t> bytes =
      EncodeFrameTraced(MsgKind::kBatch, 42, {1, 2, 3}, trace);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    Frame frame;
    EXPECT_FALSE(DecodeFrame(corrupt.data(), corrupt.size(), &frame))
        << "corruption at byte " << i << " was accepted";
  }
}

TEST(WireTraceTest, TruncatedTracedFrameRejected) {
  const std::vector<uint8_t> bytes = EncodeFrameTraced(
      MsgKind::kAlert, 7, {5}, {TraceEntry{0, MakeCtx(1, 2, 3)}});
  Frame frame;
  for (size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(DecodeFrame(bytes.data(), n, &frame)) << "prefix " << n;
  }
}

TEST(WireTraceTest, MalformedExtensionsRejectedEvenWithValidChecksum) {
  const uint8_t kAlertKind = static_cast<uint8_t>(MsgKind::kAlert);
  Frame frame;
  // A well-formed single-entry extension, as the baseline.
  const std::vector<uint8_t> good_ext = {0x01, 0x00, 0x06, 0x34, 0x02};
  {
    const auto bytes = RawTracedFrame(kWireVersionTraced, kAlertKind,
                                      {0xAA}, good_ext);
    EXPECT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Version 2 with no extension at all: untraced frames must be v1.
    const auto bytes =
        RawTracedFrame(kWireVersionTraced, kAlertKind, {0xAA}, {});
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Explicit zero entry count.
    const auto bytes =
        RawTracedFrame(kWireVersionTraced, kAlertKind, {0xAA}, {0x00});
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Count claims two entries, only one present.
    std::vector<uint8_t> ext = good_ext;
    ext[0] = 0x02;
    const auto bytes =
        RawTracedFrame(kWireVersionTraced, kAlertKind, {0xAA}, ext);
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Length-bomb count: rejected before any allocation.
    const auto bytes = RawTracedFrame(
        kWireVersionTraced, kAlertKind, {0xAA},
        {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01});
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Overflow-bomb count of exactly 2^62: `count * 4` wraps to zero in
    // 64-bit, so the size guard must divide (and cap), not multiply —
    // otherwise reserve(2^62) throws on checksum-valid network input.
    const auto bytes = RawTracedFrame(
        kWireVersionTraced, kAlertKind, {0xAA},
        {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40});
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Non-increasing item indices (0 then 0).
    const std::vector<uint8_t> ext = {0x02, 0x00, 0x06, 0x34, 0x02,
                                      0x00, 0x06, 0x34, 0x02};
    const auto bytes =
        RawTracedFrame(kWireVersionTraced, kAlertKind, {0xAA}, ext);
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Decreasing item indices (1 then 0).
    const std::vector<uint8_t> ext = {0x02, 0x01, 0x06, 0x34, 0x02,
                                      0x00, 0x06, 0x34, 0x02};
    const auto bytes =
        RawTracedFrame(kWireVersionTraced, kAlertKind, {0xAA}, ext);
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Trailing garbage after the last entry.
    std::vector<uint8_t> ext = good_ext;
    ext.push_back(0x00);
    const auto bytes =
        RawTracedFrame(kWireVersionTraced, kAlertKind, {0xAA}, ext);
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // Origin epoch outside int32 range (zigzag of 2^32).
    WireWriter w;
    w.PutVarint(1);
    w.PutVarint(0);
    w.PutZigzag(int64_t{1} << 32);
    w.PutVarint(0x34);
    w.PutU8(2);
    const auto bytes =
        RawTracedFrame(kWireVersionTraced, kAlertKind, {0xAA}, w.bytes());
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
  {
    // A version-1 frame must not carry an extension: the "extension" bytes
    // read as payload overrun and the length check rejects the frame.
    const auto bytes =
        RawTracedFrame(kWireVersion, kAlertKind, {0xAA}, good_ext);
    EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
  }
}

TEST(WireTraceTest, GoldenBytesWireCompat) {
  // Pinned encodings: if either changes, the wire format changed — bump
  // the version instead of editing the golden.
  {
    const std::vector<uint8_t> expected = {
        0x44, 0x50, 0x02, 0x03, 0x05, 0x02, 0xaa, 0xbb, 0x01,
        0x00, 0x06, 0xb4, 0x24, 0x02, 0xd3, 0x7f, 0xf7, 0xc7};
    const std::vector<uint8_t> bytes = EncodeFrameTraced(
        MsgKind::kAlert, 5, {0xAA, 0xBB},
        {TraceEntry{0, MakeCtx(3, 0x1234, 2)}});
    EXPECT_EQ(bytes, expected);
    Frame frame;
    ASSERT_TRUE(DecodeFrame(expected.data(), expected.size(), &frame));
    EXPECT_EQ(frame.kind, MsgKind::kAlert);
    ASSERT_EQ(frame.trace.size(), 1u);
    EXPECT_EQ(frame.trace[0].ctx, MakeCtx(3, 0x1234, 2));
  }
  {
    const std::vector<uint8_t> expected = {
        0x44, 0x50, 0x02, 0x07, 0xc8, 0x01, 0x01, 0x01, 0x02, 0x01,
        0x06, 0xb4, 0x24, 0x02, 0x04, 0x0d, 0xfe, 0x95, 0xbf, 0xf7,
        0xdb, 0xd5, 0x37, 0xff, 0xe8, 0x58, 0x56, 0xb9};
    const std::vector<uint8_t> bytes = EncodeFrameTraced(
        MsgKind::kBatch, 200, {0x01},
        {TraceEntry{1, MakeCtx(3, 0x1234, 2)},
         TraceEntry{4, MakeCtx(-7, 0xdeadbeefcafeULL, 255)}});
    EXPECT_EQ(bytes, expected);
    Frame frame;
    ASSERT_TRUE(DecodeFrame(expected.data(), expected.size(), &frame));
    ASSERT_EQ(frame.trace.size(), 2u);
    EXPECT_EQ(frame.trace[1].ctx, MakeCtx(-7, 0xdeadbeefcafeULL, 255));
  }
}

TEST(WireTraceTest, EventIdsAreDistinctAndDeterministic) {
  // (Declared in net/latency.h but fundamentally a wire-identity property:
  // both sides derive the same id, and the report/alert domains never
  // collide for the same user/epoch.)
  EXPECT_EQ(AlertEventId(1, 1, 2, 9), AlertEventId(1, 1, 2, 9));
  EXPECT_NE(AlertEventId(1, 1, 2, 9), AlertEventId(2, 1, 2, 9));
  EXPECT_NE(AlertEventId(1, 1, 2, 9), AlertEventId(1, 1, 2, 10));
  EXPECT_NE(AlertEventId(1, 1, 2, 9), AlertEventId(1, 1, 3, 9));
  EXPECT_EQ(ReportEventId(5, 3), ReportEventId(5, 3));
  EXPECT_NE(ReportEventId(5, 3), ReportEventId(5, 4));
  EXPECT_NE(ReportEventId(5, 3), AlertEventId(5, 5, 6, 3));
}

}  // namespace
}  // namespace net
}  // namespace proxdet
