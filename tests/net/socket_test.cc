// The real-socket backend's contract: the TimerWheel never fires early and
// survives re-arming, the shared ReliabilityPolicy makes identical
// retry/dedup decisions for identical delivery traces no matter which
// backend replays them, malformed datagrams are rejected exactly like
// corrupted SimNet frames, and a transported run over UDP loopback stays
// bit-exact with the in-process engine — SimNet is the oracle, the kernel
// is just a different wire. Every socket-touching test skips gracefully
// where socket(2) is unavailable (sandboxes, seccomp).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "net/reliability.h"
#include "net/sim_net.h"
#include "net/socket/event_loop.h"
#include "net/socket/socket_server.h"
#include "net/socket/timer_wheel.h"
#include "net/socket/udp_net.h"
#include "net/transport.h"
#include "net/wire.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace proxdet {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// TimerWheel: the retransmit clock. "Never early" is the property the
// reliability layer leans on — a timer that fires before its deadline
// retransmits a frame whose ack is still legitimately in flight.

TEST(TimerWheelTest, FiresAtOrAfterDeadlineNeverBefore) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.Schedule(0.0, 0.010, [&] { fired.push_back(10); });
  wheel.Schedule(0.0, 0.050, [&] { fired.push_back(50); });
  wheel.Schedule(0.0, 0.002, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.size(), 3u);

  EXPECT_EQ(wheel.FireDue(0.001), 0);  // Nothing due yet.
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.FireDue(0.0049), 1);  // Only the 2ms timer.
  EXPECT_EQ(fired, std::vector<int>({2}));
  EXPECT_EQ(wheel.FireDue(0.060), 2);  // The rest, in deadline order.
  EXPECT_EQ(fired, std::vector<int>({2, 10, 50}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, RearmedTimerWaitsForTheNextFireDue) {
  // A retransmit timer re-arms itself from inside its own callback; the
  // wheel must park the new timer for a later FireDue even when the
  // requested deadline already passed — otherwise one FireDue call could
  // spin through every retry attempt at once.
  TimerWheel wheel;
  int fired = 0;
  std::function<void()> rearm = [&] {
    fired += 1;
    if (fired < 3) wheel.Schedule(1.0, 0.0, rearm);
  };
  wheel.Schedule(0.0, 0.001, rearm);
  EXPECT_EQ(wheel.FireDue(1.0), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.FireDue(2.0), 1);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(wheel.FireDue(3.0), 1);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, LongGapsFireEverythingExactlyOnce) {
  // A driver that slept past several full wheel revolutions must still
  // fire every armed timer exactly once.
  TimerWheel wheel;
  int fired = 0;
  for (int i = 0; i < 64; ++i) {
    wheel.Schedule(0.0, 0.001 * (i + 1), [&] { fired += 1; });
  }
  EXPECT_EQ(wheel.FireDue(10.0), 64);
  EXPECT_EQ(fired, 64);
  EXPECT_EQ(wheel.FireDue(20.0), 0);
}

// ---------------------------------------------------------------------------
// ReliabilityPolicy: the transport-agnostic decision machine. A "delivery
// trace" is the per-transmission fate the wire chose (delivered or lost,
// data and acks alike); replaying one trace through a fresh sender/receiver
// policy pair must reproduce byte-identical decisions — this is the
// structural property that lets SimNet stand as the UDP backend's oracle.

struct TraceDecisions {
  std::vector<std::string> log;  // One entry per decision, in order.
  uint64_t retransmits = 0;
  uint64_t dedup_discards = 0;
  uint64_t delivered = 0;
  bool delivery_failed = false;
};

/// Replays a synthetic exchange: `messages` payloads from a sender policy
/// to a receiver policy, where data_fate[i] tells whether the i-th data
/// transmission reaches the receiver and ack_fate[j] whether the j-th ack
/// reaches the sender (patterns repeat). Pure policy driving — no backend,
/// no clock; timers are modeled as "the retry fires iff the ack has not
/// landed", exactly the contract ReliableEndpoint implements.
TraceDecisions ReplayTrace(const std::vector<std::vector<uint8_t>>& messages,
                           const std::vector<bool>& data_fate,
                           const std::vector<bool>& ack_fate,
                           int max_retries) {
  ReliabilityPolicy sender(/*rto_s=*/0.05, max_retries);
  ReliabilityPolicy receiver(/*rto_s=*/0.05, max_retries);
  TraceDecisions out;
  size_t data_i = 0;
  size_t ack_i = 0;
  const int kDst = 1;
  for (const std::vector<uint8_t>& payload : messages) {
    const uint64_t seq = sender.Enqueue(kDst, MsgKind::kAlert, payload);
    for (int attempt = 0;; ++attempt) {
      ReliabilityPolicy::TransmitPlan plan =
          sender.PlanTransmit(kDst, seq, attempt);
      if (plan.verdict == ReliabilityPolicy::TransmitPlan::Verdict::kSkip) {
        out.log.push_back("skip");
        break;
      }
      if (plan.verdict == ReliabilityPolicy::TransmitPlan::Verdict::kGiveUp) {
        out.log.push_back("giveup");
        break;
      }
      out.log.push_back(plan.is_retransmit ? "retx" : "tx");
      const bool data_arrives = data_fate[data_i++ % data_fate.size()];
      if (!data_arrives) continue;  // Wire ate it; the timer will retry.
      ReliabilityPolicy::RxResult rx =
          receiver.OnDatagram(0, plan.frame->data(), plan.frame->size());
      switch (rx.verdict) {
        case ReliabilityPolicy::RxResult::Verdict::kDeliver:
          out.log.push_back("deliver:" + std::to_string(rx.frame.seq));
          out.delivered += 1;
          break;
        case ReliabilityPolicy::RxResult::Verdict::kDuplicate:
          out.log.push_back("dup:" + std::to_string(rx.frame.seq));
          break;
        default:
          out.log.push_back("unexpected");
          break;
      }
      // Every copy is acked (kDeliver and kDuplicate alike).
      const std::vector<uint8_t> ack =
          EncodeFrame(MsgKind::kAck, rx.frame.seq, {});
      const bool ack_arrives = ack_fate[ack_i++ % ack_fate.size()];
      if (!ack_arrives) continue;
      ReliabilityPolicy::RxResult sx =
          sender.OnDatagram(kDst, ack.data(), ack.size());
      out.log.push_back(sx.acked_pending ? "acked" : "stale-ack");
      if (sx.acked_pending) break;  // Delivered; next message.
    }
  }
  out.retransmits = sender.retransmits();
  out.dedup_discards = receiver.dedup_discards();
  out.delivery_failed = sender.delivery_failed();
  return out;
}

std::vector<std::vector<uint8_t>> SomePayloads(size_t n) {
  std::vector<std::vector<uint8_t>> payloads;
  for (size_t i = 0; i < n; ++i) {
    AlertMsg msg;
    msg.user = static_cast<UserId>(i);
    msg.u = 1;
    msg.w = 2;
    msg.epoch = static_cast<int32_t>(i);
    payloads.push_back(Encode(msg));
  }
  return payloads;
}

TEST(ReliabilityPolicyTest, IdenticalTracesYieldIdenticalDecisions) {
  // Two independent policy pairs replaying the same delivery trace must
  // agree on every decision — transmit, retransmit, deliver, dedup, ack.
  // The trace mixes clean sends, lost data copies and lost acks (a lost
  // ack forces a retransmit whose copy the receiver must dedup).
  const auto payloads = SomePayloads(12);
  const std::vector<bool> data_fate = {true, false, true, true, false, true};
  const std::vector<bool> ack_fate = {true, true, false, true};
  const TraceDecisions a = ReplayTrace(payloads, data_fate, ack_fate, 16);
  const TraceDecisions b = ReplayTrace(payloads, data_fate, ack_fate, 16);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.dedup_discards, b.dedup_discards);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivered, payloads.size());  // Exactly once each.
  EXPECT_GT(a.retransmits, 0u);
  EXPECT_GT(a.dedup_discards, 0u);  // Lost acks forced duplicate copies.
  EXPECT_FALSE(a.delivery_failed);
}

TEST(ReliabilityPolicyTest, PerfectTraceNeverRetransmits) {
  const auto payloads = SomePayloads(8);
  const TraceDecisions t = ReplayTrace(payloads, {true}, {true}, 3);
  EXPECT_EQ(t.retransmits, 0u);
  EXPECT_EQ(t.dedup_discards, 0u);
  EXPECT_EQ(t.delivered, payloads.size());
}

TEST(ReliabilityPolicyTest, TotalLossExhaustsRetriesAndLatchesFailure) {
  // Same pinned behavior sim_net_test checks through the endpoint: with
  // max_retries=3 a black-holed frame is attempted exactly 4 times
  // (original + 3 retries), then delivery_failed latches.
  const auto payloads = SomePayloads(1);
  const TraceDecisions t = ReplayTrace(payloads, {false}, {true}, 3);
  EXPECT_TRUE(t.delivery_failed);
  EXPECT_EQ(t.delivered, 0u);
  int transmissions = 0;
  for (const std::string& d : t.log) {
    if (d == "tx" || d == "retx") transmissions += 1;
  }
  EXPECT_EQ(transmissions, 4);
  EXPECT_EQ(t.log.back(), "giveup");
}

TEST(ReliabilityPolicyTest, CorruptBytesRejectedWithoutStateChange) {
  ReliabilityPolicy policy(0.05, 3);
  const std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00};
  ReliabilityPolicy::RxResult rx =
      policy.OnDatagram(0, garbage.data(), garbage.size());
  EXPECT_EQ(rx.verdict, ReliabilityPolicy::RxResult::Verdict::kCorrupt);
  EXPECT_EQ(policy.corrupt_frames(), 1u);

  // A truncated but otherwise valid frame fails the checksum the same way.
  AlertMsg msg;
  msg.user = 7;
  msg.u = 1;
  msg.w = 2;
  msg.epoch = 3;
  const std::vector<uint8_t> frame =
      EncodeFrame(MsgKind::kAlert, 1, Encode(msg));
  rx = policy.OnDatagram(0, frame.data(), frame.size() - 3);
  EXPECT_EQ(rx.verdict, ReliabilityPolicy::RxResult::Verdict::kCorrupt);
  EXPECT_EQ(policy.corrupt_frames(), 2u);
  EXPECT_EQ(policy.dedup_discards(), 0u);
}

// ---------------------------------------------------------------------------
// UdpNet: loop-thread plumbing under the same endpoint API. Every test
// below needs real sockets and skips where the host forbids them.

#define SKIP_WITHOUT_SOCKETS()                                    \
  do {                                                            \
    if (!UdpNet::Available()) {                                   \
      GTEST_SKIP() << "loopback UDP sockets unavailable here";    \
    }                                                             \
  } while (0)

struct Received {
  std::vector<std::pair<int, std::vector<uint8_t>>> frames;  // (src, payload).
};

UdpNetConfig QuietConfig() {
  UdpNetConfig config;
  config.shard_loops = 1;
  config.client_loops = 1;
  config.idle_timeout_s = 20.0;
  return config;
}

TEST(UdpNetTest, PingPongDeliversEverythingAndQuiesces) {
  SKIP_WITHOUT_SOCKETS();
  UdpNet net(QuietConfig());
  ASSERT_TRUE(net.ok());
  Received at_b;
  ReliableEndpoint a(&net, 0.05, 16, [](int, Frame&&) {});
  ReliableEndpoint b(&net, 0.05, 16, [&](int src, Frame&& f) {
    at_b.frames.emplace_back(src, std::move(f.payload));
  });
  net.SetIdleFn([&] { return a.all_acked() && b.all_acked(); });

  const auto payloads = SomePayloads(10);
  for (const auto& p : payloads) a.Send(b.id(), MsgKind::kAlert, p);
  net.RunUntilIdle();

  EXPECT_FALSE(net.idle_timeout_hit());
  EXPECT_TRUE(a.all_acked());
  ASSERT_EQ(at_b.frames.size(), payloads.size());
  // Loopback may reorder across retransmits; compare as multisets.
  std::vector<std::vector<uint8_t>> got;
  for (auto& [src, payload] : at_b.frames) {
    EXPECT_EQ(src, a.id());
    got.push_back(payload);
  }
  std::vector<std::vector<uint8_t>> want = payloads;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  EXPECT_GT(net.datagrams_sent(), 0u);
  EXPECT_GT(net.socket_bytes_received(), 0u);
}

TEST(UdpNetTest, ExactlyOnceUnderInjectedLossAndDuplication) {
  SKIP_WITHOUT_SOCKETS();
  UdpNetConfig config = QuietConfig();
  config.drop_rate = 0.25;
  config.dup_rate = 0.25;
  config.seed = 99;
  UdpNet net(config);
  ASSERT_TRUE(net.ok());
  std::map<std::vector<uint8_t>, int> seen;
  ReliableEndpoint a(&net, 0.02, 64, [](int, Frame&&) {});
  ReliableEndpoint b(&net, 0.02, 64,
                     [&](int, Frame&& f) { seen[f.payload] += 1; });
  net.SetIdleFn([&] { return a.all_acked() && b.all_acked(); });

  const auto payloads = SomePayloads(40);
  for (const auto& p : payloads) a.Send(b.id(), MsgKind::kAlert, p);
  net.RunUntilIdle();

  EXPECT_FALSE(net.idle_timeout_hit());
  EXPECT_FALSE(a.delivery_failed());
  ASSERT_EQ(seen.size(), payloads.size());
  for (const auto& p : payloads) {
    auto it = seen.find(p);
    ASSERT_NE(it, seen.end());
    EXPECT_EQ(it->second, 1) << "payload delivered more than once";
  }
  // The injection actually bit, and the policy actually recovered.
  EXPECT_GT(net.frames_dropped(), 0u);
  EXPECT_GT(a.retransmits(), 0u);
}

TEST(UdpNetTest, PollFallbackCarriesTheSameProtocol) {
  SKIP_WITHOUT_SOCKETS();
  UdpNetConfig config = QuietConfig();
  config.force_poll = true;
  UdpNet net(config);
  ASSERT_TRUE(net.ok());
  EXPECT_FALSE(net.using_epoll());
  int delivered = 0;
  ReliableEndpoint a(&net, 0.05, 16, [](int, Frame&&) {});
  ReliableEndpoint b(&net, 0.05, 16, [&](int, Frame&&) { delivered += 1; });
  net.SetIdleFn([&] { return a.all_acked() && b.all_acked(); });
  for (const auto& p : SomePayloads(5)) a.Send(b.id(), MsgKind::kAlert, p);
  net.RunUntilIdle();
  EXPECT_FALSE(net.idle_timeout_hit());
  EXPECT_EQ(delivered, 5);
}

#if !defined(_WIN32)
TEST(UdpNetTest, GarbageDatagramsRejectedLikeCorruptSimNetFrames) {
  SKIP_WITHOUT_SOCKETS();
  // The oracle: a SimNet endpoint fed the same three malformed datagrams.
  SimNet sim(1);
  ReliableEndpoint sim_rx(&sim, 0.05, 3, [](int, Frame&&) {});
  const int sim_src = sim.AddEndpoint([](int, const std::vector<uint8_t>&) {});

  // The subject: a UDP endpoint shelled with a raw (never-registered)
  // socket — exactly what an off-protocol peer looks like on a real port.
  UdpNet net(QuietConfig());
  ASSERT_TRUE(net.ok());
  int delivered = 0;
  ReliableEndpoint udp_rx(&net, 0.05, 3,
                          [&](int, Frame&&) { delivered += 1; });
  net.Start();

  AlertMsg msg;
  msg.user = 7;
  msg.u = 1;
  msg.w = 2;
  msg.epoch = 3;
  const std::vector<uint8_t> valid =
      EncodeFrame(MsgKind::kAlert, 1, Encode(msg));
  std::vector<std::vector<uint8_t>> malformed;
  malformed.push_back({0xde, 0xad, 0xbe, 0xef});          // Pure noise.
  malformed.push_back({valid.begin(), valid.end() - 3});  // Truncated.
  std::vector<uint8_t> flipped = valid;
  flipped[flipped.size() / 2] ^= 0x40;                    // Bit rot.
  malformed.push_back(flipped);

  for (const auto& bytes : malformed) {
    sim.Send(sim_src, sim_rx.id(), bytes);
  }
  sim.RunUntilIdle();

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(net.endpoint_port(udp_rx.id()));
  for (const auto& bytes : malformed) {
    ASSERT_EQ(sendto(fd, bytes.data(), bytes.size(), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
              static_cast<ssize_t>(bytes.size()));
  }
  close(fd);
  // Raw datagrams have no pending-send to drain against; pump by time.
  net.PumpFor(0.2);

  EXPECT_EQ(sim_rx.corrupt_frames(), malformed.size());
  EXPECT_EQ(udp_rx.corrupt_frames(), sim_rx.corrupt_frames());
  EXPECT_EQ(delivered, 0);
}
#endif  // !_WIN32

// ---------------------------------------------------------------------------
// End-to-end: the full detector pipeline over UDP loopback against the
// in-process engine and the SimNet-transported run. Engines own the
// message counts, so SameMessageCounts holding over real sockets is the
// proof that the substrate swap is invisible above the frame interface.

WorkloadConfig SocketTinyConfig() {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 40;
  config.epochs = 30;
  config.speed_steps = 8;
  config.avg_friends = 5.0;
  config.alert_radius_m = 6000.0;
  config.seed = 1234;
  config.training_users = 12;
  config.training_epochs = 60;
  return config;
}

const Workload& SocketWorkload() {
  static const Workload workload = BuildWorkload(SocketTinyConfig());
  return workload;
}

NetConfig UdpConfig(int shards, double drop_rate = 0.0) {
  NetConfig config;
  config.transport = TransportKind::kUdp;
  config.shards = shards;
  config.udp_drop_rate = drop_rate;
  config.udp_dup_rate = drop_rate > 0.0 ? 0.05 : 0.0;
  config.udp_idle_timeout_s = 30.0;
  return config;
}

void ExpectUdpParity(Method method, const NetConfig& config) {
  const Workload& workload = SocketWorkload();
  const RunResult direct = RunMethod(method, workload);
  const TransportedRunResult udp =
      RunTransportedMethod(method, workload, config);
  EXPECT_TRUE(udp.run.alerts_exact)
      << MethodName(method) << " diverged from ground truth over UDP";
  EXPECT_TRUE(udp.run.stats.SameMessageCounts(direct.stats))
      << MethodName(method) << " message counts changed over UDP";
  EXPECT_EQ(udp.run.rebuild_count, direct.rebuild_count);
  EXPECT_TRUE(udp.net.codec_exact);
  EXPECT_FALSE(udp.net.failed);
  EXPECT_GT(udp.net.bytes_up, 0u);
  EXPECT_GT(udp.net.bytes_down, 0u);
}

TEST(UdpTransportTest, SingleShardParityWithInProcessEngine) {
  SKIP_WITHOUT_SOCKETS();
  ExpectUdpParity(Method::kNaive, UdpConfig(1));
}

TEST(UdpTransportTest, ShardedStripeParityWithInProcessEngine) {
  SKIP_WITHOUT_SOCKETS();
  ExpectUdpParity(Method::kStripeKf, UdpConfig(2));
}

TEST(UdpTransportTest, ParitySurvivesInjectedDatagramLoss) {
  SKIP_WITHOUT_SOCKETS();
  ExpectUdpParity(Method::kCmd, UdpConfig(2, /*drop_rate=*/0.05));
}

TEST(UdpTransportTest, MatchesSimNetMessageCountsExactly) {
  SKIP_WITHOUT_SOCKETS();
  // SimNet as oracle: the same (method, workload) over both substrates
  // yields the same engine-visible protocol outcome.
  const Workload& workload = SocketWorkload();
  NetConfig sim_config;
  sim_config.shards = 2;
  const TransportedRunResult sim =
      RunTransportedMethod(Method::kStripeKf, workload, sim_config);
  const TransportedRunResult udp =
      RunTransportedMethod(Method::kStripeKf, workload, UdpConfig(2));
  EXPECT_TRUE(sim.run.alerts_exact);
  EXPECT_TRUE(udp.run.alerts_exact);
  EXPECT_TRUE(udp.run.stats.SameMessageCounts(sim.run.stats));
  EXPECT_EQ(udp.run.rebuild_count, sim.run.rebuild_count);
  EXPECT_EQ(udp.run.alert_count, sim.run.alert_count);
}

}  // namespace
}  // namespace net
}  // namespace proxdet
