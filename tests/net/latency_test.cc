// The causal-tracing / latency-accounting plane: traced transported runs
// stay bit-exact with the in-process engine for every paper method, the
// per-alert detect->deliver tracker reconciles with CommStats alert counts
// to the unit, hop counts match the route (1 direct, 2 relayed) and are
// identical between batch disciplines, the SimNet virtual-time latency
// digest is invariant across thread AND shard counts, the live stats
// endpoint answers HTTP, and the flight recorder dumps a parseable
// post-mortem on an induced reliability give-up.

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "exec/thread_pool.h"
#include "net/latency.h"
#include "net/socket/stats_server.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

// Tracing itself is part of the serving plane and works with the obs layer
// compiled out, but the cases below assert on real sketches, counters or
// flight-recorder rings — in a -DPROXDET_OBS=OFF tree those are noops and
// the observability-plane tests must skip, mirroring tests/CMakeLists.txt
// gating of the obs suite.
#ifdef PROXDET_OBS_DISABLED
#define PROXDET_REQUIRE_OBS() \
  GTEST_SKIP() << "observability layer compiled out"
#else
#define PROXDET_REQUIRE_OBS()
#endif

namespace proxdet {
namespace net {
namespace {

WorkloadConfig TinyConfig() {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 40;
  config.epochs = 50;
  config.speed_steps = 8;
  config.avg_friends = 5.0;
  config.alert_radius_m = 6000.0;
  config.seed = 1234;
  config.training_users = 12;
  config.training_epochs = 60;
  return config;
}

const Workload& SharedWorkload() {
  static const Workload workload = BuildWorkload(TinyConfig());
  return workload;
}

NetConfig Traced(int shards, bool batch) {
  NetConfig config;
  config.shards = shards;
  config.batch_downlink = batch;
  config.compress_installs = batch;
  config.trace = true;
  return config;
}

/// One traced transported run with the link kept alive long enough to read
/// the latency tracker and the per-client trace contexts.
struct TracedRun {
  CommStats stats;
  std::vector<AlertEvent> alerts;      // Deduplicated client stream.
  std::vector<TraceCtx> alert_traces;  // Every delivered alert frame's ctx.
  uint64_t delivered = 0;
  uint64_t unmatched = 0;
  size_t outstanding = 0;
  bool failed = false;
  bool alerts_exact = false;
};

TracedRun RunTraced(Method method, const Workload& workload,
                    const NetConfig& config) {
  auto detector = MakeDetector(method, workload);
  TransportLink link(workload.world, config);
  detector->set_link(&link);
  detector->Run(workload.world);
  detector->set_link(nullptr);
  TracedRun out;
  out.stats = detector->stats();
  out.alerts = link.ClientAlerts();
  SortAlerts(&out.alerts);
  out.alerts_exact = out.alerts == workload.GroundTruth();
  for (UserId u = 0; u < static_cast<UserId>(workload.world.user_count());
       ++u) {
    const auto& traces = link.client(u).alert_traces();
    out.alert_traces.insert(out.alert_traces.end(), traces.begin(),
                            traces.end());
  }
  const AlertLatencyTracker* tracker = link.latency_tracker();
  EXPECT_NE(tracker, nullptr) << "trace=true run lost its tracker";
  if (tracker != nullptr) {
    out.delivered = tracker->delivered();
    out.unmatched = tracker->unmatched();
    out.outstanding = tracker->outstanding();
  }
  out.failed = link.Stats().failed;
  return out;
}

// ---------------------------------------------------------------------------
// AlertLatencyTracker unit semantics.

TEST(AlertLatencyTest, TrackerMatchesDetectsToDelivers) {
  PROXDET_REQUIRE_OBS();
  obs::Metrics().Reset();
  SimNet net(1);
  AlertLatencyTracker tracker(&net, /*shard_count=*/2);
  TraceCtx ctx;
  ctx.origin_epoch = 5;
  ctx.event_id = AlertEventId(1, 1, 2, 5);
  ctx.hops = 1;
  tracker.RecordDetect(ctx.event_id, /*shard=*/0);
  EXPECT_EQ(tracker.outstanding(), 1u);
  tracker.RecordDeliver(ctx);
  EXPECT_EQ(tracker.delivered(), 1u);
  EXPECT_EQ(tracker.outstanding(), 0u);
  EXPECT_EQ(tracker.unmatched(), 0u);
  // A deliver with no pending detect is counted, never crashes.
  TraceCtx stray = ctx;
  stray.event_id = AlertEventId(9, 9, 10, 1);
  tracker.RecordDeliver(stray);
  EXPECT_EQ(tracker.unmatched(), 1u);
  EXPECT_EQ(tracker.delivered(), 1u);
  // SimNet latencies land in the deterministic virtual sketch only.
  const obs::MetricsSnapshot snap = obs::Metrics().Snapshot();
  const auto it = snap.quantiles.find("net.latency.virtual_s");
  ASSERT_NE(it, snap.quantiles.end());
  EXPECT_EQ(it->second.value.count(), 1u);
  const auto wall = snap.quantiles.find("net.latency.wall_s");
  ASSERT_NE(wall, snap.quantiles.end());
  EXPECT_EQ(wall->second.value.count(), 0u);
  const auto counter = snap.counters.find("net.latency.delivered");
  ASSERT_NE(counter, snap.counters.end());
  EXPECT_EQ(counter->second.second, 1u);
}

// ---------------------------------------------------------------------------
// Traced runs stay bit-exact and reconcile to the unit, for every method.

class TracedMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(TracedMethodTest, BitExactAndReconciled) {
  const Method method = GetParam();
  const Workload& workload = SharedWorkload();
  obs::Metrics().Reset();
  const RunResult direct = RunMethod(method, workload);
  const TracedRun traced = RunTraced(method, workload, Traced(3, true));

  EXPECT_TRUE(direct.alerts_exact);
  EXPECT_TRUE(traced.alerts_exact)
      << MethodName(method) << ": tracing changed the alert stream";
  EXPECT_FALSE(traced.failed);
  EXPECT_TRUE(traced.stats.SameMessageCounts(direct.stats))
      << MethodName(method) << ": traced " << traced.stats
      << " diverged from direct " << direct.stats;

  // Reconciliation to the unit: every engine Alert() call produced exactly
  // one matched client delivery, and nothing is still in flight.
  EXPECT_EQ(traced.delivered, direct.stats.alerts);
  EXPECT_EQ(traced.alert_traces.size(), direct.stats.alerts);
  EXPECT_EQ(traced.unmatched, 0u);
  EXPECT_EQ(traced.outstanding, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, TracedMethodTest,
                         ::testing::ValuesIn(PaperMethodSet()),
                         [](const auto& info) {
                           std::string name = MethodName(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Hop semantics: 1 for a direct delivery, 2 for a relayed one, identical
// between batch disciplines and degenerate (all 1) at shards == 1.

std::vector<std::pair<uint64_t, int>> HopSet(const TracedRun& run) {
  std::vector<std::pair<uint64_t, int>> out;
  out.reserve(run.alert_traces.size());
  for (const TraceCtx& ctx : run.alert_traces) {
    out.emplace_back(ctx.event_id, ctx.hops);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AlertLatencyTest, HopCountsMatchRouteAndBatchModesAgree) {
  const Workload& workload = SharedWorkload();
  obs::Metrics().Reset();
  const TracedRun batched =
      RunTraced(Method::kCmd, workload, Traced(3, true));
  obs::Metrics().Reset();
  const TracedRun unbatched =
      RunTraced(Method::kCmd, workload, Traced(3, false));

  ASSERT_FALSE(batched.alert_traces.empty());
  int direct = 0, relayed = 0;
  for (const TraceCtx& ctx : batched.alert_traces) {
    ASSERT_TRUE(ctx.hops == 1 || ctx.hops == 2)
        << "impossible hop count " << int(ctx.hops);
    (ctx.hops == 1 ? direct : relayed) += 1;
  }
  // The ring splits 40 users over 3 shards: both route shapes must occur.
  EXPECT_GT(direct, 0);
  EXPECT_GT(relayed, 0);
  // The delivered (event id, hops) multiset is a route property, not a
  // batching property.
  EXPECT_EQ(HopSet(batched), HopSet(unbatched));

  obs::Metrics().Reset();
  const TracedRun single =
      RunTraced(Method::kCmd, workload, Traced(1, true));
  for (const TraceCtx& ctx : single.alert_traces) {
    EXPECT_EQ(ctx.hops, 1) << "single-shard alert took a relay";
  }
}

// ---------------------------------------------------------------------------
// Digest invariance: the deterministic latency metrics are a pure function
// of the workload — identical across thread counts AND shard counts.

std::string LatencyDigest(int threads, int shards) {
  ThreadPool::SetGlobalThreads(threads);
  obs::Metrics().Reset();
  const TracedRun run =
      RunTraced(Method::kStripeKf, SharedWorkload(), Traced(shards, true));
  EXPECT_TRUE(run.alerts_exact);
  const std::string digest = obs::Metrics().Snapshot().DeterministicDigest();
  // Keep only the latency plane's lines: per-shard byte counters naturally
  // differ across partition counts and are not part of this claim.
  std::string out;
  size_t pos = 0;
  while (pos < digest.size()) {
    size_t end = digest.find('\n', pos);
    if (end == std::string::npos) end = digest.size();
    const std::string line = digest.substr(pos, end - pos);
    if (line.find("net.latency.") != std::string::npos) out += line + "\n";
    pos = end + 1;
  }
  return out;
}

TEST(AlertLatencyTest, VirtualLatencyDigestInvariantAcrossThreadsAndShards) {
  PROXDET_REQUIRE_OBS();
  const std::string reference = LatencyDigest(1, 1);
  ASSERT_NE(reference.find("net.latency.delivered"), std::string::npos);
  ASSERT_NE(reference.find("net.latency.virtual_s"), std::string::npos);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(LatencyDigest(threads, 1), reference)
        << "latency digest diverged at " << threads << " threads";
  }
  for (const int shards : {2, 4}) {
    EXPECT_EQ(LatencyDigest(1, shards), reference)
        << "latency digest diverged at " << shards << " shards";
  }
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
}

// ---------------------------------------------------------------------------
// Live introspection endpoint.

#ifndef _WIN32
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}
#endif

TEST(StatsServerTest, ServesPrometheusAndJsonSnapshot) {
#ifdef _WIN32
  GTEST_SKIP() << "no sockets on this platform";
#else
  PROXDET_REQUIRE_OBS();
  obs::Metrics().Reset();
  obs::Metrics().GetCounter("net.latency.delivered").Inc(7);
  StatsServer server(0);
  if (!server.ok()) GTEST_SKIP() << "cannot bind loopback TCP";
  ASSERT_GT(server.port(), 0);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("net_latency_delivered"), std::string::npos);

  const std::string snapshot = HttpGet(server.port(), "/snapshot");
  EXPECT_NE(snapshot.find("200 OK"), std::string::npos);
  EXPECT_NE(snapshot.find("\"counters\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"flight_head\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"net.latency.delivered\": 7"), std::string::npos);

  // A /metrics-prefixed path that isn't /metrics gets the JSON fallback,
  // not the Prometheus dump.
  const std::string prefixed = HttpGet(server.port(), "/metricsfoo");
  EXPECT_NE(prefixed.find("application/json"), std::string::npos);
  EXPECT_NE(prefixed.find("\"counters\""), std::string::npos);
  // A query string still routes to the Prometheus dump.
  const std::string query = HttpGet(server.port(), "/metrics?x=1");
  EXPECT_NE(query.find("net_latency_delivered"), std::string::npos);
  EXPECT_GE(server.requests(), 4u);
#endif
}

TEST(StatsServerTest, TransportedRunExposesEphemeralPort) {
#ifdef _WIN32
  GTEST_SKIP() << "no sockets on this platform";
#else
  PROXDET_REQUIRE_OBS();
  obs::Metrics().Reset();
  NetConfig config = Traced(2, true);
  config.stats_port = 0;  // Ephemeral.
  auto detector = MakeDetector(Method::kCmd, SharedWorkload());
  TransportLink link(SharedWorkload().world, config);
  if (link.stats_port() < 0) GTEST_SKIP() << "cannot bind loopback TCP";
  detector->set_link(&link);
  detector->Run(SharedWorkload().world);
  detector->set_link(nullptr);
  // The endpoint lives as long as the serving plane: still answering after
  // the run, with the run's metrics visible.
  const std::string metrics = HttpGet(link.stats_port(), "/metrics");
  EXPECT_NE(metrics.find("net_latency_delivered"), std::string::npos);
#endif
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorderTest, RingBoundsAndOrderedSnapshot) {
  PROXDET_REQUIRE_OBS();
  obs::FlightRecorder& flight = obs::Flight();
  flight.Clear();
  flight.set_capacity(4);
  for (int shard = 0; shard < 2; ++shard) {
    for (int i = 0; i < 6; ++i) {
      obs::FlightEvent event;
      event.kind = obs::FlightEventKind::kSend;
      event.shard = shard;
      event.src = i;
      event.seq = static_cast<uint64_t>(i);
      flight.Record(event);
    }
  }
  // Each shard ring kept only its most recent `capacity` events.
  const std::vector<obs::FlightEvent> all = flight.snapshot();
  ASSERT_EQ(all.size(), 8u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].id, all[i].id) << "merge order broke";
  }
  for (const obs::FlightEvent& event : all) {
    EXPECT_GE(event.seq, 2u) << "ring kept an event it should have evicted";
  }
  const std::vector<obs::FlightEvent> head = flight.Head(3);
  ASSERT_EQ(head.size(), 3u);
  EXPECT_EQ(head.back().id, all.back().id);
  const std::string json = flight.ToJson("unit test");
  EXPECT_NE(json.find("\"reason\": \"unit test\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"send\""), std::string::npos);
  flight.set_capacity(256);
  flight.Clear();
}

TEST(FlightRecorderTest, DumpsOnInducedReliabilityGiveUp) {
  PROXDET_REQUIRE_OBS();
  obs::FlightRecorder& flight = obs::Flight();
  flight.Clear();
  const std::string path =
      ::testing::TempDir() + "/proxdet_flight_giveup.json";
  std::remove(path.c_str());
  flight.set_dump_path(path);

  // Total uplink loss: every report exhausts its retry budget and the
  // endpoint gives up, which must leave a dump at the configured path.
  NetConfig config;
  config.trace = true;
  config.up.drop_rate = 1.0;
  config.max_retries = 2;
  config.retry_timeout_s = 0.01;
  WorkloadConfig tiny = TinyConfig();
  tiny.num_users = 6;
  tiny.epochs = 3;
  const Workload workload = BuildWorkload(tiny);
  obs::Metrics().Reset();
  auto detector = MakeDetector(Method::kNaive, workload);
  TransportLink link(workload.world, config);
  detector->set_link(&link);
  detector->Run(workload.world);
  detector->set_link(nullptr);
  EXPECT_TRUE(link.Stats().failed) << "total loss should fail the run";

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "give-up produced no flight dump";
  std::string dump;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) dump.append(buf, n);
  std::fclose(f);
  EXPECT_NE(dump.find("\"reason\""), std::string::npos);
  EXPECT_NE(dump.find("give-up"), std::string::npos);
  EXPECT_NE(dump.find("\"events\""), std::string::npos);
  EXPECT_NE(dump.find("\"give_up\""), std::string::npos);

  flight.set_dump_path("");
  flight.Clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace net
}  // namespace proxdet
