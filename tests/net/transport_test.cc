// The network layer's keystone contract: a transported run over a
// zero-latency, zero-loss link is bit-exact with the in-process engine —
// same alerts, same message counts, same rebuild counts — for every paper
// method; and under injected loss/duplication the client-observed alert
// stream still equals the ground truth exactly.

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "net/transport.h"

namespace proxdet {
namespace net {
namespace {

WorkloadConfig TinyConfig() {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 40;
  config.epochs = 50;
  config.speed_steps = 8;
  config.avg_friends = 5.0;
  config.alert_radius_m = 6000.0;
  config.seed = 1234;
  config.training_users = 12;
  config.training_epochs = 60;
  return config;
}

const Workload& SharedWorkload() {
  static const Workload workload = BuildWorkload(TinyConfig());
  return workload;
}

NetConfig Perfect() { return NetConfig{}; }

NetConfig Lossy(double drop_rate, uint64_t seed) {
  NetConfig config;
  config.up.latency_s = 0.01;
  config.up.jitter_s = 0.02;
  config.up.drop_rate = drop_rate;
  config.up.dup_rate = 0.05;
  config.down.latency_s = 0.015;
  config.down.jitter_s = 0.02;
  config.down.drop_rate = drop_rate;
  config.down.dup_rate = 0.05;
  config.seed = seed;
  return config;
}

class TransportedMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(TransportedMethodTest, PerfectLinkIsBitExactWithInProcess) {
  const Method method = GetParam();
  const Workload& workload = SharedWorkload();
  const RunResult direct = RunMethod(method, workload);
  const TransportedRunResult transported =
      RunTransportedMethod(method, workload, Perfect());

  // Alerts: the client-observed stream equals ground truth, which the
  // in-process run matches too — so both streams are identical.
  EXPECT_TRUE(direct.alerts_exact);
  EXPECT_TRUE(transported.run.alerts_exact);
  EXPECT_EQ(transported.run.alert_count, direct.alert_count);

  // Message counts and rebuild counts: bit-exact with the in-process run.
  EXPECT_TRUE(transported.run.stats.SameMessageCounts(direct.stats))
      << MethodName(method) << ": transported " << transported.run.stats
      << " diverged from direct " << direct.stats;
  EXPECT_EQ(transported.run.rebuild_count, direct.rebuild_count);

  // The transported run actually used the wire.
  EXPECT_GT(transported.run.stats.bytes_up, 0u);
  EXPECT_GT(transported.run.stats.bytes_down, 0u);
  EXPECT_EQ(direct.stats.bytes_up, 0u);  // In-process: no wire, no bytes.
  EXPECT_TRUE(transported.net.codec_exact);
  EXPECT_FALSE(transported.net.failed);
  EXPECT_EQ(transported.net.retransmits, 0u);
  EXPECT_EQ(transported.net.drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, TransportedMethodTest,
                         ::testing::ValuesIn(PaperMethodSet()),
                         [](const auto& info) {
                           std::string name = MethodName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(TransportTest, LossyLinkStillMatchesGroundTruthExactly) {
  const Workload& workload = SharedWorkload();
  // ISSUE contract: alerts == ground truth at 0%, 5% and 20% drop.
  for (const double drop : {0.0, 0.05, 0.20}) {
    const TransportedRunResult result =
        RunTransportedMethod(Method::kCmd, workload, Lossy(drop, 77));
    EXPECT_TRUE(result.run.alerts_exact) << "drop=" << drop;
    EXPECT_TRUE(result.net.codec_exact) << "drop=" << drop;
    EXPECT_FALSE(result.net.failed) << "drop=" << drop;
    if (drop > 0.0) {
      EXPECT_GT(result.net.retransmits, 0u) << "drop=" << drop;
      EXPECT_GT(result.net.drops, 0u) << "drop=" << drop;
    }
  }
  // Same for a stripe method, whose installs carry full polyline payloads.
  const TransportedRunResult stripe =
      RunTransportedMethod(Method::kStripeKf, workload, Lossy(0.20, 78));
  EXPECT_TRUE(stripe.run.alerts_exact);
  EXPECT_TRUE(stripe.net.codec_exact);
  EXPECT_FALSE(stripe.net.failed);
}

TEST(TransportTest, LossInjectionIsDeterministicPerSeed) {
  const Workload& workload = SharedWorkload();
  const TransportedRunResult first =
      RunTransportedMethod(Method::kFmd, workload, Lossy(0.20, 911));
  const TransportedRunResult second =
      RunTransportedMethod(Method::kFmd, workload, Lossy(0.20, 911));
  // Same seed: byte-identical delivery schedule, hence identical hashes,
  // byte totals and retry counts.
  EXPECT_EQ(first.net.schedule_hash, second.net.schedule_hash);
  EXPECT_EQ(first.net.bytes_up, second.net.bytes_up);
  EXPECT_EQ(first.net.bytes_down, second.net.bytes_down);
  EXPECT_EQ(first.net.retransmits, second.net.retransmits);
  EXPECT_EQ(first.net.drops, second.net.drops);
  EXPECT_EQ(first.net.virtual_seconds, second.net.virtual_seconds);

  // A different transport seed reshuffles the wire (different schedule)
  // but is invisible to the engine: same message counts, same alerts.
  const TransportedRunResult other =
      RunTransportedMethod(Method::kFmd, workload, Lossy(0.20, 912));
  EXPECT_NE(other.net.schedule_hash, first.net.schedule_hash);
  EXPECT_TRUE(other.run.stats.SameMessageCounts(first.run.stats))
      << "seed 912 " << other.run.stats << " vs seed 911 " << first.run.stats;
  EXPECT_TRUE(other.run.alerts_exact);
}

TEST(TransportTest, LatencyShapesVirtualTimeNotSemantics) {
  const Workload& workload = SharedWorkload();
  NetConfig slow;
  slow.up.latency_s = 0.5;
  slow.down.latency_s = 0.5;
  const TransportedRunResult fast =
      RunTransportedMethod(Method::kStatic, workload, Perfect());
  const TransportedRunResult lagged =
      RunTransportedMethod(Method::kStatic, workload, slow);
  EXPECT_GT(lagged.net.virtual_seconds, fast.net.virtual_seconds);
  EXPECT_TRUE(lagged.run.alerts_exact);
  EXPECT_TRUE(lagged.run.stats.SameMessageCounts(fast.run.stats))
      << "lagged " << lagged.run.stats << " vs fast " << fast.run.stats;
}

TEST(TransportTest, DeliveryFailureIsSurfacedNotSilent) {
  const Workload& workload = SharedWorkload();
  NetConfig dead;
  dead.up.drop_rate = 1.0;
  dead.down.drop_rate = 1.0;
  dead.max_retries = 2;
  const TransportedRunResult result =
      RunTransportedMethod(Method::kNaive, workload, dead);
  EXPECT_TRUE(result.net.failed);
}

TEST(TransportTest, TransportedDetectorReportsMergedStats) {
  const Workload& workload = SharedWorkload();
  TransportedDetector detector(MakeDetector(Method::kCmd, workload),
                               Perfect());
  EXPECT_EQ(detector.name(), "Transported(CMD)");
  detector.Run(workload.world);
  EXPECT_EQ(detector.stats().bytes_up, detector.net_stats().bytes_up);
  EXPECT_EQ(detector.stats().bytes_down, detector.net_stats().bytes_down);
  EXPECT_GT(detector.stats().TotalBytes(), 0u);
  // CommStats::operator== covers counts and bytes: a transported run equals
  // itself, and differs from the byte-free in-process run.
  EXPECT_TRUE(detector.stats() == detector.stats());
  std::unique_ptr<Detector> direct = MakeDetector(Method::kCmd, workload);
  direct->Run(workload.world);
  EXPECT_TRUE(detector.stats() != direct->stats());
  EXPECT_TRUE(detector.stats().SameMessageCounts(direct->stats()))
      << "transported " << detector.stats() << " vs direct "
      << direct->stats();
}

}  // namespace
}  // namespace net
}  // namespace proxdet
