// Wire protocol contract: every message kind round-trips exactly (bitwise,
// including the full geometry taxonomy), and every malformed frame —
// truncated, corrupted, overlong, length-bombed — is rejected, never
// mis-decoded.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/wire.h"

namespace proxdet {
namespace net {
namespace {

// A double whose bit pattern exercises the full range: exact integers,
// tiny/huge magnitudes, negative zero, subnormals.
double RandomDouble(Rng& rng) {
  switch (rng.NextIndex(6)) {
    case 0:
      return static_cast<double>(rng.UniformInt(-1000000, 1000000));
    case 1:
      return rng.Uniform(-1e7, 1e7);
    case 2:
      return rng.Uniform(-1e-7, 1e-7);
    case 3:
      return -0.0;
    case 4:
      return std::numeric_limits<double>::denorm_min() *
             static_cast<double>(rng.UniformInt(1, 100));
    default:
      return rng.Uniform(-1e300, 1e300);
  }
}

Vec2 RandomPoint(Rng& rng) { return {RandomDouble(rng), RandomDouble(rng)}; }

std::vector<Vec2> RandomWindow(Rng& rng, size_t max_len) {
  std::vector<Vec2> points(rng.NextIndex(max_len + 1));
  for (Vec2& p : points) p = RandomPoint(rng);
  // Repeated points are the common case for slow users; make sure the
  // delta coder sees them.
  if (points.size() > 2 && rng.NextBool(0.5)) points[1] = points[0];
  return points;
}

TEST(WireTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             (1ULL << 63),
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    WireWriter w;
    w.PutVarint(v);
    WireReader r(w.bytes().data(), w.bytes().size());
    EXPECT_EQ(r.GetVarint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(WireTest, VarintRejectsTruncationAndOverflow) {
  // Truncated: continuation bit set, then nothing.
  const uint8_t truncated[] = {0x80};
  WireReader r1(truncated, sizeof(truncated));
  r1.GetVarint();
  EXPECT_FALSE(r1.ok());

  // Ten continuation bytes: no terminator within the 64-bit budget.
  std::vector<uint8_t> endless(11, 0x80);
  WireReader r2(endless.data(), endless.size());
  r2.GetVarint();
  EXPECT_FALSE(r2.ok());

  // Tenth byte carrying more than the top value bit overflows 64 bits.
  std::vector<uint8_t> overflow(9, 0x80);
  overflow.push_back(0x02);
  WireReader r3(overflow.data(), overflow.size());
  r3.GetVarint();
  EXPECT_FALSE(r3.ok());
}

TEST(WireTest, ZigzagRoundTripExtremes) {
  const int64_t values[] = {0, -1, 1, -2, 63, -64,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    WireWriter w;
    w.PutZigzag(v);
    WireReader r(w.bytes().data(), w.bytes().size());
    EXPECT_EQ(r.GetZigzag(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(WireTest, DoubleRoundTripPreservesBits) {
  Rng rng(7);
  std::vector<double> values = {0.0, -0.0,
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::denorm_min()};
  for (int i = 0; i < 200; ++i) values.push_back(RandomDouble(rng));
  for (double v : values) {
    WireWriter w;
    w.PutDouble(v);
    WireReader r(w.bytes().data(), w.bytes().size());
    const double back = r.GetDouble();
    ASSERT_TRUE(r.ok());
    uint64_t want, got;
    std::memcpy(&want, &v, sizeof(want));
    std::memcpy(&got, &back, sizeof(got));
    EXPECT_EQ(got, want);  // Bit pattern, so -0.0 and NaN survive too.
  }
}

TEST(WireTest, PointsRoundTripExactlyAndCompressRepeats) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<Vec2> points = RandomWindow(rng, 40);
    WireWriter w;
    w.PutPoints(points);
    WireReader r(w.bytes().data(), w.bytes().size());
    std::vector<Vec2> back;
    ASSERT_TRUE(r.GetPoints(&back));
    EXPECT_EQ(back, points);
    EXPECT_EQ(r.remaining(), 0u);
  }
  // A stationary window XOR-deltas to zero: 1 byte per coordinate after
  // the first point, instead of 16 raw bytes per point.
  const std::vector<Vec2> still(32, Vec2{123456.789, -98765.4321});
  WireWriter w;
  w.PutPoints(still);
  EXPECT_LT(w.bytes().size(), 1 + 20 + 2 * (still.size() - 1) + 1);
}

TEST(WireTest, PointsRejectLengthBomb) {
  WireWriter w;
  w.PutVarint(kMaxWirePoints + 1);  // Count far beyond the payload bytes.
  WireReader r(w.bytes().data(), w.bytes().size());
  std::vector<Vec2> out;
  EXPECT_FALSE(r.GetPoints(&out));
  EXPECT_FALSE(r.ok());

  // Honest-looking count but not enough bytes behind it.
  WireWriter w2;
  w2.PutVarint(1000);
  w2.PutU8(0);
  WireReader r2(w2.bytes().data(), w2.bytes().size());
  EXPECT_FALSE(r2.GetPoints(&out));
}

// ---------------------------------------------------------------------------
// Randomized message round-trips.

SafeRegionShape RandomShape(Rng& rng) {
  switch (rng.NextIndex(4)) {
    case 0: {
      Circle c;
      c.center = RandomPoint(rng);
      c.radius = rng.Uniform(0.0, 1e5);
      return c;
    }
    case 1: {
      MovingCircle m;
      m.center_at_build = RandomPoint(rng);
      m.velocity_per_epoch = RandomPoint(rng);
      m.radius = rng.Uniform(0.0, 1e5);
      m.built_epoch = static_cast<int>(rng.UniformInt(-10, 1000));
      return m;
    }
    case 2: {
      // Regular k-gon with random center/radius: convex by construction,
      // coordinates still arbitrary doubles.
      const int k = static_cast<int>(rng.UniformInt(3, 12));
      const Vec2 center = {rng.Uniform(-1e6, 1e6), rng.Uniform(-1e6, 1e6)};
      const double radius = rng.Uniform(1.0, 1e4);
      std::vector<Vec2> vertices;
      for (int i = 0; i < k; ++i) {
        const double a = 2.0 * M_PI * i / k;
        vertices.push_back(
            {center.x + radius * std::cos(a), center.y + radius * std::sin(a)});
      }
      return ConvexPolygon(std::move(vertices));
    }
    default: {
      std::vector<Vec2> path(rng.NextIndex(20) + 1);
      for (Vec2& p : path) p = RandomPoint(rng);
      return Stripe(Polyline(std::move(path)), rng.Uniform(0.1, 1e4));
    }
  }
}

template <typename Msg>
void ExpectRoundTripAndPrefixRejection(const Msg& msg) {
  const std::vector<uint8_t> payload = Encode(msg);
  Msg back;
  ASSERT_TRUE(Decode(payload, &back));
  EXPECT_TRUE(back == msg);
  // Every strict prefix must be rejected (truncation), as must trailing
  // garbage (framing already guarantees the exact length).
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Msg scratch;
    EXPECT_FALSE(Decode(
        std::vector<uint8_t>(payload.begin(), payload.begin() + cut),
        &scratch))
        << "prefix of length " << cut << " decoded";
  }
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  Msg scratch;
  EXPECT_FALSE(Decode(padded, &scratch));
}

TEST(WireTest, LocationReportRoundTrip) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    LocationReportMsg msg;
    msg.user = static_cast<UserId>(rng.NextIndex(100000));
    msg.epoch = static_cast<int32_t>(rng.UniformInt(-5, 100000));
    msg.position = RandomPoint(rng);
    msg.window = RandomWindow(rng, 12);
    ExpectRoundTripAndPrefixRejection(msg);
  }
}

TEST(WireTest, ProbeRoundTrip) {
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    ProbeMsg msg;
    msg.user = static_cast<UserId>(rng.NextIndex(100000));
    msg.epoch = static_cast<int32_t>(rng.UniformInt(0, 100000));
    ExpectRoundTripAndPrefixRejection(msg);
  }
}

TEST(WireTest, AlertRoundTrip) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    AlertMsg msg;
    msg.user = static_cast<UserId>(rng.NextIndex(100000));
    msg.u = static_cast<UserId>(rng.NextIndex(100000));
    msg.w = static_cast<UserId>(rng.NextIndex(100000));
    msg.epoch = static_cast<int32_t>(rng.UniformInt(0, 100000));
    ExpectRoundTripAndPrefixRejection(msg);
  }
}

TEST(WireTest, RegionInstallRoundTripAllShapes) {
  Rng rng(24);
  for (int trial = 0; trial < 200; ++trial) {
    RegionInstallMsg msg;
    msg.user = static_cast<UserId>(rng.NextIndex(100000));
    msg.epoch = static_cast<int32_t>(rng.UniformInt(0, 100000));
    msg.region = RandomShape(rng);
    ExpectRoundTripAndPrefixRejection(msg);
  }
}

TEST(WireTest, MatchInstallRoundTripAndOpRange) {
  Rng rng(25);
  for (int trial = 0; trial < 30; ++trial) {
    MatchInstallMsg msg;
    msg.user = static_cast<UserId>(rng.NextIndex(100000));
    msg.epoch = static_cast<int32_t>(rng.UniformInt(0, 100000));
    msg.op = static_cast<uint8_t>(rng.NextIndex(3));
    msg.u = static_cast<UserId>(rng.NextIndex(100000));
    msg.w = static_cast<UserId>(rng.NextIndex(100000));
    msg.region.center = RandomPoint(rng);
    msg.region.radius = rng.Uniform(0.0, 1e5);
    ExpectRoundTripAndPrefixRejection(msg);

    MatchInstallMsg bad = msg;
    bad.op = 3;  // Outside the MatchOp range.
    MatchInstallMsg scratch;
    EXPECT_FALSE(Decode(Encode(bad), &scratch));
  }
}

// ---------------------------------------------------------------------------
// Framing.

TEST(WireTest, FrameRoundTripEveryKind) {
  Rng rng(31);
  for (uint8_t kind = 1; kind <= 6; ++kind) {
    std::vector<uint8_t> payload(rng.NextIndex(64));
    for (uint8_t& b : payload) b = static_cast<uint8_t>(rng.NextIndex(256));
    const uint64_t seq = rng.NextU64() >> rng.NextIndex(64);
    const std::vector<uint8_t> bytes =
        EncodeFrame(static_cast<MsgKind>(kind), seq, payload);
    Frame frame;
    ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &frame));
    EXPECT_EQ(frame.version, kWireVersion);
    EXPECT_EQ(static_cast<uint8_t>(frame.kind), kind);
    EXPECT_EQ(frame.seq, seq);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(WireTest, TruncatedFrameRejected) {
  const std::vector<uint8_t> bytes =
      EncodeFrame(MsgKind::kProbe, 7, Encode(ProbeMsg{3, 12}));
  Frame frame;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeFrame(bytes.data(), cut, &frame))
        << "truncated frame of length " << cut << " decoded";
  }
}

TEST(WireTest, EverySingleByteCorruptionRejected) {
  // FNV-1a's per-byte step (state ^ byte) * prime is injective in the byte
  // for fixed state and invertible in the state, so any single-byte flip
  // changes the checksum — every such corruption must be caught.
  const std::vector<uint8_t> bytes =
      EncodeFrame(MsgKind::kAlert, 42, Encode(AlertMsg{1, 1, 2, 9}));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    Frame frame;
    EXPECT_FALSE(DecodeFrame(corrupt.data(), corrupt.size(), &frame))
        << "flip at byte " << i << " decoded";
  }
}

// Rewrites the trailing checksum so header validation — not the checksum —
// is what must reject the frame.
std::vector<uint8_t> Resealed(std::vector<uint8_t> bytes) {
  const uint32_t checksum = Fnv1a32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<uint8_t>(checksum >> (8 * i));
  }
  return bytes;
}

TEST(WireTest, BadMagicVersionKindRejectedEvenWithValidChecksum) {
  const std::vector<uint8_t> good = EncodeFrame(MsgKind::kProbe, 1, {});
  Frame frame;

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeFrame(bad_magic.data(), bad_magic.size(), &frame));
  bad_magic = Resealed(bad_magic);
  EXPECT_FALSE(DecodeFrame(bad_magic.data(), bad_magic.size(), &frame));

  std::vector<uint8_t> bad_version = good;
  bad_version[2] = kWireVersion + 1;
  bad_version = Resealed(bad_version);
  EXPECT_FALSE(DecodeFrame(bad_version.data(), bad_version.size(), &frame));

  std::vector<uint8_t> bad_kind = good;
  bad_kind[3] = 0;
  bad_kind = Resealed(bad_kind);
  EXPECT_FALSE(DecodeFrame(bad_kind.data(), bad_kind.size(), &frame));
  bad_kind[3] = kMaxMsgKind + 1;
  bad_kind = Resealed(bad_kind);
  EXPECT_FALSE(DecodeFrame(bad_kind.data(), bad_kind.size(), &frame));
  // Every kind through kMaxMsgKind (incl. the batch and shard-forward
  // envelopes) is frame-legal; payload validation happens a layer up.
  for (uint8_t kind = 1; kind <= kMaxMsgKind; ++kind) {
    std::vector<uint8_t> ok_kind = good;
    ok_kind[3] = kind;
    ok_kind = Resealed(ok_kind);
    EXPECT_TRUE(DecodeFrame(ok_kind.data(), ok_kind.size(), &frame)) << kind;
  }
}

TEST(WireTest, FrameOverheadBytesMatchesEncodeFrameExactly) {
  // The sharded frontend's batch-savings accounting uses this constant
  // instead of re-encoding frames; it must never drift from the codec.
  const uint64_t seqs[] = {0, 1, 127, 128, 16383, 16384, (1ULL << 32),
                           std::numeric_limits<uint64_t>::max()};
  const size_t lens[] = {0, 1, 64, 127, 128, 300};
  for (const uint64_t seq : seqs) {
    for (const size_t len : lens) {
      const std::vector<uint8_t> payload(len, 0xa5);
      const std::vector<uint8_t> bytes =
          EncodeFrame(MsgKind::kAlert, seq, payload);
      EXPECT_EQ(bytes.size(), len + FrameOverheadBytes(seq, len))
          << "seq=" << seq << " len=" << len;
    }
  }
  EXPECT_EQ(EncodeFrame(MsgKind::kAck, 0, {}).size(), kMinFrameBytes);
}

// ---------------------------------------------------------------------------
// Batch envelope.

std::vector<BatchItem> SampleBatch() {
  std::vector<BatchItem> items;
  items.push_back({MsgKind::kProbe, Encode(ProbeMsg{4, 17})});
  items.push_back({MsgKind::kAlert, Encode(AlertMsg{4, 4, 9, 17})});
  RegionInstallMsg install;
  install.user = 4;
  install.epoch = 17;
  install.region = Circle{{10.0, 20.0}, 300.0};
  items.push_back({MsgKind::kRegionInstall, Encode(install)});
  MatchInstallMsg match;
  match.user = 4;
  match.epoch = 17;
  match.op = 0;
  match.u = 4;
  match.w = 9;
  match.region = Circle{{15.0, 25.0}, 100.0};
  items.push_back({MsgKind::kMatchInstall, Encode(match)});
  return items;
}

TEST(WireTest, BatchRoundTripAndStrictPrefixRejection) {
  const std::vector<BatchItem> items = SampleBatch();
  const std::vector<uint8_t> payload = EncodeBatch(items);
  std::vector<BatchItem> back;
  ASSERT_TRUE(DecodeBatch(payload, &back));
  EXPECT_EQ(back, items);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<BatchItem> scratch;
    EXPECT_FALSE(DecodeBatch(
        std::vector<uint8_t>(payload.begin(), payload.begin() + cut),
        &scratch))
        << "prefix of length " << cut << " decoded";
  }
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(DecodeBatch(padded, &back));
}

TEST(WireTest, BatchRejectsEmptyNestedAckAndReport) {
  std::vector<BatchItem> out;
  // Empty batch: a framing bug, not a message.
  EXPECT_FALSE(DecodeBatch(EncodeBatch({}), &out));
  // Nested batch, transport ack, and uplink report are all envelope-illegal.
  for (const MsgKind kind :
       {MsgKind::kBatch, MsgKind::kAck, MsgKind::kLocationReport}) {
    EXPECT_FALSE(DecodeBatch(EncodeBatch({{kind, {1, 2, 3}}}), &out))
        << static_cast<int>(kind);
  }
  // A shard forward, by contrast, may ride in a (mesh) batch.
  ShardForwardMsg fwd;
  fwd.inner_kind = static_cast<uint8_t>(MsgKind::kAlert);
  fwd.inner = Encode(AlertMsg{1, 1, 2, 5});
  EXPECT_TRUE(DecodeBatch(EncodeBatch({{MsgKind::kShardForward, Encode(fwd)}}),
                          &out));
  ASSERT_EQ(out.size(), 1u);
  ShardForwardMsg back;
  ASSERT_TRUE(Decode(out[0].payload, &back));
  EXPECT_TRUE(back == fwd);
}

TEST(WireTest, ShardForwardRoundTripAndInnerKindValidation) {
  ShardForwardMsg digest;
  digest.inner_kind = static_cast<uint8_t>(MsgKind::kLocationReport);
  LocationReportMsg report;
  report.user = 7;
  report.epoch = 33;
  report.position = {1234.5, -678.9};
  digest.inner = Encode(report);
  ExpectRoundTripAndPrefixRejection(digest);

  // Only digests and the two pair-owned notices may be forwarded.
  for (const MsgKind kind : {MsgKind::kProbe, MsgKind::kRegionInstall,
                             MsgKind::kAck, MsgKind::kBatch,
                             MsgKind::kShardForward}) {
    ShardForwardMsg bad = digest;
    bad.inner_kind = static_cast<uint8_t>(kind);
    ShardForwardMsg scratch;
    EXPECT_FALSE(Decode(Encode(bad), &scratch)) << static_cast<int>(kind);
  }
}

// ---------------------------------------------------------------------------
// Quantized point codec and the compressed-install guard.

std::vector<Vec2> OnGridPath(size_t n) {
  std::vector<Vec2> points;
  for (size_t i = 0; i < n; ++i) {
    // Multiples of 1/256 by construction: 0.5 = 128/256, 0.25 = 64/256.
    points.push_back({1000.0 + 0.5 * static_cast<double>(i),
                      2000.0 - 0.25 * static_cast<double>(i)});
  }
  return points;
}

TEST(WireTest, QuantizedPointsRoundTripOnGridAndShrink) {
  const std::vector<Vec2> path = OnGridPath(24);
  ASSERT_TRUE(PointsQuantizable(path));
  WireWriter wq;
  wq.PutPointsQuantized(path);
  WireReader r(wq.bytes().data(), wq.bytes().size());
  std::vector<Vec2> back;
  ASSERT_TRUE(r.GetPointsQuantized(&back));
  EXPECT_EQ(back, path);  // Bit-exact: the grid is a power of two.
  EXPECT_EQ(r.remaining(), 0u);

  // Small grid-index deltas beat the XOR-of-bit-patterns coding by a wide
  // margin on a smooth path — the whole point of the stripe compression.
  WireWriter wx;
  wx.PutPoints(path);
  EXPECT_LT(wq.bytes().size(), wx.bytes().size() / 2);
}

TEST(WireTest, PointsQuantizableRejectsOffGridAndHuge) {
  EXPECT_FALSE(PointsQuantizable({{0.1, 0.0}}));  // 0.1 is off-grid.
  EXPECT_FALSE(PointsQuantizable({{1e12, 0.0}}));  // Grid index overflows.
  EXPECT_FALSE(PointsQuantizable(
      {{std::numeric_limits<double>::quiet_NaN(), 0.0}}));
  EXPECT_TRUE(PointsQuantizable({{-0.00390625, 42.0}}));  // -1/256.
  EXPECT_TRUE(PointsQuantizable({}));
}

TEST(WireTest, EncodeCompressedShrinksOnGridStripesAndDecodesEqual) {
  RegionInstallMsg msg;
  msg.user = 3;
  msg.epoch = 12;
  msg.region = Stripe(Polyline(OnGridPath(24)), 750.0);

  const std::vector<uint8_t> exact = Encode(msg);
  const std::vector<uint8_t> compressed = EncodeCompressed(msg);
  EXPECT_LT(compressed.size(), exact.size());
  RegionInstallMsg back;
  ASSERT_TRUE(Decode(compressed, &back));
  EXPECT_TRUE(back == msg);  // The guard's contract: identical geometry.
  // The exact coding still decodes too (old frames stay readable).
  ASSERT_TRUE(Decode(exact, &back));
  EXPECT_TRUE(back == msg);
}

TEST(WireTest, EncodeCompressedFallsBackOffGrid) {
  RegionInstallMsg msg;
  msg.user = 3;
  msg.epoch = 12;
  std::vector<Vec2> path = OnGridPath(10);
  path[4].x += 1e-5;  // Knock one vertex off the grid.
  msg.region = Stripe(Polyline(std::move(path)), 750.0);
  EXPECT_EQ(EncodeCompressed(msg), Encode(msg));

  // Non-polyline shapes have nothing to quantize: identical bytes.
  msg.region = Circle{{5.0, 6.0}, 70.0};
  EXPECT_EQ(EncodeCompressed(msg), Encode(msg));
  msg.region = MovingCircle{{5.0, 6.0}, {1.0, 2.0}, 70.0, 4};
  EXPECT_EQ(EncodeCompressed(msg), Encode(msg));
}

TEST(WireTest, LengthMismatchRejectedEvenWithValidChecksum) {
  // Probe payload is tiny, so seq/len are single varint bytes at fixed
  // offsets: lie about the payload length and reseal.
  std::vector<uint8_t> bytes =
      EncodeFrame(MsgKind::kProbe, 1, Encode(ProbeMsg{3, 12}));
  bytes[5] += 1;
  bytes = Resealed(bytes);
  Frame frame;
  EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame));
}

}  // namespace
}  // namespace net
}  // namespace proxdet
