// The sharded serving plane's contract: for ANY partition count, with
// batching and install compression on or off, over perfect or lossy links,
// the transported run stays bit-exact with the single-server transported
// run and with the in-process engine — same client-observed alerts, same
// message counts, same rebuild counts — while cross-shard pairs flow
// through the consistent-hash owner rule and forwarded location digests.

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_support/obs_artifacts.h"
#include "core/simulation.h"
#include "net/shard.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace proxdet {
namespace net {
namespace {

WorkloadConfig TinyConfig() {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 40;
  config.epochs = 50;
  config.speed_steps = 8;
  config.avg_friends = 5.0;
  config.alert_radius_m = 6000.0;
  config.seed = 1234;
  config.training_users = 12;
  config.training_epochs = 60;
  return config;
}

const Workload& SharedWorkload() {
  static const Workload workload = BuildWorkload(TinyConfig());
  return workload;
}

NetConfig Sharded(int shards, bool batch, bool compress) {
  NetConfig config;
  config.shards = shards;
  config.batch_downlink = batch;
  config.compress_installs = compress;
  return config;
}

NetConfig LossySharded(int shards, bool batch, double drop_rate,
                       uint64_t seed) {
  NetConfig config = Sharded(shards, batch, batch);
  config.up.latency_s = 0.01;
  config.up.jitter_s = 0.02;
  config.up.drop_rate = drop_rate;
  config.up.dup_rate = 0.05;
  config.down.latency_s = 0.015;
  config.down.jitter_s = 0.02;
  config.down.drop_rate = drop_rate;
  config.down.dup_rate = 0.05;
  // The mesh is impaired too: digest forwarding and relays must survive
  // loss, duplication and reordering like any other traffic.
  config.mesh.latency_s = 0.002;
  config.mesh.jitter_s = 0.005;
  config.mesh.drop_rate = drop_rate;
  config.mesh.dup_rate = 0.05;
  config.seed = seed;
  return config;
}

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRingTest, DeterministicAndCoversAllShards) {
  const HashRing a(8, 16);
  const HashRing b(8, 16);
  std::vector<int> population(8, 0);
  for (UserId u = 0; u < 1000; ++u) {
    const int shard = a.ShardOf(u);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    EXPECT_EQ(shard, b.ShardOf(u));  // Pure function of (shards, vnodes).
    population[shard] += 1;
  }
  for (int s = 0; s < 8; ++s) {
    EXPECT_GT(population[s], 0) << "shard " << s << " got no users";
  }
  const HashRing single(1, 16);
  for (UserId u = 0; u < 100; ++u) EXPECT_EQ(single.ShardOf(u), 0);
}

TEST(HashRingTest, OwnerRuleIsSmallerEndpointsHome) {
  const HashRing ring(5, 16);
  for (UserId a = 0; a < 60; ++a) {
    for (UserId b = a + 1; b < 60; ++b) {
      EXPECT_EQ(ring.OwnerOf(a, b), ring.ShardOf(a));
      EXPECT_EQ(ring.OwnerOf(b, a), ring.ShardOf(a));  // Symmetric.
    }
  }
}

TEST(HashRingTest, AddingShardOnlyMovesKeysToTheNewShard) {
  const HashRing before(7, 16);
  const HashRing after(8, 16);
  int moved = 0;
  for (UserId u = 0; u < 2000; ++u) {
    const int old_shard = before.ShardOf(u);
    const int new_shard = after.ShardOf(u);
    if (new_shard != old_shard) {
      EXPECT_EQ(new_shard, 7) << "user " << u
                              << " moved between pre-existing shards";
      moved += 1;
    }
  }
  // The new shard takes roughly 1/8 of the keys, never none, never most.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 1000);
}

// ---------------------------------------------------------------------------
// Cross-shard parity: shard counts x drop rates against the single-server
// baseline (the ISSUE's property test).

class ShardCountParityTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardCountParityTest, MatchesSingleServerAtEveryDropRate) {
  const int shards = GetParam();
  const Workload& workload = SharedWorkload();
  for (const Method method : {Method::kCmd, Method::kStripeKf}) {
    for (const double drop : {0.0, 0.05, 0.20}) {
      const NetConfig base = drop == 0.0 ? Sharded(1, false, false)
                                         : LossySharded(1, false, drop, 99);
      NetConfig sharded = base;
      sharded.shards = shards;
      const TransportedRunResult single =
          RunTransportedMethod(method, workload, base);
      const TransportedRunResult multi =
          RunTransportedMethod(method, workload, sharded);

      EXPECT_TRUE(single.run.alerts_exact)
          << MethodName(method) << " drop=" << drop;
      EXPECT_TRUE(multi.run.alerts_exact)
          << MethodName(method) << " shards=" << shards << " drop=" << drop;
      EXPECT_EQ(multi.run.alert_count, single.run.alert_count);
      EXPECT_TRUE(multi.run.stats.SameMessageCounts(single.run.stats))
          << MethodName(method) << " shards=" << shards << " drop=" << drop
          << ": " << multi.run.stats << " vs " << single.run.stats;
      EXPECT_EQ(multi.run.rebuild_count, single.run.rebuild_count);
      EXPECT_TRUE(multi.net.codec_exact);
      EXPECT_FALSE(multi.net.failed);
      if (shards > 1) {
        EXPECT_GT(multi.net.bytes_xshard, 0u)
            << "no cross-shard traffic despite " << shards << " shards";
      }
      // Client-facing traffic is partition-independent in the unbatched
      // discipline on a perfect link: same frames, same bytes.
      if (drop == 0.0) {
        EXPECT_EQ(multi.net.bytes_down, single.net.bytes_down);
        EXPECT_EQ(multi.net.bytes_up, single.net.bytes_up);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardCountParityTest,
                         ::testing::Values(2, 3, 8));

// ---------------------------------------------------------------------------
// Batched + compressed, every paper method, shards=3: bit-exact with the
// in-process engine.

class BatchedShardedMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(BatchedShardedMethodTest, BitExactWithInProcess) {
  const Method method = GetParam();
  const Workload& workload = SharedWorkload();
  const RunResult direct = RunMethod(method, workload);
  const TransportedRunResult transported =
      RunTransportedMethod(method, workload, Sharded(3, true, true));

  EXPECT_TRUE(direct.alerts_exact);
  EXPECT_TRUE(transported.run.alerts_exact);
  EXPECT_EQ(transported.run.alert_count, direct.alert_count);
  EXPECT_TRUE(transported.run.stats.SameMessageCounts(direct.stats))
      << MethodName(method) << ": transported " << transported.run.stats
      << " diverged from direct " << direct.stats;
  EXPECT_EQ(transported.run.rebuild_count, direct.rebuild_count);
  EXPECT_TRUE(transported.net.codec_exact);
  EXPECT_FALSE(transported.net.failed);
  EXPECT_EQ(transported.net.compress_mismatch, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BatchedShardedMethodTest,
                         ::testing::ValuesIn(PaperMethodSet()),
                         [](const auto& info) {
                           std::string name = MethodName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Batching and compression actually shrink the downlink.

TEST(ShardBatchingTest, BatchingAndCompressionReduceDownlink) {
  const Workload& workload = SharedWorkload();
  const TransportedRunResult plain =
      RunTransportedMethod(Method::kStripeKf, workload, Sharded(1, false, false));
  const TransportedRunResult optimized =
      RunTransportedMethod(Method::kStripeKf, workload, Sharded(1, true, true));

  EXPECT_TRUE(optimized.run.alerts_exact);
  EXPECT_TRUE(optimized.run.stats.SameMessageCounts(plain.run.stats));
  EXPECT_LT(optimized.net.bytes_down, plain.net.bytes_down);
  EXPECT_LT(optimized.net.frames_down, plain.net.frames_down);
  EXPECT_GT(optimized.net.batch_frames, 0u);
  EXPECT_GT(optimized.net.batch_messages, optimized.net.batch_frames);
  EXPECT_GT(optimized.net.batch_saved_bytes, 0u);
  // Grid-snapped stripe anchors make every stripe install compressible and
  // the guard (decode-own-encoding, compare bit-exact) never trips.
  EXPECT_GT(optimized.net.compressed_installs, 0u);
  EXPECT_GT(optimized.net.compress_saved_bytes, 0u);
  EXPECT_EQ(optimized.net.compress_mismatch, 0u);
  EXPECT_EQ(plain.net.batch_frames, 0u);
  EXPECT_EQ(plain.net.compressed_installs, 0u);
  // CommStats carries the savings for reporting.
  EXPECT_EQ(optimized.run.stats.batch_saved_bytes,
            optimized.net.batch_saved_bytes);
}

// ---------------------------------------------------------------------------
// Per-shard accounting sums to the global direction totals.

TEST(ShardStatsTest, PerShardSumsEqualGlobals) {
  const Workload& workload = SharedWorkload();
  const TransportedRunResult r =
      RunTransportedMethod(Method::kStripeKf, workload, Sharded(3, true, true));
  ASSERT_EQ(r.net.shards.size(), 3u);
  uint64_t users = 0;
  uint64_t bytes_up = 0;
  uint64_t bytes_down = 0;
  uint64_t bytes_xshard = 0;
  uint64_t frames_up = 0;
  uint64_t frames_down = 0;
  uint64_t frames_xshard = 0;
  for (const ShardNetStats& s : r.net.shards) {
    users += s.users;
    bytes_up += s.bytes_up;
    bytes_down += s.bytes_down;
    bytes_xshard += s.bytes_xshard;
    frames_up += s.frames_up;
    frames_down += s.frames_down;
    frames_xshard += s.frames_xshard;
  }
  EXPECT_EQ(users, workload.world.user_count());
  EXPECT_EQ(bytes_up, r.net.bytes_up);
  EXPECT_EQ(bytes_down, r.net.bytes_down);
  EXPECT_EQ(bytes_xshard, r.net.bytes_xshard);
  EXPECT_EQ(frames_up, r.net.frames_up);
  EXPECT_EQ(frames_down, r.net.frames_down);
  EXPECT_EQ(frames_xshard, r.net.frames_xshard);
  EXPECT_GT(bytes_xshard, 0u);
  // CommStats mirrors the mesh total.
  EXPECT_EQ(r.run.stats.bytes_xshard, r.net.bytes_xshard);
  // Mesh traffic is server-internal: not part of the client I/O objective.
  EXPECT_EQ(r.run.stats.TotalBytes(), r.net.bytes_up + r.net.bytes_down);
}

// ---------------------------------------------------------------------------
// Per-shard spatial index: each shard buckets exactly its *owned* users,
// keyed by the positions the server decoded off the wire — never a foreign
// user, never the engine's direct-read mirror.

TEST(ShardIndexTest, PerShardIndexHoldsOwnedUsersDecodedReports) {
  const Workload& workload = SharedWorkload();
  const int shards = 3;
  TransportLink link(workload.world, Sharded(shards, true, true));
  // Naive reports every user every epoch, so after the run each shard's
  // index must hold its whole partition at the final epoch's positions
  // (codec round-trips are exact, so decoded == world).
  NaiveDetector detector;
  detector.set_link(&link);
  detector.Run(workload.world);
  const ShardedFrontend& frontend = link.frontend();
  const int last_epoch = workload.world.epochs() - 1;
  size_t indexed = 0;
  for (int s = 0; s < shards; ++s) {
    const auto entries = frontend.shard_index(s).SortedEntries();
    indexed += entries.size();
    for (const auto& [u, p] : entries) {
      EXPECT_EQ(frontend.home_shard(u), s) << "foreign user in shard " << s;
      EXPECT_EQ(p, workload.world.Position(u, last_epoch)) << "user " << u;
    }
  }
  EXPECT_EQ(indexed, workload.world.user_count());
}

// ---------------------------------------------------------------------------
// Batched + sharded over a hostile mesh (drop + dup + jitter): still exact.

TEST(ShardLossTest, BatchedShardedSurvivesLossDupAndReorder) {
  const Workload& workload = SharedWorkload();
  for (const double drop : {0.05, 0.20}) {
    const TransportedRunResult r = RunTransportedMethod(
        Method::kStripeKf, workload, LossySharded(3, true, drop, 4242));
    EXPECT_TRUE(r.run.alerts_exact) << "drop=" << drop;
    EXPECT_TRUE(r.net.codec_exact) << "drop=" << drop;
    EXPECT_FALSE(r.net.failed) << "drop=" << drop;
    EXPECT_GT(r.net.retransmits, 0u) << "drop=" << drop;
    EXPECT_GT(r.net.duplicates, 0u) << "drop=" << drop;
  }
}

// Same transport seed, same config => identical delivery schedule, even
// sharded and batched: the serving plane adds no hidden nondeterminism.
TEST(ShardDeterminismTest, ScheduleHashIsReproducible) {
  const Workload& workload = SharedWorkload();
  const NetConfig config = LossySharded(3, true, 0.05, 7);
  const TransportedRunResult a =
      RunTransportedMethod(Method::kCmd, workload, config);
  const TransportedRunResult b =
      RunTransportedMethod(Method::kCmd, workload, config);
  EXPECT_EQ(a.net.schedule_hash, b.net.schedule_hash);
  EXPECT_EQ(a.net.bytes_up, b.net.bytes_up);
  EXPECT_EQ(a.net.bytes_down, b.net.bytes_down);
  EXPECT_EQ(a.net.bytes_xshard, b.net.bytes_xshard);
}

// ---------------------------------------------------------------------------
// RunReport + registry reconciliation for a sharded run: summed per-shard
// byte counters equal the global direction counters equal CommStats.

TEST(ShardObsTest, ShardedRunReportReconciles) {
  obs::Metrics().Reset();
  const Workload& workload = SharedWorkload();
  const TransportedRunResult r =
      RunTransportedMethod(Method::kStripeKf, workload, Sharded(2, true, true));
  obs::RunReport report = MakeRunReport("shard_test:sharded", r.run.stats);
  AddShardNetSections(&report, r.net);
  std::string error;
  EXPECT_TRUE(ReconcileWithCommStats(report.metrics(), r.run.stats, &error))
      << error;
  obs::Metrics().Reset();
}

}  // namespace
}  // namespace net
}  // namespace proxdet
