// Tests for the traffic-realism knobs of the trajectory generator: signal
// stops and congestion regimes violate the constant-speed assumption (the
// failure mode of linear safe regions) without changing the path.

#include <gtest/gtest.h>

#include "traj/dataset.h"
#include "traj/generator.h"

namespace proxdet {
namespace {

DatasetSpec CalmSpec() {
  DatasetSpec spec = SpecFor(DatasetKind::kBeijingTaxi);
  spec.intersection_stop_prob = 0.0;
  spec.jam_probability = 0.0;
  spec.pause_probability = 0.0;
  spec.gps_noise_m = 0.0;
  return spec;
}

double FractionOfSlowTicks(const Trajectory& t, double threshold) {
  size_t slow = 0;
  for (size_t i = 1; i < t.size(); ++i) {
    if (t.SpeedAt(i) < threshold) ++slow;
  }
  return static_cast<double>(slow) / static_cast<double>(t.size() - 1);
}

TEST(TrafficTest, StopsCreateStationaryTicks) {
  DatasetSpec stoppy = CalmSpec();
  stoppy.intersection_stop_prob = 0.8;
  stoppy.max_stop_seconds = 60.0;
  TrajectoryGenerator calm_gen(CalmSpec(), 5);
  TrajectoryGenerator stop_gen(stoppy, 5);
  const Trajectory calm = calm_gen.GenerateOne(600);
  const Trajectory stoppy_traj = stop_gen.GenerateOne(600);
  // Sub-1 m/s ticks are (near) stationary; stops should multiply them.
  EXPECT_GT(FractionOfSlowTicks(stoppy_traj, 1.0),
            FractionOfSlowTicks(calm, 1.0) + 0.1);
}

TEST(TrafficTest, JamsDepressSpeedWithoutStopping) {
  DatasetSpec jammy = CalmSpec();
  jammy.jam_probability = 0.05;
  jammy.jam_factor = 0.2;
  jammy.max_jam_ticks = 60;
  TrajectoryGenerator calm_gen(CalmSpec(), 9);
  TrajectoryGenerator jam_gen(jammy, 9);
  const double calm_speed = calm_gen.GenerateOne(800).AverageSpeed();
  const double jam_speed = jam_gen.GenerateOne(800).AverageSpeed();
  EXPECT_LT(jam_speed, calm_speed * 0.85);
  EXPECT_GT(jam_speed, 0.0);
}

TEST(TrafficTest, PathShapeUnaffectedByStops) {
  // Same seed, same network: the stop-and-go trajectory visits (a prefix
  // of) the same road geometry, just more slowly. We verify by checking
  // that every stop-and-go position lies close to the calm trajectory's
  // path (both follow roads of the same generator seed).
  DatasetSpec stoppy = CalmSpec();
  stoppy.intersection_stop_prob = 0.6;
  TrajectoryGenerator gen_a(CalmSpec(), 21);
  TrajectoryGenerator gen_b(stoppy, 21);
  // Networks are seeded identically, so node positions coincide.
  EXPECT_EQ(gen_a.network().node_count(), gen_b.network().node_count());
  const Vec2 pa = gen_a.network().node_position(0);
  const Vec2 pb = gen_b.network().node_position(0);
  EXPECT_EQ(pa, pb);
}

TEST(TrafficTest, DefaultSpecsEnableTrafficForVehicles) {
  EXPECT_GT(SpecFor(DatasetKind::kBeijingTaxi).intersection_stop_prob, 0.0);
  EXPECT_GT(SpecFor(DatasetKind::kSingaporeTaxi).jam_probability, 0.0);
  EXPECT_GT(SpecFor(DatasetKind::kTruck).jam_probability, 0.0);
  // Truck stops are rare but long (toll gates, rest stops).
  EXPECT_LT(SpecFor(DatasetKind::kTruck).intersection_stop_prob,
            SpecFor(DatasetKind::kBeijingTaxi).intersection_stop_prob);
  EXPECT_GT(SpecFor(DatasetKind::kTruck).max_stop_seconds,
            SpecFor(DatasetKind::kBeijingTaxi).max_stop_seconds);
}

}  // namespace
}  // namespace proxdet
