// Tests for the streaming trajectory substrate: the per-epoch generator
// contract (seeded determinism, Reset replay, Clone independence), the
// materialized twin, and the city-scale scenario pack built on top of it.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "road/road_network.h"
#include "traj/scenario.h"
#include "traj/streaming.h"

namespace proxdet {
namespace {

std::unique_ptr<RoadFlowGenerator> MakeGenerator(size_t users,
                                                 uint64_t seed = 7) {
  Rng rng(123);
  auto network = std::make_shared<const RoadNetwork>(
      RoadNetwork::MakeCityGrid(8, 8, 250.0, 4, 10.0, &rng));
  FlowConfig config;
  config.user_count = users;
  config.seed = seed;
  return std::make_unique<RoadFlowGenerator>(config, std::move(network));
}

std::vector<std::vector<Vec2>> RunEpochs(StreamingGenerator* gen, int epochs) {
  std::vector<std::vector<Vec2>> out(epochs);
  for (int e = 0; e < epochs; ++e) {
    out[e].resize(gen->user_count());
    gen->NextEpoch(out[e].data());
  }
  return out;
}

TEST(StreamingTest, SameSeedSameStream) {
  auto a = MakeGenerator(40);
  auto b = MakeGenerator(40);
  EXPECT_EQ(RunEpochs(a.get(), 12), RunEpochs(b.get(), 12));
}

TEST(StreamingTest, DifferentSeedDifferentStream) {
  auto a = MakeGenerator(40, 7);
  auto b = MakeGenerator(40, 8);
  EXPECT_NE(RunEpochs(a.get(), 12), RunEpochs(b.get(), 12));
}

TEST(StreamingTest, ResetReplaysBitExactly) {
  auto gen = MakeGenerator(25);
  const auto first = RunEpochs(gen.get(), 10);
  gen->Reset();
  EXPECT_EQ(first, RunEpochs(gen.get(), 10));
}

TEST(StreamingTest, CloneIsRewoundAndIndependent) {
  auto gen = MakeGenerator(25);
  const auto reference = RunEpochs(gen.get(), 10);
  // gen's cursor is now at epoch 10; the clone must start from 0 and the
  // clone's advance must not disturb the original.
  auto clone = gen->Clone();
  EXPECT_EQ(reference, RunEpochs(clone.get(), 10));
  std::vector<Vec2> next(gen->user_count());
  gen->NextEpoch(next.data());
  gen->Reset();
  EXPECT_EQ(reference, RunEpochs(gen.get(), 10));
}

TEST(StreamingTest, MaterializeMatchesStreaming) {
  auto gen = MakeGenerator(30);
  const int epochs = 15;
  const auto streamed = RunEpochs(gen.get(), epochs);
  const std::vector<Trajectory> trajectories =
      MaterializeStream(*gen, epochs);
  ASSERT_EQ(trajectories.size(), gen->user_count());
  for (size_t u = 0; u < trajectories.size(); ++u) {
    ASSERT_GE(trajectories[u].size(), static_cast<size_t>(epochs));
    EXPECT_EQ(trajectories[u].dt(), gen->epoch_seconds());
    for (int e = 0; e < epochs; ++e) {
      EXPECT_EQ(trajectories[u].at(e), streamed[e][u])
          << "user " << u << " epoch " << e;
    }
  }
}

TEST(StreamingTest, UsersStayOnSubstrate) {
  auto gen = MakeGenerator(50);
  const BBox extent = gen->network().extent();
  const double slack = 50.0;  // GPS noise + edge jitter margin.
  for (const auto& epoch : RunEpochs(gen.get(), 20)) {
    for (const Vec2& p : epoch) {
      EXPECT_GE(p.x, extent.lo.x - slack);
      EXPECT_LE(p.x, extent.hi.x + slack);
      EXPECT_GE(p.y, extent.lo.y - slack);
      EXPECT_LE(p.y, extent.hi.y + slack);
    }
  }
}

TEST(StreamingTest, UsersActuallyMove) {
  auto gen = MakeGenerator(60);
  const auto epochs = RunEpochs(gen.get(), 30);
  size_t moved = 0;
  for (size_t u = 0; u < gen->user_count(); ++u) {
    if (Distance(epochs.front()[u], epochs.back()[u]) > 100.0) ++moved;
  }
  // Staggered initial pauses idle some users early, but most of the fleet
  // must be in motion over 30 epochs.
  EXPECT_GT(moved, gen->user_count() / 2);
}

TEST(ScenarioTest, NamesRoundTrip) {
  for (const ScenarioKind kind : AllScenarioKinds()) {
    ScenarioKind parsed;
    ASSERT_TRUE(ParseScenarioName(ScenarioName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ScenarioKind parsed;
  EXPECT_FALSE(ParseScenarioName("no_such_scenario", &parsed));
}

TEST(ScenarioTest, BuildsEveryKindDeterministically) {
  for (const ScenarioKind kind : AllScenarioKinds()) {
    ScenarioSpec spec;
    spec.kind = kind;
    spec.num_users = 60;
    spec.epochs = 40;
    Scenario a = BuildScenario(spec);
    Scenario b = BuildScenario(spec);
    ASSERT_EQ(a.generator->user_count(), spec.num_users);
    EXPECT_EQ(RunEpochs(a.generator.get(), 10),
              RunEpochs(b.generator.get(), 10));
    EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
    EXPECT_EQ(a.churn.size(), b.churn.size());
  }
}

TEST(ScenarioTest, OnlyHeavyChurnSchedulesUpdates) {
  for (const ScenarioKind kind : AllScenarioKinds()) {
    ScenarioSpec spec;
    spec.kind = kind;
    spec.num_users = 60;
    spec.epochs = 40;
    const Scenario scenario = BuildScenario(spec);
    if (kind == ScenarioKind::kHeavyChurn) {
      EXPECT_FALSE(scenario.churn.empty());
      for (size_t i = 1; i < scenario.churn.size(); ++i) {
        EXPECT_LE(scenario.churn[i - 1].epoch, scenario.churn[i].epoch);
      }
      for (const EdgeChurnEvent& ev : scenario.churn) {
        EXPECT_GE(ev.epoch, 0);
        EXPECT_LE(ev.epoch, spec.epochs);
        EXPECT_NE(ev.u, ev.w);
      }
    } else {
      EXPECT_TRUE(scenario.churn.empty());
    }
  }
}

TEST(ScenarioTest, TrainingFleetIsMaterializedAndDistinct) {
  ScenarioSpec spec;
  spec.num_users = 60;
  spec.epochs = 40;
  const std::vector<Trajectory> training =
      BuildScenarioTraining(spec, /*training_users=*/8, /*training_epochs=*/20);
  ASSERT_EQ(training.size(), 8u);
  for (const Trajectory& t : training) {
    EXPECT_GE(t.size(), 20u);
  }
  // Same call twice: identical (the predictors must train identically in
  // streaming and materialized runs).
  const std::vector<Trajectory> again =
      BuildScenarioTraining(spec, 8, 20);
  for (size_t u = 0; u < training.size(); ++u) {
    ASSERT_EQ(training[u].size(), again[u].size());
    for (size_t i = 0; i < training[u].size(); ++i) {
      EXPECT_EQ(training[u].at(i), again[u].at(i));
    }
  }
}

}  // namespace
}  // namespace proxdet
