#include "traj/generator.h"

#include <gtest/gtest.h>

#include "traj/dataset.h"

namespace proxdet {
namespace {

class GeneratorDatasetTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorDatasetTest, ProducesRequestedShape) {
  TrajectoryGenerator gen(SpecFor(GetParam()), 11);
  const std::vector<Trajectory> trajs = gen.Generate(5, 200);
  ASSERT_EQ(trajs.size(), 5u);
  for (const Trajectory& t : trajs) {
    EXPECT_EQ(t.size(), 200u);
    EXPECT_DOUBLE_EQ(t.dt(), SpecFor(GetParam()).tick_seconds);
  }
}

TEST_P(GeneratorDatasetTest, StaysWithinNetworkExtentPlusNoise) {
  const DatasetSpec spec = SpecFor(GetParam());
  TrajectoryGenerator gen(spec, 13);
  const BBox& extent = gen.network().extent();
  const double slack = spec.gps_noise_m * 6.0 + 1.0;
  const Trajectory t = gen.GenerateOne(300);
  for (const Vec2& p : t.points()) {
    EXPECT_GE(p.x, extent.lo.x - slack);
    EXPECT_LE(p.x, extent.hi.x + slack);
    EXPECT_GE(p.y, extent.lo.y - slack);
    EXPECT_LE(p.y, extent.hi.y + slack);
  }
}

TEST_P(GeneratorDatasetTest, SpeedsAreBoundedByProfile) {
  const DatasetSpec spec = SpecFor(GetParam());
  TrajectoryGenerator gen(spec, 17);
  const Trajectory t = gen.GenerateOne(400);
  double max_mode = 0.0;
  for (const double m : spec.mode_factors) max_mode = std::max(max_mode, m);
  const double fastest_road =
      std::max({spec.local_speed, spec.arterial_speed,
                spec.highway_speed * (spec.highway_extent_m > 0 ? 1.0 : 0.0)});
  // Generator jitter tops out at ~1.25x and trip factor at 1.1x; GPS noise
  // adds a bounded instantaneous term.
  const double bound = fastest_road * max_mode * 1.5 +
                       spec.gps_noise_m * 8.0 / spec.tick_seconds;
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t.SpeedAt(i), bound) << "tick " << i;
  }
}

TEST_P(GeneratorDatasetTest, DeterministicForSeed) {
  TrajectoryGenerator a(SpecFor(GetParam()), 99);
  TrajectoryGenerator b(SpecFor(GetParam()), 99);
  const Trajectory ta = a.GenerateOne(100);
  const Trajectory tb = b.GenerateOne(100);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta.at(i), tb.at(i));
}

TEST_P(GeneratorDatasetTest, UsersActuallyMove) {
  TrajectoryGenerator gen(SpecFor(GetParam()), 23);
  const Trajectory t = gen.GenerateOne(400);
  EXPECT_GT(t.PathLength(), 10.0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorDatasetTest,
                         ::testing::ValuesIn(AllDatasetKinds()),
                         [](const auto& info) {
                           return DatasetName(info.param);
                         });

TEST(DatasetSpecTest, NamesAreUniqueAndStable) {
  EXPECT_EQ(DatasetName(DatasetKind::kGeoLife), "GeoLife");
  EXPECT_EQ(DatasetName(DatasetKind::kBeijingTaxi), "BeijingTaxi");
  EXPECT_EQ(DatasetName(DatasetKind::kSingaporeTaxi), "SingaporeTaxi");
  EXPECT_EQ(DatasetName(DatasetKind::kTruck), "Truck");
  EXPECT_EQ(AllDatasetKinds().size(), 4u);
}

TEST(DatasetSpecTest, TruckUsesHighways) {
  const DatasetSpec spec = SpecFor(DatasetKind::kTruck);
  EXPECT_GT(spec.highway_extent_m, 0.0);
  EXPECT_GT(spec.highway_corridors, 0);
}

TEST(DatasetSpecTest, PedestriansSlowerThanTaxis) {
  EXPECT_LT(SpecFor(DatasetKind::kGeoLife).local_speed,
            SpecFor(DatasetKind::kBeijingTaxi).local_speed);
}

}  // namespace
}  // namespace proxdet
