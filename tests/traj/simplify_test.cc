#include "traj/simplify.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/polyline.h"
#include "traj/dataset.h"
#include "traj/generator.h"

namespace proxdet {
namespace {

double MaxDeviation(const std::vector<Vec2>& original,
                    const std::vector<Vec2>& simplified) {
  const Polyline line(simplified);
  double worst = 0.0;
  for (const Vec2& p : original) {
    worst = std::max(worst, line.DistanceToPoint(p));
  }
  return worst;
}

std::vector<Vec2> RandomWalk(Rng* rng, int n, double step) {
  std::vector<Vec2> pts;
  Vec2 p{0, 0};
  Vec2 heading{1, 0};
  for (int i = 0; i < n; ++i) {
    pts.push_back(p);
    const double turn = rng->Gaussian(0.0, 0.3);
    heading = Vec2{heading.x * std::cos(turn) - heading.y * std::sin(turn),
                   heading.x * std::sin(turn) + heading.y * std::cos(turn)};
    p += heading * step * rng->Uniform(0.5, 1.5);
  }
  return pts;
}

TEST(DouglasPeuckerTest, StraightLineCollapsesToEndpoints) {
  std::vector<Vec2> pts;
  for (int i = 0; i <= 100; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const std::vector<Vec2> out = DouglasPeucker(pts, 0.5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front(), pts.front());
  EXPECT_EQ(out.back(), pts.back());
}

TEST(DouglasPeuckerTest, KeepsSharpCorner) {
  std::vector<Vec2> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({static_cast<double>(i), 0.0});
  for (int i = 1; i <= 10; ++i) pts.push_back({10.0, static_cast<double>(i)});
  const std::vector<Vec2> out = DouglasPeucker(pts, 0.5);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], (Vec2{10, 0}));
}

TEST(DouglasPeuckerTest, TinyInputsPassThrough) {
  EXPECT_TRUE(DouglasPeucker({}, 1.0).empty());
  EXPECT_EQ(DouglasPeucker({{1, 1}}, 1.0).size(), 1u);
  EXPECT_EQ(DouglasPeucker({{1, 1}, {2, 2}}, 1.0).size(), 2u);
}

TEST(DouglasPeuckerTest, PropertyErrorBoundHolds) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<Vec2> pts = RandomWalk(&rng, 200, 10.0);
    for (const double eps : {1.0, 5.0, 25.0}) {
      const std::vector<Vec2> out = DouglasPeucker(pts, eps);
      EXPECT_LE(MaxDeviation(pts, out), eps + 1e-9);
      EXPECT_LE(out.size(), pts.size());
    }
  }
}

TEST(DouglasPeuckerTest, LargerEpsilonFewerPoints) {
  Rng rng(7);
  const std::vector<Vec2> pts = RandomWalk(&rng, 300, 10.0);
  const size_t fine = DouglasPeucker(pts, 1.0).size();
  const size_t coarse = DouglasPeucker(pts, 30.0).size();
  EXPECT_LT(coarse, fine);
}

TEST(OnePassTest, StraightLineCompressesHard) {
  std::vector<Vec2> pts;
  for (int i = 0; i <= 100; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const std::vector<Vec2> out = OnePassSimplifier::Simplify(pts, 0.5);
  EXPECT_LE(out.size(), 3u);
  EXPECT_EQ(out.front(), pts.front());
  EXPECT_EQ(out.back(), pts.back());
}

TEST(OnePassTest, PreservesEndpoints) {
  Rng rng(11);
  const std::vector<Vec2> pts = RandomWalk(&rng, 120, 8.0);
  const std::vector<Vec2> out = OnePassSimplifier::Simplify(pts, 10.0);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.front(), pts.front());
  EXPECT_EQ(out.back(), pts.back());
}

TEST(OnePassTest, PropertyErrorBoundHolds) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<Vec2> pts = RandomWalk(&rng, 250, 10.0);
    for (const double eps : {2.0, 8.0, 30.0}) {
      const std::vector<Vec2> out = OnePassSimplifier::Simplify(pts, eps);
      // The streaming sector method guarantees the bound up to the chord
      // approximation; allow a small slack factor.
      EXPECT_LE(MaxDeviation(pts, out), eps * 1.05 + 1e-9)
          << "trial " << trial << " eps " << eps;
    }
  }
}

TEST(OnePassTest, StreamingMatchesBatchCall) {
  Rng rng(17);
  const std::vector<Vec2> pts = RandomWalk(&rng, 150, 10.0);
  OnePassSimplifier s(5.0);
  std::vector<Vec2> streamed;
  for (const Vec2& p : pts) s.Push(p, &streamed);
  s.Finish(&streamed);
  EXPECT_EQ(streamed, OnePassSimplifier::Simplify(pts, 5.0));
}

TEST(OnePassTest, CompressesRealTrajectories) {
  TrajectoryGenerator gen(SpecFor(DatasetKind::kBeijingTaxi), 3);
  const Trajectory traj = gen.GenerateOne(500);
  const std::vector<Vec2> out =
      OnePassSimplifier::Simplify(traj.points(), 25.0);
  // Road-network motion compresses well below raw tick density.
  EXPECT_LT(out.size(), traj.size() / 2);
  EXPECT_LE(MaxDeviation(traj.points(), out), 25.0 * 1.05);
}

}  // namespace
}  // namespace proxdet
