#include "traj/trajectory.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

Trajectory MakeStraight() {
  // 1 m per tick along x, dt = 1 s.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({static_cast<double>(i), 0.0});
  return Trajectory(std::move(pts), 1.0);
}

TEST(TrajectoryTest, BasicAccessors) {
  const Trajectory t = MakeStraight();
  EXPECT_EQ(t.size(), 11u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.at(3), (Vec2{3, 0}));
  EXPECT_DOUBLE_EQ(t.dt(), 1.0);
}

TEST(TrajectoryTest, SpeedAndLength) {
  const Trajectory t = MakeStraight();
  EXPECT_DOUBLE_EQ(t.PathLength(), 10.0);
  EXPECT_DOUBLE_EQ(t.AverageSpeed(), 1.0);
  EXPECT_DOUBLE_EQ(t.SpeedAt(5), 1.0);
  EXPECT_DOUBLE_EQ(t.SpeedAt(0), 0.0);  // No previous point.
}

TEST(TrajectoryTest, HeadingUnitVector) {
  const Trajectory t = MakeStraight();
  EXPECT_EQ(t.HeadingAt(4), (Vec2{1, 0}));
  EXPECT_EQ(t.HeadingAt(0), (Vec2{0, 0}));
}

TEST(TrajectoryTest, Slice) {
  const Trajectory t = MakeStraight();
  const Trajectory s = t.Slice(2, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(0), (Vec2{2, 0}));
  EXPECT_EQ(s.at(2), (Vec2{4, 0}));
}

TEST(TrajectoryTest, SliceClampsAtEnd) {
  const Trajectory t = MakeStraight();
  const Trajectory s = t.Slice(9, 100);
  EXPECT_EQ(s.size(), 2u);
  const Trajectory empty = t.Slice(100, 5);
  EXPECT_TRUE(empty.empty());
}

TEST(TrajectoryTest, RecentWindow) {
  const Trajectory t = MakeStraight();
  const std::vector<Vec2> w = t.RecentWindow(5, 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.front(), (Vec2{3, 0}));
  EXPECT_EQ(w.back(), (Vec2{5, 0}));
}

TEST(TrajectoryTest, RecentWindowTruncatesNearStart) {
  const Trajectory t = MakeStraight();
  const std::vector<Vec2> w = t.RecentWindow(1, 5);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.front(), (Vec2{0, 0}));
}

TEST(TrajectoryTest, ResampleToFinerGrid) {
  const Trajectory t = MakeStraight();
  const Trajectory fine = t.ResampledTo(0.5);
  EXPECT_DOUBLE_EQ(fine.dt(), 0.5);
  EXPECT_EQ(fine.size(), 21u);
  EXPECT_EQ(fine.at(1), (Vec2{0.5, 0}));  // Linear interpolation.
}

TEST(TrajectoryTest, ResampleToCoarserGrid) {
  const Trajectory t = MakeStraight();
  const Trajectory coarse = t.ResampledTo(2.0);
  EXPECT_EQ(coarse.size(), 6u);
  EXPECT_EQ(coarse.at(1), (Vec2{2, 0}));
}

TEST(TrajectoryTest, ResamplePreservesEndpoints) {
  const Trajectory t = MakeStraight();
  const Trajectory r = t.ResampledTo(3.0);
  EXPECT_EQ(r.at(0), t.at(0));
  // Final sample lands at t=9 (10 not divisible by 3): within last segment.
  EXPECT_NEAR(r.points().back().x, 9.0, 1e-9);
}

}  // namespace
}  // namespace proxdet
