#include "graph/interest_graph.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

TEST(InterestGraphTest, AddAndQueryEdge) {
  InterestGraph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1, 100.0));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // Undirected.
  EXPECT_DOUBLE_EQ(g.AlertRadius(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(g.AlertRadius(1, 0), 100.0);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(InterestGraphTest, RejectsDuplicatesAndSelfLoops) {
  InterestGraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 10.0));
  EXPECT_FALSE(g.AddEdge(0, 1, 20.0));
  EXPECT_FALSE(g.AddEdge(1, 0, 20.0));
  EXPECT_FALSE(g.AddEdge(2, 2, 10.0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.AlertRadius(0, 1), 10.0);  // Original kept.
}

TEST(InterestGraphTest, RejectsOutOfRange) {
  InterestGraph g(2);
  EXPECT_FALSE(g.AddEdge(0, 5, 10.0));
  EXPECT_FALSE(g.AddEdge(-1, 1, 10.0));
}

TEST(InterestGraphTest, RemoveEdge) {
  InterestGraph g(3);
  g.AddEdge(0, 1, 10.0);
  g.AddEdge(1, 2, 10.0);
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.RemoveEdge(0, 1));  // Already gone.
}

TEST(InterestGraphTest, AlertRadiusZeroWhenAbsent) {
  InterestGraph g(2);
  EXPECT_DOUBLE_EQ(g.AlertRadius(0, 1), 0.0);
}

TEST(InterestGraphTest, EdgesListCanonical) {
  InterestGraph g(4);
  g.AddEdge(2, 1, 5.0);
  g.AddEdge(3, 0, 7.0);
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  // u < w per edge and sorted by (u, w).
  EXPECT_EQ(edges[0].u, 0);
  EXPECT_EQ(edges[0].w, 3);
  EXPECT_EQ(edges[1].u, 1);
  EXPECT_EQ(edges[1].w, 2);
}

TEST(InterestGraphTest, RandomGraphHitsTargetDegree) {
  Rng rng(42);
  const InterestGraph g = InterestGraph::Random(500, 12.0, 100.0, 200.0, &rng);
  EXPECT_EQ(g.user_count(), 500u);
  EXPECT_NEAR(g.AverageDegree(), 12.0, 1.0);
}

TEST(InterestGraphTest, RandomGraphEdgeRadiusIsMinOfPreferences) {
  Rng rng(43);
  const InterestGraph g = InterestGraph::Random(50, 5.0, 100.0, 200.0, &rng);
  for (const auto& e : g.Edges()) {
    EXPECT_DOUBLE_EQ(
        e.alert_radius,
        std::min(g.PreferredRadius(e.u), g.PreferredRadius(e.w)));
    EXPECT_GE(e.alert_radius, 100.0);
    EXPECT_LE(e.alert_radius, 200.0);
  }
}

TEST(InterestGraphTest, RandomGraphDeterministic) {
  Rng r1(7);
  Rng r2(7);
  const InterestGraph a = InterestGraph::Random(100, 6.0, 10.0, 20.0, &r1);
  const InterestGraph b = InterestGraph::Random(100, 6.0, 10.0, 20.0, &r2);
  const auto ea = a.Edges();
  const auto eb = b.Edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].u, eb[i].u);
    EXPECT_EQ(ea[i].w, eb[i].w);
  }
}

TEST(InterestGraphTest, FriendsOfListsNeighbors) {
  InterestGraph g(4);
  g.AddEdge(0, 1, 10.0);
  g.AddEdge(0, 2, 20.0);
  const auto& friends = g.FriendsOf(0);
  EXPECT_EQ(friends.size(), 2u);
  EXPECT_EQ(g.FriendsOf(3).size(), 0u);
}

}  // namespace
}  // namespace proxdet
