// The PROXDET_BENCH_JSON path convention every bench binary shares:
// "0" disables emission, unset/""/"1" resolve to the current directory,
// anything else is the target directory (with or without a trailing '/').

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "bench_support/bench_json.h"

namespace proxdet {
namespace {

class BenchJsonPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("PROXDET_BENCH_JSON");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  void TearDown() override {
    if (had_old_) {
      ::setenv("PROXDET_BENCH_JSON", old_.c_str(), 1);
    } else {
      ::unsetenv("PROXDET_BENCH_JSON");
    }
  }
  void Set(const char* value) { ::setenv("PROXDET_BENCH_JSON", value, 1); }
  void Unset() { ::unsetenv("PROXDET_BENCH_JSON"); }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST_F(BenchJsonPathTest, UnsetWritesToCurrentDirectory) {
  Unset();
  EXPECT_EQ(BenchJsonPath("BENCH_x.json"), "BENCH_x.json");
}

TEST_F(BenchJsonPathTest, ZeroDisablesEmission) {
  Set("0");
  EXPECT_EQ(BenchJsonPath("BENCH_x.json"), "");
}

TEST_F(BenchJsonPathTest, OneAndEmptyMeanCurrentDirectory) {
  Set("1");
  EXPECT_EQ(BenchJsonPath("BENCH_x.json"), "BENCH_x.json");
  Set("");
  EXPECT_EQ(BenchJsonPath("BENCH_x.json"), "BENCH_x.json");
}

TEST_F(BenchJsonPathTest, OtherValuesAreTargetDirectories) {
  Set("/tmp/artifacts");
  EXPECT_EQ(BenchJsonPath("BENCH_x.json"), "/tmp/artifacts/BENCH_x.json");
  // A trailing slash is not doubled.
  Set("/tmp/artifacts/");
  EXPECT_EQ(BenchJsonPath("BENCH_x.json"), "/tmp/artifacts/BENCH_x.json");
  // Relative directories pass through untouched.
  Set("out");
  EXPECT_EQ(BenchJsonPath("BENCH_x.json"), "out/BENCH_x.json");
}

TEST_F(BenchJsonPathTest, FilenameIsNotInterpreted) {
  Set("/tmp");
  EXPECT_EQ(BenchJsonPath("REPORT_fig9.json"), "/tmp/REPORT_fig9.json");
  Unset();
  EXPECT_EQ(BenchJsonPath("TRACE_net.json"), "TRACE_net.json");
}

}  // namespace
}  // namespace proxdet
