#include "common/table.h"

#include <gtest/gtest.h>

namespace proxdet {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("demo");
  t.SetHeader({"a", "bb"});
  t.AddRow({"1", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TableTest, CsvFormat) {
  Table t("demo");
  t.SetHeader({"x", "y"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "x,y\n1,2\n3,4\n");
}

TEST(TableTest, AlignsColumnsByWidestCell) {
  Table t("w");
  t.SetHeader({"col", "c"});
  t.AddRow({"longvalue", "1"});
  const std::string s = t.ToString();
  // The header row pads "col" to the width of "longvalue".
  EXPECT_NE(s.find("col       "), std::string::npos);
}

TEST(FormatDoubleTest, RespectsDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace proxdet
