#include "common/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace proxdet {
namespace {

TEST(MatrixTest, IdentityAndMultiply) {
  Matrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(0, 2) = 3;
  a.At(1, 0) = 4;
  a.At(1, 1) = 5;
  a.At(1, 2) = 6;
  const Matrix i3 = Matrix::Identity(3);
  const Matrix prod = a * i3;
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod.At(r, c), a.At(r, c));
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) a.At(r, c) = static_cast<double>(r * 3 + c);
  const Matrix att = a.Transpose().Transpose();
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(att.At(r, c), a.At(r, c));
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.0);
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum.At(1, 1), 3.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff.At(0, 0), 1.0);
  const Matrix scaled = b.Scaled(2.5);
  EXPECT_DOUBLE_EQ(scaled.At(0, 1), 5.0);
}

TEST(MatrixTest, ApplyMatchesManual) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  const std::vector<double> v{5.0, 6.0};
  const std::vector<double> out = a.Apply(v);
  EXPECT_DOUBLE_EQ(out[0], 17.0);
  EXPECT_DOUBLE_EQ(out[1], 39.0);
}

TEST(SolveTest, Solves2x2) {
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, {5.0, 10.0}, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveTest, RejectsSingular) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}, &x));
}

TEST(SolveTest, NeedsPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, {2.0, 3.0}, &x));
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveTest, RandomSystemsRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextIndex(6);
    Matrix a(n, n);
    std::vector<double> truth(n);
    for (size_t r = 0; r < n; ++r) {
      truth[r] = rng.Uniform(-5, 5);
      for (size_t c = 0; c < n; ++c) a.At(r, c) = rng.Uniform(-5, 5);
      a.At(r, r) += 10.0;  // Diagonally dominant: well-conditioned.
    }
    const std::vector<double> b = a.Apply(truth);
    std::vector<double> x;
    ASSERT_TRUE(SolveLinearSystem(a, b, &x));
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-8);
  }
}

TEST(InvertTest, InverseTimesSelfIsIdentity) {
  Matrix a(3, 3);
  Rng rng(9);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a.At(r, c) = rng.Uniform(-2, 2);
    a.At(r, r) += 5.0;
  }
  Matrix inv;
  ASSERT_TRUE(Invert(a, &inv));
  const Matrix prod = a * inv;
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(prod.At(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(RidgeTest, RecoverOverdeterminedFit) {
  // y = 2x + 1 sampled exactly: ridge with tiny lambda recovers it.
  Matrix a(5, 2);
  std::vector<double> b(5);
  for (int i = 0; i < 5; ++i) {
    a.At(i, 0) = i;
    a.At(i, 1) = 1.0;
    b[i] = 2.0 * i + 1.0;
  }
  std::vector<double> x;
  ASSERT_TRUE(RidgeLeastSquares(a, b, 1e-9, &x));
  EXPECT_NEAR(x[0], 2.0, 1e-5);
  EXPECT_NEAR(x[1], 1.0, 1e-4);
}

TEST(RidgeTest, RegularizationShrinksSolution) {
  Matrix a(3, 1);
  a.At(0, 0) = 1;
  a.At(1, 0) = 1;
  a.At(2, 0) = 1;
  std::vector<double> weak;
  std::vector<double> strong;
  ASSERT_TRUE(RidgeLeastSquares(a, {3.0, 3.0, 3.0}, 1e-9, &weak));
  ASSERT_TRUE(RidgeLeastSquares(a, {3.0, 3.0, 3.0}, 10.0, &strong));
  EXPECT_NEAR(weak[0], 3.0, 1e-6);
  EXPECT_LT(strong[0], weak[0]);
}

}  // namespace
}  // namespace proxdet
