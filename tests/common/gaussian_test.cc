#include "common/gaussian.h"

#include <gtest/gtest.h>

#include <cmath>

namespace proxdet {
namespace {

TEST(GaussianTest, PdfPeakAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_GT(NormalPdf(0.0), NormalPdf(0.5));
  EXPECT_DOUBLE_EQ(NormalPdf(1.0), NormalPdf(-1.0));
}

TEST(GaussianTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(FoldedNormalTest, ZeroAndNegativeRadius) {
  EXPECT_EQ(FoldedNormalCdf(0.0, 10.0), 0.0);
  EXPECT_EQ(FoldedNormalCdf(-5.0, 10.0), 0.0);
}

TEST(FoldedNormalTest, PerfectPredictorSaturates) {
  // sigma = 0 means the prediction never misses: any positive radius holds.
  EXPECT_EQ(FoldedNormalCdf(1e-9, 0.0), 1.0);
}

TEST(FoldedNormalTest, KnownQuantiles) {
  // P(|N(0,1)| <= 1) = erf(1/sqrt(2)) ~= 0.6827.
  EXPECT_NEAR(FoldedNormalCdf(1.0, 1.0), 0.682689492, 1e-8);
  EXPECT_NEAR(FoldedNormalCdf(2.0, 1.0), 0.954499736, 1e-8);
}

TEST(FoldedNormalTest, MonotoneInRadius) {
  double prev = 0.0;
  for (double s = 0.1; s < 5.0; s += 0.1) {
    const double p = FoldedNormalCdf(s, 1.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(FoldedNormalTest, ScalesWithSigma) {
  EXPECT_NEAR(FoldedNormalCdf(10.0, 10.0), FoldedNormalCdf(1.0, 1.0), 1e-12);
}

TEST(FoldedNormalTest, TendsToOne) {
  EXPECT_NEAR(FoldedNormalCdf(100.0, 1.0), 1.0, 1e-12);
}

TEST(FoldedNormalQuantileTest, InvertsCdf) {
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double s = FoldedNormalQuantile(p, 3.0);
    EXPECT_NEAR(FoldedNormalCdf(s, 3.0), p, 1e-6);
  }
}

TEST(FoldedNormalQuantileTest, Extremes) {
  EXPECT_EQ(FoldedNormalQuantile(0.0, 2.0), 0.0);
  EXPECT_GT(FoldedNormalQuantile(1.0, 2.0), 10.0);
}

}  // namespace
}  // namespace proxdet
