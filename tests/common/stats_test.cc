#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace proxdet {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Population variance.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.1;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenValues) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 2.0), 2.0);
}

TEST(EwmaTest, SeedsWithFirstValue) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.Add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesTowardConstant) {
  Ewma e(0.3);
  e.Add(0.0);
  for (int i = 0; i < 50; ++i) e.Add(8.0);
  EXPECT_NEAR(e.value(), 8.0, 1e-6);
}

}  // namespace
}  // namespace proxdet
