#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace proxdet {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.5, 12.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 12.25);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, WeightedIndexDegenerateAllZeros) {
  Rng rng(29);
  const std::vector<double> weights{0.0, 0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), 2u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream must not replay the parent's.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextIndexStaysBelowBound) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextIndex(17), 17u);
}

}  // namespace
}  // namespace proxdet
