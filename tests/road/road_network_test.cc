#include "road/road_network.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proxdet {
namespace {

TEST(RoadNetworkTest, ManualGraphShortestPath) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({10, 0});
  const NodeId c = net.AddNode({10, 10});
  const NodeId d = net.AddNode({0, 10});
  net.AddBidirectionalEdge(a, b, RoadClass::kLocal);
  net.AddBidirectionalEdge(b, c, RoadClass::kLocal);
  net.AddBidirectionalEdge(c, d, RoadClass::kLocal);
  net.AddBidirectionalEdge(a, d, RoadClass::kLocal);
  const std::vector<NodeId> path = net.ShortestPath(a, c);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), c);
}

TEST(RoadNetworkTest, ShortestPathPrefersShorterGeometry) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId detour = net.AddNode({0, 50});
  const NodeId b = net.AddNode({10, 0});
  net.AddBidirectionalEdge(a, detour, RoadClass::kLocal);
  net.AddBidirectionalEdge(detour, b, RoadClass::kLocal);
  net.AddBidirectionalEdge(a, b, RoadClass::kLocal);
  const std::vector<NodeId> path = net.ShortestPath(a, b);
  ASSERT_EQ(path.size(), 2u);  // Direct edge wins.
}

TEST(RoadNetworkTest, UnreachableReturnsEmpty) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({10, 0});
  EXPECT_TRUE(net.ShortestPath(a, b).empty());
}

TEST(RoadNetworkTest, PathToSelf) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const std::vector<NodeId> path = net.ShortestPath(a, a);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], a);
}

TEST(RoadNetworkTest, CityGridIsConnected) {
  Rng rng(1);
  const RoadNetwork net = RoadNetwork::MakeCityGrid(8, 9, 100.0, 3, 5.0, &rng);
  EXPECT_EQ(net.node_count(), 72u);
  // Grid edges: rows*(cols-1) + (rows-1)*cols.
  EXPECT_EQ(net.edge_count(), 8u * 8 + 7 * 9);
  // Every pair sampled must be reachable.
  Rng pick(2);
  for (int i = 0; i < 20; ++i) {
    const NodeId a = net.RandomNode(&pick);
    const NodeId b = net.RandomNode(&pick);
    EXPECT_FALSE(net.ShortestPath(a, b).empty());
  }
}

TEST(RoadNetworkTest, CityGridHasArterials) {
  Rng rng(1);
  const RoadNetwork net = RoadNetwork::MakeCityGrid(6, 6, 100.0, 2, 0.0, &rng);
  int arterials = 0;
  for (size_t n = 0; n < net.node_count(); ++n) {
    for (const RoadEdge& e : net.edges_from(static_cast<NodeId>(n))) {
      if (e.road_class == RoadClass::kArterial) ++arterials;
    }
  }
  EXPECT_GT(arterials, 0);
}

TEST(RoadNetworkTest, HighwaySkeletonConnected) {
  Rng rng(3);
  const BBox extent{{0, 0}, {50000, 50000}};
  const RoadNetwork net = RoadNetwork::MakeHighwaySkeleton(extent, 5, 30, &rng);
  EXPECT_EQ(net.node_count(), 150u);
  Rng pick(4);
  for (int i = 0; i < 15; ++i) {
    const NodeId a = net.RandomNode(&pick);
    const NodeId b = net.RandomNode(&pick);
    EXPECT_FALSE(net.ShortestPath(a, b).empty());
  }
}

TEST(RoadNetworkTest, HighwayEdgesDominateSkeleton) {
  Rng rng(5);
  const BBox extent{{0, 0}, {50000, 50000}};
  const RoadNetwork net = RoadNetwork::MakeHighwaySkeleton(extent, 4, 25, &rng);
  int highway = 0;
  int other = 0;
  for (size_t n = 0; n < net.node_count(); ++n) {
    for (const RoadEdge& e : net.edges_from(static_cast<NodeId>(n))) {
      (e.road_class == RoadClass::kHighway ? highway : other) += 1;
    }
  }
  EXPECT_GT(highway, other);
}

TEST(RoadNetworkTest, NearestNode) {
  RoadNetwork net;
  net.AddNode({0, 0});
  const NodeId b = net.AddNode({10, 0});
  net.AddNode({20, 0});
  EXPECT_EQ(net.NearestNode({11, 1}), b);
}

TEST(RoadNetworkTest, PathGeometryMatchesNodes) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({10, 0});
  net.AddBidirectionalEdge(a, b, RoadClass::kHighway);
  const Polyline geom = net.PathGeometry(net.ShortestPath(a, b));
  EXPECT_DOUBLE_EQ(geom.Length(), 10.0);
  EXPECT_EQ(net.EdgeClass(a, b), RoadClass::kHighway);
  EXPECT_EQ(net.EdgeClass(b, a), RoadClass::kHighway);
}

TEST(RoadNetworkTest, ExtentCoversAllNodes) {
  Rng rng(7);
  const RoadNetwork net = RoadNetwork::MakeCityGrid(5, 5, 200.0, 0, 10.0, &rng);
  for (size_t n = 0; n < net.node_count(); ++n) {
    EXPECT_TRUE(net.extent().Contains(net.node_position(static_cast<NodeId>(n))));
  }
}

}  // namespace
}  // namespace proxdet
