// The parallel experiment engine's headline guarantee: byte-identical
// results for PROXDET_THREADS=1 and =N. These tests run the same work
// under a 1-thread and a 4-thread global pool and demand bit-exact
// equality of everything except wall-clock fields.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_support/sweep_runner.h"
#include "common/rng.h"
#include "core/simulation.h"
#include "exec/thread_pool.h"
#include "predict/evaluator.h"

namespace proxdet {
namespace {

WorkloadConfig TinyConfig(size_t num_users) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = num_users;
  config.epochs = 30;
  config.training_users = 16;
  config.training_epochs = 60;
  return config;
}

// Restores the default global pool even when an assertion fails mid-test.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() {
    ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
  }
};

TEST(DeterminismTest, GroundTruthIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  Workload workload = BuildWorkload(TinyConfig(60));
  // Exercise the dynamic-graph path too: the per-pair replay must handle
  // scheduled inserts identically in serial and parallel runs.
  Rng rng(77);
  for (int epoch = 2; epoch < 30; epoch += 3) {
    const UserId u = static_cast<UserId>(rng.NextIndex(60));
    const UserId w = static_cast<UserId>(rng.NextIndex(60));
    if (u == w) continue;
    workload.world.ScheduleUpdate(
        {epoch, true, u, w, workload.config.alert_radius_m});
  }

  ThreadPool::SetGlobalThreads(1);
  const std::vector<AlertEvent> serial = workload.world.GroundTruthAlerts();
  ThreadPool::SetGlobalThreads(4);
  const std::vector<AlertEvent> parallel = workload.world.GroundTruthAlerts();

  EXPECT_FALSE(serial.empty());
  EXPECT_TRUE(serial == parallel);
}

TEST(DeterminismTest, CalibrationIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const Workload workload = BuildWorkload(TinyConfig(40));

  ThreadPool::SetGlobalThreads(1);
  const auto serial_model =
      MakeTrainedPredictor(PredictorKind::kKalman, workload);
  Rng serial_rng(9);
  const std::vector<double> serial_sigma = CalibrateCrossTrackSigmaPerStep(
      serial_model.get(), workload.training, 10, 8, 40, &serial_rng);

  ThreadPool::SetGlobalThreads(4);
  const auto parallel_model =
      MakeTrainedPredictor(PredictorKind::kKalman, workload);
  Rng parallel_rng(9);
  const std::vector<double> parallel_sigma = CalibrateCrossTrackSigmaPerStep(
      parallel_model.get(), workload.training, 10, 8, 40, &parallel_rng);

  ASSERT_EQ(serial_sigma.size(), parallel_sigma.size());
  for (size_t i = 0; i < serial_sigma.size(); ++i) {
    // Bit-exact, not approximately equal: the grid tuning and the per-query
    // fan-out merge in slot order, so no float may differ.
    EXPECT_EQ(serial_sigma[i], parallel_sigma[i]) << "step " << i;
  }
}

// The in-epoch parallelism (SafeRegionExitPhase / MatchRegionPhase /
// PerEpochPairCheck scans, Naive's edge scan): every paper method on a
// dynamic-graph workload must produce identical decisions — not just the
// same alert *count* — under 1- and 4-thread pools. alerts_exact pins both
// streams to the same oracle, so equal counts + exact == equal streams.
TEST(DeterminismTest, DetectorEpochLoopIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  Workload workload = BuildWorkload(TinyConfig(60));
  // Interleave inserts and deletes so the edge-cache invalidation path and
  // match-dissolution on removal run under both pools.
  Rng rng(123);
  std::vector<std::pair<UserId, UserId>> inserted;
  for (int epoch = 1; epoch < 28; epoch += 2) {
    const UserId u = static_cast<UserId>(rng.NextIndex(60));
    const UserId w = static_cast<UserId>(rng.NextIndex(60));
    if (u == w) continue;
    if (epoch % 6 == 5 && !inserted.empty()) {
      const auto& pair = inserted[rng.NextIndex(inserted.size())];
      workload.world.ScheduleUpdate({epoch, false, pair.first, pair.second,
                                     workload.config.alert_radius_m});
    } else {
      workload.world.ScheduleUpdate(
          {epoch, true, u, w, workload.config.alert_radius_m});
      inserted.push_back({u, w});
    }
  }

  for (const Method method : PaperMethodSet()) {
    ThreadPool::SetGlobalThreads(1);
    const RunResult serial = RunMethod(method, workload);
    ThreadPool::SetGlobalThreads(4);
    const RunResult parallel = RunMethod(method, workload);

    const std::string name = MethodName(method);
    EXPECT_TRUE(serial.stats.SameMessageCounts(parallel.stats))
        << name << ": serial " << serial.stats << " vs parallel "
        << parallel.stats;
    EXPECT_EQ(serial.stats.reports, parallel.stats.reports) << name;
    EXPECT_EQ(serial.stats.probes, parallel.stats.probes) << name;
    EXPECT_EQ(serial.stats.alerts, parallel.stats.alerts) << name;
    EXPECT_EQ(serial.stats.region_installs, parallel.stats.region_installs)
        << name;
    EXPECT_EQ(serial.stats.match_installs, parallel.stats.match_installs)
        << name;
    EXPECT_EQ(serial.rebuild_count, parallel.rebuild_count) << name;
    EXPECT_EQ(serial.alert_count, parallel.alert_count) << name;
    EXPECT_TRUE(serial.alerts_exact) << name;
    EXPECT_TRUE(parallel.alerts_exact) << name;
  }
}

std::vector<std::vector<RunResult>> RunTinySweep() {
  SweepRunner runner("determinism_test",
                     std::vector<Method>{Method::kStatic, Method::kCmd,
                                         Method::kStripeKf});
  for (const size_t users : {size_t{40}, size_t{60}}) {
    runner.AddPoint("Truck", std::to_string(users), TinyConfig(users));
  }
  return runner.Run();
}

TEST(DeterminismTest, SweepResultsIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  ThreadPool::SetGlobalThreads(1);
  const std::vector<std::vector<RunResult>> serial = RunTinySweep();
  ThreadPool::SetGlobalThreads(4);
  const std::vector<std::vector<RunResult>> parallel = RunTinySweep();

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(serial[p].size(), parallel[p].size());
    for (size_t c = 0; c < serial[p].size(); ++c) {
      const RunResult& a = serial[p][c];
      const RunResult& b = parallel[p][c];
      EXPECT_EQ(a.method, b.method);
      EXPECT_TRUE(a.stats.SameMessageCounts(b.stats))
          << p << "," << c << ": serial " << a.stats << " vs parallel "
          << b.stats;
      EXPECT_EQ(a.stats.reports, b.stats.reports) << p << "," << c;
      EXPECT_EQ(a.stats.probes, b.stats.probes) << p << "," << c;
      EXPECT_EQ(a.stats.alerts, b.stats.alerts) << p << "," << c;
      EXPECT_EQ(a.stats.region_installs, b.stats.region_installs)
          << p << "," << c;
      EXPECT_EQ(a.stats.match_installs, b.stats.match_installs)
          << p << "," << c;
      EXPECT_EQ(a.alert_count, b.alert_count) << p << "," << c;
      // Every cell's alert stream matched ground truth in both runs — the
      // alert-stream equality half of the determinism guarantee. (Run()
      // would have aborted otherwise; assert it anyway.)
      EXPECT_TRUE(a.alerts_exact) << p << "," << c;
      EXPECT_TRUE(b.alerts_exact) << p << "," << c;
      // stats.server_seconds is wall-clock and deliberately not compared.
    }
  }
}

}  // namespace
}  // namespace proxdet
