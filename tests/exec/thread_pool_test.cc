#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace proxdet {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::mutex m;
  std::condition_variable cv;
  int done = 0;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(m);
      if (++done == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(done, kTasks);
}

// Every index in [0, n) is claimed exactly once, whatever the pool size
// (including the single-thread pool, which runs the loop inline).
TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<int> hits(n, 0);
      // Each index is claimed by exactly one thread, so the unsynchronized
      // increment of its own slot is race-free.
      ParallelFor(pool, n, [&](size_t i) { ++hits[i]; });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "threads=" << threads << " n=" << n
                              << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesSlotOrder) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::vector<size_t> out =
        ParallelMap<size_t>(pool, 500, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 500u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * i);
    }
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(ParallelFor(pool, 100,
                             [](size_t i) {
                               if (i == 37) throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
  }
}

// Nested ParallelFor must not deadlock even when the outer loop saturates
// the pool: the inner call's caller drains its own iteration space.
TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 16;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  ParallelFor(pool, kOuter, [&](size_t i) {
    ParallelFor(pool, kInner, [&, i](size_t j) { ++hits[i][j]; });
  });
  for (size_t i = 0; i < kOuter; ++i) {
    for (size_t j = 0; j < kInner; ++j) {
      ASSERT_EQ(hits[i][j], 1) << "cell " << i << "," << j;
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunkedCoversEveryIndexOnce) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    // Sizes probing the chunking edges: empty, smaller than one grain, an
    // exact multiple of the grain, and a ragged final chunk.
    for (const size_t n : {size_t{0}, size_t{5}, size_t{192}, size_t{1000}}) {
      std::vector<int> hits(n, 0);
      ParallelForChunked(pool, n, 64, [&](size_t lo, size_t hi) {
        ASSERT_LT(lo, hi);
        ASSERT_LE(hi, n);
        ASSERT_LE(hi - lo, 64u);
        for (size_t i = lo; i < hi; ++i) ++hits[i];
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunkedZeroGrainTreatedAsOne) {
  ThreadPool pool(4);
  std::atomic<size_t> covered{0};
  ParallelForChunked(pool, 10, 0, [&](size_t lo, size_t hi) {
    covered.fetch_add(hi - lo);
  });
  EXPECT_EQ(covered.load(), 10u);
}

// Chunk boundaries are a pure function of (n, grain): slot-addressed
// writes merge identically for any thread count.
TEST(ThreadPoolTest, ParallelForChunkedDeterministicBoundaries) {
  auto boundaries = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<size_t, size_t>> out(
        (1000 + 63) / 64, {0, 0});
    std::mutex mu;
    ParallelForChunked(pool, 1000, 64, [&](size_t lo, size_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      out[lo / 64] = {lo, hi};
    });
    return out;
  };
  EXPECT_EQ(boundaries(1), boundaries(4));
}

TEST(ThreadPoolTest, SetGlobalThreadsRebuildsGlobalPool) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().thread_count(), 3u);
  std::atomic<int> count{0};
  ParallelFor(100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace proxdet
