#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace proxdet {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::mutex m;
  std::condition_variable cv;
  int done = 0;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(m);
      if (++done == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(done, kTasks);
}

// Every index in [0, n) is claimed exactly once, whatever the pool size
// (including the single-thread pool, which runs the loop inline).
TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<int> hits(n, 0);
      // Each index is claimed by exactly one thread, so the unsynchronized
      // increment of its own slot is race-free.
      ParallelFor(pool, n, [&](size_t i) { ++hits[i]; });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "threads=" << threads << " n=" << n
                              << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesSlotOrder) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::vector<size_t> out =
        ParallelMap<size_t>(pool, 500, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 500u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * i);
    }
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(ParallelFor(pool, 100,
                             [](size_t i) {
                               if (i == 37) throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
  }
}

// Nested ParallelFor must not deadlock even when the outer loop saturates
// the pool: the inner call's caller drains its own iteration space.
TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 16;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  ParallelFor(pool, kOuter, [&](size_t i) {
    ParallelFor(pool, kInner, [&, i](size_t j) { ++hits[i][j]; });
  });
  for (size_t i = 0; i < kOuter; ++i) {
    for (size_t j = 0; j < kInner; ++j) {
      ASSERT_EQ(hits[i][j], 1) << "cell " << i << "," << j;
    }
  }
}

TEST(ThreadPoolTest, SetGlobalThreadsRebuildsGlobalPool) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().thread_count(), 3u);
  std::atomic<int> count{0};
  ParallelFor(100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace proxdet
