#!/usr/bin/env bash
# TSan gate for the in-epoch parallelism: configures a separate build tree
# with -DPROXDET_SANITIZE=thread, builds it, and runs the `sanitize`-,
# `net`- and `obs`-labelled suites (thread-pool + determinism tests, the
# wire/transport suite whose transported runs drive the network link while
# the engine scans fan out, and the observability suite whose
# relaxed-atomic counters and mutex-guarded sketches are written from
# those same scans) under a multi-thread global pool. The
# parallel-scan/serial-commit pattern is only safe if the scans are
# genuinely read-only and the link is only touched from commit sections —
# TSan is the check that they are.
#
#   scripts/check.sh [extra cmake args...]
#
# BUILD_DIR overrides the build tree (default: build-tsan, kept separate
# from the plain `build` tree so the two configurations never fight).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tsan}"
JOBS="$(nproc)"

cmake -B "$BUILD_DIR" -S . -DPROXDET_SANITIZE=thread "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
PROXDET_THREADS="${PROXDET_THREADS:-4}" \
  ctest --test-dir "$BUILD_DIR" -L 'sanitize|net|obs' --output-on-failure -j "$JOBS"
