#!/usr/bin/env bash
# TSan gate for the in-epoch parallelism: configures a separate build tree
# with -DPROXDET_SANITIZE=thread, builds it, and runs the `sanitize`-,
# `net`-, `obs`-, `shard`- and `index`-labelled suites (thread-pool +
# determinism tests, the wire/transport suite whose transported runs drive
# the network link while the engine scans fan out, the observability suite
# whose relaxed-atomic counters and mutex-guarded sketches are written
# from those same scans, the sharded serving plane whose frontend is only
# driven from serial commit sections, and the spatial-index suite whose
# grid buckets are read by the parallel candidate scans while all
# maintenance stays serial) under a multi-thread global pool.
# The parallel-scan/serial-commit pattern is only safe if the scans are
# genuinely read-only and the link is only touched from commit sections —
# TSan is the check that they are.
#
# A second leg configures a tree with -DPROXDET_OBS=OFF and runs the same
# labelled suites there: every counter/histogram/trace call site must
# compile and behave identically against the noop observability surface
# (the shard frontend's per-shard counters and batch-fill histogram
# included).
#
# A third leg configures a tree with -DPROXDET_SIMD=OFF: the scalar-only
# build of the geometry kernels must pass the same suites (the simd suite
# collapses to scalar-vs-scalar identity there, and the detector/index
# properties prove the engines are backend-agnostic).
#
# The `socket`-labelled suite (the real-socket UDP backend) runs in every
# labelled leg, most importantly the TSan tree: the epoll loop threads only
# move bytes while the driver thread owns all protocol state, and TSan is
# the proof that the handoff queues are the only shared surface. Socket
# tests skip themselves where socket(2)/bind are unavailable, so the legs
# stay green in sandboxes that forbid networking.
#
# The `latency`-labelled suite (causal tracing + detect->deliver latency
# accounting) also runs in every labelled leg: the tracker is fed from the
# same serial commit sections as the link, and its deterministic digest
# invariance across thread counts is exactly the property TSan and the
# OBS-OFF build must not perturb.
#
# A fourth leg runs the `simd` and `index` suites under
# -DPROXDET_SANITIZE=undefined: the branchless lane arithmetic in the
# vector kernels (masked selects, safe-divisor guards) must not hide UB —
# every lane's intermediate math has to be well-defined even where a mask
# discards it.
#
#   scripts/check.sh [extra cmake args...]
#
# BUILD_DIR / OBS_OFF_BUILD_DIR / SIMD_OFF_BUILD_DIR / UBSAN_BUILD_DIR
# override the build trees (defaults: build-tsan, build-obs-off,
# build-simd-off and build-ubsan, kept separate from the plain `build`
# tree so the configurations never fight).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tsan}"
OBS_OFF_BUILD_DIR="${OBS_OFF_BUILD_DIR:-build-obs-off}"
SIMD_OFF_BUILD_DIR="${SIMD_OFF_BUILD_DIR:-build-simd-off}"
UBSAN_BUILD_DIR="${UBSAN_BUILD_DIR:-build-ubsan}"
JOBS="$(nproc)"
LABELS='sanitize|net|obs|shard|index|simd|socket|latency|scale'

cmake -B "$BUILD_DIR" -S . -DPROXDET_SANITIZE=thread "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
PROXDET_THREADS="${PROXDET_THREADS:-4}" \
  ctest --test-dir "$BUILD_DIR" -L "$LABELS" --output-on-failure -j "$JOBS"

cmake -B "$OBS_OFF_BUILD_DIR" -S . -DPROXDET_OBS=OFF "$@"
cmake --build "$OBS_OFF_BUILD_DIR" -j "$JOBS"
ctest --test-dir "$OBS_OFF_BUILD_DIR" -L "$LABELS" --output-on-failure -j "$JOBS"

cmake -B "$SIMD_OFF_BUILD_DIR" -S . -DPROXDET_SIMD=OFF "$@"
cmake --build "$SIMD_OFF_BUILD_DIR" -j "$JOBS"
ctest --test-dir "$SIMD_OFF_BUILD_DIR" -L "$LABELS" --output-on-failure -j "$JOBS"

cmake -B "$UBSAN_BUILD_DIR" -S . -DPROXDET_SANITIZE=undefined "$@"
cmake --build "$UBSAN_BUILD_DIR" -j "$JOBS"
ctest --test-dir "$UBSAN_BUILD_DIR" -L 'simd|index' --output-on-failure -j "$JOBS"
