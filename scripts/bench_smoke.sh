#!/usr/bin/env bash
# Observability smoke test for the bench binaries: runs a quick-mode bench
# subset with JSON emission pointed at a scratch directory, then checks
# that every artifact — BENCH_* snapshots, REPORT_* run reports and the
# TRACE_* Chrome trace — parses as valid JSON, that the net bench's
# counter-vs-CommStats reconciliation verdict is "exact" (the bench aborts
# on mismatch, but assert it here too), and that the trace actually holds
# spans. This is the cheap end-to-end proof that the observability layer
# stays wired up; scripts/check.sh is the race check, ctest -L obs the
# unit/integration suite.
#
#   scripts/bench_smoke.sh [build-dir]    (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

# Quick-mode sweeps, artifacts into the scratch dir. micro_detector also
# enforces the deterministic-metrics digest across its thread sweep;
# micro_net emits TRACE_net.json + REPORT_net.json and exits non-zero if
# its counters fail to reconcile with CommStats.
for bench in fig9_friends micro_detector micro_net; do
  echo "== $bench (quick) =="
  PROXDET_QUICK=1 PROXDET_BENCH_JSON="$OUT" "$BUILD_DIR/bench/$bench" \
    > /dev/null
done

shopt -s nullglob
artifacts=("$OUT"/*.json)
if [[ ${#artifacts[@]} -eq 0 ]]; then
  echo "FAIL: no JSON artifacts emitted" >&2
  exit 1
fi
for artifact in "${artifacts[@]}"; do
  if ! python3 -m json.tool "$artifact" > /dev/null; then
    echo "FAIL: $artifact is not valid JSON" >&2
    exit 1
  fi
  echo "ok: $(basename "$artifact")"
done

for required in TRACE_net.json REPORT_net.json; do
  if [[ ! -f "$OUT/$required" ]]; then
    echo "FAIL: expected artifact $required was not emitted" >&2
    exit 1
  fi
done

if ! grep -q '"counters_reconcile": "exact"' "$OUT/REPORT_net.json"; then
  echo "FAIL: REPORT_net.json reconciliation verdict is not \"exact\"" >&2
  exit 1
fi
if ! grep -q '"ph": "X"' "$OUT/TRACE_net.json"; then
  echo "FAIL: TRACE_net.json holds no complete spans" >&2
  exit 1
fi

echo "bench smoke OK: ${#artifacts[@]} artifacts valid in $OUT"
