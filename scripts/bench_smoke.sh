#!/usr/bin/env bash
# Observability smoke test for the bench binaries: runs a quick-mode bench
# subset with JSON emission pointed at a scratch directory, then checks
# that every artifact — BENCH_* snapshots, REPORT_* run reports and the
# TRACE_* Chrome trace — parses as valid JSON, that the net bench's
# counter-vs-CommStats reconciliation verdict is "exact" (the bench aborts
# on mismatch, but assert it here too), and that the trace actually holds
# spans. This is the cheap end-to-end proof that the observability layer
# stays wired up; scripts/check.sh is the race check, ctest -L obs the
# unit/integration suite.
#
#   scripts/bench_smoke.sh [build-dir]    (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

# Quick-mode sweeps, artifacts into the scratch dir. micro_detector also
# enforces the deterministic-metrics digest across its thread sweep;
# micro_net emits TRACE_net.json + REPORT_net.json and exits non-zero if
# its counters fail to reconcile with CommStats; micro_index exits
# non-zero unless the grid is bit-exact with the exhaustive scan across
# its whole method x threads x shards matrix AND wins superlinearly over
# its user sweep.
# micro_socket runs the detector pipeline over real UDP loopback sockets
# and FATALs unless every method's alerts and message counts match the
# in-process and SimNet runs (and the loss cell loses no alerts).
# micro_latency runs traced cells (SimNet virtual + UDP wall clock) and
# FATALs unless the detect->deliver tracker reconciles with CommStats
# alert counts to the unit and the live stats endpoint answers.
for bench in fig9_friends micro_detector micro_net micro_index micro_socket \
             micro_latency micro_scale; do
  echo "== $bench (quick) =="
  PROXDET_QUICK=1 PROXDET_BENCH_JSON="$OUT" "$BUILD_DIR/bench/$bench" \
    > /dev/null
done

shopt -s nullglob
artifacts=("$OUT"/*.json)
if [[ ${#artifacts[@]} -eq 0 ]]; then
  echo "FAIL: no JSON artifacts emitted" >&2
  exit 1
fi
for artifact in "${artifacts[@]}"; do
  if ! python3 -m json.tool "$artifact" > /dev/null; then
    echo "FAIL: $artifact is not valid JSON" >&2
    exit 1
  fi
  echo "ok: $(basename "$artifact")"
done

for required in TRACE_net.json REPORT_net.json BENCH_index.json \
                BENCH_socket.json BENCH_latency.json BENCH_scale.json; do
  if [[ ! -f "$OUT/$required" ]]; then
    echo "FAIL: expected artifact $required was not emitted" >&2
    exit 1
  fi
done

# BENCH_index.json schema: the spatial-index gate must carry its oracle
# verdict and the superlinear sweep + parity matrix it was judged on.
python3 - "$OUT/BENCH_index.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("figure") == "index", "figure != index"
assert doc.get("oracle_exact") is True, "oracle_exact is not true"
assert doc.get("speedup_ratio_largest_vs_smallest", 0) >= 3.0, \
    "speedup ratio below the superlinear gate"
assert doc["sweep"], "empty sweep"
for row in doc["sweep"]:
    assert row["bit_exact"] is True, f"sweep row not bit-exact: {row}"
assert doc["parity"], "empty parity matrix"
for row in doc["parity"]:
    assert row["oracle_exact"] is True, f"parity row diverged: {row}"
modes = {(r["mode"], r["value"]) for r in doc["parity"]}
for want in [("threads", 1), ("threads", 2), ("threads", 4), ("threads", 8),
             ("shards", 1), ("shards", 2), ("shards", 4)]:
    assert want in modes, f"parity matrix missing {want}"
assert doc["alloc"], "empty alloc probe"
EOF
echo "ok: BENCH_index.json schema + oracle parity"

# BENCH_socket.json schema: the socket bench must carry its parity verdict
# (UDP loopback bit-exact with the in-process engine AND the SimNet
# oracle), a live loss cell, and a throughput sweep with real RTT sketches
# (p99 > 0) whose byte counters reconciled with CommStats. On hosts where
# socket(2) is forbidden the bench writes {"udp_available": false} and the
# schema only checks the stub shape.
python3 - "$OUT/BENCH_socket.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("figure") == "socket", "figure != socket"
for key in ("udp_available", "parity", "loss", "throughput"):
    assert key in doc, f"missing field {key}"
if doc["udp_available"]:
    assert doc["backend"] in ("epoll", "poll"), "unknown readiness backend"
    assert doc["parity"], "empty parity matrix"
    for row in doc["parity"]:
        assert row["alerts_exact"] is True, f"parity row lost alerts: {row}"
        assert row["same_counts_vs_inprocess"] is True, \
            f"parity row diverged from in-process: {row}"
        assert row["same_counts_vs_simnet"] is True, \
            f"parity row diverged from SimNet oracle: {row}"
        assert row["shards"] >= 2, "parity must exercise the sharded plane"
    assert doc["loss"], "empty loss cell"
    for row in doc["loss"]:
        assert row["alerts_exact"] is True, f"loss row lost alerts: {row}"
        assert row["drops"] > 0 and row["retransmits"] > 0, \
            f"loss row induced nothing: {row}"
    assert doc["throughput"], "empty throughput sweep"
    assert any(r["shards"] >= 2 for r in doc["throughput"]), \
        "throughput sweep never sharded"
    for row in doc["throughput"]:
        assert row["frames_per_s"] > 0, f"dead throughput row: {row}"
        assert row["rtt_p99_s"] > 0, f"no RTT samples: {row}"
        assert row["rtt_p99_s"] >= row["rtt_p50_s"], f"p99 < p50: {row}"
        assert row["reconcile_exact"] is True, \
            f"socket bytes failed to reconcile with CommStats: {row}"
else:
    assert doc["parity"] == [] and doc["throughput"] == [], \
        "stub artifact carries data rows"
EOF
echo "ok: BENCH_socket.json schema + loopback parity"

# BENCH_latency.json schema: every traced cell must have reconciled its
# detect->deliver tracker with the engine's CommStats alert count to the
# unit (delivered == alerts == sketch samples — the bench aborts on
# mismatch, but assert the committed verdicts here too), the virtual rows
# must carry real sketches, and the live stats endpoint must have answered
# both forms. The wall half is empty where socket(2) is forbidden.
python3 - "$OUT/BENCH_latency.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("figure") == "latency", "figure != latency"
for key in ("udp_available", "stats_endpoint", "virtual", "wall"):
    assert key in doc, f"missing field {key}"
assert doc["virtual"], "empty virtual (SimNet) half"
for row in doc["virtual"] + doc["wall"]:
    assert row["reconcile_exact"] is True, f"tracker not reconciled: {row}"
    assert row["delivered"] == row["alerts"] == row["samples"], \
        f"delivered/alerts/samples disagree: {row}"
    assert row["shards"] >= 2, "latency cells must exercise the sharded plane"
    if row["alerts"] > 0:
        assert row["p999_s"] >= row["p99_s"] >= row["p50_s"] > 0, \
            f"degenerate latency sketch: {row}"
drops = {row["drop_rate"] for row in doc["virtual"]}
assert 0.0 in drops and len(drops) >= 2, "virtual half never swept drop rate"
probe = doc["stats_endpoint"]
if probe["attempted"]:
    assert probe["metrics_ok"] and probe["snapshot_ok"], \
        f"live stats endpoint misbehaved: {probe}"
if doc["udp_available"]:
    assert doc["wall"], "UDP available but wall half empty"
EOF
echo "ok: BENCH_latency.json schema + tracker reconciliation"

# BENCH_scale.json schema: the streaming substrate must have proven
# streaming == materialized bit-exactness across its parity matrix (the
# bench aborts on mismatch, but assert the committed verdicts too), every
# scenario row must have run, and the big streaming cell must be under the
# committed heap ceiling and over the throughput floor.
python3 - "$OUT/BENCH_scale.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("figure") == "scale", "figure != scale"
for key in ("parity", "parity_exact", "scenarios", "million",
            "bytes_per_user_ceiling", "epochs_per_sec_floor"):
    assert key in doc, f"missing field {key}"
assert doc["parity_exact"] is True, "streaming != materialized somewhere"
assert doc["parity"], "empty parity matrix"
for row in doc["parity"]:
    assert row["exact"] is True, f"parity row not exact: {row}"
methods = {row["method"] for row in doc["parity"]}
assert len(methods) == 8, f"parity covers {len(methods)} methods, not 8"
modes = {(row["mode"], row["value"]) for row in doc["parity"]}
for need in (("threads", 1), ("threads", 4), ("shards", 1), ("shards", 2)):
    assert need in modes, f"parity matrix missing {need}"
names = {row["scenario"] for row in doc["scenarios"]}
assert names == {"commuter_rush", "flash_crowd", "heavy_churn",
                 "mixed_fleet"}, f"scenario pack incomplete: {names}"
ceiling = doc["bytes_per_user_ceiling"]
floor = doc["epochs_per_sec_floor"]
for row in doc["scenarios"]:
    assert row["epochs_per_sec"] > 0, f"degenerate throughput row: {row}"
    assert 0 < row["bytes_per_user_stream"] <= ceiling, \
        f"scenario row over the heap ceiling: {row}"
big = doc["million"]
assert big["bytes_per_user"] <= ceiling, f"streaming cell over ceiling: {big}"
assert big["epochs_per_sec"] >= floor, f"streaming cell under floor: {big}"
EOF
echo "ok: BENCH_scale.json schema + streaming parity"

if ! grep -q '"counters_reconcile": "exact"' "$OUT/REPORT_net.json"; then
  echo "FAIL: REPORT_net.json reconciliation verdict is not \"exact\"" >&2
  exit 1
fi
if ! grep -q '"ph": "X"' "$OUT/TRACE_net.json"; then
  echo "FAIL: TRACE_net.json holds no complete spans" >&2
  exit 1
fi

echo "bench smoke OK: ${#artifacts[@]} artifacts valid in $OUT"
