file(REMOVE_RECURSE
  "CMakeFiles/proxdet_detector_test.dir/core/detector_integration_test.cc.o"
  "CMakeFiles/proxdet_detector_test.dir/core/detector_integration_test.cc.o.d"
  "CMakeFiles/proxdet_detector_test.dir/core/naive_detector_test.cc.o"
  "CMakeFiles/proxdet_detector_test.dir/core/naive_detector_test.cc.o.d"
  "CMakeFiles/proxdet_detector_test.dir/core/policies_test.cc.o"
  "CMakeFiles/proxdet_detector_test.dir/core/policies_test.cc.o.d"
  "CMakeFiles/proxdet_detector_test.dir/core/region_detector_test.cc.o"
  "CMakeFiles/proxdet_detector_test.dir/core/region_detector_test.cc.o.d"
  "CMakeFiles/proxdet_detector_test.dir/core/simulation_test.cc.o"
  "CMakeFiles/proxdet_detector_test.dir/core/simulation_test.cc.o.d"
  "proxdet_detector_test"
  "proxdet_detector_test.pdb"
  "proxdet_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
