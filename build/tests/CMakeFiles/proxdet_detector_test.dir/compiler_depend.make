# Empty compiler generated dependencies file for proxdet_detector_test.
# This may be replaced when dependencies are built.
