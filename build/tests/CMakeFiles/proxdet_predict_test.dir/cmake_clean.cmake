file(REMOVE_RECURSE
  "CMakeFiles/proxdet_predict_test.dir/predict/evaluator_test.cc.o"
  "CMakeFiles/proxdet_predict_test.dir/predict/evaluator_test.cc.o.d"
  "CMakeFiles/proxdet_predict_test.dir/predict/hmm_test.cc.o"
  "CMakeFiles/proxdet_predict_test.dir/predict/hmm_test.cc.o.d"
  "CMakeFiles/proxdet_predict_test.dir/predict/kalman_test.cc.o"
  "CMakeFiles/proxdet_predict_test.dir/predict/kalman_test.cc.o.d"
  "CMakeFiles/proxdet_predict_test.dir/predict/linear_test.cc.o"
  "CMakeFiles/proxdet_predict_test.dir/predict/linear_test.cc.o.d"
  "CMakeFiles/proxdet_predict_test.dir/predict/r2d2_test.cc.o"
  "CMakeFiles/proxdet_predict_test.dir/predict/r2d2_test.cc.o.d"
  "CMakeFiles/proxdet_predict_test.dir/predict/rmf_test.cc.o"
  "CMakeFiles/proxdet_predict_test.dir/predict/rmf_test.cc.o.d"
  "proxdet_predict_test"
  "proxdet_predict_test.pdb"
  "proxdet_predict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_predict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
