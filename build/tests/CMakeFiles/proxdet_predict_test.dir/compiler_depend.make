# Empty compiler generated dependencies file for proxdet_predict_test.
# This may be replaced when dependencies are built.
