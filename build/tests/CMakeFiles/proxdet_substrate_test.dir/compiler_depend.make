# Empty compiler generated dependencies file for proxdet_substrate_test.
# This may be replaced when dependencies are built.
