file(REMOVE_RECURSE
  "CMakeFiles/proxdet_substrate_test.dir/graph/interest_graph_test.cc.o"
  "CMakeFiles/proxdet_substrate_test.dir/graph/interest_graph_test.cc.o.d"
  "CMakeFiles/proxdet_substrate_test.dir/road/road_network_test.cc.o"
  "CMakeFiles/proxdet_substrate_test.dir/road/road_network_test.cc.o.d"
  "CMakeFiles/proxdet_substrate_test.dir/traj/generator_test.cc.o"
  "CMakeFiles/proxdet_substrate_test.dir/traj/generator_test.cc.o.d"
  "CMakeFiles/proxdet_substrate_test.dir/traj/simplify_test.cc.o"
  "CMakeFiles/proxdet_substrate_test.dir/traj/simplify_test.cc.o.d"
  "CMakeFiles/proxdet_substrate_test.dir/traj/trajectory_test.cc.o"
  "CMakeFiles/proxdet_substrate_test.dir/traj/trajectory_test.cc.o.d"
  "proxdet_substrate_test"
  "proxdet_substrate_test.pdb"
  "proxdet_substrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
