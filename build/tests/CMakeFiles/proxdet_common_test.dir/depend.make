# Empty dependencies file for proxdet_common_test.
# This may be replaced when dependencies are built.
