file(REMOVE_RECURSE
  "CMakeFiles/proxdet_common_test.dir/common/gaussian_test.cc.o"
  "CMakeFiles/proxdet_common_test.dir/common/gaussian_test.cc.o.d"
  "CMakeFiles/proxdet_common_test.dir/common/linalg_test.cc.o"
  "CMakeFiles/proxdet_common_test.dir/common/linalg_test.cc.o.d"
  "CMakeFiles/proxdet_common_test.dir/common/rng_test.cc.o"
  "CMakeFiles/proxdet_common_test.dir/common/rng_test.cc.o.d"
  "CMakeFiles/proxdet_common_test.dir/common/stats_test.cc.o"
  "CMakeFiles/proxdet_common_test.dir/common/stats_test.cc.o.d"
  "CMakeFiles/proxdet_common_test.dir/common/table_test.cc.o"
  "CMakeFiles/proxdet_common_test.dir/common/table_test.cc.o.d"
  "proxdet_common_test"
  "proxdet_common_test.pdb"
  "proxdet_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
