# Empty compiler generated dependencies file for proxdet_geom_test.
# This may be replaced when dependencies are built.
