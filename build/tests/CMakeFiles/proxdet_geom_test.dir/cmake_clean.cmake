file(REMOVE_RECURSE
  "CMakeFiles/proxdet_geom_test.dir/geom/circle_test.cc.o"
  "CMakeFiles/proxdet_geom_test.dir/geom/circle_test.cc.o.d"
  "CMakeFiles/proxdet_geom_test.dir/geom/polygon_test.cc.o"
  "CMakeFiles/proxdet_geom_test.dir/geom/polygon_test.cc.o.d"
  "CMakeFiles/proxdet_geom_test.dir/geom/polyline_test.cc.o"
  "CMakeFiles/proxdet_geom_test.dir/geom/polyline_test.cc.o.d"
  "CMakeFiles/proxdet_geom_test.dir/geom/segment_test.cc.o"
  "CMakeFiles/proxdet_geom_test.dir/geom/segment_test.cc.o.d"
  "CMakeFiles/proxdet_geom_test.dir/geom/stripe_test.cc.o"
  "CMakeFiles/proxdet_geom_test.dir/geom/stripe_test.cc.o.d"
  "CMakeFiles/proxdet_geom_test.dir/geom/vec2_test.cc.o"
  "CMakeFiles/proxdet_geom_test.dir/geom/vec2_test.cc.o.d"
  "proxdet_geom_test"
  "proxdet_geom_test.pdb"
  "proxdet_geom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_geom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
