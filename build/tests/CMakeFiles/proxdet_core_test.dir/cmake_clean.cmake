file(REMOVE_RECURSE
  "CMakeFiles/proxdet_core_test.dir/core/cost_model_test.cc.o"
  "CMakeFiles/proxdet_core_test.dir/core/cost_model_test.cc.o.d"
  "CMakeFiles/proxdet_core_test.dir/core/match_region_test.cc.o"
  "CMakeFiles/proxdet_core_test.dir/core/match_region_test.cc.o.d"
  "CMakeFiles/proxdet_core_test.dir/core/region_shapes_test.cc.o"
  "CMakeFiles/proxdet_core_test.dir/core/region_shapes_test.cc.o.d"
  "CMakeFiles/proxdet_core_test.dir/core/stripe_builder_test.cc.o"
  "CMakeFiles/proxdet_core_test.dir/core/stripe_builder_test.cc.o.d"
  "CMakeFiles/proxdet_core_test.dir/core/world_test.cc.o"
  "CMakeFiles/proxdet_core_test.dir/core/world_test.cc.o.d"
  "proxdet_core_test"
  "proxdet_core_test.pdb"
  "proxdet_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
