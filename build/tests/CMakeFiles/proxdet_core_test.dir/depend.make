# Empty dependencies file for proxdet_core_test.
# This may be replaced when dependencies are built.
