# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/proxdet_common_test[1]_include.cmake")
include("/root/repo/build/tests/proxdet_geom_test[1]_include.cmake")
include("/root/repo/build/tests/proxdet_substrate_test[1]_include.cmake")
include("/root/repo/build/tests/proxdet_predict_test[1]_include.cmake")
include("/root/repo/build/tests/proxdet_core_test[1]_include.cmake")
include("/root/repo/build/tests/proxdet_detector_test[1]_include.cmake")
