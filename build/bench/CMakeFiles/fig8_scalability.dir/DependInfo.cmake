
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_scalability.cc" "bench/CMakeFiles/fig8_scalability.dir/fig8_scalability.cc.o" "gcc" "bench/CMakeFiles/fig8_scalability.dir/fig8_scalability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_support/CMakeFiles/proxdet_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/proxdet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/proxdet_region.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/proxdet_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proxdet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/proxdet_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/proxdet_road.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/proxdet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proxdet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
