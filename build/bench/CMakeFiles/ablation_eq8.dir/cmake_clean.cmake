file(REMOVE_RECURSE
  "CMakeFiles/ablation_eq8.dir/ablation_eq8.cc.o"
  "CMakeFiles/ablation_eq8.dir/ablation_eq8.cc.o.d"
  "ablation_eq8"
  "ablation_eq8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eq8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
