# Empty compiler generated dependencies file for ablation_eq8.
# This may be replaced when dependencies are built.
