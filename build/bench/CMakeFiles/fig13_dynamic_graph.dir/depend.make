# Empty dependencies file for fig13_dynamic_graph.
# This may be replaced when dependencies are built.
