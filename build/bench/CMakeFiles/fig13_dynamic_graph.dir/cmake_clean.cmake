file(REMOVE_RECURSE
  "CMakeFiles/fig13_dynamic_graph.dir/fig13_dynamic_graph.cc.o"
  "CMakeFiles/fig13_dynamic_graph.dir/fig13_dynamic_graph.cc.o.d"
  "fig13_dynamic_graph"
  "fig13_dynamic_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dynamic_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
