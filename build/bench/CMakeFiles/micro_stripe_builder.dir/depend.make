# Empty dependencies file for micro_stripe_builder.
# This may be replaced when dependencies are built.
