file(REMOVE_RECURSE
  "CMakeFiles/micro_stripe_builder.dir/micro_stripe_builder.cc.o"
  "CMakeFiles/micro_stripe_builder.dir/micro_stripe_builder.cc.o.d"
  "micro_stripe_builder"
  "micro_stripe_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stripe_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
