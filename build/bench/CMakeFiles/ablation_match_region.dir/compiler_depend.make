# Empty compiler generated dependencies file for ablation_match_region.
# This may be replaced when dependencies are built.
