file(REMOVE_RECURSE
  "CMakeFiles/ablation_match_region.dir/ablation_match_region.cc.o"
  "CMakeFiles/ablation_match_region.dir/ablation_match_region.cc.o.d"
  "ablation_match_region"
  "ablation_match_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_match_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
