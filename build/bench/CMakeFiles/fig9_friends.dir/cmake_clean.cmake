file(REMOVE_RECURSE
  "CMakeFiles/fig9_friends.dir/fig9_friends.cc.o"
  "CMakeFiles/fig9_friends.dir/fig9_friends.cc.o.d"
  "fig9_friends"
  "fig9_friends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_friends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
