# Empty compiler generated dependencies file for fig9_friends.
# This may be replaced when dependencies are built.
