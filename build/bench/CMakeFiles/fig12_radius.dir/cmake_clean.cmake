file(REMOVE_RECURSE
  "CMakeFiles/fig12_radius.dir/fig12_radius.cc.o"
  "CMakeFiles/fig12_radius.dir/fig12_radius.cc.o.d"
  "fig12_radius"
  "fig12_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
