# Empty compiler generated dependencies file for fig12_radius.
# This may be replaced when dependencies are built.
