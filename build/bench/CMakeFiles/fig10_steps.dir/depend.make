# Empty dependencies file for fig10_steps.
# This may be replaced when dependencies are built.
