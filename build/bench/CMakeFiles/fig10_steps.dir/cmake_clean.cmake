file(REMOVE_RECURSE
  "CMakeFiles/fig10_steps.dir/fig10_steps.cc.o"
  "CMakeFiles/fig10_steps.dir/fig10_steps.cc.o.d"
  "fig10_steps"
  "fig10_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
