file(REMOVE_RECURSE
  "CMakeFiles/micro_predictors.dir/micro_predictors.cc.o"
  "CMakeFiles/micro_predictors.dir/micro_predictors.cc.o.d"
  "micro_predictors"
  "micro_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
