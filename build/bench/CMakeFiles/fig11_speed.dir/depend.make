# Empty dependencies file for fig11_speed.
# This may be replaced when dependencies are built.
