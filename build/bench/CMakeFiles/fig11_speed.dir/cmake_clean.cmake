file(REMOVE_RECURSE
  "CMakeFiles/fig11_speed.dir/fig11_speed.cc.o"
  "CMakeFiles/fig11_speed.dir/fig11_speed.cc.o.d"
  "fig11_speed"
  "fig11_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
