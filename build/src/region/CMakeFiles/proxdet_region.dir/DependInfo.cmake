
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/region/match_region.cc" "src/region/CMakeFiles/proxdet_region.dir/match_region.cc.o" "gcc" "src/region/CMakeFiles/proxdet_region.dir/match_region.cc.o.d"
  "/root/repo/src/region/region.cc" "src/region/CMakeFiles/proxdet_region.dir/region.cc.o" "gcc" "src/region/CMakeFiles/proxdet_region.dir/region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/proxdet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proxdet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
