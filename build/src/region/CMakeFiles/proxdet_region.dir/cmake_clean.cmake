file(REMOVE_RECURSE
  "CMakeFiles/proxdet_region.dir/match_region.cc.o"
  "CMakeFiles/proxdet_region.dir/match_region.cc.o.d"
  "CMakeFiles/proxdet_region.dir/region.cc.o"
  "CMakeFiles/proxdet_region.dir/region.cc.o.d"
  "libproxdet_region.a"
  "libproxdet_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
