# Empty compiler generated dependencies file for proxdet_region.
# This may be replaced when dependencies are built.
