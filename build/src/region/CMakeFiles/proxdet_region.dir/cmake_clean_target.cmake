file(REMOVE_RECURSE
  "libproxdet_region.a"
)
