# Empty compiler generated dependencies file for proxdet_bench_support.
# This may be replaced when dependencies are built.
