file(REMOVE_RECURSE
  "CMakeFiles/proxdet_bench_support.dir/experiment.cc.o"
  "CMakeFiles/proxdet_bench_support.dir/experiment.cc.o.d"
  "libproxdet_bench_support.a"
  "libproxdet_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
