file(REMOVE_RECURSE
  "libproxdet_bench_support.a"
)
