# Empty dependencies file for proxdet_predict.
# This may be replaced when dependencies are built.
