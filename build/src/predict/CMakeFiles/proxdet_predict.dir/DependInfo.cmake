
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/evaluator.cc" "src/predict/CMakeFiles/proxdet_predict.dir/evaluator.cc.o" "gcc" "src/predict/CMakeFiles/proxdet_predict.dir/evaluator.cc.o.d"
  "/root/repo/src/predict/hmm.cc" "src/predict/CMakeFiles/proxdet_predict.dir/hmm.cc.o" "gcc" "src/predict/CMakeFiles/proxdet_predict.dir/hmm.cc.o.d"
  "/root/repo/src/predict/kalman.cc" "src/predict/CMakeFiles/proxdet_predict.dir/kalman.cc.o" "gcc" "src/predict/CMakeFiles/proxdet_predict.dir/kalman.cc.o.d"
  "/root/repo/src/predict/linear_predictor.cc" "src/predict/CMakeFiles/proxdet_predict.dir/linear_predictor.cc.o" "gcc" "src/predict/CMakeFiles/proxdet_predict.dir/linear_predictor.cc.o.d"
  "/root/repo/src/predict/predictor.cc" "src/predict/CMakeFiles/proxdet_predict.dir/predictor.cc.o" "gcc" "src/predict/CMakeFiles/proxdet_predict.dir/predictor.cc.o.d"
  "/root/repo/src/predict/r2d2.cc" "src/predict/CMakeFiles/proxdet_predict.dir/r2d2.cc.o" "gcc" "src/predict/CMakeFiles/proxdet_predict.dir/r2d2.cc.o.d"
  "/root/repo/src/predict/rmf.cc" "src/predict/CMakeFiles/proxdet_predict.dir/rmf.cc.o" "gcc" "src/predict/CMakeFiles/proxdet_predict.dir/rmf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/proxdet_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/proxdet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proxdet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/proxdet_road.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
