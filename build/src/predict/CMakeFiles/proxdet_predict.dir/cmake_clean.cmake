file(REMOVE_RECURSE
  "CMakeFiles/proxdet_predict.dir/evaluator.cc.o"
  "CMakeFiles/proxdet_predict.dir/evaluator.cc.o.d"
  "CMakeFiles/proxdet_predict.dir/hmm.cc.o"
  "CMakeFiles/proxdet_predict.dir/hmm.cc.o.d"
  "CMakeFiles/proxdet_predict.dir/kalman.cc.o"
  "CMakeFiles/proxdet_predict.dir/kalman.cc.o.d"
  "CMakeFiles/proxdet_predict.dir/linear_predictor.cc.o"
  "CMakeFiles/proxdet_predict.dir/linear_predictor.cc.o.d"
  "CMakeFiles/proxdet_predict.dir/predictor.cc.o"
  "CMakeFiles/proxdet_predict.dir/predictor.cc.o.d"
  "CMakeFiles/proxdet_predict.dir/r2d2.cc.o"
  "CMakeFiles/proxdet_predict.dir/r2d2.cc.o.d"
  "CMakeFiles/proxdet_predict.dir/rmf.cc.o"
  "CMakeFiles/proxdet_predict.dir/rmf.cc.o.d"
  "libproxdet_predict.a"
  "libproxdet_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
