file(REMOVE_RECURSE
  "libproxdet_predict.a"
)
