# Empty compiler generated dependencies file for proxdet_common.
# This may be replaced when dependencies are built.
