file(REMOVE_RECURSE
  "libproxdet_common.a"
)
