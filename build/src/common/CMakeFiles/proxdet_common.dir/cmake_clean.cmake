file(REMOVE_RECURSE
  "CMakeFiles/proxdet_common.dir/gaussian.cc.o"
  "CMakeFiles/proxdet_common.dir/gaussian.cc.o.d"
  "CMakeFiles/proxdet_common.dir/linalg.cc.o"
  "CMakeFiles/proxdet_common.dir/linalg.cc.o.d"
  "CMakeFiles/proxdet_common.dir/rng.cc.o"
  "CMakeFiles/proxdet_common.dir/rng.cc.o.d"
  "CMakeFiles/proxdet_common.dir/stats.cc.o"
  "CMakeFiles/proxdet_common.dir/stats.cc.o.d"
  "CMakeFiles/proxdet_common.dir/table.cc.o"
  "CMakeFiles/proxdet_common.dir/table.cc.o.d"
  "libproxdet_common.a"
  "libproxdet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
