file(REMOVE_RECURSE
  "libproxdet_geom.a"
)
