file(REMOVE_RECURSE
  "CMakeFiles/proxdet_geom.dir/circle.cc.o"
  "CMakeFiles/proxdet_geom.dir/circle.cc.o.d"
  "CMakeFiles/proxdet_geom.dir/polygon.cc.o"
  "CMakeFiles/proxdet_geom.dir/polygon.cc.o.d"
  "CMakeFiles/proxdet_geom.dir/polyline.cc.o"
  "CMakeFiles/proxdet_geom.dir/polyline.cc.o.d"
  "CMakeFiles/proxdet_geom.dir/segment.cc.o"
  "CMakeFiles/proxdet_geom.dir/segment.cc.o.d"
  "CMakeFiles/proxdet_geom.dir/stripe.cc.o"
  "CMakeFiles/proxdet_geom.dir/stripe.cc.o.d"
  "libproxdet_geom.a"
  "libproxdet_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
