# Empty compiler generated dependencies file for proxdet_geom.
# This may be replaced when dependencies are built.
