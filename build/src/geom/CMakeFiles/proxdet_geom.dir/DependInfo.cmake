
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/circle.cc" "src/geom/CMakeFiles/proxdet_geom.dir/circle.cc.o" "gcc" "src/geom/CMakeFiles/proxdet_geom.dir/circle.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/geom/CMakeFiles/proxdet_geom.dir/polygon.cc.o" "gcc" "src/geom/CMakeFiles/proxdet_geom.dir/polygon.cc.o.d"
  "/root/repo/src/geom/polyline.cc" "src/geom/CMakeFiles/proxdet_geom.dir/polyline.cc.o" "gcc" "src/geom/CMakeFiles/proxdet_geom.dir/polyline.cc.o.d"
  "/root/repo/src/geom/segment.cc" "src/geom/CMakeFiles/proxdet_geom.dir/segment.cc.o" "gcc" "src/geom/CMakeFiles/proxdet_geom.dir/segment.cc.o.d"
  "/root/repo/src/geom/stripe.cc" "src/geom/CMakeFiles/proxdet_geom.dir/stripe.cc.o" "gcc" "src/geom/CMakeFiles/proxdet_geom.dir/stripe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/proxdet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
