# Empty compiler generated dependencies file for proxdet_core.
# This may be replaced when dependencies are built.
