file(REMOVE_RECURSE
  "CMakeFiles/proxdet_core.dir/cost_model.cc.o"
  "CMakeFiles/proxdet_core.dir/cost_model.cc.o.d"
  "CMakeFiles/proxdet_core.dir/naive_detector.cc.o"
  "CMakeFiles/proxdet_core.dir/naive_detector.cc.o.d"
  "CMakeFiles/proxdet_core.dir/policies.cc.o"
  "CMakeFiles/proxdet_core.dir/policies.cc.o.d"
  "CMakeFiles/proxdet_core.dir/region_detector.cc.o"
  "CMakeFiles/proxdet_core.dir/region_detector.cc.o.d"
  "CMakeFiles/proxdet_core.dir/simulation.cc.o"
  "CMakeFiles/proxdet_core.dir/simulation.cc.o.d"
  "CMakeFiles/proxdet_core.dir/stripe_builder.cc.o"
  "CMakeFiles/proxdet_core.dir/stripe_builder.cc.o.d"
  "CMakeFiles/proxdet_core.dir/world.cc.o"
  "CMakeFiles/proxdet_core.dir/world.cc.o.d"
  "libproxdet_core.a"
  "libproxdet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
