file(REMOVE_RECURSE
  "libproxdet_core.a"
)
