
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/proxdet_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/proxdet_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/naive_detector.cc" "src/core/CMakeFiles/proxdet_core.dir/naive_detector.cc.o" "gcc" "src/core/CMakeFiles/proxdet_core.dir/naive_detector.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/proxdet_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/proxdet_core.dir/policies.cc.o.d"
  "/root/repo/src/core/region_detector.cc" "src/core/CMakeFiles/proxdet_core.dir/region_detector.cc.o" "gcc" "src/core/CMakeFiles/proxdet_core.dir/region_detector.cc.o.d"
  "/root/repo/src/core/simulation.cc" "src/core/CMakeFiles/proxdet_core.dir/simulation.cc.o" "gcc" "src/core/CMakeFiles/proxdet_core.dir/simulation.cc.o.d"
  "/root/repo/src/core/stripe_builder.cc" "src/core/CMakeFiles/proxdet_core.dir/stripe_builder.cc.o" "gcc" "src/core/CMakeFiles/proxdet_core.dir/stripe_builder.cc.o.d"
  "/root/repo/src/core/world.cc" "src/core/CMakeFiles/proxdet_core.dir/world.cc.o" "gcc" "src/core/CMakeFiles/proxdet_core.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/region/CMakeFiles/proxdet_region.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/proxdet_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proxdet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/proxdet_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/proxdet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proxdet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/proxdet_road.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
