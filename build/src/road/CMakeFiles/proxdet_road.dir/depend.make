# Empty dependencies file for proxdet_road.
# This may be replaced when dependencies are built.
