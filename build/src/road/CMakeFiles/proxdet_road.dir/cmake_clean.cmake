file(REMOVE_RECURSE
  "CMakeFiles/proxdet_road.dir/road_network.cc.o"
  "CMakeFiles/proxdet_road.dir/road_network.cc.o.d"
  "libproxdet_road.a"
  "libproxdet_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
