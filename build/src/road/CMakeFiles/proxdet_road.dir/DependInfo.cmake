
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/road/road_network.cc" "src/road/CMakeFiles/proxdet_road.dir/road_network.cc.o" "gcc" "src/road/CMakeFiles/proxdet_road.dir/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/proxdet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proxdet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
