file(REMOVE_RECURSE
  "libproxdet_road.a"
)
