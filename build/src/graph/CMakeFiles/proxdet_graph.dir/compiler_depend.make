# Empty compiler generated dependencies file for proxdet_graph.
# This may be replaced when dependencies are built.
