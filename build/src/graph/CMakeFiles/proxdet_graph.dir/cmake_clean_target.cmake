file(REMOVE_RECURSE
  "libproxdet_graph.a"
)
