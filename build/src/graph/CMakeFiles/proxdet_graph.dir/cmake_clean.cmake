file(REMOVE_RECURSE
  "CMakeFiles/proxdet_graph.dir/interest_graph.cc.o"
  "CMakeFiles/proxdet_graph.dir/interest_graph.cc.o.d"
  "libproxdet_graph.a"
  "libproxdet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
