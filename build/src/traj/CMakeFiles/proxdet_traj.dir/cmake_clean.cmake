file(REMOVE_RECURSE
  "CMakeFiles/proxdet_traj.dir/dataset.cc.o"
  "CMakeFiles/proxdet_traj.dir/dataset.cc.o.d"
  "CMakeFiles/proxdet_traj.dir/generator.cc.o"
  "CMakeFiles/proxdet_traj.dir/generator.cc.o.d"
  "CMakeFiles/proxdet_traj.dir/simplify.cc.o"
  "CMakeFiles/proxdet_traj.dir/simplify.cc.o.d"
  "CMakeFiles/proxdet_traj.dir/trajectory.cc.o"
  "CMakeFiles/proxdet_traj.dir/trajectory.cc.o.d"
  "libproxdet_traj.a"
  "libproxdet_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
