# Empty dependencies file for proxdet_traj.
# This may be replaced when dependencies are built.
