file(REMOVE_RECURSE
  "libproxdet_traj.a"
)
