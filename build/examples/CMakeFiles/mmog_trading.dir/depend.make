# Empty dependencies file for mmog_trading.
# This may be replaced when dependencies are built.
