file(REMOVE_RECURSE
  "CMakeFiles/mmog_trading.dir/mmog_trading.cpp.o"
  "CMakeFiles/mmog_trading.dir/mmog_trading.cpp.o.d"
  "mmog_trading"
  "mmog_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmog_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
