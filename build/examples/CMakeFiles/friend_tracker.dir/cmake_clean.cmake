file(REMOVE_RECURSE
  "CMakeFiles/friend_tracker.dir/friend_tracker.cpp.o"
  "CMakeFiles/friend_tracker.dir/friend_tracker.cpp.o.d"
  "friend_tracker"
  "friend_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/friend_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
