# Empty compiler generated dependencies file for friend_tracker.
# This may be replaced when dependencies are built.
