# Empty compiler generated dependencies file for proxdet_cli.
# This may be replaced when dependencies are built.
