file(REMOVE_RECURSE
  "CMakeFiles/proxdet_cli.dir/proxdet_cli.cpp.o"
  "CMakeFiles/proxdet_cli.dir/proxdet_cli.cpp.o.d"
  "proxdet_cli"
  "proxdet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxdet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
