# Empty compiler generated dependencies file for fleet_convoy.
# This may be replaced when dependencies are built.
