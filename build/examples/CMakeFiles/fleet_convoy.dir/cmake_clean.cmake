file(REMOVE_RECURSE
  "CMakeFiles/fleet_convoy.dir/fleet_convoy.cpp.o"
  "CMakeFiles/fleet_convoy.dir/fleet_convoy.cpp.o.d"
  "fleet_convoy"
  "fleet_convoy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_convoy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
