#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace proxdet {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::SetHeader(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&out, &widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      if (i + 1 < cells.size()) {
        out << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      if (i + 1 < cells.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return std::string(buf);
}

}  // namespace proxdet
