#ifndef PROXDET_COMMON_STATS_H_
#define PROXDET_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace proxdet {

/// Online mean/variance accumulator (Welford's algorithm). Numerically
/// stable; used for prediction-error calibration and benchmark reporting.
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of the values using linear
/// interpolation; the input is copied and sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Exponentially-weighted moving average with configurable smoothing.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double x);
  double value() const { return value_; }
  bool empty() const { return !seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace proxdet

#endif  // PROXDET_COMMON_STATS_H_
