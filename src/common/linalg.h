#ifndef PROXDET_COMMON_LINALG_H_
#define PROXDET_COMMON_LINALG_H_

#include <cstddef>
#include <vector>

namespace proxdet {

/// Minimal dense row-major matrix of doubles. Sized for the small systems
/// this library solves (Kalman covariance updates, RMF recurrence fitting):
/// clarity over cache blocking.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Matrix Transpose() const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix Scaled(double k) const;

  /// Matrix-vector product. Requires v.size() == cols().
  std::vector<double> Apply(const std::vector<double>& v) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns false when A is (numerically) singular.
bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double>* x);

/// Inverts a square matrix; returns false when singular.
bool Invert(const Matrix& a, Matrix* inv);

/// Ridge-regularized least squares: minimizes |A x - b|^2 + lambda |x|^2 via
/// the normal equations. Returns false on failure. lambda > 0 keeps the
/// system well-posed for the near-collinear windows RMF fits.
bool RidgeLeastSquares(const Matrix& a, const std::vector<double>& b,
                       double lambda, std::vector<double>* x);

}  // namespace proxdet

#endif  // PROXDET_COMMON_LINALG_H_
