#ifndef PROXDET_COMMON_RNG_H_
#define PROXDET_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace proxdet {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in the library takes an explicit
/// `Rng&` so that workloads, datasets and simulations are reproducible from
/// a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller, cached spare).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Samples an index according to the (non-negative, not necessarily
  /// normalized) weight vector. Returns weights.size() - 1 on degenerate
  /// input (all zero weights).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; useful to give each user or
  /// module its own stream while staying reproducible.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace proxdet

#endif  // PROXDET_COMMON_RNG_H_
