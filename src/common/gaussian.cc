#include "common/gaussian.h"

#include <cmath>

namespace proxdet {

double NormalPdf(double x) {
  const double inv_sqrt_2pi = 0.3989422804014326779399461;
  return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x * 0.7071067811865475244008444);
}

double FoldedNormalCdf(double s, double sigma) {
  if (s <= 0.0) return 0.0;
  if (sigma <= 0.0) return 1.0;  // A perfect predictor never misses.
  return std::erf(s / (sigma * 1.4142135623730950488016887));
}

double FoldedNormalQuantile(double p, double sigma) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) p = 1.0 - 1e-12;
  // Bisection on the monotone CDF; 80 iterations is far past double
  // precision for the bracket below.
  double lo = 0.0;
  double hi = sigma * 40.0 + 1.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (FoldedNormalCdf(mid, sigma) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace proxdet
