#include "common/linalg.h"

#include <cmath>

namespace proxdet {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double v = At(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += v * other.At(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::Scaled(double k) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * k;
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += At(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double>* x) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) return false;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(pivot, c), a.At(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.At(r, c) -= factor * a.At(col, c);
      b[r] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a.At(ri, c) * (*x)[c];
    (*x)[ri] = acc / a.At(ri, ri);
  }
  return true;
}

bool Invert(const Matrix& a, Matrix* inv) {
  const size_t n = a.rows();
  if (a.cols() != n) return false;
  *inv = Matrix(n, n);
  for (size_t col = 0; col < n; ++col) {
    std::vector<double> e(n, 0.0);
    e[col] = 1.0;
    std::vector<double> x;
    if (!SolveLinearSystem(a, e, &x)) return false;
    for (size_t r = 0; r < n; ++r) inv->At(r, col) = x[r];
  }
  return true;
}

bool RidgeLeastSquares(const Matrix& a, const std::vector<double>& b,
                       double lambda, std::vector<double>* x) {
  const Matrix at = a.Transpose();
  Matrix normal = at * a;
  for (size_t i = 0; i < normal.rows(); ++i) normal.At(i, i) += lambda;
  const std::vector<double> rhs = at.Apply(b);
  return SolveLinearSystem(normal, rhs, x);
}

}  // namespace proxdet
