#ifndef PROXDET_COMMON_GAUSSIAN_H_
#define PROXDET_COMMON_GAUSSIAN_H_

namespace proxdet {

/// Standard normal probability density at x.
double NormalPdf(double x);

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// P(|N(0, sigma^2)| <= s): the folded-normal CDF.
///
/// The paper's Eq. (6) integrates the one-sided Gaussian density from 0 to
/// s^u, which saturates at 0.5; since the prediction error is a non-negative
/// *distance*, the folded form (which tends to 1 as s grows) is the quantity
/// the derivation of E_m actually needs. See DESIGN.md §2.2.
double FoldedNormalCdf(double s, double sigma);

/// Inverse of FoldedNormalCdf in s for fixed sigma: the error magnitude
/// below which a fraction p of samples fall. p in [0, 1).
double FoldedNormalQuantile(double p, double sigma);

}  // namespace proxdet

#endif  // PROXDET_COMMON_GAUSSIAN_H_
