#ifndef PROXDET_COMMON_TABLE_H_
#define PROXDET_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace proxdet {

/// ASCII table builder used by the benchmark harness to print the series
/// behind each paper figure in a fixed, diff-friendly layout.
class Table {
 public:
  explicit Table(std::string title);

  void SetHeader(std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders as comma-separated values (header first) for plotting.
  std::string ToCsv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
std::string FormatDouble(double v, int decimals = 2);

}  // namespace proxdet

#endif  // PROXDET_COMMON_TABLE_H_
