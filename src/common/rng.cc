#include "common/rng.h"

#include <cmath>

namespace proxdet {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) { return NextU64() % n; }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextIndex(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace proxdet
