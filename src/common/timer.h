#ifndef PROXDET_COMMON_TIMER_H_
#define PROXDET_COMMON_TIMER_H_

#include <chrono>

namespace proxdet {

/// Monotonic wall-clock stopwatch used for server-side CPU accounting in the
/// benchmark harness (Figure 8 reports server CPU alongside I/O).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: accumulates the scope's elapsed wall-clock seconds into
/// the bound accumulator on destruction. Replaces the manual
/// Restart()/ElapsedSeconds() pairing around server-side bookkeeping —
/// early returns and exceptions can no longer skip the accumulation.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { accumulator_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& accumulator_;
  WallTimer timer_;
};

}  // namespace proxdet

#endif  // PROXDET_COMMON_TIMER_H_
