#ifndef PROXDET_COMMON_TIMER_H_
#define PROXDET_COMMON_TIMER_H_

#include <chrono>

namespace proxdet {

/// Monotonic wall-clock stopwatch used for server-side CPU accounting in the
/// benchmark harness (Figure 8 reports server CPU alongside I/O).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace proxdet

#endif  // PROXDET_COMMON_TIMER_H_
