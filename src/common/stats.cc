#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace proxdet {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void Ewma::Add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace proxdet
