#ifndef PROXDET_TRAJ_SCENARIO_H_
#define PROXDET_TRAJ_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/interest_graph.h"
#include "traj/streaming.h"

namespace proxdet {

/// The city-scale scenario pack (ROADMAP's million-user workload item).
/// Each scenario is a (streaming generator, interest graph, edge-churn
/// schedule) triple over one shared road substrate.
enum class ScenarioKind {
  kCommuterRush,  // Correlated corridor flows into a work district.
  kFlashCrowd,    // Density spike around an event point, then dispersal.
  kHeavyChurn,    // Users + interest edges joining/leaving continuously.
  kMixedFleet,    // Pedestrian/taxi/truck speed classes in one graph.
};

std::vector<ScenarioKind> AllScenarioKinds();
std::string ScenarioName(ScenarioKind kind);
/// Parses the ScenarioName form ("commuter_rush", ...); false on unknown.
bool ParseScenarioName(const std::string& name, ScenarioKind* out);

/// An interest-edge change scheduled by a scenario (mirrors the core
/// layer's GraphUpdate; duplicated here so traj stays below core).
struct EdgeChurnEvent {
  int epoch = 0;
  bool insert = true;
  UserId u = -1;
  UserId w = -1;
  double alert_radius = 0.0;
};

/// A scenario configuration. Substrate dimensions default to 0 = derived
/// from `num_users` (the grid grows with sqrt(N) at constant density, so
/// alert rates stay comparable across scales).
struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kCommuterRush;
  size_t num_users = 10000;
  int epochs = 200;
  int speed_steps = 8;
  double avg_friends = 2.0;
  double alert_radius_m = 400.0;
  uint64_t seed = 42;
  int grid_rows = 0;
  int grid_cols = 0;
  double grid_spacing_m = 200.0;
  /// Heavy-churn shape: fraction of users with bounded membership windows.
  double churn_fraction = 0.5;
};

/// A built scenario: the stream, the graph, and the churn schedule the
/// caller must feed through World::ScheduleUpdate.
struct Scenario {
  ScenarioSpec spec;
  std::unique_ptr<StreamingGenerator> generator;
  InterestGraph graph;
  std::vector<EdgeChurnEvent> churn;
};

Scenario BuildScenario(const ScenarioSpec& spec);

/// A small materialized training fleet from the same scenario family
/// (distinct seed, same substrate parameters): stripe predictors train on
/// it identically whether the monitored population streams or not.
std::vector<Trajectory> BuildScenarioTraining(const ScenarioSpec& spec,
                                              size_t training_users,
                                              int training_epochs);

}  // namespace proxdet

#endif  // PROXDET_TRAJ_SCENARIO_H_
