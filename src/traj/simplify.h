#ifndef PROXDET_TRAJ_SIMPLIFY_H_
#define PROXDET_TRAJ_SIMPLIFY_H_

#include <vector>

#include "geom/vec2.h"

namespace proxdet {

/// Trajectory/polyline simplification with a hard error bound: every
/// dropped point stays within `epsilon` meters of the simplified polyline.
/// Two flavors are provided, mirroring the toolchain the paper's Truck
/// dataset was prepared with (Lin et al., "One-pass error bounded
/// trajectory simplification", PVLDB'17 — reference [12]):
///
///  - DouglasPeucker: the classic batch algorithm, optimal-ish quality,
///    O(n log n) typical. Use for offline dataset compression.
///  - OnePassSimplifier: streaming, O(1) amortized per point via the
///    sector-intersection method. Use online — e.g., a client compacting
///    its GPS buffer before attaching it to a report, or the stripe
///    builder thinning a dense predicted path.

/// Batch simplification; keeps the first and last points. `epsilon` is the
/// maximum allowed perpendicular deviation in meters.
std::vector<Vec2> DouglasPeucker(const std::vector<Vec2>& points,
                                 double epsilon);

/// Streaming error-bounded simplifier. Feed points with Push; emitted
/// anchor points arrive in order and the polyline through them stays within
/// `epsilon` of every input point. Call Finish to flush the final anchor.
class OnePassSimplifier {
 public:
  explicit OnePassSimplifier(double epsilon);

  /// Processes one point; appends 0+ anchors to `out`.
  void Push(const Vec2& p, std::vector<Vec2>* out);

  /// Flushes the trailing anchor (the last pushed point).
  void Finish(std::vector<Vec2>* out);

  /// Convenience: simplify a whole sequence in one call.
  static std::vector<Vec2> Simplify(const std::vector<Vec2>& points,
                                    double epsilon);

 private:
  double epsilon_;
  bool has_anchor_ = false;
  Vec2 anchor_;
  Vec2 last_;
  bool has_candidate_ = false;
  // Feasible heading sector from the anchor, maintained as the
  // intersection of per-point disks' angular windows.
  double sector_lo_ = 0.0;
  double sector_hi_ = 0.0;
};

}  // namespace proxdet

#endif  // PROXDET_TRAJ_SIMPLIFY_H_
