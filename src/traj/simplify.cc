#include "traj/simplify.h"

#include <cmath>

#include "geom/segment.h"

namespace proxdet {

namespace {

void DouglasPeuckerRecurse(const std::vector<Vec2>& pts, size_t lo, size_t hi,
                           double epsilon, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  const Segment base{pts[lo], pts[hi]};
  double worst = -1.0;
  size_t worst_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = DistancePointToSegment(pts[i], base);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > epsilon) {
    (*keep)[worst_idx] = true;
    DouglasPeuckerRecurse(pts, lo, worst_idx, epsilon, keep);
    DouglasPeuckerRecurse(pts, worst_idx, hi, epsilon, keep);
  }
}

// Normalizes an angle into (-pi, pi].
double WrapAngle(double a) {
  const double pi = 3.14159265358979323846;
  while (a > pi) a -= 2 * pi;
  while (a <= -pi) a += 2 * pi;
  return a;
}

}  // namespace

std::vector<Vec2> DouglasPeucker(const std::vector<Vec2>& points,
                                 double epsilon) {
  if (points.size() <= 2) return points;
  std::vector<bool> keep(points.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeuckerRecurse(points, 0, points.size() - 1, epsilon, &keep);
  std::vector<Vec2> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) out.push_back(points[i]);
  }
  return out;
}

OnePassSimplifier::OnePassSimplifier(double epsilon) : epsilon_(epsilon) {}

void OnePassSimplifier::Push(const Vec2& p, std::vector<Vec2>* out) {
  if (!has_anchor_) {
    anchor_ = p;
    last_ = p;
    has_anchor_ = true;
    out->push_back(p);
    return;
  }
  const Vec2 delta = p - anchor_;
  const double dist = delta.Norm();
  if (dist <= epsilon_) {
    // Still inside the anchor's tolerance disk: any heading remains valid.
    last_ = p;
    has_candidate_ = true;
    return;
  }
  // Angular window within which a segment from the anchor passes within
  // epsilon of p: center +- asin(eps/dist).
  const double center = std::atan2(delta.y, delta.x);
  const double half = std::asin(std::min(1.0, epsilon_ / dist));
  if (!has_candidate_) {
    sector_lo_ = center - half;
    sector_hi_ = center + half;
    last_ = p;
    has_candidate_ = true;
    return;
  }
  // Intersect the new window with the running sector; if the current
  // heading leaves the sector, close the segment at the previous point.
  const double lo = WrapAngle(center - half - sector_lo_);
  const double hi = WrapAngle(center + half - sector_lo_);
  const double span = WrapAngle(sector_hi_ - sector_lo_);
  const double new_lo = std::max(0.0, lo);
  const double new_hi = std::min(span, hi);
  const bool heading_ok = WrapAngle(center - sector_lo_) >= -1e-12 &&
                          WrapAngle(center - sector_lo_) <= span + 1e-12;
  if (new_lo <= new_hi + 1e-12 && heading_ok) {
    sector_lo_ = WrapAngle(sector_lo_ + new_lo);
    sector_hi_ = WrapAngle(sector_lo_ + (new_hi - new_lo));
    last_ = p;
    return;
  }
  // Emit the previous point as the segment end and restart from it.
  out->push_back(last_);
  anchor_ = last_;
  last_ = p;
  has_candidate_ = false;
  // Re-process p against the fresh anchor to seed the sector.
  const Vec2 d2 = p - anchor_;
  const double dist2 = d2.Norm();
  if (dist2 > epsilon_) {
    const double c2 = std::atan2(d2.y, d2.x);
    const double h2 = std::asin(std::min(1.0, epsilon_ / dist2));
    sector_lo_ = c2 - h2;
    sector_hi_ = c2 + h2;
    has_candidate_ = true;
  }
}

void OnePassSimplifier::Finish(std::vector<Vec2>* out) {
  if (has_anchor_ && (out->empty() || !(out->back() == last_))) {
    out->push_back(last_);
  }
  has_anchor_ = false;
  has_candidate_ = false;
}

std::vector<Vec2> OnePassSimplifier::Simplify(const std::vector<Vec2>& points,
                                              double epsilon) {
  OnePassSimplifier simplifier(epsilon);
  std::vector<Vec2> out;
  for (const Vec2& p : points) simplifier.Push(p, &out);
  simplifier.Finish(&out);
  return out;
}

}  // namespace proxdet
