#include "traj/dataset.h"

namespace proxdet {

std::vector<DatasetKind> AllDatasetKinds() {
  return {DatasetKind::kGeoLife, DatasetKind::kBeijingTaxi,
          DatasetKind::kSingaporeTaxi, DatasetKind::kTruck};
}

std::string DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kGeoLife:
      return "GeoLife";
    case DatasetKind::kBeijingTaxi:
      return "BeijingTaxi";
    case DatasetKind::kSingaporeTaxi:
      return "SingaporeTaxi";
    case DatasetKind::kTruck:
      return "Truck";
  }
  return "Unknown";
}

DatasetSpec SpecFor(DatasetKind kind) {
  DatasetSpec spec;
  spec.kind = kind;
  switch (kind) {
    case DatasetKind::kGeoLife:
      // 182 users over 3 years, mostly Beijing: walking, cycling, bus and
      // car share the same street grid. Metro extent, slow and curvy.
      spec.grid_rows = 64;
      spec.grid_cols = 64;
      spec.grid_spacing_m = 1200.0;
      spec.arterial_every = 4;
      spec.local_speed = 1.4;
      spec.arterial_speed = 1.8;
      spec.mode_factors = {1.0, 1.0, 2.8, 5.5};  // walk, walk, bike, bus/car
      spec.pause_probability = 0.35;
      spec.max_pause_ticks = 30;
      spec.gps_noise_m = 3.0;
      // Pedestrians and buses stop at crossings and stations.
      spec.intersection_stop_prob = 0.3;
      spec.max_stop_seconds = 45.0;
      spec.jam_probability = 0.004;
      spec.max_jam_ticks = 40;
      break;
    case DatasetKind::kBeijingTaxi:
      // 33K taxis over a metropolitan grid; medium-high speed, turns at
      // intersections, ~3 min raw sampling interpolated down to ticks.
      spec.grid_rows = 80;
      spec.grid_cols = 80;
      spec.grid_spacing_m = 1400.0;
      spec.arterial_every = 4;
      spec.local_speed = 8.0;
      spec.arterial_speed = 14.0;
      spec.mode_factors = {0.85, 1.0, 1.15};
      spec.pause_probability = 0.2;
      spec.max_pause_ticks = 12;
      spec.gps_noise_m = 5.0;
      // Signals and congestion: city taxis rarely hold a constant speed.
      spec.intersection_stop_prob = 0.4;
      spec.max_stop_seconds = 60.0;
      spec.jam_probability = 0.01;
      spec.max_jam_ticks = 60;
      break;
    case DatasetKind::kSingaporeTaxi:
      // 13K taxis, compact dense island grid, 20-80 s sampling.
      spec.grid_rows = 60;
      spec.grid_cols = 60;
      spec.grid_spacing_m = 950.0;
      spec.arterial_every = 5;
      spec.local_speed = 7.0;
      spec.arterial_speed = 12.0;
      spec.mode_factors = {0.85, 1.0, 1.15};
      spec.pause_probability = 0.25;
      spec.max_pause_ticks = 12;
      spec.gps_noise_m = 5.0;
      spec.intersection_stop_prob = 0.45;
      spec.max_stop_seconds = 60.0;
      spec.jam_probability = 0.012;
      spec.max_jam_ticks = 60;
      break;
    case DatasetKind::kTruck:
      // Long-haul trucks on inter-city highways: long straight stretches,
      // high speed, sparse spatial distribution.
      spec.highway_extent_m = 360000.0;
      spec.highway_corridors = 12;
      spec.local_speed = 8.0;
      spec.arterial_speed = 14.0;
      spec.highway_speed = 22.0;
      spec.mode_factors = {0.9, 1.0, 1.1};
      spec.pause_probability = 0.1;
      spec.max_pause_ticks = 40;
      spec.gps_noise_m = 4.0;
      // Long-haul reality: toll gates, rest stops and rolling congestion
      // break the constant-speed assumption even on straight highways.
      spec.intersection_stop_prob = 0.08;
      spec.max_stop_seconds = 180.0;
      spec.jam_probability = 0.015;
      spec.jam_factor = 0.2;
      spec.max_jam_ticks = 100;
      break;
  }
  return spec;
}

}  // namespace proxdet
