#ifndef PROXDET_TRAJ_GENERATOR_H_
#define PROXDET_TRAJ_GENERATOR_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "road/road_network.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace proxdet {

/// Generates trajectory datasets over a road-network substrate. One
/// generator owns one network; all users it emits move on that network, so
/// their motion patterns (and, for R2-D2, the historical references) are
/// mutually consistent — mirroring how taxis in one city share one map.
class TrajectoryGenerator {
 public:
  explicit TrajectoryGenerator(const DatasetSpec& spec, uint64_t seed);

  /// Emits one user's trajectory with `ticks` samples.
  Trajectory GenerateOne(size_t ticks);

  /// Emits `count` independent user trajectories of equal length.
  std::vector<Trajectory> Generate(size_t count, size_t ticks);

  const RoadNetwork& network() const { return *network_; }
  const DatasetSpec& spec() const { return spec_; }

 private:
  /// Appends one routed trip starting at `*node`, advancing it to the trip's
  /// destination; emits ticked samples into `out` until either the trip ends
  /// or `out` reaches `ticks`.
  void AppendTrip(size_t ticks, NodeId* node, std::vector<Vec2>* out);

  double SpeedFor(RoadClass road_class) const;

  DatasetSpec spec_;
  std::unique_ptr<RoadNetwork> network_;
  Rng rng_;
};

}  // namespace proxdet

#endif  // PROXDET_TRAJ_GENERATOR_H_
