#ifndef PROXDET_TRAJ_DATASET_H_
#define PROXDET_TRAJ_DATASET_H_

#include <string>
#include <vector>

namespace proxdet {

/// The four motion-pattern families of the paper's evaluation (Sec. VI-A).
/// Each is realized by a synthetic generator over a road substrate; see
/// DESIGN.md §2.1 for the substitution rationale.
enum class DatasetKind {
  kGeoLife,        // Pedestrians with mixed transport modes; small extent.
  kBeijingTaxi,    // Large city grid, city-speed taxis.
  kSingaporeTaxi,  // Smaller, denser city grid.
  kTruck,          // Sparse long-haul highways, high speed, few turns.
};

/// All four kinds in paper order.
std::vector<DatasetKind> AllDatasetKinds();

/// Human-readable name matching the paper's dataset labels.
std::string DatasetName(DatasetKind kind);

/// Tunable motion profile for a dataset generator.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kGeoLife;
  // Network shape.
  int grid_rows = 30;
  int grid_cols = 30;
  double grid_spacing_m = 200.0;  // City grids.
  int arterial_every = 5;
  double node_jitter_m = 20.0;
  double highway_extent_m = 0.0;  // > 0 selects the highway skeleton.
  int highway_corridors = 0;
  // Speed profile (m/s) by road class; a per-trip mode factor multiplies it.
  double local_speed = 1.4;
  double arterial_speed = 1.8;
  double highway_speed = 22.0;
  // Per-trip transport-mode speed multipliers, drawn uniformly.
  std::vector<double> mode_factors = {1.0};
  // Dwell behavior between trips.
  double pause_probability = 0.3;
  int max_pause_ticks = 24;
  // Traffic realism during trips — these violate the constant-speed
  // assumption of linear safe regions while leaving the *path* intact,
  // which is precisely the regime the time-free stripe tolerates (Sec. V-A).
  double intersection_stop_prob = 0.0;  // Stop at a crossed node...
  double max_stop_seconds = 30.0;       // ...for up to this long.
  double jam_probability = 0.0;         // Per-tick chance a jam begins.
  double jam_factor = 0.25;             // Speed multiplier inside a jam.
  int max_jam_ticks = 60;               // Jam duration upper bound.
  // Measurement (GPS) noise applied to every emitted point, meters.
  double gps_noise_m = 2.0;
  // Base sampling tick, seconds (paper interpolates at 5 s).
  double tick_seconds = 5.0;
};

/// Canonical spec for each dataset kind.
DatasetSpec SpecFor(DatasetKind kind);

}  // namespace proxdet

#endif  // PROXDET_TRAJ_DATASET_H_
