#ifndef PROXDET_TRAJ_TRAJECTORY_H_
#define PROXDET_TRAJ_TRAJECTORY_H_

#include <vector>

#include "geom/vec2.h"

namespace proxdet {

/// A trajectory sampled at a fixed tick `dt_seconds`: position i is the
/// user's location at time i * dt. The paper interpolates all four datasets
/// at a 5 s step (Sec. VI-A); our generators emit ticked samples directly.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(std::vector<Vec2> points, double dt_seconds);

  const std::vector<Vec2>& points() const { return points_; }
  double dt() const { return dt_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Vec2& at(size_t i) const { return points_[i]; }

  /// Mean over ticks of the per-tick speed, in m/s.
  double AverageSpeed() const;

  /// Instantaneous speed entering tick i (0 for i == 0), in m/s.
  double SpeedAt(size_t i) const;

  /// Unit heading entering tick i; (0,0) when stationary or i == 0.
  Vec2 HeadingAt(size_t i) const;

  /// Total traveled length in meters.
  double PathLength() const;

  /// Contiguous sub-trajectory [begin, begin+count).
  Trajectory Slice(size_t begin, size_t count) const;

  /// Recent window: the last `count` points ending at index `end`
  /// (inclusive); shorter near the start.
  std::vector<Vec2> RecentWindow(size_t end, size_t count) const;

  /// Linear re-interpolation to a new tick; used when mixing data sources
  /// with different sampling rates (the real datasets sample at 1 s-3.1 min).
  Trajectory ResampledTo(double new_dt) const;

 private:
  std::vector<Vec2> points_;
  double dt_ = 1.0;
};

}  // namespace proxdet

#endif  // PROXDET_TRAJ_TRAJECTORY_H_
