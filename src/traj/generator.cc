#include "traj/generator.h"

#include <algorithm>

#include "geom/bbox.h"

namespace proxdet {

TrajectoryGenerator::TrajectoryGenerator(const DatasetSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {
  if (spec.highway_extent_m > 0.0) {
    const BBox extent{{0.0, 0.0},
                      {spec.highway_extent_m, spec.highway_extent_m}};
    network_ = std::make_unique<RoadNetwork>(RoadNetwork::MakeHighwaySkeleton(
        extent, spec.highway_corridors, 60, &rng_));
  } else {
    network_ = std::make_unique<RoadNetwork>(RoadNetwork::MakeCityGrid(
        spec.grid_rows, spec.grid_cols, spec.grid_spacing_m,
        spec.arterial_every, spec.node_jitter_m, &rng_));
  }
}

double TrajectoryGenerator::SpeedFor(RoadClass road_class) const {
  switch (road_class) {
    case RoadClass::kLocal:
      return spec_.local_speed;
    case RoadClass::kArterial:
      return spec_.arterial_speed;
    case RoadClass::kHighway:
      return spec_.highway_speed;
  }
  return spec_.local_speed;
}

void TrajectoryGenerator::AppendTrip(size_t ticks, NodeId* node,
                                     std::vector<Vec2>* out) {
  // Destination: any other node; the network metric shapes the route.
  NodeId dest = network_->RandomNode(&rng_);
  for (int attempt = 0; attempt < 4 && dest == *node; ++attempt) {
    dest = network_->RandomNode(&rng_);
  }
  const std::vector<NodeId> path = network_->ShortestPath(*node, dest);
  if (path.size() < 2) return;

  const double mode =
      spec_.mode_factors[rng_.NextIndex(spec_.mode_factors.size())];
  const double trip_speed_factor = mode * rng_.Uniform(0.9, 1.1);

  size_t edge = 0;  // Index into path segments: path[edge] -> path[edge+1].
  Vec2 pos = network_->node_position(path[0]);
  double along = 0.0;  // Distance already traveled on the current segment.
  double jitter = 1.0;       // Mean-reverting stop-and-go factor.
  double stop_seconds = 0.0;  // Remaining signal/toll dwell.
  int jam_ticks = 0;          // Remaining congestion ticks.
  while (out->size() < ticks && edge + 1 < path.size()) {
    double t_remaining = spec_.tick_seconds;
    jitter = 0.85 * jitter + 0.15 * rng_.Uniform(0.75, 1.25);
    if (jam_ticks > 0) {
      --jam_ticks;
    } else if (rng_.NextBool(spec_.jam_probability)) {
      jam_ticks = static_cast<int>(
          rng_.UniformInt(spec_.max_jam_ticks / 4 + 1, spec_.max_jam_ticks));
    }
    const double regime = jam_ticks > 0 ? spec_.jam_factor : 1.0;
    while (t_remaining > 1e-9 && edge + 1 < path.size()) {
      if (stop_seconds > 0.0) {
        // Held at a signal / toll gate: time passes, position does not.
        const double waited = std::min(stop_seconds, t_remaining);
        stop_seconds -= waited;
        t_remaining -= waited;
        continue;
      }
      const Vec2 a = network_->node_position(path[edge]);
      const Vec2 b = network_->node_position(path[edge + 1]);
      const double seg_len = Distance(a, b);
      const RoadClass klass = network_->EdgeClass(path[edge], path[edge + 1]);
      const double speed = std::max(
          0.2, SpeedFor(klass) * trip_speed_factor * jitter * regime);
      const double remaining_on_edge = seg_len - along;
      const double time_to_edge_end = remaining_on_edge / speed;
      if (time_to_edge_end > t_remaining) {
        along += speed * t_remaining;
        t_remaining = 0.0;
      } else {
        t_remaining -= time_to_edge_end;
        along = 0.0;
        ++edge;
        if (rng_.NextBool(spec_.intersection_stop_prob)) {
          stop_seconds = rng_.Uniform(3.0, spec_.max_stop_seconds);
        }
      }
      if (edge + 1 < path.size()) {
        const Vec2 na = network_->node_position(path[edge]);
        const Vec2 nb = network_->node_position(path[edge + 1]);
        const double nlen = Distance(na, nb);
        pos = nlen > 0.0 ? na + (nb - na) * (along / nlen) : na;
      } else {
        pos = network_->node_position(path.back());
      }
    }
    out->push_back(pos + Vec2{rng_.Gaussian(0.0, spec_.gps_noise_m),
                              rng_.Gaussian(0.0, spec_.gps_noise_m)});
  }
  *node = path.back();
}

Trajectory TrajectoryGenerator::GenerateOne(size_t ticks) {
  std::vector<Vec2> points;
  points.reserve(ticks);
  NodeId node = network_->RandomNode(&rng_);
  points.push_back(network_->node_position(node));
  while (points.size() < ticks) {
    if (rng_.NextBool(spec_.pause_probability)) {
      // Dwell: the user stays put (GPS noise still jitters the fix).
      const int dwell = static_cast<int>(
          rng_.UniformInt(1, std::max(1, spec_.max_pause_ticks)));
      const Vec2 anchor = points.back();
      for (int i = 0; i < dwell && points.size() < ticks; ++i) {
        points.push_back(anchor +
                         Vec2{rng_.Gaussian(0.0, spec_.gps_noise_m * 0.5),
                              rng_.Gaussian(0.0, spec_.gps_noise_m * 0.5)});
      }
    }
    const size_t before = points.size();
    AppendTrip(ticks, &node, &points);
    if (points.size() == before) {
      // Unreachable destination or degenerate trip; emit one dwell tick so
      // the loop always makes progress.
      points.push_back(points.back());
    }
  }
  points.resize(ticks);
  return Trajectory(std::move(points), spec_.tick_seconds);
}

std::vector<Trajectory> TrajectoryGenerator::Generate(size_t count,
                                                      size_t ticks) {
  std::vector<Trajectory> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(GenerateOne(ticks));
  return out;
}

}  // namespace proxdet
