#include "traj/trajectory.h"

#include <algorithm>
#include <cmath>

namespace proxdet {

Trajectory::Trajectory(std::vector<Vec2> points, double dt_seconds)
    : points_(std::move(points)), dt_(dt_seconds) {}

double Trajectory::AverageSpeed() const {
  if (points_.size() < 2 || dt_ <= 0.0) return 0.0;
  return PathLength() / (dt_ * static_cast<double>(points_.size() - 1));
}

double Trajectory::SpeedAt(size_t i) const {
  if (i == 0 || i >= points_.size() || dt_ <= 0.0) return 0.0;
  return Distance(points_[i - 1], points_[i]) / dt_;
}

Vec2 Trajectory::HeadingAt(size_t i) const {
  if (i == 0 || i >= points_.size()) return Vec2();
  return (points_[i] - points_[i - 1]).Normalized();
}

double Trajectory::PathLength() const {
  double acc = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    acc += Distance(points_[i - 1], points_[i]);
  }
  return acc;
}

Trajectory Trajectory::Slice(size_t begin, size_t count) const {
  begin = std::min(begin, points_.size());
  count = std::min(count, points_.size() - begin);
  return Trajectory(
      std::vector<Vec2>(points_.begin() + begin, points_.begin() + begin + count),
      dt_);
}

std::vector<Vec2> Trajectory::RecentWindow(size_t end, size_t count) const {
  if (points_.empty()) return {};
  end = std::min(end, points_.size() - 1);
  const size_t begin = end + 1 >= count ? end + 1 - count : 0;
  return std::vector<Vec2>(points_.begin() + begin, points_.begin() + end + 1);
}

Trajectory Trajectory::ResampledTo(double new_dt) const {
  if (points_.size() < 2 || new_dt <= 0.0 || dt_ <= 0.0) {
    return Trajectory(points_, new_dt);
  }
  const double total_time = dt_ * static_cast<double>(points_.size() - 1);
  std::vector<Vec2> out;
  for (double t = 0.0; t <= total_time + 1e-9; t += new_dt) {
    const double idx = std::min(t / dt_, static_cast<double>(points_.size() - 1));
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, points_.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    out.push_back(points_[lo] + (points_[hi] - points_[lo]) * frac);
  }
  return Trajectory(std::move(out), new_dt);
}

}  // namespace proxdet
