#ifndef PROXDET_TRAJ_STREAMING_H_
#define PROXDET_TRAJ_STREAMING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/vec2.h"
#include "road/road_network.h"
#include "traj/trajectory.h"

namespace proxdet {

/// Per-epoch location source with O(active users) state: instead of
/// materializing full `Trajectory` histories up front (N x epochs memory,
/// the cap ROADMAP.md calls out), a streaming generator holds one compact
/// motion record per user and emits the next epoch's positions on demand
/// from a seeded RNG. The stream is a pure function of the seed:
///
///   - `NextEpoch` advances every user by one detection epoch and writes
///     the resulting positions into a caller-owned, user-indexed buffer.
///   - `Reset` rewinds to epoch 0; replaying yields bit-identical samples.
///   - `Clone` is an independent rewound copy (sharing the immutable road
///     substrate), so oracles can re-walk the stream without disturbing
///     the live cursor.
///
/// Per-user draws come from per-user RNG streams, so the emitted positions
/// do not depend on generation order — `NextEpoch` may fan out across the
/// pool and stays bit-exact for any thread count.
class StreamingGenerator {
 public:
  virtual ~StreamingGenerator() = default;

  virtual size_t user_count() const = 0;

  /// Seconds of simulated time covered by one emitted epoch.
  virtual double epoch_seconds() const = 0;

  /// Rewinds the stream to the state before the first `NextEpoch`.
  virtual void Reset() = 0;

  /// Advances one epoch and writes `user_count()` positions to `out`
  /// (indexed by user id). The first call after Reset() emits epoch 0.
  virtual void NextEpoch(Vec2* out) = 0;

  /// Independent rewound copy of this stream.
  virtual std::unique_ptr<StreamingGenerator> Clone() const = 0;
};

/// Compact 8-byte SplitMix64 stream, the per-user RNG of the streaming
/// generators: the library-wide `Rng` (xoshiro + cached gaussian spare) is
/// 48 bytes, which at a million users is pure waste next to this.
struct StreamRng {
  uint64_t state = 0;

  uint64_t NextU64() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }
  uint64_t NextIndex(uint64_t n) { return NextU64() % n; }
  bool NextBool(double p) { return NextDouble() < p; }
  /// Box-Muller without the cached spare (stateless beyond `state`).
  double Gaussian(double mean, double stddev);
};

/// Configuration of the road-flow streaming generator. The motion model is
/// a lighter cousin of `TrajectoryGenerator`: trips over a shared city
/// grid, but routed by greedy next-hop steering (O(1) per edge) instead of
/// a stored Dijkstra path — the per-user state must stay constant-size.
struct FlowConfig {
  size_t user_count = 0;
  uint64_t seed = 42;

  /// Raw motion ticks integrated per emitted epoch (the paper's V knob)
  /// and the base tick length; epoch_seconds = speed_steps * tick_seconds.
  int speed_steps = 8;
  double tick_seconds = 5.0;

  /// Measurement noise applied to every emitted sample, meters.
  double gps_noise_m = 2.0;

  /// Dwell behavior at trip ends.
  double pause_probability = 0.3;
  int max_pause_ticks = 24;

  /// Speed profile of one transport modality (m/s by road class); users
  /// draw a modality by weight at creation — one graph can mix pedestrian,
  /// taxi and truck fleets.
  struct Modality {
    double local_mps = 1.4;
    double arterial_mps = 1.8;
    double weight = 1.0;
  };
  std::vector<Modality> modalities = {{}};

  /// Per-trip speed jitter bounds (multiplies the modality profile).
  double trip_factor_lo = 0.9;
  double trip_factor_hi = 1.1;

  /// Destination attractor: while `epoch` is in [begin_epoch, end_epoch),
  /// a user ending a trip picks its next destination among the nodes
  /// within `radius_m` of `center` with probability `bias` (uniform over
  /// the whole grid otherwise). Commuter corridors and flash crowds are
  /// both just attractor windows.
  struct Attractor {
    int begin_epoch = 0;
    int end_epoch = 0;
    double bias = 0.0;
    Vec2 center;
    double radius_m = 0.0;
  };
  std::vector<Attractor> attractors;

  /// Optional per-user membership windows [join_epoch, leave_epoch): a
  /// user outside its window idles at its spawn node (heavy-churn
  /// scenarios pair these with interest-edge updates). Empty = everyone
  /// active for the whole run. Shared because Clone() must not copy an
  /// O(users) schedule.
  std::shared_ptr<const std::vector<std::pair<int, int>>> active_windows;
};

/// The road-flow streaming generator. State per user is one fixed-size
/// record (~64 bytes); the road network is shared and immutable.
class RoadFlowGenerator final : public StreamingGenerator {
 public:
  RoadFlowGenerator(FlowConfig config,
                    std::shared_ptr<const RoadNetwork> network);

  size_t user_count() const override { return config_.user_count; }
  double epoch_seconds() const override {
    return config_.tick_seconds * config_.speed_steps;
  }
  void Reset() override;
  void NextEpoch(Vec2* out) override;
  std::unique_ptr<StreamingGenerator> Clone() const override;

  const RoadNetwork& network() const { return *network_; }
  const FlowConfig& config() const { return config_; }

 private:
  /// Compact per-user motion record; the whole streaming footprint is
  /// users_.size() of these.
  struct UserFlow {
    StreamRng rng;           // 8 B: private stream, order-independent.
    Vec2 pos;                // Current exact position.
    NodeId at = -1;          // Last node reached.
    NodeId next = -1;        // Node currently driven toward (== at: idle).
    NodeId prev = -1;        // Node before `at` (backtrack suppression).
    NodeId dest = -1;        // Trip destination.
    float edge_pos_m = 0;    // Progress along at->next.
    float edge_len_m = 0;
    float speed_mps = 0;     // Class speed x modality x trip factor.
    float trip_factor = 1;
    uint16_t pause_ticks = 0;
    uint16_t hop_budget = 0;  // Greedy steering fuse (ends trip at 0).
    uint8_t modality = 0;
  };

  void InitUser(size_t u);
  void BeginTrip(UserFlow& f);
  /// Greedy next hop from f.at toward f.dest; loads the edge into f.
  void SelectHop(UserFlow& f);
  void AdvanceTick(UserFlow& f);
  bool ActiveAt(size_t u, int epoch) const;

  FlowConfig config_;
  std::shared_ptr<const RoadNetwork> network_;
  std::vector<UserFlow> users_;
  /// Candidate node lists per attractor (precomputed once).
  std::vector<std::vector<NodeId>> attractor_nodes_;
  int epoch_ = 0;
};

/// Runs a rewound clone of `gen` through `epochs` epochs and records full
/// epoch-spaced trajectories — the materialized twin used as the
/// bit-exactness oracle for streaming runs (O(N x epochs) memory; small-N
/// only by design).
std::vector<Trajectory> MaterializeStream(const StreamingGenerator& gen,
                                          int epochs);

}  // namespace proxdet

#endif  // PROXDET_TRAJ_STREAMING_H_
