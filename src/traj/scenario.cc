#include "traj/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace proxdet {

std::vector<ScenarioKind> AllScenarioKinds() {
  return {ScenarioKind::kCommuterRush, ScenarioKind::kFlashCrowd,
          ScenarioKind::kHeavyChurn, ScenarioKind::kMixedFleet};
}

std::string ScenarioName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kCommuterRush:
      return "commuter_rush";
    case ScenarioKind::kFlashCrowd:
      return "flash_crowd";
    case ScenarioKind::kHeavyChurn:
      return "heavy_churn";
    case ScenarioKind::kMixedFleet:
      return "mixed_fleet";
  }
  return "unknown";
}

bool ParseScenarioName(const std::string& name, ScenarioKind* out) {
  for (ScenarioKind kind : AllScenarioKinds()) {
    if (ScenarioName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

namespace {

/// Grid side for N users: grows with sqrt(N) so user density (and with it
/// the alert rate per user) stays roughly constant across scales.
int GridSideFor(size_t num_users) {
  const int side = static_cast<int>(std::sqrt(static_cast<double>(num_users)) / 3.0);
  return std::clamp(side, 24, 160);
}

std::shared_ptr<const RoadNetwork> BuildSubstrate(const ScenarioSpec& spec,
                                                  int* rows, int* cols) {
  *rows = spec.grid_rows > 0 ? spec.grid_rows : GridSideFor(spec.num_users);
  *cols = spec.grid_cols > 0 ? spec.grid_cols : *rows;
  Rng rng(spec.seed ^ 0x5EEDULL);
  return std::make_shared<RoadNetwork>(RoadNetwork::MakeCityGrid(
      *rows, *cols, spec.grid_spacing_m, /*arterial_every=*/5,
      /*jitter=*/20.0, &rng));
}

std::vector<FlowConfig::Modality> ModalitiesFor(ScenarioKind kind) {
  // Single-class city fleet (taxi-like) by default; the mixed-fleet
  // scenario runs pedestrians, taxis and trucks in one graph.
  if (kind == ScenarioKind::kMixedFleet) {
    return {{1.4, 1.8, 0.5}, {7.0, 12.0, 0.35}, {5.0, 16.0, 0.15}};
  }
  return {{7.0, 12.0, 1.0}};
}

}  // namespace

Scenario BuildScenario(const ScenarioSpec& spec) {
  Scenario scenario;
  scenario.spec = spec;

  int rows = 0;
  int cols = 0;
  std::shared_ptr<const RoadNetwork> network =
      BuildSubstrate(spec, &rows, &cols);
  const BBox& extent = network->extent();
  const Vec2 center = extent.Center();
  const double span = std::max(extent.Width(), extent.Height());

  FlowConfig flow;
  flow.user_count = spec.num_users;
  flow.seed = spec.seed;
  flow.speed_steps = spec.speed_steps;
  flow.modalities = ModalitiesFor(spec.kind);

  switch (spec.kind) {
    case ScenarioKind::kCommuterRush:
      // Morning rush: most trips target the central work district, so
      // arterials toward it carry correlated corridor flows; after the
      // window closes the population disperses.
      flow.attractors.push_back({0, (spec.epochs * 11) / 20, 0.75, center,
                                 span / 6.0});
      break;
    case ScenarioKind::kFlashCrowd: {
      // Mid-run event: a tight attractor pulls a density spike around the
      // event point, then uniform destinations disperse it.
      const Vec2 event = {center.x + span / 8.0, center.y - span / 8.0};
      flow.attractors.push_back(
          {spec.epochs / 3, (2 * spec.epochs) / 3, 0.85, event, span / 10.0});
      break;
    }
    case ScenarioKind::kHeavyChurn:
    case ScenarioKind::kMixedFleet:
      break;
  }

  Rng graph_rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  scenario.graph = InterestGraph::Random(
      spec.num_users, spec.avg_friends, 0.7 * spec.alert_radius_m,
      1.3 * spec.alert_radius_m, &graph_rng);

  if (spec.kind == ScenarioKind::kHeavyChurn) {
    // Membership windows: a churn_fraction of users joins/leaves mid-run
    // (idling at spawn outside the window); their interest edges enter and
    // leave the graph with them, and an extra stream of pure edge churn
    // exercises the Sec. VI-E dynamic-graph machinery throughout.
    Rng churn_rng(spec.seed ^ 0xC0C0AULL);
    auto windows = std::make_shared<std::vector<std::pair<int, int>>>(
        spec.num_users, std::pair<int, int>{0, spec.epochs + 1});
    for (size_t u = 0; u < spec.num_users; ++u) {
      if (churn_rng.NextDouble() >= spec.churn_fraction) continue;
      const int join = static_cast<int>(churn_rng.NextIndex(
          static_cast<uint64_t>(std::max(1, spec.epochs / 2))));
      const int duration = static_cast<int>(
          churn_rng.UniformInt(spec.epochs / 4, (3 * spec.epochs) / 4));
      (*windows)[u] = {join, std::min(join + duration, spec.epochs + 1)};
    }
    // Edges whose endpoints are not simultaneously present for the whole
    // run move onto the churn schedule.
    for (const auto& e : scenario.graph.Edges()) {
      const auto& wu = (*windows)[e.u];
      const auto& ww = (*windows)[e.w];
      const int lo = std::max(wu.first, ww.first);
      const int hi = std::min(wu.second, ww.second);
      if (lo == 0 && hi >= spec.epochs) continue;  // Present throughout.
      if (lo < hi) {
        scenario.churn.push_back({lo, true, e.u, e.w, e.alert_radius});
        if (hi <= spec.epochs) {
          scenario.churn.push_back({hi, false, e.u, e.w, 0.0});
        }
      }
    }
    for (const EdgeChurnEvent& ev : scenario.churn) {
      if (ev.insert) scenario.graph.RemoveEdge(ev.u, ev.w);
    }
    // Pure edge churn among present users: friendships forming and
    // dissolving while both endpoints stay online.
    const size_t extra = std::max<size_t>(spec.num_users / 4, 8);
    for (size_t i = 0; i < extra; ++i) {
      const UserId u =
          static_cast<UserId>(churn_rng.NextIndex(spec.num_users));
      const UserId w =
          static_cast<UserId>(churn_rng.NextIndex(spec.num_users));
      if (u == w) continue;
      const int begin = static_cast<int>(churn_rng.UniformInt(
          1, std::max(2, spec.epochs - 2)));
      const int end = static_cast<int>(
          churn_rng.UniformInt(begin + 1, spec.epochs));
      const double radius =
          churn_rng.Uniform(0.7 * spec.alert_radius_m,
                            1.3 * spec.alert_radius_m);
      scenario.churn.push_back({begin, true, u, w, radius});
      scenario.churn.push_back({end, false, u, w, 0.0});
    }
    std::stable_sort(scenario.churn.begin(), scenario.churn.end(),
                     [](const EdgeChurnEvent& a, const EdgeChurnEvent& b) {
                       return a.epoch < b.epoch;
                     });
    flow.active_windows = std::move(windows);
  }

  scenario.generator =
      std::make_unique<RoadFlowGenerator>(std::move(flow), std::move(network));
  return scenario;
}

std::vector<Trajectory> BuildScenarioTraining(const ScenarioSpec& spec,
                                              size_t training_users,
                                              int training_epochs) {
  // Same substrate and motion profile, disjoint seed, no attractors or
  // churn: the predictors learn the scenario's speed/turn statistics from
  // a small materialized fleet regardless of how the monitored population
  // is generated.
  int rows = 0;
  int cols = 0;
  std::shared_ptr<const RoadNetwork> network =
      BuildSubstrate(spec, &rows, &cols);
  FlowConfig flow;
  flow.user_count = training_users;
  flow.seed = spec.seed ^ 0x7EA1ULL;
  flow.speed_steps = spec.speed_steps;
  flow.modalities = ModalitiesFor(spec.kind);
  RoadFlowGenerator gen(std::move(flow), std::move(network));
  return MaterializeStream(gen, training_epochs + 1);
}

}  // namespace proxdet
