#include "traj/streaming.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"

namespace proxdet {

double StreamRng::Gaussian(double mean, double stddev) {
  // Box-Muller, one variate per call; u1 is kept away from 0 so the log is
  // finite. No cached spare: the per-user record stays 8 bytes.
  const double u1 = (static_cast<double>(NextU64() >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

namespace {

/// Per-user seeding: decorrelate adjacent user ids, then one mix step so
/// the first draw is already well distributed.
StreamRng SeedFor(uint64_t seed, size_t u) {
  StreamRng rng;
  rng.state = seed ^ ((u + 1) * 0x9e3779b97f4a7c15ULL);
  rng.NextU64();
  return rng;
}

constexpr size_t kUserGrain = 512;

}  // namespace

RoadFlowGenerator::RoadFlowGenerator(
    FlowConfig config, std::shared_ptr<const RoadNetwork> network)
    : config_(std::move(config)), network_(std::move(network)) {
  attractor_nodes_.resize(config_.attractors.size());
  for (size_t a = 0; a < config_.attractors.size(); ++a) {
    const FlowConfig::Attractor& at = config_.attractors[a];
    std::vector<NodeId>& nodes = attractor_nodes_[a];
    for (NodeId n = 0; n < static_cast<NodeId>(network_->node_count()); ++n) {
      if (Distance(network_->node_position(n), at.center) <= at.radius_m) {
        nodes.push_back(n);
      }
    }
    if (nodes.empty()) nodes.push_back(network_->NearestNode(at.center));
  }
  Reset();
}

void RoadFlowGenerator::Reset() {
  epoch_ = 0;
  users_.assign(config_.user_count, UserFlow{});
  // Per-user records are independent, so initialization fans out too.
  ParallelForChunked(users_.size(), kUserGrain, [&](size_t lo, size_t hi) {
    for (size_t u = lo; u < hi; ++u) InitUser(u);
  });
}

void RoadFlowGenerator::InitUser(size_t u) {
  UserFlow& f = users_[u];
  f.rng = SeedFor(config_.seed, u);
  // Weighted modality draw (pedestrian/taxi/truck classes in one graph).
  double total = 0.0;
  for (const auto& m : config_.modalities) total += m.weight;
  double pick = f.rng.NextDouble() * total;
  f.modality = static_cast<uint8_t>(config_.modalities.size() - 1);
  for (size_t m = 0; m < config_.modalities.size(); ++m) {
    pick -= config_.modalities[m].weight;
    if (pick < 0.0) {
      f.modality = static_cast<uint8_t>(m);
      break;
    }
  }
  f.at = static_cast<NodeId>(f.rng.NextIndex(network_->node_count()));
  f.prev = -1;
  f.next = f.at;
  f.dest = f.at;
  f.pos = network_->node_position(f.at);
  // Stagger departures so the whole population doesn't pulse in lockstep.
  f.pause_ticks = static_cast<uint16_t>(
      f.rng.NextIndex(static_cast<uint64_t>(config_.max_pause_ticks) + 1));
}

bool RoadFlowGenerator::ActiveAt(size_t u, int epoch) const {
  if (config_.active_windows == nullptr) return true;
  const auto& w = (*config_.active_windows)[u];
  return epoch >= w.first && epoch < w.second;
}

void RoadFlowGenerator::BeginTrip(UserFlow& f) {
  if (f.rng.NextBool(config_.pause_probability)) {
    f.pause_ticks = static_cast<uint16_t>(
        1 + f.rng.NextIndex(static_cast<uint64_t>(config_.max_pause_ticks)));
  }
  // Destination: an active attractor window captures the pick with its
  // bias probability; otherwise uniform over the grid.
  NodeId dest = -1;
  for (size_t a = 0; a < config_.attractors.size(); ++a) {
    const FlowConfig::Attractor& at = config_.attractors[a];
    if (epoch_ < at.begin_epoch || epoch_ >= at.end_epoch) continue;
    if (!f.rng.NextBool(at.bias)) continue;
    const std::vector<NodeId>& nodes = attractor_nodes_[a];
    dest = nodes[f.rng.NextIndex(nodes.size())];
    break;
  }
  if (dest < 0) {
    dest = static_cast<NodeId>(f.rng.NextIndex(network_->node_count()));
  }
  f.dest = dest;
  f.trip_factor = static_cast<float>(
      f.rng.Uniform(config_.trip_factor_lo, config_.trip_factor_hi));
  // Greedy steering fuse: generous next to any sane hop count, but bounds
  // pathological oscillation on jittered grids.
  f.hop_budget = static_cast<uint16_t>(
      std::min<size_t>(network_->node_count(), 4096));
  f.prev = -1;
}

void RoadFlowGenerator::SelectHop(UserFlow& f) {
  const std::vector<RoadEdge>& edges = network_->edges_from(f.at);
  if (edges.empty() || f.dest == f.at) {
    f.next = f.at;
    f.dest = f.at;
    return;
  }
  const Vec2 goal = network_->node_position(f.dest);
  int best = -1;
  double best_d = 0.0;
  for (size_t i = 0; i < edges.size(); ++i) {
    // Suppress immediate backtracking unless the node is a dead end.
    if (edges[i].to == f.prev && edges.size() > 1) continue;
    const double d = Distance(network_->node_position(edges[i].to), goal);
    if (best < 0 || d < best_d) {
      best = static_cast<int>(i);
      best_d = d;
    }
  }
  const RoadEdge& e = edges[best];
  f.next = e.to;
  f.edge_pos_m = 0.0f;
  f.edge_len_m = static_cast<float>(e.length);
  const FlowConfig::Modality& m = config_.modalities[f.modality];
  const double cls =
      e.road_class == RoadClass::kLocal ? m.local_mps : m.arterial_mps;
  f.speed_mps = static_cast<float>(cls * f.trip_factor);
  if (f.hop_budget > 0) --f.hop_budget;
}

void RoadFlowGenerator::AdvanceTick(UserFlow& f) {
  if (f.pause_ticks > 0) {
    --f.pause_ticks;
    return;
  }
  if (f.next == f.at) {
    // Idle at a node: start the next trip (or the next hop of a pending
    // one, when a dwell interrupted it).
    if (f.at == f.dest || f.hop_budget == 0) BeginTrip(f);
    if (f.pause_ticks > 0) return;
    SelectHop(f);
    if (f.next == f.at) return;  // Isolated node or degenerate trip.
  }
  double remaining = static_cast<double>(f.speed_mps) * config_.tick_seconds;
  while (remaining > 0.0) {
    const double left =
        static_cast<double>(f.edge_len_m) - static_cast<double>(f.edge_pos_m);
    if (remaining < left) {
      f.edge_pos_m += static_cast<float>(remaining);
      break;
    }
    remaining -= left;
    f.prev = f.at;
    f.at = f.next;
    f.edge_pos_m = 0.0f;
    if (f.at == f.dest || f.hop_budget == 0) {
      // Trip complete: park at the node; the next tick begins a new trip.
      f.next = f.at;
      f.pos = network_->node_position(f.at);
      return;
    }
    SelectHop(f);
    if (f.next == f.at) {
      f.pos = network_->node_position(f.at);
      return;
    }
  }
  const Vec2 a = network_->node_position(f.at);
  const Vec2 b = network_->node_position(f.next);
  const double t = f.edge_len_m > 0.0f
                       ? static_cast<double>(f.edge_pos_m) / f.edge_len_m
                       : 0.0;
  f.pos = {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

void RoadFlowGenerator::NextEpoch(Vec2* out) {
  const int epoch = epoch_;
  // Epoch e is the state after e * speed_steps ticks, so the first emitted
  // epoch (0) is the spawn configuration. Per-user state is private and
  // output slots are disjoint: the fan-out is bit-exact for any thread
  // count.
  ParallelForChunked(users_.size(), kUserGrain, [&](size_t lo, size_t hi) {
    for (size_t u = lo; u < hi; ++u) {
      UserFlow& f = users_[u];
      if (epoch > 0 && ActiveAt(u, epoch)) {
        for (int t = 0; t < config_.speed_steps; ++t) AdvanceTick(f);
      }
      out[u] = {f.pos.x + f.rng.Gaussian(0.0, config_.gps_noise_m),
                f.pos.y + f.rng.Gaussian(0.0, config_.gps_noise_m)};
    }
  });
  ++epoch_;
}

std::unique_ptr<StreamingGenerator> RoadFlowGenerator::Clone() const {
  return std::make_unique<RoadFlowGenerator>(config_, network_);
}

std::vector<Trajectory> MaterializeStream(const StreamingGenerator& gen,
                                          int epochs) {
  std::unique_ptr<StreamingGenerator> g = gen.Clone();
  const size_t n = g->user_count();
  std::vector<std::vector<Vec2>> points(n);
  for (std::vector<Vec2>& p : points) p.reserve(static_cast<size_t>(epochs));
  std::vector<Vec2> buf(n);
  for (int e = 0; e < epochs; ++e) {
    g->NextEpoch(buf.data());
    for (size_t u = 0; u < n; ++u) points[u].push_back(buf[u]);
  }
  std::vector<Trajectory> out;
  out.reserve(n);
  for (size_t u = 0; u < n; ++u) {
    out.emplace_back(std::move(points[u]), g->epoch_seconds());
  }
  return out;
}

}  // namespace proxdet
