#include "region/match_region.h"

namespace proxdet {

MatchRegion MatchRegion::Make(const Vec2& l_u, const Vec2& l_w, double r) {
  MatchRegion m;
  m.circle_ = Circle{(l_u + l_w) * 0.5, r * 0.5};
  return m;
}

}  // namespace proxdet
