#ifndef PROXDET_REGION_REGION_H_
#define PROXDET_REGION_REGION_H_

#include <variant>

#include "geom/circle.h"
#include "geom/polygon.h"
#include "geom/stripe.h"
#include "region/moving_circle.h"

namespace proxdet {

/// The safe-region taxonomy used by the detectors: static circles
/// (initialization, Sec. V-C), mobile circles (FMD/CMD [19]), static convex
/// polygons (Buddy Tracking [3]) and predictive stripes (this paper).
using SafeRegionShape = std::variant<Circle, MovingCircle, ConvexPolygon, Stripe>;

/// Closed containment of p in the shape at the given epoch (only
/// MovingCircle is time-dependent).
bool ShapeContains(const SafeRegionShape& shape, const Vec2& p, int epoch);

/// Minimum distance from p to the shape at the given epoch (0 when inside).
double ShapeDistanceToPoint(const SafeRegionShape& shape, const Vec2& p,
                            int epoch);

/// Minimum distance between two shapes at the given epoch (0 on overlap).
/// Exact for every pair in the taxonomy (polygon-vs-buffered-polyline pairs
/// reduce to segment-segment scans).
double ShapeMinDistance(const SafeRegionShape& a, const SafeRegionShape& b,
                        int epoch);

}  // namespace proxdet

#endif  // PROXDET_REGION_REGION_H_
