#ifndef PROXDET_REGION_REGION_H_
#define PROXDET_REGION_REGION_H_

#include <variant>

#include "geom/bbox.h"
#include "geom/circle.h"
#include "geom/polygon.h"
#include "geom/stripe.h"
#include "region/moving_circle.h"

namespace proxdet {

/// The safe-region taxonomy used by the detectors: static circles
/// (initialization, Sec. V-C), mobile circles (FMD/CMD [19]), static convex
/// polygons (Buddy Tracking [3]) and predictive stripes (this paper).
using SafeRegionShape = std::variant<Circle, MovingCircle, ConvexPolygon, Stripe>;

/// Closed containment of p in the shape at the given epoch (only
/// MovingCircle is time-dependent).
bool ShapeContains(const SafeRegionShape& shape, const Vec2& p, int epoch);

/// Minimum distance from p to the shape at the given epoch (0 when inside).
double ShapeDistanceToPoint(const SafeRegionShape& shape, const Vec2& p,
                            int epoch);

/// Minimum distance between two shapes at the given epoch (0 on overlap).
/// Exact for every pair in the taxonomy (polygon-vs-buffered-polyline pairs
/// reduce to segment-segment scans).
double ShapeMinDistance(const SafeRegionShape& a, const SafeRegionShape& b,
                        int epoch);

/// Epoch-resolved axis-aligned bounds containing the whole shape. Circles
/// and moving circles resolve on the fly (trivial); polygons and stripes
/// return the box cached at construction. Returns false for degenerate
/// shapes (no vertices / empty path) whose exact distances follow special
/// conventions — callers must then skip box-based pruning.
bool ShapeBoundsAt(const SafeRegionShape& shape, int epoch, BBox* out);

/// True iff ShapeMinDistance(a, b, epoch) < threshold (<= when inclusive),
/// with AABB lower-bound pruning: when the box-to-box distance already
/// clears the threshold the exact geometry (O(segments^2) for
/// stripe/polygon pairs) is never touched. Sound because the box distance
/// never exceeds the exact distance, so the comparison outcome — the only
/// thing detector decisions consume — is identical to the unpruned form.
bool ShapeMinDistanceBelow(const SafeRegionShape& a, const SafeRegionShape& b,
                           int epoch, double threshold,
                           bool inclusive = false);

/// True iff ShapeDistanceToPoint(shape, p, epoch) < threshold (<= when
/// inclusive), with the same AABB pruning contract.
bool ShapeDistanceToPointBelow(const SafeRegionShape& shape, const Vec2& p,
                               int epoch, double threshold,
                               bool inclusive = false);

}  // namespace proxdet

#endif  // PROXDET_REGION_REGION_H_
