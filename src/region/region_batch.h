#ifndef PROXDET_REGION_REGION_BATCH_H_
#define PROXDET_REGION_REGION_BATCH_H_

#include <cstddef>

#include "region/region.h"

namespace proxdet {

/// Batched ShapeDistanceToPoint: out[i] = ShapeDistanceToPoint(shape,
/// {xs[i], ys[i]}, epoch), bit-exact with the scalar call (the variant is
/// resolved once and the per-point scan runs through the SIMD kernels;
/// polygons fall back to the scalar loop — they are not on the hot path).
void ShapeDistanceToPoints(const SafeRegionShape& shape, const double* xs,
                           const double* ys, size_t n, int epoch, double* out);

}  // namespace proxdet

#endif  // PROXDET_REGION_REGION_BATCH_H_
