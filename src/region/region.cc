#include "region/region.h"

#include <algorithm>
#include <limits>

namespace proxdet {
namespace {

// Distance between a polyline and a convex polygon boundary/interior.
double PolylineToPolygon(const Polyline& line, const ConvexPolygon& poly) {
  if (line.empty() || poly.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  // Inside-polygon cases collapse to zero via the vertex-distance test.
  double best = std::numeric_limits<double>::infinity();
  for (const Vec2& p : line.points()) {
    best = std::min(best, poly.DistanceToPoint(p));
    if (best == 0.0) return 0.0;
  }
  const auto& verts = poly.vertices();
  for (size_t i = 0; i < verts.size(); ++i) {
    const Segment edge{verts[i], verts[(i + 1) % verts.size()]};
    if (line.size() == 1) {
      best = std::min(best, DistancePointToSegment(line.points()[0], edge));
      continue;
    }
    for (size_t j = 0; j + 1 < line.size(); ++j) {
      best = std::min(best, DistanceSegmentToSegment(edge, line.segment(j)));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double CircleToPolygon(const Circle& c, const ConvexPolygon& poly) {
  return std::max(0.0, poly.DistanceToPoint(c.center) - c.radius);
}

double StripeToPolygon(const Stripe& s, const ConvexPolygon& poly) {
  return std::max(0.0, PolylineToPolygon(s.path(), poly) - s.radius());
}

double StripeToCircleShape(const Stripe& s, const Circle& c) {
  return s.DistanceToCircle(c);
}

struct DistanceVisitor {
  int epoch;

  double operator()(const Circle& a, const Circle& b) const {
    return DistanceCircleToCircle(a, b);
  }
  double operator()(const Circle& a, const MovingCircle& b) const {
    return DistanceCircleToCircle(a, b.AtEpoch(epoch));
  }
  double operator()(const Circle& a, const ConvexPolygon& b) const {
    return CircleToPolygon(a, b);
  }
  double operator()(const Circle& a, const Stripe& b) const {
    return StripeToCircleShape(b, a);
  }
  double operator()(const MovingCircle& a, const Circle& b) const {
    return DistanceCircleToCircle(a.AtEpoch(epoch), b);
  }
  double operator()(const MovingCircle& a, const MovingCircle& b) const {
    return DistanceCircleToCircle(a.AtEpoch(epoch), b.AtEpoch(epoch));
  }
  double operator()(const MovingCircle& a, const ConvexPolygon& b) const {
    return CircleToPolygon(a.AtEpoch(epoch), b);
  }
  double operator()(const MovingCircle& a, const Stripe& b) const {
    return StripeToCircleShape(b, a.AtEpoch(epoch));
  }
  double operator()(const ConvexPolygon& a, const Circle& b) const {
    return CircleToPolygon(b, a);
  }
  double operator()(const ConvexPolygon& a, const MovingCircle& b) const {
    return CircleToPolygon(b.AtEpoch(epoch), a);
  }
  double operator()(const ConvexPolygon& a, const ConvexPolygon& b) const {
    return a.DistanceToPolygon(b);
  }
  double operator()(const ConvexPolygon& a, const Stripe& b) const {
    return StripeToPolygon(b, a);
  }
  double operator()(const Stripe& a, const Circle& b) const {
    return StripeToCircleShape(a, b);
  }
  double operator()(const Stripe& a, const MovingCircle& b) const {
    return StripeToCircleShape(a, b.AtEpoch(epoch));
  }
  double operator()(const Stripe& a, const ConvexPolygon& b) const {
    return StripeToPolygon(a, b);
  }
  double operator()(const Stripe& a, const Stripe& b) const {
    return a.DistanceToStripe(b);
  }
};

}  // namespace

bool ShapeContains(const SafeRegionShape& shape, const Vec2& p, int epoch) {
  return std::visit(
      [&p, epoch](const auto& s) -> bool {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Circle>) {
          return s.Contains(p);
        } else if constexpr (std::is_same_v<T, MovingCircle>) {
          return s.Contains(p, epoch);
        } else {
          return s.Contains(p);
        }
      },
      shape);
}

double ShapeDistanceToPoint(const SafeRegionShape& shape, const Vec2& p,
                            int epoch) {
  return std::visit(
      [&p, epoch](const auto& s) -> double {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Circle>) {
          return DistancePointToCircle(p, s);
        } else if constexpr (std::is_same_v<T, MovingCircle>) {
          return DistancePointToCircle(p, s.AtEpoch(epoch));
        } else if constexpr (std::is_same_v<T, ConvexPolygon>) {
          return s.DistanceToPoint(p);
        } else {
          return s.DistanceToPoint(p);
        }
      },
      shape);
}

double ShapeMinDistance(const SafeRegionShape& a, const SafeRegionShape& b,
                        int epoch) {
  return std::visit(DistanceVisitor{epoch}, a, b);
}

namespace {

BBox CircleBounds(const Circle& c) {
  return {{c.center.x - c.radius, c.center.y - c.radius},
          {c.center.x + c.radius, c.center.y + c.radius}};
}

bool Below(double d, double threshold, bool inclusive) {
  return inclusive ? d <= threshold : d < threshold;
}

}  // namespace

bool ShapeBoundsAt(const SafeRegionShape& shape, int epoch, BBox* out) {
  return std::visit(
      [epoch, out](const auto& s) -> bool {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Circle>) {
          *out = CircleBounds(s);
          return true;
        } else if constexpr (std::is_same_v<T, MovingCircle>) {
          *out = CircleBounds(s.AtEpoch(epoch));
          return true;
        } else if constexpr (std::is_same_v<T, ConvexPolygon>) {
          // A vertex-free polygon reports distance 0 to everything; no box
          // can bound that convention. One or two vertices still behave as
          // exact point/segment geometry, which the vertex box contains.
          if (s.vertices().empty()) return false;
          *out = s.bounds();
          return true;
        } else {
          if (!s.has_bounds()) return false;
          *out = s.bounds();
          return true;
        }
      },
      shape);
}

bool ShapeMinDistanceBelow(const SafeRegionShape& a, const SafeRegionShape& b,
                           int epoch, double threshold, bool inclusive) {
  BBox box_a, box_b;
  if (ShapeBoundsAt(a, epoch, &box_a) && ShapeBoundsAt(b, epoch, &box_b) &&
      box_a.DistanceToBox(box_b) > threshold) {
    // exact >= box distance > threshold: the branch is decided.
    return false;
  }
  return Below(ShapeMinDistance(a, b, epoch), threshold, inclusive);
}

bool ShapeDistanceToPointBelow(const SafeRegionShape& shape, const Vec2& p,
                               int epoch, double threshold, bool inclusive) {
  BBox box;
  if (ShapeBoundsAt(shape, epoch, &box) &&
      box.DistanceToPoint(p) > threshold) {
    return false;
  }
  return Below(ShapeDistanceToPoint(shape, p, epoch), threshold, inclusive);
}

}  // namespace proxdet
