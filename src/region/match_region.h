#ifndef PROXDET_REGION_MATCH_REGION_H_
#define PROXDET_REGION_MATCH_REGION_H_

#include "geom/circle.h"
#include "geom/vec2.h"

namespace proxdet {

/// The match region of Def. 3: once a pair (u, w) matches, both carry a
/// circle centered at their midpoint with radius r_{u,w} / 2. While both
/// stay strictly inside it, d(u, w) < r_{u,w} by the triangle inequality,
/// so no communication is needed to keep the alert state alive.
class MatchRegion {
 public:
  MatchRegion() = default;

  /// Builds the region for exact locations l_u, l_w and alert radius r.
  static MatchRegion Make(const Vec2& l_u, const Vec2& l_w, double r);

  /// Strict containment (see DESIGN.md §2.2: strictness guarantees
  /// d(u,w) < r, matching Def. 1's strict alert predicate).
  bool Contains(const Vec2& p) const { return circle_.ContainsStrict(p); }

  const Circle& circle() const { return circle_; }

 private:
  Circle circle_;
};

}  // namespace proxdet

#endif  // PROXDET_REGION_MATCH_REGION_H_
