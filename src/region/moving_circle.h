#ifndef PROXDET_REGION_MOVING_CIRCLE_H_
#define PROXDET_REGION_MOVING_CIRCLE_H_

#include "geom/circle.h"
#include "geom/vec2.h"

namespace proxdet {

/// The mobile safe region of FMD/CMD [19]: a circle whose center moves with
/// the constant velocity the user had at construction time. Time is
/// measured in epochs (the simulation tick).
struct MovingCircle {
  Vec2 center_at_build;
  Vec2 velocity_per_epoch;  // Meters per epoch.
  double radius = 0.0;
  int built_epoch = 0;

  Vec2 CenterAt(int epoch) const {
    return center_at_build +
           velocity_per_epoch * static_cast<double>(epoch - built_epoch);
  }

  Circle AtEpoch(int epoch) const { return {CenterAt(epoch), radius}; }

  bool Contains(const Vec2& p, int epoch) const {
    return AtEpoch(epoch).Contains(p);
  }

  /// Exact (bitwise) structural equality; the wire codec's round-trip
  /// guarantee is stated in terms of it.
  friend bool operator==(const MovingCircle& a, const MovingCircle& b) {
    return a.center_at_build == b.center_at_build &&
           a.velocity_per_epoch == b.velocity_per_epoch &&
           a.radius == b.radius && a.built_epoch == b.built_epoch;
  }
};

}  // namespace proxdet

#endif  // PROXDET_REGION_MOVING_CIRCLE_H_
