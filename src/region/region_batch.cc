#include "region/region_batch.h"

#include <algorithm>
#include <cmath>
#include <variant>

#include "geom/simd/simd.h"

namespace proxdet {

void ShapeDistanceToPoints(const SafeRegionShape& shape, const double* xs,
                           const double* ys, size_t n, int epoch,
                           double* out) {
  std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Circle>) {
          simd::CircleDistanceToPoints(s.center.x, s.center.y, s.radius, xs,
                                       ys, n, out);
        } else if constexpr (std::is_same_v<T, MovingCircle>) {
          const Circle c = s.AtEpoch(epoch);
          simd::CircleDistanceToPoints(c.center.x, c.center.y, c.radius, xs,
                                       ys, n, out);
        } else if constexpr (std::is_same_v<T, ConvexPolygon>) {
          for (size_t i = 0; i < n; ++i) {
            out[i] = s.DistanceToPoint({xs[i], ys[i]});
          }
        } else {  // Stripe
          simd::PolylineSquaredDistanceToPoints(s.segments_soa(), xs, ys, n,
                                                out);
          for (size_t i = 0; i < n; ++i) {
            out[i] = std::max(0.0, std::sqrt(out[i]) - s.radius());
          }
        }
      },
      shape);
}

}  // namespace proxdet
