#ifndef PROXDET_OBS_METRICS_H_
#define PROXDET_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace proxdet {
namespace obs {

/// How a metric's value relates to the determinism contract:
///  - kDeterministic: a pure function of (workload seed, transport seed) —
///    message counts, rebuild counts, drop/dup/retransmission counts,
///    cost-model distributions. Identical across repeated same-seed runs
///    and across PROXDET_THREADS values; the obs determinism test compares
///    these bit-exactly.
///  - kWallClock: derived from real time or machine scheduling (span
///    durations, queue waits, per-worker busy time, task counts that depend
///    on the pool size). Reported separately, never compared — the same
///    segregation CommStats::server_seconds already follows.
enum class Kind { kDeterministic, kWallClock };

/// Point-in-time copy of every registered metric, grouped for reporting.
/// Defined unconditionally (it is plain data): in the compiled-out build
/// snapshots are simply empty.
struct MetricsSnapshot {
  struct HistogramEntry {
    Kind kind = Kind::kWallClock;
    Histogram value;
  };
  struct QuantileEntry {
    Kind kind = Kind::kWallClock;
    StreamingQuantile value;
  };

  std::map<std::string, std::pair<Kind, uint64_t>> counters;
  std::map<std::string, std::pair<Kind, double>> gauges;
  std::map<std::string, HistogramEntry> histograms;
  std::map<std::string, QuantileEntry> quantiles;

  /// Counter name -> value for counters flagged kDeterministic.
  std::map<std::string, uint64_t> DeterministicCounters() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [name, entry] : counters) {
      if (entry.first == Kind::kDeterministic) out[name] = entry.second;
    }
    return out;
  }

  /// Human-readable digest of every deterministic value (counters, gauges,
  /// histogram bucket counts, quantile sketch buckets). Two runs with equal
  /// deterministic state produce byte-identical digests — the form the
  /// determinism tests compare, so a mismatch prints a readable diff.
  std::string DeterministicDigest() const {
    std::string out;
    for (const auto& [name, entry] : counters) {
      if (entry.first != Kind::kDeterministic) continue;
      out += "counter " + name + " = " + std::to_string(entry.second) + "\n";
    }
    for (const auto& [name, entry] : gauges) {
      if (entry.first != Kind::kDeterministic) continue;
      out += "gauge " + name + " = " +
             std::to_string(std::bit_cast<uint64_t>(entry.second)) + "\n";
    }
    for (const auto& [name, entry] : histograms) {
      if (entry.kind != Kind::kDeterministic) continue;
      out += "histogram " + name + " =";
      for (const uint64_t c : entry.value.bucket_counts()) {
        out += " " + std::to_string(c);
      }
      out += " sum_bits " +
             std::to_string(std::bit_cast<uint64_t>(entry.value.sum())) + "\n";
    }
    for (const auto& [name, entry] : quantiles) {
      if (entry.kind != Kind::kDeterministic) continue;
      out += "quantile " + name + " =";
      for (const auto& [index, c] : entry.value.buckets()) {
        out += " " + std::to_string(index) + ":" + std::to_string(c);
      }
      out += " sum_bits " +
             std::to_string(std::bit_cast<uint64_t>(entry.value.sum())) + "\n";
    }
    return out;
  }
};

#ifndef PROXDET_OBS_DISABLED

/// The live implementation. The inline namespace keeps the enabled and
/// compiled-out types distinct at the ABI level (different mangled names),
/// so a translation unit built with PROXDET_OBS_DISABLED can never collide
/// with the library's real symbols.
inline namespace enabled {

/// Monotonic counter. Inc() is a single relaxed atomic add — safe from any
/// thread, including pool workers inside parallel scans; relaxed ordering
/// is enough because totals are only read after the run quiesces.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double value with atomic Add/MaxOf accumulation
/// (bit-packed through a uint64 atomic; no locks, TSan-clean).
class Gauge {
 public:
  void Set(double x) {
    bits_.store(std::bit_cast<uint64_t>(x), std::memory_order_relaxed);
  }
  void Add(double d) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + d),
        std::memory_order_relaxed)) {
    }
  }
  void MaxOf(double x) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (std::bit_cast<double>(old) < x &&
           !bits_.compare_exchange_weak(old, std::bit_cast<uint64_t>(x),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class MetricsRegistry;
  void Reset() { bits_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> bits_{0};  // Packed double; starts at 0.0.
};

/// Thread-safe fixed-bucket histogram (mutex-guarded; recorded from serial
/// commit sections or coarse-grained pool tasks, never per-geometry-op).
class HistogramMetric {
 public:
  void Record(double x) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.Record(x);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }

 private:
  friend class MetricsRegistry;
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.Reset();
  }

  mutable std::mutex mutex_;
  Histogram histogram_;
};

/// Thread-safe streaming-quantile sketch.
class QuantileMetric {
 public:
  void Record(double x) {
    std::lock_guard<std::mutex> lock(mutex_);
    sketch_.Record(x);
  }
  StreamingQuantile snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sketch_;
  }

 private:
  friend class MetricsRegistry;
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    sketch_.Reset();
  }

  mutable std::mutex mutex_;
  StreamingQuantile sketch_;
};

/// Thread-safe metrics registry. Registration (Get*) takes a mutex and may
/// allocate; the returned reference is stable for the registry's lifetime,
/// so hot paths resolve their handles once (static or member caching) and
/// then touch only the metric's own atomics — zero allocation, no registry
/// lock. Re-registering an existing name returns the original metric; the
/// first registration's kind (and bounds) win.
///
/// Reset() zeroes every value but keeps all registrations (and hence every
/// cached handle) valid — the per-run scoping discipline: reset, run,
/// snapshot.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name,
                      Kind kind = Kind::kDeterministic);
  Gauge& GetGauge(const std::string& name, Kind kind = Kind::kWallClock);
  HistogramMetric& GetHistogram(const std::string& name,
                                const std::vector<double>& upper_bounds,
                                Kind kind = Kind::kWallClock);
  QuantileMetric& GetQuantile(const std::string& name,
                              Kind kind = Kind::kWallClock);

  /// Zeroes all values; registrations and handles stay valid.
  void Reset();

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (counters, gauges, histograms with
  /// cumulative `le` buckets, quantile sketches as summaries). Metric names
  /// are sanitized to [a-zA-Z0-9_] and prefixed "proxdet_".
  std::string PrometheusDump() const;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& Global();

 private:
  /// The registration kind lives in the map entry, not the metric, so the
  /// handle classes stay a single atomic word where possible.
  template <typename T>
  struct Entry {
    Kind kind = Kind::kDeterministic;
    std::unique_ptr<T> metric;
  };

  template <typename T>
  T& GetOrCreate(std::map<std::string, Entry<T>>& map,
                 const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<HistogramMetric>> histograms_;
  std::map<std::string, Entry<QuantileMetric>> quantiles_;
};

}  // namespace enabled

#else  // PROXDET_OBS_DISABLED

/// Compiled-out mode: every handle is an empty inline no-op and the
/// registry hands out shared stubs. Call sites compile unchanged and the
/// optimizer deletes them entirely. Distinct inline namespace => distinct
/// mangled names from the enabled build; nothing here links against
/// metrics.cc.
inline namespace noop {

class Counter {
 public:
  void Inc(uint64_t = 1) {}
  uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  void MaxOf(double) {}
  double value() const { return 0.0; }
};

class HistogramMetric {
 public:
  void Record(double) {}
  Histogram snapshot() const { return Histogram(); }
};

class QuantileMetric {
 public:
  void Record(double) {}
  StreamingQuantile snapshot() const { return StreamingQuantile(); }
};

class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string&, Kind = Kind::kDeterministic) {
    return counter_;
  }
  Gauge& GetGauge(const std::string&, Kind = Kind::kWallClock) {
    return gauge_;
  }
  HistogramMetric& GetHistogram(const std::string&,
                                const std::vector<double>&,
                                Kind = Kind::kWallClock) {
    return histogram_;
  }
  QuantileMetric& GetQuantile(const std::string&, Kind = Kind::kWallClock) {
    return quantile_;
  }
  void Reset() {}
  MetricsSnapshot Snapshot() const { return MetricsSnapshot(); }
  std::string PrometheusDump() const { return std::string(); }
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }

 private:
  Counter counter_;
  Gauge gauge_;
  HistogramMetric histogram_;
  QuantileMetric quantile_;
};

}  // namespace noop

#endif  // PROXDET_OBS_DISABLED

/// Shorthand for MetricsRegistry::Global().
inline MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_METRICS_H_
