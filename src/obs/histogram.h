#ifndef PROXDET_OBS_HISTOGRAM_H_
#define PROXDET_OBS_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <vector>

namespace proxdet {
namespace obs {

/// Fixed-bucket histogram: explicit, sorted upper bounds plus an implicit
/// +inf overflow bucket (Prometheus "le" semantics: a sample lands in the
/// first bucket whose upper bound is >= the value). Counts, sum, min and
/// max are exact; Quantile() interpolates linearly inside the bucket.
///
/// Merge discipline: two histograms with identical bounds merge by adding
/// bucket counts, so Merge(a, b) equals the histogram of the concatenated
/// sample streams exactly (the property the obs test suite enforces).
class Histogram {
 public:
  Histogram() : Histogram(std::vector<double>{}) {}
  /// `upper_bounds` must be strictly increasing; may be empty (single
  /// overflow bucket, degenerate but legal).
  explicit Histogram(std::vector<double> upper_bounds);

  /// Evenly spaced bounds: `buckets` buckets covering [lo, hi], i.e. bounds
  /// lo + i*(hi-lo)/buckets for i = 1..buckets.
  static Histogram Linear(double lo, double hi, int buckets);

  void Record(double x);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  // 0 when empty.
  double max() const { return max_; }  // 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the +inf overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// q in [0, 1]. Linear interpolation inside the containing bucket (the
  /// overflow bucket yields max()). 0 for an empty histogram.
  double Quantile(double q) const;

  /// Adds `other`'s counts into this histogram. Bounds must be identical.
  /// Returns false (and leaves *this untouched) otherwise.
  bool Merge(const Histogram& other);

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile sketch over non-negative samples with bounded
/// *relative* error, HDR-histogram style: a sample lands in a log-spaced
/// bucket (each power-of-two span split into kSubbuckets equal slices), so
/// memory is O(distinct scales), not O(samples). Quantile() returns the
/// containing bucket's midpoint — within 1/(2*kSubbuckets) ~ 1.6% relative
/// error of the true order statistic.
///
/// The sketch is a pure function of the sample *multiset*: buckets are
/// keyed counts, so recording order never matters and Merge() equals the
/// sketch of the concatenated streams exactly. That also makes it safe for
/// the determinism contract: identical sample multisets (bit-exact values)
/// yield identical sketches regardless of thread interleaving.
class StreamingQuantile {
 public:
  static constexpr int kSubbuckets = 32;  // Relative error <= 1/64.

  void Record(double x);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  // 0 when empty.
  double max() const { return max_; }  // 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// q in [0, 1]; 0 for an empty sketch. Exact for the 0- and 1-quantile
  /// (min/max are tracked exactly).
  double Quantile(double q) const;

  void Merge(const StreamingQuantile& other);

  void Reset();

  /// Bucket index for `x` (implementation detail, exposed for the golden
  /// tests): values <= 0 share the index of the smallest representable
  /// bucket.
  static int32_t BucketIndex(double x);
  /// [lower, upper) value range of bucket `index`.
  static double BucketLower(int32_t index);
  static double BucketUpper(int32_t index);

  const std::map<int32_t, uint64_t>& buckets() const { return buckets_; }

 private:
  std::map<int32_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_HISTOGRAM_H_
