#ifndef PROXDET_OBS_REPORT_H_
#define PROXDET_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace proxdet {
namespace obs {

/// Per-run observability report: free-form info strings, named sections of
/// scalar values (e.g. the run's CommStats, net-layer totals, cost-model
/// parameters) and a full metrics snapshot, serialized as one JSON
/// document. Deterministic metrics and wall-clock metrics are emitted under
/// separate keys, the same segregation CommStats::server_seconds follows —
/// a report consumer can diff the "deterministic" subtree across runs and
/// expect byte equality.
///
/// The report is plain data: it works identically in the
/// PROXDET_OBS_DISABLED build (the captured snapshot is simply empty).
class RunReport {
 public:
  explicit RunReport(std::string run_name) : name_(std::move(run_name)) {}

  /// Free-form string metadata ("method": "Stripe+KF", "threads": "4").
  void AddInfo(const std::string& key, const std::string& value);

  /// Scalar in a named section; sections and keys keep insertion order.
  void AddCount(const std::string& section, const std::string& key,
                uint64_t value);
  void AddScalar(const std::string& section, const std::string& key,
                 double value);

  /// Attaches a metrics snapshot (typically Metrics().Snapshot() taken
  /// right after the run; pair with Metrics().Reset() before it).
  void CaptureMetrics(MetricsSnapshot snapshot);

  const MetricsSnapshot& metrics() const { return metrics_; }

  std::string ToJson() const;

  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  using Section = std::vector<std::pair<std::string, std::string>>;

  std::string name_;
  Section info_;
  std::vector<std::pair<std::string, Section>> sections_;
  MetricsSnapshot metrics_;
  bool have_metrics_ = false;

  Section& SectionFor(const std::string& section);
};

}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_REPORT_H_
