#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace proxdet {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

Histogram Histogram::Linear(double lo, double hi, int buckets) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(buckets, 0)));
  for (int i = 1; i <= buckets; ++i) {
    bounds.push_back(lo + (hi - lo) * i / buckets);
  }
  return Histogram(std::move(bounds));
}

void Histogram::Record(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += 1;
  sum_ += x;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const uint64_t next = cumulative + counts_[b];
    if (static_cast<double>(next) >= rank) {
      if (b == counts_.size() - 1) return max_;  // Overflow bucket.
      const double lo = b == 0 ? std::min(min_, bounds_[0]) : bounds_[b - 1];
      const double hi = bounds_[b];
      const double within =
          (rank - static_cast<double>(cumulative)) / counts_[b];
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max_;
}

bool Histogram::Merge(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  for (size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

// ---------------------------------------------------------------------------
// StreamingQuantile

int32_t StreamingQuantile::BucketIndex(double x) {
  if (!(x > 0.0) || !std::isfinite(x)) {
    // Non-positive, NaN: the floor bucket. +inf: the ceiling bucket.
    return x > 0.0 ? std::numeric_limits<int32_t>::max()
                   : std::numeric_limits<int32_t>::min();
  }
  int exp = 0;
  const double frac = std::frexp(x, &exp);  // frac in [0.5, 1).
  const int sub = std::min(
      kSubbuckets - 1,
      static_cast<int>((frac - 0.5) * 2.0 * kSubbuckets));
  return static_cast<int32_t>(exp) * kSubbuckets + sub;
}

double StreamingQuantile::BucketLower(int32_t index) {
  if (index == std::numeric_limits<int32_t>::min()) return 0.0;
  if (index == std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<double>::infinity();
  }
  // Floor division: index = exp * kSubbuckets + sub with sub in [0, kSub).
  int32_t exp = index / kSubbuckets;
  int32_t sub = index % kSubbuckets;
  if (sub < 0) {
    sub += kSubbuckets;
    exp -= 1;
  }
  return std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubbuckets),
                    exp);
}

double StreamingQuantile::BucketUpper(int32_t index) {
  if (index == std::numeric_limits<int32_t>::min()) return 0.0;
  if (index == std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLower(index + 1);
}

void StreamingQuantile::Record(double x) {
  buckets_[BucketIndex(x)] += 1;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += 1;
  sum_ += x;
}

double StreamingQuantile::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (const auto& [index, n] : buckets_) {
    cumulative += n;
    if (static_cast<double>(cumulative) >= rank) {
      if (index == std::numeric_limits<int32_t>::min()) return 0.0;
      if (index == std::numeric_limits<int32_t>::max()) return max_;
      // Midpoint of the bucket, clamped to the exactly-tracked extremes.
      const double mid = 0.5 * (BucketLower(index) + BucketUpper(index));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

void StreamingQuantile::Merge(const StreamingQuantile& other) {
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void StreamingQuantile::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

}  // namespace obs
}  // namespace proxdet
