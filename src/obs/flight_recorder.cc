#ifndef PROXDET_OBS_DISABLED

#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace proxdet {
namespace obs {
inline namespace enabled {

void FlightRecorder::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  for (auto& [shard, ring] : rings_) {
    while (ring.size() > capacity_) ring.pop_front();
  }
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void FlightRecorder::set_dump_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dump_path_ = path;
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dump_path_;
}

void FlightRecorder::Record(const FlightEvent& event) {
  if (!enabled()) return;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  std::deque<FlightEvent>& ring = rings_[event.shard];
  ring.push_back(event);
  ring.back().id = next_id_++;
  while (ring.size() > capacity_) ring.pop_front();
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  next_id_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [shard, ring] : rings_) {
      out.insert(out.end(), ring.begin(), ring.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<FlightEvent> FlightRecorder::Head(size_t n) const {
  std::vector<FlightEvent> all = snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - n);
  return all;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string FlightRecorder::ToJson(const std::string& reason) const {
  const std::vector<FlightEvent> events = snapshot();
  std::string out = "{\n  \"reason\": \"";
  AppendEscaped(reason, &out);
  out += "\",\n  \"recorded\": " + std::to_string(recorded());
  out += ",\n  \"buffered\": " + std::to_string(events.size());
  out += ",\n  \"events\": [";
  char buf[224];
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"id\": %llu, \"kind\": \"%s\", \"shard\": %d, "
                  "\"src\": %d, \"dst\": %d, \"seq\": %llu, \"msg_kind\": %u, "
                  "\"time_s\": %.9f}",
                  i == 0 ? "" : ",", static_cast<unsigned long long>(e.id),
                  FlightEventKindName(e.kind), e.shard, e.src, e.dst,
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned>(e.msg_kind), e.time_s);
    out += buf;
  }
  out += events.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool FlightRecorder::DumpOnFailure(const std::string& reason) const {
  const std::string path = dump_path();
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson(reason);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // Leaked: exit-safe.
  return *recorder;
}

}  // namespace enabled
}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_DISABLED
