#ifndef PROXDET_OBS_FLIGHT_RECORDER_H_
#define PROXDET_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace proxdet {
namespace obs {

/// What a flight-recorder entry witnessed. These are protocol-level events
/// (one per reliable-link action), not payload contents.
enum class FlightEventKind : uint8_t {
  kSend = 0,        // First transmission of a sequence number.
  kRetransmit = 1,  // Resend of an unacked frame.
  kAck = 2,         // Ack received; frame retired.
  kDedup = 3,       // Duplicate data frame suppressed.
  kGiveUp = 4,      // Retry budget exhausted; delivery failed.
  kCorrupt = 5,     // Undecodable datagram dropped.
  kDeliver = 6,     // Fresh data frame handed to the handler.
  kForward = 7,     // Shard-mesh ownership forward relayed.
};

inline const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSend:
      return "send";
    case FlightEventKind::kRetransmit:
      return "retransmit";
    case FlightEventKind::kAck:
      return "ack";
    case FlightEventKind::kDedup:
      return "dedup";
    case FlightEventKind::kGiveUp:
      return "give_up";
    case FlightEventKind::kCorrupt:
      return "corrupt";
    case FlightEventKind::kDeliver:
      return "deliver";
    case FlightEventKind::kForward:
      return "forward";
  }
  return "unknown";
}

/// One recorded protocol event. `time_s` is in the owning backend's clock
/// domain (virtual seconds under SimNet, wall seconds under UdpNet); `id`
/// is a process-wide monotonic stamp so dumps merge shards in order.
struct FlightEvent {
  uint64_t id = 0;
  FlightEventKind kind = FlightEventKind::kSend;
  int shard = -1;  // -1 = unsharded / unknown.
  int src = -1;
  int dst = -1;
  uint64_t seq = 0;
  uint8_t msg_kind = 0;  // net::MsgKind, 0 if not applicable.
  double time_s = 0.0;
};

#ifndef PROXDET_OBS_DISABLED

inline namespace enabled {

/// Bounded per-shard ring buffer of recent protocol events. Recording is a
/// mutex push (protocol events fire on the driver thread, so the lock is
/// uncontended); each shard keeps only its most recent `capacity` events.
/// On a failure — socket idle timeout, reliability give-up, bench contract
/// violation — DumpOnFailure() writes everything still buffered as JSON so
/// the FATAL leaves a diagnosable artifact instead of just an exit code.
class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Per-shard ring capacity; existing rings are trimmed immediately.
  void set_capacity(size_t capacity);
  size_t capacity() const;

  /// Where DumpOnFailure() writes; empty (the default) disables dumping.
  void set_dump_path(const std::string& path);
  std::string dump_path() const;

  void Record(const FlightEvent& event);

  /// Drops all recorded events; keeps capacity, path and enablement.
  void Clear();

  /// All buffered events merged across shards in record order.
  std::vector<FlightEvent> snapshot() const;

  /// The most recent `n` events across all shards, oldest first.
  std::vector<FlightEvent> Head(size_t n) const;

  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }

  /// The dump document: {"reason", "recorded", "buffered", "events": [...]}.
  std::string ToJson(const std::string& reason) const;

  /// Writes ToJson(reason) to dump_path(); false when no path is set or
  /// the write fails. Safe to call multiple times (last reason wins).
  bool DumpOnFailure(const std::string& reason) const;

  /// The process-wide recorder every reliable endpoint feeds.
  static FlightRecorder& Global();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> recorded_{0};
  mutable std::mutex mutex_;
  size_t capacity_ = 256;
  uint64_t next_id_ = 0;
  std::string dump_path_;
  std::map<int, std::deque<FlightEvent>> rings_;
};

}  // namespace enabled

#else  // PROXDET_OBS_DISABLED

inline namespace noop {

class FlightRecorder {
 public:
  bool enabled() const { return false; }
  void Enable() {}
  void Disable() {}
  void set_capacity(size_t) {}
  size_t capacity() const { return 0; }
  void set_dump_path(const std::string&) {}
  std::string dump_path() const { return std::string(); }
  void Record(const FlightEvent&) {}
  void Clear() {}
  std::vector<FlightEvent> snapshot() const { return {}; }
  std::vector<FlightEvent> Head(size_t) const { return {}; }
  uint64_t recorded() const { return 0; }
  std::string ToJson(const std::string&) const {
    return "{\"events\": []}\n";
  }
  bool DumpOnFailure(const std::string&) const { return false; }
  static FlightRecorder& Global() {
    static FlightRecorder recorder;
    return recorder;
  }
};

}  // namespace noop

#endif  // PROXDET_OBS_DISABLED

/// Shorthand for FlightRecorder::Global().
inline FlightRecorder& Flight() { return FlightRecorder::Global(); }

}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_FLIGHT_RECORDER_H_
