#include "obs/report.h"

#include <cmath>
#include <cstdio>

namespace proxdet {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNum(double v) {
  // JSON has no Inf/NaN; encode them as strings so the document stays valid.
  if (!std::isfinite(v)) {
    if (std::isnan(v)) return "\"nan\"";
    return v > 0 ? "\"inf\"" : "\"-inf\"";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* KindDir(Kind kind) {
  return kind == Kind::kDeterministic ? "deterministic" : "wall_clock";
}

/// Emits the snapshot's metrics of one Kind as a JSON object body
/// {"counters": {...}, "gauges": {...}, "histograms": {...},
///  "quantiles": {...}}.
std::string MetricsJson(const MetricsSnapshot& snap, Kind kind,
                        const std::string& pad) {
  std::string out = "{";
  const std::string inner = pad + "  ";
  bool group_first = true;
  auto open_group = [&](const char* key) {
    if (!group_first) out += ",";
    group_first = false;
    out += "\n" + inner + "\"" + key + "\": {";
  };

  open_group("counters");
  bool first = true;
  for (const auto& [name, entry] : snap.counters) {
    if (entry.first != kind) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += inner + "  \"" + JsonEscape(name) +
           "\": " + std::to_string(entry.second);
  }
  out += first ? "}" : "\n" + inner + "}";

  open_group("gauges");
  first = true;
  for (const auto& [name, entry] : snap.gauges) {
    if (entry.first != kind) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += inner + "  \"" + JsonEscape(name) + "\": " + JsonNum(entry.second);
  }
  out += first ? "}" : "\n" + inner + "}";

  open_group("histograms");
  first = true;
  for (const auto& [name, entry] : snap.histograms) {
    if (entry.kind != kind) continue;
    out += first ? "\n" : ",\n";
    first = false;
    const Histogram& h = entry.value;
    out += inner + "  \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count()) + ", \"sum\": " + JsonNum(h.sum()) +
           ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds().size(); ++b) {
      if (b > 0) out += ", ";
      out += JsonNum(h.bounds()[b]);
    }
    out += "], \"bucket_counts\": [";
    for (size_t b = 0; b < h.bucket_counts().size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.bucket_counts()[b]);
    }
    out += "]}";
  }
  out += first ? "}" : "\n" + inner + "}";

  open_group("quantiles");
  first = true;
  for (const auto& [name, entry] : snap.quantiles) {
    if (entry.kind != kind) continue;
    out += first ? "\n" : ",\n";
    first = false;
    const StreamingQuantile& q = entry.value;
    out += inner + "  \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(q.count()) + ", \"sum\": " + JsonNum(q.sum()) +
           ", \"min\": " + JsonNum(q.min()) + ", \"max\": " + JsonNum(q.max()) +
           ", \"p50\": " + JsonNum(q.Quantile(0.5)) +
           ", \"p90\": " + JsonNum(q.Quantile(0.9)) +
           ", \"p99\": " + JsonNum(q.Quantile(0.99)) +
           ", \"p999\": " + JsonNum(q.Quantile(0.999)) + "}";
  }
  out += first ? "}" : "\n" + inner + "}";

  out += "\n" + pad + "}";
  return out;
}

}  // namespace

RunReport::Section& RunReport::SectionFor(const std::string& section) {
  for (auto& [name, body] : sections_) {
    if (name == section) return body;
  }
  sections_.emplace_back(section, Section{});
  return sections_.back().second;
}

void RunReport::AddInfo(const std::string& key, const std::string& value) {
  info_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void RunReport::AddCount(const std::string& section, const std::string& key,
                         uint64_t value) {
  SectionFor(section).emplace_back(key, std::to_string(value));
}

void RunReport::AddScalar(const std::string& section, const std::string& key,
                          double value) {
  SectionFor(section).emplace_back(key, JsonNum(value));
}

void RunReport::CaptureMetrics(MetricsSnapshot snapshot) {
  metrics_ = std::move(snapshot);
  have_metrics_ = true;
}

std::string RunReport::ToJson() const {
  std::string out = "{\n  \"run\": \"" + JsonEscape(name_) + "\",\n";
  out += "  \"info\": {";
  for (size_t i = 0; i < info_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(info_[i].first) + "\": " + info_[i].second;
  }
  out += info_.empty() ? "},\n" : "\n  },\n";
  out += "  \"sections\": {";
  for (size_t s = 0; s < sections_.size(); ++s) {
    out += s == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(sections_[s].first) + "\": {";
    const Section& body = sections_[s].second;
    for (size_t i = 0; i < body.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "      \"" + JsonEscape(body[i].first) + "\": " + body[i].second;
    }
    out += body.empty() ? "}" : "\n    }";
  }
  out += sections_.empty() ? "},\n" : "\n  },\n";
  out += "  \"metrics\": {\n";
  for (const Kind kind : {Kind::kDeterministic, Kind::kWallClock}) {
    out += std::string("    \"") + KindDir(kind) +
           "\": " + MetricsJson(metrics_, kind, "    ");
    out += kind == Kind::kDeterministic ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

bool RunReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

}  // namespace obs
}  // namespace proxdet
