#ifndef PROXDET_OBS_DISABLED

#include "obs/trace.h"

#include <cstdio>

namespace proxdet {
namespace obs {

void Tracer::Record(const char* name, const char* category, uint64_t start_us,
                    uint64_t end_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_us = start_us;
  event.dur_us = end_us > start_us ? end_us - start_us : 0;
  const auto [it, inserted] = thread_index_.emplace(
      std::this_thread::get_id(),
      static_cast<uint32_t>(thread_index_.size()));
  event.tid = it->second;
  events_.push_back(event);
}

void Tracer::FlowBegin(const char* name, const char* category,
                       uint64_t flow_id) {
  if (!enabled()) return;
  const uint64_t now_us = NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_us = now_us;
  event.phase = TracePhase::kFlowStart;
  event.flow_id = flow_id;
  const auto [it, inserted] = thread_index_.emplace(
      std::this_thread::get_id(),
      static_cast<uint32_t>(thread_index_.size()));
  event.tid = it->second;
  events_.push_back(event);
}

void Tracer::FlowEnd(const char* name, const char* category,
                     uint64_t flow_id) {
  if (!enabled()) return;
  const uint64_t now_us = NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_us = now_us;
  event.phase = TracePhase::kFlowEnd;
  event.flow_id = flow_id;
  const auto [it, inserted] = thread_index_.emplace(
      std::this_thread::get_id(),
      static_cast<uint32_t>(thread_index_.size()));
  event.tid = it->second;
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

uint64_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  thread_index_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\": [";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.phase == TracePhase::kComplete) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                    "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %u}",
                    i == 0 ? "" : ",", e.name, e.category,
                    static_cast<unsigned long long>(e.start_us),
                    static_cast<unsigned long long>(e.dur_us), e.tid);
    } else {
      // Flow arrows: "s" starts at the detect site, "f" (binding point
      // "e": enclosing slice) lands on the deliver site, so one alert
      // renders as one flow across shard tracks.
      const bool start = e.phase == TracePhase::kFlowStart;
      std::snprintf(buf, sizeof(buf),
                    "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": "
                    "\"%s\"%s, \"id\": %llu, "
                    "\"ts\": %llu, \"pid\": 1, \"tid\": %u}",
                    i == 0 ? "" : ",", e.name, e.category, start ? "s" : "f",
                    start ? "" : ", \"bp\": \"e\"",
                    static_cast<unsigned long long>(e.flow_id),
                    static_cast<unsigned long long>(e.start_us), e.tid);
    }
    out += buf;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

Tracer& Tracer::Global() {
  // Intentionally leaked, like MetricsRegistry::Global(): spans may close
  // during static destruction and must find the tracer alive.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_DISABLED
