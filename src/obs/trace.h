#ifndef PROXDET_OBS_TRACE_H_
#define PROXDET_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace proxdet {
namespace obs {

/// Chrome trace_event phase of a recorded event: a complete span ("X"), or
/// one side of a flow arrow ("s" start / "f" finish) stitching causally
/// linked spans — possibly on different shards — into one rendered flow.
enum class TracePhase : uint8_t { kComplete = 0, kFlowStart = 1, kFlowEnd = 2 };

/// One completed span or flow endpoint. `name` and `category` must be
/// string literals (or otherwise outlive the tracer) — events never copy
/// them.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t start_us = 0;  // Microseconds since tracer construction.
  uint64_t dur_us = 0;
  uint32_t tid = 0;  // Dense per-tracer thread index, 0 = first seen.
  TracePhase phase = TracePhase::kComplete;
  uint64_t flow_id = 0;  // Links a kFlowStart to its kFlowEnd.
};

#ifndef PROXDET_OBS_DISABLED

inline namespace enabled {

/// Scoped-span tracer. Disabled by default: a disarmed TraceScope costs one
/// relaxed atomic load and no clock read, so instrumentation can stay in
/// hot paths permanently. When enabled, completed spans are appended to a
/// mutex-guarded buffer (bounded by set_capacity; overflow increments
/// dropped() instead of growing without bound) and exported as Chrome
/// trace_event JSON — loadable in chrome://tracing or Perfetto.
///
/// Span *durations* are wall-clock and therefore non-deterministic; span
/// *counts per name* are deterministic for deterministic workloads. The
/// exporter never feeds back into the traced computation (read-only
/// observability).
class Tracer {
 public:
  Tracer() : origin_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Drops all recorded spans (and the dropped-count); keeps enablement.
  void Clear();

  /// Maximum buffered spans; further records are counted in dropped().
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  /// Appends a completed span (thread-safe).
  void Record(const char* name, const char* category, uint64_t start_us,
              uint64_t end_us);

  /// Appends a flow-start ("s") event at the current time: the tail of a
  /// flow arrow, e.g. the detect side of an alert. `flow_id` must match the
  /// FlowEnd that consumes it.
  void FlowBegin(const char* name, const char* category, uint64_t flow_id);

  /// Appends the matching flow-finish ("f") event, e.g. the deliver side.
  void FlowEnd(const char* name, const char* category, uint64_t flow_id);

  std::vector<TraceEvent> snapshot() const;
  uint64_t span_count() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace_event format: {"traceEvents": [...], ...} with complete
  /// ("ph":"X") events. Load via chrome://tracing or ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// The process-wide tracer every built-in span uses.
  static Tracer& Global();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point origin_;
  size_t capacity_ = 1u << 20;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, uint32_t> thread_index_;
};

/// RAII span: arms on construction when the global tracer is enabled,
/// records on destruction. Name/category must be string literals.
class TraceScope {
 public:
  TraceScope(const char* name, const char* category) {
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) {
      tracer_ = &tracer;
      name_ = name;
      category_ = category;
      start_us_ = tracer.NowMicros();
    }
  }
  ~TraceScope() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, category_, start_us_, tracer_->NowMicros());
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  uint64_t start_us_ = 0;
};

}  // namespace enabled

#else  // PROXDET_OBS_DISABLED

inline namespace noop {

class Tracer {
 public:
  bool enabled() const { return false; }
  void Enable() {}
  void Disable() {}
  void Clear() {}
  void set_capacity(size_t) {}
  uint64_t NowMicros() const { return 0; }
  void Record(const char*, const char*, uint64_t, uint64_t) {}
  void FlowBegin(const char*, const char*, uint64_t) {}
  void FlowEnd(const char*, const char*, uint64_t) {}
  std::vector<TraceEvent> snapshot() const { return {}; }
  uint64_t span_count() const { return 0; }
  uint64_t dropped() const { return 0; }
  std::string ToChromeTraceJson() const {
    return "{\"traceEvents\": []}\n";
  }
  bool WriteChromeTrace(const std::string&) const { return false; }
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
};

class TraceScope {
 public:
  TraceScope(const char*, const char*) {}
};

}  // namespace noop

#endif  // PROXDET_OBS_DISABLED

}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_TRACE_H_
