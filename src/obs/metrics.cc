#ifndef PROXDET_OBS_DISABLED

#include "obs/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace proxdet {
namespace obs {

namespace {

std::string Sanitize(const std::string& name) {
  std::string out = "proxdet_";
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

template <typename T>
T& MetricsRegistry::GetOrCreate(std::map<std::string, Entry<T>>& map,
                                const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, Entry<T>{kind, std::make_unique<T>()}).first;
  }
  return *it->second.metric;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, Kind kind) {
  return GetOrCreate(counters_, name, kind);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, Kind kind) {
  return GetOrCreate(gauges_, name, kind);
}

HistogramMetric& MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds,
    Kind kind) {
  HistogramMetric& metric = GetOrCreate(histograms_, name, kind);
  // First registration wins: install bounds only on a still-pristine metric.
  std::lock_guard<std::mutex> lock(metric.mutex_);
  if (metric.histogram_.bounds().empty() && metric.histogram_.count() == 0 &&
      !upper_bounds.empty()) {
    metric.histogram_ = Histogram(upper_bounds);
  }
  return metric;
}

QuantileMetric& MetricsRegistry::GetQuantile(const std::string& name,
                                             Kind kind) {
  return GetOrCreate(quantiles_, name, kind);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : counters_) entry.metric->Reset();
  for (auto& [name, entry] : gauges_) entry.metric->Reset();
  for (auto& [name, entry] : histograms_) entry.metric->Reset();
  for (auto& [name, entry] : quantiles_) entry.metric->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : counters_) {
    snap.counters[name] = {entry.kind, entry.metric->value()};
  }
  for (const auto& [name, entry] : gauges_) {
    snap.gauges[name] = {entry.kind, entry.metric->value()};
  }
  for (const auto& [name, entry] : histograms_) {
    snap.histograms[name] = {entry.kind, entry.metric->snapshot()};
  }
  for (const auto& [name, entry] : quantiles_) {
    snap.quantiles[name] = {entry.kind, entry.metric->snapshot()};
  }
  return snap;
}

std::string MetricsRegistry::PrometheusDump() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, entry] : snap.counters) {
    const std::string id = Sanitize(name);
    out += "# TYPE " + id + " counter\n";
    out += id + " " + std::to_string(entry.second) + "\n";
  }
  for (const auto& [name, entry] : snap.gauges) {
    const std::string id = Sanitize(name);
    out += "# TYPE " + id + " gauge\n";
    out += id + " " + Num(entry.second) + "\n";
  }
  for (const auto& [name, entry] : snap.histograms) {
    const std::string id = Sanitize(name);
    const Histogram& h = entry.value;
    out += "# TYPE " + id + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.bounds().size(); ++b) {
      cumulative += h.bucket_counts()[b];
      out += id + "_bucket{le=\"" + Num(h.bounds()[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += id + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
    out += id + "_sum " + Num(h.sum()) + "\n";
    out += id + "_count " + std::to_string(h.count()) + "\n";
  }
  for (const auto& [name, entry] : snap.quantiles) {
    const std::string id = Sanitize(name);
    const StreamingQuantile& q = entry.value;
    out += "# TYPE " + id + " summary\n";
    for (const double p : {0.5, 0.9, 0.99}) {
      out += id + "{quantile=\"" + Num(p) + "\"} " + Num(q.Quantile(p)) +
             "\n";
    }
    out += id + "_sum " + Num(q.sum()) + "\n";
    out += id + "_count " + std::to_string(q.count()) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: pool workers and atexit code may still touch
  // handles during shutdown, so the registry must outlive every other
  // static (no destruction-order dependence).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace proxdet

#endif  // PROXDET_OBS_DISABLED
