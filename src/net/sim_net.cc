#include "net/sim_net.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {
namespace net {

namespace {

/// Link-impairment and reliability totals. All deterministic: SimNet is
/// single-threaded and every random decision comes from its seeded Rng, so
/// these are pure functions of (seed, Send/Schedule call sequence).
struct NetMetrics {
  obs::Counter& frames_offered;
  obs::Counter& drops;
  obs::Counter& dups;
  obs::Counter& retransmits;
  obs::Counter& dedup_discards;
  obs::Counter& corrupt_frames;
  obs::Gauge& queue_depth_max;

  static const NetMetrics& Get() {
    static const NetMetrics m{
        obs::Metrics().GetCounter("net.frames_offered"),
        obs::Metrics().GetCounter("net.drops"),
        obs::Metrics().GetCounter("net.dups"),
        obs::Metrics().GetCounter("net.retransmits"),
        obs::Metrics().GetCounter("net.dedup_discards"),
        obs::Metrics().GetCounter("net.corrupt_frames"),
        obs::Metrics().GetGauge("net.queue_depth_max",
                                obs::Kind::kDeterministic),
    };
    return m;
  }
};

/// Per-message-kind wire accounting: one frames/bytes counter pair per
/// MsgKind, counted once per logical transmission (first attempts and
/// retransmissions alike, matching bytes_sent()).
struct KindMetrics {
  obs::Counter& frames;
  obs::Counter& bytes;
};

const KindMetrics& MetricsForKind(MsgKind kind) {
  static const KindMetrics by_kind[] = {
      {obs::Metrics().GetCounter("net.frames.location_report"),
       obs::Metrics().GetCounter("net.bytes.location_report")},
      {obs::Metrics().GetCounter("net.frames.probe"),
       obs::Metrics().GetCounter("net.bytes.probe")},
      {obs::Metrics().GetCounter("net.frames.alert"),
       obs::Metrics().GetCounter("net.bytes.alert")},
      {obs::Metrics().GetCounter("net.frames.region_install"),
       obs::Metrics().GetCounter("net.bytes.region_install")},
      {obs::Metrics().GetCounter("net.frames.match_install"),
       obs::Metrics().GetCounter("net.bytes.match_install")},
      {obs::Metrics().GetCounter("net.frames.ack"),
       obs::Metrics().GetCounter("net.bytes.ack")},
      {obs::Metrics().GetCounter("net.frames.batch"),
       obs::Metrics().GetCounter("net.bytes.batch")},
      {obs::Metrics().GetCounter("net.frames.shard_forward"),
       obs::Metrics().GetCounter("net.bytes.shard_forward")},
  };
  const size_t idx =
      std::min<size_t>(static_cast<size_t>(kind) - 1, std::size(by_kind) - 1);
  return by_kind[idx];
}

}  // namespace

int SimNet::AddEndpoint(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<int>(handlers_.size()) - 1;
}

void SimNet::PushEvent(Event e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter());
  NetMetrics::Get().queue_depth_max.MaxOf(static_cast<double>(heap_.size()));
}

SimNet::Event SimNet::PopEvent() {
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter());
  Event e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void SimNet::MixHash(uint64_t v) {
  // FNV-1a 64, one byte at a time, over the value's little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    schedule_hash_ ^= (v >> (8 * i)) & 0xff;
    schedule_hash_ *= 1099511628211ULL;
  }
}

void SimNet::RecordOutcome(const DeliveryRecord& r) {
  uint64_t time_bits;
  static_assert(sizeof(time_bits) == sizeof(r.send_time));
  std::memcpy(&time_bits, &r.send_time, sizeof(time_bits));
  MixHash(time_bits);
  std::memcpy(&time_bits, &r.deliver_time, sizeof(time_bits));
  MixHash(time_bits);
  MixHash((static_cast<uint64_t>(static_cast<uint32_t>(r.src)) << 32) |
          static_cast<uint32_t>(r.dst));
  MixHash((static_cast<uint64_t>(r.frame_hash) << 2) |
          (r.dropped ? 2u : 0u) | (r.duplicate ? 1u : 0u));
  if (record_log_) log_.push_back(r);
}

void SimNet::Send(int src, int dst, std::vector<uint8_t> frame) {
  const LinkModel model = link_model_ ? link_model_(src, dst) : LinkModel();
  // One Rng draw per decision, in fixed order, regardless of the model's
  // parameters — the draw sequence (hence the schedule) is a pure function
  // of the seed and the Send/Schedule call sequence.
  const bool duplicate = rng_.NextBool(model.dup_rate);
  const int copies = duplicate ? 2 : 1;
  if (duplicate) {
    frames_duplicated_ += 1;
    NetMetrics::Get().dups.Inc();
  }
  const uint32_t frame_hash = Fnv1a32(frame.data(), frame.size());
  for (int c = 0; c < copies; ++c) {
    const bool drop = rng_.NextBool(model.drop_rate);
    const double jitter =
        model.jitter_s > 0.0 ? rng_.Uniform(0.0, model.jitter_s) : 0.0;
    frames_offered_ += 1;
    NetMetrics::Get().frames_offered.Inc();
    DeliveryRecord record;
    record.send_time = now_;
    record.deliver_time = now_ + model.latency_s + jitter;
    record.src = src;
    record.dst = dst;
    record.frame_hash = frame_hash;
    record.dropped = drop;
    record.duplicate = c > 0;
    RecordOutcome(record);
    if (drop) {
      frames_dropped_ += 1;
      NetMetrics::Get().drops.Inc();
      continue;
    }
    Event e;
    e.time = record.deliver_time;
    e.id = next_event_id_++;
    e.src = src;
    e.dst = dst;
    // The last surviving copy moves the buffer; earlier ones copy it.
    e.frame = (c == copies - 1) ? std::move(frame) : frame;
    PushEvent(std::move(e));
  }
}

void SimNet::Schedule(double delay_s, std::function<void()> fn) {
  Event e;
  e.time = now_ + delay_s;
  e.id = next_event_id_++;
  e.timer = std::move(fn);
  PushEvent(std::move(e));
}

void SimNet::RunUntilIdle() {
  while (!heap_.empty()) {
    Event e = PopEvent();
    now_ = std::max(now_, e.time);
    if (e.timer) {
      e.timer();
    } else {
      obs::TraceScope span("simnet_delivery", "net");
      handlers_[e.dst](e.src, e.frame);
    }
  }
}

// ---------------------------------------------------------------------------

ReliableEndpoint::ReliableEndpoint(SimNet* net, double rto_s, int max_retries,
                                   FrameHandler handler)
    : net_(net),
      rto_s_(rto_s),
      max_retries_(max_retries),
      handler_(std::move(handler)) {
  id_ = net_->AddEndpoint(
      [this](int src, const std::vector<uint8_t>& bytes) { OnWire(src, bytes); });
}

void ReliableEndpoint::Send(int dst, MsgKind kind,
                            const std::vector<uint8_t>& payload) {
  const uint64_t seq = ++next_seq_[dst];
  std::vector<uint8_t> frame;
  {
    obs::TraceScope span("wire_encode", "net");
    frame = EncodeFrame(kind, seq, payload);
  }
  pending_.emplace(std::make_pair(dst, seq), std::move(frame));
  Transmit(dst, seq, 0);
}

void ReliableEndpoint::Transmit(int dst, uint64_t seq, int attempt) {
  const auto it = pending_.find({dst, seq});
  if (it == pending_.end()) return;  // Acked since the timer was armed.
  if (attempt > max_retries_) {
    delivery_failed_ = true;
    pending_.erase(it);
    return;
  }
  bytes_sent_ += it->second.size();
  frames_sent_ += 1;
  for (obs::Counter* counter : wire_bytes_counters_) {
    counter->Inc(it->second.size());
  }
  // Frame layout puts the MsgKind at byte 3 (after magic + version).
  const KindMetrics& km = MetricsForKind(static_cast<MsgKind>(it->second[3]));
  km.frames.Inc();
  km.bytes.Inc(it->second.size());
  if (attempt > 0) {
    retransmits_ += 1;
    NetMetrics::Get().retransmits.Inc();
    obs::TraceScope span("retransmit", "net");
    net_->Send(id_, dst, it->second);
  } else {
    net_->Send(id_, dst, it->second);
  }
  // Linear backoff keeps the retry storm bounded at high drop rates while
  // staying cheap to reason about; the timer is cancelled lazily (it fires
  // and finds nothing pending).
  net_->Schedule(rto_s_ * (attempt + 1), [this, dst, seq, attempt] {
    Transmit(dst, seq, attempt + 1);
  });
}

void ReliableEndpoint::OnWire(int src, const std::vector<uint8_t>& bytes) {
  Frame frame;
  bool decoded;
  {
    obs::TraceScope span("wire_decode", "net");
    decoded = DecodeFrame(bytes.data(), bytes.size(), &frame);
  }
  if (!decoded) {
    // SimNet never corrupts, but a real backend could; count and drop —
    // the sender's retry makes the loss equivalent to a dropped frame.
    corrupt_frames_ += 1;
    NetMetrics::Get().corrupt_frames.Inc();
    return;
  }
  if (frame.kind == MsgKind::kAck) {
    pending_.erase({src, frame.seq});
    return;
  }
  // Ack every copy, even duplicates: the sender may be retrying because the
  // first ack was lost.
  const std::vector<uint8_t> ack = EncodeFrame(MsgKind::kAck, frame.seq, {});
  bytes_sent_ += ack.size();
  frames_sent_ += 1;
  for (obs::Counter* counter : wire_bytes_counters_) counter->Inc(ack.size());
  const KindMetrics& km = MetricsForKind(MsgKind::kAck);
  km.frames.Inc();
  km.bytes.Inc(ack.size());
  net_->Send(id_, src, ack);
  if (!MarkSeen(src, frame.seq)) {
    dedup_discards_ += 1;
    NetMetrics::Get().dedup_discards.Inc();
    return;
  }
  handler_(src, std::move(frame));
}

bool ReliableEndpoint::MarkSeen(int src, uint64_t seq) {
  SeenWindow& window = seen_[src];
  if (seq <= window.contiguous) return false;
  if (!window.ahead.insert(seq).second) return false;
  // Advance the contiguous frontier; keeps `ahead` tiny (out-of-order
  // arrivals only happen within one jitter window).
  while (!window.ahead.empty() &&
         *window.ahead.begin() == window.contiguous + 1) {
    window.ahead.erase(window.ahead.begin());
    window.contiguous += 1;
  }
  return true;
}

}  // namespace net
}  // namespace proxdet
