#include "net/sim_net.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace proxdet {
namespace net {

int SimNet::AddEndpoint(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<int>(handlers_.size()) - 1;
}

void SimNet::PushEvent(Event e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter());
}

SimNet::Event SimNet::PopEvent() {
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter());
  Event e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void SimNet::MixHash(uint64_t v) {
  // FNV-1a 64, one byte at a time, over the value's little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    schedule_hash_ ^= (v >> (8 * i)) & 0xff;
    schedule_hash_ *= 1099511628211ULL;
  }
}

void SimNet::RecordOutcome(const DeliveryRecord& r) {
  uint64_t time_bits;
  static_assert(sizeof(time_bits) == sizeof(r.send_time));
  std::memcpy(&time_bits, &r.send_time, sizeof(time_bits));
  MixHash(time_bits);
  std::memcpy(&time_bits, &r.deliver_time, sizeof(time_bits));
  MixHash(time_bits);
  MixHash((static_cast<uint64_t>(static_cast<uint32_t>(r.src)) << 32) |
          static_cast<uint32_t>(r.dst));
  MixHash((static_cast<uint64_t>(r.frame_hash) << 2) |
          (r.dropped ? 2u : 0u) | (r.duplicate ? 1u : 0u));
  if (record_log_) log_.push_back(r);
}

void SimNet::Send(int src, int dst, std::vector<uint8_t> frame) {
  const LinkModel model = link_model_ ? link_model_(src, dst) : LinkModel();
  // One Rng draw per decision, in fixed order, regardless of the model's
  // parameters — the draw sequence (hence the schedule) is a pure function
  // of the seed and the Send/Schedule call sequence.
  const bool duplicate = rng_.NextBool(model.dup_rate);
  const int copies = duplicate ? 2 : 1;
  if (duplicate) frames_duplicated_ += 1;
  const uint32_t frame_hash = Fnv1a32(frame.data(), frame.size());
  for (int c = 0; c < copies; ++c) {
    const bool drop = rng_.NextBool(model.drop_rate);
    const double jitter =
        model.jitter_s > 0.0 ? rng_.Uniform(0.0, model.jitter_s) : 0.0;
    frames_offered_ += 1;
    DeliveryRecord record;
    record.send_time = now_;
    record.deliver_time = now_ + model.latency_s + jitter;
    record.src = src;
    record.dst = dst;
    record.frame_hash = frame_hash;
    record.dropped = drop;
    record.duplicate = c > 0;
    RecordOutcome(record);
    if (drop) {
      frames_dropped_ += 1;
      continue;
    }
    Event e;
    e.time = record.deliver_time;
    e.id = next_event_id_++;
    e.src = src;
    e.dst = dst;
    // The last surviving copy moves the buffer; earlier ones copy it.
    e.frame = (c == copies - 1) ? std::move(frame) : frame;
    PushEvent(std::move(e));
  }
}

void SimNet::Schedule(double delay_s, std::function<void()> fn) {
  Event e;
  e.time = now_ + delay_s;
  e.id = next_event_id_++;
  e.timer = std::move(fn);
  PushEvent(std::move(e));
}

void SimNet::RunUntilIdle() {
  while (!heap_.empty()) {
    Event e = PopEvent();
    now_ = std::max(now_, e.time);
    if (e.timer) {
      e.timer();
    } else {
      handlers_[e.dst](e.src, e.frame);
    }
  }
}

// ---------------------------------------------------------------------------

ReliableEndpoint::ReliableEndpoint(SimNet* net, double rto_s, int max_retries,
                                   FrameHandler handler)
    : net_(net),
      rto_s_(rto_s),
      max_retries_(max_retries),
      handler_(std::move(handler)) {
  id_ = net_->AddEndpoint(
      [this](int src, const std::vector<uint8_t>& bytes) { OnWire(src, bytes); });
}

void ReliableEndpoint::Send(int dst, MsgKind kind,
                            const std::vector<uint8_t>& payload) {
  const uint64_t seq = ++next_seq_[dst];
  pending_.emplace(std::make_pair(dst, seq), EncodeFrame(kind, seq, payload));
  Transmit(dst, seq, 0);
}

void ReliableEndpoint::Transmit(int dst, uint64_t seq, int attempt) {
  const auto it = pending_.find({dst, seq});
  if (it == pending_.end()) return;  // Acked since the timer was armed.
  if (attempt > max_retries_) {
    delivery_failed_ = true;
    pending_.erase(it);
    return;
  }
  bytes_sent_ += it->second.size();
  frames_sent_ += 1;
  if (attempt > 0) retransmits_ += 1;
  net_->Send(id_, dst, it->second);
  // Linear backoff keeps the retry storm bounded at high drop rates while
  // staying cheap to reason about; the timer is cancelled lazily (it fires
  // and finds nothing pending).
  net_->Schedule(rto_s_ * (attempt + 1), [this, dst, seq, attempt] {
    Transmit(dst, seq, attempt + 1);
  });
}

void ReliableEndpoint::OnWire(int src, const std::vector<uint8_t>& bytes) {
  Frame frame;
  if (!DecodeFrame(bytes.data(), bytes.size(), &frame)) {
    // SimNet never corrupts, but a real backend could; count and drop —
    // the sender's retry makes the loss equivalent to a dropped frame.
    corrupt_frames_ += 1;
    return;
  }
  if (frame.kind == MsgKind::kAck) {
    pending_.erase({src, frame.seq});
    return;
  }
  // Ack every copy, even duplicates: the sender may be retrying because the
  // first ack was lost.
  const std::vector<uint8_t> ack = EncodeFrame(MsgKind::kAck, frame.seq, {});
  bytes_sent_ += ack.size();
  frames_sent_ += 1;
  net_->Send(id_, src, ack);
  if (!MarkSeen(src, frame.seq)) {
    dedup_discards_ += 1;
    return;
  }
  handler_(src, std::move(frame));
}

bool ReliableEndpoint::MarkSeen(int src, uint64_t seq) {
  SeenWindow& window = seen_[src];
  if (seq <= window.contiguous) return false;
  if (!window.ahead.insert(seq).second) return false;
  // Advance the contiguous frontier; keeps `ahead` tiny (out-of-order
  // arrivals only happen within one jitter window).
  while (!window.ahead.empty() &&
         *window.ahead.begin() == window.contiguous + 1) {
    window.ahead.erase(window.ahead.begin());
    window.contiguous += 1;
  }
  return true;
}

}  // namespace net
}  // namespace proxdet
