#include "net/sim_net.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {
namespace net {

namespace {

/// Link-impairment totals. All deterministic: SimNet is single-threaded and
/// every random decision comes from its seeded Rng, so these are pure
/// functions of (seed, Send/Schedule call sequence).
struct SimNetMetrics {
  obs::Counter& frames_offered;
  obs::Counter& drops;
  obs::Counter& dups;
  obs::Gauge& queue_depth_max;

  static const SimNetMetrics& Get() {
    static const SimNetMetrics m{
        obs::Metrics().GetCounter("net.frames_offered"),
        obs::Metrics().GetCounter("net.drops"),
        obs::Metrics().GetCounter("net.dups"),
        obs::Metrics().GetGauge("net.queue_depth_max",
                                obs::Kind::kDeterministic),
    };
    return m;
  }
};

}  // namespace

int SimNet::AddEndpoint(Handler handler, int /*group*/) {
  handlers_.push_back(std::move(handler));
  return static_cast<int>(handlers_.size()) - 1;
}

void SimNet::PushEvent(Event e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter());
  SimNetMetrics::Get().queue_depth_max.MaxOf(static_cast<double>(heap_.size()));
}

SimNet::Event SimNet::PopEvent() {
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter());
  Event e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void SimNet::MixHash(uint64_t v) {
  // FNV-1a 64, one byte at a time, over the value's little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    schedule_hash_ ^= (v >> (8 * i)) & 0xff;
    schedule_hash_ *= 1099511628211ULL;
  }
}

void SimNet::RecordOutcome(const DeliveryRecord& r) {
  uint64_t time_bits;
  static_assert(sizeof(time_bits) == sizeof(r.send_time));
  std::memcpy(&time_bits, &r.send_time, sizeof(time_bits));
  MixHash(time_bits);
  std::memcpy(&time_bits, &r.deliver_time, sizeof(time_bits));
  MixHash(time_bits);
  MixHash((static_cast<uint64_t>(static_cast<uint32_t>(r.src)) << 32) |
          static_cast<uint32_t>(r.dst));
  MixHash((static_cast<uint64_t>(r.frame_hash) << 2) |
          (r.dropped ? 2u : 0u) | (r.duplicate ? 1u : 0u));
  if (record_log_) log_.push_back(r);
}

void SimNet::Send(int src, int dst, std::vector<uint8_t> frame) {
  const LinkModel model = link_model_ ? link_model_(src, dst) : LinkModel();
  // One Rng draw per decision, in fixed order, regardless of the model's
  // parameters — the draw sequence (hence the schedule) is a pure function
  // of the seed and the Send/Schedule call sequence.
  const bool duplicate = rng_.NextBool(model.dup_rate);
  const int copies = duplicate ? 2 : 1;
  if (duplicate) {
    frames_duplicated_ += 1;
    SimNetMetrics::Get().dups.Inc();
  }
  const uint32_t frame_hash = Fnv1a32(frame.data(), frame.size());
  for (int c = 0; c < copies; ++c) {
    const bool drop = rng_.NextBool(model.drop_rate);
    const double jitter =
        model.jitter_s > 0.0 ? rng_.Uniform(0.0, model.jitter_s) : 0.0;
    frames_offered_ += 1;
    SimNetMetrics::Get().frames_offered.Inc();
    DeliveryRecord record;
    record.send_time = now_;
    record.deliver_time = now_ + model.latency_s + jitter;
    record.src = src;
    record.dst = dst;
    record.frame_hash = frame_hash;
    record.dropped = drop;
    record.duplicate = c > 0;
    RecordOutcome(record);
    if (drop) {
      frames_dropped_ += 1;
      SimNetMetrics::Get().drops.Inc();
      continue;
    }
    Event e;
    e.time = record.deliver_time;
    e.id = next_event_id_++;
    e.src = src;
    e.dst = dst;
    // The last surviving copy moves the buffer; earlier ones copy it.
    e.frame = (c == copies - 1) ? std::move(frame) : frame;
    PushEvent(std::move(e));
  }
}

void SimNet::Schedule(double delay_s, std::function<void()> fn) {
  Event e;
  e.time = now_ + delay_s;
  e.id = next_event_id_++;
  e.timer = std::move(fn);
  PushEvent(std::move(e));
}

uint64_t SimNet::ScheduleCancelable(double delay_s, std::function<void()> fn) {
  const uint64_t id = next_event_id_;
  Schedule(delay_s, std::move(fn));
  return id + 1;  // 0 is the base API's "not cancellable" sentinel.
}

void SimNet::CancelTimer(uint64_t token) {
  if (token != 0) cancelled_timers_.insert(token - 1);
}

void SimNet::RunUntilIdle() {
  while (!heap_.empty()) {
    Event e = PopEvent();
    if (e.timer && !cancelled_timers_.empty() &&
        cancelled_timers_.erase(e.id) > 0) {
      // Cancelled retry timer: discard without running it and — crucially —
      // without advancing now_, so retired timers leave virtual time
      // untouched (see ScheduleCancelable in the header).
      continue;
    }
    now_ = std::max(now_, e.time);
    if (e.timer) {
      e.timer();
    } else {
      obs::TraceScope span("simnet_delivery", "net");
      handlers_[e.dst](e.src, e.frame);
    }
  }
}

}  // namespace net
}  // namespace proxdet
