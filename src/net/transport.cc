#include "net/transport.h"

#include <algorithm>
#include <utility>

#include "net/latency.h"
#include "net/shard.h"
#include "obs/metrics.h"

namespace proxdet {
namespace net {

// ---------------------------------------------------------------------------
// ClientRuntime

ClientRuntime::ClientRuntime(NetBackend* net, const World* world, UserId id,
                             int server_id, const NetConfig& config)
    : world_(world),
      id_(id),
      server_id_(server_id),
      trace_(config.trace),
      endpoint_(net, config.retry_timeout_s, config.max_retries,
                [this](int /*src*/, Frame&& frame) {
                  HandleFrame(std::move(frame));
                }) {}

void ClientRuntime::SendReport(int epoch, size_t window_len) {
  LocationReportMsg msg;
  msg.user = id_;
  msg.epoch = epoch;
  msg.position = world_->Position(id_, epoch);
  if (window_len > 0) {
    msg.window = world_->RecentWindow(id_, epoch, window_len);
  }
  if (trace_) {
    // The causal root: hop 0 of the position update's journey. The server
    // keeps the context alongside the decoded report so digest fan-out and
    // any resulting alert can be linked back to this frame.
    TraceCtx ctx;
    ctx.origin_epoch = epoch;
    ctx.event_id = ReportEventId(id_, epoch);
    ctx.hops = 0;
    endpoint_.Send(server_id_, MsgKind::kLocationReport, Encode(msg),
                   {TraceEntry{0, ctx}});
    return;
  }
  endpoint_.Send(server_id_, MsgKind::kLocationReport, Encode(msg));
}

bool ClientRuntime::HandleMessage(MsgKind kind,
                                  const std::vector<uint8_t>& payload,
                                  const TraceCtx* ctx) {
  switch (kind) {
    case MsgKind::kProbe: {
      ProbeMsg msg;
      if (!Decode(payload, &msg)) return false;
      probes_received_ += 1;
      return true;
    }
    case MsgKind::kAlert: {
      AlertMsg msg;
      if (!Decode(payload, &msg)) return false;
      alerts_.push_back(AlertEvent{msg.epoch, msg.u, msg.w});
      if (ctx != nullptr) {
        alert_traces_.push_back(*ctx);
        if (latency_ != nullptr) latency_->RecordDeliver(*ctx);
      }
      return true;
    }
    case MsgKind::kRegionInstall: {
      RegionInstallMsg msg;
      if (!Decode(payload, &msg)) return false;
      installed_region_ = std::move(msg.region);
      regions_installed_ += 1;
      return true;
    }
    case MsgKind::kMatchInstall: {
      MatchInstallMsg msg;
      if (!Decode(payload, &msg)) return false;
      if (msg.op == static_cast<uint8_t>(MatchOp::kDelete)) {
        match_region_.reset();
      } else {
        match_region_ = msg.region;
      }
      match_notices_ += 1;
      return true;
    }
    default:
      return false;
  }
}

void ClientRuntime::HandleFrame(Frame&& frame) {
  if (frame.kind == MsgKind::kBatch) {
    // One coalesced epoch's downlink: unpack and apply the items in order —
    // exactly the per-message path, amortizing frame + ack overhead. Trace
    // entry i of the frame belongs to batch item i.
    std::vector<BatchItem> items;
    if (!DecodeBatch(frame.payload, &items)) {
      protocol_error_ = true;
      return;
    }
    for (size_t i = 0; i < items.size(); ++i) {
      if (!HandleMessage(items[i].kind, items[i].payload,
                         frame.TraceFor(static_cast<uint32_t>(i)))) {
        protocol_error_ = true;
        return;
      }
    }
    return;
  }
  if (!HandleMessage(frame.kind, frame.payload, frame.TraceFor(0))) {
    protocol_error_ = true;
  }
}

// ---------------------------------------------------------------------------
// ProtocolServer

ProtocolServer::ProtocolServer(NetBackend* net, size_t user_count,
                               const NetConfig& config, int group)
    : inbox_(user_count),
      inbox_trace_(user_count),
      endpoint_(net, config.retry_timeout_s, config.max_retries,
                [this](int src, Frame&& frame) {
                  HandleFrame(src, std::move(frame));
                },
                group) {}

void ProtocolServer::HandleFrame(int src, Frame&& frame) {
  if (frame.kind != MsgKind::kLocationReport) {
    protocol_error_ = true;
    return;
  }
  LocationReportMsg msg;
  if (!Decode(frame.payload, &msg)) {
    protocol_error_ = true;
    return;
  }
  // Endpoint ids coincide with user ids by construction; a report claiming
  // another identity is a protocol violation.
  if (msg.user != static_cast<UserId>(src) || msg.user < 0 ||
      static_cast<size_t>(msg.user) >= inbox_.size()) {
    protocol_error_ = true;
    return;
  }
  // A sharded server serves only its ring partition; anyone else's report
  // landing here means the ring routing broke.
  if (served_ && !served_(msg.user)) {
    protocol_error_ = true;
    return;
  }
  const TraceCtx* ctx = frame.TraceFor(0);
  inbox_trace_[msg.user] = ctx != nullptr ? std::optional<TraceCtx>(*ctx)
                                          : std::nullopt;
  inbox_[msg.user] = std::move(msg);
}

bool ProtocolServer::TakeReport(UserId u, LocationReportMsg* out) {
  if (u < 0 || static_cast<size_t>(u) >= inbox_.size() ||
      !inbox_[u].has_value()) {
    return false;
  }
  *out = std::move(*inbox_[u]);
  inbox_[u].reset();
  return true;
}

// ---------------------------------------------------------------------------
// TransportLink

TransportLink::TransportLink(const World& world, const NetConfig& config)
    : frontend_(std::make_unique<ShardedFrontend>(world, config)) {}

TransportLink::~TransportLink() = default;

void TransportLink::Report(UserId u, int epoch, size_t window_len,
                           Vec2* position, std::vector<Vec2>* window) {
  frontend_->Report(u, epoch, window_len, position, window);
}

void TransportLink::Probe(UserId u, int epoch) { frontend_->Probe(u, epoch); }

void TransportLink::Alert(UserId u, UserId a, UserId b, int epoch) {
  frontend_->Alert(u, a, b, epoch);
}

void TransportLink::InstallRegion(UserId u, int epoch,
                                  const SafeRegionShape& region) {
  frontend_->InstallRegion(u, epoch, region);
}

void TransportLink::InstallMatch(UserId u, int epoch, MatchOp op, UserId a,
                                 UserId b, const Circle& region) {
  frontend_->InstallMatch(u, epoch, op, a, b, region);
}

void TransportLink::EndEpoch(int epoch) { frontend_->EndEpoch(epoch); }

NetRunStats TransportLink::Stats() const { return frontend_->Stats(); }

std::vector<AlertEvent> TransportLink::ClientAlerts() const {
  return frontend_->ClientAlerts();
}

const ClientRuntime& TransportLink::client(UserId u) const {
  return frontend_->client(u);
}

const SimNet* TransportLink::sim_net() const { return frontend_->sim_net(); }

const AlertLatencyTracker* TransportLink::latency_tracker() const {
  return frontend_->latency_tracker();
}

int TransportLink::stats_port() const { return frontend_->stats_port(); }

// ---------------------------------------------------------------------------
// TransportedDetector

TransportedDetector::TransportedDetector(std::unique_ptr<Detector> inner,
                                         NetConfig config)
    : inner_(std::move(inner)), config_(config) {}

std::string TransportedDetector::name() const {
  return "Transported(" + inner_->name() + ")";
}

void TransportedDetector::Run(const World& world) {
  TransportLink link(world, config_);
  inner_->set_link(&link);
  inner_->Run(world);
  inner_->set_link(nullptr);
  net_stats_ = link.Stats();
  // The engine owns the message counts; the transport contributes the
  // byte-level totals it actually put on the wire (frames, retransmits,
  // acks — both directions, plus the shard mesh).
  stats_ = inner_->stats();
  stats_.bytes_up = net_stats_.bytes_up;
  stats_.bytes_down = net_stats_.bytes_down;
  stats_.bytes_xshard = net_stats_.bytes_xshard;
  stats_.batch_saved_bytes = net_stats_.batch_saved_bytes;
  // The detector's alert stream is what the *clients* received over the
  // wire — the end-to-end correctness claim, not the server's intent.
  alerts_ = link.ClientAlerts();
}

// ---------------------------------------------------------------------------

TransportedRunResult RunTransportedMethod(Method method,
                                          const Workload& workload,
                                          const NetConfig& config,
                                          RegionDetector::Options options) {
  TransportedDetector detector(MakeDetector(method, workload, options), config);
  detector.Run(workload.world);
  TransportedRunResult result;
  result.run.method = method;
  result.run.stats = detector.stats();
  if (const auto* rd =
          dynamic_cast<const RegionDetector*>(&detector.inner())) {
    result.run.rebuild_count = rd->rebuild_count();
  }
  const std::vector<AlertEvent> alerts = detector.SortedAlerts();
  result.run.alert_count = alerts.size();
  result.run.alerts_exact = alerts == workload.GroundTruth();
  result.net = detector.net_stats();
  return result;
}

}  // namespace net
}  // namespace proxdet
