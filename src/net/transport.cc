#include "net/transport.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace proxdet {
namespace net {

// ---------------------------------------------------------------------------
// ClientRuntime

ClientRuntime::ClientRuntime(SimNet* net, const World* world, UserId id,
                             int server_id, const NetConfig& config)
    : world_(world),
      id_(id),
      server_id_(server_id),
      endpoint_(net, config.retry_timeout_s, config.max_retries,
                [this](int /*src*/, Frame&& frame) {
                  HandleFrame(std::move(frame));
                }) {}

void ClientRuntime::SendReport(int epoch, size_t window_len) {
  LocationReportMsg msg;
  msg.user = id_;
  msg.epoch = epoch;
  msg.position = world_->Position(id_, epoch);
  if (window_len > 0) {
    msg.window = world_->RecentWindow(id_, epoch, window_len);
  }
  endpoint_.Send(server_id_, MsgKind::kLocationReport, Encode(msg));
}

void ClientRuntime::HandleFrame(Frame&& frame) {
  switch (frame.kind) {
    case MsgKind::kProbe: {
      ProbeMsg msg;
      if (!Decode(frame.payload, &msg)) break;
      probes_received_ += 1;
      return;
    }
    case MsgKind::kAlert: {
      AlertMsg msg;
      if (!Decode(frame.payload, &msg)) break;
      alerts_.push_back(AlertEvent{msg.epoch, msg.u, msg.w});
      return;
    }
    case MsgKind::kRegionInstall: {
      RegionInstallMsg msg;
      if (!Decode(frame.payload, &msg)) break;
      installed_region_ = std::move(msg.region);
      regions_installed_ += 1;
      return;
    }
    case MsgKind::kMatchInstall: {
      MatchInstallMsg msg;
      if (!Decode(frame.payload, &msg)) break;
      if (msg.op == static_cast<uint8_t>(MatchOp::kDelete)) {
        match_region_.reset();
      } else {
        match_region_ = msg.region;
      }
      match_notices_ += 1;
      return;
    }
    default:
      break;
  }
  protocol_error_ = true;
}

// ---------------------------------------------------------------------------
// ProtocolServer

ProtocolServer::ProtocolServer(SimNet* net, size_t user_count,
                               const NetConfig& config)
    : inbox_(user_count),
      endpoint_(net, config.retry_timeout_s, config.max_retries,
                [this](int src, Frame&& frame) {
                  HandleFrame(src, std::move(frame));
                }) {}

void ProtocolServer::HandleFrame(int src, Frame&& frame) {
  if (frame.kind != MsgKind::kLocationReport) {
    protocol_error_ = true;
    return;
  }
  LocationReportMsg msg;
  if (!Decode(frame.payload, &msg)) {
    protocol_error_ = true;
    return;
  }
  // Endpoint ids coincide with user ids by construction; a report claiming
  // another identity is a protocol violation.
  if (msg.user != static_cast<UserId>(src) || msg.user < 0 ||
      static_cast<size_t>(msg.user) >= inbox_.size()) {
    protocol_error_ = true;
    return;
  }
  inbox_[msg.user] = std::move(msg);
}

bool ProtocolServer::TakeReport(UserId u, LocationReportMsg* out) {
  if (u < 0 || static_cast<size_t>(u) >= inbox_.size() ||
      !inbox_[u].has_value()) {
    return false;
  }
  *out = std::move(*inbox_[u]);
  inbox_[u].reset();
  return true;
}

// ---------------------------------------------------------------------------
// TransportLink

TransportLink::TransportLink(const World& world, const NetConfig& config)
    : world_(world), config_(config), net_(config.seed) {
  net_.set_record_log(config.record_log);
  // Clients register first so endpoint id == UserId; the server takes the
  // next id. The link classifier then keys purely on the server side.
  const int server_id = static_cast<int>(world.user_count());
  clients_.reserve(world.user_count());
  for (UserId u = 0; u < static_cast<UserId>(world.user_count()); ++u) {
    clients_.push_back(
        std::make_unique<ClientRuntime>(&net_, &world_, u, server_id, config));
  }
  server_ = std::make_unique<ProtocolServer>(&net_, world.user_count(), config);
  server_id_ = server_->endpoint().id();
  // Direction-attributed wire counters, matching Stats(): everything a
  // client endpoint transmits (frames, retransmits, its acks) is uplink;
  // everything the server transmits is downlink. This is what lets the
  // RunReport reconcile registry counters against CommStats byte totals.
  obs::Counter& bytes_up = obs::Metrics().GetCounter("net.bytes_up");
  obs::Counter& bytes_down = obs::Metrics().GetCounter("net.bytes_down");
  for (auto& client : clients_) {
    client->endpoint().set_wire_bytes_counter(&bytes_up);
  }
  server_->endpoint().set_wire_bytes_counter(&bytes_down);
  const LinkModel up = config.up;
  const LinkModel down = config.down;
  const int sid = server_id_;
  net_.SetLinkModelFn([up, down, sid](int src, int /*dst*/) {
    return src == sid ? down : up;
  });
}

void TransportLink::Report(UserId u, int epoch, size_t window_len,
                           Vec2* position, std::vector<Vec2>* window) {
  clients_[u]->SendReport(epoch, window_len);
  net_.RunUntilIdle();
  LocationReportMsg msg;
  if (!server_->TakeReport(u, &msg)) {
    // Only reachable when the reliability layer gave up (drop_rate ~ 1).
    // Fall back to the direct read so the engine stays well-defined; the
    // run is still flagged failed.
    failed_ = true;
    *position = world_.Position(u, epoch);
    world_.RecentWindow(u, epoch, window_len, window);
    if (window_len == 0) window->clear();
    return;
  }
  // Hand the engine the payload *as the server decoded it* — the codec's
  // exactness, not a shortcut, is what makes the transported run
  // bit-identical to the in-process one.
  *position = msg.position;
  *window = std::move(msg.window);
}

void TransportLink::Probe(UserId u, int epoch) {
  ProbeMsg msg;
  msg.user = u;
  msg.epoch = epoch;
  server_->endpoint().Send(static_cast<int>(u), MsgKind::kProbe, Encode(msg));
  net_.RunUntilIdle();
}

void TransportLink::Alert(UserId u, UserId a, UserId b, int epoch) {
  AlertMsg msg;
  msg.user = u;
  msg.u = a;
  msg.w = b;
  msg.epoch = epoch;
  server_->endpoint().Send(static_cast<int>(u), MsgKind::kAlert, Encode(msg));
  net_.RunUntilIdle();
}

void TransportLink::InstallRegion(UserId u, int epoch,
                                  const SafeRegionShape& region) {
  RegionInstallMsg msg;
  msg.user = u;
  msg.epoch = epoch;
  msg.region = region;
  server_->endpoint().Send(static_cast<int>(u), MsgKind::kRegionInstall,
                           Encode(msg));
  net_.RunUntilIdle();
  // Live codec-exactness check: what the client decoded must equal what the
  // server built, bit for bit (variant operator== is structural/bitwise).
  const auto& installed = clients_[u]->installed_region();
  if (!installed.has_value() || !(*installed == region)) {
    codec_exact_ = false;
  }
}

void TransportLink::InstallMatch(UserId u, int epoch, MatchOp op, UserId a,
                                 UserId b, const Circle& region) {
  MatchInstallMsg msg;
  msg.user = u;
  msg.epoch = epoch;
  msg.op = static_cast<uint8_t>(op);
  msg.u = a;
  msg.w = b;
  msg.region = region;
  server_->endpoint().Send(static_cast<int>(u), MsgKind::kMatchInstall,
                           Encode(msg));
  net_.RunUntilIdle();
  const auto& match = clients_[u]->match_region();
  if (op == MatchOp::kDelete) {
    if (match.has_value()) codec_exact_ = false;
  } else if (!match.has_value() || !(*match == region)) {
    codec_exact_ = false;
  }
}

NetRunStats TransportLink::Stats() const {
  NetRunStats s;
  for (const auto& client : clients_) {
    const ReliableEndpoint& e = client->endpoint();
    s.frames_up += e.frames_sent();
    s.bytes_up += e.bytes_sent();
    s.retransmits += e.retransmits();
    s.dedup_discards += e.dedup_discards();
    if (e.delivery_failed()) s.failed = true;
    if (client->protocol_error()) s.failed = true;
  }
  const ReliableEndpoint& se = server_->endpoint();
  s.frames_down = se.frames_sent();
  s.bytes_down = se.bytes_sent();
  s.retransmits += se.retransmits();
  s.dedup_discards += se.dedup_discards();
  if (se.delivery_failed() || server_->protocol_error()) s.failed = true;
  if (failed_) s.failed = true;
  s.drops = net_.frames_dropped();
  s.duplicates = net_.frames_duplicated();
  s.virtual_seconds = net_.now();
  s.schedule_hash = net_.schedule_hash();
  s.codec_exact = codec_exact_;
  return s;
}

std::vector<AlertEvent> TransportLink::ClientAlerts() const {
  std::vector<AlertEvent> out;
  for (const auto& client : clients_) {
    const auto& alerts = client->alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
  }
  // Each logical alert is delivered to both endpoints of the pair; the
  // client-observed *stream* is the deduplicated union.
  SortAlerts(&out);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// TransportedDetector

TransportedDetector::TransportedDetector(std::unique_ptr<Detector> inner,
                                         NetConfig config)
    : inner_(std::move(inner)), config_(config) {}

std::string TransportedDetector::name() const {
  return "Transported(" + inner_->name() + ")";
}

void TransportedDetector::Run(const World& world) {
  TransportLink link(world, config_);
  inner_->set_link(&link);
  inner_->Run(world);
  inner_->set_link(nullptr);
  net_stats_ = link.Stats();
  // The engine owns the message counts; the transport contributes the
  // byte-level totals it actually put on the wire (frames, retransmits,
  // acks — both directions).
  stats_ = inner_->stats();
  stats_.bytes_up = net_stats_.bytes_up;
  stats_.bytes_down = net_stats_.bytes_down;
  // The detector's alert stream is what the *clients* received over the
  // wire — the end-to-end correctness claim, not the server's intent.
  alerts_ = link.ClientAlerts();
}

// ---------------------------------------------------------------------------

TransportedRunResult RunTransportedMethod(Method method,
                                          const Workload& workload,
                                          const NetConfig& config,
                                          RegionDetector::Options options) {
  TransportedDetector detector(MakeDetector(method, workload, options), config);
  detector.Run(workload.world);
  TransportedRunResult result;
  result.run.method = method;
  result.run.stats = detector.stats();
  if (const auto* rd =
          dynamic_cast<const RegionDetector*>(&detector.inner())) {
    result.run.rebuild_count = rd->rebuild_count();
  }
  const std::vector<AlertEvent> alerts = detector.SortedAlerts();
  result.run.alert_count = alerts.size();
  result.run.alerts_exact = alerts == workload.GroundTruth();
  result.net = detector.net_stats();
  return result;
}

}  // namespace net
}  // namespace proxdet
