#ifndef PROXDET_NET_RELIABILITY_H_
#define PROXDET_NET_RELIABILITY_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "net/backend.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace proxdet {
namespace net {

/// Transport-agnostic at-least-once retry/dedup state machine: every data
/// frame carries a per-destination sequence number, is acked by the
/// receiver, and is retransmitted on a timer until the ack lands (linear
/// backoff, capped at max_retries). The receiver acks every copy —
/// including duplicates, whose data is then discarded by the per-source
/// seen-window — so alert semantics survive loss and duplication exactly.
///
/// Pure decision logic: no I/O, no clocks, no metrics registry. The same
/// class drives the deterministic SimNet and the real-socket UdpNet, which
/// is what makes "identical retry/dedup decisions for identical delivery
/// traces" a structural property rather than a test hope. The caller
/// (ReliableEndpoint) performs the transmissions, arms the timers, and
/// attributes the bytes.
class ReliabilityPolicy {
 public:
  ReliabilityPolicy(double rto_s, int max_retries)
      : rto_s_(rto_s), max_retries_(max_retries) {}

  /// Linear backoff: attempt k (0-based) waits (k + 1) * rto_s before the
  /// next attempt — bounded retry storms at high drop rates, cheap to
  /// reason about.
  double RetryDelay(int attempt) const { return rto_s_ * (attempt + 1); }

  /// Assigns the next per-destination sequence number, encodes the payload
  /// (plus the optional trace extension — frames are encoded exactly once,
  /// so the context rides every retransmission unchanged) into a tracked
  /// frame retained until acked, and returns the seq. The caller follows up
  /// with PlanTransmit(dst, seq, 0).
  uint64_t Enqueue(int dst, MsgKind kind, const std::vector<uint8_t>& payload,
                   const std::vector<TraceEntry>& trace = {});

  struct TransmitPlan {
    enum class Verdict {
      kSkip,    // Acked since the timer was armed; nothing to do.
      kSend,    // Transmit *frame, then arm a timer for next_delay_s.
      kGiveUp,  // Retries exhausted; delivery_failed() is now latched.
    };
    Verdict verdict = Verdict::kSkip;
    const std::vector<uint8_t>* frame = nullptr;  // Valid until next mutation.
    bool is_retransmit = false;                   // attempt > 0.
    double next_delay_s = 0.0;
  };
  /// One (re)transmission decision for attempt `attempt` of (dst, seq).
  TransmitPlan PlanTransmit(int dst, uint64_t seq, int attempt);

  struct RxResult {
    enum class Verdict {
      kCorrupt,    // Undecodable; drop (the sender's retry recovers).
      kAck,        // Ack consumed; frame.seq names the acked send.
      kDuplicate,  // Valid data, already seen: ack it, then discard.
      kDeliver,    // Valid new data: ack it, then hand frame up.
    };
    Verdict verdict = Verdict::kCorrupt;
    Frame frame;
    bool acked_pending = false;  // kAck that cleared a live pending entry.
  };
  /// Classifies one received datagram and updates pending/dedup state.
  /// For kDuplicate and kDeliver the caller must send an ack for frame.seq
  /// back to src — every copy is acked, because the sender may be retrying
  /// precisely because the first ack was lost.
  RxResult OnDatagram(int src, const uint8_t* data, size_t size);

  // Decision counters (pure functions of the enqueue/receive trace).
  uint64_t retransmits() const { return retransmits_; }
  uint64_t dedup_discards() const { return dedup_discards_; }
  uint64_t corrupt_frames() const { return corrupt_frames_; }

  /// True when some frame exhausted max_retries (only reachable with
  /// drop_rate pinned near 1); surfaced as a run failure.
  bool delivery_failed() const { return delivery_failed_; }
  bool all_acked() const { return pending_.empty(); }

 private:
  struct SeenWindow {
    uint64_t contiguous = 0;   // All seqs <= contiguous delivered.
    std::set<uint64_t> ahead;  // Delivered seqs > contiguous.
  };

  bool MarkSeen(int src, uint64_t seq);

  double rto_s_;
  int max_retries_;
  std::map<int, uint64_t> next_seq_;
  std::map<std::pair<int, uint64_t>, std::vector<uint8_t>> pending_;
  std::map<int, SeenWindow> seen_;
  uint64_t retransmits_ = 0;
  uint64_t dedup_discards_ = 0;
  uint64_t corrupt_frames_ = 0;
  bool delivery_failed_ = false;
};

/// ReliabilityPolicy driven over a NetBackend: owns one backend endpoint,
/// executes the policy's transmit plans (data frames, retransmissions,
/// acks), arms its retry timers via Schedule, and attributes every byte it
/// puts on the wire. Works identically over SimNet (virtual time) and
/// UdpNet (wall-clock timer wheel); on wall-clock backends it additionally
/// records per-send round-trip latency into the "net.socket.rtt_s"
/// quantile sketch.
class ReliableEndpoint {
 public:
  using FrameHandler = std::function<void(int src, Frame&& frame)>;

  /// Registers a fresh backend endpoint. `rto_s` is the base retransmission
  /// timeout; attempt k waits k * rto_s. `group` is the backend placement
  /// hint (see NetBackend::AddEndpoint).
  ReliableEndpoint(NetBackend* net, double rto_s, int max_retries,
                   FrameHandler handler, int group = -1);

  int id() const { return id_; }

  /// Attributes this endpoint's wire bytes (data frames, retransmissions
  /// and acks it sends) to registry counters — the transport installs
  /// net.bytes_up on client endpoints and net.bytes_down on server
  /// endpoints, plus a per-shard counter each, so both the global and the
  /// summed per-shard counters reconcile with CommStats byte accounting to
  /// the unit. Every added counter receives every byte; nullptr is ignored.
  void add_wire_bytes_counter(obs::Counter* counter) {
    if (counter != nullptr) wire_bytes_counters_.push_back(counter);
  }

  /// Sends `payload` as a `kind` frame to `dst`, tracked until acked.
  void Send(int dst, MsgKind kind, const std::vector<uint8_t>& payload);

  /// Like Send, but stamps the frame with trace-extension entries (see
  /// TraceCtx): the context is encoded once at enqueue time and therefore
  /// survives retransmission byte-identically. Empty entries degenerate to
  /// the untraced version-1 encoding.
  void Send(int dst, MsgKind kind, const std::vector<uint8_t>& payload,
            const std::vector<TraceEntry>& trace);

  /// Shard label stamped on this endpoint's flight-recorder events
  /// (-1 = unsharded, the default).
  void set_flight_shard(int shard) { flight_shard_ = shard; }
  int flight_shard() const { return flight_shard_; }

  // Wire accounting for this endpoint's *transmissions* (data frames,
  // retransmissions and acks it sends; not what it receives).
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t retransmits() const { return policy_.retransmits(); }
  uint64_t dedup_discards() const { return policy_.dedup_discards(); }
  uint64_t corrupt_frames() const { return policy_.corrupt_frames(); }

  /// True when some frame exhausted max_retries (only reachable with
  /// drop_rate pinned near 1); the transport surfaces it as a run failure.
  bool delivery_failed() const { return policy_.delivery_failed(); }
  bool all_acked() const { return policy_.all_acked(); }

 private:
  void Transmit(int dst, uint64_t seq, int attempt);
  void OnWire(int src, const std::vector<uint8_t>& bytes);
  void CountTx(const std::vector<uint8_t>& frame);
  void RecordFlight(obs::FlightEventKind kind, int peer, uint64_t seq,
                    uint8_t msg_kind);

  NetBackend* net_;
  ReliabilityPolicy policy_;
  FrameHandler handler_;
  std::vector<obs::Counter*> wire_bytes_counters_;
  int id_ = -1;
  int flight_shard_ = -1;
  // First-transmit times for in-flight sends, kept only on wall-clock
  // backends to feed the RTT sketch.
  std::map<std::pair<int, uint64_t>, double> tx_time_;
  // Latest retry-timer token per in-flight send; cancelled eagerly when the
  // ack lands so retired timers never advance SimNet's virtual clock (token
  // 0 = backend without cancellation, where the timer's own pending check
  // makes the firing a no-op).
  std::map<std::pair<int, uint64_t>, uint64_t> retry_timer_;
  uint64_t bytes_sent_ = 0;
  uint64_t frames_sent_ = 0;
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_RELIABILITY_H_
