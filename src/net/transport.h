#ifndef PROXDET_NET_TRANSPORT_H_
#define PROXDET_NET_TRANSPORT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/client_link.h"
#include "core/simulation.h"
#include "net/sim_net.h"
#include "net/wire.h"

namespace proxdet {
namespace net {

/// Which substrate carries the frames of a transported run.
enum class TransportKind {
  kSim,  // Deterministic in-process SimNet (virtual time; the oracle).
  kUdp,  // Real UDP loopback sockets (net/socket/; wall-clock timers).
};

/// Configuration of one transported run: the two link directions, the
/// transport seed (independent of the workload seed) and the reliability
/// knobs.
struct NetConfig {
  TransportKind transport = TransportKind::kSim;
  LinkModel up;    // client -> server (SimNet only)
  LinkModel down;  // server -> client (SimNet only)
  LinkModel mesh;  // shard <-> shard (SimNet only; used when shards > 1)
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  double retry_timeout_s = 0.05;
  int max_retries = 64;
  bool record_log = false;  // Keep the full DeliveryRecord log (tests).
  /// Serving-plane partition count. Users map to shards by consistent
  /// hashing on UserId (net::HashRing); each shard runs its own
  /// ProtocolServer plus a mesh endpoint for shard-to-shard traffic.
  /// shards == 1 reproduces the historical single-server wire schedule
  /// bit-for-bit (same endpoint ids, same frames, same Rng draws).
  int shards = 1;
  /// Virtual nodes per shard on the consistent-hash ring.
  int ring_vnodes = 16;
  /// Coalesce all deliverable-at-epoch-granularity downlink for one client
  /// (installs, alerts, non-blocking probes) into a single kBatch frame per
  /// epoch instead of one frame + ack per message.
  bool batch_downlink = false;
  /// Ship region installs in the quantized-delta polyline encoding when the
  /// guard proves it decodes to the *identical* shape (see
  /// EncodeCompressed); falls back to the exact encoding otherwise.
  bool compress_installs = false;
  /// Stamp alert frames with a wire-propagated TraceCtx (version-2 trace
  /// extension) and account per-alert detect->deliver latency — virtual
  /// time under SimNet, wall clock under UDP (see AlertLatencyTracker).
  /// Off by default: untraced runs stay byte-identical with pre-trace
  /// builds.
  bool trace = false;
  /// Serve the live introspection endpoint (GET /metrics -> Prometheus
  /// text, anything else -> JSON snapshot) on this TCP port for the run's
  /// duration: -1 = disabled, 0 = kernel-chosen ephemeral port (see
  /// StatsServer::port()), >0 = fixed port.
  int stats_port = -1;

  // --- UDP backend knobs (transport == kUdp; ignored otherwise). The UDP
  // path has no LinkModel (no synthetic latency/jitter — loopback is the
  // latency); loss and duplication are injected per datagram copy at the
  // socket layer instead.
  /// First port for the shard-server/mesh sockets (port, port+1, ...);
  /// 0 binds every socket to a kernel-chosen ephemeral port.
  uint16_t udp_port = 0;
  /// Event-loop threads shared by the client sockets (shards get one each).
  int udp_client_loops = 2;
  double udp_drop_rate = 0.0;
  double udp_dup_rate = 0.0;
  /// RunUntilIdle watchdog: a run making no progress for this long is
  /// flagged failed instead of hanging.
  double udp_idle_timeout_s = 60.0;
  /// Use the portable poll(2) readiness path even where epoll exists.
  bool udp_force_poll = false;
};

/// Per-shard wire accounting inside a sharded transported run. Uplink is
/// attributed to the user's home shard; downlink is what the shard's
/// client-facing endpoint transmitted; xshard is what its mesh endpoint
/// transmitted (digests, relays, mesh acks).
struct ShardNetStats {
  uint64_t users = 0;  // Users homed on this shard (ring assignment).
  uint64_t frames_up = 0;
  uint64_t bytes_up = 0;
  uint64_t frames_down = 0;
  uint64_t bytes_down = 0;
  uint64_t frames_xshard = 0;
  uint64_t bytes_xshard = 0;
};

/// Wire-level outcome of a transported run, alongside the CommStats the
/// engine accumulates.
struct NetRunStats {
  uint64_t frames_up = 0;    // Client -> server transmissions (incl. acks).
  uint64_t bytes_up = 0;
  uint64_t frames_down = 0;  // Server -> client transmissions (incl. acks).
  uint64_t bytes_down = 0;
  uint64_t frames_xshard = 0;  // Shard mesh transmissions (incl. acks).
  uint64_t bytes_xshard = 0;
  uint64_t retransmits = 0;
  uint64_t drops = 0;
  uint64_t duplicates = 0;
  uint64_t dedup_discards = 0;
  double virtual_seconds = 0.0;  // Final SimNet clock.
  uint64_t schedule_hash = 0;    // Determinism fingerprint (SimNet).
  /// Per-shard breakdown; size == NetConfig::shards. Sums of the per-shard
  /// direction totals equal the global totals above (asserted by
  /// ReconcileWithCommStats).
  std::vector<ShardNetStats> shards;
  /// Downlink batching: kBatch frames sent, messages they carried, and the
  /// bytes saved versus one frame + ack per message.
  uint64_t batch_frames = 0;
  uint64_t batch_messages = 0;
  uint64_t batch_saved_bytes = 0;
  /// Install compression: installs shipped quantized, installs where
  /// quantization did not shrink the payload, bytes saved, and guard
  /// failures (shipped exact instead; always 0 for grid-snapped stripes).
  uint64_t compressed_installs = 0;
  uint64_t compress_skipped = 0;
  uint64_t compress_saved_bytes = 0;
  uint64_t compress_mismatch = 0;
  /// Every decoded install compared equal (operator==, bitwise) to the
  /// shape the server sent — the codec exactness contract, checked live on
  /// every region/match install of the run.
  bool codec_exact = true;
  /// A frame exhausted max_retries or a payload failed to decode; only
  /// reachable with a pathological config (drop_rate ~ 1).
  bool failed = false;
};

class AlertLatencyTracker;

/// Client-side runtime of one user: reads its own trajectory from the
/// World (that is the client's private knowledge), uploads reports on
/// request, and records everything the server pushes down — probes,
/// alerts, safe-region installs, match notices.
class ClientRuntime {
 public:
  ClientRuntime(NetBackend* net, const World* world, UserId id, int server_id,
                const NetConfig& config);

  /// Encodes and sends this client's location report for `epoch`;
  /// `window_len` == 0 sends a position-only report.
  void SendReport(int epoch, size_t window_len);

  /// Routes delivered alert trace contexts into the run's latency tracker
  /// (nullptr, the default, ignores them).
  void set_latency_tracker(AlertLatencyTracker* tracker) {
    latency_ = tracker;
  }

  ReliableEndpoint& endpoint() { return endpoint_; }
  const ReliableEndpoint& endpoint() const { return endpoint_; }
  const std::vector<AlertEvent>& alerts() const { return alerts_; }
  uint64_t probes_received() const { return probes_received_; }
  uint64_t regions_installed() const { return regions_installed_; }
  uint64_t match_notices() const { return match_notices_; }
  /// Trace contexts of delivered alerts, in delivery order (only populated
  /// on traced runs; alerts_[i] matches traced_alerts_[i] when sizes agree).
  const std::vector<TraceCtx>& alert_traces() const { return alert_traces_; }
  const std::optional<SafeRegionShape>& installed_region() const {
    return installed_region_;
  }
  const std::optional<Circle>& match_region() const { return match_region_; }
  bool protocol_error() const { return protocol_error_; }

 private:
  void HandleFrame(Frame&& frame);
  /// One logical downlink message (either a whole frame's payload or one
  /// batch envelope item, with the trace context its frame carried for it —
  /// nullptr when untraced). Returns false on a decode/protocol violation.
  bool HandleMessage(MsgKind kind, const std::vector<uint8_t>& payload,
                     const TraceCtx* ctx);

  const World* world_;
  UserId id_;
  int server_id_;
  bool trace_ = false;
  AlertLatencyTracker* latency_ = nullptr;
  std::vector<AlertEvent> alerts_;
  std::vector<TraceCtx> alert_traces_;
  uint64_t probes_received_ = 0;
  uint64_t regions_installed_ = 0;
  uint64_t match_notices_ = 0;
  std::optional<SafeRegionShape> installed_region_;
  std::optional<Circle> match_region_;
  bool protocol_error_ = false;
  ReliableEndpoint endpoint_;  // Last: its handler captures `this`.
};

/// Server-side frame sink: decodes uplink location reports into a per-user
/// inbox the engine link drains synchronously.
class ProtocolServer {
 public:
  /// `group` pins the server's socket to its shard's event loop on real
  /// backends (see NetBackend::AddEndpoint).
  ProtocolServer(NetBackend* net, size_t user_count, const NetConfig& config,
                 int group = -1);

  bool TakeReport(UserId u, LocationReportMsg* out);

  /// Trace context the user's last report frame carried, consumed with the
  /// report (empty for untraced runs). Call before or after TakeReport
  /// within the same drain — the slot is cleared by the *next* report.
  std::optional<TraceCtx> report_trace(UserId u) const {
    if (u < 0 || static_cast<size_t>(u) >= inbox_trace_.size()) return {};
    return inbox_trace_[u];
  }

  /// Restricts the users this server accepts reports from (a sharded
  /// frontend serves only its ring partition); a report from any other user
  /// is a protocol violation. Unset accepts every user (single-server).
  void set_served_filter(std::function<bool(UserId)> served) {
    served_ = std::move(served);
  }

  ReliableEndpoint& endpoint() { return endpoint_; }
  const ReliableEndpoint& endpoint() const { return endpoint_; }
  bool protocol_error() const { return protocol_error_; }

 private:
  void HandleFrame(int src, Frame&& frame);

  std::vector<std::optional<LocationReportMsg>> inbox_;
  std::vector<std::optional<TraceCtx>> inbox_trace_;
  std::function<bool(UserId)> served_;
  bool protocol_error_ = false;
  ReliableEndpoint endpoint_;
};

/// ClientLink implementation over the simulated network: every engine
/// message becomes a framed, sequence-numbered, acked wire exchange, run to
/// quiescence before the engine continues (stop-and-wait, matching the
/// paper's synchronous epoch model — latency and loss shape virtual time
/// and wire counters, never alert semantics, because delivery is
/// at-least-once with dedup).
class ShardedFrontend;

class TransportLink : public ClientLink {
 public:
  TransportLink(const World& world, const NetConfig& config);
  ~TransportLink() override;

  void Report(UserId u, int epoch, size_t window_len, Vec2* position,
              std::vector<Vec2>* window) override;
  void Probe(UserId u, int epoch) override;
  void Alert(UserId u, UserId a, UserId b, int epoch) override;
  void InstallRegion(UserId u, int epoch,
                     const SafeRegionShape& region) override;
  void InstallMatch(UserId u, int epoch, MatchOp op, UserId a, UserId b,
                    const Circle& region) override;
  void EndEpoch(int epoch) override;

  /// Wire accounting and determinism fingerprint for the run so far.
  NetRunStats Stats() const;

  /// Union of the alert events delivered to the clients, deduplicated
  /// (each pair alert reaches both endpoints) and sorted — the
  /// client-observed alert stream the keystone test compares to ground
  /// truth.
  std::vector<AlertEvent> ClientAlerts() const;

  const ClientRuntime& client(UserId u) const;
  /// The deterministic backend, or nullptr when the run rides real sockets.
  const SimNet* sim_net() const;
  const ShardedFrontend& frontend() const { return *frontend_; }
  /// The run's latency tracker, or nullptr when NetConfig::trace is off.
  const AlertLatencyTracker* latency_tracker() const;
  /// Bound port of the live introspection endpoint, or -1 when disabled.
  int stats_port() const;

 private:
  /// All serving-plane state (SimNet, clients, shards, ring, batch queues)
  /// lives in the frontend; shards == 1 is just the one-partition case of
  /// the same machinery and reproduces the historical single-server wire
  /// schedule bit-for-bit.
  std::unique_ptr<ShardedFrontend> frontend_;
};

/// Detector decorator: runs the wrapped engine with a TransportLink
/// installed, then exposes the *client-observed* alert stream as its own
/// and merges wire bytes into stats(). With a zero-impairment NetConfig the
/// result is bit-exact (alerts, message counts, rebuild counts) with the
/// wrapped engine run in-process — the keystone contract of the network
/// layer.
class TransportedDetector : public Detector {
 public:
  TransportedDetector(std::unique_ptr<Detector> inner, NetConfig config);

  std::string name() const override;
  void Run(const World& world) override;

  const NetRunStats& net_stats() const { return net_stats_; }
  Detector& inner() { return *inner_; }
  const Detector& inner() const { return *inner_; }

 private:
  std::unique_ptr<Detector> inner_;
  NetConfig config_;
  NetRunStats net_stats_;
};

/// Transported analogue of RunMethod: builds the method's detector, runs it
/// through the simulated network, and reports both the engine-side RunResult
/// (stats carry bytes_up/bytes_down; alerts_exact is judged on the
/// *client-observed* stream) and the wire-level stats.
struct TransportedRunResult {
  RunResult run;
  NetRunStats net;
};

TransportedRunResult RunTransportedMethod(Method method,
                                          const Workload& workload,
                                          const NetConfig& config,
                                          RegionDetector::Options options = {});

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_TRANSPORT_H_
