#include "net/latency.h"

#include <string>

#include "obs/trace.h"

namespace proxdet {
namespace net {

AlertLatencyTracker::AlertLatencyTracker(NetBackend* net, int shard_count)
    : net_(net),
      delivered_counter_(obs::Metrics().GetCounter("net.latency.delivered",
                                                   obs::Kind::kDeterministic)),
      virtual_sketch_(obs::Metrics().GetQuantile("net.latency.virtual_s",
                                                 obs::Kind::kDeterministic)),
      wall_sketch_(obs::Metrics().GetQuantile("net.latency.wall_s",
                                              obs::Kind::kWallClock)) {
  shard_wall_sketches_.reserve(shard_count > 0 ? shard_count : 0);
  for (int s = 0; s < shard_count; ++s) {
    shard_wall_sketches_.push_back(&obs::Metrics().GetQuantile(
        "net.shard" + std::to_string(s) + ".latency_wall_s",
        obs::Kind::kWallClock));
  }
}

void AlertLatencyTracker::RecordDetect(uint64_t event_id, int shard) {
  Pending& p = pending_[event_id];
  p.detect_s = net_->now();
  p.shard = shard;
  obs::Tracer::Global().FlowBegin("alert_flow", "latency", event_id);
}

void AlertLatencyTracker::RecordDeliver(const TraceCtx& ctx) {
  const auto it = pending_.find(ctx.event_id);
  if (it == pending_.end()) {
    unmatched_ += 1;
    return;
  }
  const double latency_s = net_->now() - it->second.detect_s;
  if (net_->wall_clock()) {
    wall_sketch_.Record(latency_s);
    const int shard = it->second.shard;
    if (shard >= 0 &&
        shard < static_cast<int>(shard_wall_sketches_.size())) {
      shard_wall_sketches_[shard]->Record(latency_s);
    }
  } else {
    virtual_sketch_.Record(latency_s);
  }
  delivered_counter_.Inc();
  delivered_ += 1;
  pending_.erase(it);
  obs::Tracer::Global().FlowEnd("alert_flow", "latency", ctx.event_id);
}

}  // namespace net
}  // namespace proxdet
