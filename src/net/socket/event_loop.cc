#include "net/socket/event_loop.h"

#include <cerrno>
#include <cstdlib>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/epoll.h>
#endif
#endif

namespace proxdet {
namespace net {

#if defined(_WIN32)

// Stub so the library links on non-POSIX hosts; UdpNet::Available() is
// false there and every socket test skips.
EventLoop::EventLoop(bool) {}
EventLoop::~EventLoop() = default;
bool EventLoop::Add(int) { return false; }
void EventLoop::Remove(int) {}
void EventLoop::SetWriteInterest(int, bool) {}
int EventLoop::Poll(int, std::vector<Ready>*) { return -1; }
void EventLoop::Wake() {}
void EventLoop::DrainWakePipe() {}
int EventLoop::PollWithEpoll(int, std::vector<Ready>*) { return -1; }
int EventLoop::PollWithPoll(int, std::vector<Ready>*) { return -1; }

#else  // POSIX

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool EnvForcesPoll() {
  const char* v = std::getenv("PROXDET_FORCE_POLL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

EventLoop::EventLoop(bool force_poll) {
  int fds[2];
  if (pipe(fds) != 0) return;
  wake_read_ = fds[0];
  wake_write_ = fds[1];
  if (!SetNonBlocking(wake_read_) || !SetNonBlocking(wake_write_)) {
    close(wake_read_);
    close(wake_write_);
    wake_read_ = wake_write_ = -1;
    return;
  }
#if defined(__linux__)
  if (!force_poll && !EnvForcesPoll()) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wake_read_;
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev) != 0) {
        close(epoll_fd_);
        epoll_fd_ = -1;
      }
    }
  }
#else
  (void)force_poll;
#endif
  ok_ = true;  // poll(2) backend needs nothing beyond the wake pipe.
}

EventLoop::~EventLoop() {
#if defined(__linux__)
  if (epoll_fd_ >= 0) close(epoll_fd_);
#endif
  if (wake_read_ >= 0) close(wake_read_);
  if (wake_write_ >= 0) close(wake_write_);
}

bool EventLoop::Add(int fd) {
  if (!ok_) return false;
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  }
#endif
  interests_.push_back({fd, false});
  return true;
}

void EventLoop::Remove(int fd) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  for (size_t i = 0; i < interests_.size(); ++i) {
    if (interests_[i].fd == fd) {
      interests_.erase(interests_.begin() + static_cast<long>(i));
      return;
    }
  }
}

void EventLoop::SetWriteInterest(int fd, bool on) {
  for (Interest& interest : interests_) {
    if (interest.fd != fd) continue;
    if (interest.write == on) return;
    interest.write = on;
#if defined(__linux__)
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
      ev.data.fd = fd;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
#endif
    return;
  }
}

void EventLoop::DrainWakePipe() {
  char buf[256];
  while (read(wake_read_, buf, sizeof(buf)) > 0) {
  }
}

int EventLoop::Poll(int timeout_ms, std::vector<Ready>* out) {
  if (!ok_) return -1;
#if defined(__linux__)
  if (epoll_fd_ >= 0) return PollWithEpoll(timeout_ms, out);
#endif
  return PollWithPoll(timeout_ms, out);
}

int EventLoop::PollWithEpoll(int timeout_ms, std::vector<Ready>* out) {
#if defined(__linux__)
  epoll_event events[64];
  int n;
  do {
    n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  int appended = 0;
  for (int i = 0; i < n; ++i) {
    if (events[i].data.fd == wake_read_) {
      DrainWakePipe();
      continue;
    }
    Ready r;
    r.fd = events[i].data.fd;
    r.readable = (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
    r.writable = (events[i].events & EPOLLOUT) != 0;
    out->push_back(r);
    ++appended;
  }
  return appended;
#else
  (void)timeout_ms;
  (void)out;
  return -1;
#endif
}

int EventLoop::PollWithPoll(int timeout_ms, std::vector<Ready>* out) {
  std::vector<pollfd> fds;
  fds.reserve(interests_.size() + 1);
  pollfd wake{};
  wake.fd = wake_read_;
  wake.events = POLLIN;
  fds.push_back(wake);
  for (const Interest& interest : interests_) {
    pollfd p{};
    p.fd = interest.fd;
    p.events = static_cast<short>(POLLIN | (interest.write ? POLLOUT : 0));
    fds.push_back(p);
  }
  int n;
  do {
    n = poll(fds.data(), fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  if (fds[0].revents & POLLIN) DrainWakePipe();
  int appended = 0;
  for (size_t i = 1; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    Ready r;
    r.fd = fds[i].fd;
    r.readable = (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0;
    r.writable = (fds[i].revents & POLLOUT) != 0;
    out->push_back(r);
    ++appended;
  }
  return appended;
}

void EventLoop::Wake() {
  if (wake_write_ < 0) return;
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  (void)!write(wake_write_, &byte, 1);
}

#endif  // POSIX

}  // namespace net
}  // namespace proxdet
