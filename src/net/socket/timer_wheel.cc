#include "net/socket/timer_wheel.h"

#include <algorithm>
#include <utility>

namespace proxdet {
namespace net {

void TimerWheel::Schedule(double now_s, double delay_s,
                          std::function<void()> fn) {
  Entry e;
  // Clamp into the future relative to the fire cursor so a callback that
  // re-arms an already-due timer lands in the next FireDue, not this one.
  e.deadline_tick = std::max(TickOf(now_s + delay_s), cursor_tick_);
  e.fn = std::move(fn);
  buckets_[static_cast<size_t>(e.deadline_tick) % slots_].push_back(
      std::move(e));
  size_ += 1;
}

int TimerWheel::FireDue(double now_s) {
  const int64_t now_tick = static_cast<int64_t>(now_s / tick_s_);
  if (now_tick < cursor_tick_) return 0;
  if (size_ == 0) {
    cursor_tick_ = now_tick + 1;
    return 0;
  }
  std::vector<std::function<void()>> due;
  auto extract = [&](std::vector<Entry>& bucket) {
    size_t keep = 0;
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].deadline_tick <= now_tick) {
        due.push_back(std::move(bucket[i].fn));
      } else {
        if (keep != i) bucket[keep] = std::move(bucket[i]);
        ++keep;
      }
    }
    bucket.resize(keep);
  };
  if (now_tick - cursor_tick_ >= static_cast<int64_t>(slots_)) {
    // A full revolution elapsed since the last fire: every bucket may hold
    // due entries, so make one flat pass instead of spinning the cursor.
    for (std::vector<Entry>& bucket : buckets_) extract(bucket);
  } else {
    for (int64_t t = cursor_tick_; t <= now_tick; ++t) {
      extract(buckets_[static_cast<size_t>(t) % slots_]);
    }
  }
  cursor_tick_ = now_tick + 1;
  size_ -= due.size();
  for (std::function<void()>& fn : due) fn();
  return static_cast<int>(due.size());
}

}  // namespace net
}  // namespace proxdet
