#include "net/socket/udp_net.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace proxdet {
namespace net {

namespace {

/// Wall-clock datagram totals for the socket backend (loop threads bump
/// these concurrently; Counter is a relaxed atomic). Injection totals share
/// the SimNet counter names — "frames offered to the link, minus injected
/// drops" means the same thing on both backends.
struct SocketMetrics {
  obs::Counter& frames_offered;
  obs::Counter& drops;
  obs::Counter& dups;
  obs::Counter& datagrams_sent;
  obs::Counter& bytes_sent;
  obs::Counter& datagrams_received;
  obs::Counter& bytes_received;
  obs::Counter& send_errors;

  static const SocketMetrics& Get() {
    static const SocketMetrics m{
        obs::Metrics().GetCounter("net.frames_offered"),
        obs::Metrics().GetCounter("net.drops"),
        obs::Metrics().GetCounter("net.dups"),
        obs::Metrics().GetCounter("net.socket.datagrams_sent",
                                  obs::Kind::kWallClock),
        obs::Metrics().GetCounter("net.socket.bytes_sent",
                                  obs::Kind::kWallClock),
        obs::Metrics().GetCounter("net.socket.datagrams_received",
                                  obs::Kind::kWallClock),
        obs::Metrics().GetCounter("net.socket.bytes_received",
                                  obs::Kind::kWallClock),
        obs::Metrics().GetCounter("net.socket.send_errors",
                                  obs::Kind::kWallClock),
    };
    return m;
  }
};

}  // namespace

#if defined(_WIN32)

UdpNet::UdpNet(const UdpNetConfig& config) : config_(config), rng_(config.seed) {
  ok_ = false;
}
UdpNet::~UdpNet() = default;
bool UdpNet::Available() { return false; }
int UdpNet::AddEndpoint(Handler, int) { return -1; }
void UdpNet::Send(int, int, std::vector<uint8_t>) {}
void UdpNet::Schedule(double, std::function<void()>) {}
void UdpNet::RunUntilIdle() {}
double UdpNet::now() const { return 0.0; }
void UdpNet::Start() {}
void UdpNet::PumpFor(double) {}
uint16_t UdpNet::endpoint_port(int) const { return 0; }
bool UdpNet::using_epoll() const { return false; }
void UdpNet::LoopMain(Loop*) {}
void UdpNet::FlushOutbox(Loop*) {}
bool UdpNet::TrySend(Loop*, const Outgoing&) { return true; }
void UdpNet::ReadSocket(Loop*, int) {}
void UdpNet::EnqueueOutgoing(int, int, std::vector<uint8_t>) {}
bool UdpNet::QueuesDrained() { return true; }
int UdpNet::PumpOnce() { return 0; }

#else  // POSIX

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in LoopbackAddr(uint16_t port_host_order) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_host_order);
  return addr;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

UdpNet::UdpNet(const UdpNetConfig& config)
    : config_(config), rng_(config.seed), epoch_(std::chrono::steady_clock::now()) {
  const int total_loops =
      std::max(1, config_.shard_loops) + std::max(1, config_.client_loops);
  config_.shard_loops = std::max(1, config_.shard_loops);
  config_.client_loops = std::max(1, config_.client_loops);
  loops_.reserve(static_cast<size_t>(total_loops));
  for (int i = 0; i < total_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->event_loop = std::make_unique<EventLoop>(config_.force_poll);
    if (!loop->event_loop->ok()) ok_ = false;
    loops_.push_back(std::move(loop));
  }
}

UdpNet::~UdpNet() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& loop : loops_) {
    loop->event_loop->Wake();
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (Endpoint& endpoint : endpoints_) {
    if (endpoint.fd >= 0) close(endpoint.fd);
  }
}

bool UdpNet::Available() {
  static const bool available = [] {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr = LoopbackAddr(0);
    const bool bound =
        bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    close(fd);
    if (!bound) return false;
    int pipe_fds[2];
    if (pipe(pipe_fds) != 0) return false;
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return true;
  }();
  return available;
}

int UdpNet::AddEndpoint(Handler handler, int group) {
  if (started_) {
    std::fprintf(stderr, "UdpNet: AddEndpoint after Start\n");
    ok_ = false;
    return -1;
  }
  Endpoint endpoint;
  endpoint.handler = std::move(handler);
  endpoint.fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (endpoint.fd < 0 || !SetNonBlocking(endpoint.fd)) {
    if (endpoint.fd >= 0) close(endpoint.fd);
    ok_ = false;
    endpoints_.push_back(Endpoint{});
    return static_cast<int>(endpoints_.size()) - 1;
  }
  setsockopt(endpoint.fd, SOL_SOCKET, SO_RCVBUF, &config_.socket_buffer_bytes,
             sizeof(config_.socket_buffer_bytes));
  setsockopt(endpoint.fd, SOL_SOCKET, SO_SNDBUF, &config_.socket_buffer_bytes,
             sizeof(config_.socket_buffer_bytes));
  bool bound = false;
  if (group >= 0 && config_.base_port != 0) {
    sockaddr_in addr = LoopbackAddr(
        static_cast<uint16_t>(config_.base_port + next_shard_port_offset_++));
    bound = bind(endpoint.fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) == 0;
  }
  if (!bound) {
    sockaddr_in addr = LoopbackAddr(0);  // Ephemeral.
    bound = bind(endpoint.fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) == 0;
  }
  sockaddr_in bound_addr{};
  socklen_t len = sizeof(bound_addr);
  if (!bound || getsockname(endpoint.fd,
                            reinterpret_cast<sockaddr*>(&bound_addr),
                            &len) != 0) {
    close(endpoint.fd);
    ok_ = false;
    endpoints_.push_back(Endpoint{});
    return static_cast<int>(endpoints_.size()) - 1;
  }
  endpoint.port = ntohs(bound_addr.sin_port);
  endpoint.loop = group >= 0
                      ? group % config_.shard_loops
                      : config_.shard_loops +
                            (next_client_loop_++ % config_.client_loops);
  if (!loops_[static_cast<size_t>(endpoint.loop)]->event_loop->Add(
          endpoint.fd)) {
    ok_ = false;
  }
  loops_[static_cast<size_t>(endpoint.loop)]->fds.push_back(endpoint.fd);
  const int id = static_cast<int>(endpoints_.size());
  port_to_endpoint_[endpoint.port] = id;
  fd_to_endpoint_[endpoint.fd] = id;
  endpoints_.push_back(std::move(endpoint));
  return id;
}

uint16_t UdpNet::endpoint_port(int id) const {
  return id >= 0 && id < static_cast<int>(endpoints_.size())
             ? endpoints_[static_cast<size_t>(id)].port
             : 0;
}

bool UdpNet::using_epoll() const {
  return !loops_.empty() && loops_[0]->event_loop->using_epoll();
}

double UdpNet::now() const { return SecondsSince(epoch_); }

void UdpNet::Start() {
  if (started_ || !ok_) {
    started_ = true;
    return;
  }
  started_ = true;
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    loop->thread = std::thread([this, raw] { LoopMain(raw); });
  }
}

void UdpNet::Send(int src, int dst, std::vector<uint8_t> frame) {
  // Same injection semantics (and counter meanings) as SimNet's LinkModel:
  // one dup coin per logical send, one drop coin per copy, all from the
  // seeded Rng — the kernel may drop more under burst, and the reliability
  // layer above recovers both kinds identically.
  const bool duplicate = rng_.NextBool(config_.dup_rate);
  const int copies = duplicate ? 2 : 1;
  if (duplicate) {
    frames_duplicated_ += 1;
    SocketMetrics::Get().dups.Inc();
  }
  for (int c = 0; c < copies; ++c) {
    const bool drop = rng_.NextBool(config_.drop_rate);
    frames_offered_ += 1;
    SocketMetrics::Get().frames_offered.Inc();
    if (drop) {
      frames_dropped_ += 1;
      SocketMetrics::Get().drops.Inc();
      continue;
    }
    EnqueueOutgoing(src, dst,
                    c == copies - 1 ? std::move(frame)
                                    : std::vector<uint8_t>(frame));
  }
}

void UdpNet::EnqueueOutgoing(int src, int dst, std::vector<uint8_t> bytes) {
  if (src < 0 || src >= static_cast<int>(endpoints_.size()) || dst < 0 ||
      dst >= static_cast<int>(endpoints_.size())) {
    return;
  }
  const Endpoint& from = endpoints_[static_cast<size_t>(src)];
  if (from.fd < 0) return;
  Outgoing out;
  out.src_fd = from.fd;
  out.dst_port = endpoints_[static_cast<size_t>(dst)].port;
  out.bytes = std::move(bytes);
  Loop* loop = loops_[static_cast<size_t>(from.loop)].get();
  unsent_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->outbox.push_back(std::move(out));
  }
  loop->event_loop->Wake();
}

bool UdpNet::TrySend(Loop* loop, const Outgoing& out) {
  const sockaddr_in dst = LoopbackAddr(out.dst_port);
  const ssize_t n =
      sendto(out.src_fd, out.bytes.data(), out.bytes.size(), 0,
             reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
  if (n >= 0) {
    datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
    socket_bytes_sent_.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
    SocketMetrics::Get().datagrams_sent.Inc();
    SocketMetrics::Get().bytes_sent.Inc(static_cast<uint64_t>(n));
    return true;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
    loop->event_loop->SetWriteInterest(out.src_fd, true);
    return false;  // Retained in the backlog; flushed on writability.
  }
  // Hard error: drop the datagram — the reliability layer's retry treats
  // it exactly like wire loss.
  SocketMetrics::Get().send_errors.Inc();
  return true;
}

void UdpNet::FlushOutbox(Loop* loop) {
  while (!loop->backlog.empty()) {
    if (!TrySend(loop, loop->backlog.front())) break;
    loop->backlog.pop_front();
    unsent_.fetch_sub(1, std::memory_order_acq_rel);
  }
  std::deque<Outgoing> fresh;
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    fresh.swap(loop->outbox);
  }
  for (Outgoing& out : fresh) {
    if (!loop->backlog.empty()) {
      loop->backlog.push_back(std::move(out));  // Preserve per-fd order.
      continue;
    }
    if (TrySend(loop, out)) {
      unsent_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      loop->backlog.push_back(std::move(out));
    }
  }
  if (loop->backlog.empty()) {
    // All caught up: retract any write interest armed by earlier EAGAINs.
    for (const int fd : loop->write_armed) {
      loop->event_loop->SetWriteInterest(fd, false);
    }
    loop->write_armed.clear();
  } else {
    std::unordered_set<int> pending;
    for (const Outgoing& out : loop->backlog) pending.insert(out.src_fd);
    for (const int fd : pending) {
      if (loop->write_armed.insert(fd).second) {
        loop->event_loop->SetWriteInterest(fd, true);
      }
    }
  }
}

void UdpNet::ReadSocket(Loop* loop, int fd) {
  (void)loop;
  const auto dst_it = fd_to_endpoint_.find(fd);
  if (dst_it == fd_to_endpoint_.end()) return;
  const int dst = dst_it->second;
  char buf[65536];
  std::vector<Incoming> batch;
  for (;;) {
    sockaddr_in src_addr{};
    socklen_t len = sizeof(src_addr);
    const ssize_t n = recvfrom(fd, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&src_addr), &len);
    if (n < 0) break;  // EAGAIN (drained) or transient error.
    datagrams_received_.fetch_add(1, std::memory_order_relaxed);
    socket_bytes_received_.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
    SocketMetrics::Get().datagrams_received.Inc();
    SocketMetrics::Get().bytes_received.Inc(static_cast<uint64_t>(n));
    const auto src_it = port_to_endpoint_.find(ntohs(src_addr.sin_port));
    Incoming in;
    in.dst = dst;
    // Datagrams from sockets we never bound (test-injected garbage) carry
    // src -1; the frame decoder rejects what it must.
    in.src = src_it == port_to_endpoint_.end() ? -1 : src_it->second;
    in.bytes.assign(buf, buf + n);
    batch.push_back(std::move(in));
  }
  if (batch.empty()) return;
  {
    std::lock_guard<std::mutex> lock(inbound_mutex_);
    for (Incoming& in : batch) inbound_.push_back(std::move(in));
  }
  inbound_cv_.notify_one();
}

void UdpNet::LoopMain(Loop* loop) {
  std::vector<EventLoop::Ready> ready;
  while (!stop_.load(std::memory_order_relaxed)) {
    FlushOutbox(loop);
    ready.clear();
    const int timeout_ms = loop->backlog.empty() ? 100 : 10;
    if (loop->event_loop->Poll(timeout_ms, &ready) < 0) return;
    for (const EventLoop::Ready& r : ready) {
      if (r.readable) ReadSocket(loop, r.fd);
    }
    // Writability is handled by the FlushOutbox at the top of the loop.
  }
}

bool UdpNet::QueuesDrained() {
  if (unsent_.load(std::memory_order_acquire) != 0) return false;
  std::lock_guard<std::mutex> lock(inbound_mutex_);
  return inbound_.empty();
}

int UdpNet::PumpOnce() {
  int n = wheel_.FireDue(now());
  std::deque<Incoming> batch;
  {
    std::lock_guard<std::mutex> lock(inbound_mutex_);
    batch.swap(inbound_);
  }
  for (Incoming& in : batch) {
    obs::TraceScope span("socket_delivery", "net");
    endpoints_[static_cast<size_t>(in.dst)].handler(in.src, in.bytes);
  }
  return n + static_cast<int>(batch.size());
}

void UdpNet::Schedule(double delay_s, std::function<void()> fn) {
  wheel_.Schedule(now(), delay_s, std::move(fn));
}

void UdpNet::RunUntilIdle() {
  Start();
  if (!ok_) return;
  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    if (PumpOnce() > 0) {
      last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (QueuesDrained() && (idle_fn_ ? idle_fn_() : wheel_.empty())) return;
    if (SecondsSince(last_progress) > config_.idle_timeout_s) {
      idle_timeout_hit_ = true;
      // Post-mortem: dump the protocol-event ring so the wedged exchange
      // (who stopped acking whom) is reconstructible from the artifact.
      obs::Flight().DumpOnFailure("udp idle timeout after " +
                                  std::to_string(config_.idle_timeout_s) +
                                  "s without progress");
      return;
    }
    std::unique_lock<std::mutex> lock(inbound_mutex_);
    if (!inbound_.empty()) continue;
    // Armed timers bound the sleep at one wheel tick; otherwise wait for a
    // delivery (the cv) with a safety timeout.
    inbound_cv_.wait_for(lock, wheel_.empty()
                                   ? std::chrono::milliseconds(5)
                                   : std::chrono::milliseconds(1));
  }
}

void UdpNet::PumpFor(double seconds) {
  Start();
  if (!ok_) return;
  const auto t0 = std::chrono::steady_clock::now();
  while (SecondsSince(t0) < seconds) {
    if (PumpOnce() > 0) continue;
    std::unique_lock<std::mutex> lock(inbound_mutex_);
    if (!inbound_.empty()) continue;
    inbound_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

#endif  // POSIX

}  // namespace net
}  // namespace proxdet
