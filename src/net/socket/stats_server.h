#ifndef PROXDET_NET_SOCKET_STATS_SERVER_H_
#define PROXDET_NET_SOCKET_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace proxdet {
namespace net {

/// Live introspection endpoint: a tiny single-threaded HTTP/1.0 server on a
/// loopback TCP port, running on its own thread for the lifetime of the
/// serving plane (both transports — it reads only the thread-safe obs
/// registry and flight recorder, never protocol state).
///
///   GET /metrics   -> the Prometheus text exposition dump
///   GET <anything> -> a JSON snapshot: per-shard gauges and counters,
///                     latency sketch summaries (p50/p99/p999) and the
///                     flight-recorder head (most recent protocol events)
///
/// One request per connection (Connection: close); requests are read with a
/// short timeout so a stalled client cannot wedge the serving thread.
class StatsServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-chosen; see port()) and starts the
  /// accept loop. ok() reports whether the listener came up.
  explicit StatsServer(int port);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  bool ok() const { return ok_; }
  /// The bound TCP port (resolved for ephemeral binds), or -1 when !ok().
  int port() const { return port_; }
  /// Requests served so far (all paths).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// The JSON snapshot body served for non-/metrics paths (exposed for
  /// tests and for --flight-dump style offline use).
  static std::string SnapshotJson();

 private:
  void Serve();
  void HandleConnection(int fd);

  bool ok_ = false;
  int port_ = -1;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_SOCKET_STATS_SERVER_H_
