#include "net/socket/stats_server.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace proxdet {
namespace net {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

void AppendKey(const std::string& name, std::string* out) {
  out->push_back('"');
  AppendEscaped(name, out);
  *out += "\": ";
}

std::string NumberJson(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string StatsServer::SnapshotJson() {
  const obs::MetricsSnapshot snap = obs::Metrics().Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, entry] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKey(name, &out);
    out += std::to_string(entry.second);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, entry] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKey(name, &out);
    out += NumberJson(entry.second);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"quantiles\": {";
  first = true;
  for (const auto& [name, entry] : snap.quantiles) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKey(name, &out);
    const auto& q = entry.value;
    out += "{\"count\": " + std::to_string(q.count()) +
           ", \"sum\": " + NumberJson(q.sum()) +
           ", \"p50\": " + NumberJson(q.Quantile(0.50)) +
           ", \"p99\": " + NumberJson(q.Quantile(0.99)) +
           ", \"p999\": " + NumberJson(q.Quantile(0.999)) + "}";
  }
  out += first ? "}" : "\n  }";
  // Flight-recorder head: the most recent protocol events, already JSON.
  const std::vector<obs::FlightEvent> head = obs::Flight().Head(32);
  out += ",\n  \"flight_head\": [";
  char buf[224];
  for (size_t i = 0; i < head.size(); ++i) {
    const obs::FlightEvent& e = head[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"id\": %llu, \"kind\": \"%s\", \"shard\": %d, "
                  "\"src\": %d, \"dst\": %d, \"seq\": %llu, \"msg_kind\": %u, "
                  "\"time_s\": %.9f}",
                  i == 0 ? "" : ",", static_cast<unsigned long long>(e.id),
                  obs::FlightEventKindName(e.kind), e.shard, e.src, e.dst,
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned>(e.msg_kind), e.time_s);
    out += buf;
  }
  out += head.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

#if defined(_WIN32)

StatsServer::StatsServer(int) {}
StatsServer::~StatsServer() = default;
void StatsServer::Serve() {}
void StatsServer::HandleConnection(int) {}

#else  // POSIX

StatsServer::StatsServer(int port) {
  if (port < 0) return;
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 16) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  ok_ = true;
  thread_ = std::thread([this] { Serve(); });
}

StatsServer::~StatsServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) close(listen_fd_);
}

void StatsServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short timeout: the stop flag is polled between accepts.
    const int n = poll(&pfd, 1, 50);
    if (n <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    close(fd);
  }
}

void StatsServer::HandleConnection(int fd) {
  // Read the request line; one short-timeout poll round is plenty for a
  // loopback scrape, and a stalled client just gets dropped.
  char req[1024];
  size_t got = 0;
  while (got < sizeof(req) - 1) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (poll(&pfd, 1, 200) <= 0) break;
    const ssize_t n = recv(fd, req + got, sizeof(req) - 1 - got, 0);
    if (n <= 0) break;
    got += static_cast<size_t>(n);
    req[got] = '\0';
    if (std::strstr(req, "\r\n") != nullptr ||
        std::strchr(req, '\n') != nullptr) {
      break;
    }
  }
  req[got] = '\0';
  // Match the /metrics path exactly: the prefix must end at the path's end
  // (space before HTTP version, query string, or end of request line), so
  // e.g. "GET /metricsfoo" falls through to the JSON snapshot.
  const bool metrics =
      std::strncmp(req, "GET /metrics", 12) == 0 &&
      (req[12] == ' ' || req[12] == '?' || req[12] == '\0' ||
       req[12] == '\r' || req[12] == '\n');
  const std::string body =
      metrics ? obs::Metrics().PrometheusDump() : SnapshotJson();
  std::string response = "HTTP/1.0 200 OK\r\nContent-Type: ";
  response += metrics ? "text/plain; version=0.0.4" : "application/json";
  response += "\r\nContent-Length: " + std::to_string(body.size()) +
              "\r\nConnection: close\r\n\r\n";
  response += body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        send(fd, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

#endif  // _WIN32

}  // namespace net
}  // namespace proxdet
