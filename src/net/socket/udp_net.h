#ifndef PROXDET_NET_SOCKET_UDP_NET_H_
#define PROXDET_NET_SOCKET_UDP_NET_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "net/backend.h"
#include "net/socket/event_loop.h"
#include "net/socket/timer_wheel.h"

namespace proxdet {
namespace net {

struct UdpNetConfig {
  /// Event loops for group >= 0 endpoints (shard servers + mesh): one loop
  /// per ShardedFrontend shard; group g pins to loop g % shard_loops.
  int shard_loops = 1;
  /// Event loops shared round-robin by group -1 endpoints (clients).
  int client_loops = 1;
  /// When nonzero, group >= 0 endpoints bind base_port, base_port+1, ... in
  /// registration order (falling back to an ephemeral port if taken);
  /// clients always bind ephemeral ports.
  uint16_t base_port = 0;
  /// Loss/duplication injected at Send time from a seeded Rng — the socket
  /// analogue of SimNet's LinkModel, exercising retransmit/dedup over real
  /// sockets on top of whatever the kernel itself drops under burst.
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  uint64_t seed = 1;
  /// RunUntilIdle latches idle_timeout_hit() and returns after this long
  /// without any timer firing or datagram delivery (lost-alert insurance:
  /// a wedged run fails loudly instead of hanging the bench).
  double idle_timeout_s = 60.0;
  /// Selects the portable poll(2) readiness path even where epoll exists.
  bool force_poll = false;
  /// SO_RCVBUF/SO_SNDBUF request per socket (kernel may cap it).
  int socket_buffer_bytes = 1 << 20;
};

/// Real-socket NetBackend: every endpoint is a nonblocking UDP socket on
/// 127.0.0.1, owned by one of a small set of event-loop threads (epoll or
/// poll via EventLoop). The loop threads only move bytes: received
/// datagrams are queued to the driver thread, which dispatches handlers,
/// fires TimerWheel retransmit timers, and is the only thread allowed to
/// call Send/Schedule — so all protocol state above the backend stays
/// single-threaded, exactly like SimNet (see NetBackend).
///
/// Time is wall-clock (monotonic seconds since construction) and delivery
/// order is whatever the kernel does, so there is no schedule_hash; parity
/// with the SimNet oracle is asserted on protocol outcomes (alerts,
/// message counts) instead.
class UdpNet : public NetBackend {
 public:
  explicit UdpNet(const UdpNetConfig& config);
  ~UdpNet() override;

  /// True when this host can bind loopback UDP sockets and build an
  /// EventLoop (memoized probe); socket tests GTEST_SKIP when false.
  static bool Available();

  /// False after any socket/loop setup failure; the transport surfaces it
  /// as a failed run rather than hanging.
  bool ok() const { return ok_; }

  using NetBackend::AddEndpoint;
  int AddEndpoint(Handler handler, int group) override;
  void Send(int src, int dst, std::vector<uint8_t> frame) override;
  void Schedule(double delay_s, std::function<void()> fn) override;
  void RunUntilIdle() override;
  double now() const override;
  bool wall_clock() const override { return true; }

  uint64_t frames_offered() const override { return frames_offered_; }
  uint64_t frames_dropped() const override { return frames_dropped_; }
  uint64_t frames_duplicated() const override { return frames_duplicated_; }

  /// Installs the quiescence predicate consulted by RunUntilIdle once all
  /// queues have drained (the sharded frontend installs "every reliable
  /// endpoint has all sends acked"). Without one, RunUntilIdle waits for
  /// the timer wheel to empty — fine for raw tests, too slow for the
  /// protocol (acked sends leave lazily-cancelled timers armed).
  void SetIdleFn(std::function<bool()> fn) { idle_fn_ = std::move(fn); }

  /// Binds any unbound sockets and launches the loop threads; idempotent.
  /// Implied by the first RunUntilIdle/PumpFor. AddEndpoint afterwards is
  /// a programming error.
  void Start();

  /// Pumps the driver (timers + deliveries) for a wall-clock duration
  /// regardless of idleness — for tests that exercise raw datagrams
  /// without the reliability layer's pending-tracking.
  void PumpFor(double seconds);

  /// Latched when RunUntilIdle gave up after idle_timeout_s without
  /// progress while not idle (e.g. a send with no live receiver).
  bool idle_timeout_hit() const { return idle_timeout_hit_; }

  // Introspection for tests and the bench.
  uint16_t endpoint_port(int id) const;
  int endpoint_count() const { return static_cast<int>(endpoints_.size()); }
  int loop_count() const { return static_cast<int>(loops_.size()); }
  bool using_epoll() const;

  // Loop-thread datagram totals (actual sendto/recvfrom traffic, acks and
  // retransmits included — this is what MB/s means on a real wire).
  uint64_t datagrams_sent() const {
    return datagrams_sent_.load(std::memory_order_relaxed);
  }
  uint64_t socket_bytes_sent() const {
    return socket_bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t datagrams_received() const {
    return datagrams_received_.load(std::memory_order_relaxed);
  }
  uint64_t socket_bytes_received() const {
    return socket_bytes_received_.load(std::memory_order_relaxed);
  }

 private:
  struct Endpoint {
    Handler handler;
    int fd = -1;
    uint16_t port = 0;
    int loop = -1;
  };

  struct Outgoing {
    int src_fd = -1;
    uint16_t dst_port = 0;
    std::vector<uint8_t> bytes;
  };

  struct Loop {
    std::unique_ptr<EventLoop> event_loop;
    std::thread thread;
    std::mutex mutex;                 // Guards outbox.
    std::deque<Outgoing> outbox;
    std::deque<Outgoing> backlog;     // Loop-thread only: EAGAIN'd sends.
    std::unordered_set<int> write_armed;  // Loop-thread only.
    std::vector<int> fds;             // Loop-thread only after Start.
  };

  struct Incoming {
    int dst = -1;
    int src = -1;
    std::vector<uint8_t> bytes;
  };

  void LoopMain(Loop* loop);
  void FlushOutbox(Loop* loop);
  bool TrySend(Loop* loop, const Outgoing& out);
  void ReadSocket(Loop* loop, int fd);
  void EnqueueOutgoing(int src, int dst, std::vector<uint8_t> bytes);
  bool QueuesDrained();
  int PumpOnce();  // Fires due timers + dispatches inbound; returns count.

  UdpNetConfig config_;
  Rng rng_;
  bool ok_ = true;
  bool started_ = false;
  bool idle_timeout_hit_ = false;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Endpoint> endpoints_;
  std::unordered_map<uint16_t, int> port_to_endpoint_;
  std::unordered_map<int, int> fd_to_endpoint_;
  std::vector<std::unique_ptr<Loop>> loops_;
  int next_client_loop_ = 0;
  int next_shard_port_offset_ = 0;
  std::function<bool()> idle_fn_;
  TimerWheel wheel_;

  std::atomic<bool> stop_{false};
  // Sends accepted by Send() but not yet handed to the kernel by a loop
  // thread; part of the quiescence condition.
  std::atomic<uint64_t> unsent_{0};
  std::mutex inbound_mutex_;
  std::condition_variable inbound_cv_;
  std::deque<Incoming> inbound_;

  // Driver-side injection counters (SimNet-compatible semantics).
  uint64_t frames_offered_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_duplicated_ = 0;

  std::atomic<uint64_t> datagrams_sent_{0};
  std::atomic<uint64_t> socket_bytes_sent_{0};
  std::atomic<uint64_t> datagrams_received_{0};
  std::atomic<uint64_t> socket_bytes_received_{0};
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_SOCKET_UDP_NET_H_
