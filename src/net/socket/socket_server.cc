#include "net/socket/socket_server.h"

#include <algorithm>

namespace proxdet {
namespace net {

namespace {

UdpNetConfig MakeUdpConfig(const NetConfig& config, int shard_count) {
  UdpNetConfig c;
  c.shard_loops = std::max(1, shard_count);
  c.client_loops = std::max(1, config.udp_client_loops);
  c.base_port = config.udp_port;
  c.drop_rate = config.udp_drop_rate;
  c.dup_rate = config.udp_dup_rate;
  c.seed = config.seed;
  c.idle_timeout_s = config.udp_idle_timeout_s;
  c.force_poll = config.udp_force_poll;
  return c;
}

NetConfig WithUdpTransport(NetConfig config) {
  config.transport = TransportKind::kUdp;
  return config;
}

}  // namespace

SocketServer::SocketServer(const NetConfig& config, int shard_count)
    : net_(MakeUdpConfig(config, shard_count)) {}

UdpTransportLink::UdpTransportLink(const World& world, NetConfig config)
    : TransportLink(world, WithUdpTransport(std::move(config))) {}

}  // namespace net
}  // namespace proxdet
