#ifndef PROXDET_NET_SOCKET_TIMER_WHEEL_H_
#define PROXDET_NET_SOCKET_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace proxdet {
namespace net {

/// Hashed timer wheel for the wall-clock retransmit timers of the UDP
/// backend: O(1) insert, amortized O(1) per fired timer, no heap
/// discipline. Deadlines are quantized to `tick_s` (default 1 ms — far
/// below the 50 ms base RTO, so quantization never reorders retries
/// meaningfully) and hashed into `slots` buckets; an entry whose deadline
/// lies beyond one wheel revolution simply stays in its bucket until the
/// lap that reaches it. Single-threaded: owned and driven by the UdpNet
/// driver thread.
class TimerWheel {
 public:
  explicit TimerWheel(double tick_s = 1e-3, size_t slots = 256)
      : tick_s_(tick_s), slots_(slots) {}

  /// Arms `fn` to fire once `now_s + delay_s` is reached.
  void Schedule(double now_s, double delay_s, std::function<void()> fn);

  /// Fires every armed entry whose deadline is <= now_s, in bucket order
  /// (ties within a bucket fire in arming order). Fired callbacks may
  /// re-arm timers; those are collected for later laps, never fired in the
  /// same call even if already due. Returns the number fired.
  int FireDue(double now_s);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Entry {
    int64_t deadline_tick = 0;
    std::function<void()> fn;
  };

  int64_t TickOf(double t_s) const {
    return static_cast<int64_t>(t_s / tick_s_) + 1;  // Round up: never early.
  }

  double tick_s_;
  size_t slots_;
  std::vector<std::vector<Entry>> buckets_ =
      std::vector<std::vector<Entry>>(slots_);
  int64_t cursor_tick_ = 0;  // All entries with deadline < cursor fired.
  size_t size_ = 0;
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_SOCKET_TIMER_WHEEL_H_
