#ifndef PROXDET_NET_SOCKET_SOCKET_SERVER_H_
#define PROXDET_NET_SOCKET_SOCKET_SERVER_H_

#include "net/socket/udp_net.h"
#include "net/transport.h"

namespace proxdet {
namespace net {

/// The real-socket serving substrate of one transported run: a UdpNet with
/// one event loop per ShardedFrontend shard — shard s's client-facing and
/// mesh sockets are pinned to loop s (AddEndpoint group s), so each
/// partition's wire I/O runs on its own thread, with the mesh carried over
/// loopback sockets between them — plus a small shared pool of loops for
/// the client sockets. Protocol handlers still run on the driver thread
/// only (the NetBackend contract), which is why the whole PR 5 frontend
/// works over real sockets without a single new lock.
class SocketServer {
 public:
  SocketServer(const NetConfig& config, int shard_count);

  NetBackend* backend() { return &net_; }
  UdpNet& net() { return net_; }
  const UdpNet& net() const { return net_; }

  bool ok() const { return net_.ok(); }
  bool idle_timeout_hit() const { return net_.idle_timeout_hit(); }

 private:
  UdpNet net_;
};

/// TransportLink pinned to the UDP-loopback backend: same frontend, same
/// frames, same ReliabilityPolicy — only the substrate changes, which is
/// the whole point (SimNet remains the bit-exact oracle for this link's
/// protocol outcomes).
class UdpTransportLink : public TransportLink {
 public:
  UdpTransportLink(const World& world, NetConfig config);
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_SOCKET_SOCKET_SERVER_H_
