#ifndef PROXDET_NET_SOCKET_EVENT_LOOP_H_
#define PROXDET_NET_SOCKET_EVENT_LOOP_H_

#include <cstdint>
#include <vector>

namespace proxdet {
namespace net {

/// Readiness multiplexer for one socket-loop thread: epoll on Linux, with a
/// portable poll(2) implementation compiled in everywhere and selectable at
/// runtime (PROXDET_FORCE_POLL=1, or UdpNetConfig::force_poll) so the
/// fallback path is actually exercised by the test suite, not just kept
/// compiling. Not thread-safe except Wake(), which any thread may call to
/// interrupt a blocked Poll() (self-pipe).
class EventLoop {
 public:
  struct Ready {
    int fd = -1;
    bool readable = false;
    bool writable = false;
  };

  explicit EventLoop(bool force_poll = false);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when the multiplexer could not be constructed (no pipes / no fd
  /// budget); callers must treat the loop as unusable.
  bool ok() const { return ok_; }
  bool using_epoll() const { return epoll_fd_ >= 0; }

  /// Registers `fd` for read interest. Returns false on registration
  /// failure. The fd must stay valid until Remove or destruction.
  bool Add(int fd);
  void Remove(int fd);

  /// Toggles write interest (kept off except while a send backlog exists).
  void SetWriteInterest(int fd, bool on);

  /// Blocks up to timeout_ms (0 = poll and return, -1 = indefinitely) and
  /// appends ready fds to *out (wake-pipe readiness is consumed
  /// internally, never reported). Returns the number of entries appended,
  /// or -1 on multiplexer failure.
  int Poll(int timeout_ms, std::vector<Ready>* out);

  /// Thread-safe: interrupts a concurrent Poll().
  void Wake();

 private:
  struct Interest {
    int fd = -1;
    bool write = false;
  };

  void DrainWakePipe();
  int PollWithEpoll(int timeout_ms, std::vector<Ready>* out);
  int PollWithPoll(int timeout_ms, std::vector<Ready>* out);

  bool ok_ = false;
  int epoll_fd_ = -1;      // -1 => poll(2) backend.
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::vector<Interest> interests_;  // poll(2) backend's registry; also the
                                     // source of truth for write interest.
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_SOCKET_EVENT_LOOP_H_
