#ifndef PROXDET_NET_WIRE_H_
#define PROXDET_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/circle.h"
#include "geom/vec2.h"
#include "graph/interest_graph.h"
#include "region/region.h"

namespace proxdet {
namespace net {

/// Binary wire protocol for the client<->server detection traffic: the five
/// message kinds CommStats counts, plus the transport-level ack. All
/// encodings are fixed little-endian; lengths and small integers are LEB128
/// varints; point lists (recent windows, stripe paths, polygon rings) are
/// varint-packed with an XOR-delta scheme that is *exactly* invertible —
/// every double round-trips bit-for-bit, so a decoded safe region compares
/// equal (operator==, structural/bitwise) to the one the server built.
///
/// Frame layout (DecodeFrame rejects anything malformed):
///   u16  magic 0x5044 ("PD", little-endian)
///   u8   version (kWireVersion, or kWireVersionTraced)
///   u8   kind (MsgKind)
///   var  sequence number (per src->dst stream; acks echo the acked seq)
///   var  payload byte length
///   ...  payload
///   ...  trace extension (kWireVersionTraced frames only; see TraceCtx)
///   u32  FNV-1a checksum of everything above
constexpr uint16_t kWireMagic = 0x5044;
constexpr uint8_t kWireVersion = 1;

/// Version-2 frames append a trace extension between the payload and the
/// checksum: varint entry count (>= 1; an untraced frame stays version 1),
/// then per entry (varint item_index, zigzag origin_epoch, varint event_id,
/// u8 hops) with strictly increasing item indices. Decoders accept both
/// versions — old-version frames simply carry no TraceCtx — and the
/// checksum still covers every byte, so single-byte corruption of a traced
/// frame is rejected exactly like an untraced one.
constexpr uint8_t kWireVersionTraced = 2;

/// Hard cap on decoded point-list lengths: rejects length-bomb frames
/// before any allocation. Far above any real payload (windows are ~10
/// points, stripes tens).
constexpr uint64_t kMaxWirePoints = 1u << 20;

/// Hard cap on decoded trace-extension entry counts, mirroring
/// kMaxWirePoints: rejects length-bomb frames before any allocation. A
/// trace entry covers one payload item, so real counts track payload sizes.
constexpr uint64_t kMaxTraceEntries = 1u << 20;

/// Encoded size of a LEB128 varint — the batching math in the sharded
/// frontend and the frame-overhead accounting below share this with the
/// codec, so the two can never drift.
constexpr size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Fixed parts of the frame header/trailer: magic(2) + version(1) +
/// kind(1), and the FNV-1a checksum.
constexpr size_t kFrameFixedHeaderBytes = 4;
constexpr size_t kFrameChecksumBytes = 4;

/// Exact per-frame overhead (everything except the payload bytes) for a
/// frame carrying sequence number `seq` and `payload_len` payload bytes.
constexpr size_t FrameOverheadBytes(uint64_t seq, size_t payload_len) {
  return kFrameFixedHeaderBytes + VarintSize(seq) + VarintSize(payload_len) +
         kFrameChecksumBytes;
}

/// Smallest legal frame: single-byte seq and length varints, no payload.
/// This is the amortizable cost the batched downlink exists to save.
constexpr size_t kMinFrameBytes = FrameOverheadBytes(0, 0);
static_assert(kMinFrameBytes == 10,
              "frame overhead drifted from the documented layout");
static_assert(VarintSize(0x7f) == 1 && VarintSize(0x80) == 2 &&
                  VarintSize(~0ULL) == 10,
              "LEB128 size accounting is wrong");

enum class MsgKind : uint8_t {
  kLocationReport = 1,  // client -> server
  kProbe = 2,           // server -> client
  kAlert = 3,           // server -> client
  kRegionInstall = 4,   // server -> client
  kMatchInstall = 5,    // server -> client
  kAck = 6,             // transport-level acknowledgement, either direction
  kBatch = 7,           // envelope: several same-epoch messages, one frame
  kShardForward = 8,    // shard -> shard: digest or relayed downlink notice
};

/// Highest MsgKind DecodeFrame accepts; new kinds append, never renumber.
constexpr uint8_t kMaxMsgKind = static_cast<uint8_t>(MsgKind::kShardForward);

/// Little-endian byte sink with the protocol's primitive encoders.
class WireWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// LEB128: 7 value bits per byte, high bit = continuation.
  void PutVarint(uint64_t v);
  /// Zigzag-mapped varint for signed values (epochs, built_epoch).
  void PutZigzag(int64_t v);
  /// IEEE-754 bit pattern, fixed 8 bytes little-endian. Exact.
  void PutDouble(double v);
  void PutVec2(const Vec2& v);
  /// Varint-packed point list: varint count, then per point the XOR of the
  /// coordinate's bit pattern with the previous point's, as a varint.
  /// Bijective (hence exact); nearby/repeated coordinates shrink to a few
  /// bytes, a stationary window costs 1 byte per coordinate.
  void PutPoints(const std::vector<Vec2>& points);
  /// Quantized-delta point list: varint count, then per point the zigzag
  /// delta of each coordinate's 1/kWireQuantScale-grid index against the
  /// previous point's. Roughly half the bytes of PutPoints on real paths —
  /// but only exact for on-grid coordinates, so callers must check
  /// PointsQuantizable() first (the region-install codec falls back to the
  /// exact XOR-delta coding otherwise).
  void PutPointsQuantized(const std::vector<Vec2>& points);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a byte span. Any over-read, overlong varint
/// or oversized point count latches ok() to false and yields zeros; codecs
/// check ok() once at the end instead of after every field.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  uint64_t GetVarint();
  int64_t GetZigzag();
  double GetDouble();
  Vec2 GetVec2();
  bool GetPoints(std::vector<Vec2>* out);
  bool GetPointsQuantized(std::vector<Vec2>* out);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a 32-bit hash; the frame checksum and the delivery-schedule hash.
uint32_t Fnv1a32(const uint8_t* data, size_t size);

// ---------------------------------------------------------------------------
// Quantized coordinate grid.

/// Grid pitch of the quantized-delta point codec: 1/256 m (~4 mm). A power
/// of two, so every on-grid coordinate is exactly representable as a double
/// and the quantized codec round-trips bit-for-bit. The stripe builder
/// snaps its path anchors to this grid at build time (see
/// StripeBuildConfig::quantize_grid), which is what makes stripe installs
/// compressible without any loss the server could not prove away.
constexpr double kWireQuantScale = 256.0;

/// True when every coordinate sits exactly on the 1/kWireQuantScale grid
/// (and its grid index fits the codec's integer range), i.e. when
/// PutPointsQuantized followed by GetPointsQuantized reproduces the input
/// bit-for-bit.
bool PointsQuantizable(const std::vector<Vec2>& points);

// ---------------------------------------------------------------------------
// Message bodies (one struct per CommStats message kind).

/// Client -> server location upload. `window` is the recent epoch-spaced
/// location window the server-side predictor consumes; empty for
/// position-only reports (Naive).
struct LocationReportMsg {
  UserId user = -1;
  int32_t epoch = 0;
  Vec2 position;
  std::vector<Vec2> window;

  friend bool operator==(const LocationReportMsg& a,
                         const LocationReportMsg& b) {
    return a.user == b.user && a.epoch == b.epoch &&
           a.position == b.position && a.window == b.window;
  }
};

/// Server -> client exact-location request (cost model case 2).
struct ProbeMsg {
  UserId user = -1;
  int32_t epoch = 0;

  friend bool operator==(const ProbeMsg& a, const ProbeMsg& b) {
    return a.user == b.user && a.epoch == b.epoch;
  }
};

/// Server -> client alert notification for pair (u, w), u < w, delivered to
/// endpoint `user`.
struct AlertMsg {
  UserId user = -1;
  UserId u = -1;
  UserId w = -1;
  int32_t epoch = 0;

  friend bool operator==(const AlertMsg& a, const AlertMsg& b) {
    return a.user == b.user && a.u == b.u && a.w == b.w && a.epoch == b.epoch;
  }
};

/// Server -> client safe-region install: any shape in the taxonomy
/// (circle / moving circle / convex polygon / stripe).
struct RegionInstallMsg {
  UserId user = -1;
  int32_t epoch = 0;
  SafeRegionShape region;

  friend bool operator==(const RegionInstallMsg& a,
                         const RegionInstallMsg& b) {
    return a.user == b.user && a.epoch == b.epoch && a.region == b.region;
  }
};

/// Server -> client match-region lifecycle notice for pair (u, w).
/// `region` carries the Def. 3 circle for create/update; delete sends a
/// default circle.
struct MatchInstallMsg {
  UserId user = -1;
  int32_t epoch = 0;
  uint8_t op = 0;  // MatchOp
  UserId u = -1;
  UserId w = -1;
  Circle region;

  friend bool operator==(const MatchInstallMsg& a, const MatchInstallMsg& b) {
    return a.user == b.user && a.epoch == b.epoch && a.op == b.op &&
           a.u == b.u && a.w == b.w && a.region == b.region;
  }
};

/// Shard -> shard envelope: either a forwarded location digest (inner kind
/// kLocationReport, window-less) keeping a pair's owner shard current about
/// a remote endpoint, or a relayed downlink notice (kAlert / kMatchInstall)
/// the pair's owner decided but the target's home shard must deliver.
struct ShardForwardMsg {
  uint8_t inner_kind = 0;  // MsgKind of `inner`.
  std::vector<uint8_t> inner;

  friend bool operator==(const ShardForwardMsg& a, const ShardForwardMsg& b) {
    return a.inner_kind == b.inner_kind && a.inner == b.inner;
  }
};

// Payload codecs. Every Decode* rejects (returns false) truncated input,
// trailing garbage, unknown tags and oversized point counts; on success the
// decoded message equals the encoded one exactly.
std::vector<uint8_t> Encode(const LocationReportMsg& msg);
std::vector<uint8_t> Encode(const ProbeMsg& msg);
std::vector<uint8_t> Encode(const AlertMsg& msg);
std::vector<uint8_t> Encode(const RegionInstallMsg& msg);
std::vector<uint8_t> Encode(const MatchInstallMsg& msg);
std::vector<uint8_t> Encode(const ShardForwardMsg& msg);
bool Decode(const std::vector<uint8_t>& payload, LocationReportMsg* out);
bool Decode(const std::vector<uint8_t>& payload, ProbeMsg* out);
bool Decode(const std::vector<uint8_t>& payload, AlertMsg* out);
bool Decode(const std::vector<uint8_t>& payload, RegionInstallMsg* out);
bool Decode(const std::vector<uint8_t>& payload, MatchInstallMsg* out);
bool Decode(const std::vector<uint8_t>& payload, ShardForwardMsg* out);

/// Region install with the quantized-delta polyline coding allowed for
/// stripe paths and polygon rings whose vertices sit on the wire grid.
/// Falls back to the exact coding otherwise, so the result always decodes
/// equal to `msg` — callers wanting the guard anyway (the serving plane
/// does, per validate-builds semantics) decode and compare before shipping.
std::vector<uint8_t> EncodeCompressed(const RegionInstallMsg& msg);

/// Shape sub-codec (tag byte + per-type body), shared by RegionInstallMsg
/// and usable on its own. With `allow_quantized`, polygon/stripe point
/// lists on the wire grid use the quantized-delta tags.
void PutShape(WireWriter* w, const SafeRegionShape& shape,
              bool allow_quantized = false);
bool GetShape(WireReader* r, SafeRegionShape* out);

// ---------------------------------------------------------------------------
// Batched downlink envelope.

/// One message inside a kBatch frame.
struct BatchItem {
  MsgKind kind = MsgKind::kAck;
  std::vector<uint8_t> payload;

  friend bool operator==(const BatchItem& a, const BatchItem& b) {
    return a.kind == b.kind && a.payload == b.payload;
  }
};

/// Coalesces several same-epoch messages into one payload (varint count,
/// then per item: kind byte + varint length + bytes) — one frame, one
/// checksum, one sequence number, one ack for the whole epoch's downlink
/// to a client. Only downlink notice kinds and shard forwards may ride in a
/// batch; DecodeBatch rejects empty batches, nested batches, acks and
/// location reports.
std::vector<uint8_t> EncodeBatch(const std::vector<BatchItem>& items);
bool DecodeBatch(const std::vector<uint8_t>& payload,
                 std::vector<BatchItem>* out);

// ---------------------------------------------------------------------------
// Trace context.

/// Causal trace context riding a wire frame: which epoch originated the
/// message, a 64-bit event id linking detect to deliver across shards and
/// retransmits, and how many reliable-link hops the message has crossed.
struct TraceCtx {
  int32_t origin_epoch = 0;
  uint64_t event_id = 0;
  uint8_t hops = 0;

  friend bool operator==(const TraceCtx& a, const TraceCtx& b) {
    return a.origin_epoch == b.origin_epoch && a.event_id == b.event_id &&
           a.hops == b.hops;
  }
};

/// One trace-extension entry: `index` names the batch item the context
/// belongs to (0 for solo frames); indices are strictly increasing within a
/// frame, and items without an entry are simply untraced.
struct TraceEntry {
  uint32_t index = 0;
  TraceCtx ctx;

  friend bool operator==(const TraceEntry& a, const TraceEntry& b) {
    return a.index == b.index && a.ctx == b.ctx;
  }
};

// ---------------------------------------------------------------------------
// Framing.

struct Frame {
  uint8_t version = 0;
  MsgKind kind = MsgKind::kAck;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
  /// Trace extension entries (empty for version-1 frames), sorted by index.
  std::vector<TraceEntry> trace;

  /// Context for batch item `index` (use 0 for solo frames), or nullptr
  /// when the frame carries none for that item.
  const TraceCtx* TraceFor(uint32_t index) const {
    for (const TraceEntry& e : trace) {
      if (e.index == index) return &e.ctx;
      if (e.index > index) break;
    }
    return nullptr;
  }
};

/// Wraps a payload in the versioned, checksummed header described above.
/// Always emits a version-1 frame; byte-identical to pre-trace builds.
std::vector<uint8_t> EncodeFrame(MsgKind kind, uint64_t seq,
                                 const std::vector<uint8_t>& payload);

/// Like EncodeFrame, but appends the trace extension and stamps the frame
/// kWireVersionTraced. `trace` must be sorted by strictly increasing index;
/// an empty list degenerates to the plain version-1 encoding, so untraced
/// traffic never changes on the wire.
std::vector<uint8_t> EncodeFrameTraced(MsgKind kind, uint64_t seq,
                                       const std::vector<uint8_t>& payload,
                                       const std::vector<TraceEntry>& trace);

/// Parses one frame (either version). Returns false — never throws, never
/// reads past `size` — on truncation, bad magic/version/kind, length
/// mismatch, malformed trace extension or checksum failure.
bool DecodeFrame(const uint8_t* data, size_t size, Frame* out);

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_WIRE_H_
