#ifndef PROXDET_NET_BACKEND_H_
#define PROXDET_NET_BACKEND_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace proxdet {
namespace net {

/// Transport substrate behind the frame interface. Two implementations:
/// the deterministic event-driven SimNet (virtual time, seeded impairment,
/// the correctness oracle) and the real-socket UdpNet (nonblocking UDP
/// sockets on epoll event loops, wall-clock retransmit timers). Everything
/// above this line — framing, checksums, the ReliabilityPolicy retry/dedup
/// state machine, ClientRuntime / ProtocolServer / ShardedFrontend — is
/// shared verbatim, which is what makes the SimNet run a bit-exact oracle
/// for the socket run.
///
/// Contract, common to both backends:
///  - Endpoints are dense small integers in AddEndpoint order.
///  - Handlers and scheduled timers run on the *driver* thread only — the
///    thread that calls RunUntilIdle(). A real backend may move bytes on
///    its own event-loop threads, but delivery into protocol code is always
///    serialized onto the driver, so protocol state needs no locks (the
///    same single-threaded discipline SimNet has always had).
///  - Send/Schedule may be called from handlers (same thread, re-entrant).
///  - RunUntilIdle() returns once the system quiesced: for SimNet when the
///    event queue is empty; for a wall-clock backend when no datagrams are
///    queued anywhere and the installed idle predicate (e.g. "every
///    reliable endpoint has all sends acked") holds.
class NetBackend {
 public:
  using Handler = std::function<void(int src, const std::vector<uint8_t>&)>;

  virtual ~NetBackend() = default;

  /// Registers an endpoint; returns its id (dense, starting at 0).
  /// `group` is a placement hint for backends with several event loops
  /// (group >= 0 pins the endpoint's socket to that shard's loop; -1 lets
  /// the backend spread it over the client loops). SimNet ignores it.
  virtual int AddEndpoint(Handler handler, int group) = 0;
  int AddEndpoint(Handler handler) { return AddEndpoint(std::move(handler), -1); }

  /// Transmits `frame` from src to dst (possibly impaired: dropped,
  /// duplicated, delayed — by the seeded model in SimNet, by injection and
  /// the kernel in UdpNet). Safe to call from inside a handler.
  virtual void Send(int src, int dst, std::vector<uint8_t> frame) = 0;

  /// Schedules `fn` to run on the driver thread at now() + delay_s
  /// (retransmit timers). Virtual seconds for SimNet, monotonic wall-clock
  /// seconds for UdpNet.
  virtual void Schedule(double delay_s, std::function<void()> fn) = 0;

  /// Like Schedule, but returns a token CancelTimer accepts. A cancelled
  /// timer never runs — and on a virtual-time backend never advances the
  /// clock, so an acked exchange leaves no trace in virtual time (the
  /// property that keeps detect->deliver latencies shard-count invariant).
  /// Backends without cancellation return 0 (CancelTimer ignores it) and
  /// rely on the callback's own pending check, exactly the old lazy
  /// discipline.
  virtual uint64_t ScheduleCancelable(double delay_s,
                                      std::function<void()> fn) {
    Schedule(delay_s, std::move(fn));
    return 0;
  }
  virtual void CancelTimer(uint64_t /*token*/) {}

  /// Drives the network until quiescent (see class comment).
  virtual void RunUntilIdle() = 0;

  /// Current time in the backend's clock domain: virtual seconds (SimNet)
  /// or monotonic seconds since construction (UdpNet).
  virtual double now() const = 0;

  /// True when time above is real time — callers segregate latency
  /// observations into wall-clock metrics exactly like CommStats does with
  /// server_seconds.
  virtual bool wall_clock() const { return false; }

  // Wire counters (every copy that physically entered a link / the kernel).
  virtual uint64_t frames_offered() const = 0;
  virtual uint64_t frames_dropped() const = 0;
  virtual uint64_t frames_duplicated() const = 0;

  /// Determinism fingerprint of the delivery schedule; 0 for backends
  /// whose schedule is not a pure function of the seed (real sockets).
  virtual uint64_t schedule_hash() const { return 0; }
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_BACKEND_H_
