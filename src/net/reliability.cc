#include "net/reliability.h"

#include <algorithm>
#include <iterator>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {
namespace net {

namespace {

/// Reliability totals. Deterministic on the SimNet path (single-threaded,
/// pure function of seed + call sequence); on the UDP path the endpoints
/// still only run on the driver thread, so the handles need no extra
/// synchronization beyond the counters' own atomics.
struct ReliabilityMetrics {
  obs::Counter& retransmits;
  obs::Counter& dedup_discards;
  obs::Counter& corrupt_frames;

  static const ReliabilityMetrics& Get() {
    static const ReliabilityMetrics m{
        obs::Metrics().GetCounter("net.retransmits"),
        obs::Metrics().GetCounter("net.dedup_discards"),
        obs::Metrics().GetCounter("net.corrupt_frames"),
    };
    return m;
  }
};

/// Round-trip latency of acked sends over a wall-clock backend: first
/// transmission to first ack, retransmission delays included (that is the
/// latency the protocol actually experienced).
obs::QuantileMetric& RttSketch() {
  static obs::QuantileMetric& q =
      obs::Metrics().GetQuantile("net.socket.rtt_s", obs::Kind::kWallClock);
  return q;
}

/// Per-message-kind wire accounting: one frames/bytes counter pair per
/// MsgKind, counted once per logical transmission (first attempts and
/// retransmissions alike, matching bytes_sent()).
struct KindMetrics {
  obs::Counter& frames;
  obs::Counter& bytes;
};

const KindMetrics& MetricsForKind(MsgKind kind) {
  static const KindMetrics by_kind[] = {
      {obs::Metrics().GetCounter("net.frames.location_report"),
       obs::Metrics().GetCounter("net.bytes.location_report")},
      {obs::Metrics().GetCounter("net.frames.probe"),
       obs::Metrics().GetCounter("net.bytes.probe")},
      {obs::Metrics().GetCounter("net.frames.alert"),
       obs::Metrics().GetCounter("net.bytes.alert")},
      {obs::Metrics().GetCounter("net.frames.region_install"),
       obs::Metrics().GetCounter("net.bytes.region_install")},
      {obs::Metrics().GetCounter("net.frames.match_install"),
       obs::Metrics().GetCounter("net.bytes.match_install")},
      {obs::Metrics().GetCounter("net.frames.ack"),
       obs::Metrics().GetCounter("net.bytes.ack")},
      {obs::Metrics().GetCounter("net.frames.batch"),
       obs::Metrics().GetCounter("net.bytes.batch")},
      {obs::Metrics().GetCounter("net.frames.shard_forward"),
       obs::Metrics().GetCounter("net.bytes.shard_forward")},
  };
  const size_t idx =
      std::min<size_t>(static_cast<size_t>(kind) - 1, std::size(by_kind) - 1);
  return by_kind[idx];
}

}  // namespace

uint64_t ReliabilityPolicy::Enqueue(int dst, MsgKind kind,
                                    const std::vector<uint8_t>& payload,
                                    const std::vector<TraceEntry>& trace) {
  const uint64_t seq = ++next_seq_[dst];
  pending_.emplace(std::make_pair(dst, seq),
                   EncodeFrameTraced(kind, seq, payload, trace));
  return seq;
}

ReliabilityPolicy::TransmitPlan ReliabilityPolicy::PlanTransmit(int dst,
                                                                uint64_t seq,
                                                                int attempt) {
  TransmitPlan plan;
  const auto it = pending_.find({dst, seq});
  if (it == pending_.end()) {
    plan.verdict = TransmitPlan::Verdict::kSkip;  // Acked meanwhile.
    return plan;
  }
  if (attempt > max_retries_) {
    delivery_failed_ = true;
    pending_.erase(it);
    plan.verdict = TransmitPlan::Verdict::kGiveUp;
    return plan;
  }
  if (attempt > 0) retransmits_ += 1;
  plan.verdict = TransmitPlan::Verdict::kSend;
  plan.frame = &it->second;
  plan.is_retransmit = attempt > 0;
  plan.next_delay_s = RetryDelay(attempt);
  return plan;
}

ReliabilityPolicy::RxResult ReliabilityPolicy::OnDatagram(int src,
                                                          const uint8_t* data,
                                                          size_t size) {
  RxResult result;
  if (!DecodeFrame(data, size, &result.frame)) {
    corrupt_frames_ += 1;
    result.verdict = RxResult::Verdict::kCorrupt;
    return result;
  }
  if (result.frame.kind == MsgKind::kAck) {
    result.acked_pending = pending_.erase({src, result.frame.seq}) > 0;
    result.verdict = RxResult::Verdict::kAck;
    return result;
  }
  if (!MarkSeen(src, result.frame.seq)) {
    dedup_discards_ += 1;
    result.verdict = RxResult::Verdict::kDuplicate;
    return result;
  }
  result.verdict = RxResult::Verdict::kDeliver;
  return result;
}

bool ReliabilityPolicy::MarkSeen(int src, uint64_t seq) {
  SeenWindow& window = seen_[src];
  if (seq <= window.contiguous) return false;
  if (!window.ahead.insert(seq).second) return false;
  // Advance the contiguous frontier; keeps `ahead` tiny (out-of-order
  // arrivals only happen within one jitter window).
  while (!window.ahead.empty() &&
         *window.ahead.begin() == window.contiguous + 1) {
    window.ahead.erase(window.ahead.begin());
    window.contiguous += 1;
  }
  return true;
}

// ---------------------------------------------------------------------------

ReliableEndpoint::ReliableEndpoint(NetBackend* net, double rto_s,
                                   int max_retries, FrameHandler handler,
                                   int group)
    : net_(net), policy_(rto_s, max_retries), handler_(std::move(handler)) {
  id_ = net_->AddEndpoint(
      [this](int src, const std::vector<uint8_t>& bytes) { OnWire(src, bytes); },
      group);
}

void ReliableEndpoint::CountTx(const std::vector<uint8_t>& frame) {
  bytes_sent_ += frame.size();
  frames_sent_ += 1;
  for (obs::Counter* counter : wire_bytes_counters_) counter->Inc(frame.size());
  // Frame layout puts the MsgKind at byte 3 (after magic + version).
  const KindMetrics& km = MetricsForKind(static_cast<MsgKind>(frame[3]));
  km.frames.Inc();
  km.bytes.Inc(frame.size());
}

void ReliableEndpoint::RecordFlight(obs::FlightEventKind kind, int peer,
                                    uint64_t seq, uint8_t msg_kind) {
  obs::FlightRecorder& recorder = obs::Flight();
  if (!recorder.enabled()) return;
  obs::FlightEvent event;
  event.kind = kind;
  event.shard = flight_shard_;
  event.src = id_;
  event.dst = peer;
  event.seq = seq;
  event.msg_kind = msg_kind;
  event.time_s = net_->now();
  recorder.Record(event);
}

void ReliableEndpoint::Send(int dst, MsgKind kind,
                            const std::vector<uint8_t>& payload) {
  Send(dst, kind, payload, {});
}

void ReliableEndpoint::Send(int dst, MsgKind kind,
                            const std::vector<uint8_t>& payload,
                            const std::vector<TraceEntry>& trace) {
  uint64_t seq;
  {
    obs::TraceScope span("wire_encode", "net");
    seq = policy_.Enqueue(dst, kind, payload, trace);
  }
  Transmit(dst, seq, 0);
}

void ReliableEndpoint::Transmit(int dst, uint64_t seq, int attempt) {
  const ReliabilityPolicy::TransmitPlan plan =
      policy_.PlanTransmit(dst, seq, attempt);
  using Verdict = ReliabilityPolicy::TransmitPlan::Verdict;
  if (plan.verdict == Verdict::kSkip) return;
  if (plan.verdict == Verdict::kGiveUp) {
    tx_time_.erase({dst, seq});
    retry_timer_.erase({dst, seq});
    RecordFlight(obs::FlightEventKind::kGiveUp, dst, seq, 0);
    // The give-up latches delivery_failed_ and the run will FATAL; leave a
    // diagnosable artifact behind first (no-op unless a dump path is set).
    obs::Flight().DumpOnFailure("reliability give-up: dst " +
                                std::to_string(dst) + " seq " +
                                std::to_string(seq));
    return;
  }
  CountTx(*plan.frame);
  RecordFlight(plan.is_retransmit ? obs::FlightEventKind::kRetransmit
                                  : obs::FlightEventKind::kSend,
               dst, seq, (*plan.frame)[3]);
  if (plan.is_retransmit) {
    ReliabilityMetrics::Get().retransmits.Inc();
    obs::TraceScope span("retransmit", "net");
    net_->Send(id_, dst, *plan.frame);
  } else {
    if (net_->wall_clock()) tx_time_[{dst, seq}] = net_->now();
    net_->Send(id_, dst, *plan.frame);
  }
  // The retry timer is cancelled eagerly when the ack lands (see OnWire);
  // on backends without cancellation the fired timer's PlanTransmit finds
  // nothing pending and the call is a no-op.
  retry_timer_[{dst, seq}] =
      net_->ScheduleCancelable(plan.next_delay_s, [this, dst, seq, attempt] {
        Transmit(dst, seq, attempt + 1);
      });
}

void ReliableEndpoint::OnWire(int src, const std::vector<uint8_t>& bytes) {
  ReliabilityPolicy::RxResult rx;
  {
    obs::TraceScope span("wire_decode", "net");
    rx = policy_.OnDatagram(src, bytes.data(), bytes.size());
  }
  using Verdict = ReliabilityPolicy::RxResult::Verdict;
  switch (rx.verdict) {
    case Verdict::kCorrupt:
      // SimNet never corrupts, but a real backend can (and the socket tests
      // inject garbage); the sender's retry makes the loss equivalent to a
      // dropped frame.
      ReliabilityMetrics::Get().corrupt_frames.Inc();
      RecordFlight(obs::FlightEventKind::kCorrupt, src, 0, 0);
      return;
    case Verdict::kAck:
      if (rx.acked_pending) {
        const auto timer = retry_timer_.find({src, rx.frame.seq});
        if (timer != retry_timer_.end()) {
          net_->CancelTimer(timer->second);
          retry_timer_.erase(timer);
        }
        RecordFlight(obs::FlightEventKind::kAck, src, rx.frame.seq, 0);
        if (net_->wall_clock()) {
          const auto it = tx_time_.find({src, rx.frame.seq});
          if (it != tx_time_.end()) {
            RttSketch().Record(net_->now() - it->second);
            tx_time_.erase(it);
          }
        }
      }
      return;
    case Verdict::kDuplicate:
    case Verdict::kDeliver: {
      // Ack every copy, even duplicates: the sender may be retrying because
      // the first ack was lost.
      const std::vector<uint8_t> ack =
          EncodeFrame(MsgKind::kAck, rx.frame.seq, {});
      CountTx(ack);
      net_->Send(id_, src, ack);
      if (rx.verdict == Verdict::kDuplicate) {
        ReliabilityMetrics::Get().dedup_discards.Inc();
        RecordFlight(obs::FlightEventKind::kDedup, src, rx.frame.seq,
                     static_cast<uint8_t>(rx.frame.kind));
        return;
      }
      RecordFlight(obs::FlightEventKind::kDeliver, src, rx.frame.seq,
                   static_cast<uint8_t>(rx.frame.kind));
      handler_(src, std::move(rx.frame));
      return;
    }
  }
}

}  // namespace net
}  // namespace proxdet
