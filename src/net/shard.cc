#include "net/shard.h"

#include <algorithm>
#include <string>
#include <utility>

#include "net/socket/socket_server.h"
#include "net/socket/stats_server.h"
#include "obs/metrics.h"

namespace proxdet {
namespace net {

namespace {

/// SplitMix64 finalizer: the ring's only hash function. Statistically
/// uniform, trivially portable, and (unlike std::hash) pinned — the ring
/// assignment is part of the deterministic wire schedule.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Key-domain separator: user keys and vnode labels must never collide on
/// the ring even in principle.
constexpr uint64_t kUserKeySalt = 0x517cc1b727220a95ULL;

/// Batch-fill histogram: how many messages each downlink flush carried.
obs::HistogramMetric& BatchFillHistogram() {
  static obs::HistogramMetric& h = obs::Metrics().GetHistogram(
      "net.batch.fill", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0},
      obs::Kind::kDeterministic);
  return h;
}

/// Bytes a message would cost shipped alone: its own frame (seq varint
/// estimated at the common 1-byte width) plus the receiver's minimal ack.
size_t SoloCost(size_t payload_len) {
  return payload_len + FrameOverheadBytes(1, payload_len) + kMinFrameBytes;
}

/// Trace-entry list for a solo (non-batch) frame: one entry at item index
/// 0, or none when the message is untraced.
std::vector<TraceEntry> SoloTrace(const TraceCtx* ctx) {
  if (ctx == nullptr) return {};
  return {TraceEntry{0, *ctx}};
}

}  // namespace

// ---------------------------------------------------------------------------
// HashRing

HashRing::HashRing(int shards, int vnodes) : shards_(std::max(1, shards)) {
  vnodes = std::max(1, vnodes);
  ring_.reserve(static_cast<size_t>(shards_) * vnodes);
  for (int s = 0; s < shards_; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      const uint64_t label =
          (static_cast<uint64_t>(static_cast<uint32_t>(s)) << 32) |
          static_cast<uint32_t>(v);
      ring_.emplace_back(Mix64(label), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int HashRing::ShardOf(UserId u) const {
  if (shards_ == 1) return 0;
  const uint64_t h =
      Mix64(kUserKeySalt ^ static_cast<uint64_t>(static_cast<uint32_t>(u)));
  // First vnode clockwise of the key; wrap to the ring's start.
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, -1));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

// ---------------------------------------------------------------------------
// ShardedFrontend

ShardedFrontend::ShardedFrontend(const World& world, const NetConfig& config)
    : world_(world),
      config_(config),
      ring_(config.shards, config.ring_vnodes),
      graph_(world.graph()) {
  const int user_count = static_cast<int>(world.user_count());
  const int shard_count = ring_.shard_count();
  if (config.transport == TransportKind::kUdp) {
    socket_server_ = std::make_unique<SocketServer>(config, shard_count);
    net_ = socket_server_->backend();
    if (!socket_server_->ok()) failed_ = true;
  } else {
    sim_net_ = std::make_unique<SimNet>(config.seed);
    sim_net_->set_record_log(config.record_log);
    net_ = sim_net_.get();
  }
  home_.resize(user_count);
  for (UserId u = 0; u < user_count; ++u) home_[u] = ring_.ShardOf(u);

  // Clients register first so endpoint id == UserId (the identity the
  // protocol checks); shard endpoints follow in shard order, two per shard:
  // client-facing at user_count + 2s, mesh at user_count + 2s + 1. With
  // shards == 1 the client-facing endpoint lands on id user_count — exactly
  // the historical single-server id, so the whole wire schedule (frames,
  // Rng draws, schedule hash) is reproduced bit-for-bit.
  clients_.reserve(user_count);
  for (UserId u = 0; u < user_count; ++u) {
    const int server_id = user_count + 2 * home_[u];
    clients_.push_back(
        std::make_unique<ClientRuntime>(net_, &world_, u, server_id, config));
  }
  obs::Counter& bytes_up = obs::Metrics().GetCounter("net.bytes_up");
  obs::Counter& bytes_down = obs::Metrics().GetCounter("net.bytes_down");
  obs::Counter& bytes_xshard = obs::Metrics().GetCounter("net.bytes_xshard");
  shards_.resize(shard_count);
  for (int s = 0; s < shard_count; ++s) {
    Shard& shard = shards_[s];
    // Shard endpoints carry placement group s: on the UDP backend that pins
    // both of the shard's sockets to event loop s (one loop per shard).
    shard.server = std::make_unique<ProtocolServer>(net_, world.user_count(),
                                                    config, /*group=*/s);
    shard.server->set_served_filter(
        [this, s](UserId u) { return home_[u] == s; });
    shard.mesh = std::make_unique<ReliableEndpoint>(
        net_, config.retry_timeout_s, config.max_retries,
        [this, s](int src, Frame&& frame) {
          OnMeshFrame(s, src, std::move(frame));
        },
        /*group=*/s);
    shard.mesh_id = shard.mesh->id();
    // The id layout above is load-bearing (clients were already pointed at
    // user_count + 2s); fail loudly if endpoint registration ever drifts.
    if (shard.server->endpoint().id() != user_count + 2 * s ||
        shard.mesh_id != user_count + 2 * s + 1) {
      failed_ = true;
    }
    // One grid cell per largest alert radius (the detectors' anchor too),
    // so a shard-local radius query touches a bounded cell neighborhood.
    const double max_r = graph_.MaxAlertRadius();
    shard.index.SetCellSize(max_r > 0.0 ? max_r : 1.0);
    const std::string prefix = "net.shard" + std::to_string(s);
    obs::Counter& shard_down =
        obs::Metrics().GetCounter(prefix + ".bytes_down");
    obs::Counter& shard_xshard =
        obs::Metrics().GetCounter(prefix + ".bytes_xshard");
    shard.server->endpoint().add_wire_bytes_counter(&bytes_down);
    shard.server->endpoint().add_wire_bytes_counter(&shard_down);
    shard.mesh->add_wire_bytes_counter(&bytes_xshard);
    shard.mesh->add_wire_bytes_counter(&shard_xshard);
    // Flight-recorder events from this shard's endpoints carry its label.
    shard.server->endpoint().set_flight_shard(s);
    shard.mesh->set_flight_shard(s);
  }
  for (UserId u = 0; u < user_count; ++u) {
    shards_[home_[u]].users.push_back(u);
    obs::Counter& shard_up = obs::Metrics().GetCounter(
        "net.shard" + std::to_string(home_[u]) + ".bytes_up");
    clients_[u]->endpoint().add_wire_bytes_counter(&bytes_up);
    clients_[u]->endpoint().add_wire_bytes_counter(&shard_up);
    clients_[u]->endpoint().set_flight_shard(home_[u]);
  }
  if (config.trace) {
    latency_ = std::make_unique<AlertLatencyTracker>(net_, shard_count);
    for (auto& client : clients_) client->set_latency_tracker(latency_.get());
  }
  if (config.stats_port >= 0) {
    // Introspection is best-effort: a failed bind leaves stats_port() == -1
    // without failing the run.
    stats_server_ = std::make_unique<StatsServer>(config.stats_port);
  }

  if (sim_net_ != nullptr) {
    // Direction classification by endpoint id range: clients occupy
    // [0, user_count), shard endpoints everything above. Shard -> shard is
    // the mesh; shard -> client the downlink; client -> anything the uplink.
    const LinkModel up = config.up;
    const LinkModel down = config.down;
    const LinkModel mesh = config.mesh;
    const int n = user_count;
    sim_net_->SetLinkModelFn([up, down, mesh, n](int src, int dst) {
      if (src < n) return up;
      return dst < n ? down : mesh;
    });
  } else {
    // Quiescence over real sockets: queues drained and every reliable
    // endpoint fully acked. Stale lazily-cancelled retry timers may stay
    // armed — they fire later, find nothing pending, and do nothing.
    // Driver-thread-only state throughout, per the NetBackend contract.
    socket_server_->net().SetIdleFn([this] {
      for (const auto& client : clients_) {
        if (!client->endpoint().all_acked()) return false;
      }
      for (const Shard& shard : shards_) {
        if (!shard.server->endpoint().all_acked() || !shard.mesh->all_acked()) {
          return false;
        }
      }
      return true;
    });
  }

  client_queue_.resize(user_count);
  mesh_queue_.assign(shard_count,
                     std::vector<std::vector<MeshItem>>(shard_count));
  expect_.resize(user_count);
}

ShardedFrontend::~ShardedFrontend() = default;

int ShardedFrontend::stats_port() const {
  return stats_server_ != nullptr && stats_server_->ok()
             ? stats_server_->port()
             : -1;
}

void ShardedFrontend::ApplyGraphUpdates(int epoch) {
  const auto& updates = world_.scheduled_updates();
  while (next_update_ < updates.size() &&
         updates[next_update_].epoch <= epoch) {
    const GraphUpdate& up = updates[next_update_];
    if (up.insert) {
      graph_.AddEdge(up.u, up.w, up.alert_radius);
    } else {
      graph_.RemoveEdge(up.u, up.w);
    }
    ++next_update_;
  }
}

void ShardedFrontend::ForwardDigests(const LocationReportMsg& msg,
                                     const TraceCtx* ctx) {
  if (ring_.shard_count() == 1) return;
  const UserId u = msg.user;
  // Owners of u's cross-shard pairs: the home shard of every *smaller*
  // friend living elsewhere (OwnerOf picks the smaller endpoint's home; for
  // friends above u this shard is the owner and already has the report).
  std::vector<int> targets;
  for (const FriendEdge& e : graph_.FriendsOf(u)) {
    if (e.other < u && home_[e.other] != home_[u]) {
      targets.push_back(home_[e.other]);
    }
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  if (targets.empty()) return;

  LocationReportMsg digest;
  digest.user = msg.user;
  digest.epoch = msg.epoch;
  digest.position = msg.position;  // Window stays empty: digests are cheap.
  ShardForwardMsg fwd;
  fwd.inner_kind = static_cast<uint8_t>(MsgKind::kLocationReport);
  fwd.inner = Encode(digest);
  // The digest's mesh leg is one more hop of the original report frame.
  TraceCtx mesh_ctx;
  if (ctx != nullptr) {
    mesh_ctx = *ctx;
    mesh_ctx.hops = static_cast<uint8_t>(ctx->hops + 1);
  }
  const TraceCtx* mesh_ctx_ptr = ctx != nullptr ? &mesh_ctx : nullptr;
  for (const int t : targets) {
    expected_digests_[{t, u}] = digest;
    digests_outstanding_ += 1;
    if (config_.batch_downlink) {
      mesh_queue_[home_[u]][t].push_back(
          MeshItem{fwd, ctx != nullptr, mesh_ctx});
    } else {
      SendMesh(home_[u], t, fwd, mesh_ctx_ptr);
    }
  }
  if (!config_.batch_downlink) {
    net_->RunUntilIdle();
    if (digests_outstanding_ != 0) failed_ = true;
  }
}

void ShardedFrontend::Report(UserId u, int epoch, size_t window_len,
                             Vec2* position, std::vector<Vec2>* window) {
  ApplyGraphUpdates(epoch);
  clients_[u]->SendReport(epoch, window_len);
  net_->RunUntilIdle();
  LocationReportMsg msg;
  if (!shards_[home_[u]].server->TakeReport(u, &msg)) {
    // Only reachable when the reliability layer gave up (drop_rate ~ 1).
    // Fall back to the direct read so the engine stays well-defined; the
    // run is still flagged failed.
    failed_ = true;
    *position = world_.Position(u, epoch);
    world_.RecentWindow(u, epoch, window_len, window);
    if (window_len == 0) window->clear();
    return;
  }
  // Keep the owner shards of u's cross-shard pairs current before the
  // engine acts on the report.
  const std::optional<TraceCtx> report_ctx =
      shards_[home_[u]].server->report_trace(u);
  ForwardDigests(msg, report_ctx.has_value() ? &*report_ctx : nullptr);
  // The home shard indexes its own users by the position it decoded —
  // never a foreign user, and never the engine's direct-read mirror.
  shards_[home_[u]].index.Upsert(u, msg.position);
  // Hand the engine the payload *as the server decoded it* — the codec's
  // exactness, not a shortcut, is what makes the transported run
  // bit-identical to the in-process one.
  *position = msg.position;
  *window = std::move(msg.window);
}

void ShardedFrontend::Downlink(UserId u, MsgKind kind,
                               std::vector<uint8_t> payload,
                               const TraceCtx* ctx) {
  if (config_.batch_downlink) {
    client_queue_[u].push_back(PendingItem{kind, std::move(payload),
                                           ctx != nullptr,
                                           ctx != nullptr ? *ctx : TraceCtx{}});
    touched_.insert(u);
    return;
  }
  shards_[home_[u]].server->endpoint().Send(static_cast<int>(u), kind,
                                            payload, SoloTrace(ctx));
  net_->RunUntilIdle();
  VerifyClient(u);
}

void ShardedFrontend::PairDownlink(UserId u, UserId a, UserId b, MsgKind kind,
                                   std::vector<uint8_t> payload,
                                   const TraceCtx* ctx) {
  const int owner = ring_.OwnerOf(a, b);
  const int home = home_[u];
  if (owner == home) {
    TraceCtx direct_ctx;
    if (ctx != nullptr) {
      direct_ctx = *ctx;
      direct_ctx.hops = 1;  // One reliable hop: home shard -> client.
    }
    Downlink(u, kind, std::move(payload),
             ctx != nullptr ? &direct_ctx : nullptr);
    return;
  }
  // Cross-shard: the owner decided the message, the home shard delivers it.
  // Two reliable hops — the context rides both legs, hop count advancing,
  // and the value delivered to the client is identical in batched and
  // unbatched runs (the batched direct-append pre-sets hops = 2).
  ShardForwardMsg fwd;
  fwd.inner_kind = static_cast<uint8_t>(kind);
  fwd.inner = std::move(payload);
  expected_relays_[{owner, home}].insert(Encode(fwd));
  TraceCtx mesh_ctx;
  TraceCtx client_ctx;
  if (ctx != nullptr) {
    mesh_ctx = *ctx;
    mesh_ctx.hops = 1;
    client_ctx = *ctx;
    client_ctx.hops = 2;
  }
  if (config_.batch_downlink) {
    // Direct-append to the home queue at engine-call time so the client's
    // delivery order equals the engine's call order for every shard count;
    // the mesh copy still crosses the simulated wire and is verified (and
    // consumed) on receipt instead of delivered twice.
    client_queue_[u].push_back(
        PendingItem{kind, fwd.inner, ctx != nullptr, client_ctx});
    touched_.insert(u);
    mesh_queue_[owner][home].push_back(
        MeshItem{std::move(fwd), ctx != nullptr, mesh_ctx});
    return;
  }
  SendMesh(owner, home, fwd, ctx != nullptr ? &mesh_ctx : nullptr);
  // The relay's delivery to the client happens inside the same drain: the
  // mesh handler's Send enqueues onto the running event loop.
  net_->RunUntilIdle();
  if (!expected_relays_[{owner, home}].empty()) failed_ = true;
  VerifyClient(u);
}

void ShardedFrontend::SendMesh(int from_shard, int to_shard,
                               const ShardForwardMsg& fwd,
                               const TraceCtx* ctx) {
  shards_[from_shard].mesh->Send(shards_[to_shard].mesh_id,
                                 MsgKind::kShardForward, Encode(fwd),
                                 SoloTrace(ctx));
}

void ShardedFrontend::OnMeshFrame(int shard, int src, Frame&& frame) {
  if (frame.kind == MsgKind::kShardForward) {
    ShardForwardMsg fwd;
    if (!Decode(frame.payload, &fwd)) {
      failed_ = true;
      return;
    }
    HandleMeshMessage(shard, src, fwd, frame.TraceFor(0));
    return;
  }
  if (frame.kind == MsgKind::kBatch) {
    std::vector<BatchItem> items;
    if (!DecodeBatch(frame.payload, &items)) {
      failed_ = true;
      return;
    }
    for (size_t i = 0; i < items.size(); ++i) {
      ShardForwardMsg fwd;
      if (items[i].kind != MsgKind::kShardForward ||
          !Decode(items[i].payload, &fwd)) {
        failed_ = true;
        return;
      }
      HandleMeshMessage(shard, src, fwd,
                        frame.TraceFor(static_cast<uint32_t>(i)));
    }
    return;
  }
  failed_ = true;  // Nothing else belongs on the mesh.
}

void ShardedFrontend::HandleMeshMessage(int shard, int src,
                                        const ShardForwardMsg& fwd,
                                        const TraceCtx* ctx) {
  // Mesh endpoint ids are user_count + 2s + 1; recover the sending shard.
  const int from_shard =
      (src - static_cast<int>(world_.user_count()) - 1) / 2;
  if (fwd.inner_kind == static_cast<uint8_t>(MsgKind::kLocationReport)) {
    LocationReportMsg digest;
    if (!Decode(fwd.inner, &digest)) {
      failed_ = true;
      return;
    }
    const auto key = std::make_pair(shard, digest.user);
    const auto it = expected_digests_.find(key);
    // The digest on the wire must be the digest the serving plane meant to
    // send — same reporter, epoch and bit-exact position.
    if (it == expected_digests_.end() || !(it->second == digest) ||
        digests_outstanding_ == 0) {
      failed_ = true;
      return;
    }
    digests_outstanding_ -= 1;
    digests_[key] = digest;
    return;
  }
  if (fwd.inner_kind != static_cast<uint8_t>(MsgKind::kAlert) &&
      fwd.inner_kind != static_cast<uint8_t>(MsgKind::kMatchInstall)) {
    failed_ = true;
    return;
  }
  // Relayed notice: verify against (and consume) the owner's expectation.
  auto& pending = expected_relays_[{from_shard, shard}];
  const auto it = pending.find(Encode(fwd));
  if (it == pending.end()) {
    failed_ = true;
    return;
  }
  pending.erase(it);
  if (config_.batch_downlink) return;  // Already direct-appended.
  // Store-and-forward: extract the target user and deliver from this shard.
  UserId target = -1;
  if (fwd.inner_kind == static_cast<uint8_t>(MsgKind::kAlert)) {
    AlertMsg msg;
    if (!Decode(fwd.inner, &msg)) {
      failed_ = true;
      return;
    }
    target = msg.user;
  } else {
    MatchInstallMsg msg;
    if (!Decode(fwd.inner, &msg)) {
      failed_ = true;
      return;
    }
    target = msg.user;
  }
  if (target < 0 || static_cast<size_t>(target) >= clients_.size() ||
      home_[target] != shard) {
    failed_ = true;
    return;
  }
  // The relayed delivery is one more reliable hop than the mesh leg.
  TraceCtx out_ctx;
  if (ctx != nullptr) {
    out_ctx = *ctx;
    out_ctx.hops = static_cast<uint8_t>(ctx->hops + 1);
  }
  // Flight-recorder breadcrumb: the ownership forward was relayed onward.
  if (obs::Flight().enabled()) {
    obs::FlightEvent event;
    event.kind = obs::FlightEventKind::kForward;
    event.shard = shard;
    event.src = src;
    event.dst = static_cast<int>(target);
    event.msg_kind = fwd.inner_kind;
    event.time_s = net_->now();
    obs::Flight().Record(event);
  }
  shards_[shard].server->endpoint().Send(
      static_cast<int>(target), static_cast<MsgKind>(fwd.inner_kind),
      fwd.inner, SoloTrace(ctx != nullptr ? &out_ctx : nullptr));
}

void ShardedFrontend::Probe(UserId u, int epoch) {
  ProbeMsg msg;
  msg.user = u;
  msg.epoch = epoch;
  expect_[u].probes += 1;
  if (config_.batch_downlink) {
    // A probe cannot wait for the epoch barrier — the engine blocks on the
    // probed report next. Enqueue (coalescing any earlier same-epoch items
    // for u into the same frame) and flush immediately.
    client_queue_[u].push_back(
        PendingItem{MsgKind::kProbe, Encode(msg), false, TraceCtx{}});
    touched_.insert(u);
    FlushClient(u);
    net_->RunUntilIdle();
    VerifyClient(u);
    return;
  }
  Downlink(u, MsgKind::kProbe, Encode(msg), nullptr);
}

void ShardedFrontend::Alert(UserId u, UserId a, UserId b, int epoch) {
  AlertMsg msg;
  msg.user = u;
  msg.u = a;
  msg.w = b;
  msg.epoch = epoch;
  expect_[u].alerts += 1;
  if (latency_ != nullptr) {
    // Detect fires here, at the engine's serial commit site: one event id
    // per Alert() call, stamped with the owner shard's identity and the
    // backend clock, matched when the client's handler sees the frame.
    const uint64_t event_id = AlertEventId(u, a, b, epoch);
    latency_->RecordDetect(event_id, ring_.OwnerOf(a, b));
    TraceCtx ctx;
    ctx.origin_epoch = epoch;
    ctx.event_id = event_id;
    ctx.hops = 0;  // PairDownlink sets the per-leg hop counts.
    PairDownlink(u, a, b, MsgKind::kAlert, Encode(msg), &ctx);
    return;
  }
  PairDownlink(u, a, b, MsgKind::kAlert, Encode(msg), nullptr);
}

void ShardedFrontend::InstallRegion(UserId u, int epoch,
                                    const SafeRegionShape& region) {
  RegionInstallMsg msg;
  msg.user = u;
  msg.epoch = epoch;
  msg.region = region;
  std::vector<uint8_t> payload = Encode(msg);
  if (config_.compress_installs) {
    std::vector<uint8_t> compressed = EncodeCompressed(msg);
    if (compressed.size() < payload.size()) {
      // The guard: the server decodes its own compressed encoding and ships
      // it only when the result is the *identical* shape. Quantized coding
      // is lossy in general; it goes on the wire only when proven lossless
      // for this payload (grid-snapped stripe anchors make that the common
      // case by construction).
      RegionInstallMsg decoded;
      if (Decode(compressed, &decoded) && decoded == msg) {
        compressed_installs_ += 1;
        compress_saved_bytes_ += payload.size() - compressed.size();
        payload = std::move(compressed);
      } else {
        compress_mismatch_ += 1;
      }
    } else {
      compress_skipped_ += 1;
    }
  }
  expect_[u].regions += 1;
  expect_[u].region = region;
  Downlink(u, MsgKind::kRegionInstall, std::move(payload), nullptr);
}

void ShardedFrontend::InstallMatch(UserId u, int epoch, MatchOp op, UserId a,
                                   UserId b, const Circle& region) {
  MatchInstallMsg msg;
  msg.user = u;
  msg.epoch = epoch;
  msg.op = static_cast<uint8_t>(op);
  msg.u = a;
  msg.w = b;
  msg.region = region;
  expect_[u].matches += 1;
  expect_[u].match_known = true;
  if (op == MatchOp::kDelete) {
    expect_[u].match.reset();
  } else {
    expect_[u].match = region;
  }
  PairDownlink(u, a, b, MsgKind::kMatchInstall, Encode(msg), nullptr);
}

void ShardedFrontend::FlushClient(UserId u) {
  std::vector<PendingItem>& queue = client_queue_[u];
  if (queue.empty()) return;
  ReliableEndpoint& endpoint = shards_[home_[u]].server->endpoint();
  BatchFillHistogram().Record(static_cast<double>(queue.size()));
  if (queue.size() == 1) {
    endpoint.Send(static_cast<int>(u), queue.front().kind,
                  queue.front().payload,
                  SoloTrace(queue.front().traced ? &queue.front().ctx
                                                 : nullptr));
    queue.clear();
    return;
  }
  std::vector<BatchItem> items;
  std::vector<TraceEntry> trace;
  items.reserve(queue.size());
  size_t solo_bytes = 0;
  for (size_t i = 0; i < queue.size(); ++i) {
    PendingItem& item = queue[i];
    solo_bytes += SoloCost(item.payload.size());
    if (item.traced) {
      trace.push_back(TraceEntry{static_cast<uint32_t>(i), item.ctx});
    }
    items.push_back(BatchItem{item.kind, std::move(item.payload)});
  }
  const std::vector<uint8_t> payload = EncodeBatch(items);
  batch_frames_ += 1;
  batch_messages_ += items.size();
  const size_t batched_bytes = SoloCost(payload.size());
  if (solo_bytes > batched_bytes) {
    batch_saved_bytes_ += solo_bytes - batched_bytes;
  }
  endpoint.Send(static_cast<int>(u), MsgKind::kBatch, payload, trace);
  queue.clear();
}

void ShardedFrontend::FlushMesh(int from_shard) {
  for (int to = 0; to < ring_.shard_count(); ++to) {
    std::vector<MeshItem>& queue = mesh_queue_[from_shard][to];
    if (queue.empty()) continue;
    if (queue.size() == 1) {
      SendMesh(from_shard, to, queue.front().fwd,
               queue.front().traced ? &queue.front().ctx : nullptr);
      queue.clear();
      continue;
    }
    std::vector<BatchItem> items;
    std::vector<TraceEntry> trace;
    items.reserve(queue.size());
    size_t solo_bytes = 0;
    for (size_t i = 0; i < queue.size(); ++i) {
      const MeshItem& item = queue[i];
      std::vector<uint8_t> bytes = Encode(item.fwd);
      solo_bytes += SoloCost(bytes.size());
      if (item.traced) {
        trace.push_back(TraceEntry{static_cast<uint32_t>(i), item.ctx});
      }
      items.push_back(BatchItem{MsgKind::kShardForward, std::move(bytes)});
    }
    const std::vector<uint8_t> payload = EncodeBatch(items);
    batch_frames_ += 1;
    batch_messages_ += items.size();
    const size_t batched_bytes = SoloCost(payload.size());
    if (solo_bytes > batched_bytes) {
      batch_saved_bytes_ += solo_bytes - batched_bytes;
    }
    shards_[from_shard].mesh->Send(shards_[to].mesh_id, MsgKind::kBatch,
                                   payload, trace);
    queue.clear();
  }
}

void ShardedFrontend::VerifyClient(UserId u) {
  const ClientRuntime& c = *clients_[u];
  const ClientExpect& e = expect_[u];
  if (c.probes_received() != e.probes || c.alerts().size() != e.alerts ||
      c.regions_installed() != e.regions ||
      c.match_notices() != e.matches || c.protocol_error()) {
    failed_ = true;
  }
  if (e.region.has_value()) {
    const auto& installed = c.installed_region();
    if (!installed.has_value() || !(*installed == *e.region)) {
      codec_exact_ = false;
    }
  }
  if (e.match_known) {
    const auto& match = c.match_region();
    if (e.match.has_value()) {
      if (!match.has_value() || !(*match == *e.match)) codec_exact_ = false;
    } else if (match.has_value()) {
      codec_exact_ = false;
    }
  }
}

void ShardedFrontend::EndEpoch(int /*epoch*/) {
  if (!config_.batch_downlink) {
    // Stop-and-wait already drained everything; just assert nothing is
    // still owed on the mesh.
    if (digests_outstanding_ != 0) failed_ = true;
    for (const auto& [key, pending] : expected_relays_) {
      if (!pending.empty()) failed_ = true;
    }
    return;
  }
  // Mesh first: owners' digests and relay mirrors land (and are verified)
  // before any client sees its batch.
  for (int s = 0; s < ring_.shard_count(); ++s) FlushMesh(s);
  net_->RunUntilIdle();
  if (digests_outstanding_ != 0) failed_ = true;
  for (const auto& [key, pending] : expected_relays_) {
    if (!pending.empty()) failed_ = true;
  }
  // Then one coalesced frame per touched client.
  for (const UserId u : touched_) FlushClient(u);
  net_->RunUntilIdle();
  for (const UserId u : touched_) VerifyClient(u);
  touched_.clear();
}

NetRunStats ShardedFrontend::Stats() const {
  NetRunStats s;
  s.shards.resize(ring_.shard_count());
  for (int i = 0; i < ring_.shard_count(); ++i) {
    const Shard& shard = shards_[i];
    ShardNetStats& out = s.shards[i];
    out.users = shard.users.size();
    const ReliableEndpoint& se = shard.server->endpoint();
    out.frames_down = se.frames_sent();
    out.bytes_down = se.bytes_sent();
    out.frames_xshard = shard.mesh->frames_sent();
    out.bytes_xshard = shard.mesh->bytes_sent();
    s.frames_down += out.frames_down;
    s.bytes_down += out.bytes_down;
    s.frames_xshard += out.frames_xshard;
    s.bytes_xshard += out.bytes_xshard;
    s.retransmits += se.retransmits() + shard.mesh->retransmits();
    s.dedup_discards += se.dedup_discards() + shard.mesh->dedup_discards();
    if (se.delivery_failed() || shard.mesh->delivery_failed() ||
        shard.server->protocol_error()) {
      s.failed = true;
    }
  }
  for (UserId u = 0; u < static_cast<UserId>(clients_.size()); ++u) {
    const ReliableEndpoint& e = clients_[u]->endpoint();
    s.frames_up += e.frames_sent();
    s.bytes_up += e.bytes_sent();
    s.shards[home_[u]].frames_up += e.frames_sent();
    s.shards[home_[u]].bytes_up += e.bytes_sent();
    s.retransmits += e.retransmits();
    s.dedup_discards += e.dedup_discards();
    if (e.delivery_failed()) s.failed = true;
    if (clients_[u]->protocol_error()) s.failed = true;
  }
  s.batch_frames = batch_frames_;
  s.batch_messages = batch_messages_;
  s.batch_saved_bytes = batch_saved_bytes_;
  s.compressed_installs = compressed_installs_;
  s.compress_skipped = compress_skipped_;
  s.compress_saved_bytes = compress_saved_bytes_;
  s.compress_mismatch = compress_mismatch_;
  if (failed_) s.failed = true;
  s.drops = net_->frames_dropped();
  s.duplicates = net_->frames_duplicated();
  s.virtual_seconds = net_->now();
  s.schedule_hash = net_->schedule_hash();
  if (socket_server_ != nullptr &&
      (!socket_server_->ok() || socket_server_->idle_timeout_hit())) {
    s.failed = true;
  }
  s.codec_exact = codec_exact_;
  return s;
}

std::vector<AlertEvent> ShardedFrontend::ClientAlerts() const {
  std::vector<AlertEvent> out;
  for (const auto& client : clients_) {
    const auto& alerts = client->alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
  }
  // Each logical alert is delivered to both endpoints of the pair; the
  // client-observed *stream* is the deduplicated union.
  SortAlerts(&out);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace net
}  // namespace proxdet
