#include "net/wire.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace proxdet {
namespace net {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Grid-index bound of the quantized codec. Indices this small are exact in
/// a double (|q| << 2^53), so double(q) / kWireQuantScale loses nothing,
/// and llround below never overflows.
constexpr int64_t kMaxQuantIndex = int64_t{1} << 45;

/// Grid index of an on-grid coordinate; sets *exact to false when the
/// coordinate is off-grid or out of range.
int64_t QuantIndex(double v, bool* exact) {
  if (!std::isfinite(v) || std::abs(v) * kWireQuantScale >
                               static_cast<double>(kMaxQuantIndex)) {
    *exact = false;
    return 0;
  }
  const int64_t q = std::llround(v * kWireQuantScale);
  if (static_cast<double>(q) / kWireQuantScale != v) *exact = false;
  return q;
}

}  // namespace

void WireWriter::PutU16(uint16_t v) {
  bytes_.push_back(static_cast<uint8_t>(v));
  bytes_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(v));
}

void WireWriter::PutZigzag(int64_t v) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void WireWriter::PutDouble(double v) { PutU64(DoubleBits(v)); }

void WireWriter::PutVec2(const Vec2& v) {
  PutDouble(v.x);
  PutDouble(v.y);
}

void WireWriter::PutPoints(const std::vector<Vec2>& points) {
  PutVarint(points.size());
  uint64_t prev_x = 0;
  uint64_t prev_y = 0;
  for (const Vec2& p : points) {
    const uint64_t bx = DoubleBits(p.x);
    const uint64_t by = DoubleBits(p.y);
    PutVarint(bx ^ prev_x);
    PutVarint(by ^ prev_y);
    prev_x = bx;
    prev_y = by;
  }
}

bool PointsQuantizable(const std::vector<Vec2>& points) {
  bool exact = true;
  for (const Vec2& p : points) {
    QuantIndex(p.x, &exact);
    QuantIndex(p.y, &exact);
    if (!exact) return false;
  }
  return true;
}

void WireWriter::PutPointsQuantized(const std::vector<Vec2>& points) {
  PutVarint(points.size());
  int64_t prev_x = 0;
  int64_t prev_y = 0;
  bool exact = true;  // Callers guarantee PointsQuantizable().
  for (const Vec2& p : points) {
    const int64_t qx = QuantIndex(p.x, &exact);
    const int64_t qy = QuantIndex(p.y, &exact);
    PutZigzag(qx - prev_x);
    PutZigzag(qy - prev_y);
    prev_x = qx;
    prev_y = qy;
  }
}

uint8_t WireReader::GetU8() {
  if (!ok_ || remaining() < 1) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

uint16_t WireReader::GetU16() {
  if (!ok_ || remaining() < 2) {
    ok_ = false;
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t WireReader::GetU32() {
  if (!ok_ || remaining() < 4) {
    ok_ = false;
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t WireReader::GetU64() {
  if (!ok_ || remaining() < 8) {
    ok_ = false;
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

uint64_t WireReader::GetVarint() {
  uint64_t v = 0;
  for (int i = 0; i < 10; ++i) {
    if (!ok_ || remaining() < 1) {
      ok_ = false;
      return 0;
    }
    const uint8_t b = data_[pos_++];
    // Byte 10 may only contribute the top value bit; anything else is an
    // overlong / overflowing encoding our writer never produces.
    if (i == 9 && b > 1) {
      ok_ = false;
      return 0;
    }
    v |= static_cast<uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) return v;
  }
  ok_ = false;  // Continuation bit set on the 10th byte.
  return 0;
}

int64_t WireReader::GetZigzag() {
  const uint64_t v = GetVarint();
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

double WireReader::GetDouble() { return BitsDouble(GetU64()); }

Vec2 WireReader::GetVec2() {
  Vec2 v;
  v.x = GetDouble();
  v.y = GetDouble();
  return v;
}

bool WireReader::GetPoints(std::vector<Vec2>* out) {
  out->clear();
  const uint64_t count = GetVarint();
  // Each point costs at least 2 bytes (one varint byte per coordinate), so
  // an honest count never exceeds remaining()/2 — reject length bombs
  // before reserving.
  if (!ok_ || count > kMaxWirePoints || count * 2 > remaining()) {
    ok_ = false;
    return false;
  }
  out->reserve(count);
  uint64_t bx = 0;
  uint64_t by = 0;
  for (uint64_t i = 0; i < count; ++i) {
    bx ^= GetVarint();
    by ^= GetVarint();
    if (!ok_) return false;
    out->push_back({BitsDouble(bx), BitsDouble(by)});
  }
  return ok_;
}

bool WireReader::GetPointsQuantized(std::vector<Vec2>* out) {
  out->clear();
  const uint64_t count = GetVarint();
  if (!ok_ || count > kMaxWirePoints || count * 2 > remaining()) {
    ok_ = false;
    return false;
  }
  out->reserve(count);
  int64_t qx = 0;
  int64_t qy = 0;
  for (uint64_t i = 0; i < count; ++i) {
    qx += GetZigzag();
    qy += GetZigzag();
    if (!ok_ || std::abs(qx) > kMaxQuantIndex || std::abs(qy) > kMaxQuantIndex) {
      ok_ = false;
      return false;
    }
    // Exact: the grid index is exact in a double and the scale is a power
    // of two, so this reproduces the encoder's input bit-for-bit.
    out->push_back({static_cast<double>(qx) / kWireQuantScale,
                    static_cast<double>(qy) / kWireQuantScale});
  }
  return ok_;
}

uint32_t Fnv1a32(const uint8_t* data, size_t size) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Message payload codecs.

namespace {

/// UserIds are dense non-negative indices; encode as varint, reject
/// anything that does not fit back into the id type.
void PutUser(WireWriter* w, UserId u) {
  w->PutVarint(static_cast<uint64_t>(u));
}

UserId GetUser(WireReader* r, bool* valid) {
  const uint64_t v = r->GetVarint();
  if (v > 0x7fffffffULL) *valid = false;
  return static_cast<UserId>(v);
}

bool Done(const WireReader& r) { return r.ok() && r.remaining() == 0; }

}  // namespace

std::vector<uint8_t> Encode(const LocationReportMsg& msg) {
  WireWriter w;
  PutUser(&w, msg.user);
  w.PutZigzag(msg.epoch);
  w.PutVec2(msg.position);
  w.PutPoints(msg.window);
  return w.Take();
}

bool Decode(const std::vector<uint8_t>& payload, LocationReportMsg* out) {
  WireReader r(payload.data(), payload.size());
  bool valid = true;
  out->user = GetUser(&r, &valid);
  out->epoch = static_cast<int32_t>(r.GetZigzag());
  out->position = r.GetVec2();
  if (!r.GetPoints(&out->window)) return false;
  return valid && Done(r);
}

std::vector<uint8_t> Encode(const ProbeMsg& msg) {
  WireWriter w;
  PutUser(&w, msg.user);
  w.PutZigzag(msg.epoch);
  return w.Take();
}

bool Decode(const std::vector<uint8_t>& payload, ProbeMsg* out) {
  WireReader r(payload.data(), payload.size());
  bool valid = true;
  out->user = GetUser(&r, &valid);
  out->epoch = static_cast<int32_t>(r.GetZigzag());
  return valid && Done(r);
}

std::vector<uint8_t> Encode(const AlertMsg& msg) {
  WireWriter w;
  PutUser(&w, msg.user);
  PutUser(&w, msg.u);
  PutUser(&w, msg.w);
  w.PutZigzag(msg.epoch);
  return w.Take();
}

bool Decode(const std::vector<uint8_t>& payload, AlertMsg* out) {
  WireReader r(payload.data(), payload.size());
  bool valid = true;
  out->user = GetUser(&r, &valid);
  out->u = GetUser(&r, &valid);
  out->w = GetUser(&r, &valid);
  out->epoch = static_cast<int32_t>(r.GetZigzag());
  return valid && Done(r);
}

namespace {

// Shape tags are part of the wire format; new shapes append, never renumber.
// The *Q tags are the quantized-delta codings of the same shapes — a
// decoder treats them as alternate encodings, not new geometry.
enum ShapeTag : uint8_t {
  kTagCircle = 1,
  kTagMovingCircle = 2,
  kTagPolygon = 3,
  kTagStripe = 4,
  kTagPolygonQ = 5,
  kTagStripeQ = 6,
};

struct ShapeEncoder {
  WireWriter* w;
  bool allow_quantized = false;
  void operator()(const Circle& c) const {
    w->PutU8(kTagCircle);
    w->PutVec2(c.center);
    w->PutDouble(c.radius);
  }
  void operator()(const MovingCircle& m) const {
    w->PutU8(kTagMovingCircle);
    w->PutVec2(m.center_at_build);
    w->PutVec2(m.velocity_per_epoch);
    w->PutDouble(m.radius);
    w->PutZigzag(m.built_epoch);
  }
  void operator()(const ConvexPolygon& p) const {
    if (allow_quantized && PointsQuantizable(p.vertices())) {
      w->PutU8(kTagPolygonQ);
      w->PutPointsQuantized(p.vertices());
      return;
    }
    w->PutU8(kTagPolygon);
    w->PutPoints(p.vertices());
  }
  void operator()(const Stripe& s) const {
    // Only the path is quantized; the radius is a solver output off any
    // grid, and at 8 bytes per install it is not worth approximating.
    if (allow_quantized && PointsQuantizable(s.path().points())) {
      w->PutU8(kTagStripeQ);
      w->PutDouble(s.radius());
      w->PutPointsQuantized(s.path().points());
      return;
    }
    w->PutU8(kTagStripe);
    w->PutDouble(s.radius());
    w->PutPoints(s.path().points());
  }
};

}  // namespace

void PutShape(WireWriter* w, const SafeRegionShape& shape,
              bool allow_quantized) {
  std::visit(ShapeEncoder{w, allow_quantized}, shape);
}

bool GetShape(WireReader* r, SafeRegionShape* out) {
  // Reconstruction goes through the public constructors, which re-derive
  // every cached field (polygon bounds, stripe reject box) from the decoded
  // data — and the shapes already held by the engine were built the same
  // way, so decoded == sent under the shapes' structural operator==.
  switch (r->GetU8()) {
    case kTagCircle: {
      Circle c;
      c.center = r->GetVec2();
      c.radius = r->GetDouble();
      *out = c;
      break;
    }
    case kTagMovingCircle: {
      MovingCircle m;
      m.center_at_build = r->GetVec2();
      m.velocity_per_epoch = r->GetVec2();
      m.radius = r->GetDouble();
      m.built_epoch = static_cast<int>(r->GetZigzag());
      *out = m;
      break;
    }
    case kTagPolygon: {
      std::vector<Vec2> vertices;
      if (!r->GetPoints(&vertices)) return false;
      *out = ConvexPolygon(std::move(vertices));
      break;
    }
    case kTagStripe: {
      const double radius = r->GetDouble();
      std::vector<Vec2> points;
      if (!r->GetPoints(&points)) return false;
      *out = Stripe(Polyline(std::move(points)), radius);
      break;
    }
    case kTagPolygonQ: {
      std::vector<Vec2> vertices;
      if (!r->GetPointsQuantized(&vertices)) return false;
      *out = ConvexPolygon(std::move(vertices));
      break;
    }
    case kTagStripeQ: {
      const double radius = r->GetDouble();
      std::vector<Vec2> points;
      if (!r->GetPointsQuantized(&points)) return false;
      *out = Stripe(Polyline(std::move(points)), radius);
      break;
    }
    default:
      return false;
  }
  return r->ok();
}

std::vector<uint8_t> Encode(const RegionInstallMsg& msg) {
  WireWriter w;
  PutUser(&w, msg.user);
  w.PutZigzag(msg.epoch);
  PutShape(&w, msg.region);
  return w.Take();
}

std::vector<uint8_t> EncodeCompressed(const RegionInstallMsg& msg) {
  WireWriter w;
  PutUser(&w, msg.user);
  w.PutZigzag(msg.epoch);
  PutShape(&w, msg.region, /*allow_quantized=*/true);
  return w.Take();
}

bool Decode(const std::vector<uint8_t>& payload, RegionInstallMsg* out) {
  WireReader r(payload.data(), payload.size());
  bool valid = true;
  out->user = GetUser(&r, &valid);
  out->epoch = static_cast<int32_t>(r.GetZigzag());
  if (!GetShape(&r, &out->region)) return false;
  return valid && Done(r);
}

std::vector<uint8_t> Encode(const MatchInstallMsg& msg) {
  WireWriter w;
  PutUser(&w, msg.user);
  w.PutZigzag(msg.epoch);
  w.PutU8(msg.op);
  PutUser(&w, msg.u);
  PutUser(&w, msg.w);
  w.PutVec2(msg.region.center);
  w.PutDouble(msg.region.radius);
  return w.Take();
}

bool Decode(const std::vector<uint8_t>& payload, MatchInstallMsg* out) {
  WireReader r(payload.data(), payload.size());
  bool valid = true;
  out->user = GetUser(&r, &valid);
  out->epoch = static_cast<int32_t>(r.GetZigzag());
  out->op = r.GetU8();
  if (out->op > 2) return false;  // MatchOp range.
  out->u = GetUser(&r, &valid);
  out->w = GetUser(&r, &valid);
  out->region.center = r.GetVec2();
  out->region.radius = r.GetDouble();
  return valid && Done(r);
}

namespace {

/// Kinds allowed inside envelopes: the downlink notices a client batch can
/// carry plus the shard-to-shard forward. Location reports stay unbatched
/// (the uplink is a single report per epoch already), acks are
/// transport-level, and batches never nest.
bool EnvelopeKindOk(uint8_t kind) {
  switch (static_cast<MsgKind>(kind)) {
    case MsgKind::kProbe:
    case MsgKind::kAlert:
    case MsgKind::kRegionInstall:
    case MsgKind::kMatchInstall:
      return true;
    case MsgKind::kShardForward:
      return true;
    default:
      return false;
  }
}

/// Inner kinds a shard forward can wrap: location digests and the two
/// pair-owned downlink notices.
bool ForwardInnerKindOk(uint8_t kind) {
  switch (static_cast<MsgKind>(kind)) {
    case MsgKind::kLocationReport:
    case MsgKind::kAlert:
    case MsgKind::kMatchInstall:
      return true;
    default:
      return false;
  }
}

/// Length-prefixed byte blob, sliced straight out of `payload` (the reader
/// exposes no span getter; its remaining() pins the slice's offset).
bool GetBlob(WireReader* r, const std::vector<uint8_t>& payload,
             std::vector<uint8_t>* out) {
  const uint64_t len = r->GetVarint();
  if (!r->ok() || len > r->remaining()) return false;
  const size_t start = payload.size() - r->remaining();
  out->assign(payload.begin() + start, payload.begin() + start + len);
  for (uint64_t i = 0; i < len; ++i) r->GetU8();  // Advance the reader.
  return r->ok();
}

}  // namespace

std::vector<uint8_t> Encode(const ShardForwardMsg& msg) {
  WireWriter w;
  w.PutU8(msg.inner_kind);
  w.PutVarint(msg.inner.size());
  for (const uint8_t b : msg.inner) w.PutU8(b);
  return w.Take();
}

bool Decode(const std::vector<uint8_t>& payload, ShardForwardMsg* out) {
  WireReader r(payload.data(), payload.size());
  out->inner_kind = r.GetU8();
  if (!ForwardInnerKindOk(out->inner_kind)) return false;
  if (!GetBlob(&r, payload, &out->inner)) return false;
  return Done(r);
}

std::vector<uint8_t> EncodeBatch(const std::vector<BatchItem>& items) {
  WireWriter w;
  w.PutVarint(items.size());
  for (const BatchItem& item : items) {
    w.PutU8(static_cast<uint8_t>(item.kind));
    w.PutVarint(item.payload.size());
    for (const uint8_t b : item.payload) w.PutU8(b);
  }
  return w.Take();
}

bool DecodeBatch(const std::vector<uint8_t>& payload,
                 std::vector<BatchItem>* out) {
  out->clear();
  WireReader r(payload.data(), payload.size());
  const uint64_t count = r.GetVarint();
  // Each item costs at least 2 bytes (kind + length); an empty batch is a
  // framing bug, not a message.
  if (!r.ok() || count == 0 || count * 2 > r.remaining()) return false;
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BatchItem item;
    const uint8_t kind = r.GetU8();
    if (!EnvelopeKindOk(kind)) return false;
    item.kind = static_cast<MsgKind>(kind);
    if (!GetBlob(&r, payload, &item.payload)) return false;
    out->push_back(std::move(item));
  }
  return Done(r);
}

// ---------------------------------------------------------------------------
// Framing.

std::vector<uint8_t> EncodeFrame(MsgKind kind, uint64_t seq,
                                 const std::vector<uint8_t>& payload) {
  WireWriter w;
  w.PutU16(kWireMagic);
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutVarint(seq);
  w.PutVarint(payload.size());
  std::vector<uint8_t> bytes = w.Take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const uint32_t checksum = Fnv1a32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
  }
  return bytes;
}

std::vector<uint8_t> EncodeFrameTraced(MsgKind kind, uint64_t seq,
                                       const std::vector<uint8_t>& payload,
                                       const std::vector<TraceEntry>& trace) {
  if (trace.empty()) return EncodeFrame(kind, seq, payload);
  WireWriter w;
  w.PutU16(kWireMagic);
  w.PutU8(kWireVersionTraced);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutVarint(seq);
  w.PutVarint(payload.size());
  std::vector<uint8_t> bytes = w.Take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  WireWriter ext;
  ext.PutVarint(trace.size());
  for (const TraceEntry& e : trace) {
    ext.PutVarint(e.index);
    ext.PutZigzag(e.ctx.origin_epoch);
    ext.PutVarint(e.ctx.event_id);
    ext.PutU8(e.ctx.hops);
  }
  const std::vector<uint8_t>& ext_bytes = ext.bytes();
  bytes.insert(bytes.end(), ext_bytes.begin(), ext_bytes.end());
  const uint32_t checksum = Fnv1a32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
  }
  return bytes;
}

bool DecodeFrame(const uint8_t* data, size_t size, Frame* out) {
  // Smallest legal frame: magic(2) + version(1) + kind(1) + seq(1) +
  // len(1) + checksum(4).
  if (size < kMinFrameBytes) return false;
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(data[size - 4 + i]) << (8 * i);
  }
  if (Fnv1a32(data, size - 4) != stored) return false;
  WireReader r(data, size - 4);
  if (r.GetU16() != kWireMagic) return false;
  out->version = r.GetU8();
  if (out->version != kWireVersion && out->version != kWireVersionTraced) {
    return false;
  }
  const uint8_t kind = r.GetU8();
  if (kind < 1 || kind > kMaxMsgKind) return false;
  out->kind = static_cast<MsgKind>(kind);
  out->seq = r.GetVarint();
  const uint64_t length = r.GetVarint();
  if (!r.ok() || length > r.remaining()) return false;
  const size_t payload_off = (size - 4) - r.remaining();
  out->payload.assign(data + payload_off, data + payload_off + length);
  out->trace.clear();
  if (out->version == kWireVersion) {
    // Version 1: the payload must run exactly to the checksum.
    return length == r.remaining();
  }
  // Version 2: a trace extension follows the payload. An empty extension is
  // a framing bug — untraced frames are version 1.
  WireReader t(data + payload_off + length,
               r.remaining() - static_cast<size_t>(length));
  const uint64_t count = t.GetVarint();
  // Each entry costs at least 4 bytes (index + epoch + event id + hops).
  // Cap before the size math so a 64-bit count can't overflow it, and
  // reject length bombs before reserve() allocates anything.
  if (!t.ok() || count == 0 || count > kMaxTraceEntries ||
      count > t.remaining() / 4) {
    return false;
  }
  out->trace.reserve(count);
  uint64_t prev_index = 0;
  for (uint64_t i = 0; i < count; ++i) {
    TraceEntry e;
    const uint64_t index = t.GetVarint();
    if (index > UINT32_MAX) return false;
    if (i > 0 && index <= prev_index) return false;
    prev_index = index;
    e.index = static_cast<uint32_t>(index);
    const int64_t epoch = t.GetZigzag();
    if (epoch < INT32_MIN || epoch > INT32_MAX) return false;
    e.ctx.origin_epoch = static_cast<int32_t>(epoch);
    e.ctx.event_id = t.GetVarint();
    e.ctx.hops = t.GetU8();
    out->trace.push_back(e);
  }
  return t.ok() && t.remaining() == 0;
}

}  // namespace net
}  // namespace proxdet
