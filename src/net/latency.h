#ifndef PROXDET_NET_LATENCY_H_
#define PROXDET_NET_LATENCY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "net/backend.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace proxdet {
namespace net {

/// SplitMix64 finalizer: the bijective mixer HashRing already trusts.
inline uint64_t MixEventBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Event id of the alert for pair (a, b) delivered to endpoint `user` at
/// `epoch`: one id per Alert() call, so delivered-event counts reconcile
/// with CommStats alert counts to the unit. Deterministic — both sides of
/// the wire (and every retransmitted copy) derive the same id.
inline uint64_t AlertEventId(int64_t user, int64_t a, int64_t b,
                             int32_t epoch) {
  uint64_t h = MixEventBits(static_cast<uint64_t>(user) + 1);
  h = MixEventBits(h ^ static_cast<uint64_t>(a));
  h = MixEventBits(h ^ static_cast<uint64_t>(b));
  h = MixEventBits(h ^ static_cast<uint64_t>(static_cast<int64_t>(epoch)));
  return h;
}

/// Event id of user `user`'s location report for `epoch` — the causal root
/// of everything the report triggers. Domain-separated from alert ids.
inline uint64_t ReportEventId(int64_t user, int32_t epoch) {
  constexpr uint64_t kReportSalt = 0xc2b2ae3d27d4eb4fULL;
  uint64_t h = MixEventBits(kReportSalt ^ static_cast<uint64_t>(user));
  h = MixEventBits(h ^ static_cast<uint64_t>(static_cast<int64_t>(epoch)));
  return h;
}

/// Per-alert detect->deliver latency accounting, driven entirely from the
/// driver thread (detects fire at the engines' serial commit sites, via
/// the serving plane's Alert(); delivers fire in the client runtime's
/// frame handler), so it needs no synchronization of its own.
///
/// Clock-domain segregation mirrors CommStats::server_seconds:
///  - SimNet (virtual time): latencies land in the kDeterministic
///    "net.latency.virtual_s" sketch — a pure function of (workload seed,
///    transport seed), digest-checked across thread counts; with the
///    default zero-latency LinkModel every sample is exactly 0.0, which is
///    what keeps the digest invariant across shard counts too.
///  - UdpNet (wall clock): latencies land in kWallClock sketches,
///    "net.latency.wall_s" globally plus "net.shard<i>.latency_wall_s" for
///    the shard that detected the alert — reported, never digest-compared.
/// The deterministic counter "net.latency.delivered" counts delivered
/// alerts on both paths; it must reconcile with CommStats alerts exactly.
///
/// Each detect also opens a Chrome-trace flow arrow ("alert_flow", id =
/// event id) that the matching deliver closes, stitching the cross-shard
/// hop into one rendered flow.
class AlertLatencyTracker {
 public:
  /// `shard_count` sizes the per-shard wall-clock sketch table.
  AlertLatencyTracker(NetBackend* net, int shard_count);

  /// The serving plane decided an alert: remember when (backend clock) and
  /// where (detecting shard, -1 if unsharded).
  void RecordDetect(uint64_t event_id, int shard);

  /// The client runtime received the alert frame carrying `ctx`.
  void RecordDeliver(const TraceCtx& ctx);

  uint64_t delivered() const { return delivered_; }
  /// Delivers whose event id had no pending detect — 0 in a correct run
  /// (dedup guarantees the handler sees each alert exactly once).
  uint64_t unmatched() const { return unmatched_; }
  /// Detects still awaiting delivery — 0 once the epoch's downlink drains.
  size_t outstanding() const { return pending_.size(); }

 private:
  struct Pending {
    double detect_s = 0.0;
    int shard = -1;
  };

  NetBackend* net_;
  obs::Counter& delivered_counter_;
  obs::QuantileMetric& virtual_sketch_;
  obs::QuantileMetric& wall_sketch_;
  std::vector<obs::QuantileMetric*> shard_wall_sketches_;
  std::map<uint64_t, Pending> pending_;
  uint64_t delivered_ = 0;
  uint64_t unmatched_ = 0;
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_LATENCY_H_
