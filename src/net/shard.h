#ifndef PROXDET_NET_SHARD_H_
#define PROXDET_NET_SHARD_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/spatial_index.h"
#include "graph/interest_graph.h"
#include "net/latency.h"
#include "net/transport.h"

namespace proxdet {
namespace net {

/// Consistent-hash ring mapping UserId -> shard. Each shard contributes
/// `vnodes` virtual nodes at deterministic hash positions; a user lands on
/// the first vnode clockwise of its own hash. Fully deterministic (no
/// ambient randomness): the assignment is a pure function of
/// (shards, vnodes), identical across runs and platforms. Adding a shard
/// moves only the keys that fall into the new shard's vnode arcs — the
/// consistent-hashing property the serving plane relies on for smooth
/// repartitioning.
class HashRing {
 public:
  HashRing(int shards, int vnodes);

  int ShardOf(UserId u) const;

  /// Deterministic owner of pair (a, b): the home shard of the smaller
  /// endpoint. Pair-scoped messages (alerts, match notices) originate at the
  /// owner and are relayed over the mesh when the target user lives
  /// elsewhere.
  int OwnerOf(UserId a, UserId b) const { return ShardOf(a < b ? a : b); }

  int shard_count() const { return shards_; }

 private:
  int shards_;
  /// Sorted (vnode hash, shard) points; ties broken by shard index at
  /// construction (hash collisions across vnode labels are possible in
  /// principle, never ambiguous in effect).
  std::vector<std::pair<uint64_t, int>> ring_;
};

/// The sharded serving plane: `config.shards` ProtocolServer partitions on
/// one SimNet, each with a client-facing endpoint and a mesh endpoint, plus
/// every ClientRuntime. Users are assigned to shards by the HashRing; all
/// uplink and downlink for a user flows through its home shard.
///
/// Cross-shard pairs follow the owner rule (HashRing::OwnerOf): the owner
/// shard originates pair-scoped downlink and needs the non-resident
/// endpoint's location, so every report fans out as a windowless location
/// digest (ShardForwardMsg) to each shard owning one of the reporter's
/// cross-shard pairs. Alerts/match notices for a user homed away from the
/// owner are relayed over the mesh to the home shard, which delivers them.
///
/// Two delivery disciplines, bit-exact in everything the engines observe:
///  - unbatched: every message is its own framed, acked, stop-and-wait
///    exchange (the historical schedule; shards == 1 reproduces the
///    single-server byte stream exactly).
///  - batched (config.batch_downlink): per-client downlink of one epoch is
///    coalesced into a single kBatch frame flushed at the EndEpoch barrier
///    (probes flush immediately — the engine blocks on the probed report).
///    Mesh traffic batches per shard pair the same way.
///
/// Everything the wire carries is verified against the engine's intent:
/// digests are checked at the owner against the position the server
/// decoded, relayed notices against the bytes the owner queued, and each
/// touched client's decoded state (install counts, final region, final
/// match) against per-user expectation trackers at every flush point. Any
/// mismatch marks the run failed / codec-inexact — the sharded plane has no
/// silent divergence mode.
class SocketServer;
class StatsServer;

class ShardedFrontend {
 public:
  ShardedFrontend(const World& world, const NetConfig& config);
  ~ShardedFrontend();

  // ClientLink-shaped surface (TransportLink delegates 1:1).
  void Report(UserId u, int epoch, size_t window_len, Vec2* position,
              std::vector<Vec2>* window);
  void Probe(UserId u, int epoch);
  void Alert(UserId u, UserId a, UserId b, int epoch);
  void InstallRegion(UserId u, int epoch, const SafeRegionShape& region);
  void InstallMatch(UserId u, int epoch, MatchOp op, UserId a, UserId b,
                    const Circle& region);
  void EndEpoch(int epoch);

  NetRunStats Stats() const;
  std::vector<AlertEvent> ClientAlerts() const;

  const ClientRuntime& client(UserId u) const { return *clients_[u]; }
  /// The deterministic backend, or nullptr when the run rides real sockets.
  const SimNet* sim_net() const { return sim_net_.get(); }
  /// The real-socket substrate, or nullptr on the SimNet path.
  const SocketServer* socket_server() const { return socket_server_.get(); }
  const HashRing& ring() const { return ring_; }
  int home_shard(UserId u) const { return home_[u]; }
  /// The run's latency tracker, or nullptr when NetConfig::trace is off.
  const AlertLatencyTracker* latency_tracker() const { return latency_.get(); }
  /// Bound port of the live introspection endpoint, or -1 when disabled.
  int stats_port() const;

  /// The shard's uniform-grid index over the last decoded report position
  /// of each *owned* user (foreign users never enter it — cross-shard
  /// digests stay in the digest store). Serving-plane reads (e.g. future
  /// shard-local candidate enumeration) query this instead of scanning the
  /// partition; shard_test pins its contents to the decoded reports.
  const UniformGridIndex& shard_index(int shard) const {
    return shards_[shard].index;
  }

 private:
  /// One serving partition: the client-facing ProtocolServer plus the mesh
  /// endpoint for shard-to-shard digests and relays.
  struct Shard {
    std::unique_ptr<ProtocolServer> server;
    std::unique_ptr<ReliableEndpoint> mesh;
    int mesh_id = -1;
    std::vector<UserId> users;  // Sorted; the ring partition.
    /// Owned users' last decoded report positions, bucketed by cell
    /// (incrementally upserted as reports decode; cell size anchored to
    /// the interest graph's largest alert radius).
    UniformGridIndex index;
  };

  /// What the engine has told this client so far — updated at engine-call
  /// time, compared against the client's decoded state at flush points.
  struct ClientExpect {
    uint64_t probes = 0;
    uint64_t alerts = 0;
    uint64_t regions = 0;
    uint64_t matches = 0;
    std::optional<SafeRegionShape> region;
    std::optional<Circle> match;
    bool match_known = false;  // InstallMatch seen at least once.
  };

  /// One queued downlink message for a client (batch mode), with the trace
  /// context it will carry on the wire (hops pre-set to the delivered
  /// value, so batched and unbatched runs stamp identical contexts).
  struct PendingItem {
    MsgKind kind;
    std::vector<uint8_t> payload;
    bool traced = false;
    TraceCtx ctx;
  };

  /// One queued mesh message (batch mode), with the context its mesh-leg
  /// frame carries.
  struct MeshItem {
    ShardForwardMsg fwd;
    bool traced = false;
    TraceCtx ctx;
  };

  void ApplyGraphUpdates(int epoch);
  /// Fan the freshly decoded report out as location digests to every shard
  /// owning one of u's cross-shard pairs; `ctx` is the report frame's trace
  /// context (nullptr when untraced) and rides the digest mesh frames with
  /// its hop count advanced.
  void ForwardDigests(const LocationReportMsg& msg, const TraceCtx* ctx);
  /// Queue (batched) or immediately deliver (unbatched) one downlink
  /// message for user u from its home shard; `ctx` (nullptr = untraced)
  /// must already carry the delivered hop count.
  void Downlink(UserId u, MsgKind kind, std::vector<uint8_t> payload,
                const TraceCtx* ctx);
  /// Route one pair-scoped message: owner delivers directly when it homes
  /// u, otherwise relays over the mesh (and, batched, direct-appends to the
  /// home queue so per-client order matches the engine for every shard
  /// count, with the mesh copy verified on receipt). `ctx`'s hops field is
  /// ignored: the route sets it per leg (1 for a direct delivery, 1 on the
  /// mesh leg and 2 on the relayed delivery).
  void PairDownlink(UserId u, UserId a, UserId b, MsgKind kind,
                    std::vector<uint8_t> payload, const TraceCtx* ctx);
  void SendMesh(int from_shard, int to_shard, const ShardForwardMsg& fwd,
                const TraceCtx* ctx);
  void OnMeshFrame(int shard, int src, Frame&& frame);
  void HandleMeshMessage(int shard, int src, const ShardForwardMsg& fwd,
                         const TraceCtx* ctx);
  /// Flush u's queued downlink: one plain frame for a single item, one
  /// kBatch frame otherwise. No-op when the queue is empty.
  void FlushClient(UserId u);
  void FlushMesh(int from_shard);
  /// Compare u's decoded client state against its expectation tracker.
  void VerifyClient(UserId u);

  const World& world_;
  NetConfig config_;
  HashRing ring_;
  /// Exactly one backend is live per run; net_ is the polymorphic view the
  /// rest of the frontend drives. Declared before the endpoints below so
  /// destruction tears the endpoints down first, then the substrate (for
  /// UDP that joins the loop threads; handlers only ever ran on the driver
  /// thread, so no handler can be in flight by then).
  std::unique_ptr<SimNet> sim_net_;
  std::unique_ptr<SocketServer> socket_server_;
  NetBackend* net_ = nullptr;
  std::vector<std::unique_ptr<ClientRuntime>> clients_;
  std::vector<Shard> shards_;
  std::vector<int> home_;  // UserId -> shard.

  /// Current interest graph (initial graph + scheduled updates applied
  /// through the current epoch) — the digest fan-out's adjacency source.
  InterestGraph graph_;
  size_t next_update_ = 0;

  /// Owner-side digest store and its expectation: (shard, user) -> last
  /// digest received / last digest the system should have sent.
  std::map<std::pair<int, UserId>, LocationReportMsg> digests_;
  std::map<std::pair<int, UserId>, LocationReportMsg> expected_digests_;
  uint64_t digests_outstanding_ = 0;

  /// Relayed-notice verification: per (owner, home) multiset of encoded
  /// ShardForwardMsg payloads in flight (jitter may reorder mesh frames, so
  /// matching is by content, not position).
  std::map<std::pair<int, int>, std::multiset<std::vector<uint8_t>>>
      expected_relays_;

  // Batch mode queues.
  std::vector<std::vector<PendingItem>> client_queue_;        // By UserId.
  std::vector<std::vector<std::vector<MeshItem>>> mesh_queue_;
  std::vector<ClientExpect> expect_;
  std::set<UserId> touched_;  // Clients with traffic this epoch.

  /// Per-alert detect->deliver accounting (NetConfig::trace runs only).
  std::unique_ptr<AlertLatencyTracker> latency_;
  /// Live introspection endpoint (NetConfig::stats_port >= 0 runs only).
  std::unique_ptr<StatsServer> stats_server_;

  // Accounting (see NetRunStats).
  uint64_t batch_frames_ = 0;
  uint64_t batch_messages_ = 0;
  uint64_t batch_saved_bytes_ = 0;
  uint64_t compressed_installs_ = 0;
  uint64_t compress_skipped_ = 0;
  uint64_t compress_saved_bytes_ = 0;
  uint64_t compress_mismatch_ = 0;
  bool failed_ = false;
  bool codec_exact_ = true;
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_SHARD_H_
