#ifndef PROXDET_NET_SIM_NET_H_
#define PROXDET_NET_SIM_NET_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/backend.h"
#include "net/reliability.h"
#include "net/wire.h"

namespace proxdet {
namespace net {

/// Per-direction link impairment model. All randomness (jitter draw, drop
/// coin, duplicate coin) comes from SimNet's single seeded Rng, drawn in
/// Send-call order — so a given seed yields one exact delivery schedule.
struct LinkModel {
  double latency_s = 0.0;  // Fixed one-way propagation delay.
  double jitter_s = 0.0;   // Additional uniform [0, jitter_s) per copy.
  double drop_rate = 0.0;  // P(copy never arrives).
  double dup_rate = 0.0;   // P(a second, independently-jittered copy).
};

/// One transmission outcome, for the determinism log (optional; the running
/// schedule_hash() covers the same information without the memory).
struct DeliveryRecord {
  double send_time = 0.0;
  double deliver_time = 0.0;  // Meaningless when dropped.
  int src = -1;
  int dst = -1;
  uint32_t frame_hash = 0;  // FNV-1a of the frame bytes.
  bool dropped = false;
  bool duplicate = false;  // This copy was spawned by the dup model.
};

/// Deterministic event-driven NetBackend. Endpoints are small integers;
/// frames are opaque byte vectors; time is virtual seconds, advanced only
/// by the event queue. Events are ordered by (time, insertion id), so ties
/// break deterministically and two runs with the same seed and the same
/// Send/Schedule call sequence produce byte-identical delivery schedules
/// (verified via schedule_hash()). This is the correctness oracle for the
/// real-socket backend in net/socket/.
///
/// Single-threaded by design: the epoch-synchronous engines drive it from
/// their serial commit sections, so it needs no locks even when the
/// surrounding detector scans fan out over the thread pool.
class SimNet : public NetBackend {
 public:
  explicit SimNet(uint64_t seed) : rng_(seed) {}

  /// Registers an endpoint; returns its id (dense, starting at 0). The
  /// placement `group` is meaningless in-process and ignored.
  using NetBackend::AddEndpoint;
  int AddEndpoint(Handler handler, int group) override;

  /// Link model lookup by (src, dst); defaults to a perfect link. The
  /// transport installs a classifier that maps client->server to the "up"
  /// model and server->client to the "down" model.
  void SetLinkModelFn(std::function<LinkModel(int src, int dst)> fn) {
    link_model_ = std::move(fn);
  }

  /// Transmits `frame` from src to dst through the (src, dst) link model:
  /// possibly dropped, possibly duplicated, delivered at
  /// now + latency + jitter. Safe to call from inside a handler.
  void Send(int src, int dst, std::vector<uint8_t> frame) override;

  /// Schedules `fn` to run at now + delay_s (retry timers).
  void Schedule(double delay_s, std::function<void()> fn) override;

  /// Cancellable timers with *eager* semantics: a cancelled timer event is
  /// skipped by RunUntilIdle without advancing virtual time. This matters
  /// for latency accounting — a retransmit timer retired by an ack must not
  /// drag now() forward to the retry deadline, or detect->deliver virtual
  /// latencies would depend on how many acked exchanges happen to be in
  /// flight (and hence on the shard count).
  uint64_t ScheduleCancelable(double delay_s,
                              std::function<void()> fn) override;
  void CancelTimer(uint64_t token) override;

  /// Runs events in timestamp order until the queue is empty. Handlers and
  /// timers may enqueue more work; the loop drains it all.
  void RunUntilIdle() override;

  double now() const override { return now_; }

  // Wire counters (all copies that physically entered a link).
  uint64_t frames_offered() const override { return frames_offered_; }
  uint64_t frames_dropped() const override { return frames_dropped_; }
  uint64_t frames_duplicated() const override { return frames_duplicated_; }

  /// Running FNV-1a hash over every transmission outcome (send time,
  /// deliver time, endpoints, frame bytes, drop/dup flags). Two runs with
  /// identical hashes experienced byte-identical delivery schedules.
  uint64_t schedule_hash() const override { return schedule_hash_; }

  /// When enabled, every transmission outcome is appended to log().
  void set_record_log(bool on) { record_log_ = on; }
  const std::vector<DeliveryRecord>& log() const { return log_; }

 private:
  struct Event {
    double time = 0.0;
    uint64_t id = 0;  // Insertion order; the deterministic tie-break.
    int src = -1;
    int dst = -1;
    std::vector<uint8_t> frame;        // Delivery events.
    std::function<void()> timer;       // Timer events (frame empty).
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  void PushEvent(Event e);
  Event PopEvent();
  void MixHash(uint64_t v);
  void RecordOutcome(const DeliveryRecord& r);

  Rng rng_;
  std::vector<Handler> handlers_;
  std::function<LinkModel(int, int)> link_model_;
  std::vector<Event> heap_;  // Binary min-heap under EventAfter.
  // Event ids of cancelled (but still heap-resident) timers; tokens are
  // event id + 1 so 0 stays the "not cancellable" sentinel of the base API.
  std::unordered_set<uint64_t> cancelled_timers_;
  uint64_t next_event_id_ = 0;
  double now_ = 0.0;
  uint64_t frames_offered_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t schedule_hash_ = 14695981039346656037ULL;  // FNV-1a 64 offset.
  bool record_log_ = false;
  std::vector<DeliveryRecord> log_;
};

}  // namespace net
}  // namespace proxdet

#endif  // PROXDET_NET_SIM_NET_H_
