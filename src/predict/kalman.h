#ifndef PROXDET_PREDICT_KALMAN_H_
#define PROXDET_PREDICT_KALMAN_H_

#include "predict/predictor.h"

namespace proxdet {

/// Standalone constant-velocity Kalman filter over state [x, y, vx, vy] with
/// position-only measurements. Usable on its own for tracking; the
/// KalmanPredictor below wraps it for the Predictor interface.
///
/// Internals are fixed row-major 4x4 / 4-vector arrays (no Matrix heap
/// allocations — the stripe builder replays a window through a fresh filter
/// on every rebuild) and the time update runs through the dispatched
/// simd::KalmanPredict4 kernel. Both are bit-exact with the original
/// common/linalg formulation: the kernel replicates Matrix::Apply's
/// accumulation order and Matrix::operator*'s zero-skip semantics.
class KalmanFilter2D {
 public:
  /// `dt`: seconds between measurements. `process_noise` (sigma_a, m/s^2)
  /// scales the white-acceleration process model; `measurement_noise`
  /// (meters) is the GPS fix standard deviation.
  KalmanFilter2D(double dt, double process_noise, double measurement_noise);

  /// Resets the filter around an initial position with unknown velocity.
  void Reset(const Vec2& position);

  /// Time update: propagates state and covariance one tick.
  void PredictStep();

  /// Measurement update with an observed position.
  void UpdateStep(const Vec2& measurement);

  Vec2 position() const;
  Vec2 velocity() const;

  /// Runs `steps` pure time-updates from the current state without mutating
  /// the filter; returns the predicted positions.
  std::vector<Vec2> Forecast(size_t steps) const;

  bool initialized() const { return initialized_; }

 private:
  double dt_;
  double f_[16];     // State transition (4x4, row-major).
  double q_[16];     // Process noise covariance (4x4, row-major).
  double r_;         // Measurement noise variance (per axis).
  double state_[4];  // [x, y, vx, vy]
  double p_[16];     // State covariance (4x4, row-major).
  bool initialized_ = false;
};

/// Predictor adapter: replays the recent window through a fresh filter
/// (predict+update per sample, Sec. III-B), then forecasts `steps` ticks.
class KalmanPredictor : public Predictor {
 public:
  KalmanPredictor(double dt, double process_noise, double measurement_noise)
      : dt_(dt),
        process_noise_(process_noise),
        measurement_noise_(measurement_noise) {}

  std::vector<Vec2> Predict(const std::vector<Vec2>& recent,
                            size_t steps) override;

  std::string name() const override { return "KF"; }

 private:
  double dt_;
  double process_noise_;
  double measurement_noise_;
};

}  // namespace proxdet

#endif  // PROXDET_PREDICT_KALMAN_H_
