#ifndef PROXDET_PREDICT_LINEAR_PREDICTOR_H_
#define PROXDET_PREDICT_LINEAR_PREDICTOR_H_

#include "predict/predictor.h"

namespace proxdet {

/// Constant-velocity extrapolation: the velocity is the average of the last
/// `velocity_window` per-tick displacements. This is exactly the linear
/// motion assumption FMD/CMD [19] bake into their mobile regions, exposed
/// here as a predictor so the stripe machinery can also be driven by it.
class LinearPredictor : public Predictor {
 public:
  explicit LinearPredictor(size_t velocity_window = 3)
      : velocity_window_(velocity_window) {}

  std::vector<Vec2> Predict(const std::vector<Vec2>& recent,
                            size_t steps) override;

  std::string name() const override { return "Linear"; }

 private:
  size_t velocity_window_;
};

}  // namespace proxdet

#endif  // PROXDET_PREDICT_LINEAR_PREDICTOR_H_
