#ifndef PROXDET_PREDICT_EVALUATOR_H_
#define PROXDET_PREDICT_EVALUATOR_H_

#include "common/rng.h"
#include "predict/predictor.h"

namespace proxdet {

/// Accuracy/latency report for one (model, dataset, horizon) combination —
/// the measurements behind Figure 7.
struct PredictionEvaluation {
  /// Mean Euclidean error (meters) over all query points and horizon steps.
  double mean_error_m = 0.0;
  /// Mean error at each horizon step (size = output length).
  std::vector<double> per_step_error_m;
  /// Mean wall-clock time per Predict() call, microseconds.
  double mean_predict_time_us = 0.0;
  size_t query_count = 0;
};

/// Evaluates `predictor` on `test` trajectories: draws up to `max_queries`
/// random (trajectory, anchor) pairs, feeds the `input_len` most recent
/// points and compares the `output_len` predictions with ground truth.
PredictionEvaluation EvaluatePredictor(Predictor* predictor,
                                       const std::vector<Trajectory>& test,
                                       size_t input_len, size_t output_len,
                                       size_t max_queries, Rng* rng);

/// Estimates the cost-model sigma for a model on a dataset: the per-step
/// prediction error is assumed ~ |N(0, sigma^2)| (Sec. V-A), for which
/// E|X| = sigma * sqrt(2/pi); we invert the empirical mean error over the
/// first `horizon` steps.
double CalibrateSigma(Predictor* predictor, const std::vector<Trajectory>& test,
                      size_t input_len, size_t horizon, size_t max_queries,
                      Rng* rng);

/// Estimates the sigma that matters for the *time-independent* stripe
/// (Sec. V-A): the cross-track error — the distance from each true future
/// position to the predicted *path* (polyline), not to the per-step
/// predicted point. A user who follows the predicted road slower or faster
/// than assumed has a large point error but stays in the stripe; this
/// calibration reflects that.
double CalibrateCrossTrackSigma(Predictor* predictor,
                                const std::vector<Trajectory>& test,
                                size_t input_len, size_t horizon,
                                size_t max_queries, Rng* rng);

/// Horizon-resolved calibration: element j-1 is the cross-track sigma of
/// the j-th predicted step. Prediction error grows with lookahead, so a
/// stripe enclosing 3 steps deserves a much smaller radius than one
/// enclosing 20 — Algorithm 2 consumes this vector to trade length against
/// thickness per candidate m.
std::vector<double> CalibrateCrossTrackSigmaPerStep(
    Predictor* predictor, const std::vector<Trajectory>& test,
    size_t input_len, size_t horizon, size_t max_queries, Rng* rng);

}  // namespace proxdet

#endif  // PROXDET_PREDICT_EVALUATOR_H_
