#ifndef PROXDET_PREDICT_PREDICTOR_H_
#define PROXDET_PREDICT_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "geom/vec2.h"
#include "traj/trajectory.h"

namespace proxdet {

/// A trajectory prediction model. The paper treats prediction as a black
/// box (Sec. V): any technique that maps a recent window of locations to a
/// sequence of future locations can drive the predictive safe region.
///
/// `Train` is the offline phase (the paper trains on 1,600 synchronized
/// timestamps of 10K objects); models without a training phase (Linear,
/// Kalman, RMF) ignore it. `Predict` must be a pure function of the trained
/// state and its arguments: no member mutation, no call-order dependence.
/// Stochastic models derive any randomness from a per-call Rng seeded by
/// the model seed and the query (see R2-D2). This makes concurrent Predict
/// calls on a shared trained model both safe and deterministic — the
/// parallel calibration and evaluation paths (src/exec) rely on it.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Offline training on historical trajectories sampled at the same tick
  /// as the prediction queries.
  virtual void Train(const std::vector<Trajectory>& history);

  /// Predicts the next `steps` locations (one per tick) given the recent
  /// window `recent`, ordered oldest-to-newest with the current location
  /// last. Must return exactly `steps` points; `recent` is non-empty.
  virtual std::vector<Vec2> Predict(const std::vector<Vec2>& recent,
                                    size_t steps) = 0;

  virtual std::string name() const = 0;
};

/// The model families evaluated in Sec. VI-B.
enum class PredictorKind {
  kLinear,  // Constant velocity; the assumption behind FMD/CMD [19].
  kRmf,     // Recursive motion function, Tao et al. [15].
  kKalman,  // Constant-velocity Kalman filter [20].
  kHmm,     // Discrete hidden Markov model [13].
  kR2d2,    // Semi-lazy reference-trajectory model, Zhou et al. [23].
};

std::vector<PredictorKind> AllPredictorKinds();
std::string PredictorName(PredictorKind kind);

/// Dataset-independent default construction. `tick_seconds` is the sampling
/// interval; `seed` feeds stochastic models (R2-D2's particle filter).
std::unique_ptr<Predictor> MakePredictor(PredictorKind kind,
                                         double tick_seconds, uint64_t seed);

}  // namespace proxdet

#endif  // PROXDET_PREDICT_PREDICTOR_H_
