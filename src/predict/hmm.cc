#include "predict/hmm.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "geom/polyline.h"
#include "predict/linear_predictor.h"

namespace proxdet {

GridQuantizer::GridQuantizer(const BBox& extent, int rows, int cols)
    : extent_(extent), rows_(rows), cols_(cols) {}

int GridQuantizer::CellOf(const Vec2& p) const {
  const Vec2 q = extent_.Clamp(p);
  const double w = std::max(extent_.Width(), 1e-9);
  const double h = std::max(extent_.Height(), 1e-9);
  int col = static_cast<int>((q.x - extent_.lo.x) / w * cols_);
  int row = static_cast<int>((q.y - extent_.lo.y) / h * rows_);
  col = std::clamp(col, 0, cols_ - 1);
  row = std::clamp(row, 0, rows_ - 1);
  return row * cols_ + col;
}

Vec2 GridQuantizer::CenterOf(int cell) const {
  const int row = cell / cols_;
  const int col = cell % cols_;
  const double cw = extent_.Width() / cols_;
  const double ch = extent_.Height() / rows_;
  return {extent_.lo.x + (col + 0.5) * cw, extent_.lo.y + (row + 0.5) * ch};
}

DiscreteHmm::DiscreteHmm(int num_hidden, int num_observations, uint64_t seed)
    : num_hidden_(num_hidden), num_observations_(num_observations) {
  Rng rng(seed);
  auto random_stochastic = [&rng](std::vector<double>* v, size_t rows,
                                  size_t cols) {
    v->resize(rows * cols);
    for (size_t r = 0; r < rows; ++r) {
      double total = 0.0;
      for (size_t c = 0; c < cols; ++c) {
        const double x = 0.5 + rng.NextDouble();
        (*v)[r * cols + c] = x;
        total += x;
      }
      for (size_t c = 0; c < cols; ++c) (*v)[r * cols + c] /= total;
    }
  };
  random_stochastic(&pi_, 1, num_hidden_);
  random_stochastic(&a_, num_hidden_, num_hidden_);
  random_stochastic(&b_, num_hidden_, num_observations_);
}

void DiscreteHmm::Forward(const std::vector<int>& seq,
                          std::vector<double>* alpha,
                          std::vector<double>* scale) const {
  const size_t t_len = seq.size();
  const int h = num_hidden_;
  alpha->assign(t_len * h, 0.0);
  scale->assign(t_len, 0.0);
  double c0 = 0.0;
  for (int i = 0; i < h; ++i) {
    const double v = pi_[i] * b_[static_cast<size_t>(i) * num_observations_ + seq[0]];
    (*alpha)[i] = v;
    c0 += v;
  }
  (*scale)[0] = c0 > 0.0 ? 1.0 / c0 : 1.0;
  for (int i = 0; i < h; ++i) (*alpha)[i] *= (*scale)[0];
  for (size_t t = 1; t < t_len; ++t) {
    double ct = 0.0;
    for (int j = 0; j < h; ++j) {
      double acc = 0.0;
      for (int i = 0; i < h; ++i) {
        acc += (*alpha)[(t - 1) * h + i] * a_[static_cast<size_t>(i) * h + j];
      }
      const double v =
          acc * b_[static_cast<size_t>(j) * num_observations_ + seq[t]];
      (*alpha)[t * h + j] = v;
      ct += v;
    }
    (*scale)[t] = ct > 0.0 ? 1.0 / ct : 1.0;
    for (int j = 0; j < h; ++j) (*alpha)[t * h + j] *= (*scale)[t];
  }
}

void DiscreteHmm::Backward(const std::vector<int>& seq,
                           const std::vector<double>& scale,
                           std::vector<double>* beta) const {
  const size_t t_len = seq.size();
  const int h = num_hidden_;
  beta->assign(t_len * h, 0.0);
  for (int i = 0; i < h; ++i) (*beta)[(t_len - 1) * h + i] = scale[t_len - 1];
  for (size_t t = t_len - 1; t-- > 0;) {
    for (int i = 0; i < h; ++i) {
      double acc = 0.0;
      for (int j = 0; j < h; ++j) {
        acc += a_[static_cast<size_t>(i) * h + j] *
               b_[static_cast<size_t>(j) * num_observations_ + seq[t + 1]] *
               (*beta)[(t + 1) * h + j];
      }
      (*beta)[t * h + i] = acc * scale[t];
    }
  }
}

void DiscreteHmm::Train(const std::vector<std::vector<int>>& sequences,
                        int iterations) {
  const int h = num_hidden_;
  const int o = num_observations_;
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<double> pi_acc(h, 1e-8);
    std::vector<double> a_num(static_cast<size_t>(h) * h, 1e-8);
    std::vector<double> a_den(h, 1e-8 * h);
    std::vector<double> b_num(static_cast<size_t>(h) * o, 1e-8);
    std::vector<double> b_den(h, 1e-8 * o);
    for (const auto& seq : sequences) {
      if (seq.size() < 2) continue;
      std::vector<double> alpha, scale, beta;
      Forward(seq, &alpha, &scale);
      Backward(seq, scale, &beta);
      const size_t t_len = seq.size();
      for (size_t t = 0; t < t_len; ++t) {
        // gamma_t(i) proportional to alpha_t(i) * beta_t(i) / scale_t.
        double norm = 0.0;
        for (int i = 0; i < h; ++i) {
          norm += alpha[t * h + i] * beta[t * h + i] / scale[t];
        }
        if (norm <= 0.0) continue;
        for (int i = 0; i < h; ++i) {
          const double gamma = alpha[t * h + i] * beta[t * h + i] /
                               (scale[t] * norm);
          if (t == 0) pi_acc[i] += gamma;
          b_num[static_cast<size_t>(i) * o + seq[t]] += gamma;
          b_den[i] += gamma;
          if (t + 1 < t_len) a_den[i] += gamma;
        }
        if (t + 1 < t_len) {
          // xi_t(i, j): expected transitions.
          double xi_norm = 0.0;
          for (int i = 0; i < h; ++i) {
            for (int j = 0; j < h; ++j) {
              xi_norm += alpha[t * h + i] * a_[static_cast<size_t>(i) * h + j] *
                         b_[static_cast<size_t>(j) * o + seq[t + 1]] *
                         beta[(t + 1) * h + j];
            }
          }
          if (xi_norm > 0.0) {
            for (int i = 0; i < h; ++i) {
              for (int j = 0; j < h; ++j) {
                const double xi =
                    alpha[t * h + i] * a_[static_cast<size_t>(i) * h + j] *
                    b_[static_cast<size_t>(j) * o + seq[t + 1]] *
                    beta[(t + 1) * h + j] / xi_norm;
                a_num[static_cast<size_t>(i) * h + j] += xi;
              }
            }
          }
        }
      }
    }
    // M step.
    double pi_total = 0.0;
    for (double v : pi_acc) pi_total += v;
    for (int i = 0; i < h; ++i) pi_[i] = pi_acc[i] / pi_total;
    for (int i = 0; i < h; ++i) {
      for (int j = 0; j < h; ++j) {
        a_[static_cast<size_t>(i) * h + j] =
            a_num[static_cast<size_t>(i) * h + j] / a_den[i];
      }
      for (int ob = 0; ob < o; ++ob) {
        b_[static_cast<size_t>(i) * o + ob] =
            b_num[static_cast<size_t>(i) * o + ob] / b_den[i];
      }
    }
  }
}

double DiscreteHmm::LogLikelihood(const std::vector<int>& sequence) const {
  if (sequence.empty()) return 0.0;
  std::vector<double> alpha, scale;
  Forward(sequence, &alpha, &scale);
  double ll = 0.0;
  for (double c : scale) ll -= std::log(c);
  return ll;
}

std::vector<double> DiscreteHmm::Posterior(
    const std::vector<int>& sequence) const {
  std::vector<double> alpha, scale;
  Forward(sequence, &alpha, &scale);
  const size_t t_last = sequence.size() - 1;
  std::vector<double> post(num_hidden_);
  double total = 0.0;
  for (int i = 0; i < num_hidden_; ++i) {
    post[i] = alpha[t_last * num_hidden_ + i];
    total += post[i];
  }
  if (total > 0.0) {
    for (double& v : post) v /= total;
  }
  return post;
}

std::vector<double> DiscreteHmm::PredictObservation(
    std::vector<double> posterior, int steps_ahead) const {
  const int h = num_hidden_;
  for (int s = 0; s < steps_ahead; ++s) {
    std::vector<double> next(h, 0.0);
    for (int i = 0; i < h; ++i) {
      for (int j = 0; j < h; ++j) {
        next[j] += posterior[i] * a_[static_cast<size_t>(i) * h + j];
      }
    }
    posterior.swap(next);
  }
  std::vector<double> obs(num_observations_, 0.0);
  for (int i = 0; i < h; ++i) {
    for (int ob = 0; ob < num_observations_; ++ob) {
      obs[ob] += posterior[i] * b_[static_cast<size_t>(i) * num_observations_ + ob];
    }
  }
  return obs;
}

HmmPredictor::HmmPredictor(int grid_rows, int grid_cols)
    : grid_rows_(grid_rows), grid_cols_(grid_cols) {}

void HmmPredictor::Train(const std::vector<Trajectory>& history) {
  BBox extent{{0, 0}, {0, 0}};
  bool first = true;
  for (const Trajectory& traj : history) {
    for (const Vec2& p : traj.points()) {
      if (first) {
        extent = BBox{p, p};
        first = false;
      } else {
        extent.Extend(p);
      }
    }
  }
  if (first) return;  // No data.
  quantizer_ = GridQuantizer(extent, grid_rows_, grid_cols_);
  order1_.clear();
  order2_.clear();
  const int c = quantizer_.cell_count();
  for (const Trajectory& traj : history) {
    int prev = -1;
    int cur = -1;
    for (const Vec2& p : traj.points()) {
      const int cell = quantizer_.CellOf(p);
      if (cell == cur) continue;  // Dwell inside a cell: no transition.
      if (cur >= 0) {
        order1_[cur][cell] += 1.0;
        if (prev >= 0) {
          order2_[static_cast<int64_t>(prev) * c + cur][cell] += 1.0;
        }
      }
      prev = cur;
      cur = cell;
    }
  }
  trained_ = true;
}

int HmmPredictor::MostLikelyNext(int prev_cell, int cur_cell) const {
  const int c = quantizer_.cell_count();
  if (prev_cell >= 0) {
    const auto it = order2_.find(static_cast<int64_t>(prev_cell) * c + cur_cell);
    if (it != order2_.end() && !it->second.empty()) {
      const auto best = std::max_element(
          it->second.begin(), it->second.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      return best->first;
    }
  }
  const auto it = order1_.find(cur_cell);
  if (it != order1_.end() && !it->second.empty()) {
    const auto best = std::max_element(
        it->second.begin(), it->second.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    return best->first;
  }
  return -1;
}

std::vector<Vec2> HmmPredictor::Predict(const std::vector<Vec2>& recent,
                                        size_t steps) {
  if (!trained_ || recent.empty()) {
    return LinearPredictor().Predict(recent, steps);
  }
  // Recent cells (deduplicated) provide the second-order context.
  int cur = quantizer_.CellOf(recent.back());
  int prev = -1;
  for (size_t i = recent.size(); i-- > 0;) {
    const int cell = quantizer_.CellOf(recent[i]);
    if (cell != cur) {
      prev = cell;
      break;
    }
  }
  // Most-probable cell path, long enough to cover the horizon at the
  // user's recent speed.
  double speed_per_tick = 0.0;
  if (recent.size() >= 2) {
    speed_per_tick = Distance(recent.front(), recent.back()) /
                     static_cast<double>(recent.size() - 1);
  }
  const double needed = speed_per_tick * static_cast<double>(steps);
  std::vector<Vec2> path_pts{recent.back()};
  double path_len = 0.0;
  int p = prev, q = cur;
  // Cap the walk so cycles in the transition graph terminate.
  const int max_cells = static_cast<int>(steps) + 4;
  for (int k = 0; k < max_cells && path_len < needed + 1e-9; ++k) {
    const int next = MostLikelyNext(p, q);
    if (next < 0 || next == q) break;
    const Vec2 center = quantizer_.CenterOf(next);
    path_len += Distance(path_pts.back(), center);
    path_pts.push_back(center);
    p = q;
    q = next;
  }
  if (path_pts.size() < 2) {
    // No transition knowledge: predict dwell at the current location.
    return std::vector<Vec2>(steps, recent.back());
  }
  // Resample the cell-center path at the user's speed, one point per tick.
  Polyline path(std::move(path_pts));
  std::vector<Vec2> out;
  out.reserve(steps);
  for (size_t j = 1; j <= steps; ++j) {
    out.push_back(path.PointAtArcLength(speed_per_tick * static_cast<double>(j)));
  }
  return out;
}

}  // namespace proxdet
