#include "predict/evaluator.h"

#include <cmath>

#include "common/timer.h"
#include "geom/polyline.h"

namespace proxdet {

PredictionEvaluation EvaluatePredictor(Predictor* predictor,
                                       const std::vector<Trajectory>& test,
                                       size_t input_len, size_t output_len,
                                       size_t max_queries, Rng* rng) {
  PredictionEvaluation eval;
  eval.per_step_error_m.assign(output_len, 0.0);
  double total_error = 0.0;
  double total_time_us = 0.0;
  size_t total_points = 0;
  size_t queries = 0;
  for (size_t attempt = 0; attempt < max_queries * 4 && queries < max_queries;
       ++attempt) {
    const Trajectory& traj = test[rng->NextIndex(test.size())];
    if (traj.size() < input_len + output_len + 1) continue;
    const size_t anchor = input_len - 1 +
        rng->NextIndex(traj.size() - input_len - output_len);
    const std::vector<Vec2> recent = traj.RecentWindow(anchor, input_len);
    WallTimer timer;
    const std::vector<Vec2> predicted = predictor->Predict(recent, output_len);
    total_time_us += timer.ElapsedSeconds() * 1e6;
    for (size_t j = 0; j < output_len; ++j) {
      const double err = Distance(predicted[j], traj.at(anchor + 1 + j));
      eval.per_step_error_m[j] += err;
      total_error += err;
      ++total_points;
    }
    ++queries;
  }
  eval.query_count = queries;
  if (queries > 0) {
    eval.mean_predict_time_us = total_time_us / static_cast<double>(queries);
    for (double& e : eval.per_step_error_m) e /= static_cast<double>(queries);
  }
  if (total_points > 0) {
    eval.mean_error_m = total_error / static_cast<double>(total_points);
  }
  return eval;
}

double CalibrateSigma(Predictor* predictor, const std::vector<Trajectory>& test,
                      size_t input_len, size_t horizon, size_t max_queries,
                      Rng* rng) {
  const PredictionEvaluation eval = EvaluatePredictor(
      predictor, test, input_len, horizon, max_queries, rng);
  // E|N(0, sigma^2)| = sigma * sqrt(2/pi).
  const double sqrt_half_pi = 1.2533141373155002512078826;
  return eval.mean_error_m * sqrt_half_pi;
}

std::vector<double> CalibrateCrossTrackSigmaPerStep(
    Predictor* predictor, const std::vector<Trajectory>& test,
    size_t input_len, size_t horizon, size_t max_queries, Rng* rng) {
  std::vector<double> total_error(horizon, 0.0);
  size_t queries = 0;
  for (size_t attempt = 0; attempt < max_queries * 4 && queries < max_queries;
       ++attempt) {
    const Trajectory& traj = test[rng->NextIndex(test.size())];
    if (traj.size() < input_len + horizon + 1) continue;
    const size_t anchor =
        input_len - 1 + rng->NextIndex(traj.size() - input_len - horizon);
    const std::vector<Vec2> recent = traj.RecentWindow(anchor, input_len);
    std::vector<Vec2> predicted = predictor->Predict(recent, horizon);
    // The stripe path is anchored at the current location (Sec. V-A). The
    // step-j error is measured against the path *prefix* ending at step j —
    // exactly the region a length-j stripe would enclose.
    predicted.insert(predicted.begin(), recent.back());
    for (size_t j = 1; j <= horizon; ++j) {
      const Polyline prefix(
          std::vector<Vec2>(predicted.begin(), predicted.begin() + j + 1));
      total_error[j - 1] += prefix.DistanceToPoint(traj.at(anchor + j));
    }
    ++queries;
  }
  const double sqrt_half_pi = 1.2533141373155002512078826;
  std::vector<double> sigma(horizon, 0.0);
  if (queries == 0) return sigma;
  double running_max = 0.0;  // Enforce monotone growth with the horizon.
  for (size_t j = 0; j < horizon; ++j) {
    const double s =
        total_error[j] / static_cast<double>(queries) * sqrt_half_pi;
    running_max = std::max(running_max, s);
    sigma[j] = running_max;
  }
  return sigma;
}

double CalibrateCrossTrackSigma(Predictor* predictor,
                                const std::vector<Trajectory>& test,
                                size_t input_len, size_t horizon,
                                size_t max_queries, Rng* rng) {
  const std::vector<double> per_step = CalibrateCrossTrackSigmaPerStep(
      predictor, test, input_len, horizon, max_queries, rng);
  if (per_step.empty()) return 0.0;
  double total = 0.0;
  for (const double s : per_step) total += s;
  return total / static_cast<double>(per_step.size());
}

}  // namespace proxdet
