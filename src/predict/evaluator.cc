#include "predict/evaluator.h"

#include <cmath>

#include "common/timer.h"
#include "exec/thread_pool.h"
#include "geom/polyline.h"

namespace proxdet {

namespace {

/// A sampled (trajectory, anchor) evaluation query. Queries are drawn
/// *serially* from the caller's Rng — the draw sequence is identical to the
/// historical single-threaded scan — and then evaluated in parallel; the
/// expensive part (Predict + geometry) needs no randomness because Predict
/// is a pure function of its inputs (predictor.h contract).
struct EvalQuery {
  size_t traj = 0;
  size_t anchor = 0;
};

/// Draws up to `max_queries` valid queries with the same acceptance rule
/// and Rng consumption as the original serial loops.
std::vector<EvalQuery> DrawQueries(const std::vector<Trajectory>& test,
                                   size_t input_len, size_t output_len,
                                   size_t max_queries, Rng* rng) {
  std::vector<EvalQuery> queries;
  queries.reserve(max_queries);
  for (size_t attempt = 0;
       attempt < max_queries * 4 && queries.size() < max_queries; ++attempt) {
    const size_t traj = rng->NextIndex(test.size());
    if (test[traj].size() < input_len + output_len + 1) continue;
    const size_t anchor =
        input_len - 1 +
        rng->NextIndex(test[traj].size() - input_len - output_len);
    queries.push_back({traj, anchor});
  }
  return queries;
}

}  // namespace

PredictionEvaluation EvaluatePredictor(Predictor* predictor,
                                       const std::vector<Trajectory>& test,
                                       size_t input_len, size_t output_len,
                                       size_t max_queries, Rng* rng) {
  PredictionEvaluation eval;
  eval.per_step_error_m.assign(output_len, 0.0);
  const std::vector<EvalQuery> queries =
      DrawQueries(test, input_len, output_len, max_queries, rng);

  struct QueryResult {
    std::vector<double> step_error;
    double predict_time_us = 0.0;
  };
  const std::vector<QueryResult> results = ParallelMap<QueryResult>(
      queries.size(), [&](size_t qi) {
        const EvalQuery& q = queries[qi];
        const Trajectory& traj = test[q.traj];
        const std::vector<Vec2> recent = traj.RecentWindow(q.anchor, input_len);
        QueryResult out;
        out.step_error.resize(output_len);
        WallTimer timer;
        const std::vector<Vec2> predicted =
            predictor->Predict(recent, output_len);
        out.predict_time_us = timer.ElapsedSeconds() * 1e6;
        for (size_t j = 0; j < output_len; ++j) {
          out.step_error[j] = Distance(predicted[j], traj.at(q.anchor + 1 + j));
        }
        return out;
      });

  // Accumulate in query order: sums match the serial scan bit-for-bit.
  double total_error = 0.0;
  double total_time_us = 0.0;
  size_t total_points = 0;
  for (const QueryResult& r : results) {
    for (size_t j = 0; j < output_len; ++j) {
      eval.per_step_error_m[j] += r.step_error[j];
      total_error += r.step_error[j];
      ++total_points;
    }
    total_time_us += r.predict_time_us;
  }
  eval.query_count = queries.size();
  if (!queries.empty()) {
    eval.mean_predict_time_us =
        total_time_us / static_cast<double>(queries.size());
    for (double& e : eval.per_step_error_m) {
      e /= static_cast<double>(queries.size());
    }
  }
  if (total_points > 0) {
    eval.mean_error_m = total_error / static_cast<double>(total_points);
  }
  return eval;
}

double CalibrateSigma(Predictor* predictor, const std::vector<Trajectory>& test,
                      size_t input_len, size_t horizon, size_t max_queries,
                      Rng* rng) {
  const PredictionEvaluation eval = EvaluatePredictor(
      predictor, test, input_len, horizon, max_queries, rng);
  // E|N(0, sigma^2)| = sigma * sqrt(2/pi).
  const double sqrt_half_pi = 1.2533141373155002512078826;
  return eval.mean_error_m * sqrt_half_pi;
}

std::vector<double> CalibrateCrossTrackSigmaPerStep(
    Predictor* predictor, const std::vector<Trajectory>& test,
    size_t input_len, size_t horizon, size_t max_queries, Rng* rng) {
  const std::vector<EvalQuery> queries =
      DrawQueries(test, input_len, horizon, max_queries, rng);

  // Per-query cross-track profiles, computed in parallel (the hot part:
  // one Predict plus O(horizon^2) point-to-prefix distances per query).
  const std::vector<std::vector<double>> per_query =
      ParallelMap<std::vector<double>>(queries.size(), [&](size_t qi) {
        const EvalQuery& q = queries[qi];
        const Trajectory& traj = test[q.traj];
        const std::vector<Vec2> recent = traj.RecentWindow(q.anchor, input_len);
        std::vector<Vec2> predicted = predictor->Predict(recent, horizon);
        // The stripe path is anchored at the current location (Sec. V-A).
        // The step-j error is measured against the path *prefix* ending at
        // step j — exactly the region a length-j stripe would enclose.
        predicted.insert(predicted.begin(), recent.back());
        std::vector<double> error(horizon);
        for (size_t j = 1; j <= horizon; ++j) {
          const Polyline prefix(std::vector<Vec2>(
              predicted.begin(), predicted.begin() + j + 1));
          error[j - 1] = prefix.DistanceToPoint(traj.at(q.anchor + j));
        }
        return error;
      });

  std::vector<double> total_error(horizon, 0.0);
  for (const std::vector<double>& error : per_query) {
    for (size_t j = 0; j < horizon; ++j) total_error[j] += error[j];
  }
  const double sqrt_half_pi = 1.2533141373155002512078826;
  std::vector<double> sigma(horizon, 0.0);
  if (queries.empty()) return sigma;
  double running_max = 0.0;  // Enforce monotone growth with the horizon.
  for (size_t j = 0; j < horizon; ++j) {
    const double s = total_error[j] / static_cast<double>(queries.size()) *
                     sqrt_half_pi;
    running_max = std::max(running_max, s);
    sigma[j] = running_max;
  }
  return sigma;
}

double CalibrateCrossTrackSigma(Predictor* predictor,
                                const std::vector<Trajectory>& test,
                                size_t input_len, size_t horizon,
                                size_t max_queries, Rng* rng) {
  const std::vector<double> per_step = CalibrateCrossTrackSigmaPerStep(
      predictor, test, input_len, horizon, max_queries, rng);
  if (per_step.empty()) return 0.0;
  double total = 0.0;
  for (const double s : per_step) total += s;
  return total / static_cast<double>(per_step.size());
}

}  // namespace proxdet
