#ifndef PROXDET_PREDICT_R2D2_H_
#define PROXDET_PREDICT_R2D2_H_

#include <unordered_map>

#include "common/rng.h"
#include "geom/bbox.h"
#include "predict/predictor.h"

namespace proxdet {

/// R2-D2 (Zhou et al. [23]): a "semi-lazy" reference-trajectory predictor.
/// Training just indexes the historical database by grid cell; prediction
/// (the lazy part) retrieves reference trajectories whose recent
/// sub-trajectory resembles the query's, builds a particle set over their
/// continuations, and forecasts with importance-weighted displacement
/// transfer plus systematic resampling — the particle-filter machinery of
/// the original, minus the sensor-update step that forecasting has no
/// observations for.
///
/// The particle draws come from a per-call Rng seeded by the constructor
/// seed mixed with a hash of the query window, so Predict is a pure
/// function of (trained state, recent, steps): call order and concurrency
/// cannot change its output.
class R2d2Predictor : public Predictor {
 public:
  struct Options {
    int grid_rows = 60;
    int grid_cols = 60;
    int neighborhood = 1;       // Cells scanned around the query (Chebyshev).
    size_t max_candidates = 64; // References scored per query.
    size_t particles = 24;      // Particle set size.
    double resample_ess_fraction = 0.5;
    double step_noise_m = 2.0;  // Process noise during propagation.
  };

  R2d2Predictor(const Options& options, uint64_t seed);

  void Train(const std::vector<Trajectory>& history) override;

  std::vector<Vec2> Predict(const std::vector<Vec2>& recent,
                            size_t steps) override;

  std::string name() const override { return "R2-D2"; }

  bool trained() const { return trained_; }
  size_t reference_count() const { return references_.size(); }

 private:
  struct Candidate {
    size_t traj = 0;
    size_t index = 0;   // Position in the reference aligned to "now".
    double cost = 0.0;  // Mean alignment distance to the recent window.
  };

  /// Retrieves and scores candidate alignments near the query point.
  std::vector<Candidate> FindCandidates(const std::vector<Vec2>& recent,
                                        size_t steps) const;

  Options options_;
  uint64_t seed_;
  std::vector<Trajectory> references_;
  // cell -> (traj, index) postings.
  std::unordered_map<int, std::vector<std::pair<uint32_t, uint32_t>>> index_;
  BBox extent_{{0, 0}, {1, 1}};
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  bool trained_ = false;
};

}  // namespace proxdet

#endif  // PROXDET_PREDICT_R2D2_H_
