#include "predict/predictor.h"

#include "predict/hmm.h"
#include "predict/kalman.h"
#include "predict/linear_predictor.h"
#include "predict/r2d2.h"
#include "predict/rmf.h"

namespace proxdet {

void Predictor::Train(const std::vector<Trajectory>& history) {
  (void)history;  // Models without an offline phase ignore training data.
}

std::vector<PredictorKind> AllPredictorKinds() {
  return {PredictorKind::kLinear, PredictorKind::kRmf, PredictorKind::kKalman,
          PredictorKind::kHmm, PredictorKind::kR2d2};
}

std::string PredictorName(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kLinear:
      return "Linear";
    case PredictorKind::kRmf:
      return "RMF";
    case PredictorKind::kKalman:
      return "KF";
    case PredictorKind::kHmm:
      return "HMM";
    case PredictorKind::kR2d2:
      return "R2-D2";
  }
  return "Unknown";
}

std::unique_ptr<Predictor> MakePredictor(PredictorKind kind,
                                         double tick_seconds, uint64_t seed) {
  switch (kind) {
    case PredictorKind::kLinear:
      return std::make_unique<LinearPredictor>();
    case PredictorKind::kRmf:
      return std::make_unique<RmfPredictor>();
    case PredictorKind::kKalman:
      // Process noise ~0.5 m/s^2 handles city stop-and-go; measurement
      // noise matches the generators' GPS jitter. The benchmark harness can
      // re-tune these per dataset (the paper tunes them "for the best
      // performance").
      return std::make_unique<KalmanPredictor>(tick_seconds, 0.5, 4.0);
    case PredictorKind::kHmm:
      return std::make_unique<HmmPredictor>(100, 100);
    case PredictorKind::kR2d2:
      return std::make_unique<R2d2Predictor>(R2d2Predictor::Options{}, seed);
  }
  return nullptr;
}

}  // namespace proxdet
