#include "predict/rmf.h"

#include <algorithm>
#include <cmath>

#include "common/linalg.h"
#include "predict/linear_predictor.h"

namespace proxdet {

std::vector<Vec2> RmfPredictor::Predict(const std::vector<Vec2>& recent,
                                        size_t steps) {
  const size_t f = retrospect_;
  // Need at least one equation per unknown: f + 1 points give one row.
  if (recent.size() < 2 * f + 1 || f == 0) {
    return LinearPredictor().Predict(recent, steps);
  }

  // Fit z_t = sum_i c_i z_{t-i} with coefficients shared across x and y.
  // Work on displacements from the window mean so the recurrence does not
  // need to reproduce a large affine offset.
  Vec2 mean{0.0, 0.0};
  for (const Vec2& p : recent) mean += p;
  mean = mean / static_cast<double>(recent.size());

  const size_t rows_per_axis = recent.size() - f;
  Matrix a(2 * rows_per_axis, f);
  std::vector<double> b(2 * rows_per_axis);
  for (size_t t = f; t < recent.size(); ++t) {
    const size_t row_x = t - f;
    const size_t row_y = rows_per_axis + (t - f);
    for (size_t i = 1; i <= f; ++i) {
      a.At(row_x, i - 1) = recent[t - i].x - mean.x;
      a.At(row_y, i - 1) = recent[t - i].y - mean.y;
    }
    b[row_x] = recent[t].x - mean.x;
    b[row_y] = recent[t].y - mean.y;
  }
  std::vector<double> coeff;
  if (!RidgeLeastSquares(a, b, ridge_, &coeff)) {
    return LinearPredictor().Predict(recent, steps);
  }

  // Roll the recurrence forward. An unstable fit can explode; clamp each
  // predicted step to twice the fastest recent displacement, which keeps
  // the stripe construction sane while preserving RMF's (poor) accuracy
  // profile from the paper.
  double max_step = 0.0;
  for (size_t i = 1; i < recent.size(); ++i) {
    max_step = std::max(max_step, Distance(recent[i - 1], recent[i]));
  }
  const double step_cap = std::max(max_step * 2.0, 1e-6);

  std::vector<Vec2> history(recent.end() - static_cast<ptrdiff_t>(f),
                            recent.end());
  std::vector<Vec2> out;
  out.reserve(steps);
  Vec2 prev = recent.back();
  for (size_t s = 0; s < steps; ++s) {
    Vec2 next{mean.x, mean.y};
    for (size_t i = 1; i <= f; ++i) {
      const Vec2& z = history[history.size() - i];
      next.x += coeff[i - 1] * (z.x - mean.x);
      next.y += coeff[i - 1] * (z.y - mean.y);
    }
    const Vec2 delta = next - prev;
    const double len = delta.Norm();
    if (len > step_cap) next = prev + delta * (step_cap / len);
    out.push_back(next);
    history.push_back(next);
    history.erase(history.begin());
    prev = next;
  }
  return out;
}

}  // namespace proxdet
