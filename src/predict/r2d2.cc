#include "predict/r2d2.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "predict/kalman.h"

namespace proxdet {

namespace {

/// Mixes the query into the model seed so the per-call particle Rng is a
/// deterministic function of the input alone (SplitMix64-style finalizer).
uint64_t HashQuery(uint64_t seed, const std::vector<Vec2>& recent,
                   size_t steps) {
  uint64_t h = seed ^ (0x9e3779b97f4a7c15ULL + steps);
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
  };
  for (const Vec2& p : recent) {
    uint64_t bx, by;
    static_assert(sizeof(bx) == sizeof(p.x), "Vec2 coordinates are doubles");
    std::memcpy(&bx, &p.x, sizeof(bx));
    std::memcpy(&by, &p.y, sizeof(by));
    mix(bx);
    mix(by);
  }
  return h;
}

int CellIndex(const BBox& extent, double cell_w, double cell_h, int cols,
              int rows, const Vec2& p) {
  const Vec2 q = extent.Clamp(p);
  int col = static_cast<int>((q.x - extent.lo.x) / cell_w);
  int row = static_cast<int>((q.y - extent.lo.y) / cell_h);
  col = std::clamp(col, 0, cols - 1);
  row = std::clamp(row, 0, rows - 1);
  return row * cols + col;
}

}  // namespace

R2d2Predictor::R2d2Predictor(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {}

void R2d2Predictor::Train(const std::vector<Trajectory>& history) {
  references_ = history;
  index_.clear();
  bool first = true;
  for (const Trajectory& traj : references_) {
    for (const Vec2& p : traj.points()) {
      if (first) {
        extent_ = BBox{p, p};
        first = false;
      } else {
        extent_.Extend(p);
      }
    }
  }
  if (first) return;
  cell_w_ = std::max(extent_.Width() / options_.grid_cols, 1e-9);
  cell_h_ = std::max(extent_.Height() / options_.grid_rows, 1e-9);
  for (uint32_t t = 0; t < references_.size(); ++t) {
    const auto& pts = references_[t].points();
    for (uint32_t i = 0; i < pts.size(); ++i) {
      const int cell = CellIndex(extent_, cell_w_, cell_h_, options_.grid_cols,
                                 options_.grid_rows, pts[i]);
      index_[cell].push_back({t, i});
    }
  }
  trained_ = true;
}

std::vector<R2d2Predictor::Candidate> R2d2Predictor::FindCandidates(
    const std::vector<Vec2>& recent, size_t steps) const {
  std::vector<Candidate> candidates;
  const Vec2& now = recent.back();
  const int cols = options_.grid_cols;
  const int rows = options_.grid_rows;
  const int center = CellIndex(extent_, cell_w_, cell_h_, cols, rows, now);
  const int c_row = center / cols;
  const int c_col = center % cols;
  const size_t window = recent.size();
  for (int dr = -options_.neighborhood; dr <= options_.neighborhood; ++dr) {
    for (int dc = -options_.neighborhood; dc <= options_.neighborhood; ++dc) {
      const int row = c_row + dr;
      const int col = c_col + dc;
      if (row < 0 || row >= rows || col < 0 || col >= cols) continue;
      const auto it = index_.find(row * cols + col);
      if (it == index_.end()) continue;
      // Query speed over the recent window (m/tick) for the speed-alignment
      // term: a reference crawling through a jam is a poor template for a
      // free-flowing query even when their positions line up.
      double query_speed = 0.0;
      if (window >= 2) {
        for (size_t k = 1; k < window; ++k) {
          query_speed += Distance(recent[k - 1], recent[k]);
        }
        query_speed /= static_cast<double>(window - 1);
      }
      for (const auto& [traj_id, idx] : it->second) {
        const auto& ref = references_[traj_id].points();
        // Enough history to align the window and enough future to forecast.
        if (idx + 1 < window || idx + steps >= ref.size()) continue;
        double cost = 0.0;
        for (size_t k = 0; k < window; ++k) {
          cost += Distance(recent[window - 1 - k], ref[idx - k]);
        }
        cost /= static_cast<double>(window);
        if (window >= 2) {
          double ref_speed = 0.0;
          for (size_t k = 1; k < window; ++k) {
            ref_speed += Distance(ref[idx - k], ref[idx - k + 1]);
          }
          ref_speed /= static_cast<double>(window - 1);
          // A full speed mismatch weighs like one window of positional
          // misalignment.
          cost += std::fabs(ref_speed - query_speed) *
                  static_cast<double>(window) * 0.5;
        }
        candidates.push_back({traj_id, idx, cost});
        if (candidates.size() >= options_.max_candidates * 4) return candidates;
      }
    }
  }
  return candidates;
}

std::vector<Vec2> R2d2Predictor::Predict(const std::vector<Vec2>& recent,
                                         size_t steps) {
  // Fallback when untrained or when the reference database has nothing
  // similar nearby: the R2-D2 paper also degrades to a model-free predictor.
  const auto fallback = [&recent, steps]() {
    return KalmanPredictor(1.0, 0.5, 3.0).Predict(recent, steps);
  };
  if (!trained_ || recent.empty()) return fallback();

  std::vector<Candidate> candidates = FindCandidates(recent, steps);
  if (candidates.empty()) return fallback();
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.cost < b.cost;
            });
  if (candidates.size() > options_.max_candidates) {
    candidates.resize(options_.max_candidates);
  }

  // Importance weights from alignment cost; the bandwidth adapts to the
  // candidate pool so at least a few references matter.
  const double bandwidth =
      std::max(candidates[std::min(candidates.size() - 1,
                                   candidates.size() / 2)]
                   .cost,
               1.0);
  // Particle set: sample candidate continuations by weight.
  std::vector<double> weights(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double z = candidates[i].cost / bandwidth;
    weights[i] = std::exp(-0.5 * z * z);
  }
  struct Particle {
    size_t candidate;
    Vec2 offset;  // Accumulated process noise.
    double weight;
  };
  // Per-call stream: Predict stays reentrant and order-independent.
  Rng rng(HashQuery(seed_, recent, steps));
  std::vector<Particle> particles;
  particles.reserve(options_.particles);
  for (size_t i = 0; i < options_.particles; ++i) {
    const size_t pick = rng.WeightedIndex(weights);
    particles.push_back({pick, Vec2{0.0, 0.0}, 1.0});
  }

  const Vec2 now = recent.back();
  std::vector<Vec2> out;
  out.reserve(steps);
  for (size_t j = 1; j <= steps; ++j) {
    // Propagate each particle along its reference continuation.
    double weight_sum = 0.0;
    double weight_sq_sum = 0.0;
    Vec2 mean{0.0, 0.0};
    for (Particle& p : particles) {
      const Candidate& cand = candidates[p.candidate];
      const auto& ref = references_[cand.traj].points();
      const Vec2 displacement = ref[cand.index + j] - ref[cand.index];
      p.offset += Vec2{rng.Gaussian(0.0, options_.step_noise_m),
                       rng.Gaussian(0.0, options_.step_noise_m)};
      // Re-weight by agreement with the candidate pool consensus, computed
      // against the plain weighted displacement (keeps divergent references
      // from dominating long horizons).
      p.weight *= weights[p.candidate] + 1e-6;
      const Vec2 pos = now + displacement + p.offset;
      mean += pos * p.weight;
      weight_sum += p.weight;
      weight_sq_sum += p.weight * p.weight;
    }
    if (weight_sum <= 0.0) return fallback();
    out.push_back(mean / weight_sum);
    // Systematic resampling when the effective sample size collapses.
    const double ess = weight_sum * weight_sum / std::max(weight_sq_sum, 1e-30);
    if (ess < options_.resample_ess_fraction *
                  static_cast<double>(particles.size())) {
      std::vector<Particle> next;
      next.reserve(particles.size());
      const double step_size = weight_sum / particles.size();
      double pointer = rng.NextDouble() * step_size;
      double cumulative = 0.0;
      size_t src = 0;
      for (size_t i = 0; i < particles.size(); ++i) {
        while (cumulative + particles[src].weight < pointer &&
               src + 1 < particles.size()) {
          cumulative += particles[src].weight;
          ++src;
        }
        Particle clone = particles[src];
        clone.weight = 1.0;
        next.push_back(clone);
        pointer += step_size;
      }
      particles.swap(next);
    }
  }
  return out;
}

}  // namespace proxdet
