#include "predict/kalman.h"

#include "geom/simd/simd.h"

namespace proxdet {

namespace {

/// Matrix::operator* on fixed 4x4 row-major arrays, preserving its
/// `v == 0.0` accumulation skip (observable through signed zeros); the
/// measurement update's (I - KH) factor is mostly zeros, so the skip also
/// matters for the op sequence.
void Mul4(const double* a, const double* b, double* out) {
  for (int i = 0; i < 16; ++i) out[i] = 0.0;
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 4; ++k) {
      const double v = a[r * 4 + k];
      if (v == 0.0) continue;
      for (int c = 0; c < 4; ++c) {
        out[r * 4 + c] += v * b[k * 4 + c];
      }
    }
  }
}

/// Matrix::Apply on a fixed 4-vector (plain accumulation, no skip).
void Apply4(const double* m, const double* v, double* out) {
  for (int r = 0; r < 4; ++r) {
    double acc = 0.0;
    for (int c = 0; c < 4; ++c) acc += m[r * 4 + c] * v[c];
    out[r] = acc;
  }
}

}  // namespace

KalmanFilter2D::KalmanFilter2D(double dt, double process_noise,
                               double measurement_noise)
    : dt_(dt), r_(measurement_noise * measurement_noise) {
  // Constant-velocity transition.
  for (int i = 0; i < 16; ++i) f_[i] = 0.0;
  for (int i = 0; i < 4; ++i) f_[i * 4 + i] = 1.0;
  f_[0 * 4 + 2] = dt_;
  f_[1 * 4 + 3] = dt_;
  // White-acceleration process noise (discretized), per axis:
  // Q = sigma_a^2 * [[dt^4/4, dt^3/2], [dt^3/2, dt^2]].
  const double s2 = process_noise * process_noise;
  const double dt2 = dt_ * dt_;
  const double dt3 = dt2 * dt_;
  const double dt4 = dt3 * dt_;
  for (int i = 0; i < 16; ++i) q_[i] = 0.0;
  q_[0 * 4 + 0] = q_[1 * 4 + 1] = s2 * dt4 / 4.0;
  q_[0 * 4 + 2] = q_[2 * 4 + 0] = s2 * dt3 / 2.0;
  q_[1 * 4 + 3] = q_[3 * 4 + 1] = s2 * dt3 / 2.0;
  q_[2 * 4 + 2] = q_[3 * 4 + 3] = s2 * dt2;
  for (int i = 0; i < 4; ++i) state_[i] = 0.0;
  for (int i = 0; i < 16; ++i) p_[i] = 0.0;
}

void KalmanFilter2D::Reset(const Vec2& position) {
  state_[0] = position.x;
  state_[1] = position.y;
  state_[2] = 0.0;
  state_[3] = 0.0;
  for (int i = 0; i < 16; ++i) p_[i] = 0.0;
  for (int i = 0; i < 4; ++i) p_[i * 4 + i] = 1.0;
  // Position known to measurement accuracy; velocity essentially unknown.
  p_[0 * 4 + 0] = p_[1 * 4 + 1] = r_;
  p_[2 * 4 + 2] = p_[3 * 4 + 3] = 1e4;
  initialized_ = true;
}

void KalmanFilter2D::PredictStep() {
  // state <- F state; P <- F P F^T + Q, via the dispatched batch kernel.
  simd::KalmanPredict4(f_, q_, state_, p_);
}

void KalmanFilter2D::UpdateStep(const Vec2& measurement) {
  if (!initialized_) {
    Reset(measurement);
    return;
  }
  // H picks (x, y); S = H P H^T + R is 2x2 so invert it directly.
  const double s00 = p_[0 * 4 + 0] + r_;
  const double s01 = p_[0 * 4 + 1];
  const double s10 = p_[1 * 4 + 0];
  const double s11 = p_[1 * 4 + 1] + r_;
  const double det = s00 * s11 - s01 * s10;
  if (det == 0.0) return;
  const double i00 = s11 / det, i01 = -s01 / det;
  const double i10 = -s10 / det, i11 = s00 / det;
  // Kalman gain K = P H^T S^-1 (4x2).
  double k[4][2];
  for (int row = 0; row < 4; ++row) {
    const double ph0 = p_[row * 4 + 0];
    const double ph1 = p_[row * 4 + 1];
    k[row][0] = ph0 * i00 + ph1 * i10;
    k[row][1] = ph0 * i01 + ph1 * i11;
  }
  const double y0 = measurement.x - state_[0];
  const double y1 = measurement.y - state_[1];
  for (int row = 0; row < 4; ++row) {
    state_[row] += k[row][0] * y0 + k[row][1] * y1;
  }
  // P = (I - K H) P.
  double ikh[16];
  for (int i = 0; i < 16; ++i) ikh[i] = 0.0;
  for (int i = 0; i < 4; ++i) ikh[i * 4 + i] = 1.0;
  for (int row = 0; row < 4; ++row) {
    ikh[row * 4 + 0] -= k[row][0];
    ikh[row * 4 + 1] -= k[row][1];
  }
  double next_p[16];
  Mul4(ikh, p_, next_p);
  for (int i = 0; i < 16; ++i) p_[i] = next_p[i];
}

Vec2 KalmanFilter2D::position() const { return {state_[0], state_[1]}; }

Vec2 KalmanFilter2D::velocity() const { return {state_[2], state_[3]}; }

std::vector<Vec2> KalmanFilter2D::Forecast(size_t steps) const {
  std::vector<Vec2> out;
  out.reserve(steps);
  double s[4] = {state_[0], state_[1], state_[2], state_[3]};
  double next[4];
  for (size_t i = 0; i < steps; ++i) {
    Apply4(f_, s, next);
    for (int r = 0; r < 4; ++r) s[r] = next[r];
    out.push_back({s[0], s[1]});
  }
  return out;
}

std::vector<Vec2> KalmanPredictor::Predict(const std::vector<Vec2>& recent,
                                           size_t steps) {
  KalmanFilter2D filter(dt_, process_noise_, measurement_noise_);
  filter.Reset(recent.front());
  for (size_t i = 1; i < recent.size(); ++i) {
    filter.PredictStep();
    filter.UpdateStep(recent[i]);
  }
  return filter.Forecast(steps);
}

}  // namespace proxdet
