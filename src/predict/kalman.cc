#include "predict/kalman.h"

namespace proxdet {

KalmanFilter2D::KalmanFilter2D(double dt, double process_noise,
                               double measurement_noise)
    : dt_(dt), f_(4, 4), q_(4, 4), r_(measurement_noise * measurement_noise),
      state_(4, 0.0), p_(4, 4) {
  // Constant-velocity transition.
  f_ = Matrix::Identity(4);
  f_.At(0, 2) = dt_;
  f_.At(1, 3) = dt_;
  // White-acceleration process noise (discretized), per axis:
  // Q = sigma_a^2 * [[dt^4/4, dt^3/2], [dt^3/2, dt^2]].
  const double s2 = process_noise * process_noise;
  const double dt2 = dt_ * dt_;
  const double dt3 = dt2 * dt_;
  const double dt4 = dt3 * dt_;
  q_.At(0, 0) = q_.At(1, 1) = s2 * dt4 / 4.0;
  q_.At(0, 2) = q_.At(2, 0) = s2 * dt3 / 2.0;
  q_.At(1, 3) = q_.At(3, 1) = s2 * dt3 / 2.0;
  q_.At(2, 2) = q_.At(3, 3) = s2 * dt2;
}

void KalmanFilter2D::Reset(const Vec2& position) {
  state_ = {position.x, position.y, 0.0, 0.0};
  p_ = Matrix::Identity(4);
  // Position known to measurement accuracy; velocity essentially unknown.
  p_.At(0, 0) = p_.At(1, 1) = r_;
  p_.At(2, 2) = p_.At(3, 3) = 1e4;
  initialized_ = true;
}

void KalmanFilter2D::PredictStep() {
  state_ = f_.Apply(state_);
  p_ = f_ * p_ * f_.Transpose() + q_;
}

void KalmanFilter2D::UpdateStep(const Vec2& measurement) {
  if (!initialized_) {
    Reset(measurement);
    return;
  }
  // H picks (x, y); S = H P H^T + R is 2x2 so invert it directly.
  const double s00 = p_.At(0, 0) + r_;
  const double s01 = p_.At(0, 1);
  const double s10 = p_.At(1, 0);
  const double s11 = p_.At(1, 1) + r_;
  const double det = s00 * s11 - s01 * s10;
  if (det == 0.0) return;
  const double i00 = s11 / det, i01 = -s01 / det;
  const double i10 = -s10 / det, i11 = s00 / det;
  // Kalman gain K = P H^T S^-1 (4x2).
  double k[4][2];
  for (int row = 0; row < 4; ++row) {
    const double ph0 = p_.At(row, 0);
    const double ph1 = p_.At(row, 1);
    k[row][0] = ph0 * i00 + ph1 * i10;
    k[row][1] = ph0 * i01 + ph1 * i11;
  }
  const double y0 = measurement.x - state_[0];
  const double y1 = measurement.y - state_[1];
  for (int row = 0; row < 4; ++row) {
    state_[row] += k[row][0] * y0 + k[row][1] * y1;
  }
  // P = (I - K H) P.
  Matrix kh(4, 4);
  for (int row = 0; row < 4; ++row) {
    kh.At(row, 0) = k[row][0];
    kh.At(row, 1) = k[row][1];
  }
  p_ = (Matrix::Identity(4) - kh) * p_;
}

Vec2 KalmanFilter2D::position() const { return {state_[0], state_[1]}; }

Vec2 KalmanFilter2D::velocity() const { return {state_[2], state_[3]}; }

std::vector<Vec2> KalmanFilter2D::Forecast(size_t steps) const {
  std::vector<Vec2> out;
  out.reserve(steps);
  std::vector<double> s = state_;
  for (size_t i = 0; i < steps; ++i) {
    s = f_.Apply(s);
    out.push_back({s[0], s[1]});
  }
  return out;
}

std::vector<Vec2> KalmanPredictor::Predict(const std::vector<Vec2>& recent,
                                           size_t steps) {
  KalmanFilter2D filter(dt_, process_noise_, measurement_noise_);
  filter.Reset(recent.front());
  for (size_t i = 1; i < recent.size(); ++i) {
    filter.PredictStep();
    filter.UpdateStep(recent[i]);
  }
  return filter.Forecast(steps);
}

}  // namespace proxdet
