#include "predict/linear_predictor.h"

#include <algorithm>

namespace proxdet {

std::vector<Vec2> LinearPredictor::Predict(const std::vector<Vec2>& recent,
                                           size_t steps) {
  Vec2 velocity{0.0, 0.0};
  if (recent.size() >= 2) {
    const size_t window =
        std::min(velocity_window_, recent.size() - 1);
    const Vec2 delta = recent.back() - recent[recent.size() - 1 - window];
    velocity = delta / static_cast<double>(window);
  }
  std::vector<Vec2> out;
  out.reserve(steps);
  Vec2 p = recent.back();
  for (size_t i = 0; i < steps; ++i) {
    p += velocity;
    out.push_back(p);
  }
  return out;
}

}  // namespace proxdet
