#ifndef PROXDET_PREDICT_HMM_H_
#define PROXDET_PREDICT_HMM_H_

#include <cstdint>
#include <unordered_map>

#include "geom/bbox.h"
#include "predict/predictor.h"

namespace proxdet {

/// Uniform grid quantizer mapping positions to cell ids (row-major) and
/// back to cell centers. The paper's HMM splits the map into a 100x100 grid
/// and treats each cell as a state (Sec. VI-B).
class GridQuantizer {
 public:
  GridQuantizer() = default;
  GridQuantizer(const BBox& extent, int rows, int cols);

  int CellOf(const Vec2& p) const;
  Vec2 CenterOf(int cell) const;
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int cell_count() const { return rows_ * cols_; }
  const BBox& extent() const { return extent_; }

 private:
  BBox extent_{{0, 0}, {1, 1}};
  int rows_ = 1;
  int cols_ = 1;
};

/// Generic discrete HMM with Baum-Welch (EM) training and scaled
/// forward/backward. Provided as a first-class library component; the
/// grid-state HmmPredictor below is the degenerate fully-observed case
/// (states = cells), for which Baum-Welch reduces to transition counting.
class DiscreteHmm {
 public:
  DiscreteHmm(int num_hidden, int num_observations, uint64_t seed);

  /// EM training on observation sequences; `iterations` full passes.
  void Train(const std::vector<std::vector<int>>& sequences, int iterations);

  /// Log-likelihood of a sequence under the current parameters.
  double LogLikelihood(const std::vector<int>& sequence) const;

  /// Posterior over hidden states after observing `sequence` (scaled
  /// forward pass).
  std::vector<double> Posterior(const std::vector<int>& sequence) const;

  /// Distribution over observations `steps_ahead` ticks after the posterior
  /// state `posterior`.
  std::vector<double> PredictObservation(std::vector<double> posterior,
                                         int steps_ahead) const;

  int num_hidden() const { return num_hidden_; }
  int num_observations() const { return num_observations_; }
  double transition(int i, int j) const {
    return a_[static_cast<size_t>(i) * num_hidden_ + j];
  }
  double emission(int i, int o) const {
    return b_[static_cast<size_t>(i) * num_observations_ + o];
  }

 private:
  /// Scaled forward pass; returns per-tick scaling factors and fills alpha.
  void Forward(const std::vector<int>& seq, std::vector<double>* alpha,
               std::vector<double>* scale) const;
  void Backward(const std::vector<int>& seq, const std::vector<double>& scale,
                std::vector<double>* beta) const;

  int num_hidden_;
  int num_observations_;
  std::vector<double> pi_;  // Initial distribution, H.
  std::vector<double> a_;   // Transition, H x H.
  std::vector<double> b_;   // Emission, H x O.
};

/// The paper's trajectory HMM: grid cells are states, the transition
/// structure is learned from historical trajectories (for fully observed
/// states the Baum-Welch MLE is exactly the transition count matrix), and
/// the forward algorithm's most-probable path supplies the future cells.
/// We keep second-order (previous-cell conditioned) counts where supported
/// so the model is direction-aware, falling back to first-order then to
/// dwell. Cell-center paths are resampled at the user's recent speed to
/// produce per-tick locations.
class HmmPredictor : public Predictor {
 public:
  /// `grid_rows`/`grid_cols` default to the paper's 100x100.
  HmmPredictor(int grid_rows = 100, int grid_cols = 100);

  void Train(const std::vector<Trajectory>& history) override;

  std::vector<Vec2> Predict(const std::vector<Vec2>& recent,
                            size_t steps) override;

  std::string name() const override { return "HMM"; }

  bool trained() const { return trained_; }
  const GridQuantizer& quantizer() const { return quantizer_; }

 private:
  /// Most likely next cell after (prev -> cur); -1 when unknown.
  int MostLikelyNext(int prev_cell, int cur_cell) const;

  int grid_rows_;
  int grid_cols_;
  GridQuantizer quantizer_;
  // Second-order transition counts: key = prev * C + cur -> (next -> count).
  std::unordered_map<int64_t, std::unordered_map<int, double>> order2_;
  // First-order fallback: cur -> (next -> count).
  std::unordered_map<int, std::unordered_map<int, double>> order1_;
  bool trained_ = false;
};

}  // namespace proxdet

#endif  // PROXDET_PREDICT_HMM_H_
