#ifndef PROXDET_PREDICT_RMF_H_
#define PROXDET_PREDICT_RMF_H_

#include "predict/predictor.h"

namespace proxdet {

/// Recursive Motion Function (Tao et al. [15]). Any polynomial motion of
/// degree D obeys a linear recurrence after D+1 differentiations; RMF fits
/// the recurrence z_t = sum_{i=1..f} c_i z_{t-i} over the recent window
/// (ridge-regularized least squares standing in for the SVD solve of the
/// original) and rolls it forward. No prior movement pattern is assumed —
/// exactly the paper's characterization: cheap, needs only recent points,
/// but accuracy is its weak spot.
class RmfPredictor : public Predictor {
 public:
  /// `retrospect`: the recurrence order f (the paper's implementations use
  /// small f; 3 handles quadratic motion). `ridge`: regularizer keeping the
  /// near-collinear windows of straight-line motion well-posed.
  explicit RmfPredictor(size_t retrospect = 3, double ridge = 1e-4)
      : retrospect_(retrospect), ridge_(ridge) {}

  std::vector<Vec2> Predict(const std::vector<Vec2>& recent,
                            size_t steps) override;

  std::string name() const override { return "RMF"; }

 private:
  size_t retrospect_;
  double ridge_;
};

}  // namespace proxdet

#endif  // PROXDET_PREDICT_RMF_H_
