#include "core/simulation.h"

#include <algorithm>

#include "common/rng.h"
#include "core/policies.h"
#include "exec/thread_pool.h"
#include "predict/evaluator.h"
#include "predict/kalman.h"

namespace proxdet {

std::string MethodName(Method method) {
  switch (method) {
    case Method::kNaive:
      return "Naive";
    case Method::kStatic:
      return "Static";
    case Method::kFmd:
      return "FMD";
    case Method::kCmd:
      return "CMD";
    case Method::kStripeRmf:
      return "Stripe+RMF";
    case Method::kStripeHmm:
      return "Stripe+HMM";
    case Method::kStripeR2d2:
      return "Stripe+R2-D2";
    case Method::kStripeKf:
      return "Stripe+KF";
    case Method::kStripeLinear:
      return "Stripe+Linear";
  }
  return "Unknown";
}

std::vector<Method> PaperMethodSet() {
  return {Method::kNaive,     Method::kStatic,    Method::kFmd,
          Method::kCmd,       Method::kStripeRmf, Method::kStripeHmm,
          Method::kStripeR2d2, Method::kStripeKf};
}

namespace {

/// Subsamples a raw-tick trajectory to epoch granularity (every
/// `speed_steps`-th point), matching the cadence detectors see.
Trajectory ToEpochSpacing(const Trajectory& raw, int speed_steps) {
  std::vector<Vec2> pts;
  pts.reserve(raw.size() / speed_steps + 1);
  for (size_t i = 0; i < raw.size();
       i += static_cast<size_t>(speed_steps)) {
    pts.push_back(raw.at(i));
  }
  return Trajectory(std::move(pts), raw.dt() * speed_steps);
}

PredictorKind PredictorForMethod(Method method) {
  switch (method) {
    case Method::kStripeRmf:
      return PredictorKind::kRmf;
    case Method::kStripeHmm:
      return PredictorKind::kHmm;
    case Method::kStripeR2d2:
      return PredictorKind::kR2d2;
    case Method::kStripeKf:
      return PredictorKind::kKalman;
    default:
      return PredictorKind::kLinear;
  }
}

/// Grid-tunes the Kalman noise parameters on the training set (the paper
/// tunes them "for the best performance", Sec. VI-B). The 18 grid cells are
/// independent — each evaluates its own candidate with its own Rng(seed) —
/// so they fan out across the pool; the argmin scans cell results in grid
/// order, which reproduces the serial tie-breaking exactly.
std::unique_ptr<Predictor> MakeTunedKalman(
    const std::vector<Trajectory>& training, uint64_t seed) {
  const std::vector<double> process_grid = {0.05, 0.2, 0.8, 3.0, 12.0, 50.0};
  const std::vector<double> measurement_grid = {2.0, 5.0, 12.0};
  struct Cell {
    double q = 0.0;
    double r = 0.0;
    double mean_error = 0.0;
    size_t query_count = 0;
  };
  const size_t cells = process_grid.size() * measurement_grid.size();
  const std::vector<Cell> results = ParallelMap<Cell>(cells, [&](size_t i) {
    Cell cell;
    cell.q = process_grid[i / measurement_grid.size()];
    cell.r = measurement_grid[i % measurement_grid.size()];
    KalmanPredictor candidate(1.0, cell.q, cell.r);
    Rng rng(seed);
    const PredictionEvaluation eval =
        EvaluatePredictor(&candidate, training, 10, 10, 120, &rng);
    cell.mean_error = eval.mean_error_m;
    cell.query_count = eval.query_count;
    return cell;
  });
  double best_error = -1.0;
  double best_q = 0.8;
  double best_r = 5.0;
  for (const Cell& cell : results) {
    if (cell.query_count == 0) continue;
    if (best_error < 0.0 || cell.mean_error < best_error) {
      best_error = cell.mean_error;
      best_q = cell.q;
      best_r = cell.r;
    }
  }
  return std::make_unique<KalmanPredictor>(1.0, best_q, best_r);
}

}  // namespace

Workload BuildWorkload(const WorkloadConfig& config) {
  TrajectoryGenerator generator(SpecFor(config.dataset), config.seed);
  const size_t raw_ticks =
      static_cast<size_t>(config.epochs) * config.speed_steps + 1;
  std::vector<Trajectory> trajectories =
      generator.Generate(config.num_users, raw_ticks);

  Rng graph_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  InterestGraph graph = InterestGraph::Random(
      config.num_users, config.avg_friends, 0.7 * config.alert_radius_m,
      1.3 * config.alert_radius_m, &graph_rng);

  // Training users move on the same network but are disjoint from the
  // monitored population.
  const size_t training_ticks =
      static_cast<size_t>(config.training_epochs) * config.speed_steps + 1;
  std::vector<Trajectory> training_raw =
      generator.Generate(config.training_users, training_ticks);
  std::vector<Trajectory> training;
  training.reserve(training_raw.size());
  for (const Trajectory& t : training_raw) {
    training.push_back(ToEpochSpacing(t, config.speed_steps));
  }

  World world(std::move(trajectories), std::move(graph), config.speed_steps,
              config.epochs);
  std::vector<AlertEvent> ground_truth = world.GroundTruthAlerts();
  return Workload(config, std::move(world), std::move(training),
                  std::move(ground_truth));
}

Workload BuildScenarioWorkload(const ScenarioWorkloadConfig& config) {
  const ScenarioSpec& spec = config.scenario;
  Scenario scenario = BuildScenario(spec);

  // Predictor training is always a small materialized fleet, built the
  // same way for both modes — detector construction (and with it every
  // downstream decision) is identical whether the monitored population
  // streams or not.
  std::vector<Trajectory> training = BuildScenarioTraining(
      spec, config.training_users, config.training_epochs);

  InterestGraph graph = std::move(scenario.graph);
  std::vector<Trajectory> materialized;
  if (!config.stream) {
    materialized = MaterializeStream(*scenario.generator, spec.epochs);
  }
  World world =
      config.stream
          ? World(std::move(scenario.generator), std::move(graph),
                  spec.epochs)
          : World(std::move(materialized), std::move(graph),
                  /*speed_steps=*/1, spec.epochs);
  for (const EdgeChurnEvent& ev : scenario.churn) {
    world.ScheduleUpdate({ev.epoch, ev.insert, ev.u, ev.w, ev.alert_radius});
  }

  // Static-graph scenarios pay the oracle at build like BuildWorkload;
  // churn scenarios defer to the call_once-memoized GroundTruth() so the
  // post-update scan runs once however many methods share the workload.
  std::vector<AlertEvent> ground_truth;
  if (config.compute_ground_truth && scenario.churn.empty()) {
    ground_truth = world.GroundTruthAlerts();
  }

  WorkloadConfig wc;
  wc.num_users = spec.num_users;
  wc.epochs = spec.epochs;
  wc.speed_steps = spec.speed_steps;
  wc.avg_friends = spec.avg_friends;
  wc.alert_radius_m = spec.alert_radius_m;
  wc.seed = spec.seed;
  wc.training_users = config.training_users;
  wc.training_epochs = config.training_epochs;

  Workload workload(wc, std::move(world), std::move(training),
                    std::move(ground_truth));
  workload.oracle_enabled = config.compute_ground_truth;
  return workload;
}

Workload::Workload(WorkloadConfig config_in, World world_in,
                   std::vector<Trajectory> training_in,
                   std::vector<AlertEvent> ground_truth_in)
    : config(config_in),
      world(std::move(world_in)),
      training(std::move(training_in)),
      ground_truth(std::move(ground_truth_in)),
      oracle_cache_(std::make_unique<OracleCache>()) {}

const std::vector<AlertEvent>& Workload::GroundTruth() const {
  const size_t update_count = world.scheduled_updates().size();
  if (update_count == 0) return ground_truth;  // Build-time oracle holds.
  OracleCache& cache = *oracle_cache_;
  // First call wins, concurrent first-callers block on the one scan:
  // SweepRunner fans its method cells across the pool and they all arrive
  // here together on dynamic-graph points. After the call_once completes,
  // reads are lock-free.
  std::call_once(cache.once, [&] {
    cache.alerts = world.GroundTruthAlerts();
    cache.update_count = update_count;
  });
  if (cache.update_count != update_count) {
    // The schedule grew again after the memoized scan. ScheduleUpdate is
    // documented as must-not-race-with-readers, so this path only runs
    // from serial driver code; the mutex just serializes repeat callers.
    std::lock_guard<std::mutex> lock(cache.rekey_mutex);
    if (cache.update_count != update_count) {
      cache.alerts = world.GroundTruthAlerts();
      cache.update_count = update_count;
    }
  }
  return cache.alerts;
}

std::unique_ptr<Detector> MakeDetector(Method method, const Workload& workload,
                                       RegionDetector::Options options) {
  switch (method) {
    case Method::kNaive: {
      // The engine-wide index switch applies to the baseline too, so one
      // flag flips a whole run (any method) onto the exhaustive oracles.
      NaiveDetector::Options nopts;
      nopts.use_spatial_index = options.use_spatial_index;
      return std::make_unique<NaiveDetector>(nopts);
    }
    case Method::kStatic:
      return std::make_unique<RegionDetector>(
          std::make_unique<StaticPolygonPolicy>(), options);
    case Method::kFmd: {
      MobileCirclePolicy::Options mopts;
      mopts.self_tuning = false;
      return std::make_unique<RegionDetector>(
          std::make_unique<MobileCirclePolicy>(mopts), options);
    }
    case Method::kCmd: {
      MobileCirclePolicy::Options mopts;
      mopts.self_tuning = true;
      return std::make_unique<RegionDetector>(
          std::make_unique<MobileCirclePolicy>(mopts), options);
    }
    default: {
      std::unique_ptr<Predictor> predictor =
          MakeTrainedPredictor(PredictorForMethod(method), workload);
      const StripePolicy::Options sopts =
          CalibratedStripeOptions(predictor.get(), workload);
      return std::make_unique<RegionDetector>(
          std::make_unique<StripePolicy>(std::move(predictor), sopts),
          options);
    }
  }
}

std::unique_ptr<Predictor> MakeTrainedPredictor(PredictorKind kind,
                                                const Workload& workload) {
  std::unique_ptr<Predictor> predictor;
  if (kind == PredictorKind::kKalman) {
    predictor =
        MakeTunedKalman(workload.training, workload.config.seed ^ 0xABCDEF);
  } else {
    // Predictors operate in epoch units (window spacing = 1 epoch).
    predictor = MakePredictor(kind, 1.0, workload.config.seed ^ 0x5bd1e);
  }
  predictor->Train(workload.training);
  return predictor;
}

StripePolicy::Options CalibratedStripeOptions(Predictor* predictor,
                                              const Workload& workload) {
  Rng rng(workload.config.seed ^ 0xC0FFEE);
  StripePolicy::Options sopts;
  // The stripe is time-independent, so the relevant error scale is the
  // cross-track distance to the predicted path, resolved per horizon step
  // (DESIGN.md §2.2): a 3-step stripe is priced much thinner than a
  // 20-step one.
  sopts.build.sigma_per_step = CalibrateCrossTrackSigmaPerStep(
      predictor, workload.training, 10, sopts.build.max_horizon, 240, &rng);
  for (double& s : sopts.build.sigma_per_step) s = std::max(s, 1.0);
  return sopts;
}

RunResult RunMethod(Method method, const Workload& workload,
                    RegionDetector::Options options) {
  std::unique_ptr<Detector> detector = MakeDetector(method, workload, options);
  detector->Run(workload.world);
  RunResult result;
  result.method = method;
  result.stats = detector->stats();
  if (const auto* rd = dynamic_cast<const RegionDetector*>(detector.get())) {
    result.rebuild_count = rd->rebuild_count();
  }
  const std::vector<AlertEvent> alerts = detector->SortedAlerts();
  result.alert_count = alerts.size();
  // GroundTruth() memoizes the post-build-update oracle, so methods on a
  // dynamic-graph workload share one recomputation instead of paying one
  // full scan each. Workloads built without an oracle (million-user
  // streaming runs) pass vacuously.
  result.alerts_exact =
      !workload.oracle_enabled || alerts == workload.GroundTruth();
  return result;
}

}  // namespace proxdet
