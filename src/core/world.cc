#include "core/world.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "exec/thread_pool.h"

namespace proxdet {

void SortAlerts(std::vector<AlertEvent>* alerts) {
  std::sort(alerts->begin(), alerts->end());
}

World::World(std::vector<Trajectory> trajectories, InterestGraph graph,
             int speed_steps, int epochs)
    : trajectories_(std::move(trajectories)),
      graph_(std::move(graph)),
      speed_steps_(speed_steps),
      epochs_(epochs),
      schedule_state_(std::make_unique<ScheduleState>()) {}

World::World(std::unique_ptr<StreamingGenerator> stream, InterestGraph graph,
             int epochs)
    : graph_(std::move(graph)),
      speed_steps_(1),
      epochs_(epochs),
      stream_(std::make_unique<StreamState>()),
      schedule_state_(std::make_unique<ScheduleState>()) {
  stream_->gen = std::move(stream);
  stream_->ring.resize(static_cast<size_t>(kStreamWindow) *
                       stream_->gen->user_count());
}

double World::epoch_seconds() const {
  if (stream_) return stream_->gen->epoch_seconds();
  const double tick =
      trajectories_.empty() ? 1.0 : trajectories_.front().dt();
  return tick * static_cast<double>(speed_steps_);
}

void World::BeginEpoch(int epoch) const {
  if (!stream_) return;
  StreamState& s = *stream_;
  if (epoch == 0 && s.generated > 0) {
    // A fresh Run over the same world: rewind and replay bit-identically.
    s.gen->Reset();
    s.generated = 0;
  }
  const size_t n = s.gen->user_count();
  while (s.generated <= epoch) {
    s.gen->NextEpoch(
        &s.ring[static_cast<size_t>(s.generated % kStreamWindow) * n]);
    ++s.generated;
  }
}

Vec2 World::Position(UserId u, int epoch) const {
  if (stream_) {
    const StreamState& s = *stream_;
    // Readable epochs are the ring window ending at the BeginEpoch cursor;
    // anything else means a driver skipped its BeginEpoch call.
    assert(epoch < s.generated && epoch >= s.generated - kStreamWindow);
    const size_t n = s.gen->user_count();
    return s.ring[static_cast<size_t>(epoch % kStreamWindow) * n +
                  static_cast<size_t>(u)];
  }
  const Trajectory& traj = trajectories_[u];
  const size_t idx = std::min(static_cast<size_t>(epoch) * speed_steps_,
                              traj.size() - 1);
  return traj.at(idx);
}

std::vector<Vec2> World::RecentWindow(UserId u, int epoch,
                                      size_t count) const {
  std::vector<Vec2> out;
  RecentWindow(u, epoch, count, &out);
  return out;
}

void World::RecentWindow(UserId u, int epoch, size_t count,
                         std::vector<Vec2>* out) const {
  out->clear();
  const int first = std::max(0, epoch - static_cast<int>(count) + 1);
  out->reserve(static_cast<size_t>(epoch - first + 1));
  for (int e = first; e <= epoch; ++e) out->push_back(Position(u, e));
}

void World::ScheduleUpdate(const GraphUpdate& update) {
  updates_.push_back(update);
  schedule_state_->dirty.store(true, std::memory_order_release);
}

const std::vector<GraphUpdate>& World::scheduled_updates() const {
  ScheduleState& state = *schedule_state_;
  if (state.dirty.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.dirty.load(std::memory_order_relaxed)) {
      std::stable_sort(updates_.begin(), updates_.end(),
                       [](const GraphUpdate& a, const GraphUpdate& b) {
                         return a.epoch < b.epoch;
                       });
      state.dirty.store(false, std::memory_order_release);
    }
  }
  return updates_;
}

namespace {

/// Per-pair ground-truth replay state (see GroundTruthAlerts).
struct PairState {
  UserId u = -1;
  UserId w = -1;
  double initial_radius = 0.0;
  bool initially_live = false;
  // Indices into the update schedule touching this pair, in order.
  std::vector<size_t> updates;
};

/// Every pair that is ever live: the initial edges plus every pair the
/// update schedule touches, each carrying its private update queue.
std::vector<PairState> BuildPairStates(const InterestGraph& graph,
                                       const std::vector<GraphUpdate>& updates) {
  std::vector<PairState> pairs;
  std::unordered_map<uint64_t, size_t> pair_index;
  for (const auto& e : graph.Edges()) {
    pair_index.emplace(PairKey(e.u, e.w), pairs.size());
    pairs.push_back({std::min(e.u, e.w), std::max(e.u, e.w), e.alert_radius,
                     true, {}});
  }
  for (size_t i = 0; i < updates.size(); ++i) {
    const uint64_t key = PairKey(updates[i].u, updates[i].w);
    auto [it, inserted] = pair_index.emplace(key, pairs.size());
    if (inserted) {
      pairs.push_back({std::min(updates[i].u, updates[i].w),
                       std::max(updates[i].u, updates[i].w), 0.0, false,
                       {}});
    }
    pairs[it->second].updates.push_back(i);
  }
  return pairs;
}

}  // namespace

std::vector<AlertEvent> World::GroundTruthAlerts() const {
  if (stream_) return StreamingGroundTruth();
  // Resolve the lazily-sorted schedule once; the per-pair replay below
  // depends on epoch order.
  const std::vector<GraphUpdate>& updates = scheduled_updates();
  // Pairs never interact: an edge's alert timeline depends only on its own
  // updates and the two trajectories. The scan therefore partitions by
  // *pair* — each pair replays all epochs with its private live/matched
  // state — and the per-pair streams are merged and sorted. This yields
  // the same alert set as the historical per-epoch sweep over a shared
  // live map, for any thread count.
  const std::vector<PairState> pairs = BuildPairStates(graph_, updates);

  // Chunked fan-out keeps per-task bookkeeping negligible next to the
  // epochs * pairs distance work.
  const size_t chunk = 64;
  const size_t chunks = (pairs.size() + chunk - 1) / chunk;
  std::vector<std::vector<AlertEvent>> partial(chunks);
  ParallelFor(chunks, [&](size_t c) {
    std::vector<AlertEvent>& alerts = partial[c];
    const size_t lo = c * chunk;
    const size_t hi = std::min(lo + chunk, pairs.size());
    for (size_t p = lo; p < hi; ++p) {
      const PairState& pair = pairs[p];
      bool live = pair.initially_live;
      double radius = pair.initial_radius;
      bool matched = false;
      size_t next_update = 0;
      for (int epoch = 0; epoch < epochs_; ++epoch) {
        while (next_update < pair.updates.size() &&
               updates[pair.updates[next_update]].epoch <= epoch) {
          const GraphUpdate& up = updates[pair.updates[next_update]];
          if (up.insert) {
            if (!live) {  // Matches the shared map's emplace(): inserting
              live = true;  // an already-live edge keeps the old radius.
              radius = up.alert_radius;
            }
          } else {
            live = false;
            matched = false;
          }
          ++next_update;
        }
        if (!live) continue;
        const double d =
            Distance(Position(pair.u, epoch), Position(pair.w, epoch));
        const bool inside = d < radius;
        if (inside && !matched) {
          alerts.push_back({epoch, pair.u, pair.w});
          matched = true;
        } else if (!inside && matched) {
          matched = false;
        }
      }
    }
  });

  std::vector<AlertEvent> alerts;
  for (const std::vector<AlertEvent>& part : partial) {
    alerts.insert(alerts.end(), part.begin(), part.end());
  }
  SortAlerts(&alerts);
  return alerts;
}

std::vector<AlertEvent> World::StreamingGroundTruth() const {
  // The pair-major replay above needs random epoch access, which a
  // streaming world deliberately does not have. Instead an independent
  // rewound clone re-walks the stream epoch-major: one shared position
  // buffer per epoch, pair chunks carrying their live/matched state across
  // epochs. O(user_count) memory like the world itself; the distance work
  // is identical, so this stays a small-N oracle by cost, not by limits.
  const std::vector<GraphUpdate>& updates = scheduled_updates();
  const std::vector<PairState> pairs = BuildPairStates(graph_, updates);

  const std::unique_ptr<StreamingGenerator> gen = stream_->gen->Clone();
  const size_t n = gen->user_count();
  std::vector<Vec2> pos(n);

  struct ReplayState {
    bool live = false;
    bool matched = false;
    double radius = 0.0;
    size_t next_update = 0;
  };
  std::vector<ReplayState> states(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    states[p].live = pairs[p].initially_live;
    states[p].radius = pairs[p].initial_radius;
  }

  const size_t chunk = 64;
  const size_t chunks = (pairs.size() + chunk - 1) / chunk;
  std::vector<std::vector<AlertEvent>> partial(chunks);
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    gen->NextEpoch(pos.data());
    ParallelFor(chunks, [&](size_t c) {
      const size_t lo = c * chunk;
      const size_t hi = std::min(lo + chunk, pairs.size());
      for (size_t p = lo; p < hi; ++p) {
        const PairState& pair = pairs[p];
        ReplayState& st = states[p];
        while (st.next_update < pair.updates.size() &&
               updates[pair.updates[st.next_update]].epoch <= epoch) {
          const GraphUpdate& up = updates[pair.updates[st.next_update]];
          if (up.insert) {
            if (!st.live) {
              st.live = true;
              st.radius = up.alert_radius;
            }
          } else {
            st.live = false;
            st.matched = false;
          }
          ++st.next_update;
        }
        if (!st.live) continue;
        const double d = Distance(pos[pair.u], pos[pair.w]);
        const bool inside = d < st.radius;
        if (inside && !st.matched) {
          partial[c].push_back({epoch, pair.u, pair.w});
          st.matched = true;
        } else if (!inside && st.matched) {
          st.matched = false;
        }
      }
    });
  }

  std::vector<AlertEvent> alerts;
  for (const std::vector<AlertEvent>& part : partial) {
    alerts.insert(alerts.end(), part.begin(), part.end());
  }
  SortAlerts(&alerts);
  return alerts;
}

}  // namespace proxdet
