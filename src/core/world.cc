#include "core/world.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace proxdet {

namespace {

uint64_t PairKey(UserId u, UserId w) {
  const uint64_t a = static_cast<uint64_t>(std::min(u, w));
  const uint64_t b = static_cast<uint64_t>(std::max(u, w));
  return (a << 32) | b;
}

}  // namespace

void SortAlerts(std::vector<AlertEvent>* alerts) {
  std::sort(alerts->begin(), alerts->end());
}

World::World(std::vector<Trajectory> trajectories, InterestGraph graph,
             int speed_steps, int epochs)
    : trajectories_(std::move(trajectories)),
      graph_(std::move(graph)),
      speed_steps_(speed_steps),
      epochs_(epochs) {}

double World::epoch_seconds() const {
  const double tick =
      trajectories_.empty() ? 1.0 : trajectories_.front().dt();
  return tick * static_cast<double>(speed_steps_);
}

Vec2 World::Position(UserId u, int epoch) const {
  const Trajectory& traj = trajectories_[u];
  const size_t idx = std::min(static_cast<size_t>(epoch) * speed_steps_,
                              traj.size() - 1);
  return traj.at(idx);
}

std::vector<Vec2> World::RecentWindow(UserId u, int epoch,
                                      size_t count) const {
  std::vector<Vec2> out;
  const int first = std::max(0, epoch - static_cast<int>(count) + 1);
  out.reserve(static_cast<size_t>(epoch - first + 1));
  for (int e = first; e <= epoch; ++e) out.push_back(Position(u, e));
  return out;
}

void World::ScheduleUpdate(const GraphUpdate& update) {
  updates_.push_back(update);
  std::stable_sort(updates_.begin(), updates_.end(),
                   [](const GraphUpdate& a, const GraphUpdate& b) {
                     return a.epoch < b.epoch;
                   });
}

std::vector<AlertEvent> World::GroundTruthAlerts() const {
  // Live edge set with radii; pair -> matched status.
  std::unordered_map<uint64_t, double> live;
  std::unordered_set<uint64_t> matched;
  for (const auto& e : graph_.Edges()) {
    live[PairKey(e.u, e.w)] = e.alert_radius;
  }
  std::vector<AlertEvent> alerts;
  size_t next_update = 0;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    while (next_update < updates_.size() &&
           updates_[next_update].epoch <= epoch) {
      const GraphUpdate& up = updates_[next_update];
      const uint64_t key = PairKey(up.u, up.w);
      if (up.insert) {
        live.emplace(key, up.alert_radius);
      } else {
        live.erase(key);
        matched.erase(key);
      }
      ++next_update;
    }
    for (const auto& [key, radius] : live) {
      const UserId u = static_cast<UserId>(key >> 32);
      const UserId w = static_cast<UserId>(key & 0xffffffffULL);
      const double d = Distance(Position(u, epoch), Position(w, epoch));
      const bool inside = d < radius;
      const bool was_matched = matched.count(key) > 0;
      if (inside && !was_matched) {
        alerts.push_back({epoch, std::min(u, w), std::max(u, w)});
        matched.insert(key);
      } else if (!inside && was_matched) {
        matched.erase(key);
      }
    }
  }
  SortAlerts(&alerts);
  return alerts;
}

}  // namespace proxdet
