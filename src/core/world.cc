#include "core/world.h"

#include <algorithm>
#include <unordered_map>

#include "exec/thread_pool.h"

namespace proxdet {

void SortAlerts(std::vector<AlertEvent>* alerts) {
  std::sort(alerts->begin(), alerts->end());
}

World::World(std::vector<Trajectory> trajectories, InterestGraph graph,
             int speed_steps, int epochs)
    : trajectories_(std::move(trajectories)),
      graph_(std::move(graph)),
      speed_steps_(speed_steps),
      epochs_(epochs),
      schedule_state_(std::make_unique<ScheduleState>()) {}

double World::epoch_seconds() const {
  const double tick =
      trajectories_.empty() ? 1.0 : trajectories_.front().dt();
  return tick * static_cast<double>(speed_steps_);
}

Vec2 World::Position(UserId u, int epoch) const {
  const Trajectory& traj = trajectories_[u];
  const size_t idx = std::min(static_cast<size_t>(epoch) * speed_steps_,
                              traj.size() - 1);
  return traj.at(idx);
}

std::vector<Vec2> World::RecentWindow(UserId u, int epoch,
                                      size_t count) const {
  std::vector<Vec2> out;
  RecentWindow(u, epoch, count, &out);
  return out;
}

void World::RecentWindow(UserId u, int epoch, size_t count,
                         std::vector<Vec2>* out) const {
  out->clear();
  const int first = std::max(0, epoch - static_cast<int>(count) + 1);
  out->reserve(static_cast<size_t>(epoch - first + 1));
  for (int e = first; e <= epoch; ++e) out->push_back(Position(u, e));
}

void World::ScheduleUpdate(const GraphUpdate& update) {
  updates_.push_back(update);
  schedule_state_->dirty.store(true, std::memory_order_release);
}

const std::vector<GraphUpdate>& World::scheduled_updates() const {
  ScheduleState& state = *schedule_state_;
  if (state.dirty.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.dirty.load(std::memory_order_relaxed)) {
      std::stable_sort(updates_.begin(), updates_.end(),
                       [](const GraphUpdate& a, const GraphUpdate& b) {
                         return a.epoch < b.epoch;
                       });
      state.dirty.store(false, std::memory_order_release);
    }
  }
  return updates_;
}

std::vector<AlertEvent> World::GroundTruthAlerts() const {
  // Resolve the lazily-sorted schedule once; the per-pair replay below
  // depends on epoch order.
  const std::vector<GraphUpdate>& updates = scheduled_updates();
  // Pairs never interact: an edge's alert timeline depends only on its own
  // updates and the two trajectories. The scan therefore partitions by
  // *pair* — each pair replays all epochs with its private live/matched
  // state — and the per-pair streams are merged and sorted. This yields
  // the same alert set as the historical per-epoch sweep over a shared
  // live map, for any thread count.
  struct PairState {
    UserId u = -1;
    UserId w = -1;
    double initial_radius = 0.0;
    bool initially_live = false;
    // Indices into updates_ touching this pair, in schedule order.
    std::vector<size_t> updates;
  };
  std::vector<PairState> pairs;
  std::unordered_map<uint64_t, size_t> pair_index;
  for (const auto& e : graph_.Edges()) {
    pair_index.emplace(PairKey(e.u, e.w), pairs.size());
    pairs.push_back({std::min(e.u, e.w), std::max(e.u, e.w), e.alert_radius,
                     true, {}});
  }
  for (size_t i = 0; i < updates.size(); ++i) {
    const uint64_t key = PairKey(updates[i].u, updates[i].w);
    auto [it, inserted] = pair_index.emplace(key, pairs.size());
    if (inserted) {
      pairs.push_back({std::min(updates[i].u, updates[i].w),
                       std::max(updates[i].u, updates[i].w), 0.0, false,
                       {}});
    }
    pairs[it->second].updates.push_back(i);
  }

  // Chunked fan-out keeps per-task bookkeeping negligible next to the
  // epochs * pairs distance work.
  const size_t chunk = 64;
  const size_t chunks = (pairs.size() + chunk - 1) / chunk;
  std::vector<std::vector<AlertEvent>> partial(chunks);
  ParallelFor(chunks, [&](size_t c) {
    std::vector<AlertEvent>& alerts = partial[c];
    const size_t lo = c * chunk;
    const size_t hi = std::min(lo + chunk, pairs.size());
    for (size_t p = lo; p < hi; ++p) {
      const PairState& pair = pairs[p];
      bool live = pair.initially_live;
      double radius = pair.initial_radius;
      bool matched = false;
      size_t next_update = 0;
      for (int epoch = 0; epoch < epochs_; ++epoch) {
        while (next_update < pair.updates.size() &&
               updates[pair.updates[next_update]].epoch <= epoch) {
          const GraphUpdate& up = updates[pair.updates[next_update]];
          if (up.insert) {
            if (!live) {  // Matches the shared map's emplace(): inserting
              live = true;  // an already-live edge keeps the old radius.
              radius = up.alert_radius;
            }
          } else {
            live = false;
            matched = false;
          }
          ++next_update;
        }
        if (!live) continue;
        const double d =
            Distance(Position(pair.u, epoch), Position(pair.w, epoch));
        const bool inside = d < radius;
        if (inside && !matched) {
          alerts.push_back({epoch, pair.u, pair.w});
          matched = true;
        } else if (!inside && matched) {
          matched = false;
        }
      }
    }
  });

  std::vector<AlertEvent> alerts;
  for (const std::vector<AlertEvent>& part : partial) {
    alerts.insert(alerts.end(), part.begin(), part.end());
  }
  SortAlerts(&alerts);
  return alerts;
}

}  // namespace proxdet
