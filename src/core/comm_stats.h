#ifndef PROXDET_CORE_COMM_STATS_H_
#define PROXDET_CORE_COMM_STATS_H_

#include <cstdint>

namespace proxdet {

/// Communication I/O accounting. Each field counts *messages* between
/// clients and the server, the unit the paper's figures report:
///  - reports: client -> server location updates (voluntary or probe
///    responses). A report carries the client's recent location window so
///    the server-side predictor has its input (still one message).
///  - probes: server -> client "send me your exact location" requests
///    (case 2 of the cost model, Sec. V-B).
///  - alerts: server -> client alert notifications (case 3; unavoidable).
///  - region_installs: server -> client safe-region payloads.
///  - match_installs: server -> client match-region create/update/delete
///    notifications (case 4 bookkeeping).
struct CommStats {
  uint64_t reports = 0;
  uint64_t probes = 0;
  uint64_t alerts = 0;
  uint64_t region_installs = 0;
  uint64_t match_installs = 0;
  /// Server-side wall-clock seconds spent in proximity bookkeeping
  /// (pair checks, cost model, region construction) — Figure 8's CPU axis.
  double server_seconds = 0.0;

  uint64_t TotalMessages() const {
    return reports + probes + alerts + region_installs + match_installs;
  }

  CommStats& operator+=(const CommStats& o) {
    reports += o.reports;
    probes += o.probes;
    alerts += o.alerts;
    region_installs += o.region_installs;
    match_installs += o.match_installs;
    server_seconds += o.server_seconds;
    return *this;
  }
};

}  // namespace proxdet

#endif  // PROXDET_CORE_COMM_STATS_H_
