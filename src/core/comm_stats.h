#ifndef PROXDET_CORE_COMM_STATS_H_
#define PROXDET_CORE_COMM_STATS_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace proxdet {

/// Communication I/O accounting. Each field counts *messages* between
/// clients and the server, the unit the paper's figures report:
///  - reports: client -> server location updates (voluntary or probe
///    responses). A report carries the client's recent location window so
///    the server-side predictor has its input (still one message).
///  - probes: server -> client "send me your exact location" requests
///    (case 2 of the cost model, Sec. V-B).
///  - alerts: server -> client alert notifications (case 3; unavoidable).
///  - region_installs: server -> client safe-region payloads.
///  - match_installs: server -> client match-region create/update/delete
///    notifications (case 4 bookkeeping).
///
/// Transported runs (src/net/) additionally fill the byte counters with
/// actual wire traffic — frames plus acks plus retransmissions, by
/// direction. In-process runs leave them 0: no byte is ever serialized.
struct CommStats {
  uint64_t reports = 0;
  uint64_t probes = 0;
  uint64_t alerts = 0;
  uint64_t region_installs = 0;
  uint64_t match_installs = 0;
  /// Wire bytes client -> server (uplink frames + uplink acks).
  uint64_t bytes_up = 0;
  /// Wire bytes server -> client (downlink frames + downlink acks).
  uint64_t bytes_down = 0;
  /// Wire bytes shard -> shard (location digests, relayed notices, mesh
  /// acks) in a sharded transported run. Server-internal traffic: not part
  /// of the paper's client I/O objective, so excluded from TotalBytes().
  uint64_t bytes_xshard = 0;
  /// Downlink bytes the batched-frame coalescing saved versus shipping each
  /// message as its own frame + ack (estimate; see net::ShardedFrontend).
  uint64_t batch_saved_bytes = 0;
  /// Server-side wall-clock seconds spent in proximity bookkeeping
  /// (pair checks, cost model, region construction) — Figure 8's CPU axis.
  double server_seconds = 0.0;

  uint64_t TotalMessages() const {
    return reports + probes + alerts + region_installs + match_installs;
  }

  /// Total wire traffic of a transported run; 0 for in-process runs.
  uint64_t TotalBytes() const { return bytes_up + bytes_down; }

  CommStats& operator+=(const CommStats& o) {
    reports += o.reports;
    probes += o.probes;
    alerts += o.alerts;
    region_installs += o.region_installs;
    match_installs += o.match_installs;
    bytes_up += o.bytes_up;
    bytes_down += o.bytes_down;
    bytes_xshard += o.bytes_xshard;
    batch_saved_bytes += o.batch_saved_bytes;
    server_seconds += o.server_seconds;
    return *this;
  }

  /// Equality over the deterministic accounting fields — message counts and
  /// wire bytes. `server_seconds` is wall-clock, not part of the bit-exact
  /// determinism contract, and deliberately excluded.
  friend bool operator==(const CommStats& a, const CommStats& b) {
    return a.reports == b.reports && a.probes == b.probes &&
           a.alerts == b.alerts && a.region_installs == b.region_installs &&
           a.match_installs == b.match_installs && a.bytes_up == b.bytes_up &&
           a.bytes_down == b.bytes_down && a.bytes_xshard == b.bytes_xshard &&
           a.batch_saved_bytes == b.batch_saved_bytes;
  }
  friend bool operator!=(const CommStats& a, const CommStats& b) {
    return !(a == b);
  }

  /// The message-count fields only (no bytes): the comparison used by the
  /// transported-vs-in-process bit-exactness contract, where the transported
  /// side carries wire bytes the in-process side by definition cannot.
  bool SameMessageCounts(const CommStats& o) const {
    return reports == o.reports && probes == o.probes && alerts == o.alerts &&
           region_installs == o.region_installs &&
           match_installs == o.match_installs;
  }

  /// One-line rendering of every deterministic field, for test failure
  /// messages and reports. server_seconds is omitted on purpose: two stats
  /// that compare equal print identically.
  std::string ToString() const {
    return "{reports=" + std::to_string(reports) +
           " probes=" + std::to_string(probes) +
           " alerts=" + std::to_string(alerts) +
           " region_installs=" + std::to_string(region_installs) +
           " match_installs=" + std::to_string(match_installs) +
           " bytes_up=" + std::to_string(bytes_up) +
           " bytes_down=" + std::to_string(bytes_down) +
           " bytes_xshard=" + std::to_string(bytes_xshard) +
           " batch_saved=" + std::to_string(batch_saved_bytes) + "}";
  }

  friend std::ostream& operator<<(std::ostream& os, const CommStats& s) {
    return os << s.ToString();
  }
};

}  // namespace proxdet

#endif  // PROXDET_CORE_COMM_STATS_H_
