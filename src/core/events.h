#ifndef PROXDET_CORE_EVENTS_H_
#define PROXDET_CORE_EVENTS_H_

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "graph/interest_graph.h"

namespace proxdet {

/// Canonical 64-bit key of an unordered user pair: the smaller id in the
/// high word. Ascending key order equals the sorted-edge-list order
/// (u < w, sorted by (u, w)) that every serial commit walks — the spatial
/// index paths sort their candidate sets by this key to reproduce the
/// exhaustive scans' commit order bit-exactly (DESIGN.md §10).
inline uint64_t PairKey(UserId u, UserId w) {
  const uint64_t a = static_cast<uint64_t>(std::min(u, w));
  const uint64_t b = static_cast<uint64_t>(std::max(u, w));
  return (a << 32) | b;
}

/// The smaller / larger endpoint encoded in a PairKey.
inline UserId PairKeyMin(uint64_t key) {
  return static_cast<UserId>(key >> 32);
}
inline UserId PairKeyMax(uint64_t key) {
  return static_cast<UserId>(key & 0xffffffffULL);
}

/// A proximity alert: pair (u, w) with u < w crossed below its alert radius
/// at `epoch` (Def. 1 fires only on the first crossing).
struct AlertEvent {
  int epoch = 0;
  UserId u = -1;
  UserId w = -1;

  friend bool operator==(const AlertEvent& a, const AlertEvent& b) {
    return a.epoch == b.epoch && a.u == b.u && a.w == b.w;
  }
  friend bool operator<(const AlertEvent& a, const AlertEvent& b) {
    return std::tie(a.epoch, a.u, a.w) < std::tie(b.epoch, b.u, b.w);
  }
};

/// Canonical ordering so alert streams from different detectors compare
/// exactly.
void SortAlerts(std::vector<AlertEvent>* alerts);

}  // namespace proxdet

#endif  // PROXDET_CORE_EVENTS_H_
