#ifndef PROXDET_CORE_EVENTS_H_
#define PROXDET_CORE_EVENTS_H_

#include <tuple>
#include <vector>

#include "graph/interest_graph.h"

namespace proxdet {

/// A proximity alert: pair (u, w) with u < w crossed below its alert radius
/// at `epoch` (Def. 1 fires only on the first crossing).
struct AlertEvent {
  int epoch = 0;
  UserId u = -1;
  UserId w = -1;

  friend bool operator==(const AlertEvent& a, const AlertEvent& b) {
    return a.epoch == b.epoch && a.u == b.u && a.w == b.w;
  }
  friend bool operator<(const AlertEvent& a, const AlertEvent& b) {
    return std::tie(a.epoch, a.u, a.w) < std::tie(b.epoch, b.u, b.w);
  }
};

/// Canonical ordering so alert streams from different detectors compare
/// exactly.
void SortAlerts(std::vector<AlertEvent>* alerts);

}  // namespace proxdet

#endif  // PROXDET_CORE_EVENTS_H_
