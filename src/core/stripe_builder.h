#ifndef PROXDET_CORE_STRIPE_BUILDER_H_
#define PROXDET_CORE_STRIPE_BUILDER_H_

#include <vector>

#include "core/cost_model.h"
#include "geom/stripe.h"
#include "region/region.h"

namespace proxdet {

/// A friend as seen by the stripe builder: the region the server currently
/// attributes to the friend (or a virtual circle around an exact location
/// when the friend is rebuilding in the same epoch), the pair's alert
/// radius, and the friend's speed estimate. The region is borrowed — the
/// caller's shape must outlive the BuildPredictiveStripe call. (A variant
/// holding a Stripe is several hundred bytes plus heap blocks; copying one
/// per friend per rebuild dominated the resolve phase before this became a
/// handle.)
struct StripeFriendConstraint {
  const SafeRegionShape* region = nullptr;
  double alert_radius = 0.0;
  double speed = 0.0;  // m/epoch
};

struct StripeBuildConfig {
  /// Calibrated prediction-error scale of the underlying model (meters).
  double sigma = 20.0;
  /// Horizon-resolved calibration (element j-1 = cross-track sigma of step
  /// j); when non-empty it overrides `sigma`, letting Algorithm 2 price
  /// short stripes thin and long stripes thick.
  std::vector<double> sigma_per_step;

  /// Error scale used when the stripe encloses `m` predicted steps.
  double SigmaForStep(int m) const {
    if (sigma_per_step.empty()) return sigma;
    if (m < 1) m = 1;
    const size_t idx = std::min(static_cast<size_t>(m) - 1,
                                sigma_per_step.size() - 1);
    return sigma_per_step[idx];
  }
  /// Hard cap on the number of predicted steps enclosed (the paper's
  /// prediction output lengths run 10-30, Fig. 7).
  int max_horizon = 20;
  /// Confidence floor: stop extending the stripe once p^m < p_min
  /// (Algorithm 2's tolerance threshold on step-m prediction accuracy).
  double p_min = 0.05;
  /// Bisection tolerance on |E_m - E_p| in epochs.
  double epsilon = 1e-3;
  /// Radius cap when no friend constrains the stripe (and a global cap
  /// otherwise): max(sigma_cap_mult * sigma, min_radius). Sized by the
  /// prediction-error scale — beyond a few sigmas the stay probability
  /// saturates and extra radius only attracts probes.
  double sigma_cap_mult = 4.0;
  double min_radius = 30.0;  // meters
  /// E_p pessimism calibration. Eq. (4)'s estimate assumes every friend
  /// beelines toward the stripe at full speed; in the running system probes
  /// fire only when a nearby friend actually rebuilds within the alert
  /// radius, which is rarer, so the E_m = E_p balance sacrifices more
  /// radius than the realized probe pressure justifies. Friend speeds
  /// entering E_p are scaled by this factor (a few percent of total I/O at
  /// default density; see bench/ablation_cost_model).
  double approach_factor = 0.08;
  /// Ablation switch: estimate stripe-to-friend clearances with the paper's
  /// Eq. (8) anchor-point approximation instead of exact segment distances.
  /// The approximation can only overestimate clearance, so the final radius
  /// is still clamped against the exact bound (safety is never traded).
  bool use_eq8_distance = false;
  /// Anchor quantization grid (cells per meter; 0 disables). Stripe anchors
  /// are snapped to this grid *before* any clearance or radius math, so the
  /// built stripe is already exactly representable by the wire codec's
  /// quantized-delta polyline encoding (net/wire.h, kWireQuantScale) — the
  /// server ships the compressed form and the guarantee still holds, because
  /// every gap and radius was derived from the snapped anchors. Sub-4mm
  /// displacement at the default 1/256 m grid, far below sigma.
  double quantize_grid = 256.0;
};

struct StripeBuildResult {
  Stripe stripe;
  int m = 0;  // Number of predicted steps enclosed.
  RadiusSolution solution;
  /// SoA lanes staged for this build (point-like constraints; concatenated
  /// stripe segments) and the number of batched-kernel dispatches issued.
  /// The builder itself is obs-free; the policy layer surfaces these as the
  /// simd.batch.stripe_* histograms and the simd.dispatch.* counter.
  size_t staged_point_lanes = 0;
  size_t staged_segment_lanes = 0;
  size_t kernel_dispatches = 0;
};

/// Algorithm 2: given the user's exact location, the predictor's future
/// locations and the friend constraints, pick the (m, s) pair maximizing
/// min(E_m, E_p). The stripe path is anchored at the current location so
/// the user is inside the region it is handed.
///
/// Guarantee: the returned stripe keeps distance >= alert_radius from every
/// constraint region (E_p >= 0 by construction), so installing it preserves
/// the pairwise safety invariant (Definition 2).
StripeBuildResult BuildPredictiveStripe(
    const Vec2& current, const std::vector<Vec2>& predicted,
    const std::vector<StripeFriendConstraint>& friends, double user_speed,
    const StripeBuildConfig& config, int epoch);

}  // namespace proxdet

#endif  // PROXDET_CORE_STRIPE_BUILDER_H_
