#ifndef PROXDET_CORE_POLICIES_H_
#define PROXDET_CORE_POLICIES_H_

#include <memory>
#include <unordered_map>

#include "core/region_detector.h"
#include "core/stripe_builder.h"
#include "predict/predictor.h"

namespace proxdet {

/// Buddy Tracking [3]: a static convex polygon per user. Toward each
/// rebuilding friend the slack corridor is split by a perpendicular
/// boundary (the "warning area" of Fig. 1(a)); toward installed regions a
/// half-plane is placed inside the measured slack and then verified (and
/// shrunk if needed) against the exact polygon distance — sound for every
/// shape in the taxonomy.
class StaticPolygonPolicy : public RegionPolicy {
 public:
  struct Options {
    /// Half-extent of the bounding square before friend clipping; caps
    /// region size when no friend is nearby.
    double extent_cap = 3000.0;  // meters
    /// Verify-and-shrink iterations against non-circular friend regions.
    int max_shrink_iterations = 6;
  };

  StaticPolygonPolicy() : StaticPolygonPolicy(Options()) {}
  explicit StaticPolygonPolicy(Options options) : options_(options) {}

  std::string name() const override { return "Static"; }
  SafeRegionShape BuildRegion(UserId u, const Vec2& location,
                              const std::vector<Vec2>& recent_window,
                              double speed,
                              const std::vector<FriendView>& friends,
                              int epoch) override;

 private:
  Options options_;
};

/// FMD / CMD [19]: a circle moving with the user's velocity at build time.
/// FMD uses a fixed base radius; CMD (self_tuning) adapts a per-user
/// multiplier — exits mean the region was too small, probes mean it was
/// too large. Requires the per-epoch pair check (regions drift).
class MobileCirclePolicy : public RegionPolicy {
 public:
  struct Options {
    bool self_tuning = false;  // false = FMD, true = CMD.
    /// FMD's fixed system-wide base radius in meters ([19] assigns every
    /// user the same mobile-region size; only CMD adapts it per user).
    double base_radius = 500.0;
    double increase = 1.25;  // CMD multiplier on exit (too small).
    double decrease = 0.8;   // CMD multiplier on probe (too large).
    double min_multiplier = 0.2;
    double max_multiplier = 6.0;
  };

  MobileCirclePolicy() : MobileCirclePolicy(Options()) {}
  explicit MobileCirclePolicy(Options options) : options_(options) {}

  std::string name() const override {
    return options_.self_tuning ? "CMD" : "FMD";
  }
  bool NeedsPerEpochPairCheck() const override { return true; }
  SafeRegionShape BuildRegion(UserId u, const Vec2& location,
                              const std::vector<Vec2>& recent_window,
                              double speed,
                              const std::vector<FriendView>& friends,
                              int epoch) override;
  void OnExit(UserId u) override;
  void OnProbe(UserId u) override;

 private:
  Options options_;
  std::unordered_map<UserId, double> multiplier_;
};

/// This paper's method: a fixed-radius stripe around the predictor's future
/// path, sized by the holistic cost model (Algorithm 2).
class StripePolicy : public RegionPolicy {
 public:
  struct Options {
    StripeBuildConfig build;
  };

  explicit StripePolicy(std::unique_ptr<Predictor> predictor);
  StripePolicy(std::unique_ptr<Predictor> predictor, Options options);

  std::string name() const override { return "Stripe+" + predictor_->name(); }
  SafeRegionShape BuildRegion(UserId u, const Vec2& location,
                              const std::vector<Vec2>& recent_window,
                              double speed,
                              const std::vector<FriendView>& friends,
                              int epoch) override;

  Predictor* predictor() { return predictor_.get(); }

 private:
  std::unique_ptr<Predictor> predictor_;
  Options options_;
  // Reused across BuildRegion calls (serial resolve queue): constraint
  // records borrowing the caller's FriendView regions.
  std::vector<StripeFriendConstraint> constraints_scratch_;
};

}  // namespace proxdet

#endif  // PROXDET_CORE_POLICIES_H_
