#include "core/region_detector.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>
#include <unordered_map>
#include <variant>

#include "common/timer.h"
#include "core/client_link.h"
#include "core/cost_model.h"
#include "core/spatial_index.h"
#include "exec/thread_pool.h"
#include "geom/simd/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "region/match_region.h"

namespace proxdet {

namespace {

/// Handles into the global registry, resolved once. Every counter mirrors a
/// CommStats field (incremented at the same serial-commit sites, so the
/// RunReport reconciliation holds to the unit) or a deterministic engine
/// total; all are pure functions of the workload seed.
struct EngineMetrics {
  obs::Counter& reports;
  obs::Counter& probes;
  obs::Counter& alerts;
  obs::Counter& region_installs;
  obs::Counter& match_installs;
  obs::Counter& rebuilds;
  obs::Counter& epochs;
  obs::Counter& exits;
  obs::Counter& pair_check_probed_edges;

  static const EngineMetrics& Get() {
    static const EngineMetrics m{
        obs::Metrics().GetCounter("engine.reports"),
        obs::Metrics().GetCounter("engine.probes"),
        obs::Metrics().GetCounter("engine.alerts"),
        obs::Metrics().GetCounter("engine.region_installs"),
        obs::Metrics().GetCounter("engine.match_installs"),
        obs::Metrics().GetCounter("engine.rebuilds"),
        obs::Metrics().GetCounter("engine.epochs"),
        obs::Metrics().GetCounter("engine.safe_region_exits"),
        obs::Metrics().GetCounter("engine.pair_check_probed_edges"),
    };
    return m;
  }
};

/// Spatial-index work counters (same registry names as the naive engine's
/// grid path); reconciled against index_stats() to the unit.
struct IndexMetrics {
  obs::Counter& upserts;
  obs::Counter& moves;
  obs::Counter& rebuilds;
  obs::Counter& queries;
  obs::Counter& cells_probed;
  obs::Counter& candidates;
  obs::Counter& match_classified;
  obs::Counter& match_exact;

  static const IndexMetrics& Get() {
    static const IndexMetrics m{
        obs::Metrics().GetCounter("engine.index.upserts"),
        obs::Metrics().GetCounter("engine.index.moves"),
        obs::Metrics().GetCounter("engine.index.rebuilds"),
        obs::Metrics().GetCounter("engine.index.queries"),
        obs::Metrics().GetCounter("engine.index.cells_probed"),
        obs::Metrics().GetCounter("engine.index.candidates"),
        obs::Metrics().GetCounter("engine.index.match_classified"),
        obs::Metrics().GetCounter("engine.index.match_exact"),
    };
    return m;
  }
};

/// Batched-geometry observability for the engine's chunked scans: one
/// histogram sample per store-kernel dispatch (the SoA lane count handed to
/// the kernel) plus a dispatch counter keyed by the runtime-selected
/// backend. Batch sizes are chunk-shaped — the grains below are fixed, so
/// the histograms are pure functions of the workload and stay in the
/// deterministic digest. The scalar-vs-w4-vs-w8 split depends on CPUID and
/// -DPROXDET_SIMD, so the dispatch counter is wall-clock-kinded.
/// Recording happens at most a few times per chunk, never per lane.
struct SimdScanMetrics {
  obs::HistogramMetric& exit_batch;
  obs::HistogramMetric& match_batch;
  obs::HistogramMetric& pair_check_batch;
  obs::Counter& dispatches;

  static const SimdScanMetrics& Get() {
    static const std::vector<double> kLaneBuckets{
        0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
        1024.0};
    static const SimdScanMetrics m{
        obs::Metrics().GetHistogram("simd.batch.exit_scan", kLaneBuckets,
                                    obs::Kind::kDeterministic),
        obs::Metrics().GetHistogram("simd.batch.match_scan", kLaneBuckets,
                                    obs::Kind::kDeterministic),
        obs::Metrics().GetHistogram("simd.batch.pair_check", kLaneBuckets,
                                    obs::Kind::kDeterministic),
        obs::Metrics().GetCounter(
            std::string("simd.dispatch.") +
                simd::BackendName(simd::ActiveBackend()),
            obs::Kind::kWallClock),
    };
    return m;
  }
};

constexpr double kMinSpeed = 1e-3;  // m/epoch floor for estimates.

// Chunk sizes for the parallel read-only scans. Coarse enough that the
// per-chunk scheduling cost vanishes next to the geometry, fine enough to
// balance 8 threads on 10k-user workloads. Chunk boundaries never affect
// results (scans write index-addressed slots; commits run in index order).
constexpr size_t kUserGrain = 512;   // ShapeContains per user.
constexpr size_t kEdgeGrain = 256;   // ShapeMinDistance per edge.
constexpr size_t kPairGrain = 128;   // MatchRegion::Contains per pair.
constexpr size_t kQueryGrain = 256;  // Region-grid query per user.

/// Epoch-resolved circle form of a shape, when it has one. Circle and
/// MovingCircle predicates against these resolved circles are bit-exact
/// with the ShapeContains / ShapeMinDistance visitors (which resolve with
/// the same AtEpoch expression) — the batched kernels below rely on that.
bool AsCircleAt(const SafeRegionShape& s, int epoch, Circle* out) {
  if (const Circle* c = std::get_if<Circle>(&s)) {
    *out = *c;
    return true;
  }
  if (const MovingCircle* mc = std::get_if<MovingCircle>(&s)) {
    *out = mc->AtEpoch(epoch);
    return true;
  }
  return false;
}

bool EdgesEqual(const std::vector<InterestGraph::Edge>& a,
                const std::vector<InterestGraph::Edge>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].u != b[i].u || a[i].w != b[i].w ||
        a[i].alert_radius != b[i].alert_radius) {
      return false;
    }
  }
  return true;
}

}  // namespace

void RegionPolicy::OnExit(UserId u) { (void)u; }
void RegionPolicy::OnProbe(UserId u) { (void)u; }

RegionDetector::RegionDetector(std::unique_ptr<RegionPolicy> policy)
    : RegionDetector(std::move(policy), Options()) {}

RegionDetector::RegionDetector(std::unique_ptr<RegionPolicy> policy,
                               Options options)
    : policy_(std::move(policy)), options_(options) {}

RegionDetector::~RegionDetector() = default;

std::string RegionDetector::name() const { return policy_->name(); }

// Per-run engine state; kept out of the header.
struct RegionDetector::Impl {
  struct UserState {
    std::optional<SafeRegionShape> region;
    double speed = kMinSpeed;  // m/epoch estimate from reported windows.
    Vec2 pos;  // Exact location; server-visible only when reported(u).
  };

  // Per-epoch flags, split out of UserState into one byte per user: the
  // epoch reset collapses to a single fill, and the scan phases touch a
  // dense array instead of striding through the fat region records. All
  // writes happen in serial-commit code; parallel scans only read.
  static constexpr uint8_t kReported = 1;
  static constexpr uint8_t kNeedsRegion = 2;
  static constexpr uint8_t kRebuilt = 4;
  static constexpr uint8_t kQueued = 8;
  std::vector<uint8_t> epoch_flags;
  bool reported(UserId u) const { return epoch_flags[u] & kReported; }
  bool needs_region(UserId u) const { return epoch_flags[u] & kNeedsRegion; }
  bool rebuilt(UserId u) const { return epoch_flags[u] & kRebuilt; }
  bool queued(UserId u) const { return epoch_flags[u] & kQueued; }
  void mark(UserId u, uint8_t bit) { epoch_flags[u] |= bit; }
  void unmark(UserId u, uint8_t bit) {
    epoch_flags[u] &= static_cast<uint8_t>(~bit);
  }

  const World& world;
  RegionDetector& self;
  InterestGraph graph;
  std::vector<UserState> users;
  std::unordered_map<uint64_t, MatchRegion> matched;
  std::deque<UserId> queue;
  int epoch = 0;

  // Which acceleration structures this run maintains. The flags only change
  // *how* candidates are enumerated — the outputs are bit-exact either way.
  const bool per_epoch_check;  // Policy has moving regions (FMD/CMD).
  const bool use_grid;         // Region grid drives the pair check.
  const bool use_match_cls;    // Cell classifiers drive the match scan.

  // Reused scratch, kept allocation-free across epochs (clear, don't
  // free). The scan buffers are written by parallel read-only scans
  // (distinct slots per index / per chunk) and consumed by the serial
  // in-order commits below; window_buf, match_keys, friend_views, flagged
  // and unindexed are only ever touched from serial code.
  std::vector<Vec2> window_buf;
  std::vector<uint8_t> exit_flags;    // Per user: see ExitFlag.
  std::vector<uint8_t> pair_inside;   // Per sorted matched-pair key.
  std::vector<uint8_t> edge_probe;    // Per cached edge: scan said d < r.
  std::vector<uint64_t> match_keys;   // Sorted matched-pair keys.
  std::vector<FriendView> friend_views;
  struct ChunkWork {
    uint64_t queries = 0;
    uint64_t cells = 0;
    uint64_t candidates = 0;
  };
  std::vector<std::vector<uint64_t>> flag_chunks;  // Per-chunk PairKeys.
  std::vector<std::vector<int32_t>> cand_bufs;     // Per-chunk query scratch.
  std::vector<ChunkWork> chunk_work;
  // Per-chunk SoA staging for the batched geometry kernels. One pool
  // serves every phase (they run sequentially): the exit scan stages
  // (circle, point) lanes, the match oracle (circle, point) lane pairs,
  // the pair check (circle, circle, threshold) lanes. Cache-line aligned
  // like the buffers above — the headers are written from pool threads.
  struct alignas(64) BatchScratch {
    std::vector<uint32_t> ids;   // User id or edge slot per lane.
    std::vector<uint64_t> keys;  // Pair key per lane (pair check).
    std::vector<double> ax, ay, ar;  // First circle (center, radius).
    std::vector<double> bx, by, br;  // Point or second circle.
    std::vector<double> thr;         // Per-lane threshold.
    std::vector<uint8_t> flags;      // Kernel verdicts.
  };
  std::vector<BatchScratch> batch_chunks;
  // Per-user circle form of the installed region, resolved once per epoch
  // at pair-check start (grid path); parallel scans then read plain
  // arrays instead of re-resolving the variant per candidate pair.
  std::vector<double> circ_x, circ_y, circ_r;
  std::vector<uint8_t> circ_ok;
  std::vector<uint64_t> flagged;   // Merged + sorted flagged pairs.
  std::vector<UserId> unindexed;   // Regions with degenerate bounds.

  // The edge snapshot, kept sorted by (u, w) and maintained *incrementally*
  // under graph updates (a delete/insert epoch used to re-snapshot and
  // re-sort the whole list via graph.Edges()). validate_builds asserts the
  // delta path equals a from-scratch snapshot after every update batch.
  std::vector<InterestGraph::Edge> edge_cache;

  // Grid-path state (maintained only when the flags above say so).
  RegionGridIndex region_grid;
  std::unordered_map<uint64_t, double> edge_radius;  // PairKey -> r_{u,w}.
  std::unordered_map<uint64_t, MatchCellClassifier> match_cls;
  std::vector<double> max_incident;  // Per-user largest incident radius.
  double max_alert_radius = 0.0;     // Cell-size anchor.
  SpatialIndexStats match_stats;     // Classifier work (serial folds).

  enum ExitFlag : uint8_t { kInside = 0, kExited = 1, kNeedsInit = 2 };

  Impl(const World& w, RegionDetector& s)
      : world(w),
        self(s),
        graph(w.graph()),
        users(w.user_count()),
        epoch_flags(w.user_count(), 0),
        per_epoch_check(s.policy_->NeedsPerEpochPairCheck()),
        use_grid(per_epoch_check && s.options_.use_spatial_index),
        use_match_cls(s.options_.use_match_regions &&
                      s.options_.use_spatial_index) {
    if (per_epoch_check) {
      edge_cache = graph.Edges();
      if (use_grid) {
        max_incident.assign(users.size(), 0.0);
        for (const auto& e : edge_cache) {
          edge_radius.emplace(PairKey(e.u, e.w), e.alert_radius);
          max_incident[e.u] = std::max(max_incident[e.u], e.alert_radius);
          max_incident[e.w] = std::max(max_incident[e.w], e.alert_radius);
          max_alert_radius = std::max(max_alert_radius, e.alert_radius);
        }
      }
    }
  }

  bool IsMatched(UserId u, UserId w) const {
    return matched.count(PairKey(u, w)) > 0;
  }

  /// Classifier cell size: a quarter radius keeps the provably-inside core
  /// non-empty (the inscribed square spans ~5.6 cells) while classification
  /// itself is O(1) integer compares regardless of the range sizes.
  static MatchCellClassifier MakeClassifier(const Circle& c) {
    return MatchCellClassifier(c, std::max(c.radius, 1e-9) / 4.0);
  }

  /// Client -> server location upload (at most one per user per epoch).
  /// Serial-commit code only (reuses the shared window buffer).
  void Report(UserId u) {
    if (reported(u)) return;
    mark(u, kReported);
    self.stats_.reports += 1;
    EngineMetrics::Get().reports.Inc();
    // The report carries the recent window; refresh the speed estimate.
    if (self.link_ != nullptr) {
      // Transported run: the client uploads through the wire and the engine
      // consumes position + window exactly as the server decoded them (the
      // codec's exact round-trip keeps this bit-identical to the direct
      // read below).
      self.link_->Report(u, epoch, self.options_.window, &users[u].pos,
                         &window_buf);
    } else {
      world.RecentWindow(u, epoch, self.options_.window, &window_buf);
    }
    if (window_buf.size() >= 2) {
      double dist = 0.0;
      for (size_t i = 1; i < window_buf.size(); ++i) {
        dist += Distance(window_buf[i - 1], window_buf[i]);
      }
      users[u].speed = std::max(
          kMinSpeed, dist / static_cast<double>(window_buf.size() - 1));
    }
  }

  void EnqueueRebuild(UserId u) {
    mark(u, kNeedsRegion);
    if (!queued(u)) {
      mark(u, kQueued);
      queue.push_back(u);
    }
  }

  /// Server -> client probe: request the exact location, then rebuild the
  /// probed user's region (Sec. V-B case 2).
  void Probe(UserId u) {
    if (reported(u)) {
      EnqueueRebuild(u);
      return;
    }
    self.stats_.probes += 1;
    EngineMetrics::Get().probes.Inc();
    if (self.link_ != nullptr) self.link_->Probe(u, epoch);
    Report(u);
    EnqueueRebuild(u);
    self.policy_->OnProbe(u);
  }

  /// Both endpoints exact and within radius: fire the alert, install the
  /// match region (Def. 3), and drop the pair from safe-region duty.
  void CreateMatch(UserId u, UserId w, double r) {
    const MatchRegion region = MatchRegion::Make(users[u].pos, users[w].pos, r);
    const uint64_t key = PairKey(u, w);
    matched.emplace(key, region);
    if (use_match_cls) {
      match_cls.insert_or_assign(key, MakeClassifier(region.circle()));
    }
    const UserId a = std::min(u, w);
    const UserId b = std::max(u, w);
    self.alerts_.push_back({epoch, a, b});
    self.stats_.alerts += 2;
    EngineMetrics::Get().alerts.Inc(2);
    if (self.link_ != nullptr) {
      self.link_->Alert(u, a, b, epoch);
      self.link_->Alert(w, a, b, epoch);
    }
    if (self.options_.use_match_regions) {
      self.stats_.match_installs += 2;
      EngineMetrics::Get().match_installs.Inc(2);
      if (self.link_ != nullptr) {
        self.link_->InstallMatch(u, epoch, MatchOp::kCreate, a, b,
                                 region.circle());
        self.link_->InstallMatch(w, epoch, MatchOp::kCreate, a, b,
                                 region.circle());
      }
    }
  }

  void DissolveMatch(UserId u, UserId w) {
    const uint64_t key = PairKey(u, w);
    matched.erase(key);
    match_cls.erase(key);
    if (self.options_.use_match_regions) {
      self.stats_.match_installs += 2;  // Deletion notices.
      EngineMetrics::Get().match_installs.Inc(2);
      if (self.link_ != nullptr) {
        const UserId a = std::min(u, w);
        const UserId b = std::max(u, w);
        self.link_->InstallMatch(u, epoch, MatchOp::kDelete, a, b, Circle{});
        self.link_->InstallMatch(w, epoch, MatchOp::kDelete, a, b, Circle{});
      }
    }
  }

  /// Applies one inserted edge to the incremental structures.
  void OnEdgeInserted(UserId u, UserId w, double r) {
    if (per_epoch_check) {
      const UserId a = std::min(u, w);
      const UserId b = std::max(u, w);
      const InterestGraph::Edge edge{a, b, r};
      const auto it = std::lower_bound(
          edge_cache.begin(), edge_cache.end(), edge,
          [](const InterestGraph::Edge& x, const InterestGraph::Edge& y) {
            return x.u != y.u ? x.u < y.u : x.w < y.w;
          });
      edge_cache.insert(it, edge);
    }
    if (use_grid) {
      edge_radius.insert_or_assign(PairKey(u, w), r);
      max_incident[u] = std::max(max_incident[u], r);
      max_incident[w] = std::max(max_incident[w], r);
      max_alert_radius = std::max(max_alert_radius, r);
    }
  }

  /// Applies one deleted edge to the incremental structures.
  void OnEdgeRemoved(UserId u, UserId w) {
    if (per_epoch_check) {
      const UserId a = std::min(u, w);
      const UserId b = std::max(u, w);
      const auto it = std::lower_bound(
          edge_cache.begin(), edge_cache.end(), InterestGraph::Edge{a, b, 0.0},
          [](const InterestGraph::Edge& x, const InterestGraph::Edge& y) {
            return x.u != y.u ? x.u < y.u : x.w < y.w;
          });
      if (it != edge_cache.end() && it->u == a && it->w == b) {
        edge_cache.erase(it);
      }
    }
    if (use_grid) {
      const auto rit = edge_radius.find(PairKey(u, w));
      const double removed = rit != edge_radius.end() ? rit->second : 0.0;
      if (rit != edge_radius.end()) edge_radius.erase(rit);
      // The per-user maxima only shrink on deletion; recompute the two
      // touched users (O(degree)). The global anchor shrinks at most —
      // recompute only when the deleted edge carried it (rare); a stale
      // high anchor would still be sound, just coarser cells.
      max_incident[u] = graph.MaxIncidentRadius(u);
      max_incident[w] = graph.MaxIncidentRadius(w);
      if (removed >= max_alert_radius) {
        max_alert_radius = 0.0;
        for (const auto& [key, r] : edge_radius) {
          (void)key;
          max_alert_radius = std::max(max_alert_radius, r);
        }
      }
    }
  }

  /// Applies scheduled interest-graph changes at epoch start (Sec. VI-E).
  void ApplyGraphUpdates(size_t* next_update) {
    const auto& updates = world.scheduled_updates();
    bool changed = false;
    while (*next_update < updates.size() &&
           updates[*next_update].epoch <= epoch) {
      const GraphUpdate& up = updates[*next_update];
      ++*next_update;
      if (up.insert) {
        if (!graph.AddEdge(up.u, up.w, up.alert_radius)) continue;
        changed = true;
        OnEdgeInserted(up.u, up.w, up.alert_radius);
        // New pair: probe only when their current regions may violate the
        // radius (the paper's insertion rule).
        if (users[up.u].region && users[up.w].region &&
            ShapeMinDistanceBelow(*users[up.u].region, *users[up.w].region,
                                  epoch, up.alert_radius + self.options_.min_gap,
                                  /*inclusive=*/true)) {
          Probe(up.u);
          Probe(up.w);
        }
      } else {
        if (IsMatched(up.u, up.w)) DissolveMatch(up.u, up.w);
        if (!graph.RemoveEdge(up.u, up.w)) continue;
        changed = true;
        OnEdgeRemoved(up.u, up.w);
        // Safe regions are retained; they were conservative for the
        // deleted edge, which is always sound.
      }
    }
    if (changed && per_epoch_check && self.options_.validate_builds) {
      // The dynamic-graph tests run with validation on: the incremental
      // snapshot must equal a from-scratch re-sort after every batch.
      const bool snapshot_ok = EdgesEqual(edge_cache, graph.Edges());
      assert(snapshot_ok);
      (void)snapshot_ok;
    }
  }

  /// Clients compare their position against match regions (Algorithm 1
  /// lines 10-18). Parallel scan: both containment tests per pair fan out
  /// over the pool (the map and every position are read-only until the
  /// commit). Serial commit: reports, re-centers and dissolutions apply in
  /// sorted-key order, so stats and dissolution side effects are identical
  /// to the historical serial loop for any thread count.
  ///
  /// With the index enabled, each match region carries a cell classifier:
  /// most containment verdicts settle with integer cell compares, and only
  /// boundary cells run the exact circle predicate. The classifier's
  /// contract (kInside/kOutside verdicts provably agree with the computed
  /// Circle::ContainsStrict — DESIGN.md §10) makes pair_inside, and hence
  /// everything downstream, bit-identical to the exact scan.
  void MatchRegionPhase() {
    // Collect keys first: dissolution mutates the map.
    match_keys.clear();
    for (const auto& [key, region] : matched) {
      (void)region;
      match_keys.push_back(key);
    }
    std::sort(match_keys.begin(), match_keys.end());  // Deterministic.
    if (self.options_.use_match_regions) {
      const size_t n = match_keys.size();
      pair_inside.assign(n, 0);
      const size_t chunks = n == 0 ? 0 : (n + kPairGrain - 1) / kPairGrain;
      if (use_match_cls) {
        if (chunk_work.size() < chunks) chunk_work.resize(chunks);
        for (size_t c = 0; c < chunks; ++c) chunk_work[c] = ChunkWork{};
        ParallelForChunked(n, kPairGrain, [&](size_t lo, size_t hi) {
          ChunkWork& work = chunk_work[lo / kPairGrain];
          for (size_t k = lo; k < hi; ++k) {
            const uint64_t key = match_keys[k];
            const UserId u = PairKeyMin(key);
            const UserId w = PairKeyMax(key);
            const Vec2& pu = users[u].pos;
            const Vec2& pw = users[w].pos;
            bool inside;
            work.queries += 1;  // One classified pair.
            const MatchCellClassifier& cls = match_cls.find(key)->second;
            const auto vu = cls.Classify(pu);
            if (vu == MatchCellClassifier::kOutside) {
              inside = false;
            } else {
              const auto vw = cls.Classify(pw);
              if (vw == MatchCellClassifier::kOutside) {
                inside = false;
              } else if (vu == MatchCellClassifier::kInside &&
                         vw == MatchCellClassifier::kInside) {
                inside = true;
              } else {
                work.candidates += 1;  // Boundary: exact fallback.
                const MatchRegion& m = matched.find(key)->second;
                inside = m.Contains(pu) && m.Contains(pw);
              }
            }
            pair_inside[k] = inside;
          }
        });
        for (size_t c = 0; c < chunks; ++c) {
          match_stats.match_classified += chunk_work[c].queries;
          match_stats.match_exact += chunk_work[c].candidates;
        }
      } else {
        // Oracle scan (no cell classifiers): both strict containment tests
        // of every pair stage as two adjacent SoA lanes against the pair's
        // match circle and settle in one batched kernel call; ANDing the
        // lane verdicts equals the scalar `Contains(pu) && Contains(pw)`
        // (pure predicates — short-circuiting is unobservable).
        if (batch_chunks.size() < chunks) batch_chunks.resize(chunks);
        ParallelForChunked(n, kPairGrain, [&](size_t lo, size_t hi) {
          BatchScratch& sc = batch_chunks[lo / kPairGrain];
          const size_t m = (hi - lo) * 2;
          sc.ax.resize(m);
          sc.ay.resize(m);
          sc.ar.resize(m);
          sc.bx.resize(m);
          sc.by.resize(m);
          sc.flags.resize(m);
          for (size_t k = lo; k < hi; ++k) {
            const uint64_t key = match_keys[k];
            const Circle& c = matched.find(key)->second.circle();
            const Vec2& pu = users[PairKeyMin(key)].pos;
            const Vec2& pw = users[PairKeyMax(key)].pos;
            const size_t j = (k - lo) * 2;
            sc.ax[j] = sc.ax[j + 1] = c.center.x;
            sc.ay[j] = sc.ay[j + 1] = c.center.y;
            sc.ar[j] = sc.ar[j + 1] = c.radius;
            sc.bx[j] = pu.x;
            sc.by[j] = pu.y;
            sc.bx[j + 1] = pw.x;
            sc.by[j + 1] = pw.y;
          }
          SimdScanMetrics::Get().match_batch.Record(static_cast<double>(m));
          SimdScanMetrics::Get().dispatches.Inc();
          simd::CirclesContainPoints(sc.ax.data(), sc.ay.data(), sc.ar.data(),
                                     sc.bx.data(), sc.by.data(), m,
                                     /*strict=*/true, sc.flags.data());
          for (size_t k = lo; k < hi; ++k) {
            const size_t j = (k - lo) * 2;
            pair_inside[k] = sc.flags[j] != 0 && sc.flags[j + 1] != 0;
          }
        });
      }
    }
    for (size_t k = 0; k < match_keys.size(); ++k) {
      const uint64_t key = match_keys[k];
      const auto it = matched.find(key);
      if (it == matched.end()) continue;
      const UserId u = PairKeyMin(key);
      const UserId w = PairKeyMax(key);
      if (self.options_.use_match_regions && pair_inside[k]) {
        continue;
      }
      Report(u);
      Report(w);
      const double r = graph.AlertRadius(u, w);
      const double d = Distance(users[u].pos, users[w].pos);
      if (d < r) {
        if (self.options_.use_match_regions) {
          it->second = MatchRegion::Make(users[u].pos, users[w].pos, r);
          if (use_match_cls) {
            match_cls.insert_or_assign(key,
                                       MakeClassifier(it->second.circle()));
          }
          self.stats_.match_installs += 2;
          EngineMetrics::Get().match_installs.Inc(2);
          if (self.link_ != nullptr) {
            self.link_->InstallMatch(u, epoch, MatchOp::kUpdate, u, w,
                                     it->second.circle());
            self.link_->InstallMatch(w, epoch, MatchOp::kUpdate, u, w,
                                     it->second.circle());
          }
        }
      } else {
        DissolveMatch(u, w);
        // Both return to safe-region tracking against each other.
        EnqueueRebuild(u);
        EnqueueRebuild(w);
      }
    }
  }

  /// Clients compare their position against their safe region (Algorithm 1
  /// lines 19-21). Parallel scan: every user's ShapeContains runs on the
  /// pool into a per-user flag (regions and positions are read-only here).
  /// Serial commit: Report / EnqueueRebuild / OnExit fire in user order,
  /// exactly as the historical serial loop did.
  void SafeRegionExitPhase() {
    const size_t n = users.size();
    exit_flags.assign(n, kInside);
    const size_t chunks = n == 0 ? 0 : (n + kUserGrain - 1) / kUserGrain;
    if (batch_chunks.size() < chunks) batch_chunks.resize(chunks);
    ParallelForChunked(n, kUserGrain, [&](size_t lo, size_t hi) {
      // Circle-form regions (initialization circles, FMD/CMD moving
      // circles) stage into SoA lanes and settle with one batched
      // closed-containment kernel call; stripes go through
      // Stripe::Contains, which is itself vectorized across the stripe's
      // cached segments. Verdicts are bit-exact either way, so exit_flags
      // is identical to the scalar scan's.
      BatchScratch& sc = batch_chunks[lo / kUserGrain];
      sc.ids.clear();
      sc.ax.clear();
      sc.ay.clear();
      sc.ar.clear();
      sc.bx.clear();
      sc.by.clear();
      for (size_t u = lo; u < hi; ++u) {
        if (!users[u].region) {
          // Only possible at epoch 0 before initialization.
          exit_flags[u] = kNeedsInit;
          continue;
        }
        Circle c;
        if (AsCircleAt(*users[u].region, epoch, &c)) {
          sc.ids.push_back(static_cast<uint32_t>(u));
          sc.ax.push_back(c.center.x);
          sc.ay.push_back(c.center.y);
          sc.ar.push_back(c.radius);
          sc.bx.push_back(users[u].pos.x);
          sc.by.push_back(users[u].pos.y);
        } else if (!ShapeContains(*users[u].region, users[u].pos, epoch)) {
          exit_flags[u] = kExited;
        }
      }
      const size_t m = sc.ids.size();
      sc.flags.resize(m);
      SimdScanMetrics::Get().exit_batch.Record(static_cast<double>(m));
      SimdScanMetrics::Get().dispatches.Inc();
      simd::CirclesContainPoints(sc.ax.data(), sc.ay.data(), sc.ar.data(),
                                 sc.bx.data(), sc.by.data(), m,
                                 /*strict=*/false, sc.flags.data());
      for (size_t k = 0; k < m; ++k) {
        if (!sc.flags[k]) exit_flags[sc.ids[k]] = kExited;
      }
    });
    for (UserId u = 0; u < static_cast<UserId>(n); ++u) {
      if (exit_flags[u] == kInside) continue;
      Report(u);
      EnqueueRebuild(u);
      if (exit_flags[u] == kExited) {
        EngineMetrics::Get().exits.Inc();
        self.policy_->OnExit(u);
      }
    }
  }

  /// Moving regions (FMD/CMD) drift toward each other between rebuilds;
  /// the server probes pairs whose regions may now violate the radius.
  ///
  /// Parallel scan: pair decisions run on the pool, filtered on the
  /// phase-*start* state (matched set and regions cannot change during this
  /// phase; needs_region only grows). Serial commit: flagged pairs are
  /// walked in ascending edge order with the skip conditions re-evaluated
  /// against the *current* state, so a probe issued for an earlier edge
  /// suppresses later edges of the same user exactly as the historical
  /// serial loop did.
  ///
  /// Two scans produce the flagged set (DESIGN.md §10 argues equality):
  ///  - exhaustive (the oracle, use_spatial_index = false): every cached
  ///    edge's (AABB-pruned) region-pair comparison into a per-edge slot,
  ///    committed in slot order.
  ///  - grid (default): every user's epoch-resolved region AABB lives in a
  ///    RegionGridIndex; each user queries the cells its own box inflated
  ///    by its largest incident alert radius overlaps, and only the u < w
  ///    side of each candidate pair runs the exact region-pair predicate.
  ///    Cell-level pruning is sound (box distance never exceeds shape
  ///    distance; the pad absorbs rounding), so the flagged *set* matches
  ///    the oracle's; sorting it by pair key — ascending (u, w), the edge
  ///    snapshot's order — makes the commit *sequence* identical too.
  void PerEpochPairCheck() {
    if (!use_grid) {
      const size_t n = edge_cache.size();
      edge_probe.assign(n, 0);
      const size_t chunks = n == 0 ? 0 : (n + kEdgeGrain - 1) / kEdgeGrain;
      if (batch_chunks.size() < chunks) batch_chunks.resize(chunks);
      ParallelForChunked(n, kEdgeGrain, [&](size_t lo, size_t hi) {
        // Circle-circle pairs (the only kind FMD/CMD install) stage into
        // SoA lanes; one batched gap < r kernel call settles the chunk.
        // ShapeMinDistanceBelow's AABB prune only ever skips exact math
        // whose outcome is already decided (box distance never exceeds the
        // shape distance), so the direct exact compare is outcome-identical.
        // Mixed/other shapes keep the pruned scalar call.
        BatchScratch& sc = batch_chunks[lo / kEdgeGrain];
        sc.ids.clear();
        sc.ax.clear();
        sc.ay.clear();
        sc.ar.clear();
        sc.bx.clear();
        sc.by.clear();
        sc.br.clear();
        sc.thr.clear();
        for (size_t i = lo; i < hi; ++i) {
          const auto& e = edge_cache[i];
          if (IsMatched(e.u, e.w)) continue;
          if (needs_region(e.u) || needs_region(e.w)) continue;
          if (!users[e.u].region || !users[e.w].region) continue;
          Circle ca, cb;
          if (AsCircleAt(*users[e.u].region, epoch, &ca) &&
              AsCircleAt(*users[e.w].region, epoch, &cb)) {
            sc.ids.push_back(static_cast<uint32_t>(i));
            sc.ax.push_back(ca.center.x);
            sc.ay.push_back(ca.center.y);
            sc.ar.push_back(ca.radius);
            sc.bx.push_back(cb.center.x);
            sc.by.push_back(cb.center.y);
            sc.br.push_back(cb.radius);
            sc.thr.push_back(e.alert_radius);
          } else {
            edge_probe[i] = ShapeMinDistanceBelow(
                *users[e.u].region, *users[e.w].region, epoch, e.alert_radius);
          }
        }
        const size_t m = sc.ids.size();
        sc.flags.resize(m);
        SimdScanMetrics::Get().pair_check_batch.Record(static_cast<double>(m));
        SimdScanMetrics::Get().dispatches.Inc();
        simd::CirclePairsGapBelow(sc.ax.data(), sc.ay.data(), sc.ar.data(),
                                  sc.bx.data(), sc.by.data(), sc.br.data(),
                                  sc.thr.data(), m, sc.flags.data());
        for (size_t k = 0; k < m; ++k) {
          edge_probe[sc.ids[k]] = sc.flags[k];
        }
      });
      for (size_t i = 0; i < n; ++i) {
        if (!edge_probe[i]) continue;
        const auto& e = edge_cache[i];
        // Re-check with commit-time state: earlier probes may have flagged
        // an endpoint for rebuild, which skips the pair just as the serial
        // loop would have.
        if (IsMatched(e.u, e.w)) continue;
        if (needs_region(e.u) || needs_region(e.w)) continue;
        EngineMetrics::Get().pair_check_probed_edges.Inc();
        Probe(e.u);
        Probe(e.w);
      }
      return;
    }

    // --- Grid path ---
    // Cell size tracks the radius regime; SetCellSize is a no-op when
    // unchanged, so this only rebuckets after a regime-shifting graph
    // update.
    region_grid.SetCellSize(max_alert_radius > 0.0 ? max_alert_radius : 1.0);
    // Maintenance (serial — the parallel scan below reads the grid): move
    // every installed region to the cells its AABB covers *this epoch*
    // (moving circles drift). Regions without usable bounds fall back to an
    // adjacency scan; absent regions simply leave the grid.
    unindexed.clear();
    circ_x.resize(users.size());
    circ_y.resize(users.size());
    circ_r.resize(users.size());
    circ_ok.assign(users.size(), 0);
    for (UserId u = 0; u < static_cast<UserId>(users.size()); ++u) {
      BBox box;
      if (users[u].region && ShapeBoundsAt(*users[u].region, epoch, &box)) {
        region_grid.Upsert(u, box);
        // Resolve the circle form once; the parallel scan below reads the
        // plain arrays instead of revisiting the variant per pair.
        Circle c;
        if (AsCircleAt(*users[u].region, epoch, &c)) {
          circ_x[u] = c.center.x;
          circ_y[u] = c.center.y;
          circ_r[u] = c.radius;
          circ_ok[u] = 1;
        }
      } else {
        region_grid.Remove(u);
        if (users[u].region) unindexed.push_back(u);
      }
    }
    const size_t n = users.size();
    const size_t chunks = n == 0 ? 0 : (n + kQueryGrain - 1) / kQueryGrain;
    if (flag_chunks.size() < chunks) flag_chunks.resize(chunks);
    if (cand_bufs.size() < chunks) cand_bufs.resize(chunks);
    if (chunk_work.size() < chunks) chunk_work.resize(chunks);
    if (batch_chunks.size() < chunks) batch_chunks.resize(chunks);
    for (size_t c = 0; c < chunks; ++c) chunk_work[c] = ChunkWork{};
    ParallelForChunked(n, kQueryGrain, [&](size_t lo, size_t hi) {
      const size_t chunk = lo / kQueryGrain;
      std::vector<uint64_t>& out = flag_chunks[chunk];
      std::vector<int32_t>& cand = cand_bufs[chunk];
      ChunkWork& work = chunk_work[chunk];
      BatchScratch& sc = batch_chunks[chunk];
      out.clear();
      // Candidate pairs whose regions both have circle form stage into SoA
      // lanes across the whole chunk and settle with one batched
      // gap < r kernel call (outcome-identical to the AABB-pruned
      // ShapeMinDistanceBelow — the prune only skips already-decided exact
      // math). The flagged set is sorted downstream, so deferring the
      // kernel verdicts to the end of the chunk reorders nothing.
      sc.keys.clear();
      sc.ax.clear();
      sc.ay.clear();
      sc.ar.clear();
      sc.bx.clear();
      sc.by.clear();
      sc.br.clear();
      sc.thr.clear();
      for (size_t ui = lo; ui < hi; ++ui) {
        const UserId u = static_cast<UserId>(ui);
        if (!users[u].region || needs_region(u)) continue;
        if (!region_grid.Contains(u)) continue;  // Degenerate bounds.
        const double slack = max_incident[u];
        if (slack <= 0.0) continue;  // Isolated user: no edges to check.
        cand.clear();
        work.queries += 1;
        work.cells += region_grid.Query(region_grid.BoxOf(u), slack, &cand);
        // Multi-cell boxes repeat in the candidate list; dedupe before the
        // exact predicates.
        std::sort(cand.begin(), cand.end());
        cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
        work.candidates += cand.size();
        for (const int32_t w : cand) {
          if (w <= static_cast<int32_t>(u)) continue;
          const auto it = edge_radius.find(PairKey(u, w));
          if (it == edge_radius.end()) continue;  // Near, but no edge.
          if (needs_region(w) || !users[w].region) continue;
          if (IsMatched(u, w)) continue;
          if (circ_ok[u] && circ_ok[w]) {
            sc.keys.push_back(PairKey(u, w));
            sc.ax.push_back(circ_x[u]);
            sc.ay.push_back(circ_y[u]);
            sc.ar.push_back(circ_r[u]);
            sc.bx.push_back(circ_x[w]);
            sc.by.push_back(circ_y[w]);
            sc.br.push_back(circ_r[w]);
            sc.thr.push_back(it->second);
          } else if (ShapeMinDistanceBelow(*users[u].region,
                                           *users[w].region, epoch,
                                           it->second)) {
            out.push_back(PairKey(u, w));
          }
        }
      }
      const size_t m = sc.keys.size();
      sc.flags.resize(m);
      SimdScanMetrics::Get().pair_check_batch.Record(static_cast<double>(m));
      SimdScanMetrics::Get().dispatches.Inc();
      simd::CirclePairsGapBelow(sc.ax.data(), sc.ay.data(), sc.ar.data(),
                                sc.bx.data(), sc.by.data(), sc.br.data(),
                                sc.thr.data(), m, sc.flags.data());
      for (size_t k = 0; k < m; ++k) {
        if (sc.flags[k]) out.push_back(sc.keys[k]);
      }
    });
    // Fallback for unindexable regions (degenerate bounds — impossible for
    // the moving circles that reach this phase, but soundness must not rest
    // on that): their pairs are scanned by adjacency. Covers the indexed
    // side of mixed pairs too, since the grid never saw this user.
    flagged.clear();
    for (const UserId u : unindexed) {
      if (needs_region(u)) continue;
      for (const FriendEdge& fe : graph.FriendsOf(u)) {
        const UserId w = fe.other;
        if (!users[w].region || needs_region(w)) continue;
        if (IsMatched(u, w)) continue;
        if (ShapeMinDistanceBelow(*users[u].region, *users[w].region, epoch,
                                  fe.alert_radius)) {
          flagged.push_back(PairKey(u, w));
        }
      }
    }
    for (size_t c = 0; c < chunks; ++c) {
      flagged.insert(flagged.end(), flag_chunks[c].begin(),
                     flag_chunks[c].end());
    }
    // Normalize: bucket enumeration order is maintenance-dependent (and
    // both-degenerate pairs flag twice), so sort + unique onto the edge
    // snapshot's ascending-(u, w) order before committing.
    std::sort(flagged.begin(), flagged.end());
    flagged.erase(std::unique(flagged.begin(), flagged.end()), flagged.end());
    for (const uint64_t key : flagged) {
      const UserId u = PairKeyMin(key);
      const UserId w = PairKeyMax(key);
      if (IsMatched(u, w)) continue;
      if (needs_region(u) || needs_region(w)) continue;
      EngineMetrics::Get().pair_check_probed_edges.Inc();
      Probe(u);
      Probe(w);
    }
    ChunkWork total;
    for (size_t c = 0; c < chunks; ++c) {
      total.queries += chunk_work[c].queries;
      total.cells += chunk_work[c].cells;
      total.candidates += chunk_work[c].candidates;
    }
    region_grid.RecordQuery(total.queries, total.cells, total.candidates);
  }

  /// Serialized rebuild loop: pops users needing a region, probes friends
  /// that are dangerously close, detects fresh matches, then asks the
  /// policy for a new region built against the friends' effective regions.
  void ResolvePhase() {
    while (!queue.empty()) {
      const UserId u = queue.front();
      queue.pop_front();
      if (!needs_region(u)) continue;
      const Vec2 l_u = users[u].pos;
      const double v_u = users[u].speed;

      // Pass 1: probe friends whose region leaves no slack, then settle
      // alerts against every exact friend.
      for (const FriendEdge& fe : graph.FriendsOf(u)) {
        const UserId w = fe.other;
        if (IsMatched(u, w)) continue;
        if (!reported(w)) {
          // gap <= min_gap + closing, phrased so the AABB lower bound can
          // settle the comparison without exact point-to-shape geometry.
          const double closing =
              self.options_.probe_horizon_epochs * (v_u + users[w].speed);
          if (ShapeDistanceToPointBelow(
                  *users[w].region, l_u, epoch,
                  fe.alert_radius + self.options_.min_gap + closing,
                  /*inclusive=*/true)) {
            Probe(w);
          }
        }
        if (reported(w)) {
          const double d = Distance(l_u, users[w].pos);
          if (d < fe.alert_radius) CreateMatch(u, w, fe.alert_radius);
        }
      }

      // Pass 2: collect effective constraint regions for unmatched friends.
      friend_views.clear();
      for (const FriendEdge& fe : graph.FriendsOf(u)) {
        const UserId w = fe.other;
        if (IsMatched(u, w)) continue;
        FriendView view;
        view.id = w;
        view.alert_radius = fe.alert_radius;
        view.speed = std::max(users[w].speed, kMinSpeed);
        if (reported(w) && needs_region(w) && !rebuilt(w)) {
          // Friend rebuilds later this epoch: constrain against a virtual
          // circle holding its Eq. (5) share of the slack, so the pair
          // splits the corridor speed-proportionally (Lemma 2); safety is
          // then sealed when the friend builds against u's real region.
          const double d = Distance(l_u, users[w].pos);
          const double share = InitializationRadius(view.speed, v_u, d,
                                                    fe.alert_radius);
          view.owned_region = Circle{users[w].pos, share};
        } else {
          view.borrowed = &*users[w].region;
        }
        friend_views.push_back(std::move(view));
      }

      world.RecentWindow(u, epoch, self.options_.window, &window_buf);
      SafeRegionShape shape =
          self.policy_->BuildRegion(u, l_u, window_buf, v_u, friend_views,
                                    epoch);
      if (self.options_.validate_builds) {
        assert(ShapeContains(shape, l_u, epoch));
        for (const FriendView& view : friend_views) {
          const double d = ShapeMinDistance(shape, view.region(), epoch);
          assert(d >= view.alert_radius - 1e-6);
          (void)d;
        }
      }
      if (self.link_ != nullptr) self.link_->InstallRegion(u, epoch, shape);
      users[u].region = std::move(shape);
      mark(u, kRebuilt);
      unmark(u, kNeedsRegion);
      self.stats_.region_installs += 1;
      self.rebuild_count_ += 1;
      EngineMetrics::Get().region_installs.Inc();
      EngineMetrics::Get().rebuilds.Inc();
    }
  }

  void Run() {
    size_t next_update = 0;
    for (epoch = 0; epoch < world.epochs(); ++epoch) {
      // Streaming worlds generate this epoch's positions here — the one
      // serial point before the parallel fetch fan-out below.
      world.BeginEpoch(epoch);
      // Per-epoch flags clear in one pass over the dense byte array;
      // the position fetch fans out over independent slots.
      std::fill(epoch_flags.begin(), epoch_flags.end(), uint8_t{0});
      ParallelForChunked(users.size(), kUserGrain, [&](size_t lo, size_t hi) {
        for (size_t u = lo; u < hi; ++u) {
          users[u].pos = world.Position(static_cast<UserId>(u), epoch);
        }
      });
      queue.clear();
      EngineMetrics::Get().epochs.Inc();
      {
        // Server-side bookkeeping time (Figure 8's CPU axis) now accumulates
        // via RAII: no phase reordering or early exit can skip it. The phase
        // spans only observe — recording happens outside the traced scopes'
        // bodies and never feeds back into the computation.
        ScopedTimer server_timer(self.stats_.server_seconds);
        {
          obs::TraceScope span("graph_updates", "engine");
          ApplyGraphUpdates(&next_update);
        }
        {
          obs::TraceScope span("match_region", "engine");
          ScopedTimer phase_timer(self.phase_times_.match_region);
          MatchRegionPhase();
        }
        {
          obs::TraceScope span("exit_scan", "engine");
          ScopedTimer phase_timer(self.phase_times_.exit_check);
          SafeRegionExitPhase();
        }
        if (per_epoch_check) {
          obs::TraceScope span("pair_check", "engine");
          ScopedTimer phase_timer(self.phase_times_.pair_check);
          PerEpochPairCheck();
        }
        {
          obs::TraceScope span("resolve", "engine");
          ScopedTimer phase_timer(self.phase_times_.rebuild);
          ResolvePhase();
        }
      }
      // Epoch barrier: lets a transported link flush its per-client batch
      // queues. Outside the server timer — it is wire time, not proximity
      // bookkeeping.
      if (self.link_ != nullptr) self.link_->EndEpoch(epoch);
    }
  }
};

void RegionDetector::Run(const World& world) {
  stats_ = CommStats();
  phase_times_ = PhaseTimes();
  alerts_.clear();
  rebuild_count_ = 0;
  index_stats_ = SpatialIndexStats();
  Impl impl(world, *this);
  impl.Run();
  index_stats_ = impl.region_grid.stats();
  index_stats_ += impl.match_stats;
  if (options_.use_spatial_index) {
    const IndexMetrics& m = IndexMetrics::Get();
    m.upserts.Inc(index_stats_.upserts);
    m.moves.Inc(index_stats_.moves);
    m.rebuilds.Inc(index_stats_.rebuilds);
    m.queries.Inc(index_stats_.queries);
    m.cells_probed.Inc(index_stats_.cells_probed);
    m.candidates.Inc(index_stats_.candidates);
    m.match_classified.Inc(index_stats_.match_classified);
    m.match_exact.Inc(index_stats_.match_exact);
  }
}

}  // namespace proxdet
