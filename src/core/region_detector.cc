#include "core/region_detector.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/timer.h"
#include "core/cost_model.h"
#include "region/match_region.h"

namespace proxdet {

namespace {

uint64_t PairKey(UserId u, UserId w) {
  const uint64_t a = static_cast<uint64_t>(std::min(u, w));
  const uint64_t b = static_cast<uint64_t>(std::max(u, w));
  return (a << 32) | b;
}

constexpr double kMinSpeed = 1e-3;  // m/epoch floor for estimates.

}  // namespace

void RegionPolicy::OnExit(UserId u) { (void)u; }
void RegionPolicy::OnProbe(UserId u) { (void)u; }

RegionDetector::RegionDetector(std::unique_ptr<RegionPolicy> policy)
    : RegionDetector(std::move(policy), Options()) {}

RegionDetector::RegionDetector(std::unique_ptr<RegionPolicy> policy,
                               Options options)
    : policy_(std::move(policy)), options_(options) {}

RegionDetector::~RegionDetector() = default;

std::string RegionDetector::name() const { return policy_->name(); }

// Per-run engine state; kept out of the header.
struct RegionDetector::Impl {
  struct UserState {
    std::optional<SafeRegionShape> region;
    double speed = kMinSpeed;  // m/epoch estimate from reported windows.
    // Per-epoch flags.
    bool reported = false;
    bool needs_region = false;
    bool rebuilt = false;
    bool queued = false;
    Vec2 pos;  // Exact location; server-visible only when `reported`.
  };

  const World& world;
  RegionDetector& self;
  InterestGraph graph;
  std::vector<UserState> users;
  std::unordered_map<uint64_t, MatchRegion> matched;
  std::deque<UserId> queue;
  int epoch = 0;

  Impl(const World& w, RegionDetector& s)
      : world(w), self(s), graph(w.graph()), users(w.user_count()) {}

  bool IsMatched(UserId u, UserId w) const {
    return matched.count(PairKey(u, w)) > 0;
  }

  /// Client -> server location upload (at most one per user per epoch).
  void Report(UserId u) {
    if (users[u].reported) return;
    users[u].reported = true;
    self.stats_.reports += 1;
    // The report carries the recent window; refresh the speed estimate.
    const std::vector<Vec2> window =
        world.RecentWindow(u, epoch, self.options_.window);
    if (window.size() >= 2) {
      double dist = 0.0;
      for (size_t i = 1; i < window.size(); ++i) {
        dist += Distance(window[i - 1], window[i]);
      }
      users[u].speed =
          std::max(kMinSpeed, dist / static_cast<double>(window.size() - 1));
    }
  }

  void EnqueueRebuild(UserId u) {
    users[u].needs_region = true;
    if (!users[u].queued) {
      users[u].queued = true;
      queue.push_back(u);
    }
  }

  /// Server -> client probe: request the exact location, then rebuild the
  /// probed user's region (Sec. V-B case 2).
  void Probe(UserId u) {
    if (users[u].reported) {
      EnqueueRebuild(u);
      return;
    }
    self.stats_.probes += 1;
    Report(u);
    EnqueueRebuild(u);
    self.policy_->OnProbe(u);
  }

  /// Both endpoints exact and within radius: fire the alert, install the
  /// match region (Def. 3), and drop the pair from safe-region duty.
  void CreateMatch(UserId u, UserId w, double r) {
    matched.emplace(PairKey(u, w),
                    MatchRegion::Make(users[u].pos, users[w].pos, r));
    self.alerts_.push_back({epoch, std::min(u, w), std::max(u, w)});
    self.stats_.alerts += 2;
    if (self.options_.use_match_regions) self.stats_.match_installs += 2;
  }

  void DissolveMatch(UserId u, UserId w) {
    matched.erase(PairKey(u, w));
    if (self.options_.use_match_regions) {
      self.stats_.match_installs += 2;  // Deletion notices.
    }
  }

  /// Applies scheduled interest-graph changes at epoch start (Sec. VI-E).
  void ApplyGraphUpdates(size_t* next_update) {
    const auto& updates = world.scheduled_updates();
    while (*next_update < updates.size() &&
           updates[*next_update].epoch <= epoch) {
      const GraphUpdate& up = updates[*next_update];
      ++*next_update;
      if (up.insert) {
        if (!graph.AddEdge(up.u, up.w, up.alert_radius)) continue;
        // New pair: probe only when their current regions may violate the
        // radius (the paper's insertion rule).
        if (users[up.u].region && users[up.w].region) {
          const double d = ShapeMinDistance(*users[up.u].region,
                                            *users[up.w].region, epoch);
          if (d <= up.alert_radius + self.options_.min_gap) {
            Probe(up.u);
            Probe(up.w);
          }
        }
      } else {
        if (IsMatched(up.u, up.w)) DissolveMatch(up.u, up.w);
        graph.RemoveEdge(up.u, up.w);
        // Safe regions are retained; they were conservative for the
        // deleted edge, which is always sound.
      }
    }
  }

  /// Clients compare their position against match regions (Algorithm 1
  /// lines 10-18).
  void MatchRegionPhase() {
    // Collect keys first: dissolution mutates the map.
    std::vector<uint64_t> keys;
    keys.reserve(matched.size());
    for (const auto& [key, region] : matched) keys.push_back(key);
    std::sort(keys.begin(), keys.end());  // Deterministic accounting.
    for (const uint64_t key : keys) {
      const auto it = matched.find(key);
      if (it == matched.end()) continue;
      const UserId u = static_cast<UserId>(key >> 32);
      const UserId w = static_cast<UserId>(key & 0xffffffffULL);
      const MatchRegion& m = it->second;
      if (self.options_.use_match_regions && m.Contains(users[u].pos) &&
          m.Contains(users[w].pos)) {
        continue;
      }
      Report(u);
      Report(w);
      const double r = graph.AlertRadius(u, w);
      const double d = Distance(users[u].pos, users[w].pos);
      if (d < r) {
        if (self.options_.use_match_regions) {
          it->second = MatchRegion::Make(users[u].pos, users[w].pos, r);
          self.stats_.match_installs += 2;
        }
      } else {
        DissolveMatch(u, w);
        // Both return to safe-region tracking against each other.
        EnqueueRebuild(u);
        EnqueueRebuild(w);
      }
    }
  }

  /// Clients compare their position against their safe region (Algorithm 1
  /// lines 19-21).
  void SafeRegionExitPhase() {
    for (UserId u = 0; u < static_cast<UserId>(users.size()); ++u) {
      if (!users[u].region) {
        // Only possible at epoch 0 before initialization.
        Report(u);
        EnqueueRebuild(u);
        continue;
      }
      if (!ShapeContains(*users[u].region, users[u].pos, epoch)) {
        Report(u);
        EnqueueRebuild(u);
        self.policy_->OnExit(u);
      }
    }
  }

  /// Moving regions (FMD/CMD) drift toward each other between rebuilds;
  /// the server probes pairs whose regions may now violate the radius.
  void PerEpochPairCheck() {
    for (const auto& e : graph.Edges()) {
      if (IsMatched(e.u, e.w)) continue;
      if (users[e.u].needs_region || users[e.w].needs_region) continue;
      if (!users[e.u].region || !users[e.w].region) continue;
      const double d =
          ShapeMinDistance(*users[e.u].region, *users[e.w].region, epoch);
      if (d < e.alert_radius) {
        Probe(e.u);
        Probe(e.w);
      }
    }
  }

  /// Serialized rebuild loop: pops users needing a region, probes friends
  /// that are dangerously close, detects fresh matches, then asks the
  /// policy for a new region built against the friends' effective regions.
  void ResolvePhase() {
    while (!queue.empty()) {
      const UserId u = queue.front();
      queue.pop_front();
      if (!users[u].needs_region) continue;
      const Vec2 l_u = users[u].pos;
      const double v_u = users[u].speed;

      // Pass 1: probe friends whose region leaves no slack, then settle
      // alerts against every exact friend.
      for (const FriendEdge& fe : graph.FriendsOf(u)) {
        const UserId w = fe.other;
        if (IsMatched(u, w)) continue;
        if (!users[w].reported) {
          const double gap =
              ShapeDistanceToPoint(*users[w].region, l_u, epoch) -
              fe.alert_radius;
          const double closing =
              self.options_.probe_horizon_epochs * (v_u + users[w].speed);
          if (gap <= self.options_.min_gap + closing) Probe(w);
        }
        if (users[w].reported) {
          const double d = Distance(l_u, users[w].pos);
          if (d < fe.alert_radius) CreateMatch(u, w, fe.alert_radius);
        }
      }

      // Pass 2: collect effective constraint regions for unmatched friends.
      std::vector<FriendView> views;
      for (const FriendEdge& fe : graph.FriendsOf(u)) {
        const UserId w = fe.other;
        if (IsMatched(u, w)) continue;
        FriendView view;
        view.id = w;
        view.alert_radius = fe.alert_radius;
        view.speed = std::max(users[w].speed, kMinSpeed);
        if (users[w].reported && users[w].needs_region && !users[w].rebuilt) {
          // Friend rebuilds later this epoch: constrain against a virtual
          // circle holding its Eq. (5) share of the slack, so the pair
          // splits the corridor speed-proportionally (Lemma 2); safety is
          // then sealed when the friend builds against u's real region.
          const double d = Distance(l_u, users[w].pos);
          const double share = InitializationRadius(view.speed, v_u, d,
                                                    fe.alert_radius);
          view.region = Circle{users[w].pos, share};
        } else {
          view.region = *users[w].region;
        }
        views.push_back(std::move(view));
      }

      const std::vector<Vec2> window =
          world.RecentWindow(u, epoch, self.options_.window);
      SafeRegionShape shape =
          self.policy_->BuildRegion(u, l_u, window, v_u, views, epoch);
      if (self.options_.validate_builds) {
        assert(ShapeContains(shape, l_u, epoch));
        for (const FriendView& view : views) {
          const double d = ShapeMinDistance(shape, view.region, epoch);
          assert(d >= view.alert_radius - 1e-6);
          (void)d;
        }
      }
      users[u].region = std::move(shape);
      users[u].rebuilt = true;
      users[u].needs_region = false;
      self.stats_.region_installs += 1;
      self.rebuild_count_ += 1;
    }
  }

  void Run() {
    size_t next_update = 0;
    const bool per_epoch_check = self.policy_->NeedsPerEpochPairCheck();
    for (epoch = 0; epoch < world.epochs(); ++epoch) {
      for (UserId u = 0; u < static_cast<UserId>(users.size()); ++u) {
        users[u].reported = false;
        users[u].needs_region = false;
        users[u].rebuilt = false;
        users[u].queued = false;
        users[u].pos = world.Position(u, epoch);
      }
      queue.clear();
      WallTimer server_timer;
      ApplyGraphUpdates(&next_update);
      MatchRegionPhase();
      SafeRegionExitPhase();
      if (per_epoch_check) PerEpochPairCheck();
      ResolvePhase();
      self.stats_.server_seconds += server_timer.ElapsedSeconds();
    }
  }
};

void RegionDetector::Run(const World& world) {
  stats_ = CommStats();
  alerts_.clear();
  rebuild_count_ = 0;
  Impl impl(world, *this);
  impl.Run();
}

}  // namespace proxdet
