#include "core/region_detector.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/timer.h"
#include "core/client_link.h"
#include "core/cost_model.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "region/match_region.h"

namespace proxdet {

namespace {

/// Handles into the global registry, resolved once. Every counter mirrors a
/// CommStats field (incremented at the same serial-commit sites, so the
/// RunReport reconciliation holds to the unit) or a deterministic engine
/// total; all are pure functions of the workload seed.
struct EngineMetrics {
  obs::Counter& reports;
  obs::Counter& probes;
  obs::Counter& alerts;
  obs::Counter& region_installs;
  obs::Counter& match_installs;
  obs::Counter& rebuilds;
  obs::Counter& epochs;
  obs::Counter& exits;
  obs::Counter& pair_check_probed_edges;

  static const EngineMetrics& Get() {
    static const EngineMetrics m{
        obs::Metrics().GetCounter("engine.reports"),
        obs::Metrics().GetCounter("engine.probes"),
        obs::Metrics().GetCounter("engine.alerts"),
        obs::Metrics().GetCounter("engine.region_installs"),
        obs::Metrics().GetCounter("engine.match_installs"),
        obs::Metrics().GetCounter("engine.rebuilds"),
        obs::Metrics().GetCounter("engine.epochs"),
        obs::Metrics().GetCounter("engine.safe_region_exits"),
        obs::Metrics().GetCounter("engine.pair_check_probed_edges"),
    };
    return m;
  }
};

uint64_t PairKey(UserId u, UserId w) {
  const uint64_t a = static_cast<uint64_t>(std::min(u, w));
  const uint64_t b = static_cast<uint64_t>(std::max(u, w));
  return (a << 32) | b;
}

constexpr double kMinSpeed = 1e-3;  // m/epoch floor for estimates.

// Chunk sizes for the parallel read-only scans. Coarse enough that the
// per-chunk scheduling cost vanishes next to the geometry, fine enough to
// balance 8 threads on 10k-user workloads. Chunk boundaries never affect
// results (scans write index-addressed slots; commits run in index order).
constexpr size_t kUserGrain = 512;   // ShapeContains per user.
constexpr size_t kEdgeGrain = 256;   // ShapeMinDistance per edge.
constexpr size_t kPairGrain = 128;   // MatchRegion::Contains per pair.

}  // namespace

void RegionPolicy::OnExit(UserId u) { (void)u; }
void RegionPolicy::OnProbe(UserId u) { (void)u; }

RegionDetector::RegionDetector(std::unique_ptr<RegionPolicy> policy)
    : RegionDetector(std::move(policy), Options()) {}

RegionDetector::RegionDetector(std::unique_ptr<RegionPolicy> policy,
                               Options options)
    : policy_(std::move(policy)), options_(options) {}

RegionDetector::~RegionDetector() = default;

std::string RegionDetector::name() const { return policy_->name(); }

// Per-run engine state; kept out of the header.
struct RegionDetector::Impl {
  struct UserState {
    std::optional<SafeRegionShape> region;
    double speed = kMinSpeed;  // m/epoch estimate from reported windows.
    // Per-epoch flags.
    bool reported = false;
    bool needs_region = false;
    bool rebuilt = false;
    bool queued = false;
    Vec2 pos;  // Exact location; server-visible only when `reported`.
  };

  const World& world;
  RegionDetector& self;
  InterestGraph graph;
  std::vector<UserState> users;
  std::unordered_map<uint64_t, MatchRegion> matched;
  std::deque<UserId> queue;
  int epoch = 0;

  // Reused scratch, kept allocation-free across epochs. The scan buffers
  // are written by parallel read-only scans (distinct slots per index) and
  // consumed by the serial in-order commits below; window_buf is only ever
  // touched from serial code (Report / ResolvePhase).
  std::vector<Vec2> window_buf;
  std::vector<uint8_t> exit_flags;    // Per user: see ExitFlag.
  std::vector<uint8_t> pair_inside;   // Per sorted matched-pair key.
  std::vector<uint8_t> edge_probe;    // Per cached edge: scan said d < r.
  std::vector<InterestGraph::Edge> edge_cache;
  bool edges_dirty = true;  // Edge list must be re-snapshotted from graph.

  enum ExitFlag : uint8_t { kInside = 0, kExited = 1, kNeedsInit = 2 };

  Impl(const World& w, RegionDetector& s)
      : world(w), self(s), graph(w.graph()), users(w.user_count()) {}

  bool IsMatched(UserId u, UserId w) const {
    return matched.count(PairKey(u, w)) > 0;
  }

  /// Client -> server location upload (at most one per user per epoch).
  /// Serial-commit code only (reuses the shared window buffer).
  void Report(UserId u) {
    if (users[u].reported) return;
    users[u].reported = true;
    self.stats_.reports += 1;
    EngineMetrics::Get().reports.Inc();
    // The report carries the recent window; refresh the speed estimate.
    if (self.link_ != nullptr) {
      // Transported run: the client uploads through the wire and the engine
      // consumes position + window exactly as the server decoded them (the
      // codec's exact round-trip keeps this bit-identical to the direct
      // read below).
      self.link_->Report(u, epoch, self.options_.window, &users[u].pos,
                         &window_buf);
    } else {
      world.RecentWindow(u, epoch, self.options_.window, &window_buf);
    }
    if (window_buf.size() >= 2) {
      double dist = 0.0;
      for (size_t i = 1; i < window_buf.size(); ++i) {
        dist += Distance(window_buf[i - 1], window_buf[i]);
      }
      users[u].speed = std::max(
          kMinSpeed, dist / static_cast<double>(window_buf.size() - 1));
    }
  }

  void EnqueueRebuild(UserId u) {
    users[u].needs_region = true;
    if (!users[u].queued) {
      users[u].queued = true;
      queue.push_back(u);
    }
  }

  /// Server -> client probe: request the exact location, then rebuild the
  /// probed user's region (Sec. V-B case 2).
  void Probe(UserId u) {
    if (users[u].reported) {
      EnqueueRebuild(u);
      return;
    }
    self.stats_.probes += 1;
    EngineMetrics::Get().probes.Inc();
    if (self.link_ != nullptr) self.link_->Probe(u, epoch);
    Report(u);
    EnqueueRebuild(u);
    self.policy_->OnProbe(u);
  }

  /// Both endpoints exact and within radius: fire the alert, install the
  /// match region (Def. 3), and drop the pair from safe-region duty.
  void CreateMatch(UserId u, UserId w, double r) {
    const MatchRegion region = MatchRegion::Make(users[u].pos, users[w].pos, r);
    matched.emplace(PairKey(u, w), region);
    const UserId a = std::min(u, w);
    const UserId b = std::max(u, w);
    self.alerts_.push_back({epoch, a, b});
    self.stats_.alerts += 2;
    EngineMetrics::Get().alerts.Inc(2);
    if (self.link_ != nullptr) {
      self.link_->Alert(u, a, b, epoch);
      self.link_->Alert(w, a, b, epoch);
    }
    if (self.options_.use_match_regions) {
      self.stats_.match_installs += 2;
      EngineMetrics::Get().match_installs.Inc(2);
      if (self.link_ != nullptr) {
        self.link_->InstallMatch(u, epoch, MatchOp::kCreate, a, b,
                                 region.circle());
        self.link_->InstallMatch(w, epoch, MatchOp::kCreate, a, b,
                                 region.circle());
      }
    }
  }

  void DissolveMatch(UserId u, UserId w) {
    matched.erase(PairKey(u, w));
    if (self.options_.use_match_regions) {
      self.stats_.match_installs += 2;  // Deletion notices.
      EngineMetrics::Get().match_installs.Inc(2);
      if (self.link_ != nullptr) {
        const UserId a = std::min(u, w);
        const UserId b = std::max(u, w);
        self.link_->InstallMatch(u, epoch, MatchOp::kDelete, a, b, Circle{});
        self.link_->InstallMatch(w, epoch, MatchOp::kDelete, a, b, Circle{});
      }
    }
  }

  /// Applies scheduled interest-graph changes at epoch start (Sec. VI-E).
  void ApplyGraphUpdates(size_t* next_update) {
    const auto& updates = world.scheduled_updates();
    while (*next_update < updates.size() &&
           updates[*next_update].epoch <= epoch) {
      const GraphUpdate& up = updates[*next_update];
      ++*next_update;
      edges_dirty = true;
      if (up.insert) {
        if (!graph.AddEdge(up.u, up.w, up.alert_radius)) continue;
        // New pair: probe only when their current regions may violate the
        // radius (the paper's insertion rule).
        if (users[up.u].region && users[up.w].region &&
            ShapeMinDistanceBelow(*users[up.u].region, *users[up.w].region,
                                  epoch, up.alert_radius + self.options_.min_gap,
                                  /*inclusive=*/true)) {
          Probe(up.u);
          Probe(up.w);
        }
      } else {
        if (IsMatched(up.u, up.w)) DissolveMatch(up.u, up.w);
        graph.RemoveEdge(up.u, up.w);
        // Safe regions are retained; they were conservative for the
        // deleted edge, which is always sound.
      }
    }
  }

  /// Clients compare their position against match regions (Algorithm 1
  /// lines 10-18). Parallel scan: both containment tests per pair fan out
  /// over the pool (the map and every position are read-only until the
  /// commit). Serial commit: reports, re-centers and dissolutions apply in
  /// sorted-key order, so stats and dissolution side effects are identical
  /// to the historical serial loop for any thread count.
  void MatchRegionPhase() {
    // Collect keys first: dissolution mutates the map.
    std::vector<uint64_t> keys;
    keys.reserve(matched.size());
    for (const auto& [key, region] : matched) keys.push_back(key);
    std::sort(keys.begin(), keys.end());  // Deterministic accounting.
    if (self.options_.use_match_regions) {
      pair_inside.assign(keys.size(), 0);
      ParallelForChunked(keys.size(), kPairGrain, [&](size_t lo, size_t hi) {
        for (size_t k = lo; k < hi; ++k) {
          const UserId u = static_cast<UserId>(keys[k] >> 32);
          const UserId w = static_cast<UserId>(keys[k] & 0xffffffffULL);
          const MatchRegion& m = matched.find(keys[k])->second;
          pair_inside[k] =
              m.Contains(users[u].pos) && m.Contains(users[w].pos);
        }
      });
    }
    for (size_t k = 0; k < keys.size(); ++k) {
      const uint64_t key = keys[k];
      const auto it = matched.find(key);
      if (it == matched.end()) continue;
      const UserId u = static_cast<UserId>(key >> 32);
      const UserId w = static_cast<UserId>(key & 0xffffffffULL);
      if (self.options_.use_match_regions && pair_inside[k]) {
        continue;
      }
      Report(u);
      Report(w);
      const double r = graph.AlertRadius(u, w);
      const double d = Distance(users[u].pos, users[w].pos);
      if (d < r) {
        if (self.options_.use_match_regions) {
          it->second = MatchRegion::Make(users[u].pos, users[w].pos, r);
          self.stats_.match_installs += 2;
          EngineMetrics::Get().match_installs.Inc(2);
          if (self.link_ != nullptr) {
            self.link_->InstallMatch(u, epoch, MatchOp::kUpdate, u, w,
                                     it->second.circle());
            self.link_->InstallMatch(w, epoch, MatchOp::kUpdate, u, w,
                                     it->second.circle());
          }
        }
      } else {
        DissolveMatch(u, w);
        // Both return to safe-region tracking against each other.
        EnqueueRebuild(u);
        EnqueueRebuild(w);
      }
    }
  }

  /// Clients compare their position against their safe region (Algorithm 1
  /// lines 19-21). Parallel scan: every user's ShapeContains runs on the
  /// pool into a per-user flag (regions and positions are read-only here).
  /// Serial commit: Report / EnqueueRebuild / OnExit fire in user order,
  /// exactly as the historical serial loop did.
  void SafeRegionExitPhase() {
    const size_t n = users.size();
    exit_flags.assign(n, kInside);
    ParallelForChunked(n, kUserGrain, [&](size_t lo, size_t hi) {
      for (size_t u = lo; u < hi; ++u) {
        if (!users[u].region) {
          // Only possible at epoch 0 before initialization.
          exit_flags[u] = kNeedsInit;
        } else if (!ShapeContains(*users[u].region, users[u].pos, epoch)) {
          exit_flags[u] = kExited;
        }
      }
    });
    for (UserId u = 0; u < static_cast<UserId>(n); ++u) {
      if (exit_flags[u] == kInside) continue;
      Report(u);
      EnqueueRebuild(u);
      if (exit_flags[u] == kExited) {
        EngineMetrics::Get().exits.Inc();
        self.policy_->OnExit(u);
      }
    }
  }

  /// Moving regions (FMD/CMD) drift toward each other between rebuilds;
  /// the server probes pairs whose regions may now violate the radius.
  ///
  /// Parallel scan: each edge's (AABB-pruned) region-pair comparison runs
  /// on the pool into a per-edge slot, filtered on the phase-*start* state
  /// (matched set and regions cannot change during this phase; needs_region
  /// only grows). Serial commit: edges are revisited in edge order and the
  /// skip conditions re-evaluated against the *current* state, so a probe
  /// issued for an earlier edge suppresses later edges of the same user
  /// exactly as the historical serial loop did. The edge snapshot is cached
  /// across epochs and refreshed only after graph updates (Edges() sorts
  /// the whole list on every call).
  void PerEpochPairCheck() {
    if (edges_dirty) {
      edge_cache = graph.Edges();
      edges_dirty = false;
    }
    const size_t n = edge_cache.size();
    edge_probe.assign(n, 0);
    ParallelForChunked(n, kEdgeGrain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const auto& e = edge_cache[i];
        if (IsMatched(e.u, e.w)) continue;
        if (users[e.u].needs_region || users[e.w].needs_region) continue;
        if (!users[e.u].region || !users[e.w].region) continue;
        edge_probe[i] = ShapeMinDistanceBelow(
            *users[e.u].region, *users[e.w].region, epoch, e.alert_radius);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      if (!edge_probe[i]) continue;
      const auto& e = edge_cache[i];
      // Re-check with commit-time state: earlier probes may have flagged an
      // endpoint for rebuild, which skips the pair just as the serial loop
      // would have.
      if (IsMatched(e.u, e.w)) continue;
      if (users[e.u].needs_region || users[e.w].needs_region) continue;
      EngineMetrics::Get().pair_check_probed_edges.Inc();
      Probe(e.u);
      Probe(e.w);
    }
  }

  /// Serialized rebuild loop: pops users needing a region, probes friends
  /// that are dangerously close, detects fresh matches, then asks the
  /// policy for a new region built against the friends' effective regions.
  void ResolvePhase() {
    while (!queue.empty()) {
      const UserId u = queue.front();
      queue.pop_front();
      if (!users[u].needs_region) continue;
      const Vec2 l_u = users[u].pos;
      const double v_u = users[u].speed;

      // Pass 1: probe friends whose region leaves no slack, then settle
      // alerts against every exact friend.
      for (const FriendEdge& fe : graph.FriendsOf(u)) {
        const UserId w = fe.other;
        if (IsMatched(u, w)) continue;
        if (!users[w].reported) {
          // gap <= min_gap + closing, phrased so the AABB lower bound can
          // settle the comparison without exact point-to-shape geometry.
          const double closing =
              self.options_.probe_horizon_epochs * (v_u + users[w].speed);
          if (ShapeDistanceToPointBelow(
                  *users[w].region, l_u, epoch,
                  fe.alert_radius + self.options_.min_gap + closing,
                  /*inclusive=*/true)) {
            Probe(w);
          }
        }
        if (users[w].reported) {
          const double d = Distance(l_u, users[w].pos);
          if (d < fe.alert_radius) CreateMatch(u, w, fe.alert_radius);
        }
      }

      // Pass 2: collect effective constraint regions for unmatched friends.
      std::vector<FriendView> views;
      for (const FriendEdge& fe : graph.FriendsOf(u)) {
        const UserId w = fe.other;
        if (IsMatched(u, w)) continue;
        FriendView view;
        view.id = w;
        view.alert_radius = fe.alert_radius;
        view.speed = std::max(users[w].speed, kMinSpeed);
        if (users[w].reported && users[w].needs_region && !users[w].rebuilt) {
          // Friend rebuilds later this epoch: constrain against a virtual
          // circle holding its Eq. (5) share of the slack, so the pair
          // splits the corridor speed-proportionally (Lemma 2); safety is
          // then sealed when the friend builds against u's real region.
          const double d = Distance(l_u, users[w].pos);
          const double share = InitializationRadius(view.speed, v_u, d,
                                                    fe.alert_radius);
          view.region = Circle{users[w].pos, share};
        } else {
          view.region = *users[w].region;
        }
        views.push_back(std::move(view));
      }

      world.RecentWindow(u, epoch, self.options_.window, &window_buf);
      SafeRegionShape shape =
          self.policy_->BuildRegion(u, l_u, window_buf, v_u, views, epoch);
      if (self.options_.validate_builds) {
        assert(ShapeContains(shape, l_u, epoch));
        for (const FriendView& view : views) {
          const double d = ShapeMinDistance(shape, view.region, epoch);
          assert(d >= view.alert_radius - 1e-6);
          (void)d;
        }
      }
      if (self.link_ != nullptr) self.link_->InstallRegion(u, epoch, shape);
      users[u].region = std::move(shape);
      users[u].rebuilt = true;
      users[u].needs_region = false;
      self.stats_.region_installs += 1;
      self.rebuild_count_ += 1;
      EngineMetrics::Get().region_installs.Inc();
      EngineMetrics::Get().rebuilds.Inc();
    }
  }

  void Run() {
    size_t next_update = 0;
    const bool per_epoch_check = self.policy_->NeedsPerEpochPairCheck();
    for (epoch = 0; epoch < world.epochs(); ++epoch) {
      // Per-user reset + position fetch: independent slots, fanned out.
      ParallelForChunked(users.size(), kUserGrain, [&](size_t lo, size_t hi) {
        for (size_t u = lo; u < hi; ++u) {
          users[u].reported = false;
          users[u].needs_region = false;
          users[u].rebuilt = false;
          users[u].queued = false;
          users[u].pos = world.Position(static_cast<UserId>(u), epoch);
        }
      });
      queue.clear();
      EngineMetrics::Get().epochs.Inc();
      {
        // Server-side bookkeeping time (Figure 8's CPU axis) now accumulates
        // via RAII: no phase reordering or early exit can skip it. The phase
        // spans only observe — recording happens outside the traced scopes'
        // bodies and never feeds back into the computation.
        ScopedTimer server_timer(self.stats_.server_seconds);
        {
          obs::TraceScope span("graph_updates", "engine");
          ApplyGraphUpdates(&next_update);
        }
        {
          obs::TraceScope span("match_region", "engine");
          MatchRegionPhase();
        }
        {
          obs::TraceScope span("exit_scan", "engine");
          SafeRegionExitPhase();
        }
        if (per_epoch_check) {
          obs::TraceScope span("pair_check", "engine");
          PerEpochPairCheck();
        }
        {
          obs::TraceScope span("resolve", "engine");
          ResolvePhase();
        }
      }
      // Epoch barrier: lets a transported link flush its per-client batch
      // queues. Outside the server timer — it is wire time, not proximity
      // bookkeeping.
      if (self.link_ != nullptr) self.link_->EndEpoch(epoch);
    }
  }
};

void RegionDetector::Run(const World& world) {
  stats_ = CommStats();
  alerts_.clear();
  rebuild_count_ = 0;
  Impl impl(world, *this);
  impl.Run();
}

}  // namespace proxdet
