#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/timer.h"
#include "core/client_link.h"
#include "core/detector.h"
#include "core/spatial_index.h"
#include "exec/thread_pool.h"
#include "geom/simd/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {

namespace {

/// Same names as the region engine's handles: both engines account into the
/// engine.* counters, so one reconciliation path serves every method.
struct NaiveMetrics {
  obs::Counter& reports;
  obs::Counter& alerts;
  obs::Counter& epochs;

  static const NaiveMetrics& Get() {
    static const NaiveMetrics m{
        obs::Metrics().GetCounter("engine.reports"),
        obs::Metrics().GetCounter("engine.alerts"),
        obs::Metrics().GetCounter("engine.epochs"),
    };
    return m;
  }
};

/// Spatial-index work counters, shared by both engines' grid paths and
/// reconciled against Detector::index_stats() to the unit.
struct IndexMetrics {
  obs::Counter& upserts;
  obs::Counter& moves;
  obs::Counter& rebuilds;
  obs::Counter& queries;
  obs::Counter& cells_probed;
  obs::Counter& candidates;

  static const IndexMetrics& Get() {
    static const IndexMetrics m{
        obs::Metrics().GetCounter("engine.index.upserts"),
        obs::Metrics().GetCounter("engine.index.moves"),
        obs::Metrics().GetCounter("engine.index.rebuilds"),
        obs::Metrics().GetCounter("engine.index.queries"),
        obs::Metrics().GetCounter("engine.index.cells_probed"),
        obs::Metrics().GetCounter("engine.index.candidates"),
    };
    return m;
  }
};

/// Batched pair-scan observability. The exhaustive oracle path records one
/// histogram sample per chunk dispatch (the SoA lane count handed to the
/// kernel); the grid path's per-user batches are too frequent for a
/// mutex-guarded histogram, so they are summarized by the lane counter
/// instead (lanes staged are survivors of the integer filters — a pure
/// function of the workload, so both stay in the deterministic digest).
/// The dispatch counter is keyed by the runtime-selected backend, which
/// depends on CPUID and -DPROXDET_SIMD, hence wall-clock-kinded.
struct SimdScanMetrics {
  obs::HistogramMetric& pair_scan_batch;
  obs::Counter& pair_scan_lanes;
  obs::Counter& dispatches;

  static const SimdScanMetrics& Get() {
    static const SimdScanMetrics m{
        obs::Metrics().GetHistogram(
            "simd.batch.pair_scan",
            {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
             1024.0},
            obs::Kind::kDeterministic),
        obs::Metrics().GetCounter("simd.lanes.pair_scan",
                                  obs::Kind::kDeterministic),
        obs::Metrics().GetCounter(
            std::string("simd.dispatch.") +
                simd::BackendName(simd::ActiveBackend()),
            obs::Kind::kWallClock),
    };
    return m;
  }
};

// Edges per scan chunk: coarse enough that chunk bookkeeping is negligible
// next to the distance math, fine enough to balance the pool at 10k users.
constexpr size_t kEdgeGrain = 1024;
// Users per grid-query chunk: each iteration runs a multi-cell candidate
// enumeration, heavier than one distance, so chunks are finer.
constexpr size_t kQueryGrain = 256;

}  // namespace

// The per-epoch pair check is split into a parallel read-only scan and a
// serial in-order commit, preserving the serial engine's outputs bit-exactly
// for any thread count:
//  - scan: pair decisions run on the pool; each chunk appends the edge
//    slots whose inside/outside state *changed* to its own delta list
//    (positions, edge list, grid buckets and matched flags are read-only).
//  - commit: transition slots are walked in ascending slot order — global
//    edge order — flipping per-edge matched state and emitting alerts
//    exactly where the historical serial loop would have.
// Matched state is slot-indexed against a cached edge snapshot (rebuilt
// only when graph updates apply); per-edge decisions depend only on that
// edge's own persistent state, so the transition set is order-independent
// and the commit order fixes the alert order.
//
// Two scans produce that transition set (DESIGN.md §10 argues equality):
//  - exhaustive (the oracle): every edge's distance comparison.
//  - grid (default): enter transitions come from per-user candidate
//    enumeration over grid cells within the user's largest incident alert
//    radius (only the u < w side emits, so each pair is examined once);
//    exit transitions from a direct check of the currently-matched pairs.
//    Grid bucket order is insertion-dependent, so the merged transition
//    slots are sorted before the commit — normalizing them onto the exact
//    order the exhaustive scan produces.
void NaiveDetector::Run(const World& world) {
  stats_ = CommStats();
  phase_times_ = PhaseTimes();
  alerts_.clear();
  index_stats_ = SpatialIndexStats();
  InterestGraph graph = world.graph();  // Mutable copy for dynamic updates.
  std::unordered_set<uint64_t> matched_pairs;  // Source of truth across rebuilds.
  std::vector<InterestGraph::Edge> edges;
  std::vector<uint8_t> matched;  // Slot-aligned mirror of matched_pairs.
  std::vector<Vec2> pos(world.user_count());
  bool edges_dirty = true;
  size_t next_update = 0;
  const auto& updates = world.scheduled_updates();

  // Grid-path state, maintained incrementally across epochs. Edge slots
  // are found by binary search instead of a hash map: Edges() is sorted by
  // (u, w) with u < w, so user u's smaller-endpoint edges occupy the
  // contiguous range [edge_start[u], edge_start[u+1]) ordered by w — an
  // O(N + E) counting pass replaces E hash inserts per rebuild.
  UniformGridIndex grid;
  std::vector<uint32_t> edge_start(world.user_count() + 1, 0);
  std::vector<double> max_incident(world.user_count(), 0.0);
  const auto find_slot = [&](UserId u, UserId w) -> int64_t {
    const auto lo = edges.begin() + edge_start[u];
    const auto hi = edges.begin() + edge_start[u + 1];
    const auto it = std::lower_bound(
        lo, hi, w,
        [](const InterestGraph::Edge& e, UserId w_) { return e.w < w_; });
    if (it == hi || it->w != w) return -1;
    return it - edges.begin();
  };

  // Reused scratch, kept allocation-free across epochs (clear, don't free).
  // Cache-line aligned per chunk: the vector headers and work counters are
  // written from pool threads while neighbouring chunks run on other
  // cores — packed tightly they false-share a line and the ping-pong costs
  // more than the queries themselves.
  struct alignas(64) ChunkScratch {
    std::vector<uint32_t> out;   // Transition slots found by this chunk.
    std::vector<int32_t> cand;   // Grid-query candidate buffer.
    // SoA staging for the batched distance predicate: candidates that
    // survive the cheap integer filters are gathered here, then settled by
    // one simd kernel call per batch (bit-exact with the scalar compare).
    std::vector<uint32_t> slots;  // Edge slot per staged lane.
    std::vector<double> ax, ay;   // First endpoint (u side).
    std::vector<double> bx, by;   // Second endpoint (candidate side).
    std::vector<double> rad;      // Alert radius per lane.
    std::vector<uint8_t> within;  // Kernel verdicts.
    uint64_t queries = 0;
    uint64_t cells = 0;
    uint64_t candidates = 0;
    uint64_t kernel_calls = 0;  // Batched-kernel dispatches this chunk.
    uint64_t kernel_lanes = 0;  // SoA lanes staged across those calls.
  };
  std::vector<ChunkScratch> chunks_scratch;
  std::vector<uint32_t> transitions;  // Merged + sorted slots (grid path).
  std::vector<uint32_t> matched_slots;
  std::vector<Vec2> window_scratch;  // Transported reports (window_len 0).

  for (int epoch = 0; epoch < world.epochs(); ++epoch) {
    // Streaming worlds generate this epoch's positions here — the one
    // serial point before the parallel position fan-out below.
    world.BeginEpoch(epoch);
    while (next_update < updates.size() &&
           updates[next_update].epoch <= epoch) {
      const GraphUpdate& up = updates[next_update];
      if (up.insert) {
        graph.AddEdge(up.u, up.w, up.alert_radius);
      } else {
        graph.RemoveEdge(up.u, up.w);
        matched_pairs.erase(PairKey(up.u, up.w));
      }
      ++next_update;
      edges_dirty = true;
    }
    if (edges_dirty) {
      edges = graph.Edges();
      matched.assign(edges.size(), 0);
      for (size_t i = 0; i < edges.size(); ++i) {
        matched[i] = matched_pairs.count(PairKey(edges[i].u, edges[i].w)) > 0;
      }
      if (options_.use_spatial_index) {
        std::fill(edge_start.begin(), edge_start.end(), 0);
        std::fill(max_incident.begin(), max_incident.end(), 0.0);
        double max_r = 0.0;
        for (const auto& e : edges) {
          ++edge_start[e.u + 1];
          max_incident[e.u] = std::max(max_incident[e.u], e.alert_radius);
          max_incident[e.w] = std::max(max_incident[e.w], e.alert_radius);
          max_r = std::max(max_r, e.alert_radius);
        }
        for (size_t u = 1; u < edge_start.size(); ++u) {
          edge_start[u] += edge_start[u - 1];
        }
        // Cell size tracks the radius regime: one cell spans the largest
        // alert radius, so a candidate query touches at most ~9 cells.
        grid.SetCellSize(max_r > 0.0 ? max_r : 1.0);
      }
      edges_dirty = false;
    }
    // Every client uploads its position.
    stats_.reports += world.user_count();
    NaiveMetrics::Get().reports.Inc(world.user_count());
    NaiveMetrics::Get().epochs.Inc();
    ScopedTimer server_timer(stats_.server_seconds);
    obs::TraceScope span("pair_check", "engine");
    ParallelForChunked(pos.size(), kEdgeGrain, [&](size_t lo, size_t hi) {
      for (size_t u = lo; u < hi; ++u) {
        pos[u] = world.Position(static_cast<UserId>(u), epoch);
      }
    });
    if (link_ != nullptr) {
      // Transported run: every upload crosses the wire (window-less reports;
      // Naive never predicts). The server-decoded positions replace the
      // direct-read mirror above — bit-identical by the codec's exact
      // round-trip, so the distance scan below is unchanged.
      for (UserId u = 0; u < static_cast<UserId>(pos.size()); ++u) {
        link_->Report(u, epoch, 0, &pos[u], &window_scratch);
      }
    }
    WallTimer phase_timer;  // pair_check: scan + commit, not the uploads.
    transitions.clear();
    if (options_.use_spatial_index) {
      // Maintenance: move every user to its current cell (serial — the
      // grid is the one structure the parallel scan below reads).
      for (UserId u = 0; u < static_cast<UserId>(pos.size()); ++u) {
        grid.Upsert(u, pos[u]);
      }
      // Enter scan: candidates from cells within the user's own largest
      // incident radius; only the u < w side emits, so each unmatched edge
      // is distance-checked at most once, from its smaller endpoint.
      const size_t n = pos.size();
      const size_t chunks = n == 0 ? 0 : (n + kQueryGrain - 1) / kQueryGrain;
      if (chunks_scratch.size() < chunks) chunks_scratch.resize(chunks);
      ParallelForChunked(n, kQueryGrain, [&](size_t lo, size_t hi) {
        ChunkScratch& scratch = chunks_scratch[lo / kQueryGrain];
        std::vector<uint32_t>& out = scratch.out;
        std::vector<int32_t>& cand = scratch.cand;
        out.clear();
        // Work tallies accumulate in registers; one store per chunk.
        uint64_t queries = 0;
        uint64_t cells = 0;
        uint64_t candidates = 0;
        uint64_t kernel_calls = 0;
        uint64_t kernel_lanes = 0;
        for (size_t u = lo; u < hi; ++u) {
          const double query_r = max_incident[u];
          if (query_r <= 0.0) continue;  // Isolated user: no edges to check.
          cand.clear();
          queries += 1;
          cells += grid.Query(pos[u], query_r, &cand);
          candidates += cand.size();
          // Stage the survivors of the integer filters into SoA lanes; the
          // batched kernel computes Distance(pos[u], pos[w]) < r per lane
          // bit-exactly, so the pushed slots (and their order) match the
          // scalar loop's.
          std::vector<uint32_t>& slots = scratch.slots;
          slots.clear();
          scratch.bx.clear();
          scratch.by.clear();
          scratch.rad.clear();
          for (const int32_t w : cand) {
            if (w <= static_cast<int32_t>(u)) continue;
            const int64_t found = find_slot(static_cast<UserId>(u), w);
            if (found < 0) continue;  // Spatially near, no edge.
            const uint32_t slot = static_cast<uint32_t>(found);
            if (matched[slot]) continue;  // Exits handled below.
            slots.push_back(slot);
            scratch.bx.push_back(pos[w].x);
            scratch.by.push_back(pos[w].y);
            scratch.rad.push_back(edges[slot].alert_radius);
          }
          const size_t m = slots.size();
          kernel_calls += 1;
          kernel_lanes += m;
          scratch.within.resize(m);
          simd::PointWithinRadiusOfPoints(pos[u].x, pos[u].y,
                                          scratch.bx.data(), scratch.by.data(),
                                          scratch.rad.data(), m,
                                          scratch.within.data());
          for (size_t k = 0; k < m; ++k) {
            if (scratch.within[k]) out.push_back(slots[k]);
          }
        }
        scratch.queries = queries;
        scratch.cells = cells;
        scratch.candidates = candidates;
        scratch.kernel_calls = kernel_calls;
        scratch.kernel_lanes = kernel_lanes;
      });
      // Exit scan: matched pairs are few (output-sensitive) and their
      // membership is not a spatial property, so they are checked directly.
      matched_slots.clear();
      for (const uint64_t key : matched_pairs) {
        matched_slots.push_back(
            static_cast<uint32_t>(find_slot(PairKeyMin(key), PairKeyMax(key))));
      }
      for (const uint32_t slot : matched_slots) {
        const auto& e = edges[slot];
        if (!(Distance(pos[e.u], pos[e.w]) < e.alert_radius)) {
          transitions.push_back(slot);
        }
      }
      uint64_t queries = 0;
      uint64_t cells = 0;
      uint64_t candidates = 0;
      uint64_t kernel_calls = 0;
      uint64_t kernel_lanes = 0;
      for (size_t c = 0; c < chunks; ++c) {
        const ChunkScratch& scratch = chunks_scratch[c];
        transitions.insert(transitions.end(), scratch.out.begin(),
                           scratch.out.end());
        queries += scratch.queries;
        cells += scratch.cells;
        candidates += scratch.candidates;
        kernel_calls += scratch.kernel_calls;
        kernel_lanes += scratch.kernel_lanes;
      }
      SimdScanMetrics::Get().dispatches.Inc(kernel_calls);
      SimdScanMetrics::Get().pair_scan_lanes.Inc(kernel_lanes);
      // Normalize: bucket enumeration order is maintenance-dependent, so
      // sort the transition set into the exhaustive scan's slot order.
      std::sort(transitions.begin(), transitions.end());
      grid.RecordQuery(queries, cells, candidates);
    } else {
      // Exhaustive oracle: every edge's distance comparison, chunk delta
      // lists concatenated in chunk order (== ascending slot order).
      const size_t chunks =
          edges.empty() ? 0 : (edges.size() + kEdgeGrain - 1) / kEdgeGrain;
      if (chunks_scratch.size() < chunks) chunks_scratch.resize(chunks);
      ParallelForChunked(edges.size(), kEdgeGrain, [&](size_t lo, size_t hi) {
        ChunkScratch& scratch = chunks_scratch[lo / kEdgeGrain];
        std::vector<uint32_t>& out = scratch.out;
        out.clear();
        // Gather both endpoints into SoA lanes, settle the whole chunk with
        // one batched Distance < r kernel call (bit-exact per lane), then
        // diff against the matched state in slot order.
        const size_t m = hi - lo;
        scratch.ax.resize(m);
        scratch.ay.resize(m);
        scratch.bx.resize(m);
        scratch.by.resize(m);
        scratch.rad.resize(m);
        scratch.within.resize(m);
        for (size_t i = lo; i < hi; ++i) {
          const auto& e = edges[i];
          scratch.ax[i - lo] = pos[e.u].x;
          scratch.ay[i - lo] = pos[e.u].y;
          scratch.bx[i - lo] = pos[e.w].x;
          scratch.by[i - lo] = pos[e.w].y;
          scratch.rad[i - lo] = e.alert_radius;
        }
        SimdScanMetrics::Get().pair_scan_batch.Record(static_cast<double>(m));
        SimdScanMetrics::Get().dispatches.Inc();
        SimdScanMetrics::Get().pair_scan_lanes.Inc(m);
        simd::PairsWithinRadii(scratch.ax.data(), scratch.ay.data(),
                               scratch.bx.data(), scratch.by.data(),
                               scratch.rad.data(), m, scratch.within.data());
        for (size_t i = lo; i < hi; ++i) {
          const bool inside = scratch.within[i - lo] != 0;
          if (inside != (matched[i] != 0)) {
            out.push_back(static_cast<uint32_t>(i));
          }
        }
      });
      for (size_t c = 0; c < chunks; ++c) {
        transitions.insert(transitions.end(), chunks_scratch[c].out.begin(),
                           chunks_scratch[c].out.end());
      }
    }
    for (const uint32_t i : transitions) {
      const auto& e = edges[i];
      const uint64_t key = PairKey(e.u, e.w);
      if (matched[i]) {
        matched[i] = 0;
        matched_pairs.erase(key);
      } else {
        matched[i] = 1;
        matched_pairs.insert(key);
        const UserId a = std::min(e.u, e.w);
        const UserId b = std::max(e.u, e.w);
        alerts_.push_back({epoch, a, b});
        stats_.alerts += 2;  // One notification per endpoint.
        NaiveMetrics::Get().alerts.Inc(2);
        if (link_ != nullptr) {
          link_->Alert(e.u, a, b, epoch);
          link_->Alert(e.w, a, b, epoch);
        }
      }
    }
    phase_times_.pair_check += phase_timer.ElapsedSeconds();
    // Epoch barrier for batched transported links (no-op in-process).
    if (link_ != nullptr) link_->EndEpoch(epoch);
  }
  if (options_.use_spatial_index) {
    index_stats_ = grid.stats();
    const IndexMetrics& m = IndexMetrics::Get();
    m.upserts.Inc(index_stats_.upserts);
    m.moves.Inc(index_stats_.moves);
    m.rebuilds.Inc(index_stats_.rebuilds);
    m.queries.Inc(index_stats_.queries);
    m.cells_probed.Inc(index_stats_.cells_probed);
    m.candidates.Inc(index_stats_.candidates);
  }
}

}  // namespace proxdet
