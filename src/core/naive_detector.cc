#include "core/detector.h"

#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"

namespace proxdet {

namespace {

uint64_t PairKey(UserId u, UserId w) {
  const uint64_t a = static_cast<uint64_t>(std::min(u, w));
  const uint64_t b = static_cast<uint64_t>(std::max(u, w));
  return (a << 32) | b;
}

}  // namespace

void NaiveDetector::Run(const World& world) {
  stats_ = CommStats();
  alerts_.clear();
  InterestGraph graph = world.graph();  // Mutable copy for dynamic updates.
  std::unordered_set<uint64_t> matched;
  size_t next_update = 0;
  const auto& updates = world.scheduled_updates();
  for (int epoch = 0; epoch < world.epochs(); ++epoch) {
    while (next_update < updates.size() &&
           updates[next_update].epoch <= epoch) {
      const GraphUpdate& up = updates[next_update];
      if (up.insert) {
        graph.AddEdge(up.u, up.w, up.alert_radius);
      } else {
        graph.RemoveEdge(up.u, up.w);
        matched.erase(PairKey(up.u, up.w));
      }
      ++next_update;
    }
    // Every client uploads its position.
    stats_.reports += world.user_count();
    WallTimer server_timer;
    for (const auto& e : graph.Edges()) {
      const double d =
          Distance(world.Position(e.u, epoch), world.Position(e.w, epoch));
      const uint64_t key = PairKey(e.u, e.w);
      const bool inside = d < e.alert_radius;
      const bool was = matched.count(key) > 0;
      if (inside && !was) {
        matched.insert(key);
        alerts_.push_back({epoch, std::min(e.u, e.w), std::max(e.u, e.w)});
        stats_.alerts += 2;  // One notification per endpoint.
      } else if (!inside && was) {
        matched.erase(key);
      }
    }
    stats_.server_seconds += server_timer.ElapsedSeconds();
  }
}

}  // namespace proxdet
