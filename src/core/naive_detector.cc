#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/timer.h"
#include "core/client_link.h"
#include "core/detector.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {

namespace {

/// Same names as the region engine's handles: both engines account into the
/// engine.* counters, so one reconciliation path serves every method.
struct NaiveMetrics {
  obs::Counter& reports;
  obs::Counter& alerts;
  obs::Counter& epochs;

  static const NaiveMetrics& Get() {
    static const NaiveMetrics m{
        obs::Metrics().GetCounter("engine.reports"),
        obs::Metrics().GetCounter("engine.alerts"),
        obs::Metrics().GetCounter("engine.epochs"),
    };
    return m;
  }
};

uint64_t PairKey(UserId u, UserId w) {
  const uint64_t a = static_cast<uint64_t>(std::min(u, w));
  const uint64_t b = static_cast<uint64_t>(std::max(u, w));
  return (a << 32) | b;
}

// Edges per scan chunk: coarse enough that chunk bookkeeping is negligible
// next to the distance math, fine enough to balance the pool at 10k users.
constexpr size_t kEdgeGrain = 1024;

}  // namespace

// The O(edges) distance scan is split into a parallel read-only scan and a
// serial in-order commit, preserving the serial engine's outputs bit-exactly
// for any thread count:
//  - scan: every edge's distance comparison runs on the pool; each chunk
//    appends the slots whose inside/outside state *changed* to its own
//    delta list (positions, edge list and matched flags are read-only).
//  - commit: delta lists are walked in chunk order — i.e. global edge
//    order — flipping per-edge matched state and emitting alerts exactly
//    where the serial loop would have.
// Matched state is slot-indexed against a cached edge snapshot (rebuilt
// only when graph updates apply); per-edge decisions depend only on that
// edge's own persistent state, so the transition set is order-independent
// and the commit order fixes the alert order.
void NaiveDetector::Run(const World& world) {
  stats_ = CommStats();
  alerts_.clear();
  InterestGraph graph = world.graph();  // Mutable copy for dynamic updates.
  std::unordered_set<uint64_t> matched_pairs;  // Source of truth across rebuilds.
  std::vector<InterestGraph::Edge> edges;
  std::vector<uint8_t> matched;  // Slot-aligned mirror of matched_pairs.
  std::vector<Vec2> pos(world.user_count());
  std::vector<std::vector<uint32_t>> deltas;
  bool edges_dirty = true;
  size_t next_update = 0;
  const auto& updates = world.scheduled_updates();
  for (int epoch = 0; epoch < world.epochs(); ++epoch) {
    while (next_update < updates.size() &&
           updates[next_update].epoch <= epoch) {
      const GraphUpdate& up = updates[next_update];
      if (up.insert) {
        graph.AddEdge(up.u, up.w, up.alert_radius);
      } else {
        graph.RemoveEdge(up.u, up.w);
        matched_pairs.erase(PairKey(up.u, up.w));
      }
      ++next_update;
      edges_dirty = true;
    }
    if (edges_dirty) {
      edges = graph.Edges();
      matched.assign(edges.size(), 0);
      for (size_t i = 0; i < edges.size(); ++i) {
        matched[i] = matched_pairs.count(PairKey(edges[i].u, edges[i].w)) > 0;
      }
      edges_dirty = false;
    }
    // Every client uploads its position.
    stats_.reports += world.user_count();
    NaiveMetrics::Get().reports.Inc(world.user_count());
    NaiveMetrics::Get().epochs.Inc();
    ScopedTimer server_timer(stats_.server_seconds);
    obs::TraceScope span("pair_check", "engine");
    ParallelForChunked(pos.size(), kEdgeGrain, [&](size_t lo, size_t hi) {
      for (size_t u = lo; u < hi; ++u) {
        pos[u] = world.Position(static_cast<UserId>(u), epoch);
      }
    });
    if (link_ != nullptr) {
      // Transported run: every upload crosses the wire (window-less reports;
      // Naive never predicts). The server-decoded positions replace the
      // direct-read mirror above — bit-identical by the codec's exact
      // round-trip, so the distance scan below is unchanged.
      std::vector<Vec2> window_scratch;
      for (UserId u = 0; u < static_cast<UserId>(pos.size()); ++u) {
        link_->Report(u, epoch, 0, &pos[u], &window_scratch);
      }
    }
    const size_t chunks =
        edges.empty() ? 0 : (edges.size() + kEdgeGrain - 1) / kEdgeGrain;
    deltas.assign(chunks, {});
    ParallelForChunked(edges.size(), kEdgeGrain, [&](size_t lo, size_t hi) {
      std::vector<uint32_t>& out = deltas[lo / kEdgeGrain];
      for (size_t i = lo; i < hi; ++i) {
        const auto& e = edges[i];
        const bool inside = Distance(pos[e.u], pos[e.w]) < e.alert_radius;
        if (inside != (matched[i] != 0)) out.push_back(static_cast<uint32_t>(i));
      }
    });
    for (const std::vector<uint32_t>& delta : deltas) {
      for (const uint32_t i : delta) {
        const auto& e = edges[i];
        const uint64_t key = PairKey(e.u, e.w);
        if (matched[i]) {
          matched[i] = 0;
          matched_pairs.erase(key);
        } else {
          matched[i] = 1;
          matched_pairs.insert(key);
          const UserId a = std::min(e.u, e.w);
          const UserId b = std::max(e.u, e.w);
          alerts_.push_back({epoch, a, b});
          stats_.alerts += 2;  // One notification per endpoint.
          NaiveMetrics::Get().alerts.Inc(2);
          if (link_ != nullptr) {
            link_->Alert(e.u, a, b, epoch);
            link_->Alert(e.w, a, b, epoch);
          }
        }
      }
    }
    // Epoch barrier for batched transported links (no-op in-process).
    if (link_ != nullptr) link_->EndEpoch(epoch);
  }
}

}  // namespace proxdet
