#ifndef PROXDET_CORE_REGION_DETECTOR_H_
#define PROXDET_CORE_REGION_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "region/region.h"

namespace proxdet {

/// A friend as presented to a region policy during construction: the
/// *effective* constraint region (the friend's installed safe region, or a
/// virtual circle around its exact location when it is rebuilding in the
/// same epoch), the pair's alert radius and the server's speed estimate.
///
/// The installed-region case BORROWS the engine's shape (`borrowed`)
/// instead of copying it: a Stripe carries its per-segment SoA cache, and
/// deep-copying ~F of them per rebuild was a top profile entry. The
/// borrowed pointer is valid for the duration of the BuildRegion call (the
/// resolve queue is serialized, and nothing reinstalls a friend's region
/// between view collection and the build). The virtual-split case owns its
/// small circle in `owned_region`. Views are safely movable/copyable —
/// `region()` resolves through the pointer only at read time.
struct FriendView {
  UserId id = -1;
  const SafeRegionShape* borrowed = nullptr;
  SafeRegionShape owned_region;
  double alert_radius = 0.0;
  double speed = 0.0;  // m/epoch

  const SafeRegionShape& region() const {
    return borrowed != nullptr ? *borrowed : owned_region;
  }
};

/// Strategy interface: how safe regions are constructed. The engine
/// (RegionDetector) owns the protocol — exits, probes, match regions,
/// alerts — and is shared by Static [3], FMD/CMD [19] and the predictive
/// stripe; policies only differ in the region they build.
///
/// Soundness contract: the returned region must (a) contain `location` and
/// (b) keep distance >= alert_radius from every FriendView region at
/// `epoch`. Rebuilds within an epoch are serialized by the engine, so a
/// policy honoring (b) preserves the pairwise invariant d(u, w) >= r_{u,w}
/// for pairs fully inside their regions.
class RegionPolicy {
 public:
  virtual ~RegionPolicy() = default;

  virtual std::string name() const = 0;

  /// True when regions move over time (FMD/CMD), requiring the server to
  /// re-check region-pair distances every epoch; static shapes only need
  /// checks at construction.
  virtual bool NeedsPerEpochPairCheck() const { return false; }

  virtual SafeRegionShape BuildRegion(UserId u, const Vec2& location,
                                      const std::vector<Vec2>& recent_window,
                                      double speed,
                                      const std::vector<FriendView>& friends,
                                      int epoch) = 0;

  /// Self-tuning hooks (CMD): the user left its region / was probed.
  virtual void OnExit(UserId u);
  virtual void OnProbe(UserId u);
};

/// The generic safe-region + match-region protocol of Algorithm 1, with
/// message accounting. See DESIGN.md §5 for the message taxonomy.
class RegionDetector : public Detector {
 public:
  struct Options {
    /// Probe threshold: when a reporting user's distance to a friend's
    /// region leaves less than this much slack beyond the alert radius, the
    /// friend is probed (its exact position is required for safety).
    double min_gap = 1.0;  // meters
    /// Kinetic probe threshold (Sec. V-B case 2): also probe when the pair
    /// could close the remaining slack within this many epochs at their
    /// estimated speeds. A stale friend region that leaves the rebuilder
    /// only a sliver would force a useless micro-region that dies next
    /// epoch; one probe instead frees the space and both sides get an
    /// Eq. (5)-style split of the true slack.
    double probe_horizon_epochs = 0.0;
    /// Recent-window length attached to reports (predictor input; the
    /// paper fixes input length 10).
    size_t window = 10;
    /// When true, every rebuilt region is validated against all effective
    /// friend constraints (used by tests; costs an extra distance pass).
    bool validate_builds = false;
    /// Ablation switch: disable Def. 3 match regions. Matched pairs then
    /// report every epoch until they separate (the naive fallback the match
    /// region was designed to avoid).
    bool use_match_regions = true;
    /// false selects the exhaustive scans (every edge's region-pair
    /// distance in the per-epoch pair check; exact circle math for every
    /// matched pair) — the oracles the grid paths are verified against.
    /// The flag only changes *how* candidates are enumerated, never the
    /// outputs: alerts, CommStats and rebuild counts are bit-exact either
    /// way (property-tested, and enforced by bench/micro_index).
    bool use_spatial_index = true;
  };

  explicit RegionDetector(std::unique_ptr<RegionPolicy> policy);
  RegionDetector(std::unique_ptr<RegionPolicy> policy, Options options);
  ~RegionDetector() override;

  std::string name() const override;
  void Run(const World& world) override;

  /// Number of safe-region constructions performed (diagnostics).
  uint64_t rebuild_count() const { return rebuild_count_; }

  /// Work counters of the last Run's grid paths (all zero with
  /// use_spatial_index = false); mirrors the engine.index.* obs counters
  /// to the unit (see bench_support/obs_artifacts.h).
  const SpatialIndexStats& index_stats() const { return index_stats_; }

 private:
  struct Impl;
  std::unique_ptr<RegionPolicy> policy_;
  Options options_;
  uint64_t rebuild_count_ = 0;
  SpatialIndexStats index_stats_;
};

}  // namespace proxdet

#endif  // PROXDET_CORE_REGION_DETECTOR_H_
