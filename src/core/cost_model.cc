#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/gaussian.h"

namespace proxdet {

double StayProbability(double radius, double sigma) {
  return FoldedNormalCdf(radius, sigma);
}

double ExpectedExitTime(double radius, double speed, double p, int m) {
  const double base = radius / std::max(speed, 1e-9);
  if (p >= 1.0) return base + static_cast<double>(m);
  if (p <= 0.0) return base;
  // Delta_t = 1 epoch: E_m = radius/speed + p (1 - p^m) / (1 - p).
  return base + p * (1.0 - std::pow(p, m)) / (1.0 - p);
}

double ExpectedProbeTime(const std::vector<FriendGap>& gaps, double radius) {
  double e_p = std::numeric_limits<double>::infinity();
  for (const FriendGap& g : gaps) {
    const double t = (g.y0 - radius - g.alert_radius) / std::max(g.speed, 1e-9);
    e_p = std::min(e_p, t);
  }
  return e_p;
}

double RadiusUpperBound(const std::vector<FriendGap>& gaps) {
  double ub = std::numeric_limits<double>::infinity();
  for (const FriendGap& g : gaps) {
    ub = std::min(ub, g.y0 - g.alert_radius);
  }
  return ub;
}

double InitializationRadius(double my_speed, double friend_speed,
                            double center_distance, double alert_radius) {
  const double slack = center_distance - alert_radius;
  if (slack <= 0.0) return 0.0;
  const double total = std::max(my_speed + friend_speed, 1e-9);
  return my_speed * slack / total;
}

RadiusSolution SolveStripeRadius(const std::vector<FriendGap>& gaps, int m,
                                 double sigma, double speed,
                                 double radius_cap, double epsilon) {
  speed = std::max(speed, 1e-9);
  auto evaluate = [&gaps, m, sigma, speed](double s) {
    RadiusSolution sol;
    sol.radius = s;
    sol.e_m = ExpectedExitTime(s, speed, StayProbability(s, sigma), m);
    sol.e_p = ExpectedProbeTime(gaps, s);
    return sol;
  };

  double upper = RadiusUpperBound(gaps);
  if (!std::isfinite(upper)) {
    // No friend constrains the stripe; take the configured cap.
    return evaluate(radius_cap);
  }
  upper = std::min(upper, radius_cap);
  if (upper <= 0.0) return evaluate(0.0);

  RadiusSolution at_upper = evaluate(upper);
  if (at_upper.e_m <= at_upper.e_p) {
    // Shrinking the radius lowers E_m and raises E_p — the gap only grows
    // (Algorithm 2's early exit).
    return at_upper;
  }
  // E_m(0) = 0 <= E_p(0) and E_m(upper) > E_p(upper): bisect the crossing.
  double lo = 0.0;
  double hi = upper;
  RadiusSolution sol = at_upper;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    sol = evaluate(mid);
    if (std::fabs(sol.e_m - sol.e_p) < epsilon) break;
    if (sol.e_m <= sol.e_p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return sol;
}

}  // namespace proxdet
