#include "core/policies.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "geom/simd/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {

namespace {

/// Cost-model internals per rebuild, all deterministic: the chosen
/// prediction horizon m, the unit stripe half-width s^u (via the chosen
/// radius), and the expected message costs E_m / E_p the optimizer settled
/// on (Sec. V-B). Distributions, not totals — the report surfaces p50/p90.
struct StripeMetrics {
  obs::Counter& builds;
  obs::HistogramMetric& m;
  obs::QuantileMetric& radius;
  obs::QuantileMetric& e_m;
  obs::QuantileMetric& e_p;
  /// SoA lane counts the builder staged per rebuild (point-like constraints
  /// vs concatenated stripe segments) — deterministic functions of the
  /// workload, like every other stripe.* metric. Power-of-two-ish buckets:
  /// what matters is how many lanes land in full vector blocks vs the
  /// scalar tail.
  obs::HistogramMetric& batch_points;
  obs::HistogramMetric& batch_segments;
  /// Batched-kernel dispatches, keyed by the runtime-selected backend
  /// (simd.dispatch.scalar|w4|w8). The split is host- and build-dependent
  /// (CPUID, -DPROXDET_SIMD), so it is wall-clock-kinded and stays out of
  /// the deterministic digest.
  obs::Counter& dispatches;

  static const StripeMetrics& Get() {
    static const StripeMetrics metrics{
        obs::Metrics().GetCounter("stripe.builds"),
        obs::Metrics().GetHistogram(
            "stripe.m",
            {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0},
            obs::Kind::kDeterministic),
        obs::Metrics().GetQuantile("stripe.radius",
                                   obs::Kind::kDeterministic),
        obs::Metrics().GetQuantile("stripe.e_m", obs::Kind::kDeterministic),
        obs::Metrics().GetQuantile("stripe.e_p", obs::Kind::kDeterministic),
        obs::Metrics().GetHistogram(
            "simd.batch.stripe_points",
            {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
             1024.0},
            obs::Kind::kDeterministic),
        obs::Metrics().GetHistogram(
            "simd.batch.stripe_segments",
            {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
             1024.0},
            obs::Kind::kDeterministic),
        obs::Metrics().GetCounter(
            std::string("simd.dispatch.") +
                simd::BackendName(simd::ActiveBackend()),
            obs::Kind::kWallClock),
    };
    return metrics;
  }
};

/// A representative interior point of a shape, used only to orient
/// half-plane boundaries; soundness never depends on it (the verify-and-
/// shrink loop checks exact distances).
Vec2 RepresentativePoint(const SafeRegionShape& shape, int epoch) {
  return std::visit(
      [epoch](const auto& s) -> Vec2 {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Circle>) {
          return s.center;
        } else if constexpr (std::is_same_v<T, MovingCircle>) {
          return s.CenterAt(epoch);
        } else if constexpr (std::is_same_v<T, ConvexPolygon>) {
          Vec2 acc{0.0, 0.0};
          if (s.vertices().empty()) return acc;
          for (const Vec2& v : s.vertices()) acc += v;
          return acc / static_cast<double>(s.vertices().size());
        } else {
          const auto& pts = s.path().points();
          return pts.empty() ? Vec2{0.0, 0.0} : pts[pts.size() / 2];
        }
      },
      shape);
}

}  // namespace

SafeRegionShape StaticPolygonPolicy::BuildRegion(
    UserId u, const Vec2& location, const std::vector<Vec2>& recent_window,
    double speed, const std::vector<FriendView>& friends, int epoch) {
  (void)u;
  (void)recent_window;
  (void)speed;
  // One boundary offset per friend; start at the full measured slack and
  // shrink on verification failure.
  std::vector<double> offsets(friends.size());
  std::vector<Vec2> directions(friends.size());
  for (size_t i = 0; i < friends.size(); ++i) {
    const double d = ShapeDistanceToPoint(friends[i].region(), location, epoch);
    offsets[i] = std::max(0.0, d - friends[i].alert_radius);
    Vec2 dir = RepresentativePoint(friends[i].region(), epoch) - location;
    if (dir.SquaredNorm() < 1e-12) dir = Vec2{1.0, 0.0};
    directions[i] = dir.Normalized();
  }

  for (int iter = 0;; ++iter) {
    ConvexPolygon poly = ConvexPolygon::Square(location, options_.extent_cap);
    for (size_t i = 0; i < friends.size(); ++i) {
      poly = poly.ClippedBy(
          {location + directions[i] * offsets[i], directions[i]});
      if (poly.empty()) break;
    }
    if (poly.empty()) break;  // Degenerate: fall through to the point region.
    bool violated = false;
    for (size_t i = 0; i < friends.size(); ++i) {
      const double d = ShapeMinDistance(SafeRegionShape(poly),
                                        friends[i].region(), epoch);
      if (d < friends[i].alert_radius - 1e-9) {
        offsets[i] *= 0.5;
        violated = true;
      }
    }
    if (!violated) return poly;
    if (iter >= options_.max_shrink_iterations) break;
  }
  // Friends leave no polygonal room: a point region (the user reports again
  // next epoch, which is the correct behavior when squeezed).
  return Circle{location, 0.0};
}

SafeRegionShape MobileCirclePolicy::BuildRegion(
    UserId u, const Vec2& location, const std::vector<Vec2>& recent_window,
    double speed, const std::vector<FriendView>& friends, int epoch) {
  Vec2 velocity{0.0, 0.0};
  if (recent_window.size() >= 2) {
    velocity = (recent_window.back() - recent_window.front()) /
               static_cast<double>(recent_window.size() - 1);
  }
  (void)speed;
  double multiplier = 1.0;
  if (options_.self_tuning) {
    const auto it = multiplier_.find(u);
    if (it != multiplier_.end()) multiplier = it->second;
  }
  double radius = options_.base_radius * multiplier;
  for (const FriendView& f : friends) {
    const double d = ShapeDistanceToPoint(f.region(), location, epoch);
    radius = std::min(radius, std::max(0.0, d - f.alert_radius));
  }
  MovingCircle circle;
  circle.center_at_build = location;
  circle.velocity_per_epoch = velocity;
  circle.radius = radius;
  circle.built_epoch = epoch;
  return circle;
}

void MobileCirclePolicy::OnExit(UserId u) {
  if (!options_.self_tuning) return;
  double& m = multiplier_.try_emplace(u, 1.0).first->second;
  m = std::min(m * options_.increase, options_.max_multiplier);
}

void MobileCirclePolicy::OnProbe(UserId u) {
  if (!options_.self_tuning) return;
  double& m = multiplier_.try_emplace(u, 1.0).first->second;
  m = std::max(m * options_.decrease, options_.min_multiplier);
}

StripePolicy::StripePolicy(std::unique_ptr<Predictor> predictor)
    : StripePolicy(std::move(predictor), Options()) {}

StripePolicy::StripePolicy(std::unique_ptr<Predictor> predictor,
                           Options options)
    : predictor_(std::move(predictor)), options_(options) {}

SafeRegionShape StripePolicy::BuildRegion(
    UserId u, const Vec2& location, const std::vector<Vec2>& recent_window,
    double speed, const std::vector<FriendView>& friends, int epoch) {
  (void)u;
  std::vector<Vec2> predicted;
  {
    obs::TraceScope span("predict", "engine");
    predicted = predictor_->Predict(
        recent_window, static_cast<size_t>(options_.build.max_horizon));
  }
  // Constraints borrow the FriendView regions (alive for the whole build);
  // the scratch vector is a member so steady-state rebuilds don't allocate.
  // BuildRegion runs on the serial resolve queue, so reuse is race-free.
  constraints_scratch_.clear();
  constraints_scratch_.reserve(friends.size());
  for (const FriendView& f : friends) {
    constraints_scratch_.push_back({&f.region(), f.alert_radius, f.speed});
  }
  obs::TraceScope span("stripe_build", "engine");
  const StripeBuildResult result = BuildPredictiveStripe(
      location, predicted, constraints_scratch_, speed, options_.build,
      epoch);
  const StripeMetrics& sm = StripeMetrics::Get();
  sm.builds.Inc();
  sm.m.Record(static_cast<double>(result.m));
  sm.radius.Record(result.solution.radius);
  sm.e_m.Record(result.solution.e_m);
  sm.e_p.Record(result.solution.e_p);
  sm.batch_points.Record(static_cast<double>(result.staged_point_lanes));
  sm.batch_segments.Record(static_cast<double>(result.staged_segment_lanes));
  sm.dispatches.Inc(result.kernel_dispatches);
  return result.stripe;
}

}  // namespace proxdet
