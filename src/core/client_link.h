#ifndef PROXDET_CORE_CLIENT_LINK_H_
#define PROXDET_CORE_CLIENT_LINK_H_

#include <cstdint>
#include <vector>

#include "geom/circle.h"
#include "geom/vec2.h"
#include "graph/interest_graph.h"
#include "region/region.h"

namespace proxdet {

/// Match-region lifecycle notice carried by a match-install message
/// (CommStats::match_installs counts all three the same way).
enum class MatchOp : uint8_t {
  kCreate = 0,
  kUpdate = 1,
  kDelete = 2,
};

/// The client<->server message seam of the detection engines. Every call
/// corresponds to exactly one message the paper's cost model charges (the
/// five kinds in CommStats); the engines own the *counting*, a link only
/// moves the payload. With no link installed the engines read the World
/// directly (the historical in-process fast path, zero overhead); a
/// transported link (net::TransportLink) serializes each call onto a
/// simulated wire and hands the engine the payload *as the server decoded
/// it* — so an exact codec makes the transported run bit-identical to the
/// in-process one.
///
/// All calls are made from the engines' serial commit sections only, never
/// from parallel scans, so a link implementation needs no synchronization.
class ClientLink {
 public:
  virtual ~ClientLink() = default;

  /// Client -> server location upload (voluntary report or probe response).
  /// The client attaches its exact position and, when `window_len > 0`, its
  /// recent `window_len`-epoch location window (the server-side predictor's
  /// input). Out-params receive the payload as the server received it.
  virtual void Report(UserId u, int epoch, size_t window_len, Vec2* position,
                      std::vector<Vec2>* window) = 0;

  /// Server -> client "send me your exact location" request (Sec. V-B
  /// case 2). The engine issues the matching Report immediately after.
  virtual void Probe(UserId u, int epoch) = 0;

  /// Server -> client alert notification for pair (a, b), a < b, delivered
  /// to endpoint `u` (one call per endpoint).
  virtual void Alert(UserId u, UserId a, UserId b, int epoch) = 0;

  /// Server -> client safe-region install.
  virtual void InstallRegion(UserId u, int epoch,
                             const SafeRegionShape& region) = 0;

  /// Server -> client match-region create/update/delete notice for pair
  /// (a, b), delivered to endpoint `u`. `region` is meaningful for
  /// create/update; delete sends a default circle.
  virtual void InstallMatch(UserId u, int epoch, MatchOp op, UserId a,
                            UserId b, const Circle& region) = 0;

  /// End-of-epoch barrier, called once per epoch after the last message of
  /// that epoch (still from the serial section). The epoch-synchronous
  /// protocol guarantees nothing else happens until this returns, so a
  /// transported link may defer deliverable-at-epoch-granularity downlink
  /// (installs, alerts) and flush it here as one batched datagram per
  /// client. The in-process default does nothing. Message *counting* is
  /// unaffected: the engines already counted each call individually.
  virtual void EndEpoch(int epoch) { (void)epoch; }
};

}  // namespace proxdet

#endif  // PROXDET_CORE_CLIENT_LINK_H_
