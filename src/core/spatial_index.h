#ifndef PROXDET_CORE_SPATIAL_INDEX_H_
#define PROXDET_CORE_SPATIAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/bbox.h"
#include "geom/circle.h"
#include "geom/vec2.h"

namespace proxdet {

/// Integer cell coordinates of the uniform grids below. Cells tile the
/// plane from the origin: cell (cx, cy) covers [cx*s, (cx+1)*s) x
/// [cy*s, (cy+1)*s) for cell size s. Points exactly on a cell edge belong
/// to the higher cell (floor semantics) — the boundary property test pins
/// this down, and every range computation below is inclusive of both end
/// cells so an on-edge point can never fall between two ranges.
struct CellCoord {
  int32_t x = 0;
  int32_t y = 0;

  friend bool operator==(const CellCoord& a, const CellCoord& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const CellCoord& a, const CellCoord& b) {
    return !(a == b);
  }
};

/// Inclusive rectangle of cells [lo.x..hi.x] x [lo.y..hi.y]. Empty when
/// hi < lo on either axis (used for "no cells" sentinels).
struct CellRange {
  CellCoord lo;
  CellCoord hi;

  bool Empty() const { return hi.x < lo.x || hi.y < lo.y; }
  int64_t CellCount() const {
    if (Empty()) return 0;
    return (static_cast<int64_t>(hi.x) - lo.x + 1) *
           (static_cast<int64_t>(hi.y) - lo.y + 1);
  }
  bool ContainsCell(const CellCoord& c) const {
    return c.x >= lo.x && c.x <= hi.x && c.y >= lo.y && c.y <= hi.y;
  }

  friend bool operator==(const CellRange& a, const CellRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const CellRange& a, const CellRange& b) {
    return !(a == b);
  }
};

/// Deterministic per-run work counters of one index instance. All values
/// are pure functions of the query/maintenance sequence (independent of
/// thread count and hash-table layout), so they participate in the
/// deterministic-metrics digest and reconcile against the obs counters to
/// the unit (see bench_support/obs_artifacts.h).
struct SpatialIndexStats {
  uint64_t upserts = 0;        // Upsert calls (moved or not).
  uint64_t moves = 0;          // Upserts that changed the cell.
  uint64_t removes = 0;        // Remove calls that found the id.
  uint64_t rebuilds = 0;       // Full rebuilds (cell-size changes).
  uint64_t queries = 0;        // Query calls.
  uint64_t cells_probed = 0;   // Cells enumerated across all queries.
  uint64_t candidates = 0;     // Ids appended across all queries.
  uint64_t match_classified = 0;  // MatchCellClassifier pair verdicts.
  uint64_t match_exact = 0;       // ...that fell through to exact math.

  SpatialIndexStats& operator+=(const SpatialIndexStats& o) {
    upserts += o.upserts;
    moves += o.moves;
    removes += o.removes;
    rebuilds += o.rebuilds;
    queries += o.queries;
    cells_probed += o.cells_probed;
    candidates += o.candidates;
    match_classified += o.match_classified;
    match_exact += o.match_exact;
    return *this;
  }
};

/// Uniform-grid point index: id -> position, bucketed by cell. The cell
/// table is open-addressed (power-of-two capacity, linear probing over
/// packed 64-bit cell keys) and buckets are swap-remove vectors, so the
/// steady-state epoch loop — upsert every tracked id, then a query per id —
/// allocates nothing once the table has grown to its working size.
///
/// Maintenance is incremental: an upsert whose cell did not change touches
/// only the stored position; a move swap-removes from the old bucket and
/// appends to the new one. There is no full rebuild per epoch — only
/// SetCellSize (radius regime change) rebuckets everything.
///
/// Determinism: bucket contents depend on the upsert/remove sequence, so
/// Query appends candidates in a sequence-dependent order. Callers that
/// feed serial commits MUST normalize (sort) the candidate set first —
/// both detectors sort by edge key before committing (DESIGN.md §10).
/// Query is const and safe to call concurrently from parallel scans;
/// mutation must stay serial, like every other engine structure.
class UniformGridIndex {
 public:
  /// `cell_size` <= 0 is treated as 1 (degenerate worlds with no edges
  /// never query, so the size is irrelevant there).
  explicit UniformGridIndex(double cell_size = 1.0);

  double cell_size() const { return cell_size_; }
  size_t size() const { return live_count_; }

  CellCoord CellOf(const Vec2& p) const;

  /// Changes the cell size and rebuckets every live id. No-op when the
  /// size is unchanged.
  void SetCellSize(double cell_size);

  /// Inserts or moves id to `p`. Ids are dense non-negative integers
  /// (UserId, edge slots); the id table grows to the max id seen.
  void Upsert(int32_t id, const Vec2& p);

  /// Removes id; no-op when absent.
  void Remove(int32_t id);

  bool Contains(int32_t id) const;
  /// Stored position of a live id (undefined for absent ids).
  const Vec2& PositionOf(int32_t id) const { return entries_[id].pos; }

  /// Appends to *out every live id whose stored position may lie within
  /// `radius` of `center`: all ids in cells intersecting the circle's
  /// (slightly padded) bounding square. A superset of the exact
  /// within-radius set — closed, and padded so points at exactly `radius`
  /// (including on cell edges) are always returned; the boundary property
  /// test pins this. Does not clear *out. Returns the cells probed.
  uint64_t Query(const Vec2& center, double radius,
                 std::vector<int32_t>* out) const;

  /// Accumulated work counters. Query-side counters are mutated under a
  /// relaxed atomic-free discipline: Query is const and only *returns* its
  /// cell count — callers running parallel scans accumulate per-chunk and
  /// add the totals serially via RecordQuery.
  const SpatialIndexStats& stats() const { return stats_; }
  /// Serially folds parallel-scan query work into the counters.
  void RecordQuery(uint64_t queries, uint64_t cells, uint64_t candidates) {
    stats_.queries += queries;
    stats_.cells_probed += cells;
    stats_.candidates += candidates;
  }

  /// Every live (id, position) pair, sorted by id — the canonical form the
  /// maintenance property tests compare against a from-scratch build.
  std::vector<std::pair<int32_t, Vec2>> SortedEntries() const;

 private:
  /// Absent-bucket sentinel; doubles as the Entry liveness flag, so the
  /// per-id record packs to 32 bytes (this array is per-user in both
  /// engines — at a million users the old padded bool was 8 MB of air).
  static constexpr uint32_t kNoBucket = 0xFFFFFFFFu;

  struct Entry {
    Vec2 pos;
    CellCoord cell;
    uint32_t bucket = kNoBucket;  // Index into buckets_; kNoBucket = dead.
    uint32_t bucket_slot = 0;     // Position inside the bucket.
    bool live() const { return bucket != kNoBucket; }
  };

  // Open-addressed cell table slot: a packed cell key plus its bucket.
  struct TableSlot {
    uint64_t key = 0;
    uint32_t bucket = 0;
    bool used = false;
  };

  static uint64_t PackCell(const CellCoord& c) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(c.x)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(c.y));
  }

  /// Bucket for `cell`, creating it if needed.
  uint32_t BucketFor(const CellCoord& cell);
  /// Bucket for `cell`, or UINT32_MAX when the cell is empty.
  uint32_t FindBucket(const CellCoord& cell) const;
  void TableInsert(uint64_t key, uint32_t bucket);
  void GrowTable();
  void RemoveFromBucket(Entry& e);

  double cell_size_ = 1.0;
  double inv_cell_size_ = 1.0;
  std::vector<Entry> entries_;                  // Dense by id.
  std::vector<std::vector<int32_t>> buckets_;   // Bucket storage (stable).
  std::vector<TableSlot> table_;                // Open-addressed cell table.
  size_t table_used_ = 0;
  size_t live_count_ = 0;
  SpatialIndexStats stats_;
};

/// Uniform-grid index over axis-aligned boxes (safe-region bounds): each
/// handle is stored in every cell its AABB overlaps, so a box query only
/// enumerates the cells it overlaps (inflated by the query slack) and
/// reads those buckets. Handles are dense non-negative integers (UserId
/// for safe regions). Incremental like the point grid: an update whose
/// covered cell range is unchanged is free; otherwise the handle moves
/// buckets. Candidates repeat when a box spans several probed cells —
/// callers dedupe (both engines sort + unique the normalized keys anyway).
class RegionGridIndex {
 public:
  explicit RegionGridIndex(double cell_size = 1.0);

  double cell_size() const { return cell_size_; }
  size_t size() const { return live_count_; }

  /// Cells covered by `box` (inclusive of edge-touching cells).
  CellRange RangeOf(const BBox& box) const;

  void SetCellSize(double cell_size);
  void Upsert(int32_t handle, const BBox& box);
  void Remove(int32_t handle);
  bool Contains(int32_t handle) const;
  const BBox& BoxOf(int32_t handle) const { return entries_[handle].box; }

  /// Appends to *out every handle whose stored AABB may lie within
  /// `slack` of `box` (cell-level test: all handles bucketed in cells
  /// overlapping `box` inflated by `slack`). Superset semantics and
  /// duplicate caveat as documented on the class. Returns cells probed.
  uint64_t Query(const BBox& box, double slack,
                 std::vector<int32_t>* out) const;

  const SpatialIndexStats& stats() const { return stats_; }
  void RecordQuery(uint64_t queries, uint64_t cells, uint64_t candidates) {
    stats_.queries += queries;
    stats_.cells_probed += cells;
    stats_.candidates += candidates;
  }

  /// Every live (handle, covered-cell-range) pair, sorted by handle.
  std::vector<std::pair<int32_t, CellRange>> SortedEntries() const;

 private:
  struct Entry {
    bool live = false;
    BBox box;
    CellRange range;
  };

  uint32_t BucketFor(const CellCoord& cell);
  uint32_t FindBucket(const CellCoord& cell) const;
  void TableInsert(uint64_t key, uint32_t bucket);
  void GrowTable();
  void InsertIntoCells(int32_t handle, const CellRange& range);
  void RemoveFromCells(int32_t handle, const CellRange& range);

  static uint64_t PackCell(const CellCoord& c) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(c.x)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(c.y));
  }

  struct TableSlot {
    uint64_t key = 0;
    uint32_t bucket = 0;
    bool used = false;
  };

  double cell_size_ = 1.0;
  double inv_cell_size_ = 1.0;
  std::vector<Entry> entries_;                 // Dense by handle.
  std::vector<std::vector<int32_t>> buckets_;
  std::vector<TableSlot> table_;
  size_t table_used_ = 0;
  size_t live_count_ = 0;
  SpatialIndexStats stats_;
};

/// Cell-level containment classifier for a circle (the match-region fast
/// path): precomputes, in the grid's cell coordinates, the cells that are
/// *provably* strictly inside the circle and the cells overlapping its
/// AABB. Classify() then settles most points with integer compares; only
/// boundary cells fall through to the exact predicate.
///
/// Bit-exactness contract: kInside is returned only when every point of
/// the cell satisfies Circle::ContainsStrict as *computed* (a relative
/// margin of kMargin on the radius absorbs the floating-point rounding of
/// the exact predicate's d^2 < r^2 evaluation — see DESIGN.md §10), and
/// kOutside only when no point of the cell can satisfy it. kBoundary means
/// "ask the exact predicate"; the caller's answer is then by definition
/// identical to the scan path's.
class MatchCellClassifier {
 public:
  enum Verdict { kInside, kOutside, kBoundary };

  MatchCellClassifier() = default;
  MatchCellClassifier(const Circle& circle, double cell_size);

  Verdict Classify(const Vec2& p) const;
  const CellRange& outer() const { return outer_; }
  const CellRange& inner() const { return inner_; }

 private:
  /// Relative radius margin absorbing the worst-case rounding of the
  /// exact d^2 < r^2 evaluation (a handful of ulps; 1e-9 is ~2^24 ulps —
  /// vastly conservative, and boundary cells cost one exact check).
  static constexpr double kMargin = 1e-9;

  double cell_size_ = 1.0;
  double inv_cell_size_ = 1.0;
  Circle circle_;
  CellRange outer_;  // Cells overlapping the (slightly inflated) AABB.
  CellRange inner_;  // Cells provably strictly inside (may be Empty).
};

}  // namespace proxdet

#endif  // PROXDET_CORE_SPATIAL_INDEX_H_
